// The paper's motivating scenario: a plurality election over M = 5 pizza
// toppings, computed as a verifiable DP histogram by K = 2 non-colluding
// servers. A corrupted server then tries to steer the election to pineapple
// by inflating that bin -- and is caught and named by the public verifier.
#include <cstdio>

#include "src/core/adversary.h"
#include "src/core/histogram.h"

namespace {

const char* kToppings[] = {"margherita", "pepperoni", "mushroom", "quattro formaggi",
                           "pineapple"};

std::vector<uint32_t> CastVotes() {
  // 200 voters with a clear margin for pepperoni and minimal pineapple love.
  std::vector<uint32_t> votes;
  votes.insert(votes.end(), 52, 0);
  votes.insert(votes.end(), 81, 1);
  votes.insert(votes.end(), 38, 2);
  votes.insert(votes.end(), 24, 3);
  votes.insert(votes.end(), 5, 4);
  return votes;
}

}  // namespace

int main() {
  using G = vdp::ModP256;

  vdp::ProtocolConfig config;
  config.epsilon = 1.0;
  config.delta = 1.0 / 1024;
  config.num_provers = 2;
  config.num_bins = 5;
  config.morra_mode = vdp::MorraMode::kSeed;  // fast public coins; same trust model
  config.session_id = "pizza-election";

  auto votes = CastVotes();
  std::printf("== verifiable DP pizza election: %zu voters, %zu candidates, K=%zu servers ==\n",
              votes.size(), static_cast<size_t>(config.num_bins),
              static_cast<size_t>(config.num_provers));
  std::printf("privacy: eps=%.2f (nb=%llu coins per server per bin)\n", config.epsilon,
              static_cast<unsigned long long>(config.NumCoins()));
  std::printf("verify backend: %s\n\n",
              vdp::VerifyBackendKindName(vdp::SelectVerifyBackend(config)));

  // --- Honest run ---------------------------------------------------------
  vdp::SecureRng rng("pizza-honest");
  auto [result, summary] = vdp::RunVerifiableElection<G>(config, votes, rng);
  std::printf("[honest run] verdict: %s\n", vdp::VerdictCodeName(result.verdict.code));
  for (size_t bin = 0; bin < summary.estimates.size(); ++bin) {
    std::printf("  %-18s %7.1f votes (DP estimate)\n", kToppings[bin], summary.estimates[bin]);
  }
  std::printf("  winner: %s\n\n", kToppings[summary.winner]);

  // --- Corrupted server run ----------------------------------------------
  // Server 1 inflates bin 4 (pineapple) by 120 phantom votes and hopes the
  // DP noise story covers for it.
  vdp::Pedersen<G> ped;
  vdp::SecureRng crng("pizza-corrupt-clients");
  std::vector<vdp::ClientBundle<G>> clients;
  for (size_t i = 0; i < votes.size(); ++i) {
    clients.push_back(vdp::MakeClientBundle<G>(votes[i], i, config, ped, crng));
  }
  class PineappleProver : public vdp::BiasedOutputProver<G> {
   public:
    using BiasedOutputProver::BiasedOutputProver;
    vdp::ProverOutputMsg<G> ComputeOutput() override {
      auto out = vdp::Prover<G>::ComputeOutput();
      out.y[4] += Scalar::FromU64(120);  // stuff the pineapple bin
      return out;
    }
  };
  vdp::Prover<G> honest_server(0, config, ped, vdp::SecureRng("server-0"));
  PineappleProver corrupt_server(1, config, ped, vdp::SecureRng("server-1"), 0);
  std::vector<vdp::Prover<G>*> provers = {&honest_server, &corrupt_server};
  vdp::SecureRng vrng("pizza-verifier");
  auto audited = vdp::RunProtocol(config, ped, clients, provers, vrng);

  std::printf("[corrupted run] server 1 added 120 phantom pineapple votes...\n");
  std::printf("  verdict: %s (cheating prover: %zu)\n",
              vdp::VerdictCodeName(audited.verdict.code), audited.verdict.cheating_prover);
  std::printf("  the bias cannot hide behind the DP noise: Eq. 10 fails publicly.\n");
  return (result.accepted() && !audited.accepted()) ? 0 : 1;
}
