// Mozilla-style telemetry: K = 3 aggregation servers collect a 16-bucket
// latency histogram from browsers, with verifiable DP. This mirrors the
// PRIO/Poplar deployment model the paper extends (Section 4.2), and prints a
// Table-1-style stage breakdown at the end.
#include <cstdio>

#include "src/core/histogram.h"

int main() {
  using G = vdp::ModP256;

  vdp::ProtocolConfig config;
  config.epsilon = 4.0;  // weekly telemetry budget
  config.delta = 1.0 / 1024;
  config.num_provers = 3;
  config.num_bins = 16;
  config.session_id = "telemetry-2026-w23";
  // 240 browsers x 16 buckets is enough proofs that the RLC-batched verify
  // backend pays off; the factory (src/verify/factory.h) selects it from
  // this one flag, decision-identically to the per-proof oracle.
  config.batch_verify = true;

  // 240 clients report their page-load-latency bucket (skewed distribution).
  std::vector<uint32_t> reports;
  vdp::SecureRng workload("telemetry-workload");
  for (size_t i = 0; i < 240; ++i) {
    // Geometric-ish skew toward the fast buckets.
    uint32_t bucket = 0;
    while (bucket < 15 && workload.NextBit() && workload.NextBit()) {
      ++bucket;
    }
    reports.push_back(bucket);
  }

  std::printf("== verifiable DP telemetry: %zu reports, %zu buckets, K=%zu servers ==\n",
              reports.size(), static_cast<size_t>(config.num_bins),
              static_cast<size_t>(config.num_provers));
  std::printf("eps=%.1f -> nb=%llu private coins per server per bucket\n\n", config.epsilon,
              static_cast<unsigned long long>(config.NumCoins()));

  vdp::ThreadPool pool;
  vdp::SecureRng rng("telemetry-run");
  auto [result, summary] = vdp::RunVerifiableElection<G>(config, reports, rng, &pool);

  std::printf("verdict: %s; %zu/%zu clients validated (backend: %s)\n",
              vdp::VerdictCodeName(result.verdict.code), result.accepted_clients.size(),
              reports.size(), vdp::VerifyBackendKindName(vdp::SelectVerifyBackend(config)));
  std::printf("\nbucket  estimate   bar\n");
  for (size_t bin = 0; bin < summary.estimates.size(); ++bin) {
    double est = summary.estimates[bin] < 0 ? 0 : summary.estimates[bin];
    std::printf("  %2zu    %7.1f    ", bin, summary.estimates[bin]);
    for (int b = 0; b < static_cast<int>(est / 2); ++b) {
      std::printf("#");
    }
    std::printf("\n");
  }

  std::printf("\nstage breakdown (ms), Table-1 columns:\n");
  std::printf("  %-18s %10.1f\n", "Sigma-proof", result.timings.sigma_prove_ms);
  std::printf("  %-18s %10.1f\n", "Sigma-verification", result.timings.sigma_verify_ms);
  std::printf("  %-18s %10.1f\n", "Morra", result.timings.morra_ms);
  std::printf("  %-18s %10.1f\n", "Aggregation", result.timings.aggregate_ms);
  std::printf("  %-18s %10.1f\n", "Check", result.timings.check_ms);
  std::printf("  %-18s %10.1f\n", "Client validation", result.timings.client_validate_ms);
  return result.accepted() ? 0 : 1;
}
