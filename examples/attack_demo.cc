// Figure 1, executable: both client-validation attacks against the
// PRIO/Poplar-style sketch baseline, side by side with Pi_Bin's defenses.
#include <cstdio>

#include "src/baseline/attacks.h"
#include "src/core/adversary.h"
#include "src/core/protocol.h"

int main() {
  using G = vdp::ModP256;
  using S = G::Scalar;
  vdp::SecureRng rng("attack-demo");

  std::printf("=== Figure 1(a): corrupted server excludes an honest client ===\n\n");
  {
    auto report = vdp::RunSketchExclusionAttack<S>(/*servers=*/2, /*dims=*/8,
                                                   /*corrupt_server=*/1, rng);
    std::printf("[sketch baseline]  honest client accepted: %s\n",
                report.client_accepted ? "yes" : "NO");
    std::printf("                   cheater attributable:   %s\n",
                report.attributable ? "yes" : "NO");
    std::printf("                   -> %s\n\n", report.narrative.c_str());
  }
  {
    vdp::ProtocolConfig config;
    config.epsilon = 50.0;
    config.num_provers = 2;
    config.session_id = "fig1a";
    vdp::Pedersen<G> ped;
    vdp::SecureRng crng("fig1a-clients");
    std::vector<vdp::ClientBundle<G>> clients;
    for (size_t i = 0; i < 4; ++i) {
      clients.push_back(vdp::MakeClientBundle<G>(1, i, config, ped, crng));
    }
    vdp::Prover<G> honest(0, config, ped, vdp::SecureRng("h"));
    vdp::ClientDroppingProver<G> corrupt(1, config, ped, vdp::SecureRng("c"));
    std::vector<vdp::Prover<G>*> provers = {&honest, &corrupt};
    vdp::SecureRng vrng("fig1a-verifier");
    auto result = vdp::RunProtocol(config, ped, clients, provers, vrng);
    std::printf("[Pi_Bin]           run accepted: %s\n", result.accepted() ? "yes" : "NO");
    std::printf("                   verdict: %s, cheating prover: %zu\n",
                vdp::VerdictCodeName(result.verdict.code), result.verdict.cheating_prover);
    std::printf("                   -> exclusion is detected AND attributed.\n\n");
  }

  std::printf("=== Figure 1(b): dishonest client + colluding server inject an illegal "
              "input ===\n\n");
  {
    auto report =
        vdp::RunSketchInclusionAttack<S>({1, 1, 0, 0}, /*servers=*/2, /*corrupt=*/0, rng);
    std::printf("[sketch baseline]  double vote accepted: %s\n",
                report.client_accepted ? "YES" : "no");
    std::printf("                   -> %s\n\n", report.narrative.c_str());
  }
  {
    vdp::ProtocolConfig config;
    config.epsilon = 50.0;
    config.num_provers = 2;
    config.num_bins = 4;
    config.session_id = "fig1b";
    vdp::Pedersen<G> ped;
    vdp::SecureRng crng("fig1b-clients");
    auto double_voter = vdp::MakeDoubleVoteClientBundle<G>(0, config, ped, crng);
    vdp::PublicVerifier<G> verifier(config, ped);
    auto report = verifier.ValidateClientsReport({double_voter.upload});
    std::printf("[Pi_Bin]           double vote accepted: %s\n",
                report.accepted.empty() ? "no" : "YES");
    if (!report.rejections.empty()) {
      std::printf("                   rejection [%s]: %s\n",
                  vdp::RejectCodeName(report.rejections[0].code),
                  report.rejections[0].Render().c_str());
    }
    std::printf("                   -> validity is a PUBLIC proof; no server collusion can\n");
    std::printf("                      admit an out-of-language input.\n");
  }
  return 0;
}
