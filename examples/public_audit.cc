// Public auditability end-to-end: run an election, persist the public
// transcript as bytes, then re-verify it as an independent bystander --
// including catching a forged transcript. This is Table 2's "Auditable"
// property as a workflow.
#include <cstdio>

#include "src/core/adversary.h"
#include "src/core/audit.h"

int main() {
  using G = vdp::ModP256;

  vdp::ProtocolConfig config;
  config.epsilon = 8.0;
  config.num_provers = 2;
  config.num_bins = 3;
  config.session_id = "audited-election-2026";

  vdp::Pedersen<G> ped;
  vdp::SecureRng rng("audit-example");
  vdp::SecureRng crng = rng.Fork("clients");
  std::vector<vdp::ClientBundle<G>> clients;
  for (size_t i = 0; i < 30; ++i) {
    clients.push_back(vdp::MakeClientBundle<G>(i % 3, i, config, ped, crng));
  }
  std::vector<std::unique_ptr<vdp::Prover<G>>> owned;
  std::vector<vdp::Prover<G>*> provers;
  for (size_t k = 0; k < 2; ++k) {
    owned.push_back(std::make_unique<vdp::Prover<G>>(k, config, ped,
                                                     rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }

  // --- Live run, recording every public message ---------------------------
  vdp::PublicTranscript<G> transcript;
  vdp::SecureRng vrng = rng.Fork("verifier");
  auto result = vdp::RunProtocol(config, ped, clients, provers, vrng, nullptr, &transcript);
  std::printf("live run: %s; published histogram:", vdp::VerdictCodeName(result.verdict.code));
  for (double v : result.histogram) {
    std::printf(" %.1f", v);
  }
  std::printf("\n");

  // --- Persist + independent audit ----------------------------------------
  vdp::Bytes wire = vdp::SerializeTranscript(transcript);
  std::printf("transcript serialized: %zu bytes\n", wire.size());

  auto parsed = vdp::DeserializeTranscript<G>(wire);
  if (!parsed.has_value()) {
    std::printf("FATAL: transcript failed to parse\n");
    return 1;
  }
  auto report = vdp::AuditTranscript(*parsed, config, ped);
  std::printf("bystander audit (from bytes alone): %s; recomputed raw histogram matches: %s\n",
              vdp::VerdictCodeName(report.verdict.code),
              report.raw_histogram == result.raw_histogram ? "yes" : "NO");

  // --- A forged transcript does not survive the audit ---------------------
  auto forged = *parsed;
  forged.prover_outputs[0].y[2] += G::Scalar::FromU64(25);  // inflate bin 2 post hoc
  auto forged_report = vdp::AuditTranscript(forged, config, ped);
  std::printf("forged-transcript audit: %s (cheating prover: %zu)\n",
              vdp::VerdictCodeName(forged_report.verdict.code),
              forged_report.verdict.cheating_prover);

  // --- A tampered client upload gets a typed, attributed rejection --------
  // Client validation runs through whichever VerifyBackend the config
  // selects; the structured VerifyReport names the culprit with a
  // machine-readable code, not just a formatted string.
  auto tampered = *parsed;
  tampered.client_uploads[5].bin_proofs[0].z0 += G::Scalar::One();
  vdp::PublicVerifier<G> bystander(config, ped);
  auto validation = bystander.ValidateClientsReport(tampered.client_uploads);
  std::printf("tampered-upload validation via '%s' backend: %zu/%zu accepted\n",
              validation.backend.c_str(), validation.accepted.size(),
              tampered.client_uploads.size());
  for (const auto& rejection : validation.rejections) {
    std::printf("  rejected client %zu [%s]: %s\n", rejection.index,
                vdp::RejectCodeName(rejection.code), rejection.detail.c_str());
  }

  return (report.accepted() && !forged_report.accepted() &&
          validation.rejections.size() == 1)
             ? 0
             : 1;
}
