// Quickstart: a verifiable DP counting query in the trusted-curator model.
//
// 1000 clients each hold one sensitive bit. The curator publishes the noisy
// count *and* a proof that the noise was sampled faithfully; the public
// verifier audits the run. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/protocol.h"

int main() {
  using G = vdp::ModP256;

  // Privacy target: (eps = 2.0, delta = 2^-10) => nb = 191 fair coins.
  vdp::ProtocolConfig config;
  config.epsilon = 2.0;
  config.delta = 1.0 / 1024;
  config.num_provers = 1;  // trusted curator
  config.num_bins = 1;     // single counting query
  config.session_id = "quickstart";

  // 1000 clients; 400 of them answer "yes".
  std::vector<uint32_t> bits(1000, 0);
  for (size_t i = 0; i < 400; ++i) {
    bits[i] = 1;
  }

  vdp::SecureRng rng = vdp::SecureRng::FromEntropy();
  vdp::ProtocolResult result = vdp::RunHonestProtocol<G>(config, bits, rng);

  std::printf("verifiable DP counting query (group %s)\n", G::Name().c_str());
  std::printf("  clients                : %zu (all validated: %s)\n", bits.size(),
              result.accepted_clients.size() == bits.size() ? "yes" : "no");
  std::printf("  verify backend         : %s (selected by the config's flags)\n",
              vdp::VerifyBackendKindName(vdp::SelectVerifyBackend(config)));
  std::printf("  privacy                : eps=%.2f delta=2^-10  (nb=%llu coins)\n",
              config.epsilon, static_cast<unsigned long long>(config.NumCoins()));
  std::printf("  verifier verdict       : %s\n", vdp::VerdictCodeName(result.verdict.code));
  std::printf("  true count             : 400\n");
  std::printf("  published estimate     : %.1f (raw output %llu, offset %.1f)\n",
              result.histogram[0], static_cast<unsigned long long>(result.raw_histogram[0]),
              config.ExpectedOffset());
  std::printf("  stage timings (ms)     : prove=%.1f verify=%.1f morra=%.1f aggregate=%.1f "
              "check=%.1f clients=%.1f\n",
              result.timings.sigma_prove_ms, result.timings.sigma_verify_ms,
              result.timings.morra_ms, result.timings.aggregate_ms, result.timings.check_ms,
              result.timings.client_validate_ms);
  return result.accepted() ? 0 : 1;
}
