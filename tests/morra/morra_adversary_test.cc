#include "src/morra/adversary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace vdp {
namespace {

using G = ModP256;

TEST(MorraAdversaryTest, EquivocationIsDetectedAndAttributed) {
  Pedersen<G> ped;
  MorraParty<G> honest(SecureRng("honest"));
  EquivocatingMorraParty<G> cheater{SecureRng("cheater")};
  std::vector<MorraParty<G>*> parties = {&honest, &cheater};
  auto outcome = RunMorra(parties, 16, ped);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, 1u);
}

TEST(MorraAdversaryTest, EquivocationDetectedInAnyPosition) {
  Pedersen<G> ped;
  for (size_t pos = 0; pos < 3; ++pos) {
    std::vector<std::unique_ptr<MorraParty<G>>> owned;
    for (size_t i = 0; i < 3; ++i) {
      if (i == pos) {
        owned.push_back(std::make_unique<EquivocatingMorraParty<G>>(SecureRng("e")));
      } else {
        owned.push_back(std::make_unique<MorraParty<G>>(SecureRng("h" + std::to_string(i))));
      }
    }
    std::vector<MorraParty<G>*> parties;
    for (auto& p : owned) {
      parties.push_back(p.get());
    }
    auto outcome = RunMorra(parties, 8, ped);
    EXPECT_TRUE(outcome.aborted);
    EXPECT_EQ(outcome.cheater, pos);
  }
}

TEST(MorraAdversaryTest, AbortIsDetectedNotBiased) {
  Pedersen<G> ped;
  MorraParty<G> honest(SecureRng("honest"));
  AbortingMorraParty<G> aborter{SecureRng("aborter")};
  std::vector<MorraParty<G>*> parties = {&honest, &aborter};
  auto outcome = RunMorra(parties, 16, ped);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, 1u);
  EXPECT_TRUE(outcome.coins.empty());
}

TEST(MorraAdversaryTest, OneHonestPartyKeepsCoinsUnbiased) {
  // Two colluding parties contribute zeros; a single honest party's uniform
  // contribution keeps the coins balanced (the paper's dishonest-majority
  // guarantee).
  Pedersen<G> ped;
  MorraParty<G> honest(SecureRng("the-only-honest"));
  ZeroContributionMorraParty<G> z1{SecureRng("z1")};
  ZeroContributionMorraParty<G> z2{SecureRng("z2")};
  std::vector<MorraParty<G>*> parties = {&z1, &honest, &z2};
  constexpr size_t kCoins = 2000;
  auto outcome = RunMorra(parties, kCoins, ped);
  ASSERT_FALSE(outcome.aborted);
  size_t ones = 0;
  for (bool c : outcome.coins) {
    ones += c ? 1 : 0;
  }
  double sigma = std::sqrt(kCoins * 0.25);
  EXPECT_NEAR(static_cast<double>(ones), kCoins / 2.0, 5 * sigma);
}

TEST(MorraAdversaryTest, CommitmentFreeMorraIsFullyBiasable) {
  // Theorem 5.2's executable intuition: without commitments the last
  // announcer dictates every coin.
  SecureRng rng("last-mover");
  auto forced_ones = RunCommitmentFreeMorra<G>(/*num_honest=*/3, /*num_coins=*/100,
                                               /*adversary_last=*/true,
                                               /*target_value=*/true, rng);
  for (bool c : forced_ones.coins) {
    EXPECT_TRUE(c);
  }
  auto forced_zeros = RunCommitmentFreeMorra<G>(3, 100, true, false, rng);
  for (bool c : forced_zeros.coins) {
    EXPECT_FALSE(c);
  }
}

TEST(MorraAdversaryTest, CommitmentFreeWithoutAdversaryIsBalanced) {
  SecureRng rng("no-adversary");
  auto result = RunCommitmentFreeMorra<G>(3, 4000, /*adversary_last=*/false, false, rng);
  size_t ones = 0;
  for (bool c : result.coins) {
    ones += c ? 1 : 0;
  }
  double sigma = std::sqrt(4000 * 0.25);
  EXPECT_NEAR(static_cast<double>(ones), 2000.0, 5 * sigma);
}

TEST(MorraAdversaryTest, CommittedMorraDefeatsTheSameLastMover) {
  // The equivocating adversary is exactly a last-mover trying to re-pick its
  // contribution post-hoc; with commitments the attempt is caught, so the
  // contrast with CommitmentFreeMorraIsFullyBiasable is the separation story.
  Pedersen<G> ped;
  MorraParty<G> h1(SecureRng("h1"));
  MorraParty<G> h2(SecureRng("h2"));
  EquivocatingMorraParty<G> adv{SecureRng("adv")};
  std::vector<MorraParty<G>*> parties = {&h1, &h2, &adv};
  auto outcome = RunMorra(parties, 32, ped);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, 2u);
}

}  // namespace
}  // namespace vdp
