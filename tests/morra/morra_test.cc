#include "src/morra/morra.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace vdp {
namespace {

using G = ModP256;

std::vector<std::unique_ptr<MorraParty<G>>> HonestParties(size_t k, const std::string& seed) {
  std::vector<std::unique_ptr<MorraParty<G>>> parties;
  for (size_t i = 0; i < k; ++i) {
    parties.push_back(std::make_unique<MorraParty<G>>(SecureRng(seed + std::to_string(i))));
  }
  return parties;
}

std::vector<MorraParty<G>*> Raw(const std::vector<std::unique_ptr<MorraParty<G>>>& owned) {
  std::vector<MorraParty<G>*> raw;
  for (const auto& p : owned) {
    raw.push_back(p.get());
  }
  return raw;
}

TEST(MorraTest, HonestRunProducesCoins) {
  Pedersen<G> ped;
  auto owned = HonestParties(3, "morra-honest");
  auto parties = Raw(owned);
  auto outcome = RunMorra(parties, 64, ped);
  EXPECT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, kNoCheater);
  EXPECT_EQ(outcome.coins.size(), 64u);
}

TEST(MorraTest, TwoPartyRunWorks) {
  Pedersen<G> ped;
  auto owned = HonestParties(2, "morra-2p");
  auto parties = Raw(owned);
  auto outcome = RunMorra(parties, 16, ped);
  EXPECT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.coins.size(), 16u);
}

TEST(MorraTest, CoinsAreBalanced) {
  Pedersen<G> ped;
  auto owned = HonestParties(2, "morra-balance");
  auto parties = Raw(owned);
  constexpr size_t kCoins = 2000;
  auto outcome = RunMorra(parties, kCoins, ped);
  ASSERT_FALSE(outcome.aborted);
  size_t ones = 0;
  for (bool c : outcome.coins) {
    ones += c ? 1 : 0;
  }
  double sigma = std::sqrt(kCoins * 0.25);
  EXPECT_NEAR(static_cast<double>(ones), kCoins / 2.0, 5 * sigma);
}

TEST(MorraTest, DifferentSeedsDifferentCoins) {
  Pedersen<G> ped;
  auto o1 = HonestParties(2, "morra-a");
  auto p1 = Raw(o1);
  auto o2 = HonestParties(2, "morra-b");
  auto p2 = Raw(o2);
  auto r1 = RunMorra(p1, 128, ped);
  auto r2 = RunMorra(p2, 128, ped);
  EXPECT_NE(r1.coins, r2.coins);
}

TEST(MorraTest, DeterministicGivenSeeds) {
  Pedersen<G> ped;
  auto o1 = HonestParties(2, "morra-det");
  auto p1 = Raw(o1);
  auto o2 = HonestParties(2, "morra-det");
  auto p2 = Raw(o2);
  EXPECT_EQ(RunMorra(p1, 64, ped).coins, RunMorra(p2, 64, ped).coins);
}

TEST(SeedMorraTest, HonestRunProducesBalancedCoins) {
  std::vector<SeedMorraParty> parties;
  parties.push_back(SeedMorraParty{SecureRng("seed-a"), false, false});
  parties.push_back(SeedMorraParty{SecureRng("seed-b"), false, false});
  parties.push_back(SeedMorraParty{SecureRng("seed-c"), false, false});
  constexpr size_t kCoins = 4096;
  auto outcome = RunSeedMorra(parties, kCoins);
  ASSERT_FALSE(outcome.aborted);
  ASSERT_EQ(outcome.coins.size(), kCoins);
  size_t ones = 0;
  for (bool c : outcome.coins) {
    ones += c ? 1 : 0;
  }
  double sigma = std::sqrt(kCoins * 0.25);
  EXPECT_NEAR(static_cast<double>(ones), kCoins / 2.0, 5 * sigma);
}

TEST(SeedMorraTest, AbortDetected) {
  std::vector<SeedMorraParty> parties;
  parties.push_back(SeedMorraParty{SecureRng("sa"), false, false});
  parties.push_back(SeedMorraParty{SecureRng("sb"), true, false});  // aborts
  auto outcome = RunSeedMorra(parties, 64);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, 1u);
}

TEST(SeedMorraTest, EquivocationDetected) {
  std::vector<SeedMorraParty> parties;
  parties.push_back(SeedMorraParty{SecureRng("sa"), false, true});  // swaps seed
  parties.push_back(SeedMorraParty{SecureRng("sb"), false, false});
  auto outcome = RunSeedMorra(parties, 64);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, 0u);
}

}  // namespace
}  // namespace vdp
