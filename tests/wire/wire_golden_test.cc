// Golden-vector pins for the multi-process wire format: the exact bytes of
// representative frames are frozen here as hex fixtures, so ANY drift in
// the encoding -- field order, widths, endianness, frame header, element
// encoding, or the setup digest -- fails this suite instead of silently
// breaking mixed-version fleets. If a change is intentional, bump
// wire::kWireVersion and regenerate the fixtures (each assertion prints the
// actual encoding on mismatch).
#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/wire/wire_convert.h"
#include "src/wire/wire_format.h"

namespace vdp {
namespace wire {
namespace {

// EncodeFrame(kResult, ...) of a synthetic WireShardResult: digest 00..1f,
// shard 2 covering [10, 14), accepted {10, 12}, two canonical rejection
// reasons, a 1x2 product matrix, fallback used.
constexpr char kGoldenResultFrameHex[] =
    "564450570104a7000000000102030405060708090a0b0c0d0e0f10111213141516171819"
    "1a1b1c1d1e1f02000000000000000a0000000000000004000000000000000200000"
    "00a000000000000000c00000000000000020000000b00000000000000140000006269"
    "6e204f522070726f6f6620696e76616c69640d000000000000001600000"
    "06d616c666f726d65642075706c6f61642073686170650100000002000000030000000"
    "10203010000000401";

// EncodeFrame(kTask, ...) of a synthetic WireShardTask: digest a0..bf,
// shard 1 based at 16, compute_products on, two opaque upload blobs.
constexpr char kGoldenTaskFrameHex[] =
    "56445057010342000000a0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6b7b8b9"
    "babbbcbdbebf0100000000000000100000000000000001020000000200000"
    "0dead03000000beef01";

// WireSetup payload for ModP256 with the default (nothing-up-my-sleeve)
// Pedersen bases and a fixed config. Pins the config layout AND the group
// name / element encoding / hash-to-group derivation of the bases.
constexpr char kGoldenSetupPayloadHex[] =
    "080000006d6f64702d323536000000000000f03f000000000000503f0200000000000000"
    "03000000000000000001040000000000000003000000000000000e000000676f6c64656e"
    "2d73657373696f6e20000000000000000000000000000000000000000000000000000000"
    "00000000000000042000000064f6261ba1ef974ff605a06cf1accb2b78944fde8a184b4d"
    "91b325aea5225600";

// SHA-256 tagged digest of the setup payload above; every task and result
// frame of that session carries these 32 bytes.
constexpr char kGoldenSetupDigestHex[] =
    "b371da10bb7b346dc547777f03a47d7962a766716d1bda4627600b62aaddeb92";

// EncodeFrame(kHello, ...) for version 1, pid 4242.
constexpr char kGoldenHelloFrameHex[] = "56445057010109000000019210000000000000";

WireShardResult GoldenResult() {
  WireShardResult r;
  for (size_t i = 0; i < r.params_digest.size(); ++i) {
    r.params_digest[i] = static_cast<uint8_t>(i);
  }
  r.shard_index = 2;
  r.base = 10;
  r.count = 4;
  r.accepted = {10, 12};
  r.rejections = {{11, "bin OR proof invalid"}, {13, "malformed upload shape"}};
  r.partial_products = {{Bytes{0x01, 0x02, 0x03}, Bytes{0x04}}};
  r.fallback_used = 1;
  return r;
}

WireShardTask GoldenTask() {
  WireShardTask t;
  for (size_t i = 0; i < t.params_digest.size(); ++i) {
    t.params_digest[i] = static_cast<uint8_t>(0xA0 + i);
  }
  t.shard_index = 1;
  t.base = 16;
  t.compute_products = 1;
  t.uploads = {Bytes{0xDE, 0xAD}, Bytes{0xBE, 0xEF, 0x01}};
  return t;
}

WireSetup GoldenSetup() {
  ProtocolConfig config;
  config.epsilon = 1.0;
  config.delta = 1.0 / 1024;
  config.num_provers = 2;
  config.num_bins = 3;
  config.batch_verify = true;
  config.num_verify_shards = 4;
  config.verify_workers = 3;
  config.session_id = "golden-session";
  Pedersen<ModP256> ped;
  return MakeWireSetup(config, ped);
}

TEST(WireGolden, ResultFrameBytesArePinned) {
  Bytes frame = EncodeFrame(FrameType::kResult, GoldenResult().Serialize());
  EXPECT_EQ(HexEncode(frame), kGoldenResultFrameHex);
}

TEST(WireGolden, TaskFrameBytesArePinned) {
  Bytes frame = EncodeFrame(FrameType::kTask, GoldenTask().Serialize());
  EXPECT_EQ(HexEncode(frame), kGoldenTaskFrameHex);
}

TEST(WireGolden, SetupPayloadAndDigestArePinned) {
  WireSetup setup = GoldenSetup();
  EXPECT_EQ(HexEncode(setup.Serialize()), kGoldenSetupPayloadHex);
  auto digest = setup.Digest();
  EXPECT_EQ(HexEncode(BytesView(digest.data(), digest.size())), kGoldenSetupDigestHex);
}

TEST(WireGolden, HelloFrameBytesArePinned) {
  WireHello hello;
  hello.version = 1;
  hello.pid = 4242;
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kHello, hello.Serialize())),
            kGoldenHelloFrameHex);
}

// The checked-in fixtures must decode back to the values that produced
// them (guards against fixtures rotting if Serialize and Deserialize drift
// together in a way round-trip tests cannot see).
TEST(WireGolden, FixturesDecode) {
  auto result_frame = HexDecode(kGoldenResultFrameHex);
  ASSERT_TRUE(result_frame.has_value());
  auto frame = DecodeFrame(*result_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kResult);
  auto result = WireShardResult::Deserialize(frame->payload);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, GoldenResult());

  auto task_frame = HexDecode(kGoldenTaskFrameHex);
  ASSERT_TRUE(task_frame.has_value());
  frame = DecodeFrame(*task_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kTask);
  auto task = WireShardTask::Deserialize(frame->payload);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(*task, GoldenTask());

  auto setup_payload = HexDecode(kGoldenSetupPayloadHex);
  ASSERT_TRUE(setup_payload.has_value());
  auto setup = WireSetup::Deserialize(*setup_payload);
  ASSERT_TRUE(setup.has_value());
  EXPECT_EQ(*setup, GoldenSetup());
}

// An unknown (future) wire version must be rejected at the frame header,
// before any payload is interpreted -- a version bump can never be
// misparsed as the current format.
TEST(WireGolden, FutureVersionIsRejectedCleanly) {
  auto frame_bytes = HexDecode(kGoldenResultFrameHex);
  ASSERT_TRUE(frame_bytes.has_value());
  ASSERT_TRUE(DecodeFrame(*frame_bytes).has_value());

  Bytes bumped = *frame_bytes;
  bumped[4] = kWireVersion + 1;  // the version byte follows the 4-byte magic
  EXPECT_FALSE(DecodeFrame(bumped).has_value());
  EXPECT_FALSE(
      DecodeFrameHeader(BytesView(bumped.data(), kFrameHeaderSize)).has_value());

  bumped[4] = 0;  // ancient/zero version: equally rejected
  EXPECT_FALSE(DecodeFrame(bumped).has_value());
}

}  // namespace
}  // namespace wire
}  // namespace vdp
