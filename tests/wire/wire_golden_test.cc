// Golden-vector pins for the multi-process wire format: the exact bytes of
// representative frames are frozen here as hex fixtures, so ANY drift in
// the encoding -- field order, widths, endianness, frame header, element
// encoding, or the setup digest -- fails this suite instead of silently
// breaking mixed-version fleets. If a change is intentional, bump
// wire::kWireVersion and regenerate the fixtures (each assertion prints the
// actual encoding on mismatch).
//
// vdp_lint's wire-golden rule enforces the pairing mechanically: any change
// set touching src/wire/wire_format.* must touch this file too, so encoding
// drift is always acknowledged next to the bytes it freezes. (PR 9's edits
// to wire_format.cc were decode-internal -- zero-initialized scratch arrays
// -- and every golden vector below is unchanged.)
#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/net/auth.h"
#include "src/net/remote_conn.h"
#include "src/wire/wire_convert.h"
#include "src/wire/wire_format.h"

namespace vdp {
namespace wire {
namespace {

// EncodeFrame(kResult, ...) of a synthetic WireShardResult: digest 00..1f,
// shard 2 covering [10, 14), accepted {10, 12}, two canonical rejection
// reasons, a 1x2 product matrix, fallback used.
constexpr char kGoldenResultFrameHex[] =
    "564450570104a7000000000102030405060708090a0b0c0d0e0f10111213141516171819"
    "1a1b1c1d1e1f02000000000000000a0000000000000004000000000000000200000"
    "00a000000000000000c00000000000000020000000b00000000000000140000006269"
    "6e204f522070726f6f6620696e76616c69640d000000000000001600000"
    "06d616c666f726d65642075706c6f61642073686170650100000002000000030000000"
    "10203010000000401";

// EncodeFrame(kTask, ...) of a synthetic WireShardTask: digest a0..bf,
// shard 1 based at 16, compute_products on, two opaque upload blobs.
constexpr char kGoldenTaskFrameHex[] =
    "56445057010342000000a0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6b7b8b9"
    "babbbcbdbebf0100000000000000100000000000000001020000000200000"
    "0dead03000000beef01";

// WireSetup payload for ModP256 with the default (nothing-up-my-sleeve)
// Pedersen bases and a fixed config. Pins the config layout AND the group
// name / element encoding / hash-to-group derivation of the bases.
constexpr char kGoldenSetupPayloadHex[] =
    "080000006d6f64702d323536000000000000f03f000000000000503f0200000000000000"
    "03000000000000000001040000000000000003000000000000000e000000676f6c64656e"
    "2d73657373696f6e20000000000000000000000000000000000000000000000000000000"
    "00000000000000042000000064f6261ba1ef974ff605a06cf1accb2b78944fde8a184b4d"
    "91b325aea5225600";

// SHA-256 tagged digest of the setup payload above; every task and result
// frame of that session carries these 32 bytes.
constexpr char kGoldenSetupDigestHex[] =
    "b371da10bb7b346dc547777f03a47d7962a766716d1bda4627600b62aaddeb92";

// EncodeFrame(kHello, ...) for version 1, pid 4242.
constexpr char kGoldenHelloFrameHex[] = "56445057010109000000019210000000000000";

WireShardResult GoldenResult() {
  WireShardResult r;
  for (size_t i = 0; i < r.params_digest.size(); ++i) {
    r.params_digest[i] = static_cast<uint8_t>(i);
  }
  r.shard_index = 2;
  r.base = 10;
  r.count = 4;
  r.accepted = {10, 12};
  r.rejections = {{11, "bin OR proof invalid"}, {13, "malformed upload shape"}};
  r.partial_products = {{Bytes{0x01, 0x02, 0x03}, Bytes{0x04}}};
  r.fallback_used = 1;
  return r;
}

WireShardTask GoldenTask() {
  WireShardTask t;
  for (size_t i = 0; i < t.params_digest.size(); ++i) {
    t.params_digest[i] = static_cast<uint8_t>(0xA0 + i);
  }
  t.shard_index = 1;
  t.base = 16;
  t.compute_products = 1;
  t.uploads = {Bytes{0xDE, 0xAD}, Bytes{0xBE, 0xEF, 0x01}};
  return t;
}

WireSetup GoldenSetup() {
  ProtocolConfig config;
  config.epsilon = 1.0;
  config.delta = 1.0 / 1024;
  config.num_provers = 2;
  config.num_bins = 3;
  config.batch_verify = true;
  config.num_verify_shards = 4;
  config.verify_workers = 3;
  config.session_id = "golden-session";
  Pedersen<ModP256> ped;
  return MakeWireSetup(config, ped);
}

TEST(WireGolden, ResultFrameBytesArePinned) {
  Bytes frame = EncodeFrame(FrameType::kResult, GoldenResult().Serialize());
  EXPECT_EQ(HexEncode(frame), kGoldenResultFrameHex);
}

TEST(WireGolden, TaskFrameBytesArePinned) {
  Bytes frame = EncodeFrame(FrameType::kTask, GoldenTask().Serialize());
  EXPECT_EQ(HexEncode(frame), kGoldenTaskFrameHex);
}

TEST(WireGolden, SetupPayloadAndDigestArePinned) {
  WireSetup setup = GoldenSetup();
  EXPECT_EQ(HexEncode(setup.Serialize()), kGoldenSetupPayloadHex);
  auto digest = setup.Digest();
  EXPECT_EQ(HexEncode(BytesView(digest.data(), digest.size())), kGoldenSetupDigestHex);
}

TEST(WireGolden, HelloFrameBytesArePinned) {
  WireHello hello;
  hello.version = 1;
  hello.pid = 4242;
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kHello, hello.Serialize())),
            kGoldenHelloFrameHex);
}

// The checked-in fixtures must decode back to the values that produced
// them (guards against fixtures rotting if Serialize and Deserialize drift
// together in a way round-trip tests cannot see).
TEST(WireGolden, FixturesDecode) {
  auto result_frame = HexDecode(kGoldenResultFrameHex);
  ASSERT_TRUE(result_frame.has_value());
  auto frame = DecodeFrame(*result_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kResult);
  auto result = WireShardResult::Deserialize(frame->payload);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, GoldenResult());

  auto task_frame = HexDecode(kGoldenTaskFrameHex);
  ASSERT_TRUE(task_frame.has_value());
  frame = DecodeFrame(*task_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kTask);
  auto task = WireShardTask::Deserialize(frame->payload);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(*task, GoldenTask());

  auto setup_payload = HexDecode(kGoldenSetupPayloadHex);
  ASSERT_TRUE(setup_payload.has_value());
  auto setup = WireSetup::Deserialize(*setup_payload);
  ASSERT_TRUE(setup.has_value());
  EXPECT_EQ(*setup, GoldenSetup());
}

// --- Socket-transport handshake/auth fixtures ---------------------------
//
// The remote-verifier bootstrap frames (PR 5): server hello, client hello,
// setup ack, the session key both sides derive, and one fully sealed
// (MAC-trailered) authenticated frame. Any drift in the handshake layout,
// the key derivation, or the MAC transform fails here before it can strand
// a mixed-version fleet mid-handshake.

// EncodeFrame(kServerHello, ...): version 1, pid 4242, server id 7,
// nonce 00..1f.
constexpr char kGoldenServerHelloFrameHex[] =
    "564450570106310000000192100000000000000700000000000000000102030405060708"
    "090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f";

// EncodeFrame(kClientHello, ...): version 1, nonce a0..bf.
constexpr char kGoldenClientHelloFrameHex[] =
    "5644505701072100000001a0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6b7b8"
    "b9babbbcbdbebf";

// WireSetupAck payload: digest 40..5f, server id 7.
constexpr char kGoldenSetupAckPayloadHex[] =
    "404142434445464748494a4b4c4d4e4f505152535455565758595a5b5c5d5e5f07000000"
    "00000000";

// DeriveSessionKey(psk 00..0f, server nonce 00..1f, client nonce a0..bf).
constexpr char kGoldenSessionKeyHex[] =
    "17ecf98faeaaa7a2806a008f3dace158b6a910e380b741331d1a36a008d759f5";

// EncodeFrame(kSetupAck, SealPayload(session key, server->client, seq 0,
// kSetupAck, ack payload)): the ack payload followed by its 32-byte HMAC
// trailer. Pins the whole authenticated-frame transform end to end.
constexpr char kGoldenSealedAckFrameHex[] =
    "56445057010848000000404142434445464748494a4b4c4d4e4f50515253545556575859"
    "5a5b5c5d5e5f070000000000000099b135ad9fab56b93cf4f17f66e3b4ad46cca427a373"
    "5917a45a4eb3326884f9";

WireServerHello GoldenServerHello() {
  WireServerHello hello;
  hello.version = 1;
  hello.pid = 4242;
  hello.server_id = 7;
  for (size_t i = 0; i < hello.nonce.size(); ++i) {
    hello.nonce[i] = static_cast<uint8_t>(i);
  }
  return hello;
}

WireClientHello GoldenClientHello() {
  WireClientHello hello;
  hello.version = 1;
  for (size_t i = 0; i < hello.nonce.size(); ++i) {
    hello.nonce[i] = static_cast<uint8_t>(0xA0 + i);
  }
  return hello;
}

WireSetupAck GoldenSetupAck() {
  WireSetupAck ack;
  for (size_t i = 0; i < ack.params_digest.size(); ++i) {
    ack.params_digest[i] = static_cast<uint8_t>(0x40 + i);
  }
  ack.server_id = 7;
  return ack;
}

net::SessionKey GoldenSessionKey() {
  auto psk = HexDecode("000102030405060708090a0b0c0d0e0f");
  WireServerHello sh = GoldenServerHello();
  WireClientHello ch = GoldenClientHello();
  return net::DeriveSessionKey(*psk, BytesView(sh.nonce.data(), sh.nonce.size()),
                               BytesView(ch.nonce.data(), ch.nonce.size()));
}

TEST(WireGolden, HandshakeFrameBytesArePinned) {
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kServerHello, GoldenServerHello().Serialize())),
            kGoldenServerHelloFrameHex);
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kClientHello, GoldenClientHello().Serialize())),
            kGoldenClientHelloFrameHex);
  EXPECT_EQ(HexEncode(GoldenSetupAck().Serialize()), kGoldenSetupAckPayloadHex);
}

TEST(WireGolden, SessionKeyDerivationIsPinned) {
  net::SessionKey key = GoldenSessionKey();
  EXPECT_EQ(HexEncode(BytesView(key.data(), key.size())), kGoldenSessionKeyHex);
}

TEST(WireGolden, SealedAuthFrameBytesArePinned) {
  Bytes sealed = net::SealPayload(GoldenSessionKey(), net::kServerToClient, 0,
                                  FrameType::kSetupAck, GoldenSetupAck().Serialize());
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kSetupAck, sealed)), kGoldenSealedAckFrameHex);
}

TEST(WireGolden, HandshakeFixturesDecode) {
  auto server_frame = HexDecode(kGoldenServerHelloFrameHex);
  ASSERT_TRUE(server_frame.has_value());
  auto frame = DecodeFrame(*server_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kServerHello);
  auto server_hello = WireServerHello::Deserialize(frame->payload);
  ASSERT_TRUE(server_hello.has_value());
  EXPECT_EQ(*server_hello, GoldenServerHello());

  auto client_frame = HexDecode(kGoldenClientHelloFrameHex);
  ASSERT_TRUE(client_frame.has_value());
  frame = DecodeFrame(*client_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kClientHello);
  auto client_hello = WireClientHello::Deserialize(frame->payload);
  ASSERT_TRUE(client_hello.has_value());
  EXPECT_EQ(*client_hello, GoldenClientHello());

  // The sealed ack fixture opens under the pinned session key and decodes
  // back to the golden ack.
  auto sealed_frame = HexDecode(kGoldenSealedAckFrameHex);
  ASSERT_TRUE(sealed_frame.has_value());
  frame = DecodeFrame(*sealed_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kSetupAck);
  auto opened = net::OpenPayload(GoldenSessionKey(), net::kServerToClient, 0,
                                 FrameType::kSetupAck, frame->payload);
  ASSERT_TRUE(opened.has_value());
  auto ack = WireSetupAck::Deserialize(*opened);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, GoldenSetupAck());
}

// A bad MAC must be rejected: any flipped bit in the sealed frame --
// payload or trailer -- fails OpenPayload, as does the right frame at the
// wrong sequence number (a replay).
TEST(WireGolden, SealedFrameWithBadMacIsRejected) {
  auto sealed_frame = HexDecode(kGoldenSealedAckFrameHex);
  ASSERT_TRUE(sealed_frame.has_value());
  auto frame = DecodeFrame(*sealed_frame);
  ASSERT_TRUE(frame.has_value());

  for (size_t i : {size_t{0}, frame->payload.size() / 2, frame->payload.size() - 1}) {
    Bytes tampered = frame->payload;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(net::OpenPayload(GoldenSessionKey(), net::kServerToClient, 0,
                                  FrameType::kSetupAck, tampered)
                     .has_value())
        << "flipped sealed byte " << i;
  }
  // Replay: authentic bytes at the wrong sequence number.
  EXPECT_FALSE(net::OpenPayload(GoldenSessionKey(), net::kServerToClient, 1,
                                FrameType::kSetupAck, frame->payload)
                   .has_value());
}

// A stale setup digest must be rejected: the ack's digest is checked
// byte-for-byte against the driver's own setup digest.
TEST(WireGolden, StaleSetupDigestIsRejected) {
  WireSetupAck ack = GoldenSetupAck();
  Sha256::Digest current = ack.params_digest;
  EXPECT_TRUE(net::AckMatchesSetup(ack, current));

  Sha256::Digest stale = current;
  stale[0] ^= 0x01;  // the digest of some other session's parameters
  EXPECT_FALSE(net::AckMatchesSetup(ack, stale));

  WireSetupAck stale_ack = ack;
  stale_ack.params_digest[31] ^= 0x80;
  EXPECT_FALSE(net::AckMatchesSetup(stale_ack, current));
}

// --- Introspection-plane fixtures (PR 10) -------------------------------
//
// The health/stats admin frames and one fully sealed admin-plane frame.
// The sealed fixture pins the admin direction byte (data direction + 2) in
// the MAC transform: a v1 peer that sealed kHealthProbe on the data plane
// would produce different bytes and fail to authenticate.

// EncodeFrame(kHealthProbe, ...): nonce 0x1122334455667788.
constexpr char kGoldenHealthProbeFrameHex[] =
    "564450570109080000008877665544332211";

// EncodeFrame(kHealthReply, ...): nonce echoed, server id 7, uptime
// 123456 ms, digest 60..7f, 2 inflight shards, queue depth 1.
constexpr char kGoldenHealthReplyFrameHex[] =
    "56445057010a480000008877665544332211070000000000000040e2010000000000"
    "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f"
    "02000000000000000100000000000000";

// EncodeFrame(kStatsRequest, ...): include_spans on.
constexpr char kGoldenStatsRequestFrameHex[] = "56445057010b0100000001";

// EncodeFrame(kStatsReply, ...): server id 7, minimal schema-stamped JSON.
constexpr char kGoldenStatsReplyFrameHex[] =
    "56445057010c250000000700000000000000190000007b22736368656d61223a2276"
    "64702e73746174732f7631227d";

// EncodeFrame(kHealthProbe, SealPayload(session key, client->server ADMIN
// direction, seq 0, kHealthProbe, probe payload)): the probe payload plus
// its 32-byte HMAC trailer under the pinned session key.
constexpr char kGoldenSealedAdminProbeFrameHex[] =
    "564450570109280000008877665544332211d9f9621111c28c40d4ace33cfe636c85"
    "847203b3eaa6a47f9672db59a221d72c";

WireHealthProbe GoldenHealthProbe() {
  WireHealthProbe probe;
  probe.nonce = 0x1122334455667788ULL;
  return probe;
}

WireHealthReply GoldenHealthReply() {
  WireHealthReply reply;
  reply.nonce = 0x1122334455667788ULL;
  reply.server_id = 7;
  reply.uptime_ms = 123456;
  for (size_t i = 0; i < reply.params_digest.size(); ++i) {
    reply.params_digest[i] = static_cast<uint8_t>(0x60 + i);
  }
  reply.inflight_shards = 2;
  reply.queue_depth = 1;
  return reply;
}

WireStatsReply GoldenStatsReply() {
  WireStatsReply reply;
  reply.server_id = 7;
  reply.stats_json = R"({"schema":"vdp.stats/v1"})";
  return reply;
}

TEST(WireGolden, IntrospectionFrameBytesArePinned) {
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kHealthProbe,
                                  GoldenHealthProbe().Serialize())),
            kGoldenHealthProbeFrameHex);
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kHealthReply,
                                  GoldenHealthReply().Serialize())),
            kGoldenHealthReplyFrameHex);
  WireStatsRequest request;
  request.include_spans = 1;
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kStatsRequest, request.Serialize())),
            kGoldenStatsRequestFrameHex);
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kStatsReply,
                                  GoldenStatsReply().Serialize())),
            kGoldenStatsReplyFrameHex);
}

TEST(WireGolden, SealedAdminProbeFrameBytesArePinned) {
  Bytes sealed =
      net::SealPayload(GoldenSessionKey(), net::kClientToServerAdmin, 0,
                       FrameType::kHealthProbe, GoldenHealthProbe().Serialize());
  EXPECT_EQ(HexEncode(EncodeFrame(FrameType::kHealthProbe, sealed)),
            kGoldenSealedAdminProbeFrameHex);
  // The same bytes sealed on the DATA plane must differ: the direction byte
  // is inside the MAC, so the planes can never be spliced into each other.
  Bytes data_plane =
      net::SealPayload(GoldenSessionKey(), net::kClientToServer, 0,
                       FrameType::kHealthProbe, GoldenHealthProbe().Serialize());
  EXPECT_NE(HexEncode(EncodeFrame(FrameType::kHealthProbe, data_plane)),
            kGoldenSealedAdminProbeFrameHex);
}

TEST(WireGolden, IntrospectionFixturesDecode) {
  auto probe_frame = HexDecode(kGoldenHealthProbeFrameHex);
  ASSERT_TRUE(probe_frame.has_value());
  auto frame = DecodeFrame(*probe_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kHealthProbe);
  auto probe = WireHealthProbe::Deserialize(frame->payload);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(*probe, GoldenHealthProbe());

  auto reply_frame = HexDecode(kGoldenHealthReplyFrameHex);
  ASSERT_TRUE(reply_frame.has_value());
  frame = DecodeFrame(*reply_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kHealthReply);
  auto reply = WireHealthReply::Deserialize(frame->payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, GoldenHealthReply());

  auto stats_frame = HexDecode(kGoldenStatsReplyFrameHex);
  ASSERT_TRUE(stats_frame.has_value());
  frame = DecodeFrame(*stats_frame);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kStatsReply);
  auto stats = WireStatsReply::Deserialize(frame->payload);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(*stats, GoldenStatsReply());

  // The sealed admin fixture opens ONLY with the admin direction; the data
  // direction at the same sequence number is rejected.
  auto sealed_frame = HexDecode(kGoldenSealedAdminProbeFrameHex);
  ASSERT_TRUE(sealed_frame.has_value());
  frame = DecodeFrame(*sealed_frame);
  ASSERT_TRUE(frame.has_value());
  auto opened = net::OpenPayload(GoldenSessionKey(), net::kClientToServerAdmin, 0,
                                 FrameType::kHealthProbe, frame->payload);
  ASSERT_TRUE(opened.has_value());
  auto sealed_probe = WireHealthProbe::Deserialize(*opened);
  ASSERT_TRUE(sealed_probe.has_value());
  EXPECT_EQ(*sealed_probe, GoldenHealthProbe());
  EXPECT_FALSE(net::OpenPayload(GoldenSessionKey(), net::kClientToServer, 0,
                                FrameType::kHealthProbe, frame->payload)
                   .has_value());
}

// An unknown (future) wire version must be rejected at the frame header,
// before any payload is interpreted -- a version bump can never be
// misparsed as the current format.
TEST(WireGolden, FutureVersionIsRejectedCleanly) {
  auto frame_bytes = HexDecode(kGoldenResultFrameHex);
  ASSERT_TRUE(frame_bytes.has_value());
  ASSERT_TRUE(DecodeFrame(*frame_bytes).has_value());

  Bytes bumped = *frame_bytes;
  bumped[4] = kWireVersion + 1;  // the version byte follows the 4-byte magic
  EXPECT_FALSE(DecodeFrame(bumped).has_value());
  EXPECT_FALSE(
      DecodeFrameHeader(BytesView(bumped.data(), kFrameHeaderSize)).has_value());

  bumped[4] = 0;  // ancient/zero version: equally rejected
  EXPECT_FALSE(DecodeFrame(bumped).has_value());
}

}  // namespace
}  // namespace wire
}  // namespace vdp
