// Property and fuzz coverage for the multi-process wire format
// (src/wire/wire_format.h).
//
// Properties under test, over seeded random values:
//   - Round trip: Serialize -> Deserialize -> Serialize is bit-identical.
//   - Canonicality: any buffer Deserialize accepts re-serializes to exactly
//     that buffer (there is one encoding per value).
//   - Totality: every single-byte truncation and a corpus of bit-flipped
//     buffers either fail cleanly (nullopt) or decode to a well-formed
//     value -- never UB or a crash. CI runs this suite under ASan/UBSan.
#include <gtest/gtest.h>
#include <unistd.h>

#include "src/common/rng.h"
#include "src/wire/frame_io.h"
#include "src/wire/wire_convert.h"
#include "src/wire/wire_format.h"

namespace vdp {
namespace wire {
namespace {

// --- random value generators (seeded, deterministic) -------------------

Bytes RandomBlob(SecureRng& rng, size_t max_len) {
  return rng.RandomBytes(rng.UniformBelow(max_len) + 1);
}

std::string RandomReason(SecureRng& rng) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz -:/";
  std::string s;
  size_t len = rng.UniformBelow(24) + 1;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.UniformBelow(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

WireConfig RandomConfig(SecureRng& rng) {
  WireConfig c;
  c.epsilon_bits = rng.NextU64();
  c.delta_bits = rng.NextU64();
  c.num_provers = rng.UniformBelow(8) + 1;
  c.num_bins = rng.UniformBelow(16) + 1;
  c.morra_mode = static_cast<uint8_t>(rng.UniformBelow(2));
  c.batch_verify = static_cast<uint8_t>(rng.UniformBelow(2));
  c.num_verify_shards = rng.UniformBelow(64) + 1;
  c.verify_workers = rng.UniformBelow(16);
  c.session_id = RandomReason(rng);
  return c;
}

WireSetup RandomSetup(SecureRng& rng) {
  WireSetup s;
  s.group_name = RandomReason(rng);
  s.config = RandomConfig(rng);
  s.pedersen_g = RandomBlob(rng, 64);
  s.pedersen_h = RandomBlob(rng, 64);
  return s;
}

WireShardTask RandomTask(SecureRng& rng) {
  WireShardTask t;
  rng.FillBytes(t.params_digest.data(), t.params_digest.size());
  t.shard_index = rng.UniformBelow(1024);
  t.base = rng.UniformBelow(1u << 20);
  t.compute_products = static_cast<uint8_t>(rng.UniformBelow(2));
  size_t n = rng.UniformBelow(8);
  for (size_t i = 0; i < n; ++i) {
    t.uploads.push_back(RandomBlob(rng, 96));
  }
  // Half the corpus exercises the optional trace extension.
  if (rng.NextBit()) {
    t.trace_id = rng.NextU64() | 1;  // nonzero (0 means "absent")
    t.parent_span_id = rng.NextU64();
  }
  return t;
}

WireSpan RandomSpan(SecureRng& rng) {
  WireSpan s;
  s.name = RandomReason(rng);
  s.span_id = rng.NextU64() | 1;  // nonzero by construction
  s.parent_span_id = rng.NextU64();
  s.start_us = rng.UniformBelow(1u << 30);
  s.duration_us = rng.UniformBelow(1u << 30);
  return s;
}

WireShardResult RandomResult(SecureRng& rng) {
  WireShardResult r;
  rng.FillBytes(r.params_digest.data(), r.params_digest.size());
  r.shard_index = rng.UniformBelow(1024);
  r.base = rng.UniformBelow(1u << 20);
  r.count = rng.UniformBelow(40);
  // Partition [base, base + count): each index lands in accepted or
  // rejections, both kept ascending -- the invariant Deserialize enforces.
  for (uint64_t index = r.base; index < r.base + r.count; ++index) {
    if (rng.NextBit()) {
      r.accepted.push_back(index);
    } else {
      r.rejections.emplace_back(index, RandomReason(rng));
    }
  }
  if (rng.NextBit()) {
    size_t rows = rng.UniformBelow(3) + 1;
    size_t cols = rng.UniformBelow(4) + 1;
    for (size_t k = 0; k < rows; ++k) {
      std::vector<Bytes> row;
      for (size_t m = 0; m < cols; ++m) {
        row.push_back(RandomBlob(rng, 48));
      }
      r.partial_products.push_back(std::move(row));
    }
  }
  r.fallback_used = static_cast<uint8_t>(rng.UniformBelow(2));
  // Half the corpus carries remote trace spans (the optional extension).
  if (rng.NextBit()) {
    size_t n_spans = rng.UniformBelow(5) + 1;
    for (size_t i = 0; i < n_spans; ++i) {
      r.spans.push_back(RandomSpan(rng));
    }
  }
  return r;
}

// --- round-trip properties ----------------------------------------------

TEST(WireRoundTrip, HelloErrorConfig) {
  SecureRng rng("wire-roundtrip-small");
  for (int iter = 0; iter < 200; ++iter) {
    WireHello hello;
    hello.version = static_cast<uint8_t>(rng.UniformBelow(256));
    hello.pid = rng.NextU64();
    auto hello2 = WireHello::Deserialize(hello.Serialize());
    ASSERT_TRUE(hello2.has_value());
    EXPECT_EQ(hello2->version, hello.version);
    EXPECT_EQ(hello2->pid, hello.pid);

    WireError error;
    error.message = RandomReason(rng);
    auto error2 = WireError::Deserialize(error.Serialize());
    ASSERT_TRUE(error2.has_value());
    EXPECT_EQ(error2->message, error.message);

    WireSetup setup = RandomSetup(rng);
    Bytes encoded = setup.Serialize();
    auto setup2 = WireSetup::Deserialize(encoded);
    ASSERT_TRUE(setup2.has_value());
    EXPECT_EQ(*setup2, setup);
    EXPECT_EQ(setup2->Serialize(), encoded);
    EXPECT_EQ(setup2->Digest(), setup.Digest());
  }
}

TEST(WireRoundTrip, ShardTaskBitIdentical) {
  SecureRng rng("wire-roundtrip-task");
  for (int iter = 0; iter < 300; ++iter) {
    WireShardTask task = RandomTask(rng);
    Bytes encoded = task.Serialize();
    auto decoded = WireShardTask::Deserialize(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, task);
    EXPECT_EQ(decoded->Serialize(), encoded);
  }
}

TEST(WireRoundTrip, ShardResultBitIdentical) {
  SecureRng rng("wire-roundtrip-result");
  for (int iter = 0; iter < 300; ++iter) {
    WireShardResult result = RandomResult(rng);
    Bytes encoded = result.Serialize();
    auto decoded = WireShardResult::Deserialize(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, result);
    EXPECT_EQ(decoded->Serialize(), encoded);
  }
}

TEST(WireRoundTrip, FrameBitIdentical) {
  SecureRng rng("wire-roundtrip-frame");
  for (int iter = 0; iter < 200; ++iter) {
    FrameType type = static_cast<FrameType>(rng.UniformBelow(12) + 1);
    Bytes payload = rng.RandomBytes(rng.UniformBelow(256));
    Bytes encoded = EncodeFrame(type, payload);
    auto frame = DecodeFrame(encoded);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(EncodeFrame(frame->type, frame->payload), encoded);
  }
}

// Admin-plane payloads (health probe/reply, stats request/reply) round-trip
// bit-identically and reject out-of-spec encodings, like every other wire
// struct: one valid encoding per payload.
TEST(WireRoundTrip, AdminPlaneBitIdentical) {
  SecureRng rng("wire-roundtrip-admin");
  for (int iter = 0; iter < 100; ++iter) {
    WireHealthProbe probe;
    probe.nonce = rng.UniformBelow(UINT64_MAX - 1) + 1;  // nonzero
    Bytes encoded = probe.Serialize();
    auto decoded = WireHealthProbe::Deserialize(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, probe);
    EXPECT_EQ(decoded->Serialize(), encoded);

    WireHealthReply reply;
    reply.nonce = probe.nonce;
    reply.server_id = rng.UniformBelow(16);
    reply.uptime_ms = rng.UniformBelow(1u << 30);
    for (auto& b : reply.params_digest) {
      b = static_cast<uint8_t>(rng.UniformBelow(256));
    }
    reply.inflight_shards = rng.UniformBelow(64);
    reply.queue_depth = rng.UniformBelow(64);
    encoded = reply.Serialize();
    auto reply2 = WireHealthReply::Deserialize(encoded);
    ASSERT_TRUE(reply2.has_value());
    EXPECT_EQ(*reply2, reply);
    EXPECT_EQ(reply2->Serialize(), encoded);

    WireStatsRequest request;
    request.include_spans = static_cast<uint8_t>(rng.UniformBelow(2));
    encoded = request.Serialize();
    auto request2 = WireStatsRequest::Deserialize(encoded);
    ASSERT_TRUE(request2.has_value());
    EXPECT_EQ(*request2, request);
    EXPECT_EQ(request2->Serialize(), encoded);

    WireStatsReply stats;
    stats.server_id = rng.UniformBelow(16);
    stats.stats_json = "{\"schema\":\"vdp.stats/v1\",\"n\":" +
                       std::to_string(rng.UniformBelow(1000)) + "}";
    encoded = stats.Serialize();
    auto stats2 = WireStatsReply::Deserialize(encoded);
    ASSERT_TRUE(stats2.has_value());
    EXPECT_EQ(*stats2, stats);
    EXPECT_EQ(stats2->Serialize(), encoded);
  }
}

TEST(WireInvariants, AdminPlaneRejectsOutOfSpecPayloads) {
  // Zero probe nonce must be rejected ("no nonce" cannot masquerade).
  WireHealthProbe probe;
  probe.nonce = 7;
  Bytes encoded = probe.Serialize();
  Bytes zeroed(encoded.size(), 0);
  EXPECT_FALSE(WireHealthProbe::Deserialize(zeroed).has_value());
  // Trailing bytes are rejected everywhere.
  Bytes trailing = encoded;
  trailing.push_back(0x00);
  EXPECT_FALSE(WireHealthProbe::Deserialize(trailing).has_value());

  WireHealthReply reply;
  reply.nonce = 7;
  Bytes reply_bytes = reply.Serialize();
  for (size_t i = 0; i < 8; ++i) {
    reply_bytes[i] = 0;  // zero the nonce echo
  }
  EXPECT_FALSE(WireHealthReply::Deserialize(reply_bytes).has_value());
  EXPECT_FALSE(
      WireHealthReply::Deserialize(BytesView(reply_bytes.data(), reply_bytes.size() - 1))
          .has_value());

  WireStatsRequest request;
  Bytes request_bytes = request.Serialize();
  request_bytes[0] = 2;  // include_spans is a boolean
  EXPECT_FALSE(WireStatsRequest::Deserialize(request_bytes).has_value());

  // Stats JSON must be nonempty and NUL-free.
  WireStatsReply stats;
  stats.server_id = 1;
  stats.stats_json = "";
  EXPECT_FALSE(WireStatsReply::Deserialize(stats.Serialize()).has_value());
  stats.stats_json = std::string("{\"a\":1}\0x", 9);
  EXPECT_FALSE(WireStatsReply::Deserialize(stats.Serialize()).has_value());
}

// Typed shard values survive the in-memory -> wire -> in-memory conversion
// exactly (ShardResult<G> round trip through ResultToWire/ResultFromWire).
TEST(WireRoundTrip, TypedShardResultThroughConversion) {
  using G = ModP256;
  SecureRng rng("wire-roundtrip-typed");
  ProtocolConfig config;
  config.num_provers = 2;
  config.num_bins = 3;
  config.session_id = "typed-roundtrip";

  ShardResult<G> result;
  result.shard_index = 7;
  result.base = 40;
  result.count = 5;
  result.accepted = {40, 42, 43};
  result.rejections = {{41, "bin OR proof invalid"}, {44, "malformed upload shape"}};
  result.partial_products.assign(config.num_provers,
                                 std::vector<G::Element>(config.num_bins, G::Identity()));
  for (auto& row : result.partial_products) {
    for (auto& element : row) {
      element = G::ExpG(G::Scalar::Random(rng));
    }
  }
  result.fallback_used = true;

  Sha256::Digest digest = Sha256::Hash(StrView("typed-digest"));
  WireShardResult wire_result = ResultToWire<G>(digest, result);
  Bytes encoded = wire_result.Serialize();
  auto decoded_wire = WireShardResult::Deserialize(encoded);
  ASSERT_TRUE(decoded_wire.has_value());
  auto decoded = ResultFromWire<G>(config, *decoded_wire);
  ASSERT_TRUE(decoded.has_value());

  EXPECT_EQ(decoded->shard_index, result.shard_index);
  EXPECT_EQ(decoded->base, result.base);
  EXPECT_EQ(decoded->count, result.count);
  EXPECT_EQ(decoded->accepted, result.accepted);
  EXPECT_EQ(decoded->rejections, result.rejections);
  EXPECT_EQ(decoded->fallback_used, result.fallback_used);
  for (size_t k = 0; k < config.num_provers; ++k) {
    for (size_t m = 0; m < config.num_bins; ++m) {
      EXPECT_TRUE(decoded->partial_products[k][m] == result.partial_products[k][m]);
    }
  }
}

// --- adversarial totality: truncation ------------------------------------

// Any strict prefix must fail cleanly: every Deserialize demands the buffer
// end exactly at the value's last byte. The one designed exception: messages
// carrying the optional trace extension truncate back to their extensionless
// twin at exactly `allowed` bytes (v1 compatibility) -- and there the decode
// must be canonical for the truncated buffer, not the original.
template <typename T>
void ExpectAllTruncationsRejected(const T& value, size_t allowed = SIZE_MAX) {
  Bytes encoded = value.Serialize();
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto truncated = T::Deserialize(BytesView(encoded.data(), len));
    if (len == allowed) {
      ASSERT_TRUE(truncated.has_value()) << "extensionless prefix must parse";
      EXPECT_EQ(truncated->Serialize(), Bytes(encoded.begin(), encoded.begin() + len));
      continue;
    }
    EXPECT_FALSE(truncated.has_value()) << "truncation to " << len << " bytes parsed";
  }
}

TEST(WireTruncation, EveryPrefixRejected) {
  SecureRng rng("wire-truncation");
  for (int iter = 0; iter < 10; ++iter) {
    ExpectAllTruncationsRejected(RandomSetup(rng));

    WireShardTask task = RandomTask(rng);
    size_t task_allowed = SIZE_MAX;
    if (task.trace_id != 0) {
      WireShardTask untraced = task;
      untraced.trace_id = 0;
      untraced.parent_span_id = 0;
      task_allowed = untraced.Serialize().size();
    }
    ExpectAllTruncationsRejected(task, task_allowed);

    WireShardResult result = RandomResult(rng);
    size_t result_allowed = SIZE_MAX;
    if (!result.spans.empty()) {
      WireShardResult spanless = result;
      spanless.spans.clear();
      result_allowed = spanless.Serialize().size();
    }
    ExpectAllTruncationsRejected(result, result_allowed);
  }
  WireHello hello;
  ExpectAllTruncationsRejected(hello);
  WireError error;
  error.message = "diagnostic";
  ExpectAllTruncationsRejected(error);
}

TEST(WireTruncation, FramePrefixesRejected) {
  SecureRng rng("wire-frame-truncation");
  Bytes encoded = EncodeFrame(FrameType::kTask, rng.RandomBytes(64));
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeFrame(BytesView(encoded.data(), len)).has_value());
  }
}

// --- adversarial totality: bit flips -------------------------------------

// Flipping any single bit must either fail cleanly or produce a value that
// re-serializes to exactly the corrupted buffer (canonical encoding). Both
// outcomes are sound; crashing or misparsing is not.
template <typename T>
void ExpectBitFlipsSound(const T& value, size_t* parsed_ok, size_t* rejected) {
  Bytes encoded = value.Serialize();
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes corrupted = encoded;
      corrupted[byte] = static_cast<uint8_t>(corrupted[byte] ^ (1u << bit));
      auto decoded = T::Deserialize(corrupted);
      if (decoded.has_value()) {
        ++*parsed_ok;
        EXPECT_EQ(decoded->Serialize(), corrupted)
            << "non-canonical parse after flipping bit " << bit << " of byte " << byte;
      } else {
        ++*rejected;
      }
    }
  }
}

TEST(WireBitFlips, EverySingleBitFlipIsSound) {
  SecureRng rng("wire-bitflips");
  size_t parsed_ok = 0;
  size_t rejected = 0;
  for (int iter = 0; iter < 3; ++iter) {
    ExpectBitFlipsSound(RandomSetup(rng), &parsed_ok, &rejected);
    ExpectBitFlipsSound(RandomTask(rng), &parsed_ok, &rejected);
    ExpectBitFlipsSound(RandomResult(rng), &parsed_ok, &rejected);
  }
  // Sanity: the corpus exercised both outcomes.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(rejected, 0u);
}

// Random byte soup thrown at every decoder: nothing may crash, and headers
// that happen to decode must re-encode canonically.
TEST(WireBitFlips, RandomBufferSoupIsSound) {
  SecureRng rng("wire-soup");
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes soup = rng.RandomBytes(rng.UniformBelow(160));
    BytesView view(soup);
    (void)WireHello::Deserialize(view);
    (void)WireError::Deserialize(view);
    (void)WireSetup::Deserialize(view);
    (void)WireShardTask::Deserialize(view);
    auto result = WireShardResult::Deserialize(view);
    if (result.has_value()) {
      EXPECT_EQ(result->Serialize(), soup);
    }
    (void)DecodeFrame(view);
    if (soup.size() >= kFrameHeaderSize) {
      (void)DecodeFrameHeader(view.subspan(0, kFrameHeaderSize));
    }
  }
}

// --- structural invariants enforced at decode ---------------------------

TEST(WireInvariants, ResultMustPartitionItsRange) {
  SecureRng rng("wire-invariants");
  WireShardResult base = RandomResult(rng);
  while (base.count < 3) {
    base = RandomResult(rng);
  }

  // An index outside [base, base + count) must not decode.
  WireShardResult bad = base;
  if (!bad.accepted.empty()) {
    bad.accepted.back() = bad.base + bad.count + 5;
    EXPECT_FALSE(WireShardResult::Deserialize(bad.Serialize()).has_value());
  }

  // A duplicated index (accepted and rejected) must not decode.
  bad = base;
  if (!bad.accepted.empty() && !bad.rejections.empty()) {
    bad.rejections[0].first = bad.accepted[0];
    EXPECT_FALSE(WireShardResult::Deserialize(bad.Serialize()).has_value());
  }

  // Dropping an index (hole in the partition) must not decode.
  bad = base;
  if (!bad.accepted.empty()) {
    bad.accepted.pop_back();
    EXPECT_FALSE(WireShardResult::Deserialize(bad.Serialize()).has_value());
  }

  // A descending accepted list must not decode.
  bad = base;
  if (bad.accepted.size() >= 2) {
    std::swap(bad.accepted.front(), bad.accepted.back());
    EXPECT_FALSE(WireShardResult::Deserialize(bad.Serialize()).has_value());
  }
}

// --- trace extension (still wire v1) ------------------------------------

// Untraced values serialize byte-identically to the pre-extension format:
// the extension may only appear as trailing fields, and only when active.
TEST(WireTraceExtension, UntracedEncodingIsPreExtension) {
  SecureRng rng("wire-trace-absent");
  WireShardTask task = RandomTask(rng);
  task.trace_id = 0;
  task.parent_span_id = 0;
  WireShardTask traced = task;
  traced.trace_id = 7;
  traced.parent_span_id = 9;
  // The traced form is a strict extension of the untraced bytes.
  Bytes plain = task.Serialize();
  Bytes extended = traced.Serialize();
  ASSERT_EQ(extended.size(), plain.size() + 16);
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), extended.begin()));

  WireShardResult result = RandomResult(rng);
  result.spans.clear();
  WireShardResult with_spans = result;
  with_spans.spans.push_back(WireSpan{"shard", 3, 0, 10, 20});
  Bytes plain_result = result.Serialize();
  Bytes extended_result = with_spans.Serialize();
  EXPECT_GT(extended_result.size(), plain_result.size());
  EXPECT_TRUE(
      std::equal(plain_result.begin(), plain_result.end(), extended_result.begin()));
}

// Canonicality: the absent forms must stay absent. An explicitly-encoded
// zero trace_id, an explicitly-encoded empty span list, an empty span name,
// or a zero span id all reject at decode.
TEST(WireTraceExtension, RejectsNonCanonicalTraceEncodings) {
  SecureRng rng("wire-trace-reject");
  WireShardTask task = RandomTask(rng);
  task.trace_id = 0;

  // Append an explicit zero trace_id (+ any parent): must not decode.
  Bytes bytes = task.Serialize();
  Writer w;
  w.U64(0);
  w.U64(42);
  Bytes zero_trace = bytes;
  Bytes tail = w.Take();
  zero_trace.insert(zero_trace.end(), tail.begin(), tail.end());
  EXPECT_FALSE(WireShardTask::Deserialize(zero_trace).has_value());

  // Half the extension (trace_id without parent) must not decode.
  Writer half;
  half.U64(7);
  Bytes half_trace = bytes;
  Bytes half_tail = half.Take();
  half_trace.insert(half_trace.end(), half_tail.begin(), half_tail.end());
  EXPECT_FALSE(WireShardTask::Deserialize(half_trace).has_value());

  WireShardResult result = RandomResult(rng);
  result.spans.clear();
  Bytes result_bytes = result.Serialize();

  // Explicitly-encoded empty span list: must not decode.
  Writer empty_list;
  empty_list.U32(0);
  Bytes with_empty = result_bytes;
  Bytes empty_tail = empty_list.Take();
  with_empty.insert(with_empty.end(), empty_tail.begin(), empty_tail.end());
  EXPECT_FALSE(WireShardResult::Deserialize(with_empty).has_value());

  // A span with an empty name must not decode.
  WireShardResult bad_name = result;
  bad_name.spans.push_back(WireSpan{"", 3, 0, 1, 1});
  EXPECT_FALSE(WireShardResult::Deserialize(bad_name.Serialize()).has_value());

  // A span with span_id == 0 (reserved for "no span") must not decode.
  WireShardResult bad_id = result;
  bad_id.spans.push_back(WireSpan{"shard", 0, 0, 1, 1});
  EXPECT_FALSE(WireShardResult::Deserialize(bad_id.Serialize()).has_value());
}

// ReadFrame must classify what went wrong on the stream -- the process
// pool's blame reports are only as good as this classification.
TEST(WireInvariants, ReadFrameClassifiesOkVersionSkewMalformedEofAndTimeout) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);

  // A valid frame reads back intact.
  Bytes good = EncodeFrame(FrameType::kResult, Bytes{0xAA, 0xBB});
  ASSERT_EQ(write(fds[1], good.data(), good.size()), static_cast<ssize_t>(good.size()));
  Frame frame;
  EXPECT_EQ(ReadFrame(fds[0], &frame, 1000), ReadStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, (Bytes{0xAA, 0xBB}));

  // Valid magic + future version: version skew, not generic garbage, so a
  // mixed-version fleet is diagnosed as such in the blame report.
  Bytes skewed = good;
  skewed[4] = kWireVersion + 1;
  ASSERT_EQ(write(fds[1], skewed.data(), skewed.size()),
            static_cast<ssize_t>(skewed.size()));
  EXPECT_EQ(ReadFrame(fds[0], &frame, 1000), ReadStatus::kVersionSkew);
  // Drain the stale payload the skewed header promised but we never read.
  Bytes drain(skewed.size() - kFrameHeaderSize, 0);
  ASSERT_EQ(read(fds[0], drain.data(), drain.size()), static_cast<ssize_t>(drain.size()));

  // Bad magic: malformed.
  Bytes junk(kFrameHeaderSize, 0xAB);
  ASSERT_EQ(write(fds[1], junk.data(), junk.size()), static_cast<ssize_t>(junk.size()));
  EXPECT_EQ(ReadFrame(fds[0], &frame, 1000), ReadStatus::kMalformed);

  // Nothing on the stream: timeout fires.
  EXPECT_EQ(ReadFrame(fds[0], &frame, 50), ReadStatus::kTimeout);

  // Peer closes between frames: clean EOF. Mid-frame close: malformed.
  ASSERT_EQ(write(fds[1], good.data(), 3), 3);  // partial header, then hang up
  close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0], &frame, 1000), ReadStatus::kMalformed);
  EXPECT_EQ(ReadFrame(fds[0], &frame, 1000), ReadStatus::kEof);
  close(fds[0]);
}

TEST(WireInvariants, FrameHeaderRejectsWrongMagicVersionTypeAndHugePayload) {
  Bytes header = EncodeFrame(FrameType::kHello, {});
  ASSERT_EQ(header.size(), kFrameHeaderSize);
  EXPECT_TRUE(DecodeFrameHeader(header).has_value());

  Bytes bad = header;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(DecodeFrameHeader(bad).has_value());

  bad = header;
  bad[4] = kWireVersion + 1;  // future version
  EXPECT_FALSE(DecodeFrameHeader(bad).has_value());

  bad = header;
  bad[5] = 0;  // frame type below range
  EXPECT_FALSE(DecodeFrameHeader(bad).has_value());
  bad[5] = 13;  // frame type above range (12 = kStatsReply is the last valid)
  EXPECT_FALSE(DecodeFrameHeader(bad).has_value());

  bad = header;
  // Payload length field: all 0xFF = 4 GiB - 1 > kMaxFramePayload.
  bad[6] = bad[7] = bad[8] = bad[9] = 0xFF;
  EXPECT_FALSE(DecodeFrameHeader(bad).has_value());
}

}  // namespace
}  // namespace wire
}  // namespace vdp
