// Signal-interruption regression for the frame transport: with an interval
// timer firing every 2 ms and its handler installed WITHOUT SA_RESTART,
// every poll/read/write in flight gets interrupted over and over. A
// multi-megabyte frame squeezed through a pipe (64 KB kernel buffer, so
// thousands of partial reads and writes) must still arrive intact -- EINTR
// is a retry, never a peer failure. This pins the behavior the multiprocess
// pool and the socket fleet rely on under sanitizer/profiler/CI signals.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/wire/frame_io.h"

namespace vdp {
namespace wire {
namespace {

std::atomic<uint64_t> g_signal_count{0};

void CountingHandler(int) { g_signal_count.fetch_add(1, std::memory_order_relaxed); }

class InterruptingTimer {
 public:
  InterruptingTimer() {
    g_signal_count.store(0);
    struct sigaction sa;
    sigemptyset(&sa.sa_mask);
    sa.sa_handler = CountingHandler;
    sa.sa_flags = 0;  // deliberately NOT SA_RESTART: syscalls return EINTR
    sigaction(SIGALRM, &sa, &old_action_);
    struct itimerval timer;
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec = 1000;  // every 1 ms
    timer.it_value = timer.it_interval;
    setitimer(ITIMER_REAL, &timer, &old_timer_);
  }

  ~InterruptingTimer() {
    struct itimerval stop = {};
    setitimer(ITIMER_REAL, &stop, nullptr);
    sigaction(SIGALRM, &old_action_, nullptr);
  }

 private:
  struct sigaction old_action_;
  struct itimerval old_timer_;
};

TEST(FrameIoEintrTest, LargeFrameSurvivesConstantInterruption) {
  InterruptingTimer timer;

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);

  // 8 MB of patterned payload: ~128 pipe-buffer refills, each a fresh
  // chance for a signal to land inside poll, read, or write.
  Bytes payload(8 * 1024 * 1024);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + (i >> 11));
  }

  std::thread writer([&]() {
    WriteStatus status = WriteFrame(fds[1], FrameType::kTask, payload, /*timeout_ms=*/-1);
    EXPECT_EQ(status, WriteStatus::kOk);
    close(fds[1]);
  });

  Frame frame;
  ReadStatus status = ReadFrame(fds[0], &frame, /*timeout_ms=*/30'000);
  writer.join();
  close(fds[0]);

  ASSERT_EQ(status, ReadStatus::kOk) << ReadStatusName(status);
  EXPECT_EQ(frame.type, FrameType::kTask);
  EXPECT_EQ(frame.payload, payload);

  // The test only proves something if signals actually landed (the exact
  // count depends on how fast the pipe drains on this machine).
  EXPECT_GT(g_signal_count.load(), 3u);
}

TEST(FrameIoEintrTest, DeadlineStillEnforcedUnderInterruption) {
  // EINTR retries must not reset or extend the deadline: a peer that sends
  // half a frame and stalls still times out on schedule.
  InterruptingTimer timer;

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  Bytes header_and_some = EncodeFrame(FrameType::kTask, Bytes(1024, 0x77));
  header_and_some.resize(header_and_some.size() / 2);  // stall mid-frame
  ASSERT_EQ(write(fds[1], header_and_some.data(), header_and_some.size()),
            static_cast<ssize_t>(header_and_some.size()));

  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  ReadStatus status = ReadFrame(fds[0], &frame, /*timeout_ms=*/200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(status, ReadStatus::kTimeout);
  EXPECT_GE(elapsed, 190);
  EXPECT_LT(elapsed, 5000);  // interrupted polls must not extend it unboundedly
  close(fds[0]);
  close(fds[1]);
}

TEST(FrameIoEintrTest, NonblockingSocketRoundTripUnderInterruption) {
  // The socket-fleet shape: a nonblocking fd on the driver side (WriteFrame
  // deadlines work, ReadFrame must absorb spurious EAGAIN wakeups) while
  // signals fire.
  InterruptingTimer timer;

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(fcntl(fds[0], F_SETFL, fcntl(fds[0], F_GETFL, 0) | O_NONBLOCK), 0);

  Bytes payload(2 * 1024 * 1024, 0x5A);
  std::thread peer([&]() {
    Frame frame;
    ReadStatus status = ReadFrame(fds[1], &frame, /*timeout_ms=*/30'000);
    EXPECT_EQ(status, ReadStatus::kOk) << ReadStatusName(status);
    EXPECT_EQ(frame.payload.size(), payload.size());
    // Echo it back so the nonblocking side reads too.
    EXPECT_EQ(WriteFrame(fds[1], FrameType::kResult, frame.payload, 30'000),
              WriteStatus::kOk);
  });

  ASSERT_EQ(WriteFrame(fds[0], FrameType::kTask, payload, /*timeout_ms=*/30'000),
            WriteStatus::kOk);
  Frame echoed;
  ReadStatus status = ReadFrame(fds[0], &echoed, /*timeout_ms=*/30'000);
  peer.join();
  EXPECT_EQ(status, ReadStatus::kOk) << ReadStatusName(status);
  EXPECT_EQ(echoed.payload, payload);
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace wire
}  // namespace vdp
