#include "src/sigma/transcript.h"

#include <gtest/gtest.h>

#include "src/group/modp_group.h"

namespace vdp {
namespace {

Bytes DigestBytes(const Sha256::Digest& d) {
  return Bytes(d.begin(), d.end());
}

TEST(TranscriptTest, DeterministicReplay) {
  Transcript a("proto");
  Transcript b("proto");
  a.Append("m", ToBytes("hello"));
  b.Append("m", ToBytes("hello"));
  EXPECT_EQ(DigestBytes(a.ChallengeBytes("e")), DigestBytes(b.ChallengeBytes("e")));
}

TEST(TranscriptTest, ProtocolLabelSeparates) {
  Transcript a("proto-a");
  Transcript b("proto-b");
  a.Append("m", ToBytes("x"));
  b.Append("m", ToBytes("x"));
  EXPECT_NE(DigestBytes(a.ChallengeBytes("e")), DigestBytes(b.ChallengeBytes("e")));
}

TEST(TranscriptTest, MessageContentMatters) {
  Transcript a("p");
  Transcript b("p");
  a.Append("m", ToBytes("x"));
  b.Append("m", ToBytes("y"));
  EXPECT_NE(DigestBytes(a.ChallengeBytes("e")), DigestBytes(b.ChallengeBytes("e")));
}

TEST(TranscriptTest, MessageLabelMatters) {
  Transcript a("p");
  Transcript b("p");
  a.Append("m1", ToBytes("x"));
  b.Append("m2", ToBytes("x"));
  EXPECT_NE(DigestBytes(a.ChallengeBytes("e")), DigestBytes(b.ChallengeBytes("e")));
}

TEST(TranscriptTest, OrderMatters) {
  Transcript a("p");
  Transcript b("p");
  a.Append("m", ToBytes("x"));
  a.Append("m", ToBytes("y"));
  b.Append("m", ToBytes("y"));
  b.Append("m", ToBytes("x"));
  EXPECT_NE(DigestBytes(a.ChallengeBytes("e")), DigestBytes(b.ChallengeBytes("e")));
}

TEST(TranscriptTest, ChallengesAreChained) {
  Transcript a("p");
  a.Append("m", ToBytes("x"));
  auto e1 = a.ChallengeBytes("e");
  auto e2 = a.ChallengeBytes("e");
  EXPECT_NE(DigestBytes(e1), DigestBytes(e2));
}

TEST(TranscriptTest, LaterChallengeDependsOnEarlierAppend) {
  Transcript a("p");
  Transcript b("p");
  a.Append("m", ToBytes("x"));
  b.Append("m", ToBytes("x"));
  (void)a.ChallengeBytes("e1");
  (void)b.ChallengeBytes("e1");
  a.Append("n", ToBytes("1"));
  b.Append("n", ToBytes("2"));
  EXPECT_NE(DigestBytes(a.ChallengeBytes("e2")), DigestBytes(b.ChallengeBytes("e2")));
}

TEST(TranscriptTest, ChallengeScalarIsReduced) {
  Transcript a("p");
  a.Append("m", ToBytes("x"));
  auto s = a.ChallengeScalar<ModP256::Scalar>("e");
  EXPECT_LT(s.value(), ModP256::Scalar::Order());
}

TEST(TranscriptTest, AppendU64Differs) {
  Transcript a("p");
  Transcript b("p");
  a.AppendU64("n", 1);
  b.AppendU64("n", 2);
  EXPECT_NE(DigestBytes(a.ChallengeBytes("e")), DigestBytes(b.ChallengeBytes("e")));
}

}  // namespace
}  // namespace vdp
