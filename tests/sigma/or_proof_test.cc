#include "src/sigma/or_proof.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

template <typename G>
class OrProofTest : public ::testing::Test {};

using GroupTypes = ::testing::Types<ModP256, Ed25519Group>;
TYPED_TEST_SUITE(OrProofTest, GroupTypes);

TYPED_TEST(OrProofTest, CompletenessForBothBits) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-c-" + G::Name());
  for (int bit : {0, 1}) {
    S r = S::Random(rng);
    auto c = ped.Commit(S::FromU64(bit), r);
    auto proof = OrProve(ped, c, bit, r, rng, "ctx");
    EXPECT_TRUE(OrVerify(ped, c, proof, "ctx")) << "bit=" << bit;
  }
}

TYPED_TEST(OrProofTest, NonBitCommitmentCannotBeProved) {
  // A cheating prover that committed to x not in {0,1} and runs the honest
  // prover code (with either claimed bit) always fails verification.
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-s-" + G::Name());
  for (uint64_t x : {2ull, 3ull, 17ull}) {
    S r = S::Random(rng);
    auto c = ped.Commit(S::FromU64(x), r);
    for (int claimed : {0, 1}) {
      auto proof = OrProve(ped, c, claimed, r, rng, "ctx");
      EXPECT_FALSE(OrVerify(ped, c, proof, "ctx")) << "x=" << x << " claimed=" << claimed;
    }
  }
}

TYPED_TEST(OrProofTest, WrongRandomnessFails) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-r-" + G::Name());
  S r = S::Random(rng);
  auto c = ped.Commit(S::One(), r);
  auto proof = OrProve(ped, c, 1, r + S::One(), rng, "ctx");
  EXPECT_FALSE(OrVerify(ped, c, proof, "ctx"));
}

TYPED_TEST(OrProofTest, TamperedProofComponentsFail) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-t-" + G::Name());
  S r = S::Random(rng);
  auto c = ped.Commit(S::Zero(), r);
  auto good = OrProve(ped, c, 0, r, rng, "ctx");
  ASSERT_TRUE(OrVerify(ped, c, good, "ctx"));

  auto t1 = good;
  t1.e0 = t1.e0 + S::One();
  EXPECT_FALSE(OrVerify(ped, c, t1, "ctx"));

  auto t2 = good;
  t2.z0 = t2.z0 + S::One();
  EXPECT_FALSE(OrVerify(ped, c, t2, "ctx"));

  auto t3 = good;
  t3.z1 = t3.z1 + S::One();
  EXPECT_FALSE(OrVerify(ped, c, t3, "ctx"));

  auto t4 = good;
  t4.a0 = G::Mul(t4.a0, G::Generator());
  EXPECT_FALSE(OrVerify(ped, c, t4, "ctx"));

  auto t5 = good;
  std::swap(t5.e0, t5.e1);
  EXPECT_FALSE(OrVerify(ped, c, t5, "ctx"));
}

TYPED_TEST(OrProofTest, ProofDoesNotTransferToOtherCommitment) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-x-" + G::Name());
  S r1 = S::Random(rng), r2 = S::Random(rng);
  auto c1 = ped.Commit(S::Zero(), r1);
  auto c2 = ped.Commit(S::Zero(), r2);
  auto proof = OrProve(ped, c1, 0, r1, rng, "ctx");
  EXPECT_FALSE(OrVerify(ped, c2, proof, "ctx"));
}

TYPED_TEST(OrProofTest, ContextSeparation) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-ctx-" + G::Name());
  S r = S::Random(rng);
  auto c = ped.Commit(S::One(), r);
  auto proof = OrProve(ped, c, 1, r, rng, "session-a");
  EXPECT_TRUE(OrVerify(ped, c, proof, "session-a"));
  EXPECT_FALSE(OrVerify(ped, c, proof, "session-b"));
}

TYPED_TEST(OrProofTest, SerializationRoundTrip) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-ser-" + G::Name());
  S r = S::Random(rng);
  auto c = ped.Commit(S::One(), r);
  auto proof = OrProve(ped, c, 1, r, rng, "ctx");
  auto parsed = OrProof<G>::Deserialize(proof.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(OrVerify(ped, c, *parsed, "ctx"));
}

TYPED_TEST(OrProofTest, DeserializeRejectsGarbage) {
  using G = TypeParam;
  EXPECT_FALSE(OrProof<G>::Deserialize(Bytes{0xde, 0xad}).has_value());
  EXPECT_FALSE(OrProof<G>::Deserialize(Bytes{}).has_value());
  // Truncated valid proof.
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-g-" + G::Name());
  S r = S::Random(rng);
  auto c = ped.Commit(S::Zero(), r);
  auto proof = OrProve(ped, c, 0, r, rng, "ctx");
  Bytes bytes = proof.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(OrProof<G>::Deserialize(bytes).has_value());
}

TYPED_TEST(OrProofTest, SimulatorProducesAcceptingTranscripts) {
  // HVZK: for any commitment (even to a non-bit!) and any chosen challenge,
  // the simulator outputs an accepting interactive transcript. This is why
  // the Fiat-Shamir ordering (commitments before challenge) is essential for
  // soundness, and why transcripts reveal nothing about the committed bit.
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-sim-" + G::Name());
  for (uint64_t x : {0ull, 1ull, 7ull}) {
    S r = S::Random(rng);
    auto c = ped.Commit(S::FromU64(x), r);
    S e = S::Random(rng);
    auto transcript = OrSimulate(ped, c, e, rng);
    EXPECT_TRUE(OrVerifyWithChallenge(ped, c, transcript, e)) << "x=" << x;
  }
}

TYPED_TEST(OrProofTest, RealInteractiveTranscriptAlsoAccepts) {
  // Real FS proofs satisfy the explicit-challenge check with the challenge
  // recomputed from the transcript; their sub-challenge split matches.
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-real-" + G::Name());
  S r = S::Random(rng);
  auto c = ped.Commit(S::One(), r);
  auto proof = OrProve(ped, c, 1, r, rng, "ctx");
  EXPECT_TRUE(OrVerifyWithChallenge(ped, c, proof, proof.e0 + proof.e1));
}

TYPED_TEST(OrProofTest, BatchProveAndVerify) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-batch-" + G::Name());
  constexpr size_t kCount = 16;
  std::vector<typename G::Element> cs;
  std::vector<int> bits;
  std::vector<S> rs;
  for (size_t i = 0; i < kCount; ++i) {
    bits.push_back(static_cast<int>(i % 2));
    rs.push_back(S::Random(rng));
    cs.push_back(ped.Commit(S::FromU64(bits.back()), rs.back()));
  }
  auto proofs = OrProveBatch(ped, cs, bits, rs, rng, "batch");
  EXPECT_TRUE(OrVerifyBatch(ped, cs, proofs, "batch"));
}

TYPED_TEST(OrProofTest, BatchParallelMatchesSerialAcceptance) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-par-" + G::Name());
  constexpr size_t kCount = 12;
  std::vector<typename G::Element> cs;
  std::vector<int> bits;
  std::vector<S> rs;
  for (size_t i = 0; i < kCount; ++i) {
    bits.push_back(1);
    rs.push_back(S::Random(rng));
    cs.push_back(ped.Commit(S::One(), rs.back()));
  }
  ThreadPool pool(2);
  auto proofs = OrProveBatch(ped, cs, bits, rs, rng, "par", &pool);
  EXPECT_TRUE(OrVerifyBatch(ped, cs, proofs, "par", &pool));
}

TYPED_TEST(OrProofTest, BatchRejectsOneBadProof) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("or-bad-" + G::Name());
  constexpr size_t kCount = 8;
  std::vector<typename G::Element> cs;
  std::vector<int> bits;
  std::vector<S> rs;
  for (size_t i = 0; i < kCount; ++i) {
    bits.push_back(0);
    rs.push_back(S::Random(rng));
    cs.push_back(ped.Commit(S::Zero(), rs.back()));
  }
  auto proofs = OrProveBatch(ped, cs, bits, rs, rng, "bad");
  proofs[kCount / 2].z0 = proofs[kCount / 2].z0 + S::One();
  EXPECT_FALSE(OrVerifyBatch(ped, cs, proofs, "bad"));
}

TYPED_TEST(OrProofTest, BatchSizeMismatchRejected) {
  using G = TypeParam;
  Pedersen<G> ped;
  std::vector<typename G::Element> cs(3, G::Identity());
  std::vector<OrProof<G>> proofs(2);
  EXPECT_FALSE(OrVerifyBatch(ped, cs, proofs, "mismatch"));
}

}  // namespace
}  // namespace vdp
