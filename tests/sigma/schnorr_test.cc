#include "src/sigma/schnorr.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

template <typename G>
class SchnorrTest : public ::testing::Test {};

using GroupTypes = ::testing::Types<ModP256, Ed25519Group>;
TYPED_TEST_SUITE(SchnorrTest, GroupTypes);

TYPED_TEST(SchnorrTest, Completeness) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("schnorr-c-" + G::Name());
  S w = S::Random(rng);
  auto y = G::ExpG(w);
  Transcript tp("test");
  auto proof = SchnorrProve<G>(G::Generator(), y, w, tp, rng);
  Transcript tv("test");
  EXPECT_TRUE(SchnorrVerify<G>(G::Generator(), y, proof, tv));
}

TYPED_TEST(SchnorrTest, WrongWitnessFails) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("schnorr-w-" + G::Name());
  S w = S::Random(rng);
  auto y = G::ExpG(w);
  Transcript tp("test");
  auto proof = SchnorrProve<G>(G::Generator(), y, w + S::One(), tp, rng);
  Transcript tv("test");
  EXPECT_FALSE(SchnorrVerify<G>(G::Generator(), y, proof, tv));
}

TYPED_TEST(SchnorrTest, TranscriptMismatchFails) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("schnorr-t-" + G::Name());
  S w = S::Random(rng);
  auto y = G::ExpG(w);
  Transcript tp("session-1");
  auto proof = SchnorrProve<G>(G::Generator(), y, w, tp, rng);
  Transcript tv("session-2");
  EXPECT_FALSE(SchnorrVerify<G>(G::Generator(), y, proof, tv));
}

TYPED_TEST(SchnorrTest, TamperedResponseFails) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("schnorr-z-" + G::Name());
  S w = S::Random(rng);
  auto y = G::ExpG(w);
  Transcript tp("test");
  auto proof = SchnorrProve<G>(G::Generator(), y, w, tp, rng);
  proof.response = proof.response + S::One();
  Transcript tv("test");
  EXPECT_FALSE(SchnorrVerify<G>(G::Generator(), y, proof, tv));
}

TYPED_TEST(SchnorrTest, DifferentBaseWorks) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("schnorr-b-" + G::Name());
  auto base = G::HashToGroup(StrView("test"), StrView("alt-base"));
  S w = S::Random(rng);
  auto y = G::Exp(base, w);
  Transcript tp("test");
  auto proof = SchnorrProve<G>(base, y, w, tp, rng);
  Transcript tv("test");
  EXPECT_TRUE(SchnorrVerify<G>(base, y, proof, tv));
  // Same proof against the standard generator must fail.
  Transcript tv2("test");
  EXPECT_FALSE(SchnorrVerify<G>(G::Generator(), y, proof, tv2));
}

TYPED_TEST(SchnorrTest, SerializationRoundTrip) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("schnorr-s-" + G::Name());
  S w = S::Random(rng);
  auto y = G::ExpG(w);
  Transcript tp("test");
  auto proof = SchnorrProve<G>(G::Generator(), y, w, tp, rng);
  auto bytes = proof.Serialize();
  auto parsed = SchnorrProof<G>::Deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  Transcript tv("test");
  EXPECT_TRUE(SchnorrVerify<G>(G::Generator(), y, *parsed, tv));
}

TYPED_TEST(SchnorrTest, DeserializeRejectsGarbage) {
  using G = TypeParam;
  EXPECT_FALSE(SchnorrProof<G>::Deserialize(Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(SchnorrProof<G>::Deserialize(Bytes{}).has_value());
}

}  // namespace
}  // namespace vdp
