// Public auditability: a bystander re-verifies a run purely from the
// serialized public transcript.
#include "src/core/audit.h"

#include <gtest/gtest.h>

#include "src/core/adversary.h"

namespace vdp {
namespace {

using G = ModP256;

ProtocolConfig AuditConfig(size_t k = 2, size_t m = 2) {
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = k;
  config.num_bins = m;
  config.session_id = "audit-test";
  return config;
}

struct Recorded {
  ProtocolResult result;
  PublicTranscript<G> transcript;
  Pedersen<G> ped;
};

Recorded RunRecorded(const ProtocolConfig& config, const std::string& seed) {
  Recorded rec;
  SecureRng rng(seed);
  SecureRng crng = rng.Fork("clients");
  std::vector<ClientBundle<G>> clients;
  for (size_t i = 0; i < 6; ++i) {
    clients.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, rec.ped, crng));
  }
  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < config.num_provers; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, rec.ped,
                                                rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  rec.result = RunProtocol(config, rec.ped, clients, provers, vrng, nullptr, &rec.transcript);
  return rec;
}

TEST(AuditTest, HonestRunAuditsClean) {
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-honest");
  ASSERT_TRUE(rec.result.accepted());
  auto report = AuditTranscript(rec.transcript, config, rec.ped);
  EXPECT_TRUE(report.accepted());
  EXPECT_EQ(report.raw_histogram, rec.result.raw_histogram);
  EXPECT_EQ(report.accepted_clients, rec.result.accepted_clients);
}

TEST(AuditTest, SerializationRoundTripPreservesAuditability) {
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-serial");
  ASSERT_TRUE(rec.result.accepted());

  Bytes wire = SerializeTranscript(rec.transcript);
  auto parsed = DeserializeTranscript<G>(wire);
  ASSERT_TRUE(parsed.has_value());
  auto report = AuditTranscript(*parsed, config, rec.ped);
  EXPECT_TRUE(report.accepted());
  EXPECT_EQ(report.raw_histogram, rec.result.raw_histogram);
}

TEST(AuditTest, TamperedOutputCaughtByAuditor) {
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-tamper");
  ASSERT_TRUE(rec.result.accepted());
  // A post-hoc forgery: the published transcript claims a different y.
  rec.transcript.prover_outputs[0].y[0] += G::Scalar::One();
  auto report = AuditTranscript(rec.transcript, config, rec.ped);
  EXPECT_FALSE(report.accepted());
  EXPECT_EQ(report.verdict.code, VerdictCode::kFinalCheckFailed);
  EXPECT_EQ(report.verdict.cheating_prover, 0u);
}

TEST(AuditTest, TamperedPublicBitCaught) {
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-bit");
  ASSERT_TRUE(rec.result.accepted());
  rec.transcript.public_bits[1][0][0] = !rec.transcript.public_bits[1][0][0];
  auto report = AuditTranscript(rec.transcript, config, rec.ped);
  EXPECT_FALSE(report.accepted());
  EXPECT_EQ(report.verdict.cheating_prover, 1u);
}

TEST(AuditTest, CorruptedWireBytesRejected) {
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-wire");
  Bytes wire = SerializeTranscript(rec.transcript);
  // Truncations at various depths must fail cleanly.
  for (size_t cut : {size_t{0}, size_t{2}, wire.size() / 3, wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DeserializeTranscript<G>(truncated).has_value()) << cut;
  }
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(DeserializeTranscript<G>(extended).has_value());
}

TEST(AuditTest, WrongSessionConfigFailsAudit) {
  // The Fiat-Shamir contexts bind the session id; an auditor with the wrong
  // session cannot validate the proofs.
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-session");
  ASSERT_TRUE(rec.result.accepted());
  auto other = config;
  other.session_id = "some-other-session";
  auto report = AuditTranscript(rec.transcript, other, rec.ped);
  EXPECT_FALSE(report.accepted());
}

TEST(AuditTest, ShapeMismatchRejected) {
  auto config = AuditConfig();
  auto rec = RunRecorded(config, "audit-shape");
  rec.transcript.prover_outputs.pop_back();
  auto report = AuditTranscript(rec.transcript, config, rec.ped);
  EXPECT_FALSE(report.accepted());
  EXPECT_EQ(report.verdict.code, VerdictCode::kMalformedMessage);
}

}  // namespace
}  // namespace vdp
