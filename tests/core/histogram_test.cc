// M-bin verifiable DP histograms and the plurality-election use case.
#include "src/core/histogram.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

using G = ModP256;

ProtocolConfig HistConfig(size_t k, size_t m) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31
  config.num_provers = k;
  config.num_bins = m;
  config.session_id = "hist-test";
  return config;
}

TEST(HistogramTest, CountsLandInCorrectBins) {
  SecureRng rng("hist-bins");
  auto config = HistConfig(1, 4);
  // 12 votes for bin 0, 4 for bin 1, 0 for bin 2, 2 for bin 3.
  std::vector<uint32_t> votes;
  votes.insert(votes.end(), 12, 0);
  votes.insert(votes.end(), 4, 1);
  votes.insert(votes.end(), 2, 3);
  auto result = RunHonestProtocol<G>(config, votes, rng);
  ASSERT_TRUE(result.accepted());
  uint64_t nb = config.NumCoins();
  EXPECT_GE(result.raw_histogram[0], 12u);
  EXPECT_LE(result.raw_histogram[0], 12u + nb);
  EXPECT_GE(result.raw_histogram[1], 4u);
  EXPECT_LE(result.raw_histogram[1], 4u + nb);
  EXPECT_LE(result.raw_histogram[2], nb);
  EXPECT_GE(result.raw_histogram[3], 2u);
  EXPECT_LE(result.raw_histogram[3], 2u + nb);
}

TEST(HistogramTest, ElectionWinnerIsCorrectWithClearMargin) {
  SecureRng rng("hist-election");
  auto config = HistConfig(2, 3);
  // Margin (40 vs 10 vs 5) far exceeds noise sd (~sqrt(2*31)/2 ~ 4).
  std::vector<uint32_t> votes;
  votes.insert(votes.end(), 40, 1);
  votes.insert(votes.end(), 10, 0);
  votes.insert(votes.end(), 5, 2);
  auto [result, summary] = RunVerifiableElection<G>(config, votes, rng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(summary.winner, 1u);
  EXPECT_NEAR(summary.winner_estimate, 40.0, 15.0);
}

TEST(HistogramTest, SummaryTotalsApproximateClientCount) {
  SecureRng rng("hist-total");
  auto config = HistConfig(1, 5);
  std::vector<uint32_t> votes;
  for (uint32_t i = 0; i < 30; ++i) {
    votes.push_back(i % 5);
  }
  auto [result, summary] = RunVerifiableElection<G>(config, votes, rng);
  ASSERT_TRUE(result.accepted());
  // Noise is zero-mean after debias; total of 5 bins has sd ~ sqrt(5*31)/2.
  EXPECT_NEAR(summary.total, 30.0, 30.0);
}

TEST(HistogramTest, SingleBinSummary) {
  SecureRng rng("hist-single");
  auto config = HistConfig(1, 1);
  std::vector<uint32_t> bits(20, 1);
  auto [result, summary] = RunVerifiableElection<G>(config, bits, rng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(summary.winner, 0u);
  EXPECT_NEAR(summary.winner_estimate, 20.0, 12.0);
}

TEST(HistogramTest, EmptySummary) {
  ProtocolResult empty;
  auto summary = SummarizeHistogram(empty);
  EXPECT_TRUE(summary.estimates.empty());
  EXPECT_EQ(summary.total, 0.0);
}

}  // namespace
}  // namespace vdp
