// Wire-format round trips and adversarial-input rejection for the protocol
// messages.
#include "src/core/messages.h"

#include <gtest/gtest.h>

#include "src/core/client.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

ProtocolConfig MsgConfig() {
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 2;
  config.num_bins = 3;
  config.session_id = "messages-test";
  return config;
}

TEST(MessagesTest, ClientShareRoundTrip) {
  Pedersen<G> ped;
  SecureRng rng("share-rt");
  auto bundle = MakeClientBundle<G>(1, 0, MsgConfig(), ped, rng);
  auto bytes = bundle.shares[0].Serialize();
  auto parsed = ClientShareMsg<G>::Deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->values.size(), 3u);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(parsed->values[m], bundle.shares[0].values[m]);
    EXPECT_EQ(parsed->randomness[m], bundle.shares[0].randomness[m]);
  }
}

TEST(MessagesTest, ClientUploadRoundTrip) {
  Pedersen<G> ped;
  SecureRng rng("upload-rt");
  auto config = MsgConfig();
  auto bundle = MakeClientBundle<G>(2, 5, config, ped, rng);
  auto bytes = bundle.upload.Serialize();
  auto parsed = ClientUploadMsg<G>::Deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  // The deserialized upload still validates -- full fidelity.
  EXPECT_TRUE(ValidateClientUpload(*parsed, 5, config, ped));
}

TEST(MessagesTest, ProverOutputRoundTrip) {
  SecureRng rng("output-rt");
  ProverOutputMsg<G> msg;
  for (int i = 0; i < 3; ++i) {
    msg.y.push_back(S::Random(rng));
    msg.z.push_back(S::Random(rng));
  }
  auto parsed = ProverOutputMsg<G>::Deserialize(msg.Serialize());
  ASSERT_TRUE(parsed.has_value());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->y[i], msg.y[i]);
    EXPECT_EQ(parsed->z[i], msg.z[i]);
  }
}

TEST(MessagesTest, TruncatedMessagesRejected) {
  Pedersen<G> ped;
  SecureRng rng("trunc");
  auto bundle = MakeClientBundle<G>(1, 0, MsgConfig(), ped, rng);
  auto bytes = bundle.upload.Serialize();
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    Bytes truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ClientUploadMsg<G>::Deserialize(truncated).has_value()) << cut;
  }
}

TEST(MessagesTest, TrailingGarbageRejected) {
  Pedersen<G> ped;
  SecureRng rng("trailing");
  auto bundle = MakeClientBundle<G>(1, 0, MsgConfig(), ped, rng);
  auto bytes = bundle.shares[0].Serialize();
  bytes.push_back(0xff);
  EXPECT_FALSE(ClientShareMsg<G>::Deserialize(bytes).has_value());
}

TEST(MessagesTest, NonCanonicalScalarRejected) {
  // Hand-craft a share message whose scalar is >= q.
  Writer w;
  w.U32(1);
  w.Blob(S::Order().ToBytesBe());  // not a reduced scalar
  w.Blob(S::One().Encode());
  EXPECT_FALSE(ClientShareMsg<G>::Deserialize(w.bytes()).has_value());
}

TEST(MessagesTest, NonSubgroupElementRejectedInUpload) {
  Pedersen<G> ped;
  SecureRng rng("subgroup");
  auto config = MsgConfig();
  auto bundle = MakeClientBundle<G>(1, 0, config, ped, rng);
  auto bytes = bundle.upload.Serialize();
  auto parsed = ClientUploadMsg<G>::Deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());

  // Corrupt one commitment encoding to p - 1 (order-2 element, outside the
  // prime-order subgroup). Deserialize must reject it.
  BigInt<4> minus_one = ModP256Params().p;
  BigInt<4>::SubInto(minus_one, minus_one, BigInt<4>::One());
  Writer w;
  w.U32(2);
  w.U32(3);
  bool first = true;
  for (const auto& row : bundle.upload.commitments) {
    for (const auto& c : row) {
      if (first) {
        w.Blob(minus_one.ToBytesBe());
        first = false;
      } else {
        w.Blob(G::Encode(c));
      }
    }
  }
  w.U32(static_cast<uint32_t>(bundle.upload.bin_proofs.size()));
  for (const auto& p : bundle.upload.bin_proofs) {
    w.Blob(p.Serialize());
  }
  w.Blob(bundle.upload.sum_randomness.Encode());
  EXPECT_FALSE(ClientUploadMsg<G>::Deserialize(w.bytes()).has_value());
}

}  // namespace
}  // namespace vdp
