// Completeness of Pi_Bin in the trusted-curator model (K = 1).
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/protocol.h"

namespace vdp {
namespace {

using G = ModP256;

ProtocolConfig CuratorConfig() {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31 (floor) for fast tests
  config.num_provers = 1;
  config.num_bins = 1;
  config.session_id = "curator-test";
  return config;
}

TEST(CuratorTest, HonestRunAccepts) {
  SecureRng rng("curator-accepts");
  std::vector<uint32_t> values = {1, 0, 1, 1, 0, 1, 0, 0, 1, 1};
  auto result = RunHonestProtocol<G>(CuratorConfig(), values, rng);
  EXPECT_TRUE(result.accepted()) << VerdictCodeName(result.verdict.code);
  EXPECT_EQ(result.accepted_clients.size(), values.size());
}

TEST(CuratorTest, OutputIsCountPlusBoundedBinomialNoise) {
  SecureRng rng("curator-noise");
  auto config = CuratorConfig();
  std::vector<uint32_t> values(50, 0);
  for (size_t i = 0; i < 20; ++i) {
    values[i] = 1;  // true count = 20
  }
  auto result = RunHonestProtocol<G>(config, values, rng);
  ASSERT_TRUE(result.accepted());
  uint64_t nb = config.NumCoins();
  EXPECT_GE(result.raw_histogram[0], 20u);
  EXPECT_LE(result.raw_histogram[0], 20u + nb);
}

TEST(CuratorTest, DebiasedEstimateIsCentered) {
  SecureRng rng("curator-debias");
  auto config = CuratorConfig();
  std::vector<uint32_t> values(40, 1);  // true count = 40
  double acc = 0;
  constexpr int kRuns = 30;
  for (int run = 0; run < kRuns; ++run) {
    config.session_id = "debias-" + std::to_string(run);
    auto result = RunHonestProtocol<G>(config, values, rng);
    ASSERT_TRUE(result.accepted());
    acc += result.histogram[0];
  }
  double mean = acc / kRuns;
  // Noise sd = sqrt(31)/2 ~ 2.8; mean of 30 runs has s.e. ~ 0.5.
  EXPECT_NEAR(mean, 40.0, 3.0);
}

TEST(CuratorTest, EmptyClientSetStillRuns) {
  SecureRng rng("curator-empty");
  auto result = RunHonestProtocol<G>(CuratorConfig(), {}, rng);
  EXPECT_TRUE(result.accepted());
  // Pure noise output.
  EXPECT_LE(result.raw_histogram[0], CuratorConfig().NumCoins());
}

TEST(CuratorTest, AllZeroInputsGiveNoiseOnly) {
  SecureRng rng("curator-zeros");
  std::vector<uint32_t> values(25, 0);
  auto result = RunHonestProtocol<G>(CuratorConfig(), values, rng);
  ASSERT_TRUE(result.accepted());
  EXPECT_LE(result.raw_histogram[0], CuratorConfig().NumCoins());
}

TEST(CuratorTest, TimingsArePopulated) {
  SecureRng rng("curator-timings");
  std::vector<uint32_t> values(10, 1);
  auto result = RunHonestProtocol<G>(CuratorConfig(), values, rng);
  ASSERT_TRUE(result.accepted());
  EXPECT_GT(result.timings.sigma_prove_ms, 0.0);
  EXPECT_GT(result.timings.sigma_verify_ms, 0.0);
  EXPECT_GT(result.timings.morra_ms, 0.0);
  EXPECT_GT(result.timings.check_ms, 0.0);
  EXPECT_GT(result.timings.TotalMs(), 0.0);
}

TEST(CuratorTest, SeedMorraModeAlsoCompletes) {
  SecureRng rng("curator-seed-morra");
  auto config = CuratorConfig();
  config.morra_mode = MorraMode::kSeed;
  std::vector<uint32_t> values(15, 1);
  auto result = RunHonestProtocol<G>(config, values, rng);
  EXPECT_TRUE(result.accepted());
  EXPECT_GE(result.raw_histogram[0], 15u);
}

TEST(CuratorTest, TighterEpsilonUsesMoreCoins) {
  SecureRng rng("curator-eps");
  auto config = CuratorConfig();
  config.epsilon = 2.0;  // nb = 763 at delta = 2^-10
  EXPECT_GT(config.NumCoins(), 100u);
  std::vector<uint32_t> values(5, 1);
  auto result = RunHonestProtocol<G>(config, values, rng);
  ASSERT_TRUE(result.accepted());
  EXPECT_LE(result.raw_histogram[0], 5 + config.NumCoins());
}

TEST(CuratorTest, ParallelProvingMatchesSerialAcceptance) {
  SecureRng rng("curator-pool");
  ThreadPool pool(2);
  std::vector<uint32_t> values(10, 1);
  auto result = RunHonestProtocol<G>(CuratorConfig(), values, rng, &pool);
  EXPECT_TRUE(result.accepted());
}

}  // namespace
}  // namespace vdp
