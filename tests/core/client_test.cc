#include "src/core/client.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

ProtocolConfig TestConfig(size_t k, size_t m) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // hits the nb = 31 floor; fast tests
  config.num_provers = k;
  config.num_bins = m;
  config.session_id = "client-test";
  return config;
}

TEST(ClientTest, BundleShapesMatchConfig) {
  Pedersen<G> ped;
  SecureRng rng("shapes");
  auto config = TestConfig(3, 4);
  auto bundle = MakeClientBundle<G>(2, 0, config, ped, rng);
  EXPECT_EQ(bundle.shares.size(), 3u);
  EXPECT_EQ(bundle.upload.commitments.size(), 3u);
  for (const auto& share : bundle.shares) {
    EXPECT_EQ(share.values.size(), 4u);
    EXPECT_EQ(share.randomness.size(), 4u);
  }
  EXPECT_EQ(bundle.upload.bin_proofs.size(), 4u);
}

TEST(ClientTest, HonestBundleValidates) {
  Pedersen<G> ped;
  SecureRng rng("honest");
  for (auto [k, m] : std::vector<std::pair<size_t, size_t>>{{1, 1}, {2, 1}, {2, 3}, {3, 5}}) {
    auto config = TestConfig(k, m);
    uint32_t choice = (m == 1) ? 1 : static_cast<uint32_t>(m - 1);
    auto bundle = MakeClientBundle<G>(choice, 7, config, ped, rng);
    std::string reason;
    EXPECT_TRUE(ValidateClientUpload(bundle.upload, 7, config, ped, &reason))
        << "k=" << k << " m=" << m << ": " << reason;
  }
}

TEST(ClientTest, SharesReconstructOneHotInput) {
  Pedersen<G> ped;
  SecureRng rng("recon");
  auto config = TestConfig(3, 4);
  auto bundle = MakeClientBundle<G>(2, 0, config, ped, rng);
  for (size_t bin = 0; bin < 4; ++bin) {
    S sum = S::Zero();
    for (size_t p = 0; p < 3; ++p) {
      sum += bundle.shares[p].values[bin];
    }
    EXPECT_EQ(sum, bin == 2 ? S::One() : S::Zero()) << "bin=" << bin;
  }
}

TEST(ClientTest, BitSemanticsForSingleBin) {
  Pedersen<G> ped;
  SecureRng rng("bit");
  auto config = TestConfig(2, 1);
  for (uint32_t bit : {0u, 1u}) {
    auto bundle = MakeClientBundle<G>(bit, 0, config, ped, rng);
    S sum = bundle.shares[0].values[0] + bundle.shares[1].values[0];
    EXPECT_EQ(sum, S::FromU64(bit));
    EXPECT_TRUE(ValidateClientUpload(bundle.upload, 0, config, ped));
  }
}

TEST(ClientTest, CommitmentsMatchShares) {
  Pedersen<G> ped;
  SecureRng rng("match");
  auto config = TestConfig(2, 2);
  auto bundle = MakeClientBundle<G>(1, 0, config, ped, rng);
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(ClientShareConsistent(bundle.shares[p], bundle.upload.commitments[p], ped));
  }
}

TEST(ClientTest, ValidationFailsForWrongClientIndex) {
  // Proof context binds the client index: a replayed upload under another
  // identity is rejected.
  Pedersen<G> ped;
  SecureRng rng("replay");
  auto config = TestConfig(2, 1);
  auto bundle = MakeClientBundle<G>(1, 3, config, ped, rng);
  EXPECT_TRUE(ValidateClientUpload(bundle.upload, 3, config, ped));
  EXPECT_FALSE(ValidateClientUpload(bundle.upload, 4, config, ped));
}

TEST(ClientTest, ValidationFailsForWrongSession) {
  Pedersen<G> ped;
  SecureRng rng("session");
  auto config = TestConfig(2, 1);
  auto bundle = MakeClientBundle<G>(1, 0, config, ped, rng);
  auto other = config;
  other.session_id = "another-session";
  EXPECT_FALSE(ValidateClientUpload(bundle.upload, 0, other, ped));
}

TEST(ClientTest, MalformedShapesRejected) {
  Pedersen<G> ped;
  SecureRng rng("malformed");
  auto config = TestConfig(2, 2);
  auto bundle = MakeClientBundle<G>(1, 0, config, ped, rng);

  auto missing_prover = bundle.upload;
  missing_prover.commitments.pop_back();
  std::string reason;
  EXPECT_FALSE(ValidateClientUpload(missing_prover, 0, config, ped, &reason));
  EXPECT_EQ(reason, "malformed upload shape");

  auto missing_bin = bundle.upload;
  missing_bin.commitments[0].pop_back();
  EXPECT_FALSE(ValidateClientUpload(missing_bin, 0, config, ped));

  auto missing_proof = bundle.upload;
  missing_proof.bin_proofs.pop_back();
  EXPECT_FALSE(ValidateClientUpload(missing_proof, 0, config, ped));
}

TEST(ClientTest, InconsistentShareDetectedByProver) {
  Pedersen<G> ped;
  SecureRng rng("inconsistent");
  auto config = TestConfig(2, 1);
  auto bundle = MakeClientBundle<G>(1, 0, config, ped, rng);
  bundle.shares[0].values[0] += S::One();
  EXPECT_FALSE(ClientShareConsistent(bundle.shares[0], bundle.upload.commitments[0], ped));
  // The other prover's share is untouched.
  EXPECT_TRUE(ClientShareConsistent(bundle.shares[1], bundle.upload.commitments[1], ped));
}

TEST(ClientTest, ShareSizeMismatchIsInconsistent) {
  Pedersen<G> ped;
  SecureRng rng("size");
  auto config = TestConfig(2, 2);
  auto bundle = MakeClientBundle<G>(1, 0, config, ped, rng);
  bundle.shares[0].values.pop_back();
  EXPECT_FALSE(ClientShareConsistent(bundle.shares[0], bundle.upload.commitments[0], ped));
}

}  // namespace
}  // namespace vdp
