// Parameterized completeness/consistency sweep over (K, M, n, eps): every
// configuration must accept, include all honest clients, and produce output
// in the exact support [count, count + K*nb] per bin.
#include <gtest/gtest.h>

#include "src/core/protocol.h"

namespace vdp {
namespace {

using G = ModP256;

struct SweepCase {
  size_t provers;
  size_t bins;
  size_t clients;
  double epsilon;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return "K" + std::to_string(info.param.provers) + "_M" + std::to_string(info.param.bins) +
         "_n" + std::to_string(info.param.clients) + "_eps" +
         std::to_string(static_cast<int>(info.param.epsilon));
}

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweepTest, HonestRunAcceptsWithOutputInSupport) {
  const SweepCase& c = GetParam();
  ProtocolConfig config;
  config.epsilon = c.epsilon;
  config.num_provers = c.provers;
  config.num_bins = c.bins;
  config.session_id = "sweep";

  std::vector<uint32_t> values(c.clients);
  std::vector<uint64_t> true_counts(c.bins, 0);
  for (size_t i = 0; i < c.clients; ++i) {
    values[i] = static_cast<uint32_t>(i % c.bins);
    if (c.bins == 1) {
      values[i] = static_cast<uint32_t>(i % 2);
    }
    true_counts[values[i] % c.bins] += (c.bins == 1) ? values[i] : 1;
  }

  SecureRng rng("sweep-" + CaseName({GetParam(), 0}));
  auto result = RunHonestProtocol<G>(config, values, rng);
  ASSERT_TRUE(result.accepted()) << result.verdict.detail;
  EXPECT_EQ(result.accepted_clients.size(), c.clients);

  uint64_t nb = config.NumCoins();
  for (size_t bin = 0; bin < c.bins; ++bin) {
    EXPECT_GE(result.raw_histogram[bin], true_counts[bin]) << "bin " << bin;
    EXPECT_LE(result.raw_histogram[bin], true_counts[bin] + c.provers * nb) << "bin " << bin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigurationSweep, ProtocolSweepTest,
    ::testing::Values(SweepCase{1, 1, 4, 50.0}, SweepCase{1, 1, 16, 50.0},
                      SweepCase{2, 1, 8, 50.0}, SweepCase{3, 1, 6, 50.0},
                      SweepCase{5, 1, 5, 50.0}, SweepCase{1, 2, 8, 50.0},
                      SweepCase{1, 4, 8, 50.0}, SweepCase{2, 3, 9, 50.0},
                      SweepCase{3, 2, 6, 50.0}, SweepCase{1, 1, 8, 8.0},
                      SweepCase{2, 2, 6, 8.0}, SweepCase{1, 1, 0, 50.0}),
    CaseName);

class MorraModeSweepTest
    : public ::testing::TestWithParam<std::tuple<MorraMode, size_t>> {};

TEST_P(MorraModeSweepTest, BothOracleRealizationsComplete) {
  auto [mode, provers] = GetParam();
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = provers;
  config.morra_mode = mode;
  config.session_id = "morra-sweep";
  std::vector<uint32_t> bits(10, 1);
  SecureRng rng("morra-sweep-" + std::to_string(provers) +
                (mode == MorraMode::kPedersen ? "-p" : "-s"));
  auto result = RunHonestProtocol<G>(config, bits, rng);
  ASSERT_TRUE(result.accepted());
  EXPECT_GE(result.raw_histogram[0], 10u);
  EXPECT_LE(result.raw_histogram[0], 10u + provers * config.NumCoins());
}

INSTANTIATE_TEST_SUITE_P(
    MorraModes, MorraModeSweepTest,
    ::testing::Combine(::testing::Values(MorraMode::kPedersen, MorraMode::kSeed),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{3})));

// Parameterized DP accounting sweep: the (eps, delta) -> nb mapping is
// monotone and self-consistent across the whole operating range.
class PrivacyParamTest : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PrivacyParamTest, CoinCountConsistency) {
  auto [eps, delta] = GetParam();
  uint64_t nb = NumCoinsForPrivacy(eps, delta);
  EXPECT_GE(nb, kMinBinomialCoins);
  // Achieved epsilon at this nb is at least as strong as requested.
  EXPECT_LE(EpsilonForCoins(nb, delta), eps * 1.001);
  // Strictly more coins -> strictly more privacy.
  EXPECT_LT(EpsilonForCoins(2 * nb, delta), EpsilonForCoins(nb, delta));
}

INSTANTIATE_TEST_SUITE_P(
    PrivacyGrid, PrivacyParamTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 1.0, 2.0, 5.0),
                       ::testing::Values(1.0 / 1024, 1e-6, 1e-9)));

}  // namespace
}  // namespace vdp
