// Soundness of Pi_Bin: every cheat in Theorem 4.1's case analysis is caught
// by the public verifier and attributed to the cheating prover.
#include <gtest/gtest.h>

#include "src/core/adversary.h"
#include "src/core/protocol.h"

namespace vdp {
namespace {

using G = ModP256;

ProtocolConfig SoundnessConfig(size_t k) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31
  config.num_provers = k;
  config.num_bins = 1;
  config.session_id = "soundness-k" + std::to_string(k);
  return config;
}

struct Setup {
  Pedersen<G> ped;
  std::vector<ClientBundle<G>> clients;
  SecureRng verifier_rng{"verifier"};
};

Setup MakeSetup(const ProtocolConfig& config, size_t num_clients, const std::string& seed) {
  Setup s;
  SecureRng crng(seed);
  for (size_t i = 0; i < num_clients; ++i) {
    s.clients.push_back(MakeClientBundle<G>(1, i, config, s.ped, crng));
  }
  return s;
}

TEST(SoundnessTest, NonBitCoinDetected) {
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 5, "nonbit");
  NonBitCoinProver<G> cheater(0, config, setup.ped, SecureRng("cheater"));
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kCoinProofInvalid);
  EXPECT_EQ(result.verdict.cheating_prover, 0u);
}

TEST(SoundnessTest, BiasedOutputDetected) {
  // The headline attack: nudge the count by +5 and blame the DP noise.
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 5, "bias");
  BiasedOutputProver<G> cheater(0, config, setup.ped, SecureRng("cheater"), /*bias=*/5);
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
  EXPECT_EQ(result.verdict.cheating_prover, 0u);
}

TEST(SoundnessTest, EvenBiasOfOneIsDetected) {
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 5, "bias1");
  BiasedOutputProver<G> cheater(0, config, setup.ped, SecureRng("cheater"), /*bias=*/1);
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
}

TEST(SoundnessTest, DroppedClientDetected) {
  // Guaranteed inclusion: a prover that excludes a validated honest client's
  // share cannot satisfy Eq. 10, because the verifier multiplies in the
  // client's public commitment regardless.
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 5, "drop");
  ClientDroppingProver<G> cheater(0, config, setup.ped, SecureRng("cheater"));
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
  EXPECT_EQ(result.verdict.cheating_prover, 0u);
}

TEST(SoundnessTest, NoNoiseOutputDetected) {
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 5, "nonoise");
  NoNoiseProver<G> cheater(0, config, setup.ped, SecureRng("cheater"));
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
}

TEST(SoundnessTest, MorraCheatDetected) {
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 3, "morra");
  MorraCheatingProver<G> cheater(0, config, setup.ped, SecureRng("cheater"));
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kMorraAborted);
  EXPECT_EQ(result.verdict.cheating_prover, 0u);
}

TEST(SoundnessTest, CheatingProverAmongHonestOnesIsAttributed) {
  // K = 3 with the middle prover biased: the verdict must name prover 1.
  auto config = SoundnessConfig(3);
  auto setup = MakeSetup(config, 4, "attribution");
  Prover<G> honest0(0, config, setup.ped, SecureRng("h0"));
  BiasedOutputProver<G> cheater(1, config, setup.ped, SecureRng("c1"), 3);
  Prover<G> honest2(2, config, setup.ped, SecureRng("h2"));
  std::vector<Prover<G>*> provers = {&honest0, &cheater, &honest2};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
  EXPECT_EQ(result.verdict.cheating_prover, 1u);
}

TEST(SoundnessTest, HonestRunIsNotFalselyAccused) {
  // Completeness restated as the soundness suite's control group.
  auto config = SoundnessConfig(2);
  auto setup = MakeSetup(config, 6, "control");
  Prover<G> p0(0, config, setup.ped, SecureRng("p0"));
  Prover<G> p1(1, config, setup.ped, SecureRng("p1"));
  std::vector<Prover<G>*> provers = {&p0, &p1};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_TRUE(result.accepted()) << result.verdict.detail;
}

TEST(SoundnessTest, MalformedOutputShapeRejected) {
  class TruncatingProver : public Prover<G> {
   public:
    using Prover<G>::Prover;
    ProverOutputMsg<G> ComputeOutput() override {
      auto out = Prover<G>::ComputeOutput();
      out.y.clear();  // wrong shape
      return out;
    }
  };
  auto config = SoundnessConfig(1);
  auto setup = MakeSetup(config, 2, "malformed");
  TruncatingProver cheater(0, config, setup.ped, SecureRng("cheater"));
  std::vector<Prover<G>*> provers = {&cheater};
  auto result = RunProtocol(config, setup.ped, setup.clients, provers, setup.verifier_rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kMalformedMessage);
}

TEST(SoundnessTest, BiasDetectedInMultiBinHistogram) {
  ProtocolConfig config = SoundnessConfig(1);
  config.num_bins = 3;
  Pedersen<G> ped;
  SecureRng crng("hist-clients");
  std::vector<ClientBundle<G>> clients;
  for (size_t i = 0; i < 6; ++i) {
    clients.push_back(MakeClientBundle<G>(static_cast<uint32_t>(i % 3), i, config, ped, crng));
  }
  BiasedOutputProver<G> cheater(0, config, ped, SecureRng("cheater"), 2);
  std::vector<Prover<G>*> provers = {&cheater};
  SecureRng vrng("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
}

}  // namespace
}  // namespace vdp
