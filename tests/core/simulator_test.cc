// Zero-knowledge: the Appendix D simulator fabricates accepting transcripts
// from the ideal output alone.
#include "src/core/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/client.h"
#include "src/dp/binomial.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

std::vector<G::Element> MakeClientCommitments(const Pedersen<G>& ped, size_t n,
                                              uint64_t true_count, SecureRng& rng,
                                              S* total_randomness = nullptr) {
  std::vector<G::Element> commitments;
  S total = S::Zero();
  for (size_t i = 0; i < n; ++i) {
    S x = S::FromU64(i < true_count ? 1 : 0);
    S r = S::Random(rng);
    commitments.push_back(ped.Commit(x, r));
    total += r;
  }
  if (total_randomness != nullptr) {
    *total_randomness = total;
  }
  return commitments;
}

TEST(SimulatorTest, SimulatedTranscriptPassesVerifierChecks) {
  Pedersen<G> ped;
  SecureRng rng("sim-accept");
  constexpr size_t kN = 10;
  constexpr uint64_t kCount = 6;
  constexpr size_t kCoins = 31;
  auto commitments = MakeClientCommitments(ped, kN, kCount, rng);
  // Ideal functionality output: count + Binomial noise.
  uint64_t ideal = kCount + SampleBinomialHalf(kCoins, rng);
  auto transcript = SimulateCurator(ped, commitments, S::FromU64(ideal), kCoins, rng);
  EXPECT_TRUE(VerifyCuratorTranscript(ped, commitments, transcript));
  EXPECT_EQ(transcript.y, S::FromU64(ideal));
  EXPECT_EQ(transcript.coin_commitments.size(), kCoins);
}

TEST(SimulatorTest, SimulatorNeverSawClientOpenings) {
  // The simulator receives only commitments (no openings, no inputs). Run it
  // against commitments whose openings were discarded before the call --
  // acceptance then *proves* no private data was needed.
  Pedersen<G> ped;
  SecureRng rng("sim-blind");
  std::vector<G::Element> commitments;
  {
    SecureRng ephemeral("ephemeral-client-secrets");
    commitments = MakeClientCommitments(ped, 8, 3, ephemeral);
    // openings destroyed here
  }
  auto transcript = SimulateCurator(ped, commitments, S::FromU64(42), 31, rng);
  EXPECT_TRUE(VerifyCuratorTranscript(ped, commitments, transcript));
}

TEST(SimulatorTest, WorksForArbitraryClaimedOutputs) {
  // ZK simulation is possible for *any* claimed y -- binding to the true
  // count is soundness's job (the real prover cannot open what it did not
  // compute), not zero-knowledge's.
  Pedersen<G> ped;
  SecureRng rng("sim-any");
  auto commitments = MakeClientCommitments(ped, 5, 2, rng);
  for (uint64_t claimed : {0ull, 7ull, 1000ull}) {
    auto transcript = SimulateCurator(ped, commitments, S::FromU64(claimed), 31, rng);
    EXPECT_TRUE(VerifyCuratorTranscript(ped, commitments, transcript)) << claimed;
  }
}

TEST(SimulatorTest, TamperedTranscriptFails) {
  Pedersen<G> ped;
  SecureRng rng("sim-tamper");
  auto commitments = MakeClientCommitments(ped, 5, 2, rng);
  auto transcript = SimulateCurator(ped, commitments, S::FromU64(10), 31, rng);
  ASSERT_TRUE(VerifyCuratorTranscript(ped, commitments, transcript));

  auto bad_y = transcript;
  bad_y.y = bad_y.y + S::One();
  EXPECT_FALSE(VerifyCuratorTranscript(ped, commitments, bad_y));

  auto bad_bit = transcript;
  bad_bit.public_bits[0] = !bad_bit.public_bits[0];
  EXPECT_FALSE(VerifyCuratorTranscript(ped, commitments, bad_bit));

  auto bad_coin = transcript;
  bad_coin.coin_commitments[3] = G::Mul(bad_coin.coin_commitments[3], G::Generator());
  EXPECT_FALSE(VerifyCuratorTranscript(ped, commitments, bad_coin));
}

TEST(SimulatorTest, SimulatedCoinCommitmentsAdmitOrSimulation) {
  // In the O_OR-hybrid model the simulator also answers the bit-membership
  // queries; concretely, chosen-challenge OR transcripts accept for every
  // simulated coin commitment.
  Pedersen<G> ped;
  SecureRng rng("sim-or");
  auto commitments = MakeClientCommitments(ped, 4, 2, rng);
  auto transcript = SimulateCurator(ped, commitments, S::FromU64(17), 8, rng);
  for (const auto& c : transcript.coin_commitments) {
    S challenge = S::Random(rng);
    auto or_transcript = OrSimulate(ped, c, challenge, rng);
    EXPECT_TRUE(OrVerifyWithChallenge(ped, c, or_transcript, challenge));
  }
}

TEST(SimulatorTest, PublicBitsLookUniform) {
  Pedersen<G> ped;
  SecureRng rng("sim-bits");
  auto commitments = MakeClientCommitments(ped, 3, 1, rng);
  constexpr size_t kCoins = 2000;
  auto transcript = SimulateCurator(ped, commitments, S::FromU64(100), kCoins, rng);
  size_t ones = 0;
  for (bool b : transcript.public_bits) {
    ones += b ? 1 : 0;
  }
  double sigma = std::sqrt(kCoins * 0.25);
  EXPECT_NEAR(static_cast<double>(ones), kCoins / 2.0, 5 * sigma);
}

TEST(SimulatorTest, UpdateCommitmentIsAnInvolution) {
  Pedersen<G> ped;
  SecureRng rng("sim-invol");
  auto c = ped.Commit(S::FromU64(1), S::Random(rng));
  EXPECT_EQ(UpdateCommitment(ped, UpdateCommitment(ped, c, true), true), c);
  EXPECT_EQ(UpdateCommitment(ped, c, false), c);
}

TEST(SimulatorTest, EmptyClientSetSupported) {
  Pedersen<G> ped;
  SecureRng rng("sim-empty");
  std::vector<G::Element> no_clients;
  auto transcript = SimulateCurator(ped, no_clients, S::FromU64(12), 31, rng);
  EXPECT_TRUE(VerifyCuratorTranscript(ped, no_clients, transcript));
}

}  // namespace
}  // namespace vdp
