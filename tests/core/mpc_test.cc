// Pi_Bin in the client-server MPC model (K >= 2): completeness, client
// inclusion/exclusion guarantees, and noise aggregation across provers.
#include <gtest/gtest.h>

#include "src/core/adversary.h"
#include "src/core/protocol.h"

namespace vdp {
namespace {

using G = ModP256;

ProtocolConfig MpcConfig(size_t k, size_t m = 1) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31
  config.num_provers = k;
  config.num_bins = m;
  config.session_id = "mpc-test-k" + std::to_string(k) + "-m" + std::to_string(m);
  return config;
}

TEST(MpcTest, HonestRunsAcceptForVariousK) {
  for (size_t k : {2u, 3u, 5u}) {
    SecureRng rng("mpc-k" + std::to_string(k));
    std::vector<uint32_t> values = {1, 1, 0, 1, 0, 0, 1, 1};
    auto result = RunHonestProtocol<G>(MpcConfig(k), values, rng);
    EXPECT_TRUE(result.accepted()) << "k=" << k << " " << result.verdict.detail;
    // Each of the K provers adds its own Binomial(nb, 1/2) draw.
    uint64_t nb = MpcConfig(k).NumCoins();
    EXPECT_GE(result.raw_histogram[0], 5u);
    EXPECT_LE(result.raw_histogram[0], 5u + k * nb);
  }
}

TEST(MpcTest, NoiseScalesWithNumberOfProvers) {
  // E[raw - count] = K * nb / 2; check the offset tracks K.
  SecureRng rng("mpc-noise-scale");
  std::vector<uint32_t> values(10, 1);
  double offset_k1 = 0;
  double offset_k3 = 0;
  constexpr int kRuns = 20;
  for (int run = 0; run < kRuns; ++run) {
    auto c1 = MpcConfig(1);
    c1.session_id += "-r" + std::to_string(run);
    auto c3 = MpcConfig(3);
    c3.session_id += "-r" + std::to_string(run);
    offset_k1 += static_cast<double>(RunHonestProtocol<G>(c1, values, rng).raw_histogram[0]) - 10;
    offset_k3 += static_cast<double>(RunHonestProtocol<G>(c3, values, rng).raw_histogram[0]) - 10;
  }
  offset_k1 /= kRuns;
  offset_k3 /= kRuns;
  // nb = 31: expected offsets 15.5 vs 46.5.
  EXPECT_NEAR(offset_k1, 15.5, 5.0);
  EXPECT_NEAR(offset_k3, 46.5, 8.0);
}

TEST(MpcTest, InvalidClientIsExcludedRunContinues) {
  SecureRng rng("mpc-exclude");
  auto config = MpcConfig(2);
  Pedersen<G> ped;
  SecureRng crng = rng.Fork("clients");
  std::vector<ClientBundle<G>> clients;
  for (size_t i = 0; i < 5; ++i) {
    clients.push_back(MakeClientBundle<G>(1, i, config, ped, crng));
  }
  // Client 5 submits an illegal value of 7.
  clients.push_back(MakeNonBitClientBundle<G>(7, 5, config, ped, crng));

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < 2; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped, rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients.size(), 5u);  // cheater dropped
  // Output reflects only the 5 honest ones.
  EXPECT_GE(result.raw_histogram[0], 5u);
  EXPECT_LE(result.raw_histogram[0], 5u + 2 * config.NumCoins());
}

TEST(MpcTest, BadProofClientExcluded) {
  SecureRng rng("mpc-badproof");
  auto config = MpcConfig(2);
  Pedersen<G> ped;
  SecureRng crng = rng.Fork("clients");
  std::vector<ClientBundle<G>> clients;
  clients.push_back(MakeClientBundle<G>(1, 0, config, ped, crng));
  clients.push_back(MakeBadProofClientBundle<G>(1, 1, config, ped, crng));

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < 2; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped, rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients, std::vector<size_t>{0});
}

TEST(MpcTest, InconsistentShareClientExcluded) {
  SecureRng rng("mpc-inconsistent");
  auto config = MpcConfig(2);
  Pedersen<G> ped;
  SecureRng crng = rng.Fork("clients");
  std::vector<ClientBundle<G>> clients;
  clients.push_back(MakeClientBundle<G>(1, 0, config, ped, crng));
  clients.push_back(MakeInconsistentShareClientBundle<G>(1, 1, config, ped, crng));

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < 2; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped, rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients, std::vector<size_t>{0});
}

TEST(MpcTest, DoubleVoteClientExcludedByOneHotCheck) {
  SecureRng rng("mpc-doublevote");
  auto config = MpcConfig(2, /*m=*/3);
  Pedersen<G> ped;
  SecureRng crng = rng.Fork("clients");
  std::vector<ClientBundle<G>> clients;
  clients.push_back(MakeClientBundle<G>(0, 0, config, ped, crng));
  clients.push_back(MakeDoubleVoteClientBundle<G>(1, config, ped, crng));
  // Sanity: the double voter's per-bin proofs are individually valid, so
  // only the sum-to-one check can catch it.
  std::string reason;
  EXPECT_FALSE(ValidateClientUpload(clients[1].upload, 1, config, ped, &reason));
  EXPECT_EQ(reason, "bins do not sum to one");

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < 2; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped, rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients, std::vector<size_t>{0});
}

TEST(MpcTest, SharesAloneRevealNothingAboutInputs) {
  // A single prover's view of client shares is uniformly random: two clients
  // voting differently hand prover 0 identically distributed shares. Spot
  // check: the shares are not equal to the plaintext inputs.
  SecureRng rng("mpc-privacy");
  auto config = MpcConfig(2);
  Pedersen<G> ped;
  SecureRng crng = rng.Fork("clients");
  auto voter_yes = MakeClientBundle<G>(1, 0, config, ped, crng);
  auto voter_no = MakeClientBundle<G>(0, 1, config, ped, crng);
  using S = G::Scalar;
  EXPECT_NE(voter_yes.shares[0].values[0], S::One());
  EXPECT_NE(voter_no.shares[0].values[0], S::Zero());
  // And the two shares reconstruct different values.
  EXPECT_EQ(voter_yes.shares[0].values[0] + voter_yes.shares[1].values[0], S::One());
  EXPECT_EQ(voter_no.shares[0].values[0] + voter_no.shares[1].values[0], S::Zero());
}

TEST(MpcTest, SeedMorraModeWithMultipleProvers) {
  SecureRng rng("mpc-seed");
  auto config = MpcConfig(3);
  config.morra_mode = MorraMode::kSeed;
  std::vector<uint32_t> values(12, 1);
  auto result = RunHonestProtocol<G>(config, values, rng);
  EXPECT_TRUE(result.accepted());
}

}  // namespace
}  // namespace vdp
