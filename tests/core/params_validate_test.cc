// ProtocolConfig::Validate(): every nonsensical parameter combination is
// rejected with a structured, field-attributed error -- at protocol entry
// (RunProtocol / AuditTranscript return kInvalidConfig) and at the backend
// factory (MakeVerifyBackend throws) -- and sane configurations pass.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/audit.h"
#include "src/verify/factory.h"

namespace vdp {
namespace {

using G = ModP256;

TEST(ProtocolConfigValidateTest, DefaultConfigIsValid) {
  ProtocolConfig config;
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(ProtocolConfigValidateTest, RealisticBackendConfigsAreValid) {
  ProtocolConfig config;
  config.epsilon = 0.5;
  config.delta = 1.0 / (1 << 20);
  config.num_provers = 3;
  config.num_bins = 16;
  config.batch_verify = true;
  EXPECT_FALSE(config.Validate().has_value());
  config.num_verify_shards = 8;
  EXPECT_FALSE(config.Validate().has_value());
  config.verify_workers = 4;
  EXPECT_FALSE(config.Validate().has_value());
  config.verify_workers = 0;  // in-process is explicit and valid
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(ProtocolConfigValidateTest, RejectsBadEpsilon) {
  for (double epsilon : {0.0, -1.0, std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()}) {
    ProtocolConfig config;
    config.epsilon = epsilon;
    auto error = config.Validate();
    ASSERT_TRUE(error.has_value()) << "epsilon=" << epsilon;
    EXPECT_EQ(error->field, "epsilon");
    EXPECT_NE(error->Render().find("ProtocolConfig.epsilon"), std::string::npos);
  }
}

TEST(ProtocolConfigValidateTest, RejectsBadDelta) {
  for (double delta : {0.0, -0.25, 1.0, 2.0, std::numeric_limits<double>::quiet_NaN()}) {
    ProtocolConfig config;
    config.delta = delta;
    auto error = config.Validate();
    ASSERT_TRUE(error.has_value()) << "delta=" << delta;
    EXPECT_EQ(error->field, "delta");
  }
}

TEST(ProtocolConfigValidateTest, RejectsZeroProvers) {
  ProtocolConfig config;
  config.num_provers = 0;
  auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "num_provers");
}

TEST(ProtocolConfigValidateTest, RejectsZeroBins) {
  ProtocolConfig config;
  config.num_bins = 0;
  auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "num_bins");
}

TEST(ProtocolConfigValidateTest, RejectsZeroShards) {
  ProtocolConfig config;
  config.num_verify_shards = 0;
  auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "num_verify_shards");
}

// verify_workers == 1 is the ambiguous combination: it *reads* like a
// multi-process request but has always carried in-process semantics
// (the pipeline only leaves the process at > 1). Validate() forces the
// caller to say which one they mean.
TEST(ProtocolConfigValidateTest, RejectsSingleWorkerAmbiguity) {
  ProtocolConfig config;
  config.verify_workers = 1;
  auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "verify_workers");
  EXPECT_NE(error->message.find("ambiguous"), std::string::npos);
}

// Protocol entry: an invalid config is rejected as a structured verdict
// before any party does cryptographic work.
TEST(ProtocolConfigValidateTest, RunProtocolReturnsInvalidConfigVerdict) {
  Pedersen<G> ped;
  ProtocolConfig config;
  config.num_bins = 0;
  SecureRng rng("params-validate-run");
  auto result = RunProtocol<G>(config, ped, {}, {}, rng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kInvalidConfig);
  EXPECT_EQ(result.verdict.cheating_prover, kNoParty);
  EXPECT_NE(result.verdict.detail.find("num_bins"), std::string::npos);
  EXPECT_STREQ(VerdictCodeName(result.verdict.code), "invalid-config");
}

TEST(ProtocolConfigValidateTest, AuditReturnsInvalidConfigVerdict) {
  Pedersen<G> ped;
  ProtocolConfig config;
  config.epsilon = -2.0;
  PublicTranscript<G> transcript;
  auto report = AuditTranscript(transcript, config, ped);
  EXPECT_FALSE(report.accepted());
  EXPECT_EQ(report.verdict.code, VerdictCode::kInvalidConfig);
  EXPECT_NE(report.verdict.detail.find("epsilon"), std::string::npos);
}

// Factory entry: every invalid combination throws with the rendered error.
TEST(ProtocolConfigValidateTest, FactoryThrowsOnEveryInvalidCombo) {
  Pedersen<G> ped;
  auto expect_throws = [&](ProtocolConfig config, const std::string& field) {
    try {
      MakeVerifyBackend<G>(config, ped);
      FAIL() << "expected std::invalid_argument for " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };
  ProtocolConfig config;
  config.epsilon = 0.0;
  expect_throws(config, "epsilon");
  config = ProtocolConfig{};
  config.delta = 1.5;
  expect_throws(config, "delta");
  config = ProtocolConfig{};
  config.num_provers = 0;
  expect_throws(config, "num_provers");
  config = ProtocolConfig{};
  config.num_bins = 0;
  expect_throws(config, "num_bins");
  config = ProtocolConfig{};
  config.num_verify_shards = 0;
  expect_throws(config, "num_verify_shards");
  config = ProtocolConfig{};
  config.verify_workers = 1;
  expect_throws(config, "verify_workers");
}

}  // namespace
}  // namespace vdp
