// Executable companions to Section 5 (Theorem 5.2): information-theoretic
// verifiable DP is impossible.
//
// The proof has two leg: (1) without one-way functions (commitments), two
// parties cannot jointly sample an unbiased public coin -- a last mover
// dictates the outcome; (2) commitments cannot be simultaneously
// statistically binding and statistically hiding -- Pedersen commitments are
// perfectly hiding, so a party knowing the trapdoor log_g(h) can equivocate.
// Together: some computational assumption is necessary, and the soundness of
// Pi_Bin is inherently computational.
#include <gtest/gtest.h>

#include "src/commit/pedersen.h"
#include "src/morra/adversary.h"
#include "src/sigma/or_proof.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

TEST(SeparationTest, LastMoverDictatesCommitmentFreeCoins) {
  SecureRng rng("separation-bias");
  // Whatever the target, the adversary forces every coin: bias = 1.
  auto ones = RunCommitmentFreeMorra<G>(4, 50, /*adversary_last=*/true, true, rng);
  auto zeros = RunCommitmentFreeMorra<G>(4, 50, /*adversary_last=*/true, false, rng);
  size_t forced = 0;
  for (bool c : ones.coins) {
    forced += c ? 1 : 0;
  }
  for (bool c : zeros.coins) {
    forced += c ? 0 : 1;
  }
  EXPECT_EQ(forced, 100u);  // complete control, exactly as Theorem 5.1 warns
}

TEST(SeparationTest, CommittedMorraReducesLastMoverToAbort) {
  // With binding commitments the same adversary can only abort (detectably),
  // never bias: the committed equivocation attempt is caught and attributed.
  Pedersen<G> ped;
  MorraParty<G> honest(SecureRng("honest"));
  EquivocatingMorraParty<G> last_mover{SecureRng("last-mover")};
  std::vector<MorraParty<G>*> parties = {&honest, &last_mover};
  auto outcome = RunMorra(parties, 50, ped);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.cheater, 1u);
  EXPECT_TRUE(outcome.coins.empty());
}

TEST(SeparationTest, PedersenIsEquivocableGivenTheTrapdoor) {
  // Pedersen is *perfectly* hiding, so it cannot be statistically binding:
  // with alpha = log_g(h), Com(x, r) = g^{x + alpha r} opens to any x'.
  // This is the second leg of Theorem 5.2: an unbounded prover (one that can
  // compute discrete logs) breaks soundness.
  SecureRng rng("trapdoor");
  S alpha = S::Random(rng);
  if (alpha.IsZero()) {
    alpha = S::One();
  }
  PedersenParams<G> trapdoored;
  trapdoored.g = G::Generator();
  trapdoored.h = G::ExpG(alpha);  // adversarially generated parameters
  Pedersen<G> ped(trapdoored);

  S x = S::FromU64(0);
  S r = S::Random(rng);
  auto c = ped.Commit(x, r);

  // Equivocate to x' = 1: r' = r + (x - x') / alpha.
  S x_prime = S::One();
  S r_prime = r + (x - x_prime) * alpha.Inverse();
  EXPECT_TRUE(ped.Verify(c, x, r));
  EXPECT_TRUE(ped.Verify(c, x_prime, r_prime));  // binding broken
  EXPECT_NE(x, x_prime);
}

TEST(SeparationTest, EquivocationDefeatsTheOrProof) {
  // With the trapdoor, a commitment to 5 gets a *valid* OR proof: soundness
  // of verifiable DP is computational, never statistical.
  SecureRng rng("trapdoor-or");
  S alpha = S::Random(rng);
  if (alpha.IsZero()) {
    alpha = S::One();
  }
  PedersenParams<G> trapdoored;
  trapdoored.g = G::Generator();
  trapdoored.h = G::ExpG(alpha);
  Pedersen<G> ped(trapdoored);

  S x = S::FromU64(5);  // clearly not a bit
  S r = S::Random(rng);
  auto c = ped.Commit(x, r);
  // Equivocated opening to 1.
  S r_prime = r + (x - S::One()) * alpha.Inverse();
  auto proof = OrProve(ped, c, 1, r_prime, rng, "trapdoor");
  EXPECT_TRUE(OrVerify(ped, c, proof, "trapdoor"));
}

TEST(SeparationTest, HashToGroupParametersResistTrivialTrapdoors) {
  // The honest setup derives h by hashing into the group, so no participant
  // knows log_g(h): the first 1000 powers of g do not hit h (smoke check;
  // real assurance is the hash derivation itself).
  Pedersen<G> ped;  // default = hash-derived h
  auto acc = G::Identity();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(ped.params().h, acc);
    acc = G::Mul(acc, ped.params().g);
  }
}

TEST(SeparationTest, HidingIsPerfectOverRandomness) {
  // For fixed x, Com(x, r) with uniform r is uniform over the whole group --
  // spot-check that commitments to 0 and to 1 can collide across randomness:
  // Com(0, r) == Com(1, r') when r' = r - 1/alpha (using a trapdoor to
  // exhibit the collision explicitly).
  SecureRng rng("perfect-hiding");
  S alpha = S::Random(rng);
  if (alpha.IsZero()) {
    alpha = S::One();
  }
  PedersenParams<G> pp;
  pp.g = G::Generator();
  pp.h = G::ExpG(alpha);
  Pedersen<G> ped(pp);
  S r = S::Random(rng);
  S r_prime = r - alpha.Inverse();
  EXPECT_EQ(ped.Commit(S::Zero(), r), ped.Commit(S::One(), r_prime));
}

}  // namespace
}  // namespace vdp
