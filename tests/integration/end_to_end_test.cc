// Full-pipeline integration tests across group backends: clients share and
// prove, provers commit/prove/aggregate, Morra flips coins, the public
// verifier audits, and the published histogram is the true answer plus
// certified Binomial noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/baseline/nonverifiable_curator.h"
#include "src/core/adversary.h"
#include "src/core/histogram.h"
#include "src/core/protocol.h"
#include "src/net/server_process.h"

namespace vdp {
namespace {

template <typename G>
class EndToEndTest : public ::testing::Test {};

using GroupTypes = ::testing::Types<ModP256, ModP512, Ed25519Group>;
TYPED_TEST_SUITE(EndToEndTest, GroupTypes);

ProtocolConfig E2eConfig(size_t k, size_t m, const std::string& sid) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31
  config.num_provers = k;
  config.num_bins = m;
  config.session_id = sid;
  // CI hook: one workflow configuration exports VDP_NUM_VERIFY_SHARDS > 1 so
  // the whole integration suite exercises the sharded validation pipeline
  // (src/shard/), which is decision-equivalent to the monolithic path.
  if (const char* env = std::getenv("VDP_NUM_VERIFY_SHARDS")) {
    config.num_verify_shards = static_cast<size_t>(std::max(1L, std::strtol(env, nullptr, 10)));
  }
  // Second CI hook: VDP_VERIFY_WORKERS > 1 pushes the same suite through
  // the multi-process pipeline (verify_worker subprocesses over the wire
  // format, src/shard/process_pool.h), which is equally decision-identical.
  if (const char* env = std::getenv("VDP_VERIFY_WORKERS")) {
    config.verify_workers = static_cast<size_t>(std::max(0L, std::strtol(env, nullptr, 10)));
  }
  // Third CI hook: VDP_REMOTE_VERIFIERS ("spawn:N" stands up a shared
  // loopback verify_server fleet; or an endpoint list with
  // VDP_REMOTE_AUTH_KEY) pushes the same suite through the remote socket
  // backend (src/net/), which is equally decision-identical. When the env
  // var is set the hook MUST apply -- silently degrading to the in-process
  // path would let the remote-loopback CI job go green while testing
  // nothing remote.
  if (!net::ApplyRemoteEnvHook(&config) &&
      std::getenv("VDP_REMOTE_VERIFIERS") != nullptr) {
    ADD_FAILURE() << "VDP_REMOTE_VERIFIERS is set but no remote fleet could be "
                     "applied (is verify_server next to the test binary?)";
  }
  return config;
}

TYPED_TEST(EndToEndTest, TrustedCuratorAcceptsOnEveryBackend) {
  using G = TypeParam;
  SecureRng rng("e2e-curator-" + G::Name());
  std::vector<uint32_t> bits = {1, 0, 1, 1, 0};
  auto result = RunHonestProtocol<G>(E2eConfig(1, 1, "e2e-" + G::Name()), bits, rng);
  EXPECT_TRUE(result.accepted()) << result.verdict.detail;
  EXPECT_GE(result.raw_histogram[0], 3u);
  EXPECT_LE(result.raw_histogram[0], 3u + 31u);
}

TYPED_TEST(EndToEndTest, MpcHistogramAcceptsOnEveryBackend) {
  using G = TypeParam;
  SecureRng rng("e2e-mpc-" + G::Name());
  std::vector<uint32_t> votes = {0, 1, 2, 1, 1};
  auto config = E2eConfig(2, 3, "e2e-mpc-" + G::Name());
  auto [result, summary] = RunVerifiableElection<G>(config, votes, rng);
  EXPECT_TRUE(result.accepted()) << result.verdict.detail;
  EXPECT_EQ(summary.estimates.size(), 3u);
}

TEST(EndToEndTest2, VerifiableOutputMatchesNonVerifiableDistribution) {
  // Verifiability must not change the mechanism: the verifiable pipeline's
  // output distribution (count + Binomial(nb,1/2)) matches the plain
  // curator's. Compare means over repeated runs.
  using G = ModP256;
  SecureRng rng("dist-match");
  std::vector<uint32_t> bits(30, 1);
  ProtocolConfig config = E2eConfig(1, 1, "dist");
  NonVerifiableCurator plain(config.epsilon, config.delta);

  constexpr int kRuns = 25;
  double verifiable_mean = 0;
  double plain_mean = 0;
  for (int run = 0; run < kRuns; ++run) {
    config.session_id = "dist-" + std::to_string(run);
    auto vr = RunHonestProtocol<G>(config, bits, rng);
    EXPECT_TRUE(vr.accepted());
    verifiable_mean += static_cast<double>(vr.raw_histogram[0]);
    plain_mean += static_cast<double>(plain.Release(bits, rng).raw);
  }
  verifiable_mean /= kRuns;
  plain_mean /= kRuns;
  // Both should be ~ 30 + 15.5; allow generous sampling slack (sd ~ 2.8).
  EXPECT_NEAR(verifiable_mean, plain_mean, 4.0);
}

TEST(EndToEndTest2, NoiseDistributionHasBinomialMoments) {
  using G = ModP256;
  SecureRng rng("moments");
  ProtocolConfig config = E2eConfig(1, 1, "moments");
  std::vector<uint32_t> bits(10, 1);
  constexpr int kRuns = 60;
  double sum = 0;
  double sum_sq = 0;
  for (int run = 0; run < kRuns; ++run) {
    config.session_id = "moments-" + std::to_string(run);
    auto result = RunHonestProtocol<G>(config, bits, rng);
    ASSERT_TRUE(result.accepted());
    double noise = static_cast<double>(result.raw_histogram[0]) - 10.0;
    sum += noise;
    sum_sq += noise * noise;
  }
  double mean = sum / kRuns;
  double var = sum_sq / kRuns - mean * mean;
  // Binomial(31, 1/2): mean 15.5 (s.e. ~0.36), var 7.75 (wide tolerance).
  EXPECT_NEAR(mean, 15.5, 2.0);
  EXPECT_NEAR(var, 7.75, 5.0);
}

TEST(EndToEndTest2, LargeScaleRunWithManyClients) {
  using G = ModP256;
  SecureRng rng("large");
  ProtocolConfig config = E2eConfig(2, 1, "large");
  std::vector<uint32_t> bits(300);
  size_t true_count = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    bits[i] = (i % 3 == 0) ? 1 : 0;
    true_count += bits[i];
  }
  ThreadPool pool(2);
  auto result = RunHonestProtocol<G>(config, bits, rng, &pool);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients.size(), 300u);
  EXPECT_NEAR(result.histogram[0], static_cast<double>(true_count), 30.0);
}

TEST(EndToEndTest2, MixedHonestAndMaliciousClientsAndHonestProvers) {
  using G = ModP256;
  ProtocolConfig config = E2eConfig(2, 3, "mixed");
  Pedersen<G> ped;
  SecureRng rng("mixed");
  SecureRng crng = rng.Fork("clients");

  std::vector<ClientBundle<G>> clients;
  size_t honest_count = 0;
  for (size_t i = 0; i < 12; ++i) {
    clients.push_back(MakeClientBundle<G>(static_cast<uint32_t>(i % 3), i, config, ped, crng));
    ++honest_count;
  }
  clients.push_back(MakeDoubleVoteClientBundle<G>(clients.size(), config, ped, crng));
  clients.push_back(MakeNonBitClientBundle<G>(4, clients.size(), config, ped, crng));

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < 2; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped, rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients.size(), honest_count);
}

TEST(EndToEndTest2, ReRunWithSameSeedIsDeterministic) {
  using G = ModP256;
  std::vector<uint32_t> bits = {1, 1, 0, 1};
  auto run = [&] {
    SecureRng rng("determinism");
    return RunHonestProtocol<G>(E2eConfig(1, 1, "det"), bits, rng);
  };
  auto r1 = run();
  auto r2 = run();
  ASSERT_TRUE(r1.accepted());
  ASSERT_TRUE(r2.accepted());
  EXPECT_EQ(r1.raw_histogram[0], r2.raw_histogram[0]);
}

TEST(EndToEndTest2, DifferentSessionsProduceDifferentNoise) {
  using G = ModP256;
  SecureRng rng("sessions");
  std::vector<uint32_t> bits(20, 1);
  auto r1 = RunHonestProtocol<G>(E2eConfig(1, 1, "session-a"), bits, rng);
  auto r2 = RunHonestProtocol<G>(E2eConfig(1, 1, "session-b"), bits, rng);
  ASSERT_TRUE(r1.accepted());
  ASSERT_TRUE(r2.accepted());
  // Coin flip collision is possible but unlikely (Binomial(31) support).
  EXPECT_NE(r1.raw_histogram[0], r2.raw_histogram[0]);
}

}  // namespace
}  // namespace vdp
