// Cross-mode equivalence: monolithic, in-process-sharded, and multi-process
// verification are three executions of the same abstract verifier, so on
// the same seeded transcript they must produce bit-identical accept sets,
// Eq. 10 commitment products, and audit verdicts -- including on transcripts
// that contain invalid proofs and on transcripts tampered after the run.
#include <gtest/gtest.h>

#include "src/core/audit.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;
using Element = G::Element;

ProtocolConfig BaseConfig() {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31
  config.num_provers = 2;
  config.num_bins = 3;
  config.session_id = "multiproc-equivalence";
  config.batch_verify = true;
  return config;
}

// The three configurations under comparison. All share the session id, so
// every Fiat-Shamir transcript (and hence every decision) must coincide.
ProtocolConfig Monolithic() {
  return BaseConfig();
}
ProtocolConfig InProcessSharded() {
  ProtocolConfig config = BaseConfig();
  config.num_verify_shards = 5;
  return config;
}
ProtocolConfig MultiProcess() {
  ProtocolConfig config = BaseConfig();
  config.num_verify_shards = 5;
  config.verify_workers = 3;
  return config;
}

// A population with invalid proofs sprinkled in: a bad OR proof, a
// malformed shape, and a tampered sub-challenge, spread across shards.
std::vector<ClientBundle<G>> MakeClients(const ProtocolConfig& config,
                                         const Pedersen<G>& ped, size_t n) {
  SecureRng rng("multiproc-clients");
  std::vector<ClientBundle<G>> clients;
  clients.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    clients.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, ped, rng));
  }
  clients[3].upload.bin_proofs[0].z0 += S::One();
  clients[n / 2].upload.commitments.clear();
  clients[n - 2].upload.bin_proofs[1].e1 += S::One();
  return clients;
}

std::vector<std::vector<Element>> DirectProducts(const ProtocolConfig& config,
                                                 const std::vector<ClientUploadMsg<G>>& uploads,
                                                 const std::vector<size_t>& accepted) {
  std::vector<std::vector<Element>> products(
      config.num_provers, std::vector<Element>(config.num_bins, G::Identity()));
  for (size_t idx : accepted) {
    for (size_t k = 0; k < config.num_provers; ++k) {
      for (size_t m = 0; m < config.num_bins; ++m) {
        products[k][m] = G::Mul(products[k][m], uploads[idx].commitments[k][m]);
      }
    }
  }
  return products;
}

TEST(MultiprocEquivalence, ValidationDecisionsAndProductsAreBitIdentical) {
  Pedersen<G> ped;
  auto clients = MakeClients(BaseConfig(), ped, 24);
  std::vector<ClientUploadMsg<G>> uploads;
  for (const auto& c : clients) {
    uploads.push_back(c.upload);
  }

  PublicVerifier<G> mono(Monolithic(), ped);
  PublicVerifier<G> sharded(InProcessSharded(), ped);
  PublicVerifier<G> multiproc(MultiProcess(), ped);

  std::vector<std::string> mono_reasons;
  std::vector<std::string> sharded_reasons;
  std::vector<std::string> multiproc_reasons;
  auto mono_accepted = mono.ValidateClients(uploads, &mono_reasons);
  auto sharded_accepted = sharded.ValidateClients(uploads, &sharded_reasons);
  auto multiproc_accepted = multiproc.ValidateClients(uploads, &multiproc_reasons);

  EXPECT_EQ(mono_accepted.size(), uploads.size() - 3);
  EXPECT_EQ(mono_accepted, sharded_accepted);
  EXPECT_EQ(mono_accepted, multiproc_accepted);
  EXPECT_EQ(mono_reasons, sharded_reasons);
  EXPECT_EQ(mono_reasons, multiproc_reasons);

  // Products: the multi-process report's Eq. 10 client products must equal
  // both the in-process sharded ones and the direct per-upload product.
  auto sharded_verdict = sharded.ValidateClientsReport(uploads);
  auto multiproc_verdict = multiproc.ValidateClientsReport(uploads);
  EXPECT_EQ(sharded_verdict.backend, "sharded");
  EXPECT_EQ(multiproc_verdict.backend, "multiprocess");
  auto direct = DirectProducts(BaseConfig(), uploads, mono_accepted);
  ASSERT_EQ(multiproc_verdict.commitment_products.size(), direct.size());
  for (size_t k = 0; k < direct.size(); ++k) {
    for (size_t m = 0; m < direct[k].size(); ++m) {
      EXPECT_TRUE(multiproc_verdict.commitment_products[k][m] ==
                  sharded_verdict.commitment_products[k][m]);
      EXPECT_TRUE(multiproc_verdict.commitment_products[k][m] == direct[k][m]);
    }
  }
  EXPECT_EQ(multiproc_verdict.accepted, sharded_verdict.accepted);
  EXPECT_EQ(multiproc_verdict.rejections, sharded_verdict.rejections);
  EXPECT_EQ(multiproc_verdict.RenderedReasons(), mono_reasons);
}

TEST(MultiprocEquivalence, EndToEndRunAndAuditAgreeAcrossAllThreeModes) {
  Pedersen<G> ped;
  ProtocolConfig run_config = MultiProcess();
  auto clients = MakeClients(run_config, ped, 24);

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  SecureRng rng("multiproc-e2e");
  for (size_t k = 0; k < run_config.num_provers; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, run_config, ped,
                                                rng.Fork("prover-" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng verifier_rng = rng.Fork("verifier");

  // The live run itself goes through the multi-process pipeline.
  PublicTranscript<G> transcript;
  auto result = RunProtocol(run_config, ped, clients, provers, verifier_rng, nullptr,
                            &transcript);
  ASSERT_TRUE(result.accepted()) << result.verdict.detail;
  EXPECT_EQ(result.accepted_clients.size(), clients.size() - 3);

  // Independent audits of the recorded transcript under all three modes.
  auto mono_report = AuditTranscript(transcript, Monolithic(), ped);
  auto sharded_report = AuditTranscript(transcript, InProcessSharded(), ped);
  auto multiproc_report = AuditTranscript(transcript, MultiProcess(), ped);

  EXPECT_TRUE(mono_report.accepted()) << mono_report.verdict.detail;
  EXPECT_TRUE(sharded_report.accepted()) << sharded_report.verdict.detail;
  EXPECT_TRUE(multiproc_report.accepted()) << multiproc_report.verdict.detail;

  EXPECT_EQ(mono_report.accepted_clients, result.accepted_clients);
  EXPECT_EQ(sharded_report.accepted_clients, mono_report.accepted_clients);
  EXPECT_EQ(multiproc_report.accepted_clients, mono_report.accepted_clients);
  EXPECT_EQ(sharded_report.raw_histogram, mono_report.raw_histogram);
  EXPECT_EQ(multiproc_report.raw_histogram, mono_report.raw_histogram);
  EXPECT_EQ(mono_report.raw_histogram, result.raw_histogram);
}

TEST(MultiprocEquivalence, TamperedTranscriptRejectsIdenticallyInAllThreeModes) {
  Pedersen<G> ped;
  ProtocolConfig run_config = Monolithic();
  auto clients = MakeClients(run_config, ped, 24);

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  SecureRng rng("multiproc-tamper");
  for (size_t k = 0; k < run_config.num_provers; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, run_config, ped,
                                                rng.Fork("prover-" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng verifier_rng = rng.Fork("verifier");
  PublicTranscript<G> transcript;
  auto result = RunProtocol(run_config, ped, clients, provers, verifier_rng, nullptr,
                            &transcript);
  ASSERT_TRUE(result.accepted()) << result.verdict.detail;

  // Corrupt an upload that WAS accepted during the live run: every auditor
  // must now drop that client, find the Eq. 10 product short by its
  // commitments, and reject -- with the same culprit and code.
  transcript.client_uploads[7].bin_proofs[2].z1 += S::One();

  auto mono_report = AuditTranscript(transcript, Monolithic(), ped);
  auto sharded_report = AuditTranscript(transcript, InProcessSharded(), ped);
  auto multiproc_report = AuditTranscript(transcript, MultiProcess(), ped);

  EXPECT_FALSE(mono_report.accepted());
  EXPECT_FALSE(sharded_report.accepted());
  EXPECT_FALSE(multiproc_report.accepted());
  EXPECT_EQ(mono_report.verdict.code, sharded_report.verdict.code);
  EXPECT_EQ(mono_report.verdict.code, multiproc_report.verdict.code);
  EXPECT_EQ(mono_report.verdict.cheating_prover, sharded_report.verdict.cheating_prover);
  EXPECT_EQ(mono_report.verdict.cheating_prover, multiproc_report.verdict.cheating_prover);
  EXPECT_EQ(mono_report.accepted_clients, sharded_report.accepted_clients);
  EXPECT_EQ(mono_report.accepted_clients, multiproc_report.accepted_clients);
}

}  // namespace
}  // namespace vdp
