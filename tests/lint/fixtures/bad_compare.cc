// Seeded violation for the `ct-compare` rule: early-exit comparisons over
// MAC/digest material. Never compiled; linted by vdp_lint --self-test and
// the unit tests.
#include <array>
#include <cstring>

namespace vdp {

bool TagMatches(const std::array<unsigned char, 32>& expected_tag,
                const std::array<unsigned char, 32>& actual_tag) {
  return std::memcmp(expected_tag.data(), actual_tag.data(), expected_tag.size()) == 0;
}

bool DigestMatches(const std::array<unsigned char, 32>& params_digest,
                   const std::array<unsigned char, 32>& ack_digest) {
  return params_digest == ack_digest;
}

}  // namespace vdp
