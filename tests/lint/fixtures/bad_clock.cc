// Seeded violation for the `clock` rule: wall-clock time in a timing path.
// Never compiled; linted by vdp_lint --self-test and the unit tests.
#include <chrono>

namespace vdp {

double MeasureMillis() {
  const auto begin = std::chrono::system_clock::now();
  const auto end = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace vdp
