// Seeded violation for the `metric-name` rule: ad-hoc metric literals
// instead of the canonical constants in src/obs/metrics.h. Never compiled;
// linted by vdp_lint --self-test and the unit tests.
#include "src/obs/metrics.h"

namespace vdp {

void CountSomething() {
  obs::GlobalCounter("my.adhoc_counter")->Increment();
  obs::GlobalHistogram("another.rogue_latency")->Record(1.0);
}

}  // namespace vdp
