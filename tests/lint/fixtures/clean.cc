// Clean fixture: idiomatic use of every API the rules police, plus the
// annotation escape hatch. Must produce zero findings. Never compiled;
// linted by vdp_lint --self-test and the unit tests.
#include <chrono>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"

namespace vdp {

bool DigestMatches(BytesView params_digest, BytesView ack_digest) {
  return ConstantTimeEqual(params_digest, ack_digest);
}

// Compile-time comparisons cannot leak, even when they mention digests.
static_assert(sizeof(Sha256::Digest) == 32);

enum class FaultMode { kNone, kStaleDigest };

// Comparing against a kUpperCamel enumerator is an enum test, not a buffer
// compare, even though the constant's name contains "Digest".
bool IsStale(FaultMode fault) {
  return fault == FaultMode::kStaleDigest;
}

uint64_t SampleAndCount() {
  SecureRng rng("clean-fixture");
  obs::GlobalCounter(obs::kFleetRetries)->Increment();
  Stopwatch timer;  // steady_clock underneath
  // Wall-clock for a run-log timestamp is fine when annotated:
  const auto stamp = std::chrono::system_clock::now();  // vdp-lint: allow(clock)
  (void)stamp;
  (void)timer;
  return rng.NextU64();
}

// Comments may discuss rand() or std::mt19937 freely, and strings mentioning
// "system_clock" or memcmp on a digest are data, not code.
const char* kDoc = "never memcmp a params_digest";

}  // namespace vdp
