// Seeded violation for the `rng` rule: ad-hoc randomness instead of
// SecureRng. Never compiled; linted by vdp_lint --self-test and the unit
// tests as if it were production code.
#include <cstdlib>
#include <random>

namespace vdp {

unsigned NoiseSample() {
  std::mt19937 gen(std::random_device{}());
  return static_cast<unsigned>(gen()) ^ static_cast<unsigned>(rand());
}

}  // namespace vdp
