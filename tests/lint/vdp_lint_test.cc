// The rule engine behind tools/vdp_lint, pinned rule by rule: each seeded
// violation must be flagged with exactly its rule, idiomatic code must pass,
// and the escape hatches (tests/ scoping, `vdp-lint: allow(...)`, comments
// and string literals) must behave. The on-disk fixtures in
// tests/lint/fixtures/ are exercised end-to-end by `vdp_lint --self-test`
// in the lint CI job; these tests cover the same classes hermetically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/lint/linter.h"

namespace vdp {
namespace lint {
namespace {

LintConfig CanonConfig() {
  LintConfig config;
  config.canonical_metric_names = {"fleet.retries", "verify.shard_ms"};
  return config;
}

std::vector<std::string> Rules(const std::vector<LintFinding>& findings) {
  std::vector<std::string> rules;
  for (const LintFinding& f : findings) {
    rules.push_back(f.rule);
  }
  return rules;
}

TEST(VdpLintTest, FlagsBannedRngOutsideTests) {
  const std::string src = "std::mt19937 gen(std::random_device{}());\n"
                          "int x = rand();\n";
  const auto findings = LintSource("src/common/noise.cc", src, CanonConfig());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "rng");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].rule, "rng");
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(VdpLintTest, RngIsAllowedInTests) {
  const std::string src = "std::mt19937 gen(42);\n";
  EXPECT_TRUE(LintSource("tests/common/foo_test.cc", src, CanonConfig()).empty());
}

TEST(VdpLintTest, SecureRngIsNotARngFinding) {
  const std::string src = "SecureRng rng(\"label\");\n"
                          "Bytes b = rng.RandomBytes(32);\n";
  EXPECT_TRUE(LintSource("src/common/use.cc", src, CanonConfig()).empty());
}

TEST(VdpLintTest, FlagsSystemClockAndHonorsAllow) {
  const std::string bad = "auto t = std::chrono::system_clock::now();\n";
  const auto findings = LintSource("src/common/t.cc", bad, CanonConfig());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "clock");

  const std::string annotated =
      "auto t = std::chrono::system_clock::now();  // vdp-lint: allow(clock)\n";
  EXPECT_TRUE(LintSource("src/common/t.cc", annotated, CanonConfig()).empty());
}

TEST(VdpLintTest, FlagsRawComparesOnSecretMaterial) {
  const std::string memcmp_src =
      "bool ok = std::memcmp(tag_.data(), other.data(), 32) == 0;\n";
  const std::string equal_src =
      "bool ok = std::equal(params_digest.begin(), params_digest.end(), b.begin());\n";
  const std::string eq_src = "if (session_key != expected) { return false; }\n";
  for (const std::string& src : {memcmp_src, equal_src, eq_src}) {
    const auto findings = LintSource("src/net/x.cc", src, CanonConfig());
    ASSERT_EQ(findings.size(), 1u) << src;
    EXPECT_EQ(findings[0].rule, "ct-compare") << src;
  }
}

TEST(VdpLintTest, InnocentComparesPass) {
  // "machine" and "stage" contain mac/tag substrings but are not secrets;
  // ConstantTimeEqual is the sanctioned spelling; enum compares are fine.
  const std::string src =
      "bool a = machine_id == other.machine_id;\n"
      "bool b = stage != kStageIngest;\n"
      "bool c = ConstantTimeEqual(params_digest, ack_digest);\n"
      "if (frame.type != wire::FrameType::kResult) { return false; }\n"
      "size_t n = a.size() <= b.size() ? 1 : 2;\n"
      "static_assert(sizeof(Sha256::Digest) == SecureRng::kSeedSize);\n"
      "bool d = fault == FaultMode::kStaleDigest;\n";
  EXPECT_TRUE(LintSource("src/net/x.cc", src, CanonConfig()).empty());
}

TEST(VdpLintTest, CommentsAndStringsAreInvisibleToTokenRules) {
  const std::string src =
      "// rand() and std::mt19937 discussed here, plus system_clock\n"
      "/* memcmp(tag_, digest) == 0 in a block comment */\n"
      "const char* doc = \"never memcmp a params_digest; rand() is banned\";\n";
  EXPECT_TRUE(LintSource("src/common/doc.cc", src, CanonConfig()).empty());
}

TEST(VdpLintTest, BlockCommentStateSpansLines) {
  const std::string src =
      "/* a comment that opens here\n"
      "   still commented: rand(); system_clock;\n"
      "*/ int after = 1;\n";
  EXPECT_TRUE(LintSource("src/common/doc.cc", src, CanonConfig()).empty());
}

TEST(VdpLintTest, FlagsRogueMetricLiteralsAndAcceptsCanonical) {
  const std::string rogue = "obs::GlobalCounter(\"my.adhoc_counter\")->Increment();\n";
  const auto findings = LintSource("src/shard/x.cc", rogue, CanonConfig());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-name");

  // Canonical literal or a named constant: both pass.
  const std::string fine =
      "obs::GlobalCounter(\"fleet.retries\")->Increment();\n"
      "obs::GlobalHistogram(obs::kVerifyShardMs)->Record(1.0);\n";
  EXPECT_TRUE(LintSource("src/shard/x.cc", fine, CanonConfig()).empty());
}

TEST(VdpLintTest, ParsesCanonicalNamesFromMetricsHeader) {
  const std::string header =
      "// names\n"
      "inline constexpr const char* kFleetRetries = \"fleet.retries\";\n"
      "inline constexpr const char* kVerifyShardMs = \"verify.shard_ms\";\n"
      "inline constexpr size_t kNotAName = 3;\n";
  const auto names = ParseCanonicalMetricNames(header);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "fleet.retries");
  EXPECT_EQ(names[1], "verify.shard_ms");
}

TEST(VdpLintTest, WireGoldenRuleRequiresPairedGoldenUpdate) {
  const std::vector<std::string> bare = {"src/wire/wire_format.h", "src/net/auth.h"};
  const auto findings = LintChangedSet(bare);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wire-golden");
  EXPECT_EQ(findings[0].file, "src/wire/wire_format.h");
  EXPECT_EQ(findings[0].line, 0u);

  const std::vector<std::string> paired = {"src/wire/wire_format.h",
                                           "tests/wire/wire_golden_test.cc"};
  EXPECT_TRUE(LintChangedSet(paired).empty());

  // Changes elsewhere never trip the rule.
  const std::vector<std::string> unrelated = {"src/net/auth.h", "README.md"};
  EXPECT_TRUE(LintChangedSet(unrelated).empty());
}

}  // namespace
}  // namespace lint
}  // namespace vdp
