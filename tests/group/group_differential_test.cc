// Differential group-law harness: every fast exponentiation path -- generic
// G::Exp, the comb fixed-base tables (signed and unsigned, several widths),
// windowed-NAF Straus, and Pippenger bucket accumulation -- is cross-checked
// against a schoolbook square-and-multiply oracle built from nothing but
// G::Mul. Typed over every group in the registry, on structured scalars that
// historically break windowed code (0, 1, 2, order-1, order-2, 2^k +/- 1,
// single-nibble digits, all-ones) plus a randomized sweep. Any mismatch
// prints the offending scalar in hex so the case can be pinned as a
// regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/batch/msm.h"
#include "src/common/rng.h"
#include "src/group/fixed_base.h"
#include "src/group/registry.h"

namespace vdp {
namespace {

// Schoolbook left-to-right square-and-multiply: touches only Identity and
// Mul, so it shares no code with any of the paths under test.
template <PrimeOrderGroup G>
typename G::Element SlowExp(const typename G::Element& base, const typename G::Scalar& s) {
  const auto& v = s.value();
  auto acc = G::Identity();
  for (size_t i = v.BitLength(); i-- > 0;) {
    acc = G::Mul(acc, acc);
    if (v.Bit(i)) {
      acc = G::Mul(acc, base);
    }
  }
  return acc;
}

// Scalars with the bit patterns windowed/comb/NAF recodings are most likely
// to mishandle: boundaries of the order, isolated and adjacent set bits at
// window seams, dense runs, and the exact top-bit position.
template <PrimeOrderGroup G>
std::vector<typename G::Scalar> StructuredScalars() {
  using S = typename G::Scalar;
  using Int = typename S::Int;
  const size_t bits = S::Order().BitLength();
  std::vector<S> out = {S::Zero(), S::One(), S::FromU64(2),
                        S::Zero() - S::One(),             // order - 1
                        S::Zero() - S::FromU64(2)};       // order - 2
  // 2^k - 1, 2^k, 2^k + 1 at positions spread over the scalar width,
  // including the order's own bit length (the top-window edge).
  for (size_t k : {size_t{1}, size_t{7}, bits / 4, bits / 2, (3 * bits) / 4,
                   bits - 2, bits - 1}) {
    Int p2 = Int::Zero();
    p2.SetBit(k);
    out.push_back(S::FromInt(p2));
    Int m = p2;
    typename S::Int one = Int::One();
    Int::SubInto(m, m, one);
    out.push_back(S::FromInt(m));
    out.push_back(S::FromInt(p2) + S::One());
  }
  // Single-nibble scalars: one 4-bit digit 0xF sliding across the width.
  for (size_t shift = 0; shift + 4 <= bits; shift += std::max<size_t>(4, bits / 8)) {
    Int v = Int::Zero();
    for (size_t b = 0; b < 4; ++b) {
      v.SetBit(shift + b);
    }
    out.push_back(S::FromInt(v));
  }
  // All-ones to the order's bit length (reduced mod the order).
  Int ones = Int::Zero();
  for (size_t b = 0; b < bits; ++b) {
    ones.SetBit(b);
  }
  out.push_back(S::FromInt(ones));
  return out;
}

// Random-sweep size scaled to the field width so the 2048-bit oracle does
// not dominate the suite's runtime.
size_t RandomCountFor(size_t order_bits) {
  if (order_bits <= 320) {
    return 1000;
  }
  if (order_bits <= 600) {
    return 200;
  }
  if (order_bits <= 1100) {
    return 50;
  }
  return 12;
}

template <typename G>
class GroupDifferentialTest : public ::testing::Test {};

using AllGroups = ::testing::Types<ModP64, ModP256, ModP512, ModP1024, ModP2048,
                                   Schnorr512, Schnorr2048, Ed25519Group>;
TYPED_TEST_SUITE(GroupDifferentialTest, AllGroups);

TYPED_TEST(GroupDifferentialTest, AllExpPathsMatchOracleOnStructuredScalars) {
  using G = TypeParam;
  const auto gen = G::Generator();
  const FixedBaseTable<G> table(gen);     // default width (signed on curves)
  const FixedBaseTable<G> narrow(gen, 3); // non-default width
  for (const auto& s : StructuredScalars<G>()) {
    const auto oracle = SlowExp<G>(gen, s);
    const std::string hex = "scalar=0x" + s.value().ToHex();
    EXPECT_TRUE(G::Exp(gen, s) == oracle) << "G::Exp " << hex;
    EXPECT_TRUE(table.Exp(s) == oracle) << "comb w=" << table.window() << " " << hex;
    EXPECT_TRUE(narrow.Exp(s) == oracle) << "comb w=3 " << hex;
    EXPECT_TRUE(MsmWnaf<G>({gen}, {s}) == oracle) << "wnaf " << hex;
    std::vector<std::vector<uint64_t>> limbs = {msm_internal::ToLimbs(s.Encode())};
    EXPECT_TRUE(MsmPippenger<G>({gen}, limbs, 0, 1) == oracle) << "pippenger " << hex;
  }
}

TYPED_TEST(GroupDifferentialTest, AllExpPathsMatchOracleOnRandomScalars) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("group-differential-" + G::Name());
  const auto gen = G::Generator();
  // A base other than the generator so table code sees arbitrary points.
  const auto base = G::Exp(gen, S::Random(rng));
  const FixedBaseTable<G> table(base);
  const size_t n = RandomCountFor(S::Order().BitLength());
  for (size_t i = 0; i < n; ++i) {
    S s = S::Random(rng);
    const auto oracle = SlowExp<G>(base, s);
    const std::string hex = "scalar=0x" + s.value().ToHex();
    EXPECT_TRUE(G::Exp(base, s) == oracle) << "G::Exp " << hex;
    EXPECT_TRUE(table.Exp(s) == oracle) << "comb " << hex;
    EXPECT_TRUE(MsmWnaf<G>({base}, {s}) == oracle) << "wnaf " << hex;
    std::vector<std::vector<uint64_t>> limbs = {msm_internal::ToLimbs(s.Encode())};
    EXPECT_TRUE(MsmPippenger<G>({base}, limbs, 0, 1) == oracle) << "pippenger " << hex;
  }
}

// Regression for the comb top-window edge: a table must serve scalars whose
// bit length equals the order's exactly (top row populated), at every width.
TYPED_TEST(GroupDifferentialTest, CombTopWindowAtOrderBitLength) {
  using G = TypeParam;
  using S = typename G::Scalar;
  using Int = typename S::Int;
  const size_t bits = S::Order().BitLength();
  const auto gen = G::Generator();
  Int top = Int::Zero();
  top.SetBit(bits - 1);
  const std::vector<S> edges = {S::FromInt(top),     // exactly the top bit
                                S::Zero() - S::One(),  // order - 1, full length
                                S::FromInt(top) + S::FromU64(3)};
  for (size_t w : {size_t{2}, size_t{4}, size_t{5}, size_t{7}}) {
    const FixedBaseTable<G> table(gen, w);
    for (const auto& s : edges) {
      ASSERT_EQ(s.value().BitLength(), bits);
      const auto oracle = SlowExp<G>(gen, s);
      EXPECT_TRUE(table.Exp(s) == oracle)
          << "w=" << w << " scalar=0x" << s.value().ToHex();
    }
  }
}

TYPED_TEST(GroupDifferentialTest, MsmPathsMatchNaiveOnMixedBatches) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("group-msm-differential-" + G::Name());
  const auto gen = G::Generator();
  const size_t order_bits = S::Order().BitLength();
  std::vector<size_t> sizes = {2, 5};
  if (order_bits <= 320) {
    sizes.push_back(40);
  }
  for (size_t n : sizes) {
    std::vector<typename G::Element> bases(n);
    std::vector<S> scalars(n);
    std::vector<std::vector<uint64_t>> limbs(n);
    for (size_t i = 0; i < n; ++i) {
      bases[i] = G::Exp(gen, S::Random(rng));
      // Mix in degenerate scalars so bucket/NAF paths see zeros and ones.
      scalars[i] = (i == 0) ? S::Zero() : (i == 1 ? S::One() : S::Random(rng));
      limbs[i] = msm_internal::ToLimbs(scalars[i].Encode());
    }
    const auto expected = MsmNaive<G>(bases, scalars);
    EXPECT_TRUE(MsmWnaf<G>(bases, scalars) == expected) << "wnaf n=" << n;
    EXPECT_TRUE(MsmPippenger<G>(bases, limbs, 0, n) == expected) << "pippenger n=" << n;
    EXPECT_TRUE(Msm<G>(bases, scalars) == expected) << "dispatch n=" << n;
  }
}

// The typed suite above must cover exactly the registered set: if a group is
// added to the registry without being added here, this fails.
TEST(GroupRegistryCoverageTest, TypedSuiteCoversEveryRegisteredGroup) {
  const std::vector<std::string> expected = {
      ModP64::Name(),      ModP256::Name(),      ModP512::Name(),
      ModP1024::Name(),    ModP2048::Name(),     Schnorr512::Name(),
      Schnorr2048::Name(), Ed25519Group::Name()};
  EXPECT_EQ(RegisteredGroupNames(), expected);
  // Spot-check the dispatch path round-trips each name.
  for (const auto& name : expected) {
    bool hit = DispatchRegisteredGroup(name, [&](auto tag) {
      using G = typename decltype(tag)::Group;
      EXPECT_EQ(G::Name(), name);
    });
    EXPECT_TRUE(hit) << name;
  }
  EXPECT_FALSE(DispatchRegisteredGroup("no-such-group", [](auto) {}));
}

}  // namespace
}  // namespace vdp
