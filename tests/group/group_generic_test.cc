// Typed tests run against every group backend: the protocol layers rely on
// exactly these algebraic laws, so any backend that passes this suite is a
// drop-in instantiation.
#include "src/group/group.h"

#include <gtest/gtest.h>

#include "src/group/fixed_base.h"

namespace vdp {
namespace {

template <typename G>
class GroupLawTest : public ::testing::Test {};

using GroupTypes = ::testing::Types<ModP256, ModP512, Ed25519Group>;
TYPED_TEST_SUITE(GroupLawTest, GroupTypes);

TYPED_TEST(GroupLawTest, IdentityIsNeutral) {
  using G = TypeParam;
  SecureRng rng("id-" + G::Name());
  auto e = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Mul(e, G::Identity()), e);
  EXPECT_EQ(G::Mul(G::Identity(), e), e);
}

TYPED_TEST(GroupLawTest, InverseCancels) {
  using G = TypeParam;
  SecureRng rng("inv-" + G::Name());
  auto e = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Mul(e, G::Inverse(e)), G::Identity());
}

TYPED_TEST(GroupLawTest, MulCommutesAndAssociates) {
  using G = TypeParam;
  SecureRng rng("laws-" + G::Name());
  auto a = G::ExpG(G::Scalar::Random(rng));
  auto b = G::ExpG(G::Scalar::Random(rng));
  auto c = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Mul(a, b), G::Mul(b, a));
  EXPECT_EQ(G::Mul(G::Mul(a, b), c), G::Mul(a, G::Mul(b, c)));
}

TYPED_TEST(GroupLawTest, ExpHomomorphism) {
  using G = TypeParam;
  SecureRng rng("hom-" + G::Name());
  auto x = G::Scalar::Random(rng);
  auto y = G::Scalar::Random(rng);
  // g^(x+y) = g^x g^y
  EXPECT_EQ(G::ExpG(x + y), G::Mul(G::ExpG(x), G::ExpG(y)));
  // (g^x)^y = g^(xy)
  EXPECT_EQ(G::Exp(G::ExpG(x), y), G::ExpG(x * y));
}

TYPED_TEST(GroupLawTest, ExpByZeroAndOne) {
  using G = TypeParam;
  SecureRng rng("zero-one-" + G::Name());
  auto e = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Exp(e, G::Scalar::Zero()), G::Identity());
  EXPECT_EQ(G::Exp(e, G::Scalar::One()), e);
}

TYPED_TEST(GroupLawTest, ExpByNegatedScalarInverts) {
  using G = TypeParam;
  SecureRng rng("neg-" + G::Name());
  auto x = G::Scalar::Random(rng);
  EXPECT_EQ(G::ExpG(-x), G::Inverse(G::ExpG(x)));
}

TYPED_TEST(GroupLawTest, EncodeDecodeRoundTrip) {
  using G = TypeParam;
  SecureRng rng("codec-" + G::Name());
  for (int i = 0; i < 5; ++i) {
    auto e = G::ExpG(G::Scalar::Random(rng));
    auto decoded = G::Decode(G::Encode(e));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, e);
  }
}

TYPED_TEST(GroupLawTest, EncodingIsCanonical) {
  using G = TypeParam;
  SecureRng rng("canon-" + G::Name());
  auto e = G::ExpG(G::Scalar::Random(rng));
  auto decoded = G::Decode(G::Encode(e));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(G::Encode(*decoded), G::Encode(e));
}

TYPED_TEST(GroupLawTest, HashToGroupIsDeterministicAndSeparated) {
  using G = TypeParam;
  auto a = G::HashToGroup(StrView("domain-1"), StrView("msg"));
  auto b = G::HashToGroup(StrView("domain-1"), StrView("msg"));
  auto c = G::HashToGroup(StrView("domain-2"), StrView("msg"));
  auto d = G::HashToGroup(StrView("domain-1"), StrView("other"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TYPED_TEST(GroupLawTest, DivHelper) {
  using G = TypeParam;
  SecureRng rng("div-" + G::Name());
  auto a = G::ExpG(G::Scalar::Random(rng));
  auto b = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Mul(Div<G>(a, b), b), a);
}

TYPED_TEST(GroupLawTest, FixedBaseTableMatchesExp) {
  using G = TypeParam;
  SecureRng rng("fb-" + G::Name());
  FixedBaseTable<G> table(G::Generator());
  for (int i = 0; i < 5; ++i) {
    auto x = G::Scalar::Random(rng);
    EXPECT_EQ(table.Exp(x), G::ExpG(x));
  }
  EXPECT_EQ(table.Exp(G::Scalar::Zero()), G::Identity());
  EXPECT_EQ(table.Exp(G::Scalar::One()), G::Generator());
}

TYPED_TEST(GroupLawTest, ScalarFieldLaws) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("sf-" + G::Name());
  auto a = S::Random(rng);
  auto b = S::Random(rng);
  auto c = S::Random(rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, S::Zero());
  EXPECT_EQ(a + S::Zero(), a);
  EXPECT_EQ(a * S::One(), a);
  if (!a.IsZero()) {
    EXPECT_EQ(a * a.Inverse(), S::One());
  }
}

TYPED_TEST(GroupLawTest, ScalarCodecRoundTrip) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("sc-" + G::Name());
  auto a = S::Random(rng);
  auto decoded = S::Decode(a.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, a);
  // Decoding the order itself must fail (not reduced).
  EXPECT_FALSE(S::Decode(S::Order().ToBytesBe()).has_value());
}

TYPED_TEST(GroupLawTest, ScalarFromBytesWideReduces) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Bytes wide(64, 0xff);
  auto s = S::FromBytesWide(wide);
  EXPECT_LT(s.value(), S::Order());
}

TYPED_TEST(GroupLawTest, ScalarToU64SmallValues) {
  using G = TypeParam;
  using S = typename G::Scalar;
  EXPECT_EQ(S::FromU64(12345).ToU64(), 12345u);
  SecureRng rng("u64-" + G::Name());
  // A random scalar is overwhelmingly unlikely to fit in 64 bits.
  EXPECT_FALSE(S::Random(rng).ToU64().has_value());
}

}  // namespace
}  // namespace vdp
