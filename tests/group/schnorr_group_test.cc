#include "src/group/schnorr_group.h"

#include <gtest/gtest.h>

#include "src/common/timer.h"
#include "src/core/protocol.h"
#include "src/math/primality.h"

namespace vdp {
namespace {

TEST(SchnorrParamsTest, ModuliAndOrdersArePrime) {
  SecureRng rng("schnorr-prime");
  EXPECT_TRUE(IsProbablePrime(Schnorr512Params().p, 12, rng));
  EXPECT_TRUE(IsProbablePrime(Schnorr512Params().q, 24, rng));
  EXPECT_TRUE(IsProbablePrime(Schnorr2048Params().p, 4, rng));
  EXPECT_TRUE(IsProbablePrime(Schnorr2048Params().q, 24, rng));
}

TEST(SchnorrParamsTest, BitLengthsAreExact) {
  EXPECT_EQ(Schnorr512Params().p.BitLength(), 512u);
  EXPECT_EQ(Schnorr512Params().q.BitLength(), 256u);
  EXPECT_EQ(Schnorr2048Params().p.BitLength(), 2048u);
  EXPECT_EQ(Schnorr2048Params().q.BitLength(), 256u);
}

TEST(SchnorrParamsTest, CofactorTimesOrderIsPMinusOne) {
  auto check = [](const auto& params) {
    constexpr size_t L = std::remove_reference_t<decltype(params.p)>::kLimbs;
    auto product = Mul(params.cofactor, params.q.template Resize<L>());
    BigInt<L> p_minus_1 = params.p;
    BigInt<L>::SubInto(p_minus_1, p_minus_1, BigInt<L>::One());
    EXPECT_EQ(product.template Resize<L>(), p_minus_1);
    // No overflow into the upper limbs.
    for (size_t i = L; i < 2 * L; ++i) {
      EXPECT_EQ(product.limb[i], 0u);
    }
  };
  check(Schnorr512Params());
  check(Schnorr2048Params());
}

TEST(SchnorrGroupTest, GeneratorHasOrderQ) {
  EXPECT_TRUE(Schnorr512::InSubgroup(Schnorr512::Generator()));
  EXPECT_NE(Schnorr512::Generator(), Schnorr512::Identity());
  EXPECT_TRUE(Schnorr2048::InSubgroup(Schnorr2048::Generator()));
  EXPECT_NE(Schnorr2048::Generator(), Schnorr2048::Identity());
}

TEST(SchnorrGroupTest, ScalarsAre256Bit) {
  EXPECT_EQ(Schnorr512::Scalar::Order().BitLength(), 256u);
  EXPECT_EQ(Schnorr2048::Scalar::Order().BitLength(), 256u);
  // Element width is unchanged.
  EXPECT_EQ(Schnorr512::kElementSize, 64u);
  EXPECT_EQ(Schnorr2048::kElementSize, 256u);
}

TEST(SchnorrGroupTest, GroupLaws) {
  using G = Schnorr512;
  SecureRng rng("schnorr-laws");
  auto x = G::Scalar::Random(rng);
  auto y = G::Scalar::Random(rng);
  EXPECT_EQ(G::ExpG(x + y), G::Mul(G::ExpG(x), G::ExpG(y)));
  EXPECT_EQ(G::Exp(G::ExpG(x), y), G::ExpG(x * y));
  EXPECT_EQ(G::Mul(G::ExpG(x), G::Inverse(G::ExpG(x))), G::Identity());
}

TEST(SchnorrGroupTest, DecodeEnforcesSubgroupMembership) {
  using G = Schnorr512;
  SecureRng rng("schnorr-decode");
  auto e = G::ExpG(G::Scalar::Random(rng));
  auto decoded = G::Decode(G::Encode(e));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, e);
  // A generator of the full group (order p-1 element, e.g. a non-residue
  // outside the subgroup): encode a small integer that is not in the
  // subgroup. 2 is in the subgroup only if 2^q = 1; test both branches.
  BigInt<8> two = BigInt<8>::FromU64(2);
  Bytes enc = two.ToBytesBe();
  auto maybe = G::Decode(enc);
  if (maybe.has_value()) {
    EXPECT_TRUE(G::InSubgroup(*maybe));
  }
  // Zero and p are always rejected.
  EXPECT_FALSE(G::Decode(Bytes(G::kElementSize, 0)).has_value());
  EXPECT_FALSE(G::Decode(Schnorr512Params().p.ToBytesBe()).has_value());
}

TEST(SchnorrGroupTest, HashToGroupClearsCofactor) {
  auto h = Schnorr512::HashToGroup(StrView("pedersen"), StrView("generator-h"));
  EXPECT_TRUE(Schnorr512::InSubgroup(h));
  EXPECT_NE(h, Schnorr512::Identity());
}

TEST(SchnorrGroupTest, EndToEndProtocolRuns) {
  // The whole Pi_Bin stack is group-generic; run it on the short-exponent
  // group to prove the new backend is a drop-in.
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 2;
  config.session_id = "schnorr-e2e";
  SecureRng rng("schnorr-e2e");
  std::vector<uint32_t> bits = {1, 0, 1, 1};
  auto result = RunHonestProtocol<Schnorr512>(config, bits, rng);
  EXPECT_TRUE(result.accepted()) << result.verdict.detail;
  EXPECT_GE(result.raw_histogram[0], 3u);
}

TEST(SchnorrGroupTest, ShortExponentsAreFasterThanSafePrimeExponents) {
  // The entire point of the DSA-style parameters: same modulus size,
  // ~2x+ cheaper exponentiation because the exponent is 256 bits, not 511.
  using Fast = Schnorr512;
  using Slow = ModP512;
  SecureRng rng("schnorr-speed");
  auto fast_scalar = Fast::Scalar::Random(rng);
  auto slow_scalar = Slow::Scalar::Random(rng);
  auto fast_base = Fast::Generator();
  auto slow_base = Slow::Generator();

  volatile uint64_t sink = 0;
  Stopwatch t1;
  for (int i = 0; i < 50; ++i) {
    sink = Fast::Exp(fast_base, fast_scalar).value().limb[0];
  }
  double fast_ms = t1.ElapsedMillis();
  Stopwatch t2;
  for (int i = 0; i < 50; ++i) {
    sink = Slow::Exp(slow_base, slow_scalar).value().limb[0];
  }
  double slow_ms = t2.ElapsedMillis();
  (void)sink;
  EXPECT_LT(fast_ms * 1.3, slow_ms) << "fast=" << fast_ms << " slow=" << slow_ms;
}

}  // namespace
}  // namespace vdp
