// Decode fuzzing for the ed25519 backend: arbitrary 32-byte strings must
// either fail decoding cleanly or produce a point whose re-encoding is
// byte-identical (canonical), and every deliberately non-canonical encoding
// of a valid point must be rejected. Also pins EncodeBatch to the scalar
// Encode path byte-for-byte.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/group/ed25519.h"

namespace vdp {
namespace {

using G = Ed25519Group;

TEST(Ed25519DecodeFuzzTest, RandomStringsDecodeCleanlyOrCanonically) {
  SecureRng rng("ed25519-decode-fuzz");
  size_t accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    Bytes raw = rng.RandomBytes(32);
    auto e = G::Decode(raw);
    if (!e.has_value()) {
      continue;  // clean rejection is a valid outcome
    }
    ++accepted;
    // Anything accepted must round-trip to exactly the same bytes: Decode
    // accepts only canonical encodings, so re-encoding cannot differ.
    EXPECT_EQ(G::Encode(*e), raw) << "iteration " << i;
    // ... and must genuinely be in the prime-order subgroup.
    EXPECT_TRUE(G::InSubgroup(*e)) << "iteration " << i;
  }
  // About 1/2 of y values are on the curve and 1/8 of those survive the
  // subgroup check; with 5000 tries the accept count cannot be zero unless
  // decoding is broken.
  EXPECT_GT(accepted, 100u);
  EXPECT_LT(accepted, 2500u);
}

TEST(Ed25519DecodeFuzzTest, BiasedHighBytesStressCanonicalBoundary) {
  // Encodings with y close to 2^255 - 19 exercise the canonical-range check;
  // force the top bytes high so the fuzz actually lands near the modulus.
  SecureRng rng("ed25519-decode-fuzz-high");
  for (int i = 0; i < 2000; ++i) {
    Bytes raw = rng.RandomBytes(32);
    raw[31] = 0x7f | (raw[31] & 0x80);  // y >= 2^255 - 2^248 (plus sign bit)
    for (size_t b = 16; b < 31; ++b) {
      raw[b] = 0xff;
    }
    auto e = G::Decode(raw);
    if (e.has_value()) {
      EXPECT_EQ(G::Encode(*e), raw) << "iteration " << i;
    }
  }
}

TEST(Ed25519DecodeFuzzTest, NonCanonicalFieldEncodingsRejected) {
  // y' = y + p fits in 255 bits whenever y < 19; those encodings name the
  // same field element as y but are non-canonical and must be rejected with
  // either sign bit.
  for (uint64_t y = 0; y < 19; ++y) {
    BigInt<4> big = Fe25519::P();
    BigInt<4>::AddInto(big, big, BigInt<4>::FromU64(y));
    Bytes raw(32, 0);
    // little-endian serialization of the 255-bit value
    Bytes be = big.ToBytesBe();
    for (size_t i = 0; i < 32; ++i) {
      raw[i] = be[be.size() - 1 - i];
    }
    for (int sign = 0; sign < 2; ++sign) {
      Bytes attempt = raw;
      attempt[31] = static_cast<uint8_t>((attempt[31] & 0x7f) | (sign << 7));
      EXPECT_FALSE(G::Decode(attempt).has_value())
          << "y=p+" << y << " sign=" << sign;
    }
  }
}

TEST(Ed25519DecodeFuzzTest, ValidPointsSurviveDecodeEncodeLoop) {
  SecureRng rng("ed25519-roundtrip");
  auto p = G::Generator();
  for (int i = 0; i < 200; ++i) {
    Bytes enc = G::Encode(p);
    auto back = G::Decode(enc);
    ASSERT_TRUE(back.has_value()) << "iteration " << i;
    EXPECT_TRUE(*back == p);
    EXPECT_EQ(G::Encode(*back), enc);
    p = G::Exp(p, G::Scalar::Random(rng));
  }
}

TEST(Ed25519DecodeFuzzTest, IdentityEncodingIsCanonical) {
  Bytes enc = G::Encode(G::Identity());
  // (0, 1): y = 1, sign(x) = 0.
  Bytes expected(32, 0);
  expected[0] = 1;
  EXPECT_EQ(enc, expected);
  auto back = G::Decode(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == G::Identity());
}

TEST(Ed25519DecodeFuzzTest, EncodeBatchMatchesScalarEncode) {
  SecureRng rng("ed25519-encode-batch");
  std::vector<G::Element> es;
  es.push_back(G::Identity());
  es.push_back(G::Generator());
  for (int i = 0; i < 47; ++i) {
    es.push_back(G::ExpG(G::Scalar::Random(rng)));
  }
  std::vector<Bytes> batch = G::EncodeBatch(es);
  ASSERT_EQ(batch.size(), es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(batch[i], G::Encode(es[i])) << "i=" << i;
  }
  // Degenerate batch shapes.
  EXPECT_TRUE(G::EncodeBatch({}).empty());
  std::vector<G::Element> one = {G::Identity()};
  EXPECT_EQ(G::EncodeBatch(one)[0], G::Encode(G::Identity()));
}

}  // namespace
}  // namespace vdp
