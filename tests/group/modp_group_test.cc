#include "src/group/modp_group.h"

#include <gtest/gtest.h>

#include "src/math/primality.h"

namespace vdp {
namespace {

TEST(ModPParamsTest, AllParameterSetsAreSafePrimes) {
  SecureRng rng("param-check");
  EXPECT_TRUE(IsSafePrime(ModP256Params().p, 16, rng));
  EXPECT_TRUE(IsSafePrime(ModP512Params().p, 12, rng));
  EXPECT_TRUE(IsSafePrime(ModP1024Params().p, 8, rng));
  EXPECT_TRUE(IsSafePrime(ModP2048Params().p, 4, rng));
}

TEST(ModPParamsTest, BitLengthsAreExact) {
  EXPECT_EQ(ModP256Params().p.BitLength(), 256u);
  EXPECT_EQ(ModP512Params().p.BitLength(), 512u);
  EXPECT_EQ(ModP1024Params().p.BitLength(), 1024u);
  EXPECT_EQ(ModP2048Params().p.BitLength(), 2048u);
}

TEST(ModPParamsTest, QIsHalfOfPMinusOne) {
  auto check = [](const auto& params) {
    auto q2 = params.q;
    q2.ShiftLeft1();
    std::remove_cv_t<std::remove_reference_t<decltype(q2)>> one = q2;
    one = decltype(q2)::One();
    decltype(q2) p_reconstructed;
    decltype(q2)::AddInto(p_reconstructed, q2, one);
    EXPECT_EQ(p_reconstructed, params.p);
  };
  check(ModP256Params());
  check(ModP512Params());
}

TEST(ModPGroupTest, GeneratorIsInSubgroup) {
  EXPECT_TRUE(ModP256::InSubgroup(ModP256::Generator()));
  EXPECT_TRUE(ModP512::InSubgroup(ModP512::Generator()));
  EXPECT_TRUE(ModP1024::InSubgroup(ModP1024::Generator()));
  EXPECT_TRUE(ModP2048::InSubgroup(ModP2048::Generator()));
}

TEST(ModPGroupTest, GeneratorHasOrderQNotSmaller) {
  // g^q == 1 but g != 1 (order divides prime q, so order is exactly q).
  auto g = ModP256::Generator();
  EXPECT_NE(g, ModP256::Identity());
  EXPECT_TRUE(ModP256::InSubgroup(g));
}

TEST(ModPGroupTest, MulMatchesModularMultiplication) {
  SecureRng rng("modp-mul");
  auto g = ModP256::Generator();
  auto g2 = ModP256::Mul(g, g);
  // 4 * 4 = 16
  EXPECT_EQ(g2.value().limb[0], 16u);
}

TEST(ModPGroupTest, DecodeRejectsZeroAndP) {
  Bytes zero(ModP256::kElementSize, 0);
  EXPECT_FALSE(ModP256::Decode(zero).has_value());
  Bytes p_bytes = ModP256Params().p.ToBytesBe();
  EXPECT_FALSE(ModP256::Decode(p_bytes).has_value());
}

TEST(ModPGroupTest, DecodeRejectsWrongLength) {
  Bytes short_buf(5, 1);
  EXPECT_FALSE(ModP256::Decode(short_buf).has_value());
}

TEST(ModPGroupTest, DecodeRejectsNonSubgroupElement) {
  // p - 1 has order 2 (it is -1), which is not in the order-q subgroup for a
  // safe prime p = 3 mod 4.
  BigInt<4> minus_one = ModP256Params().p;
  BigInt<4>::SubInto(minus_one, minus_one, BigInt<4>::One());
  EXPECT_FALSE(ModP256::Decode(minus_one.ToBytesBe()).has_value());
}

TEST(ModPGroupTest, DecodeAcceptsValidElements) {
  SecureRng rng("modp-decode");
  for (int i = 0; i < 5; ++i) {
    auto e = ModP256::ExpG(ModP256::Scalar::Random(rng));
    auto decoded = ModP256::Decode(ModP256::Encode(e));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, e);
  }
}

TEST(ModPGroupTest, SubgroupHasPrimeOrderQ) {
  // g^(q) == identity via InSubgroup; also check g^(2q) == identity and
  // g^(q+1) == g.
  SecureRng rng("order");
  auto g = ModP512::Generator();
  auto q_scalar = ModP512::Scalar::FromInt(ModP512Params().q);  // q mod q == 0
  EXPECT_TRUE(q_scalar.IsZero());
  EXPECT_EQ(ModP512::Exp(g, q_scalar), ModP512::Identity());
}

TEST(ModPGroupTest, HashToGroupLandsInSubgroup) {
  auto h = ModP256::HashToGroup(StrView("pedersen"), StrView("generator-h"));
  EXPECT_TRUE(ModP256::InSubgroup(h));
  EXPECT_NE(h, ModP256::Identity());
}

TEST(ModPGroupTest, HashToGroupIndependentOfGenerator) {
  // The discrete log of h base g must be unknown; at minimum h != g^k for
  // tiny k.
  auto h = ModP256::HashToGroup(StrView("pedersen"), StrView("generator-h"));
  auto g = ModP256::Generator();
  auto acc = ModP256::Identity();
  for (int k = 0; k < 1000; ++k) {
    EXPECT_NE(h, acc);
    acc = ModP256::Mul(acc, g);
  }
}

TEST(ModPGroupTest, NamesAreDistinct) {
  EXPECT_EQ(ModP256::Name(), "modp-256");
  EXPECT_EQ(ModP512::Name(), "modp-512");
  EXPECT_EQ(ModP1024::Name(), "modp-1024");
  EXPECT_EQ(ModP2048::Name(), "modp-2048");
}

}  // namespace
}  // namespace vdp
