#include "src/group/ed25519_field.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/math/montgomery.h"
#include "src/math/primality.h"

namespace vdp {
namespace {

// Reference implementation: BigInt arithmetic mod p.
const MontgomeryCtx<4>& RefCtx() {
  static const MontgomeryCtx<4> ctx(Fe25519::P());
  return ctx;
}

Fe25519 RandomFe(SecureRng& rng) {
  return Fe25519::FromBigInt(RandomBelow(Fe25519::P(), rng));
}

TEST(Fe25519Test, PIsCorrect) {
  // p = 2^255 - 19
  BigInt<5> two255;
  two255.SetBit(255);
  BigInt<5> p5 = Fe25519::P().Resize<5>();
  BigInt<5> diff;
  BigInt<5>::SubInto(diff, two255, p5);
  EXPECT_EQ(diff, BigInt<5>::FromU64(19));
}

TEST(Fe25519Test, ZeroOneBasics) {
  EXPECT_TRUE(Fe25519::Zero().IsZero());
  EXPECT_FALSE(Fe25519::One().IsZero());
  EXPECT_EQ(Fe25519::One().ToBigInt(), BigInt<4>::One());
}

TEST(Fe25519Test, AddMatchesReference) {
  SecureRng rng("fe-add");
  for (int i = 0; i < 200; ++i) {
    BigInt<4> a = RandomBelow(Fe25519::P(), rng);
    BigInt<4> b = RandomBelow(Fe25519::P(), rng);
    Fe25519 r = Fe25519::Add(Fe25519::FromBigInt(a), Fe25519::FromBigInt(b));
    EXPECT_EQ(r.ToBigInt(), AddMod(a, b, Fe25519::P()));
  }
}

TEST(Fe25519Test, SubMatchesReference) {
  SecureRng rng("fe-sub");
  for (int i = 0; i < 200; ++i) {
    BigInt<4> a = RandomBelow(Fe25519::P(), rng);
    BigInt<4> b = RandomBelow(Fe25519::P(), rng);
    Fe25519 r = Fe25519::Sub(Fe25519::FromBigInt(a), Fe25519::FromBigInt(b));
    EXPECT_EQ(r.ToBigInt(), SubMod(a, b, Fe25519::P()));
  }
}

TEST(Fe25519Test, MulMatchesReference) {
  SecureRng rng("fe-mul");
  for (int i = 0; i < 200; ++i) {
    BigInt<4> a = RandomBelow(Fe25519::P(), rng);
    BigInt<4> b = RandomBelow(Fe25519::P(), rng);
    Fe25519 r = Fe25519::Mul(Fe25519::FromBigInt(a), Fe25519::FromBigInt(b));
    EXPECT_EQ(r.ToBigInt(), RefCtx().MulMod(a, b));
  }
}

TEST(Fe25519Test, MulEdgeValues) {
  // Values near p stress the final reduction.
  BigInt<4> p_minus_1 = Fe25519::P();
  BigInt<4>::SubInto(p_minus_1, p_minus_1, BigInt<4>::One());
  Fe25519 m1 = Fe25519::FromBigInt(p_minus_1);
  // (-1) * (-1) = 1
  EXPECT_EQ(Fe25519::Mul(m1, m1).ToBigInt(), BigInt<4>::One());
  // (-1) + 1 = 0
  EXPECT_TRUE(Fe25519::Add(m1, Fe25519::One()).IsZero());
}

TEST(Fe25519Test, NegIsAdditiveInverse) {
  SecureRng rng("fe-neg");
  for (int i = 0; i < 50; ++i) {
    Fe25519 a = RandomFe(rng);
    EXPECT_TRUE(Fe25519::Add(a, Fe25519::Neg(a)).IsZero());
  }
}

TEST(Fe25519Test, InvertIsMultiplicativeInverse) {
  SecureRng rng("fe-inv");
  for (int i = 0; i < 20; ++i) {
    Fe25519 a = RandomFe(rng);
    if (a.IsZero()) {
      continue;
    }
    EXPECT_EQ(Fe25519::Mul(a, a.Invert()).ToBigInt(), BigInt<4>::One());
  }
}

TEST(Fe25519Test, SqrtOfSquareRecoverValue) {
  SecureRng rng("fe-sqrt");
  for (int i = 0; i < 30; ++i) {
    Fe25519 a = RandomFe(rng);
    Fe25519 aa = Fe25519::Square(a);
    auto root = aa.Sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == Fe25519::Neg(a));
  }
}

TEST(Fe25519Test, SqrtOfNonResidueFails) {
  // Count failures over random values: about half of nonzero elements are
  // non-residues, so we must see at least one failure in 40 draws.
  SecureRng rng("fe-nonres");
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    if (!RandomFe(rng).Sqrt().has_value()) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
}

TEST(Fe25519Test, SqrtMinusOneExists) {
  // p = 1 mod 4, so -1 is a quadratic residue.
  auto root = Fe25519::Neg(Fe25519::One()).Sqrt();
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(Fe25519::Square(*root), Fe25519::Neg(Fe25519::One()));
}

TEST(Fe25519Test, EncodingRoundTrip) {
  SecureRng rng("fe-bytes");
  for (int i = 0; i < 100; ++i) {
    Fe25519 a = RandomFe(rng);
    auto bytes = a.ToBytes();
    auto back = Fe25519::FromBytes(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
}

TEST(Fe25519Test, FromBytesRejectsNonCanonical) {
  // p itself encodes to 32 bytes with bit 255 clear but is not canonical.
  Bytes p_le(32);
  for (size_t i = 0; i < 32; ++i) {
    p_le[i] = static_cast<uint8_t>(Fe25519::P().limb[i / 8] >> (8 * (i % 8)));
  }
  EXPECT_FALSE(Fe25519::FromBytes(p_le).has_value());
  // All-ones with top bit set is rejected for the sign bit.
  Bytes all_ones(32, 0xff);
  EXPECT_FALSE(Fe25519::FromBytes(all_ones).has_value());
  // Wrong length.
  EXPECT_FALSE(Fe25519::FromBytes(Bytes(31, 0)).has_value());
}

TEST(Fe25519Test, IsNegativeIsParityOfCanonicalForm) {
  EXPECT_FALSE(Fe25519::Zero().IsNegative());
  EXPECT_TRUE(Fe25519::One().IsNegative());
  EXPECT_FALSE(Fe25519::FromU64(2).IsNegative());
  // -1 = p - 1 which is even.
  EXPECT_FALSE(Fe25519::Neg(Fe25519::One()).IsNegative());
}

TEST(Fe25519Test, PowMatchesMontgomeryReference) {
  SecureRng rng("fe-pow");
  for (int i = 0; i < 10; ++i) {
    BigInt<4> a = RandomBelow(Fe25519::P(), rng);
    BigInt<4> e = RandomBelow(Fe25519::P(), rng);
    Fe25519 r = Fe25519::Pow(Fe25519::FromBigInt(a), e);
    EXPECT_EQ(r.ToBigInt(), RefCtx().ExpMod(a, e));
  }
}

TEST(Fe25519Test, FromU64LargeValue) {
  uint64_t big = ~uint64_t{0};
  EXPECT_EQ(Fe25519::FromU64(big).ToBigInt(), BigInt<4>::FromU64(big));
}

}  // namespace
}  // namespace vdp
