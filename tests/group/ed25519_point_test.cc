#include "src/group/ed25519.h"

#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/common/rng.h"
#include "src/math/primality.h"

namespace vdp {
namespace {

using G = Ed25519Group;

TEST(Ed25519Test, CurveConstantDMatchesDefinition) {
  // d = -121665/121666: check 121666 * d == -121665.
  Fe25519 lhs = Fe25519::Mul(Fe25519::FromU64(121666), G::D());
  EXPECT_EQ(lhs, Fe25519::Neg(Fe25519::FromU64(121665)));
}

TEST(Ed25519Test, GroupOrderIsPrime) {
  SecureRng rng("l-prime");
  EXPECT_TRUE(IsProbablePrime(G::ScalarTag::Order(), 20, rng));
  EXPECT_EQ(G::ScalarTag::Order().BitLength(), 253u);
}

TEST(Ed25519Test, GeneratorMatchesRfc8032Encoding) {
  // The standard base point compresses to 0x58 followed by 31 bytes of 0x66.
  Bytes expected = *HexDecode(
      "5866666666666666666666666666666666666666666666666666666666666666");
  EXPECT_EQ(G::Encode(G::Generator()), expected);
}

TEST(Ed25519Test, GeneratorHasOrderL) {
  auto l_scalar = G::Scalar::FromInt(G::ScalarTag::Order());
  EXPECT_TRUE(l_scalar.IsZero());  // l mod l == 0
  EXPECT_TRUE(G::InSubgroup(G::Generator()));
  // (l - 1) * B == -B
  auto lm1 = G::Scalar::Zero() - G::Scalar::One();
  EXPECT_EQ(G::ExpG(lm1), G::Inverse(G::Generator()));
}

TEST(Ed25519Test, IdentityBehaves) {
  auto id = G::Identity();
  auto b = G::Generator();
  EXPECT_EQ(G::Mul(id, b), b);
  EXPECT_EQ(G::Mul(b, id), b);
  EXPECT_EQ(G::Mul(b, G::Inverse(b)), id);
}

TEST(Ed25519Test, ScalarMultMatchesRepeatedAddition) {
  auto b = G::Generator();
  auto acc = G::Identity();
  for (uint64_t k = 0; k <= 20; ++k) {
    EXPECT_EQ(G::ExpG(G::Scalar::FromU64(k)), acc) << "k=" << k;
    acc = G::Mul(acc, b);
  }
}

TEST(Ed25519Test, ExpDistributesOverScalarAddition) {
  SecureRng rng("exp-dist");
  for (int i = 0; i < 10; ++i) {
    auto a = G::Scalar::Random(rng);
    auto c = G::Scalar::Random(rng);
    EXPECT_EQ(G::ExpG(a + c), G::Mul(G::ExpG(a), G::ExpG(c)));
  }
}

TEST(Ed25519Test, EncodeDecodeRoundTrip) {
  SecureRng rng("ed-codec");
  for (int i = 0; i < 20; ++i) {
    auto e = G::ExpG(G::Scalar::Random(rng));
    auto decoded = G::Decode(G::Encode(e));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, e);
  }
}

TEST(Ed25519Test, DecodeRejectsOffCurve) {
  // y = 2 gives x^2 = 3/(4d+1); overwhelmingly either decodes or not --
  // construct a definite reject: iterate until we find a non-decodable y and
  // assert at least one exists among small ys.
  int rejects = 0;
  for (uint64_t y = 2; y < 40; ++y) {
    Bytes enc(32, 0);
    enc[0] = static_cast<uint8_t>(y);
    if (!G::Decode(enc).has_value()) {
      ++rejects;
    }
  }
  EXPECT_GT(rejects, 0);
}

TEST(Ed25519Test, DecodeRejectsTorsionPoint) {
  // (0, -1) has order 2. Its encoding is the canonical encoding of p-1.
  BigInt<4> p_minus_1 = Fe25519::P();
  BigInt<4>::SubInto(p_minus_1, p_minus_1, BigInt<4>::One());
  Bytes enc(32);
  for (size_t i = 0; i < 32; ++i) {
    enc[i] = static_cast<uint8_t>(p_minus_1.limb[i / 8] >> (8 * (i % 8)));
  }
  EXPECT_FALSE(G::Decode(enc).has_value());
}

TEST(Ed25519Test, DecodeAcceptsIdentity) {
  Bytes enc(32, 0);
  enc[0] = 1;  // y = 1, x = 0
  auto decoded = G::Decode(enc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, G::Identity());
}

TEST(Ed25519Test, DecodeRejectsWrongLength) {
  EXPECT_FALSE(G::Decode(Bytes(31, 0)).has_value());
  EXPECT_FALSE(G::Decode(Bytes(33, 0)).has_value());
}

TEST(Ed25519Test, HashToGroupProducesSubgroupElements) {
  auto h = G::HashToGroup(StrView("pedersen"), StrView("generator-h"));
  EXPECT_TRUE(G::InSubgroup(h));
  EXPECT_NE(h, G::Identity());
  // Determinism and domain separation.
  EXPECT_EQ(h, G::HashToGroup(StrView("pedersen"), StrView("generator-h")));
  EXPECT_NE(h, G::HashToGroup(StrView("pedersen"), StrView("other")));
}

TEST(Ed25519Test, NegationIsInvolution) {
  SecureRng rng("ed-neg");
  auto e = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Inverse(G::Inverse(e)), e);
}

TEST(Ed25519Test, MulIsCommutativeAndAssociative) {
  SecureRng rng("ed-laws");
  auto a = G::ExpG(G::Scalar::Random(rng));
  auto b = G::ExpG(G::Scalar::Random(rng));
  auto c = G::ExpG(G::Scalar::Random(rng));
  EXPECT_EQ(G::Mul(a, b), G::Mul(b, a));
  EXPECT_EQ(G::Mul(G::Mul(a, b), c), G::Mul(a, G::Mul(b, c)));
}

}  // namespace
}  // namespace vdp
