// Carry-chain and reduction edge cases for the fe25519 field arithmetic:
// values adjacent to p, 2^255, limb boundaries, and long operation chains
// cross-validated against the BigInt reference.
#include <gtest/gtest.h>

#include "src/group/ed25519_field.h"
#include "src/math/montgomery.h"
#include "src/math/primality.h"

namespace vdp {
namespace {

const MontgomeryCtx<4>& RefCtx() {
  static const MontgomeryCtx<4> ctx(Fe25519::P());
  return ctx;
}

BigInt<4> PMinus(uint64_t k) {
  BigInt<4> v = Fe25519::P();
  BigInt<4>::SubInto(v, v, BigInt<4>::FromU64(k));
  return v;
}

TEST(Fe25519EdgeTest, ValuesAdjacentToP) {
  for (uint64_t k : {1ull, 2ull, 18ull, 19ull, 20ull, 37ull, 38ull}) {
    BigInt<4> a = PMinus(k);
    Fe25519 fe = Fe25519::FromBigInt(a);
    EXPECT_EQ(fe.ToBigInt(), a) << "k=" << k;
    // (p-k) + k == 0
    EXPECT_TRUE(Fe25519::Add(fe, Fe25519::FromU64(k)).IsZero()) << "k=" << k;
  }
}

TEST(Fe25519EdgeTest, MultiplicationAtBoundaries) {
  SecureRng rng("fe-edge-mul");
  std::vector<BigInt<4>> specials = {
      BigInt<4>::Zero(), BigInt<4>::One(), BigInt<4>::FromU64(2), PMinus(1), PMinus(2),
      PMinus(19),
  };
  // Limb-boundary values: 2^51, 2^102, 2^204 +/- 1.
  for (size_t bit : {51u, 102u, 153u, 204u, 254u}) {
    BigInt<4> v;
    v.SetBit(bit);
    specials.push_back(v);
    BigInt<4> w = v;
    BigInt<4>::SubInto(w, w, BigInt<4>::One());
    specials.push_back(w);
  }
  for (const auto& a : specials) {
    for (const auto& b : specials) {
      Fe25519 r = Fe25519::Mul(Fe25519::FromBigInt(a), Fe25519::FromBigInt(b));
      EXPECT_EQ(r.ToBigInt(), RefCtx().MulMod(a, b))
          << a.ToHex() << " * " << b.ToHex();
    }
  }
}

TEST(Fe25519EdgeTest, LongAlternatingChainMatchesReference) {
  // Stress loose-reduction bounds: hundreds of alternating ops without
  // canonicalization in between.
  SecureRng rng("fe-edge-chain");
  BigInt<4> ref = RandomBelow(Fe25519::P(), rng);
  Fe25519 fe = Fe25519::FromBigInt(ref);
  for (int i = 0; i < 300; ++i) {
    BigInt<4> operand = RandomBelow(Fe25519::P(), rng);
    Fe25519 fe_op = Fe25519::FromBigInt(operand);
    switch (i % 4) {
      case 0:
        fe = Fe25519::Add(fe, fe_op);
        ref = AddMod(ref, operand, Fe25519::P());
        break;
      case 1:
        fe = Fe25519::Sub(fe, fe_op);
        ref = SubMod(ref, operand, Fe25519::P());
        break;
      case 2:
        fe = Fe25519::Mul(fe, fe_op);
        ref = RefCtx().MulMod(ref, operand);
        break;
      case 3:
        fe = Fe25519::Square(fe);
        ref = RefCtx().MulMod(ref, ref);
        break;
    }
  }
  EXPECT_EQ(fe.ToBigInt(), ref);
}

TEST(Fe25519EdgeTest, RepeatedSubtractionUnderflowSafety) {
  // Sub adds 2p before subtracting; chains of subs must stay correct.
  Fe25519 fe = Fe25519::Zero();
  BigInt<4> ref = BigInt<4>::Zero();
  Fe25519 one = Fe25519::One();
  for (int i = 0; i < 100; ++i) {
    fe = Fe25519::Sub(fe, one);
    ref = SubMod(ref, BigInt<4>::One(), Fe25519::P());
  }
  EXPECT_EQ(fe.ToBigInt(), ref);
  EXPECT_EQ(fe.ToBigInt(), PMinus(100));
}

TEST(Fe25519EdgeTest, CanonicalEncodingOfBoundaryValues) {
  // 2^255 - 20 = p - 1 is the largest canonical value.
  auto bytes = Fe25519::FromBigInt(PMinus(1)).ToBytes();
  EXPECT_EQ(bytes[0], 0xec);  // p-1 = ...ec in little-endian
  EXPECT_EQ(bytes[31], 0x7f);
  auto back = Fe25519::FromBytes(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ToBigInt(), PMinus(1));
}

TEST(Fe25519EdgeTest, SqrtEdgeCases) {
  // sqrt(0) = 0, sqrt(1) = +/-1, sqrt(4) = +/-2.
  auto zero_root = Fe25519::Zero().Sqrt();
  ASSERT_TRUE(zero_root.has_value());
  EXPECT_TRUE(zero_root->IsZero());
  auto one_root = Fe25519::One().Sqrt();
  ASSERT_TRUE(one_root.has_value());
  EXPECT_TRUE(Fe25519::Square(*one_root) == Fe25519::One());
  auto four_root = Fe25519::FromU64(4).Sqrt();
  ASSERT_TRUE(four_root.has_value());
  EXPECT_TRUE(*four_root == Fe25519::FromU64(2) || *four_root == Fe25519::Neg(Fe25519::FromU64(2)));
}

TEST(Fe25519EdgeTest, InvertOfOneAndMinusOne) {
  EXPECT_EQ(Fe25519::One().Invert(), Fe25519::One());
  Fe25519 minus_one = Fe25519::Neg(Fe25519::One());
  EXPECT_EQ(minus_one.Invert(), minus_one);  // (-1)^-1 = -1
}

}  // namespace
}  // namespace vdp
