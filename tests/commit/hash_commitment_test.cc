#include "src/commit/hash_commitment.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

TEST(HashCommitmentTest, CommitVerifyRoundTrip) {
  SecureRng rng("hc-rt");
  auto [commitment, opening] = HashCommitment::Commit(ToBytes("hello"), rng);
  EXPECT_TRUE(HashCommitment::Verify(commitment, opening));
}

TEST(HashCommitmentTest, TamperedMessageRejected) {
  SecureRng rng("hc-msg");
  auto [commitment, opening] = HashCommitment::Commit(ToBytes("hello"), rng);
  opening.message = ToBytes("hellp");
  EXPECT_FALSE(HashCommitment::Verify(commitment, opening));
}

TEST(HashCommitmentTest, TamperedRandomnessRejected) {
  SecureRng rng("hc-rand");
  auto [commitment, opening] = HashCommitment::Commit(ToBytes("hello"), rng);
  opening.randomness[0] ^= 1;
  EXPECT_FALSE(HashCommitment::Verify(commitment, opening));
}

TEST(HashCommitmentTest, WrongRandomnessSizeRejected) {
  SecureRng rng("hc-size");
  auto [commitment, opening] = HashCommitment::Commit(ToBytes("x"), rng);
  opening.randomness.pop_back();
  EXPECT_FALSE(HashCommitment::Verify(commitment, opening));
}

TEST(HashCommitmentTest, FreshRandomnessHides) {
  SecureRng rng("hc-hide");
  auto [c1, o1] = HashCommitment::Commit(ToBytes("same"), rng);
  auto [c2, o2] = HashCommitment::Commit(ToBytes("same"), rng);
  EXPECT_NE(Bytes(c1.begin(), c1.end()), Bytes(c2.begin(), c2.end()));
}

TEST(HashCommitmentTest, EmptyMessageSupported) {
  SecureRng rng("hc-empty");
  auto [commitment, opening] = HashCommitment::Commit(Bytes{}, rng);
  EXPECT_TRUE(HashCommitment::Verify(commitment, opening));
}

TEST(HashCommitmentTest, MessageLengthIsBound) {
  // Openings where message bytes shift between message/randomness must fail:
  // the length prefix in the preimage prevents ambiguity.
  SecureRng rng("hc-len");
  auto [commitment, opening] = HashCommitment::Commit(ToBytes("ab"), rng);
  HashCommitment::Opening shifted;
  shifted.message = ToBytes("a");
  shifted.randomness = Bytes{'b'};
  shifted.randomness.insert(shifted.randomness.end(), opening.randomness.begin(),
                            opening.randomness.end() - 1);
  EXPECT_FALSE(HashCommitment::Verify(commitment, shifted));
}

}  // namespace
}  // namespace vdp
