#include "src/commit/pedersen.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

template <typename G>
class PedersenTest : public ::testing::Test {};

using GroupTypes = ::testing::Types<ModP256, ModP512, Ed25519Group>;
TYPED_TEST_SUITE(PedersenTest, GroupTypes);

TYPED_TEST(PedersenTest, CommitVerifyRoundTrip) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-rt-" + G::Name());
  for (int i = 0; i < 5; ++i) {
    S x = S::Random(rng);
    auto opening = ped.CommitRandom(x, rng);
    EXPECT_TRUE(ped.Verify(opening.commitment, x, opening.randomness));
  }
}

TYPED_TEST(PedersenTest, WrongOpeningRejected) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-wrong-" + G::Name());
  S x = S::Random(rng);
  auto opening = ped.CommitRandom(x, rng);
  EXPECT_FALSE(ped.Verify(opening.commitment, x + S::One(), opening.randomness));
  EXPECT_FALSE(ped.Verify(opening.commitment, x, opening.randomness + S::One()));
}

TYPED_TEST(PedersenTest, HomomorphicAddition) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-hom-" + G::Name());
  S x1 = S::Random(rng), r1 = S::Random(rng);
  S x2 = S::Random(rng), r2 = S::Random(rng);
  auto c1 = ped.Commit(x1, r1);
  auto c2 = ped.Commit(x2, r2);
  // Com(x1,r1) * Com(x2,r2) == Com(x1+x2, r1+r2)  (Definition 3, Eq. 2)
  EXPECT_EQ(G::Mul(c1, c2), ped.Commit(x1 + x2, r1 + r2));
}

TYPED_TEST(PedersenTest, HomomorphicScalarWeighting) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-scale-" + G::Name());
  S x = S::Random(rng), r = S::Random(rng), k = S::Random(rng);
  // Com(x,r)^k == Com(kx, kr)
  EXPECT_EQ(G::Exp(ped.Commit(x, r), k), ped.Commit(k * x, k * r));
}

TYPED_TEST(PedersenTest, HomomorphicInverse) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-inv-" + G::Name());
  S x = S::Random(rng), r = S::Random(rng);
  EXPECT_EQ(G::Inverse(ped.Commit(x, r)), ped.Commit(-x, -r));
}

TYPED_TEST(PedersenTest, CommitToZeroWithZeroRandomnessIsIdentity) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  EXPECT_EQ(ped.Commit(S::Zero(), S::Zero()), G::Identity());
}

TYPED_TEST(PedersenTest, FreshRandomnessHidesEqualMessages) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-hide-" + G::Name());
  auto c1 = ped.CommitRandom(S::One(), rng);
  auto c2 = ped.CommitRandom(S::One(), rng);
  EXPECT_NE(c1.commitment, c2.commitment);
}

TYPED_TEST(PedersenTest, DeterministicGivenRandomness) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-det-" + G::Name());
  S x = S::Random(rng), r = S::Random(rng);
  EXPECT_EQ(ped.Commit(x, r), ped.Commit(x, r));
}

TYPED_TEST(PedersenTest, TableExpMatchesGroupExp) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-table-" + G::Name());
  S r = S::Random(rng);
  EXPECT_EQ(ped.ExpH(r), G::Exp(ped.params().h, r));
  EXPECT_EQ(ped.ExpG(r), G::Exp(ped.params().g, r));
}

TYPED_TEST(PedersenTest, CommitMatchesDefinition) {
  using G = TypeParam;
  using S = typename G::Scalar;
  Pedersen<G> ped;
  SecureRng rng("ped-def-" + G::Name());
  S x = S::Random(rng), r = S::Random(rng);
  auto expected = G::Mul(G::Exp(ped.params().g, x), G::Exp(ped.params().h, r));
  EXPECT_EQ(ped.Commit(x, r), expected);
}

TYPED_TEST(PedersenTest, GeneratorsDiffer) {
  using G = TypeParam;
  Pedersen<G> ped;
  EXPECT_NE(ped.params().g, ped.params().h);
  EXPECT_NE(ped.params().h, G::Identity());
}

}  // namespace
}  // namespace vdp
