// VerifyReport building blocks: typed rejection classification, canonical
// rendering, and the report helpers every backend relies on.
#include <gtest/gtest.h>

#include "src/group/modp_group.h"
#include "src/verify/report.h"

namespace vdp {
namespace {

using G = ModP256;

TEST(RejectCodeTest, ClassifiesCanonicalDetailStrings) {
  EXPECT_EQ(ClassifyRejectDetail("malformed upload shape"), RejectCode::kMalformedUpload);
  EXPECT_EQ(ClassifyRejectDetail("bins do not sum to one"), RejectCode::kNotOneHot);
  EXPECT_EQ(ClassifyRejectDetail("bin OR proof invalid"), RejectCode::kProofInvalid);
  EXPECT_EQ(ClassifyRejectDetail("anything else"), RejectCode::kUnspecified);
  EXPECT_EQ(ClassifyRejectDetail(""), RejectCode::kUnspecified);
}

TEST(RejectCodeTest, NamesAreStable) {
  EXPECT_STREQ(RejectCodeName(RejectCode::kMalformedUpload), "malformed-upload");
  EXPECT_STREQ(RejectCodeName(RejectCode::kNotOneHot), "not-one-hot");
  EXPECT_STREQ(RejectCodeName(RejectCode::kProofInvalid), "proof-invalid");
  EXPECT_STREQ(RejectCodeName(RejectCode::kUnspecified), "unspecified");
}

TEST(RejectionReasonTest, RendersLegacyFormat) {
  RejectionReason reason{42, RejectCode::kProofInvalid, "bin OR proof invalid"};
  EXPECT_EQ(reason.Render(), "client 42: bin OR proof invalid");
}

TEST(RejectionReasonTest, EqualityComparesAllFields) {
  RejectionReason a{1, RejectCode::kProofInvalid, "bin OR proof invalid"};
  RejectionReason b = a;
  EXPECT_TRUE(a == b);
  b.index = 2;
  EXPECT_FALSE(a == b);
  b = a;
  b.code = RejectCode::kNotOneHot;
  EXPECT_FALSE(a == b);
  b = a;
  b.detail = "other";
  EXPECT_FALSE(a == b);
}

TEST(VerifyReportTest, RenderedReasonsFollowRejectionOrder) {
  VerifyReport<G> report;
  report.rejections.push_back({3, RejectCode::kProofInvalid, "bin OR proof invalid"});
  report.rejections.push_back({9, RejectCode::kMalformedUpload, "malformed upload shape"});
  EXPECT_EQ(report.RenderedReasons(),
            (std::vector<std::string>{"client 3: bin OR proof invalid",
                                      "client 9: malformed upload shape"}));
}

TEST(VerifyReportTest, HasProductsTracksComputation) {
  VerifyReport<G> report;
  EXPECT_FALSE(report.has_products());
  report.commitment_products.assign(1, std::vector<G::Element>(1, G::Identity()));
  EXPECT_TRUE(report.has_products());
}

}  // namespace
}  // namespace vdp
