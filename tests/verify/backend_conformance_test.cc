// Backend conformance: every registered VerifyBackend is one execution
// strategy for the same abstract public verifier, so on the same adversarial
// upload set all of them must produce bit-identical accept sets, commitment
// products, and rejection reasons -- streaming or one-shot, against the
// per-proof oracle as ground truth.
//
// The whole suite is generic over the group backend and dispatches through
// the group registry: VDP_GROUP selects which compiled-in group runs (the CI
// group-matrix job exports ed25519; default modp-256), so the same binary
// proves conformance for the mod-p and curve arithmetic paths alike. The
// multiprocess backend's worker count honors VDP_VERIFY_WORKERS (the CI
// backend-matrix job exports 3) so the fleet shape under test varies across
// workflow configurations without changing any decision.
#include <gtest/gtest.h>
#include <signal.h>

#include <cstdlib>
#include <random>

#include "src/core/verifier.h"
#include "src/group/registry.h"
#include "src/net/server_process.h"
#include "src/obs/trace.h"
#include "src/verify/factory.h"

namespace vdp {
namespace {

size_t WorkersFromEnv() {
  if (const char* env = std::getenv("VDP_VERIFY_WORKERS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 1) {
      return static_cast<size_t>(parsed);
    }
  }
  return 2;
}

// Runs fn(GroupTag<G>{}) for the group selected by VDP_GROUP (default
// modp-256). Every conformance test body routes through here, so exporting
// the variable re-points the entire suite at another backend group.
template <typename Fn>
void RunForGroup(Fn&& fn) {
  const char* env = std::getenv("VDP_GROUP");
  const std::string name = (env != nullptr && *env != '\0') ? env : ModP256::Name();
  ASSERT_TRUE(DispatchRegisteredGroup(name, std::forward<Fn>(fn)))
      << "VDP_GROUP names no compiled-in group: " << name;
}

template <PrimeOrderGroup G>
struct Suite {
  using S = typename G::Scalar;
  using Element = typename G::Element;

  // One shared protocol surface: identical session id (and thus identical
  // Fiat-Shamir contexts) for every backend, with only the execution-selection
  // flags varying.
  static ProtocolConfig ConfigFor(VerifyBackendKind kind) {
    ProtocolConfig config;
    config.epsilon = 50.0;  // nb = 31: keeps upload construction fast
    config.num_provers = 2;
    config.num_bins = 3;
    config.session_id = "backend-conformance";
    switch (kind) {
      case VerifyBackendKind::kPerProof:
        break;
      case VerifyBackendKind::kBatched:
        config.batch_verify = true;
        break;
      case VerifyBackendKind::kSharded:
        config.num_verify_shards = 5;
        break;
      case VerifyBackendKind::kMultiprocess:
        config.num_verify_shards = 5;
        config.verify_workers = WorkersFromEnv();
        break;
      case VerifyBackendKind::kRemote:
        // A real loopback socket fleet, shared across the suite (spawned on
        // first use, down with the process). The fleet's workers select this
        // group from the wire setup frame, so one fleet serves every group.
        config.num_verify_shards = 5;
        net::SharedLoopbackFleet(2).ApplyTo(&config);
        break;
    }
    return config;
  }

  // The shared adversarial corpus: honest uploads with every rejection class
  // represented, spread across shard boundaries -- a tampered proof response,
  // a malformed shape, a tampered sub-challenge, and a broken one-hot opening.
  static std::vector<ClientUploadMsg<G>> Corpus(const Pedersen<G>& ped) {
    const ProtocolConfig config = ConfigFor(VerifyBackendKind::kPerProof);
    SecureRng rng("backend-conformance-corpus");
    std::vector<ClientUploadMsg<G>> uploads;
    for (size_t i = 0; i < 22; ++i) {
      uploads.push_back(
          MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, ped, rng)
              .upload);
    }
    uploads[3].bin_proofs[0].z0 += S::One();        // invalid OR proof
    uploads[9].commitments.clear();                 // malformed shape
    uploads[14].bin_proofs[1].e1 += S::One();       // tampered sub-challenge
    uploads[19].sum_randomness += S::One();         // breaks the one-hot opening
    return uploads;
  }

  static std::vector<std::vector<Element>> DirectProducts(
      const ProtocolConfig& config, const std::vector<ClientUploadMsg<G>>& uploads,
      const std::vector<size_t>& accepted) {
    std::vector<std::vector<Element>> products(
        config.num_provers, std::vector<Element>(config.num_bins, G::Identity()));
    for (size_t idx : accepted) {
      for (size_t k = 0; k < config.num_provers; ++k) {
        for (size_t m = 0; m < config.num_bins; ++m) {
          products[k][m] = G::Mul(products[k][m], uploads[idx].commitments[k][m]);
        }
      }
    }
    return products;
  }

  static void ExpectSameDecisions(const VerifyReport<G>& expected, const VerifyReport<G>& actual) {
    EXPECT_EQ(expected.accepted, actual.accepted);
    EXPECT_EQ(expected.rejections, actual.rejections);
    EXPECT_EQ(expected.RenderedReasons(), actual.RenderedReasons());
    EXPECT_EQ(expected.total_uploads, actual.total_uploads);
    ASSERT_EQ(expected.has_products(), actual.has_products());
    ASSERT_EQ(expected.commitment_products.size(), actual.commitment_products.size());
    for (size_t k = 0; k < expected.commitment_products.size(); ++k) {
      ASSERT_EQ(expected.commitment_products[k].size(), actual.commitment_products[k].size());
      for (size_t m = 0; m < expected.commitment_products[k].size(); ++m) {
        EXPECT_TRUE(expected.commitment_products[k][m] == actual.commitment_products[k][m])
            << "product mismatch at prover " << k << " bin " << m;
      }
    }
  }

  // The per-proof oracle's report on the same scenario: ground truth.
  static VerifyReport<G> Oracle(const Pedersen<G>& ped,
                                const std::vector<ClientUploadMsg<G>>& uploads,
                                bool compute_products = true) {
    auto oracle = MakeVerifyBackend<G>(VerifyBackendKind::kPerProof,
                                       ConfigFor(VerifyBackendKind::kPerProof), ped);
    VerifyOptions options;
    options.compute_products = compute_products;
    return oracle->VerifyAll(uploads, options);
  }

  static std::unique_ptr<VerifyBackend<G>> Backend(VerifyBackendKind kind,
                                                   const Pedersen<G>& ped) {
    return MakeVerifyBackend<G>(kind, ConfigFor(kind), ped);
  }

  // --- parameterized conformance bodies ----------------------------------

  // The headline conformance check: full adversarial corpus, one-shot.
  static void AdversarialCorpusMatchesOracle(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    auto expected = Oracle(ped, uploads);
    auto report = Backend(kind, ped)->VerifyAll(uploads);
    EXPECT_EQ(report.backend, VerifyBackendKindName(kind));
    ExpectSameDecisions(expected, report);

    // And against the direct per-upload product, independently of any backend.
    auto direct = DirectProducts(ConfigFor(kind), uploads, expected.accepted);
    for (size_t k = 0; k < direct.size(); ++k) {
      for (size_t m = 0; m < direct[k].size(); ++m) {
        EXPECT_TRUE(report.commitment_products[k][m] == direct[k][m]);
      }
    }
  }

  // Streaming lifecycle (Start / Add / Finish) agrees with the one-shot path,
  // and a finished backend is reusable for a second stream.
  static void StreamingMatchesOneShot(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    auto backend = Backend(kind, ped);
    auto oneshot = backend->VerifyAll(uploads);

    backend->Start(VerifyOptions{});
    for (const auto& upload : uploads) {
      backend->Add(upload);
    }
    auto streamed = backend->Finish();
    EXPECT_EQ(streamed.accepted, oneshot.accepted);
    EXPECT_EQ(streamed.rejections, oneshot.rejections);
    for (size_t k = 0; k < oneshot.commitment_products.size(); ++k) {
      for (size_t m = 0; m < oneshot.commitment_products[k].size(); ++m) {
        EXPECT_TRUE(streamed.commitment_products[k][m] == oneshot.commitment_products[k][m]);
      }
    }

    // Reuse after Finish: a fresh stream starts from global index 0.
    backend->Start(VerifyOptions{});
    backend->Add(uploads[0]);
    auto second = backend->Finish();
    EXPECT_EQ(second.accepted, (std::vector<size_t>{0}));
    EXPECT_EQ(second.total_uploads, 1u);
  }

  // A one-shot VerifyAll behaves exactly like Start: anything buffered from an
  // interrupted stream is discarded, never folded into a phantom report.
  static void VerifyAllDiscardsBufferedStream(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    auto backend = Backend(kind, ped);
    backend->Start(VerifyOptions{});
    backend->Add(uploads[1]);  // abandoned mid-stream
    auto oneshot = backend->VerifyAll(uploads);
    EXPECT_EQ(oneshot.total_uploads, uploads.size());
    auto after = backend->Finish();  // fresh empty stream, not the stale upload
    EXPECT_TRUE(after.accepted.empty());
    EXPECT_EQ(after.total_uploads, 0u);
  }

  // Randomized streaming interleavings: any mix of Add, moved-out Submit, and
  // AddBulk over the adversarial corpus, under randomly small stream windows
  // (where backpressure actually engages) and capacities that land the
  // tampered uploads on different shard boundaries every round, must still be
  // bit-identical to the one-shot verdict. The RNG is seeded per backend, so a
  // failure names a reproducible (capacity, window, interleaving) triple.
  static void RandomizedInterleavingsMatchOneShot(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    auto backend = Backend(kind, ped);
    auto oneshot = backend->VerifyAll(uploads);

    std::mt19937 rng(0x5eed0000u + static_cast<unsigned>(kind) * 97u);
    for (int round = 0; round < 4; ++round) {
      VerifyOptions options;
      options.stream_shard_capacity = 1 + rng() % 7;
      options.stream_max_inflight_shards = 1 + rng() % 3;
      SCOPED_TRACE("round " + std::to_string(round) + " capacity=" +
                   std::to_string(options.stream_shard_capacity) + " window=" +
                   std::to_string(options.stream_max_inflight_shards));
      backend->Start(options);
      size_t i = 0;
      while (i < uploads.size()) {
        const uint32_t pick = rng() % 3;
        if (pick == 0) {
          backend->Add(uploads[i]);
          ++i;
        } else {
          const size_t len = std::min<size_t>(1 + rng() % 5, uploads.size() - i);
          std::vector<ClientUploadMsg<G>> chunk(uploads.begin() + i,
                                                uploads.begin() + i + len);
          if (pick == 1) {
            backend->Submit(std::move(chunk));  // the rvalue fast path
          } else {
            backend->AddBulk(std::move(chunk));
          }
          i += len;
        }
      }
      auto streamed = backend->Finish();
      ExpectSameDecisions(oneshot, streamed);
    }
  }

  static void EmptyUploadSet(VerifyBackendKind kind) {
    Pedersen<G> ped;
    std::vector<ClientUploadMsg<G>> empty;
    auto report = Backend(kind, ped)->VerifyAll(empty);
    EXPECT_TRUE(report.accepted.empty());
    EXPECT_TRUE(report.rejections.empty());
    EXPECT_EQ(report.total_uploads, 0u);
  }

  static void SingleValidClient(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    std::vector<ClientUploadMsg<G>> one = {uploads[0]};
    auto expected = Oracle(ped, one);
    auto report = Backend(kind, ped)->VerifyAll(one);
    ExpectSameDecisions(expected, report);
    EXPECT_EQ(report.accepted, (std::vector<size_t>{0}));
  }

  static void SingleTamperedClient(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    std::vector<ClientUploadMsg<G>> one = {uploads[3]};  // invalid OR proof
    auto expected = Oracle(ped, one);
    auto report = Backend(kind, ped)->VerifyAll(one);
    ExpectSameDecisions(expected, report);
    ASSERT_EQ(report.rejections.size(), 1u);
    EXPECT_EQ(report.rejections[0].code, RejectCode::kProofInvalid);
  }

  static void ProductsSkippedOnRequest(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    VerifyOptions options;
    options.compute_products = false;
    auto report = Backend(kind, ped)->VerifyAll(uploads, options);
    EXPECT_FALSE(report.has_products());
    EXPECT_EQ(report.accepted, Oracle(ped, uploads, /*compute_products=*/false).accepted);
  }

  // Observability conformance: every backend reports exactly the three
  // canonical stage names, in pipeline order, and their timings account for
  // the backend-resident wall time (total_ms). The loose-but-real bounds keep
  // a stage that silently stops being measured (or double-counts) from
  // passing, without making the suite flaky on loaded CI machines.
  static void StagesAreCanonicalAndSumToTotal(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    auto backend = Backend(kind, ped);
    backend->Start(VerifyOptions{});
    for (const auto& upload : uploads) {
      backend->Add(upload);
    }
    auto report = backend->Finish();

    auto stages = report.timings.Stages();
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].first, kStageIngest);
    EXPECT_EQ(stages[1].first, kStageVerify);
    EXPECT_EQ(stages[2].first, kStageCombine);
    double sum = 0;
    for (const auto& [name, ms] : stages) {
      EXPECT_GE(ms, 0.0) << "stage " << name << " went negative";
      sum += ms;
    }
    EXPECT_GT(report.timings.total_ms, 0.0);
    EXPECT_GT(report.timings.verify_ms, 0.0);
    // The named stages may not exceed the wall time (beyond scheduler noise)
    // and must cover most of it -- "assembly overhead" is small by contract.
    EXPECT_LE(sum, report.timings.total_ms * 1.10 + 10.0);
    EXPECT_GE(sum, report.timings.total_ms * 0.5 - 10.0);
  }

  // And the same stage names as trace spans: a traced one-shot run from any
  // backend produces exactly one verify span and one combine span under the
  // caller's trace, so a fleet-wide trace always has the same skeleton no
  // matter which execution strategy ran.
  static void TracedRunEmitsCanonicalStageSpans(VerifyBackendKind kind) {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);
    obs::TraceCollector tracer;
    VerifyOptions options;
    options.tracer = &tracer;
    options.trace_parent = tracer.RootContext();
    auto report = Backend(kind, ped)->VerifyAll(uploads, options);
    EXPECT_EQ(report.accepted, Oracle(ped, uploads).accepted);

    auto spans = tracer.TakeSpans();
    ASSERT_FALSE(spans.empty());
    size_t verify_spans = 0;
    size_t combine_spans = 0;
    for (const auto& span : spans) {
      EXPECT_EQ(span.trace_id, tracer.trace_id())
          << "span " << span.name << " landed outside the caller's trace";
      EXPECT_NE(span.span_id, 0u);
      if (span.name == kStageVerify) {
        ++verify_spans;
      }
      if (span.name == kStageCombine) {
        ++combine_spans;
      }
    }
    EXPECT_EQ(verify_spans, 1u);
    EXPECT_EQ(combine_spans, 1u);
  }

  // --- cross-backend (not parameterized) ----------------------------------

  // The rejection-reason regression: the typed RejectionReasons -- code,
  // detail, AND rendered legacy string -- must be identical from all five
  // backends, pinned against literal expectations so a drift in any one path
  // fails loudly.
  static void AllBackendsRenderIdenticalReasons() {
    Pedersen<G> ped;
    auto uploads = Corpus(ped);

    std::vector<VerifyReport<G>> reports;
    for (VerifyBackendKind kind : AllVerifyBackendKinds()) {
      reports.push_back(MakeVerifyBackend<G>(kind, ConfigFor(kind), ped)->VerifyAll(uploads));
    }
    for (size_t i = 1; i < reports.size(); ++i) {
      EXPECT_EQ(reports[0].rejections, reports[i].rejections)
          << "backend " << reports[i].backend << " diverged from " << reports[0].backend;
      EXPECT_EQ(reports[0].RenderedReasons(), reports[i].RenderedReasons());
    }

    // Pin the canonical renderings (the legacy "client <i>: <why>" format).
    ASSERT_EQ(reports[0].rejections.size(), 4u);
    const auto rendered = reports[0].RenderedReasons();
    EXPECT_EQ(rendered[0], "client 3: bin OR proof invalid");
    EXPECT_EQ(rendered[1], "client 9: malformed upload shape");
    EXPECT_EQ(rendered[2], "client 14: bin OR proof invalid");
    EXPECT_EQ(rendered[3], "client 19: bins do not sum to one");
    EXPECT_EQ(reports[0].rejections[0].code, RejectCode::kProofInvalid);
    EXPECT_EQ(reports[0].rejections[1].code, RejectCode::kMalformedUpload);
    EXPECT_EQ(reports[0].rejections[2].code, RejectCode::kProofInvalid);
    EXPECT_EQ(reports[0].rejections[3].code, RejectCode::kNotOneHot);

    // PublicVerifier's legacy reasons output is the same rendering.
    PublicVerifier<G> verifier(ConfigFor(VerifyBackendKind::kPerProof), ped);
    std::vector<std::string> legacy;
    verifier.ValidateClients(uploads, &legacy);
    EXPECT_EQ(legacy, rendered);
  }

  // --- remote-specific fleet-failure conformance ---------------------------
  //
  // The remote backend's extra failure surface -- the network -- must never
  // reach the verdict. Each case runs the full adversarial corpus against a
  // dedicated misbehaving loopback fleet and asserts bit-identity with the
  // per-proof oracle; trouble may only show up in the fleet report.

  // Low timeouts so the hung-server case converges quickly.
  static RemoteFleetOptions FastOptions() {
    RemoteFleetOptions options;
    options.connect_timeout_ms = 2'000;
    options.handshake_timeout_ms = 2'000;
    options.shard_timeout_ms = 5'000;
    options.reconnect_backoff_ms = 10;
    return options;
  }

  static RemoteFleetReport ExpectCorpusMatchesOracle(const net::LoopbackFleet& fleet,
                                                     RemoteFleetOptions options) {
    Pedersen<G> ped;
    ProtocolConfig config = ConfigFor(VerifyBackendKind::kPerProof);
    config.num_verify_shards = 5;
    fleet.ApplyTo(&config);
    auto uploads = Corpus(ped);

    VerifyReport<G> expected = Oracle(ped, uploads);
    RemoteBackend<G> backend(config, ped, options);
    VerifyReport<G> report = backend.VerifyAll(uploads);
    ExpectSameDecisions(expected, report);
    RemoteFleetReport fleet_report = backend.last_fleet_report();
    EXPECT_EQ(fleet_report.shards_from_remote + fleet_report.shards_recovered_in_process,
              fleet_report.shards_total);
    return fleet_report;
  }

  static void ConnectionDroppedMidShard() {
    net::LoopbackFleet fleet(2, /*fault=*/"close:0");
    ASSERT_FALSE(fleet.servers().empty());
    auto fleet_report = ExpectCorpusMatchesOracle(fleet, FastOptions());
    EXPECT_FALSE(fleet_report.failures.empty());
  }

  static void HungServer() {
    net::LoopbackFleet fleet(2, /*fault=*/"hang:0");
    ASSERT_FALSE(fleet.servers().empty());
    RemoteFleetOptions options = FastOptions();
    options.shard_timeout_ms = 300;
    options.max_attempts_per_shard = 1;
    auto fleet_report = ExpectCorpusMatchesOracle(fleet, options);
    EXPECT_FALSE(fleet_report.failures.empty());
  }

  static void ResultForWrongShardRange() {
    net::LoopbackFleet fleet(2, /*fault=*/"wrongshard:0");
    ASSERT_FALSE(fleet.servers().empty());
    auto fleet_report = ExpectCorpusMatchesOracle(fleet, FastOptions());
    bool saw_mismatch = false;
    for (const RemoteFailure& f : fleet_report.failures) {
      if (f.reason.find("does not match task") != std::string::npos) {
        saw_mismatch = true;
      }
    }
    EXPECT_TRUE(saw_mismatch);
  }

  static void RecoveryAfterKilledServer() {
    net::LoopbackFleet fleet(2);
    ASSERT_EQ(fleet.servers().size(), 2u);
    kill((*fleet.mutable_servers())[0].pid, SIGKILL);
    RemoteFleetOptions options = FastOptions();
    options.connect_timeout_ms = 1'000;
    auto fleet_report = ExpectCorpusMatchesOracle(fleet, options);
    EXPECT_GE(fleet_report.shards_from_remote, 1u);  // the survivor worked
  }
};

class BackendConformanceTest : public ::testing::TestWithParam<VerifyBackendKind> {};

#define VDP_CONFORMANCE_TEST_P(Body)                                 \
  TEST_P(BackendConformanceTest, Body) {                             \
    RunForGroup([&](auto tag) {                                      \
      Suite<typename decltype(tag)::Group>::Body(GetParam());        \
    });                                                              \
  }

VDP_CONFORMANCE_TEST_P(AdversarialCorpusMatchesOracle)
VDP_CONFORMANCE_TEST_P(StreamingMatchesOneShot)
VDP_CONFORMANCE_TEST_P(VerifyAllDiscardsBufferedStream)
VDP_CONFORMANCE_TEST_P(RandomizedInterleavingsMatchOneShot)
VDP_CONFORMANCE_TEST_P(EmptyUploadSet)
VDP_CONFORMANCE_TEST_P(SingleValidClient)
VDP_CONFORMANCE_TEST_P(SingleTamperedClient)
VDP_CONFORMANCE_TEST_P(ProductsSkippedOnRequest)
VDP_CONFORMANCE_TEST_P(StagesAreCanonicalAndSumToTotal)
VDP_CONFORMANCE_TEST_P(TracedRunEmitsCanonicalStageSpans)

#undef VDP_CONFORMANCE_TEST_P

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformanceTest,
                         ::testing::ValuesIn(AllVerifyBackendKinds()),
                         [](const ::testing::TestParamInfo<VerifyBackendKind>& info) {
                           std::string name = VerifyBackendKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(BackendRejectionRegressionTest, AllBackendsRenderIdenticalReasons) {
  RunForGroup([&](auto tag) {
    Suite<typename decltype(tag)::Group>::AllBackendsRenderIdenticalReasons();
  });
}

TEST(RemoteFailureConformanceTest, ConnectionDroppedMidShard) {
  RunForGroup([&](auto tag) {
    Suite<typename decltype(tag)::Group>::ConnectionDroppedMidShard();
  });
}

TEST(RemoteFailureConformanceTest, HungServer) {
  RunForGroup([&](auto tag) { Suite<typename decltype(tag)::Group>::HungServer(); });
}

TEST(RemoteFailureConformanceTest, ResultForWrongShardRange) {
  RunForGroup([&](auto tag) {
    Suite<typename decltype(tag)::Group>::ResultForWrongShardRange();
  });
}

TEST(RemoteFailureConformanceTest, RecoveryAfterKilledServer) {
  RunForGroup([&](auto tag) {
    Suite<typename decltype(tag)::Group>::RecoveryAfterKilledServer();
  });
}

// Factory policy: group-independent, pinned on the default group. The flag
// combinations of PRs 1-3 keep selecting the same execution strategies, now
// through one function.
TEST(BackendFactoryTest, SelectionPolicyMatchesLegacyFlags) {
  ProtocolConfig config;
  EXPECT_EQ(SelectVerifyBackend(config), VerifyBackendKind::kPerProof);
  config.batch_verify = true;
  EXPECT_EQ(SelectVerifyBackend(config), VerifyBackendKind::kBatched);
  config.num_verify_shards = 4;
  EXPECT_EQ(SelectVerifyBackend(config), VerifyBackendKind::kSharded);
  config.verify_workers = 3;
  EXPECT_EQ(SelectVerifyBackend(config), VerifyBackendKind::kMultiprocess);

  // Sharding wins over batch_verify alone; workers win over both; a
  // provisioned remote fleet wins over everything.
  ProtocolConfig sharded_only;
  sharded_only.num_verify_shards = 2;
  EXPECT_EQ(SelectVerifyBackend(sharded_only), VerifyBackendKind::kSharded);
  ProtocolConfig workers_only;
  workers_only.verify_workers = 2;
  EXPECT_EQ(SelectVerifyBackend(workers_only), VerifyBackendKind::kMultiprocess);
  config.remote_verifiers = {"tcp:127.0.0.1:7000"};
  config.remote_auth_key_hex = std::string(32, 'a');
  EXPECT_EQ(SelectVerifyBackend(config), VerifyBackendKind::kRemote);
}

TEST(BackendFactoryTest, NamesRoundTripThroughRegistry) {
  for (VerifyBackendKind kind : AllVerifyBackendKinds()) {
    auto parsed = VerifyBackendKindFromName(VerifyBackendKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(VerifyBackendKindFromName("carrier-pigeon").has_value());
}

TEST(BackendFactoryTest, RejectsInvalidConfig) {
  Pedersen<ModP256> ped;
  ProtocolConfig config;
  config.verify_workers = 1;  // ambiguous: Validate() rejects it
  EXPECT_THROW(MakeVerifyBackend<ModP256>(config, ped), std::invalid_argument);

  ProtocolConfig keyless;
  keyless.remote_verifiers = {"tcp:127.0.0.1:7000"};  // fleet without a secret
  EXPECT_THROW(MakeVerifyBackend<ModP256>(keyless, ped), std::invalid_argument);
}

}  // namespace
}  // namespace vdp
