#include "src/dp/binomial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vdp {
namespace {

TEST(BinomialParamsTest, LemmaFormulaRoundTrips) {
  // nb(eps(nb)) == nb up to ceiling effects.
  for (double delta : {1.0 / 1024, 1e-6}) {
    for (double eps : {0.25, 0.5, 1.0, 2.0}) {
      uint64_t nb = NumCoinsForPrivacy(eps, delta);
      double eps_back = EpsilonForCoins(nb, delta);
      EXPECT_LE(eps_back, eps * 1.001) << "eps=" << eps << " delta=" << delta;
      // One fewer coin would not reach the target epsilon.
      if (nb > kMinBinomialCoins) {
        EXPECT_GT(EpsilonForCoins(nb - 1, delta), eps * 0.999);
      }
    }
  }
}

TEST(BinomialParamsTest, PaperParameterDiscussion) {
  // Table 1 inconsistency documented in DESIGN.md: with delta = 2^-10,
  // Lemma 2.1 gives nb(1.25) = 488 and nb(0.88) = 985; nb = 262144
  // corresponds to eps around 0.054.
  double delta = std::pow(2.0, -10);
  EXPECT_EQ(NumCoinsForPrivacy(1.25, delta), 488u);
  EXPECT_EQ(NumCoinsForPrivacy(0.88, delta), 985u);
  EXPECT_NEAR(EpsilonForCoins(262144, delta), 0.0539, 0.001);
}

TEST(BinomialParamsTest, MoreCoinsForMorePrivacy) {
  double delta = 1e-6;
  EXPECT_GT(NumCoinsForPrivacy(0.1, delta), NumCoinsForPrivacy(1.0, delta));
  // Quadratic scaling: halving eps quadruples the coins (up to ceiling).
  uint64_t nb1 = NumCoinsForPrivacy(1.0, delta);
  uint64_t nb2 = NumCoinsForPrivacy(0.5, delta);
  EXPECT_NEAR(static_cast<double>(nb2) / static_cast<double>(nb1), 4.0, 0.05);
}

TEST(BinomialParamsTest, MinimumCoinFloor) {
  // Huge epsilon would need < 31 coins; the lemma requires nb > 30.
  EXPECT_EQ(NumCoinsForPrivacy(100.0, 0.01), kMinBinomialCoins);
}

TEST(BinomialParamsTest, InvalidArgumentsThrow) {
  EXPECT_THROW(NumCoinsForPrivacy(0.0, 0.01), std::invalid_argument);
  EXPECT_THROW(NumCoinsForPrivacy(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NumCoinsForPrivacy(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(EpsilonForCoins(0, 0.01), std::invalid_argument);
}

// Regression: for tiny epsilon the coin formula exceeds uint64_t range and
// static_cast<uint64_t> of the out-of-range double was undefined behavior.
// The function must reject instead of silently producing garbage.
TEST(BinomialParamsTest, TinyEpsilonOverflowRejected) {
  // raw = 100 * ln(2/delta) / eps^2: eps = 1e-12 puts raw around 1e27.
  EXPECT_THROW(NumCoinsForPrivacy(1e-12, 1e-6), std::overflow_error);
  // eps = 1e-8 gives raw ~ 1.45e19, just past 2^63 ~ 9.22e18.
  EXPECT_THROW(NumCoinsForPrivacy(1e-8, 1e-6), std::overflow_error);
  // Denormal epsilon drives the quotient to +inf; still a clean rejection.
  EXPECT_THROW(NumCoinsForPrivacy(1e-300, 1e-6), std::overflow_error);
  // Just inside the representable range must keep working.
  uint64_t huge = NumCoinsForPrivacy(1e-7, 1e-6);
  EXPECT_GT(huge, uint64_t{1} << 56);
}

// Regression: Apply wrapped around uint64_t when true_count + noise
// overflowed, producing a tiny (and very wrong) noisy count.
TEST(BinomialMechanismTest, ApplyOverflowRejected) {
  BinomialMechanism mech(1.0, 1e-6);  // nb ~ 1452, noise ~ 726 expected
  SecureRng rng("mech-overflow");
  EXPECT_THROW(mech.Apply(std::numeric_limits<uint64_t>::max() - 1, rng),
               std::overflow_error);
  // Counts with headroom for the full noise range never throw.
  uint64_t safe = std::numeric_limits<uint64_t>::max() - mech.num_coins();
  EXPECT_GE(mech.Apply(safe, rng), safe);
}

TEST(SampleBinomialTest, RangeAndMoments) {
  SecureRng rng("binom-moments");
  constexpr uint64_t kN = 1000;
  constexpr int kTrials = 2000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t s = SampleBinomialHalf(kN, rng);
    EXPECT_LE(s, kN);
    sum += static_cast<double>(s);
    sum_sq += static_cast<double>(s) * static_cast<double>(s);
  }
  double mean = sum / kTrials;
  double var = sum_sq / kTrials - mean * mean;
  // Mean n/2 = 500 (s.e. ~0.35), variance n/4 = 250.
  EXPECT_NEAR(mean, 500.0, 2.5);
  EXPECT_NEAR(var, 250.0, 30.0);
}

TEST(SampleBinomialTest, EdgeSizes) {
  SecureRng rng("binom-edge");
  EXPECT_EQ(SampleBinomialHalf(0, rng), 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(SampleBinomialHalf(1, rng), 1u);
    EXPECT_LE(SampleBinomialHalf(64, rng), 64u);
    EXPECT_LE(SampleBinomialHalf(65, rng), 65u);
  }
}

TEST(SampleBinomialTest, NonWordSizesUnbiased) {
  // The tail mask must not bias the count: check mean for n = 100.
  SecureRng rng("binom-tail");
  constexpr int kTrials = 4000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(SampleBinomialHalf(100, rng));
  }
  EXPECT_NEAR(sum / kTrials, 50.0, 0.5);
}

TEST(BinomialMechanismTest, ApplyAddsBoundedNoise) {
  BinomialMechanism mech(1.0, 1e-6);
  SecureRng rng("mech-apply");
  uint64_t true_count = 10000;
  uint64_t noisy = mech.Apply(true_count, rng);
  EXPECT_GE(noisy, true_count);
  EXPECT_LE(noisy, true_count + mech.num_coins());
}

TEST(BinomialMechanismTest, DebiasIsCentered) {
  BinomialMechanism mech(1.0, 1e-6);
  SecureRng rng("mech-debias");
  constexpr int kTrials = 2000;
  const uint64_t true_count = 5000;
  double acc = 0;
  for (int i = 0; i < kTrials; ++i) {
    acc += mech.Debias(mech.Apply(true_count, rng));
  }
  double mean = acc / kTrials;
  // Std error = sqrt(nb/4 / trials); nb ~ 1452 for eps=1, delta=1e-6.
  double se = std::sqrt(static_cast<double>(mech.num_coins()) / 4.0 / kTrials);
  EXPECT_NEAR(mean, static_cast<double>(true_count), 6 * se);
}

TEST(BinomialMechanismTest, ErrorIsIndependentOfN) {
  // The defining advantage of the central model (Definition 6 discussion):
  // Err depends only on (eps, delta), not on the dataset size.
  BinomialMechanism mech(0.5, 1e-6);
  SecureRng rng("mech-err");
  for (uint64_t true_count : {100ull, 10000ull, 1000000ull}) {
    double err_acc = 0;
    constexpr int kTrials = 500;
    for (int i = 0; i < kTrials; ++i) {
      err_acc += std::abs(mech.Debias(mech.Apply(true_count, rng)) -
                          static_cast<double>(true_count));
    }
    double err = err_acc / kTrials;
    // E|Binomial - nb/2| ~ sqrt(nb / (2 pi)); nb = 5809 for these params.
    double predicted = std::sqrt(static_cast<double>(mech.num_coins()) / (2 * M_PI));
    EXPECT_NEAR(err, predicted, predicted * 0.25) << "count=" << true_count;
  }
}

TEST(BinomialMechanismTest, SmoothnessEmpirical) {
  // Definition 13 with k' = 1: P[Z = z] / P[Z = z+1] <= e^eps except with
  // probability delta. Check the ratio at +/- 3 sigma from the mean.
  double delta = 1e-4;
  double eps = 1.0;
  uint64_t nb = NumCoinsForPrivacy(eps, delta);
  // Analytic check on Binomial(nb, 1/2) pmf ratios inside the 3-sigma window:
  // ratio(z) = P[Z=z]/P[Z=z+1] = (z+1)/(nb-z).
  double sigma = std::sqrt(static_cast<double>(nb) / 4.0);
  double mid = static_cast<double>(nb) / 2.0;
  for (double off : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    double z = mid + off * sigma;
    double ratio = (z + 1) / (static_cast<double>(nb) - z);
    EXPECT_LE(std::abs(std::log(ratio)), eps) << "offset=" << off;
  }
}

}  // namespace
}  // namespace vdp
