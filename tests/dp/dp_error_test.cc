#include "src/dp/dp_error.h"

#include <gtest/gtest.h>

#include "src/dp/binomial.h"
#include "src/dp/mechanisms.h"

namespace vdp {
namespace {

TEST(DpErrorTest, ZeroNoiseMechanismHasZeroError) {
  SecureRng rng("dperr-zero");
  auto identity = [](int64_t count, SecureRng&) { return static_cast<double>(count); };
  auto est = EstimateDpError(1000, identity, 100, rng);
  EXPECT_EQ(est.mean_abs_error, 0.0);
  EXPECT_EQ(est.mean_signed_error, 0.0);
}

TEST(DpErrorTest, BinomialMechanismErrorMatchesTheory) {
  SecureRng rng("dperr-binom");
  BinomialMechanism mech(1.0, 1e-6);
  auto mechanism = [&](int64_t count, SecureRng& r) {
    return mech.Debias(mech.Apply(static_cast<uint64_t>(count), r));
  };
  auto est = EstimateDpError(100000, mechanism, 1000, rng);
  // E|Binomial(nb,1/2) - nb/2| = sqrt(nb/(2 pi)) asymptotically.
  double predicted = std::sqrt(static_cast<double>(mech.num_coins()) / (2 * M_PI));
  EXPECT_NEAR(est.mean_abs_error, predicted, predicted * 0.2);
  EXPECT_NEAR(est.mean_signed_error, 0.0, predicted * 0.2);
}

TEST(DpErrorTest, ErrorScalesAsOneOverEps) {
  SecureRng rng("dperr-scale");
  auto err_at = [&](double eps) {
    BinomialMechanism mech(eps, 1e-6);
    auto mechanism = [&](int64_t count, SecureRng& r) {
      return mech.Debias(mech.Apply(static_cast<uint64_t>(count), r));
    };
    return EstimateDpError(5000, mechanism, 400, rng).mean_abs_error;
  };
  double e1 = err_at(1.0);
  double e_half = err_at(0.5);
  // Error ~ sqrt(nb) ~ 1/eps: halving eps should double the error.
  EXPECT_NEAR(e_half / e1, 2.0, 0.4);
}

TEST(DpErrorTest, LaplaceBeatsNothingButHasExpectedMagnitude) {
  SecureRng rng("dperr-lap");
  DiscreteLaplace lap(1.0);
  auto mechanism = [&](int64_t count, SecureRng& r) {
    return static_cast<double>(lap.Apply(count, r));
  };
  auto est = EstimateDpError(5000, mechanism, 2000, rng);
  // E|DLap(eps=1)| ~ 2 alpha/(1-alpha^2)... around 1.2 for eps = 1.
  EXPECT_GT(est.mean_abs_error, 0.5);
  EXPECT_LT(est.mean_abs_error, 3.0);
}

}  // namespace
}  // namespace vdp
