#include "src/dp/composition.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

TEST(CompositionTest, SequentialAddsBudgets) {
  auto total = ComposeSequential({{1.0, 1e-6}, {0.5, 1e-6}, {0.25, 0.0}});
  EXPECT_DOUBLE_EQ(total.epsilon, 1.75);
  EXPECT_DOUBLE_EQ(total.delta, 2e-6);
}

TEST(CompositionTest, SequentialOfNothingIsFree) {
  auto total = ComposeSequential({});
  EXPECT_EQ(total.epsilon, 0.0);
  EXPECT_EQ(total.delta, 0.0);
}

TEST(CompositionTest, ParallelTakesMax) {
  auto total = ComposeParallel({{1.0, 1e-6}, {0.5, 1e-5}, {0.25, 0.0}});
  EXPECT_DOUBLE_EQ(total.epsilon, 1.0);
  EXPECT_DOUBLE_EQ(total.delta, 1e-5);
}

TEST(CompositionTest, AdvancedBeatsBasicForManyReleases) {
  PrivacyBudget per{0.1, 1e-8};
  constexpr size_t kReleases = 100;
  auto basic = ComposeSequential(std::vector<PrivacyBudget>(kReleases, per));
  auto advanced = ComposeAdvanced(per, kReleases, 1e-6);
  EXPECT_LT(advanced.epsilon, basic.epsilon);  // sqrt(k) vs k scaling
  EXPECT_GT(advanced.epsilon, 0.0);
}

TEST(CompositionTest, AdvancedMatchesFormula) {
  PrivacyBudget per{0.5, 1e-7};
  auto total = ComposeAdvanced(per, 10, 1e-5);
  double expected_eps =
      std::sqrt(2.0 * 10 * std::log(1e5)) * 0.5 + 10 * 0.5 * (std::exp(0.5) - 1.0);
  EXPECT_NEAR(total.epsilon, expected_eps, 1e-12);
  EXPECT_NEAR(total.delta, 10 * 1e-7 + 1e-5, 1e-15);
}

TEST(CompositionTest, AdvancedRejectsBadDeltaPrime) {
  EXPECT_THROW(ComposeAdvanced({1.0, 0.0}, 5, 0.0), std::invalid_argument);
  EXPECT_THROW(ComposeAdvanced({1.0, 0.0}, 5, 1.5), std::invalid_argument);
}

TEST(CompositionTest, SensitivityScaling) {
  auto scaled = ScaleBySensitivity({0.5, 1e-6}, 2.0);
  EXPECT_DOUBLE_EQ(scaled.epsilon, 1.0);
  EXPECT_DOUBLE_EQ(scaled.delta, 2e-6);
  EXPECT_THROW(ScaleBySensitivity({0.5, 0.0}, -1.0), std::invalid_argument);
}

TEST(CompositionTest, HistogramBudgets) {
  // Add/remove neighbors: one-hot input has L1 sensitivity 1.
  auto addrm = HistogramBudget(1.0, 1e-6, /*swap_neighbors=*/false);
  EXPECT_DOUBLE_EQ(addrm.epsilon, 1.0);
  // Swap neighbors: changing a vote touches two bins.
  auto swap = HistogramBudget(1.0, 1e-6, /*swap_neighbors=*/true);
  EXPECT_DOUBLE_EQ(swap.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(swap.delta, 2e-6);
}

}  // namespace
}  // namespace vdp
