#include "src/dp/mechanisms.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdp {
namespace {

TEST(DiscreteLaplaceTest, MeanIsZero) {
  DiscreteLaplace lap(1.0);
  SecureRng rng("lap-mean");
  constexpr int kTrials = 20000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(lap.Sample(rng));
  }
  // Var = 2 alpha / (1-alpha)^2 ~ 1.84 for eps=1; s.e. ~ 0.0096.
  EXPECT_NEAR(sum / kTrials, 0.0, 0.06);
}

TEST(DiscreteLaplaceTest, SpreadScalesInverselyWithEpsilon) {
  SecureRng rng("lap-spread");
  constexpr int kTrials = 5000;
  auto mean_abs = [&](double eps) {
    DiscreteLaplace lap(eps);
    double acc = 0;
    for (int i = 0; i < kTrials; ++i) {
      acc += std::abs(static_cast<double>(lap.Sample(rng)));
    }
    return acc / kTrials;
  };
  double tight = mean_abs(2.0);
  double loose = mean_abs(0.25);
  EXPECT_GT(loose, 4 * tight);
}

TEST(DiscreteLaplaceTest, ApplyShiftsByNoise) {
  DiscreteLaplace lap(1.0);
  SecureRng rng("lap-apply");
  int64_t out = lap.Apply(1000, rng);
  EXPECT_NEAR(static_cast<double>(out), 1000.0, 100.0);
}

TEST(DiscreteLaplaceTest, InvalidParamsThrow) {
  EXPECT_THROW(DiscreteLaplace(0.0), std::invalid_argument);
  EXPECT_THROW(DiscreteLaplace(1.0, 0.0), std::invalid_argument);
}

TEST(RandomizedResponseTest, TruthProbabilityMatchesFormula) {
  RandomizedResponse rr(std::log(3.0));  // e^eps = 3 -> p = 3/4
  EXPECT_NEAR(rr.truth_probability(), 0.75, 1e-9);
}

TEST(RandomizedResponseTest, PerturbReturnsBits) {
  RandomizedResponse rr(1.0);
  SecureRng rng("rr-bits");
  for (int i = 0; i < 100; ++i) {
    int out = rr.Perturb(i % 2, rng);
    EXPECT_TRUE(out == 0 || out == 1);
  }
}

TEST(RandomizedResponseTest, FlipRateMatchesP) {
  RandomizedResponse rr(std::log(3.0));  // p = 0.75
  SecureRng rng("rr-flip");
  constexpr int kTrials = 20000;
  int kept = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (rr.Perturb(1, rng) == 1) {
      ++kept;
    }
  }
  double rate = static_cast<double>(kept) / kTrials;
  EXPECT_NEAR(rate, 0.75, 0.015);
}

TEST(RandomizedResponseTest, DebiasedCountIsUnbiased) {
  RandomizedResponse rr(1.0);
  SecureRng rng("rr-debias");
  constexpr uint64_t kN = 10000;
  constexpr uint64_t kTrueOnes = 3000;
  constexpr int kRounds = 50;
  double acc = 0;
  for (int round = 0; round < kRounds; ++round) {
    uint64_t observed = 0;
    for (uint64_t i = 0; i < kN; ++i) {
      observed += rr.Perturb(i < kTrueOnes ? 1 : 0, rng);
    }
    acc += rr.DebiasedCount(observed, kN);
  }
  double mean = acc / kRounds;
  // s.e. of one round ~ sqrt(n p(1-p))/(2p-1) ~ 106; over 50 rounds ~ 15.
  EXPECT_NEAR(mean, static_cast<double>(kTrueOnes), 75.0);
}

TEST(RandomizedResponseTest, LocalErrorGrowsWithN) {
  // The local model pays Theta(sqrt(n)) error -- the gap Table 2's Central DP
  // column captures.
  RandomizedResponse rr(1.0);
  SecureRng rng("rr-scale");
  auto rmse = [&](uint64_t n) {
    constexpr int kRounds = 30;
    double acc = 0;
    uint64_t true_ones = n / 3;
    for (int round = 0; round < kRounds; ++round) {
      uint64_t observed = 0;
      for (uint64_t i = 0; i < n; ++i) {
        observed += rr.Perturb(i < true_ones ? 1 : 0, rng);
      }
      double err = rr.DebiasedCount(observed, n) - static_cast<double>(true_ones);
      acc += err * err;
    }
    return std::sqrt(acc / kRounds);
  };
  double small = rmse(1000);
  double large = rmse(16000);
  // sqrt(16) = 4x; accept a loose band.
  EXPECT_GT(large, 2.0 * small);
}

TEST(RandomizedResponseTest, InvalidEpsilonThrows) {
  EXPECT_THROW(RandomizedResponse(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vdp
