// The streaming shard dispatcher (src/shard/stream_dispatch.h), tested
// against a synthetic executor so the pipeline mechanics -- capacity-based
// shard cutting, the bounded in-flight window, out-of-order lane completion,
// bulk ingest, abort/reuse -- are checked without any cryptography in the
// loop. Bit-identity of real verdicts is the conformance suite's job
// (tests/verify/backend_conformance_test.cc); this file pins the plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/shard/stream_dispatch.h"

namespace vdp {
namespace {

using G = ModP256;

// Synthesizes verdicts from shard coordinates alone: global index i is
// rejected iff i % 7 == 3. Deterministic, so any partition of the same
// stream must combine to the same report.
class FakeExecutor final : public ShardExecutor<G> {
 public:
  explicit FakeExecutor(size_t lanes, int sleep_ms = 0, int slow_shard = -1)
      : lanes_(lanes), sleep_ms_(sleep_ms), slow_shard_(slow_shard) {}

  size_t lanes() const override { return lanes_; }

  ShardResult<G> ExecuteShard(size_t /*lane*/, const ShardPayload<G>& shard) override {
    const size_t running = concurrent_.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t prev = max_concurrent_.load(std::memory_order_relaxed);
    while (running > prev &&
           !max_concurrent_.compare_exchange_weak(prev, running, std::memory_order_relaxed)) {
    }
    if (sleep_ms_ > 0 &&
        (slow_shard_ < 0 || shard.shard_index == static_cast<size_t>(slow_shard_))) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    ShardResult<G> result;
    result.shard_index = shard.shard_index;
    result.base = shard.base;
    result.count = shard.count();
    for (size_t i = 0; i < shard.count(); ++i) {
      const size_t global = shard.base + i;
      if (global % 7 == 3) {
        result.rejections.emplace_back(global, "synthetic");
      } else {
        result.accepted.push_back(global);
      }
    }
    concurrent_.fetch_sub(1, std::memory_order_relaxed);
    shards_executed_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  void CloseLane(size_t /*lane*/) override {
    lanes_closed_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t shards_executed() const { return shards_executed_.load(); }
  size_t max_concurrent() const { return max_concurrent_.load(); }
  size_t lanes_closed() const { return lanes_closed_.load(); }

 private:
  size_t lanes_;
  int sleep_ms_;
  int slow_shard_;
  std::atomic<size_t> concurrent_{0};
  std::atomic<size_t> max_concurrent_{0};
  std::atomic<size_t> shards_executed_{0};
  std::atomic<size_t> lanes_closed_{0};
};

StreamDispatchOptions NoProducts(size_t capacity, size_t window) {
  StreamDispatchOptions options;
  options.shard_capacity = capacity;
  options.max_inflight_shards = window;
  options.compute_products = false;  // the fake synthesizes no products
  return options;
}

// The expected verdict of the fake over global indices [0, n).
void ExpectFakeVerdict(const VerifyReport<G>& report, size_t n) {
  std::vector<size_t> accepted;
  std::vector<std::string> reasons;
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      reasons.push_back("client " + std::to_string(i) + ": synthetic");
    } else {
      accepted.push_back(i);
    }
  }
  EXPECT_EQ(report.accepted, accepted);
  EXPECT_EQ(report.RenderedReasons(), reasons);
  EXPECT_EQ(report.total_uploads, n);
}

TEST(StreamDispatchTest, CutsShardsAtCapacityAndCombinesInShardOrder) {
  ProtocolConfig config;
  FakeExecutor executor(/*lanes=*/2, /*sleep_ms=*/20, /*slow_shard=*/0);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(4, 4));
  // 18 uploads at capacity 4: shards of 4/4/4/4/2. Shard 0 sleeps, so later
  // shards retire first -- the combiner must still order by shard index.
  for (size_t i = 0; i < 18; ++i) {
    dispatcher.Add(ClientUploadMsg<G>{});
  }
  VerifyReport<G> report = dispatcher.Finish();
  EXPECT_EQ(report.num_shards, 5u);
  ExpectFakeVerdict(report, 18);
  EXPECT_EQ(executor.shards_executed(), 5u);
  EXPECT_EQ(executor.lanes_closed(), 2u);
  EXPECT_FALSE(report.has_products());
}

TEST(StreamDispatchTest, WindowBoundsInflightAndRecordsBackpressure) {
  ProtocolConfig config;
  FakeExecutor executor(/*lanes=*/1, /*sleep_ms=*/5);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(1, 2));
  // Capacity 1 seals a shard per Add; a single 5ms lane against a window of
  // 2 forces the producer to block, and the window must never be exceeded.
  for (size_t i = 0; i < 12; ++i) {
    dispatcher.Add(ClientUploadMsg<G>{});
    const VerifyProgress p = dispatcher.Progress();
    EXPECT_LE(p.inflight_shards, 2u);
    EXPECT_LE(p.buffered_uploads, 3u);  // window + the fill buffer
  }
  EXPECT_GT(dispatcher.backpressure_wait_ms(), 0.0);
  VerifyReport<G> report = dispatcher.Finish();
  ExpectFakeVerdict(report, 12);
  EXPECT_EQ(report.num_shards, 12u);
  EXPECT_LE(executor.max_concurrent(), 1u);
  EXPECT_GT(dispatcher.last_backpressure_wait_ms(), 0.0);
}

TEST(StreamDispatchTest, AddBulkMatchesPerUploadAdd) {
  ProtocolConfig config;
  // Same stream twice: one upload at a time, then in bulk chunks whose sizes
  // straddle the capacity (3 < 5, 8 > 5, 4 < 5). Reports must be identical.
  FakeExecutor a_exec(2);
  StreamDispatcher<G> a(config, &a_exec, NoProducts(5, 4));
  for (size_t i = 0; i < 15; ++i) {
    a.Add(ClientUploadMsg<G>{});
  }
  VerifyReport<G> a_report = a.Finish();

  FakeExecutor b_exec(2);
  StreamDispatcher<G> b(config, &b_exec, NoProducts(5, 4));
  for (size_t chunk : {3, 8, 4}) {
    std::vector<ClientUploadMsg<G>> uploads(chunk);
    b.AddBulk(std::move(uploads));
  }
  VerifyReport<G> b_report = b.Finish();

  EXPECT_EQ(a_report.accepted, b_report.accepted);
  EXPECT_EQ(a_report.RenderedReasons(), b_report.RenderedReasons());
  EXPECT_EQ(a_report.num_shards, b_report.num_shards);
  EXPECT_EQ(a_report.total_uploads, b_report.total_uploads);
}

TEST(StreamDispatchTest, ProgressCountsTheWholePipeline) {
  ProtocolConfig config;
  FakeExecutor executor(1);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(4, 8));
  for (size_t i = 0; i < 10; ++i) {
    dispatcher.Add(ClientUploadMsg<G>{});
  }
  const VerifyProgress mid = dispatcher.Progress();
  EXPECT_EQ(mid.uploads_ingested, 10u);
  EXPECT_EQ(mid.shards_cut, 2u);  // 8 sealed; 2 still filling
  EXPECT_GE(mid.buffered_uploads, 2u);
  VerifyReport<G> report = dispatcher.Finish();
  EXPECT_EQ(report.num_shards, 3u);
  ExpectFakeVerdict(report, 10);
}

TEST(StreamDispatchTest, AbortDiscardsStreamAndDispatcherIsReusable) {
  ProtocolConfig config;
  FakeExecutor executor(2, /*sleep_ms=*/5);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(2, 2));
  for (size_t i = 0; i < 9; ++i) {
    dispatcher.Add(ClientUploadMsg<G>{});
  }
  dispatcher.Abort();
  // A fresh stream restarts global indices at 0 and sees none of the
  // aborted stream's shards.
  for (size_t i = 0; i < 6; ++i) {
    dispatcher.Add(ClientUploadMsg<G>{});
  }
  VerifyReport<G> report = dispatcher.Finish();
  EXPECT_EQ(report.num_shards, 3u);
  ExpectFakeVerdict(report, 6);
}

TEST(StreamDispatchTest, OneShotPartitionUsesHistoricalBoundaries) {
  ProtocolConfig config;
  FakeExecutor executor(3);
  std::vector<ClientUploadMsg<G>> uploads(11);
  VerifyReport<G> report =
      DispatchAllShards<G>(config, &executor, uploads, /*num_shards=*/3,
                           /*compute_products=*/false);
  // 11 uploads over 3 shards: n*s/shards boundaries give 3/4/4.
  EXPECT_EQ(report.num_shards, 3u);
  ExpectFakeVerdict(report, 11);
  EXPECT_GE(report.timings.verify_ms, 0.0);
}

}  // namespace
}  // namespace vdp
