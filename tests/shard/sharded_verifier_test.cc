// Sharded verification pipeline (src/shard/): the combined verdict must be
// bit-identical to the monolithic PublicVerifier path -- accepted set,
// rejection reasons, and Eq. 10 commitment products -- and blame attribution
// must stay confined to the shard containing the corrupted upload.
#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/shard/sharded_verifier.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;
using Element = G::Element;

ProtocolConfig ShardConfig(size_t provers, size_t bins, size_t shards,
                           const std::string& sid) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31: keeps protocol-level tests fast
  config.num_provers = provers;
  config.num_bins = bins;
  config.session_id = sid;
  config.batch_verify = true;
  config.num_verify_shards = shards;
  return config;
}

std::vector<ClientUploadMsg<G>> MakeUploads(const ProtocolConfig& config,
                                            const Pedersen<G>& ped, size_t n,
                                            SecureRng& rng) {
  std::vector<ClientUploadMsg<G>> uploads;
  uploads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, ped, rng)
            .upload);
  }
  return uploads;
}

// The monolithic oracle's view of the Eq. 10 client product.
std::vector<std::vector<Element>> DirectProducts(const ProtocolConfig& config,
                                                 const std::vector<ClientUploadMsg<G>>& uploads,
                                                 const std::vector<size_t>& accepted) {
  std::vector<std::vector<Element>> products(
      config.num_provers, std::vector<Element>(config.num_bins, G::Identity()));
  for (size_t idx : accepted) {
    for (size_t k = 0; k < config.num_provers; ++k) {
      for (size_t m = 0; m < config.num_bins; ++m) {
        products[k][m] = G::Mul(products[k][m], uploads[idx].commitments[k][m]);
      }
    }
  }
  return products;
}

// The headline equivalence test: >= 4096 uploads, a few corrupted, verified
// monolithically (batched and per-proof) and sharded -- all three must
// produce the same accepted set, and the sharded commitment products must
// equal the direct product over the accepted set.
TEST(ShardedVerifierTest, FourThousandUploadsMatchMonolithic) {
  SecureRng rng("shard-4096");
  auto config = ShardConfig(1, 1, 8, "shard-4096");
  Pedersen<G> ped;
  auto uploads = MakeUploads(config, ped, 4096, rng);

  // Corrupt a handful of uploads spread across shards: bad OR proof, bad
  // shape, non-bit commitment with honest-shaped proof.
  uploads[100].bin_proofs[0].z0 += S::One();
  uploads[2048].commitments.clear();
  uploads[4000].bin_proofs[0].e1 += S::One();

  auto monolithic_config = config;
  monolithic_config.num_verify_shards = 1;
  auto per_proof_config = monolithic_config;
  per_proof_config.batch_verify = false;

  ThreadPool pool(4);
  PublicVerifier<G> sharded_verifier(config, ped);
  PublicVerifier<G> monolithic_verifier(monolithic_config, ped);
  PublicVerifier<G> per_proof_verifier(per_proof_config, ped);

  std::vector<std::string> sharded_reasons;
  std::vector<std::string> monolithic_reasons;
  auto verdict = sharded_verifier.ValidateClientsReport(uploads, &pool);
  EXPECT_EQ(verdict.backend, "sharded");
  auto sharded_accepted =
      sharded_verifier.ValidateClients(uploads, &sharded_reasons, &pool);
  auto monolithic_accepted =
      monolithic_verifier.ValidateClients(uploads, &monolithic_reasons, &pool);
  auto per_proof_accepted = per_proof_verifier.ValidateClients(uploads, nullptr, &pool);

  EXPECT_EQ(verdict.accepted, monolithic_accepted);
  EXPECT_EQ(sharded_accepted, monolithic_accepted);
  EXPECT_EQ(monolithic_accepted, per_proof_accepted);
  EXPECT_EQ(sharded_reasons, monolithic_reasons);
  EXPECT_EQ(monolithic_accepted.size(), 4096u - 3u);

  EXPECT_EQ(verdict.total_uploads, 4096u);
  EXPECT_EQ(verdict.num_shards, 8u);
  // 3 corrupted uploads in 8 shards of 512: indices 100, 2048, 4000 fall in
  // shards 0 and 4 and 7, but the shape-corrupted 2048 fails structurally
  // and never reaches the RLC check, so only shards 0 and 7 pay fallback.
  EXPECT_EQ(verdict.shards_with_fallback, 2u);

  // The combined products equal the direct product over the accepted set:
  // the "aggregate" half of the equivalence claim.
  auto direct = DirectProducts(config, uploads, monolithic_accepted);
  ASSERT_EQ(verdict.commitment_products.size(), direct.size());
  for (size_t k = 0; k < direct.size(); ++k) {
    for (size_t m = 0; m < direct[k].size(); ++m) {
      EXPECT_EQ(verdict.commitment_products[k][m], direct[k][m]) << "k=" << k << " m=" << m;
    }
  }
}

// Blame attribution is confined: with one corrupted upload, exactly one
// shard reports fallback_used, and it is the shard holding the corruption.
TEST(ShardedVerifierTest, FallbackConfinedToCorruptedShard) {
  SecureRng rng("shard-confined");
  auto config = ShardConfig(2, 2, 4, "shard-confined");
  Pedersen<G> ped;
  auto uploads = MakeUploads(config, ped, 64, rng);
  const size_t victim = 37;  // shard 2 of 4 (shards of 16)
  uploads[victim].bin_proofs[1].z1 += S::One();

  // Verify each shard individually to observe per-shard fallback flags.
  for (size_t s = 0; s < 4; ++s) {
    auto result = VerifyShard(config, ped, uploads.data() + s * 16, 16, s * 16, s);
    EXPECT_EQ(result.fallback_used, s == 2) << "shard " << s;
    if (s == 2) {
      ASSERT_EQ(result.rejections.size(), 1u);
      EXPECT_EQ(result.rejections[0].first, victim);
      EXPECT_EQ(result.rejections[0].second, "bin OR proof invalid");
      EXPECT_EQ(result.accepted.size(), 15u);
    } else {
      EXPECT_TRUE(result.rejections.empty());
      EXPECT_EQ(result.accepted.size(), 16u);
    }
  }

  // And the combined verdict agrees with the monolithic path.
  auto verdict = ShardedVerifier<G>::VerifyAll(config, ped, uploads);
  EXPECT_EQ(verdict.shards_with_fallback, 1u);
  auto monolithic_config = config;
  monolithic_config.num_verify_shards = 1;
  PublicVerifier<G> monolithic(monolithic_config, ped);
  EXPECT_EQ(verdict.accepted, monolithic.ValidateClients(uploads));
}

// The streaming API must agree with one-shot verification and keep shard
// accounting consistent (contiguous bases, ceil(n/capacity) shards).
TEST(ShardedVerifierTest, StreamingMatchesOneShot) {
  SecureRng rng("shard-stream");
  auto config = ShardConfig(2, 3, 5, "shard-stream");
  Pedersen<G> ped;
  auto uploads = MakeUploads(config, ped, 53, rng);
  uploads[11].bin_proofs[2].e0 += S::One();
  uploads[29].sum_randomness += S::One();  // breaks the one-hot opening

  ThreadPool pool(3);
  ShardedVerifier<G> streaming(config, ped, &pool, /*shard_capacity=*/8,
                               /*max_pending_shards=*/2);
  for (const auto& u : uploads) {
    streaming.Add(u);
  }
  auto stream_verdict = streaming.Finish();
  auto oneshot_verdict = ShardedVerifier<G>::VerifyAll(config, ped, uploads, &pool);

  EXPECT_EQ(stream_verdict.accepted, oneshot_verdict.accepted);
  EXPECT_EQ(stream_verdict.rejections, oneshot_verdict.rejections);
  EXPECT_EQ(stream_verdict.RenderedReasons(), oneshot_verdict.RenderedReasons());
  EXPECT_EQ(stream_verdict.total_uploads, 53u);
  EXPECT_EQ(stream_verdict.num_shards, 7u);  // ceil(53 / 8)
  for (size_t k = 0; k < config.num_provers; ++k) {
    for (size_t m = 0; m < config.num_bins; ++m) {
      EXPECT_EQ(stream_verdict.commitment_products[k][m],
                oneshot_verdict.commitment_products[k][m]);
    }
  }

  // A finished verifier is reset: a second stream starts from index 0.
  streaming.Add(uploads[0]);
  auto second = streaming.Finish();
  EXPECT_EQ(second.accepted, (std::vector<size_t>{0}));
  EXPECT_EQ(second.total_uploads, 1u);
}

TEST(ShardedVerifierTest, EdgeShapes) {
  SecureRng rng("shard-edges");
  auto config = ShardConfig(1, 2, 6, "shard-edges");
  Pedersen<G> ped;

  // Empty stream.
  ShardedVerifier<G> empty(config, ped);
  auto verdict = empty.Finish();
  EXPECT_TRUE(verdict.accepted.empty());
  EXPECT_EQ(verdict.num_shards, 0u);
  ASSERT_EQ(verdict.commitment_products.size(), 1u);
  EXPECT_EQ(verdict.commitment_products[0][0], G::Identity());

  // More shards than uploads: collapses to one shard per upload, same verdict.
  auto uploads = MakeUploads(config, ped, 3, rng);
  auto small = ShardedVerifier<G>::VerifyAll(config, ped, uploads);
  EXPECT_EQ(small.accepted, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(small.num_shards, 3u);
}

// End-to-end: the full protocol with sharded validation accepts and produces
// the same histogram as the unsharded run with the same seed; a bystander
// audit configured with sharding reaches the same verdict.
TEST(ShardedVerifierTest, ProtocolAndAuditWithShardsMatchUnsharded) {
  auto config = ShardConfig(2, 3, 3, "shard-e2e");
  std::vector<uint32_t> values = {0, 1, 2, 1, 1, 0, 2, 2, 1};

  SecureRng rng_sharded("shard-e2e-run");
  auto sharded_result = RunHonestProtocol<G>(config, values, rng_sharded);
  ASSERT_TRUE(sharded_result.accepted()) << sharded_result.verdict.detail;
  EXPECT_EQ(sharded_result.accepted_clients.size(), values.size());

  auto plain_config = config;
  plain_config.num_verify_shards = 1;
  SecureRng rng_plain("shard-e2e-run");
  auto plain_result = RunHonestProtocol<G>(plain_config, values, rng_plain);
  ASSERT_TRUE(plain_result.accepted());
  EXPECT_EQ(sharded_result.raw_histogram, plain_result.raw_histogram);

  // Recorded transcript -> serialized -> audited with sharding on.
  Pedersen<G> ped;
  SecureRng rng_rec("shard-e2e-audit");
  std::vector<ClientBundle<G>> clients;
  SecureRng crng = rng_rec.Fork("clients");
  for (size_t i = 0; i < values.size(); ++i) {
    clients.push_back(MakeClientBundle<G>(values[i], i, config, ped, crng));
  }
  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < config.num_provers; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped,
                                                rng_rec.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng_rec.Fork("verifier");
  PublicTranscript<G> record;
  auto recorded = RunProtocol(config, ped, clients, provers, vrng, nullptr, &record);
  ASSERT_TRUE(recorded.accepted());

  auto decoded = DeserializeTranscript<G>(SerializeTranscript(record));
  ASSERT_TRUE(decoded.has_value());
  auto report = AuditTranscript(*decoded, config, ped);
  EXPECT_TRUE(report.accepted()) << report.verdict.detail;
  EXPECT_EQ(report.raw_histogram, recorded.raw_histogram);
}

// A client whose broadcast is valid but whose private share is garbage is
// dropped by the prover-side consistency filter *after* sharded validation;
// the protocol must then fall back to recomputing the Eq. 10 product from
// the consistent set rather than reusing the sharded products.
TEST(ShardedVerifierTest, InconsistentShareForcesProductRecomputation) {
  auto config = ShardConfig(2, 2, 2, "shard-inconsistent");
  Pedersen<G> ped;
  SecureRng rng("shard-inconsistent-run");
  std::vector<uint32_t> values = {0, 1, 1, 0, 1, 0};
  std::vector<ClientBundle<G>> clients;
  SecureRng crng = rng.Fork("clients");
  for (size_t i = 0; i < values.size(); ++i) {
    clients.push_back(MakeClientBundle<G>(values[i], i, config, ped, crng));
  }
  // Client 3 sends prover 1 a share that does not open its public commitment.
  clients[3].shares[1].randomness[0] += S::One();

  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < config.num_provers; ++k) {
    owned.push_back(
        std::make_unique<Prover<G>>(k, config, ped, rng.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng.Fork("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  ASSERT_TRUE(result.accepted()) << result.verdict.detail;
  EXPECT_EQ(result.accepted_clients, (std::vector<size_t>{0, 1, 2, 4, 5}));
}

}  // namespace
}  // namespace vdp
