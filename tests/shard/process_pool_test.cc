// Multi-process shard verification (src/shard/process_pool.h +
// tools/verify_worker): the combined verdict must be bit-identical to the
// in-process sharded pipeline in every fleet condition -- healthy, workers
// crashing mid-shard, workers emitting garbage, workers hanging past the
// deadline, and a fleet that cannot run at all. Failures must be blamed
// (which worker, which shard, how it ended) without perturbing the verdict.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>

#include "src/shard/process_pool.h"
#include "src/shard/worker_process.h"
#include "src/wire/frame_io.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

// Scoped setter for the worker fault-injection hook; the env var is
// inherited through fork/exec by every worker the pool spawns.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    setenv("VDP_WORKER_FAULT", spec.c_str(), 1);
  }
  ~ScopedFault() { unsetenv("VDP_WORKER_FAULT"); }
};

ProtocolConfig PoolConfig(size_t shards) {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31: keeps upload construction fast
  config.num_provers = 1;
  config.num_bins = 1;
  config.session_id = "process-pool-test";
  config.batch_verify = true;
  config.num_verify_shards = shards;
  return config;
}

std::vector<ClientUploadMsg<G>> MakeUploads(const ProtocolConfig& config,
                                            const Pedersen<G>& ped, size_t n) {
  SecureRng rng("process-pool-uploads");
  std::vector<ClientUploadMsg<G>> uploads;
  uploads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % 2), i, config, ped, rng).upload);
  }
  // A rejection partway through the stream: the verdicts must agree on
  // rejections and their reasons too, not just on the happy path.
  uploads[n / 3].bin_proofs[0].z0 += S::One();
  return uploads;
}

void ExpectSameVerdict(const VerifyReport<G>& expected, const VerifyReport<G>& actual) {
  EXPECT_EQ(expected.accepted, actual.accepted);
  EXPECT_EQ(expected.rejections, actual.rejections);
  EXPECT_EQ(expected.total_uploads, actual.total_uploads);
  ASSERT_EQ(expected.commitment_products.size(), actual.commitment_products.size());
  for (size_t k = 0; k < expected.commitment_products.size(); ++k) {
    ASSERT_EQ(expected.commitment_products[k].size(), actual.commitment_products[k].size());
    for (size_t m = 0; m < expected.commitment_products[k].size(); ++m) {
      EXPECT_TRUE(expected.commitment_products[k][m] == actual.commitment_products[k][m])
          << "commitment product mismatch at prover " << k << " bin " << m;
    }
  }
}

class ProcessPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = PoolConfig(/*shards=*/4);
    uploads_ = MakeUploads(config_, ped_, 64);
    expected_ = ShardedVerifier<G>::VerifyAll(config_, ped_, uploads_, nullptr);
  }

  VerifyReport<G> RunPool(ProcessPoolOptions options, ProcessPoolReport* report) {
    MultiprocessVerifier<G> verifier(config_, ped_, std::move(options));
    return verifier.VerifyAll(uploads_, /*compute_products=*/true, report);
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
  std::vector<ClientUploadMsg<G>> uploads_;
  VerifyReport<G> expected_;
};

TEST_F(ProcessPoolTest, HealthyFleetMatchesInProcess) {
  ProcessPoolOptions options;
  options.num_workers = 2;
  ProcessPoolReport report;
  auto verdict = RunPool(options, &report);
  ExpectSameVerdict(expected_, verdict);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.shards_from_workers, report.shards_total);
  EXPECT_EQ(report.shards_recovered_in_process, 0u);
  EXPECT_EQ(report.shards_total, 4u);
}

TEST_F(ProcessPoolTest, CrashedWorkerIsBlamedAndShardRetried) {
  // Worker 0 dies on every task it receives; its shards must be retried on
  // replacement workers (fresh ids, no fault match) with the verdict intact.
  ScopedFault fault("crash:0");
  ProcessPoolOptions options;
  options.num_workers = 2;
  ProcessPoolReport report;
  auto verdict = RunPool(options, &report);
  ExpectSameVerdict(expected_, verdict);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures[0].worker_id, 0u);
  EXPECT_NE(report.failures[0].reason.find("no result"), std::string::npos)
      << report.failures[0].reason;
  EXPECT_NE(report.failures[0].reason.find("exited 134"), std::string::npos)
      << report.failures[0].reason;
  EXPECT_EQ(report.shards_from_workers + report.shards_recovered_in_process,
            report.shards_total);
}

TEST_F(ProcessPoolTest, GarbageEmittingWorkerIsBlamed) {
  ScopedFault fault("garbage:0");
  ProcessPoolOptions options;
  options.num_workers = 2;
  ProcessPoolReport report;
  auto verdict = RunPool(options, &report);
  ExpectSameVerdict(expected_, verdict);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("malformed"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(ProcessPoolTest, HungWorkerTimesOutAndIsKilled) {
  ScopedFault fault("hang:0");
  ProcessPoolOptions options;
  options.num_workers = 2;
  options.shard_timeout_ms = 300;
  ProcessPoolReport report;
  auto verdict = RunPool(options, &report);
  ExpectSameVerdict(expected_, verdict);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("timeout"), std::string::npos)
      << report.failures[0].reason;
  EXPECT_NE(report.failures[0].reason.find("killed by signal"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(ProcessPoolTest, FullyBrokenFleetRecoversInProcess) {
  // Every worker (including replacements) crashes: after max_worker_attempts
  // the driver verifies each shard locally, so the verdict survives a fleet
  // that cannot verify anything.
  ScopedFault fault("crash:all");
  ProcessPoolOptions options;
  options.num_workers = 2;
  options.max_worker_attempts = 2;
  ProcessPoolReport report;
  auto verdict = RunPool(options, &report);
  ExpectSameVerdict(expected_, verdict);
  EXPECT_EQ(report.shards_from_workers, 0u);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  EXPECT_GE(report.failures.size(), report.shards_total);
}

TEST_F(ProcessPoolTest, MissingWorkerBinaryRecoversInProcess) {
  ProcessPoolOptions options;
  options.num_workers = 2;
  options.worker_path = "/nonexistent/verify_worker";
  ProcessPoolReport report;
  auto verdict = RunPool(options, &report);
  ExpectSameVerdict(expected_, verdict);
  EXPECT_EQ(report.shards_from_workers, 0u);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("no hello"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(ProcessPoolTest, ProductsSkippedWhenNotRequested) {
  ProcessPoolOptions options;
  options.num_workers = 2;
  MultiprocessVerifier<G> verifier(config_, ped_, std::move(options));
  ProcessPoolReport report;
  auto verdict = verifier.VerifyAll(uploads_, /*compute_products=*/false, &report);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(verdict.accepted, expected_.accepted);
  EXPECT_EQ(verdict.rejections, expected_.rejections);
  // No products were computed: the report carries none at all.
  EXPECT_FALSE(verdict.has_products());
}

// --- Direct worker protocol checks (no pool) ---------------------------

// Drives one worker by hand through the handshake so protocol-level
// refusals can be observed directly.
class WorkerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = PoolConfig(/*shards=*/1);
    setup_ = wire::MakeWireSetup(config_, ped_);
    auto spawned = SpawnWorker(DefaultWorkerPath(), /*worker_id=*/0);
    ASSERT_TRUE(spawned.has_value());
    worker_ = *spawned;

    wire::Frame hello;
    ASSERT_EQ(wire::ReadFrame(worker_.result_fd, &hello, 15'000), wire::ReadStatus::kOk);
    ASSERT_EQ(hello.type, wire::FrameType::kHello);
    auto parsed = wire::WireHello::Deserialize(hello.payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->version, wire::kWireVersion);
    ASSERT_EQ(wire::WriteFrame(worker_.task_fd, wire::FrameType::kSetup,
                               setup_.Serialize(), 15'000),
              wire::WriteStatus::kOk);
  }

  void TearDown() override { DestroyWorker(&worker_); }

  ProtocolConfig config_;
  Pedersen<G> ped_;
  wire::WireSetup setup_;
  WorkerProcess worker_;
};

TEST_F(WorkerProtocolTest, RefusesTaskWithMismatchedParamsDigest) {
  wire::WireShardTask task;
  task.params_digest.fill(0xEE);  // not the setup digest
  ASSERT_EQ(wire::WriteFrame(worker_.task_fd, wire::FrameType::kTask, task.Serialize(),
                             15'000),
            wire::WriteStatus::kOk);
  wire::Frame response;
  ASSERT_EQ(wire::ReadFrame(worker_.result_fd, &response, 15'000), wire::ReadStatus::kOk);
  ASSERT_EQ(response.type, wire::FrameType::kError);
  auto error = wire::WireError::Deserialize(response.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->message.find("digest"), std::string::npos) << error->message;
}

TEST_F(WorkerProtocolTest, AnswersWellFormedTask) {
  auto uploads = MakeUploads(config_, ped_, 8);
  wire::WireShardTask task = wire::MakeShardTask<G>(
      setup_.Digest(), /*shard_index=*/0, /*base=*/0, /*compute_products=*/true,
      uploads.data(), uploads.size());
  ASSERT_EQ(wire::WriteFrame(worker_.task_fd, wire::FrameType::kTask, task.Serialize(),
                             15'000),
            wire::WriteStatus::kOk);
  wire::Frame response;
  ASSERT_EQ(wire::ReadFrame(worker_.result_fd, &response, 60'000), wire::ReadStatus::kOk);
  ASSERT_EQ(response.type, wire::FrameType::kResult);
  auto wire_result = wire::WireShardResult::Deserialize(response.payload);
  ASSERT_TRUE(wire_result.has_value());
  auto result = wire::ResultFromWire<G>(config_, *wire_result);
  ASSERT_TRUE(result.has_value());

  auto expected = VerifyShard(config_, ped_, uploads.data(), uploads.size(), 0, 0);
  EXPECT_EQ(result->accepted, expected.accepted);
  EXPECT_EQ(result->rejections, expected.rejections);
  ASSERT_EQ(result->partial_products.size(), expected.partial_products.size());
  for (size_t k = 0; k < expected.partial_products.size(); ++k) {
    for (size_t m = 0; m < expected.partial_products[k].size(); ++m) {
      EXPECT_TRUE(result->partial_products[k][m] == expected.partial_products[k][m]);
    }
  }
}

TEST_F(WorkerProtocolTest, RejectsFutureWireVersionCleanly) {
  // Hand-build a frame claiming wire version kWireVersion + 1: the worker
  // must classify it as malformed and answer with a clean error frame
  // instead of interpreting the payload.
  Bytes frame = wire::EncodeFrame(wire::FrameType::kTask, Bytes(4, 0x00));
  frame[4] = wire::kWireVersion + 1;  // version byte follows the 4-byte magic
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = write(worker_.task_fd, frame.data() + written, frame.size() - written);
    ASSERT_GT(n, 0);
    written += static_cast<size_t>(n);
  }
  wire::Frame response;
  ASSERT_EQ(wire::ReadFrame(worker_.result_fd, &response, 15'000), wire::ReadStatus::kOk);
  ASSERT_EQ(response.type, wire::FrameType::kError);
}

}  // namespace
}  // namespace vdp
