// Adversarial interleavings for the streaming dispatcher, written for the
// tsan CI job (-DVDP_TSAN=ON): monitor threads hammer the documented
// any-thread-safe observer API (Progress / PartialReport / the backpressure
// getters) while a producer drives streams through Add / Finish / Abort at
// full speed. Functionally the tests assert the fake-executor verdict, but
// their real teeth are under ThreadSanitizer, where the pre-fix
// Finish()-vs-Progress() race on the dispatcher's shared state (ResetState
// and the last_backpressure handoff mutated without mu_) fails every one of
// them deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/shard/stream_dispatch.h"

namespace vdp {
namespace {

using G = ModP256;

// Same synthetic-verdict shape as stream_dispatch_test.cc: global index i is
// rejected iff i % 7 == 3, so any partition combines to one known report.
class FakeExecutor final : public ShardExecutor<G> {
 public:
  explicit FakeExecutor(size_t lanes, int sleep_us = 0)
      : lanes_(lanes), sleep_us_(sleep_us) {}

  size_t lanes() const override { return lanes_; }

  ShardResult<G> ExecuteShard(size_t /*lane*/, const ShardPayload<G>& shard) override {
    if (sleep_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    }
    ShardResult<G> result;
    result.shard_index = shard.shard_index;
    result.base = shard.base;
    result.count = shard.count();
    for (size_t i = 0; i < shard.count(); ++i) {
      const size_t global = shard.base + i;
      if (global % 7 == 3) {
        result.rejections.emplace_back(global, "synthetic");
      } else {
        result.accepted.push_back(global);
      }
    }
    return result;
  }

 private:
  size_t lanes_;
  int sleep_us_;
};

StreamDispatchOptions NoProducts(size_t capacity, size_t window) {
  StreamDispatchOptions options;
  options.shard_capacity = capacity;
  options.max_inflight_shards = window;
  options.compute_products = false;
  return options;
}

void ExpectFakeVerdict(const VerifyReport<G>& report, size_t n) {
  size_t accepted = 0;
  for (size_t i = 0; i < n; ++i) {
    accepted += (i % 7 == 3) ? 0 : 1;
  }
  EXPECT_EQ(report.accepted.size(), accepted);
  EXPECT_EQ(report.total_uploads, n);
}

// Spins observer threads against a dispatcher until `stop` flips. Every
// observer entry point is exercised, including the cross-stream getters.
std::vector<std::thread> StartMonitors(StreamDispatcher<G>* dispatcher,
                                       std::atomic<bool>* stop, size_t n = 2) {
  std::vector<std::thread> monitors;
  monitors.reserve(n);
  for (size_t m = 0; m < n; ++m) {
    monitors.emplace_back([dispatcher, stop] {
      while (!stop->load(std::memory_order_acquire)) {
        const VerifyProgress p = dispatcher->Progress();
        // Internal consistency only: the snapshot may straddle stream
        // boundaries, but a snapshot itself must never tear.
        EXPECT_LE(p.shards_done, p.shards_cut);
        const VerifyReport<G> partial = dispatcher->PartialReport();
        EXPECT_LE(partial.accepted.size() + partial.rejections.size(),
                  p.uploads_ingested + partial.total_uploads);
        (void)dispatcher->backpressure_wait_ms();
        (void)dispatcher->last_backpressure_wait_ms();
      }
    });
  }
  return monitors;
}

// The minimized regression for the PR-9 TSan fix: Finish() used to move
// results_ out, stamp last_backpressure_wait_ms_, and ResetState() -- all
// without mu_ -- while Progress()/PartialReport() read the same fields under
// the lock from other threads. Rapid back-to-back streams make the window
// between CloseAndJoin and the next stream's first Add wide enough that the
// monitors always land in it.
TEST(StreamDispatchStressTest, MonitorsRaceFinishAcrossStreams) {
  ProtocolConfig config;
  FakeExecutor executor(/*lanes=*/2);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(3, 2));
  std::atomic<bool> stop{false};
  std::vector<std::thread> monitors = StartMonitors(&dispatcher, &stop);

  for (size_t stream = 0; stream < 40; ++stream) {
    const size_t n = 10 + (stream % 13);
    for (size_t i = 0; i < n; ++i) {
      dispatcher.Add(ClientUploadMsg<G>{});
    }
    VerifyReport<G> report = dispatcher.Finish();
    ExpectFakeVerdict(report, n);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : monitors) {
    t.join();
  }
}

// Abort()'s tail also resets shared state after the lanes drain; monitors
// must never observe the teardown half-done. Alternates aborted and finished
// streams to cover the reuse path both ways.
TEST(StreamDispatchStressTest, MonitorsRaceAbortAndReuse) {
  ProtocolConfig config;
  FakeExecutor executor(/*lanes=*/2, /*sleep_us=*/200);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(2, 2));
  std::atomic<bool> stop{false};
  std::vector<std::thread> monitors = StartMonitors(&dispatcher, &stop);

  for (size_t round = 0; round < 25; ++round) {
    for (size_t i = 0; i < 9; ++i) {
      dispatcher.Add(ClientUploadMsg<G>{});
    }
    dispatcher.Abort();
    const size_t n = 6 + (round % 5);
    for (size_t i = 0; i < n; ++i) {
      dispatcher.Add(ClientUploadMsg<G>{});
    }
    VerifyReport<G> report = dispatcher.Finish();
    ExpectFakeVerdict(report, n);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : monitors) {
    t.join();
  }
}

// Backpressure path under observation: a window of 1 against a slow lane
// keeps the producer parked in Enqueue's wait (which accumulates
// backpressure_wait_ms_ under mu_) while monitors read the same accumulator
// through the getters.
TEST(StreamDispatchStressTest, MonitorsRaceBackpressureWait) {
  ProtocolConfig config;
  FakeExecutor executor(/*lanes=*/1, /*sleep_us=*/500);
  StreamDispatcher<G> dispatcher(config, &executor, NoProducts(1, 1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> monitors = StartMonitors(&dispatcher, &stop);

  for (size_t stream = 0; stream < 4; ++stream) {
    for (size_t i = 0; i < 30; ++i) {
      dispatcher.Add(ClientUploadMsg<G>{});
    }
    VerifyReport<G> report = dispatcher.Finish();
    ExpectFakeVerdict(report, 30);
    EXPECT_GT(dispatcher.last_backpressure_wait_ms(), 0.0);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : monitors) {
    t.join();
  }
}

}  // namespace
}  // namespace vdp
