// Side-by-side of the Figure 1 attacks: they succeed (undetected) against
// the PRIO/Poplar-style sketch and fail against Pi_Bin.
#include "src/baseline/attacks.h"

#include <gtest/gtest.h>

#include "src/baseline/nonverifiable_curator.h"
#include "src/core/adversary.h"
#include "src/core/protocol.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

// ---------------------------------------------------------------------------
// Figure 1a: excluding an honest client.

TEST(AttackTest, ExclusionSucceedsUndetectedOnSketchBaseline) {
  SecureRng rng("fig1a-baseline");
  auto report = RunSketchExclusionAttack<S>(/*servers=*/2, /*dims=*/4, /*corrupt=*/1, rng);
  EXPECT_FALSE(report.client_accepted);  // honest client thrown out
  EXPECT_FALSE(report.attributable);     // and nobody can prove who did it
}

TEST(AttackTest, ExclusionWorksFromEitherServer) {
  SecureRng rng("fig1a-any");
  for (size_t corrupt : {0u, 1u, 2u}) {
    auto report = RunSketchExclusionAttack<S>(3, 4, corrupt, rng);
    EXPECT_FALSE(report.client_accepted) << "corrupt=" << corrupt;
  }
}

TEST(AttackTest, ExclusionAttemptOnPiBinIsDetectedAndAttributed) {
  // The Pi_Bin analogue of dropping an honest client: the prover excludes the
  // client's share from its aggregate. Eq. 10 then fails *with attribution*.
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 2;
  config.session_id = "fig1a-pibin";
  Pedersen<G> ped;
  SecureRng crng("clients");
  std::vector<ClientBundle<G>> clients;
  for (size_t i = 0; i < 4; ++i) {
    clients.push_back(MakeClientBundle<G>(1, i, config, ped, crng));
  }
  Prover<G> honest(0, config, ped, SecureRng("honest"));
  ClientDroppingProver<G> corrupt(1, config, ped, SecureRng("corrupt"));
  std::vector<Prover<G>*> provers = {&honest, &corrupt};
  SecureRng vrng("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
  EXPECT_EQ(result.verdict.cheating_prover, 1u);  // attributed!
  // Crucially, the honest client was never branded invalid: it is still on
  // the public accepted record.
  EXPECT_EQ(result.accepted_clients.size(), 4u);
}

// ---------------------------------------------------------------------------
// Figure 1b: smuggling an illegal input.

TEST(AttackTest, InclusionSucceedsUndetectedOnSketchBaseline) {
  SecureRng rng("fig1b-baseline");
  // A double vote, with one colluding server cancelling the checks.
  auto report = RunSketchInclusionAttack<S>({1, 1, 0, 0}, 2, /*corrupt=*/0, rng);
  EXPECT_TRUE(report.client_accepted);  // illegal input admitted
  EXPECT_FALSE(report.attributable);
}

TEST(AttackTest, InclusionOfHugeWeightAlsoPossibleOnBaseline) {
  SecureRng rng("fig1b-huge");
  auto report = RunSketchInclusionAttack<S>({1000000, 0}, 2, 1, rng);
  EXPECT_TRUE(report.client_accepted);  // ballot stuffing, invisible
}

TEST(AttackTest, InclusionAttemptOnPiBinIsRejectedPublicly) {
  // In Pi_Bin, validity is established by a *public* proof against the
  // aggregated commitment. No server collusion can make an out-of-language
  // input pass, because the check involves no server-held secret at all.
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 2;
  config.session_id = "fig1b-pibin";
  Pedersen<G> ped;
  SecureRng crng("clients");
  auto cheater = MakeNonBitClientBundle<G>(1000000, 0, config, ped, crng);
  EXPECT_FALSE(ValidateClientUpload(cheater.upload, 0, config, ped));
}

TEST(AttackTest, PiBinDoubleVoteRejectedRegardlessOfCollusion) {
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 2;
  config.num_bins = 3;
  config.session_id = "fig1b-pibin-double";
  Pedersen<G> ped;
  SecureRng crng("clients");
  auto cheater = MakeDoubleVoteClientBundle<G>(0, config, ped, crng);
  EXPECT_FALSE(ValidateClientUpload(cheater.upload, 0, config, ped));
}

// ---------------------------------------------------------------------------
// The motivating attack: bias masked as noise.

TEST(AttackTest, NonVerifiableCuratorBiasIsInvisible) {
  // Against the plain curator, a +20 bias lands within the plausible range
  // of the DP noise distribution -- the analyst cannot prove misbehavior.
  SecureRng rng("bias-invisible");
  NonVerifiableCurator curator(0.5, 1e-6);  // nb = 5808, sd ~ 38
  std::vector<uint32_t> bits(1000, 0);
  for (size_t i = 0; i < 400; ++i) {
    bits[i] = 1;
  }
  auto honest = curator.Release(bits, rng);
  auto biased = curator.ReleaseBiased(bits, 20, rng);
  uint64_t nb = curator.mechanism().num_coins();
  // Both outputs lie in the mechanism's support [count, count + nb].
  EXPECT_GE(honest.raw, 400u);
  EXPECT_LE(honest.raw, 400u + nb);
  EXPECT_GE(biased.raw, 400u);
  EXPECT_LE(biased.raw, 400u + nb);
}

TEST(AttackTest, PiBinDetectsTheSameBias) {
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.session_id = "bias-detected";
  Pedersen<G> ped;
  SecureRng crng("clients");
  std::vector<ClientBundle<G>> clients;
  for (size_t i = 0; i < 5; ++i) {
    clients.push_back(MakeClientBundle<G>(i % 2, i, config, ped, crng));
  }
  BiasedOutputProver<G> curator(0, config, ped, SecureRng("curator"), 20);
  std::vector<Prover<G>*> provers = {&curator};
  SecureRng vrng("verifier");
  auto result = RunProtocol(config, ped, clients, provers, vrng);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.verdict.code, VerdictCode::kFinalCheckFailed);
}

}  // namespace
}  // namespace vdp
