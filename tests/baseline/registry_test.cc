#include "src/baseline/protocol_registry.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

TEST(RegistryTest, HasTenRowsLikeTable2) {
  EXPECT_EQ(Table2Registry().size(), 10u);
}

TEST(RegistryTest, OurWorkHasAllFourProperties) {
  const auto& rows = Table2Registry();
  const auto& ours = rows.back();
  EXPECT_EQ(ours.name, "This work (Pi_Bin)");
  EXPECT_TRUE(ours.active_security);
  EXPECT_TRUE(ours.central_dp);
  EXPECT_TRUE(ours.auditable);
  EXPECT_TRUE(ours.zero_leakage);
}

TEST(RegistryTest, NoOtherProtocolHasAllFour) {
  const auto& rows = Table2Registry();
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    bool all = rows[i].active_security && rows[i].central_dp && rows[i].auditable &&
               rows[i].zero_leakage;
    EXPECT_FALSE(all) << rows[i].name;
  }
}

TEST(RegistryTest, PrioAndPoplarMatchPaperClaims) {
  const auto& rows = Table2Registry();
  const ProtocolProperties* prio = nullptr;
  const ProtocolProperties* poplar = nullptr;
  for (const auto& row : rows) {
    if (row.name == "PRIO") {
      prio = &row;
    }
    if (row.name == "Poplar") {
      poplar = &row;
    }
  }
  ASSERT_NE(prio, nullptr);
  ASSERT_NE(poplar, nullptr);
  // PRIO is honest-verifier only; Poplar handles active adversaries; neither
  // is auditable (Section 4.2's attacks).
  EXPECT_FALSE(prio->active_security);
  EXPECT_TRUE(poplar->active_security);
  EXPECT_FALSE(prio->auditable);
  EXPECT_FALSE(poplar->auditable);
  EXPECT_TRUE(prio->central_dp);
  EXPECT_TRUE(poplar->central_dp);
}

TEST(RegistryTest, RenderedTableContainsAllRows) {
  std::string table = RenderTable2();
  for (const auto& row : Table2Registry()) {
    EXPECT_NE(table.find(row.name), std::string::npos) << row.name;
  }
  // Header sanity.
  EXPECT_NE(table.find("Active"), std::string::npos);
  EXPECT_NE(table.find("Audit"), std::string::npos);
}

}  // namespace
}  // namespace vdp
