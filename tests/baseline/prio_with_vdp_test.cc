// The Pi_Bin-on-PRIO retrofit: verifiable noise over an unverified
// aggregation, including the precise limitation that distinguishes it from
// full Pi_Bin.
#include "src/baseline/prio_with_vdp.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

std::vector<bool> FairBits(size_t n, const std::string& seed) {
  SecureRng rng(seed);
  std::vector<bool> bits(n);
  for (size_t j = 0; j < n; ++j) {
    bits[j] = rng.NextBit();
  }
  return bits;
}

TEST(RetrofitTest, HonestNoiseVerifies) {
  Pedersen<G> ped;
  SecureRng rng("retrofit-honest");
  constexpr size_t kCoins = 31;
  auto bits = FairBits(kCoins, "public-bits");
  auto proof = RetrofitNoise(S::FromU64(1234), kCoins, bits, ped, rng, "ctx");
  EXPECT_TRUE(RetrofitVerify(proof, ped, "ctx"));
  // y is the aggregate plus at most nb.
  auto y = proof.y.ToU64();
  ASSERT_TRUE(y.has_value());
  EXPECT_GE(*y, 1234u);
  EXPECT_LE(*y, 1234u + kCoins);
}

TEST(RetrofitTest, BiasedOutputDetected) {
  Pedersen<G> ped;
  SecureRng rng("retrofit-bias");
  auto bits = FairBits(31, "public-bits");
  auto proof = RetrofitNoise(S::FromU64(500), 31, bits, ped, rng, "ctx");
  proof.y += S::FromU64(7);  // nudge the statistic, blame the noise
  EXPECT_FALSE(RetrofitVerify(proof, ped, "ctx"));
}

TEST(RetrofitTest, NonBitCoinDetected) {
  Pedersen<G> ped;
  SecureRng rng("retrofit-nonbit");
  auto bits = FairBits(31, "public-bits");
  auto proof = RetrofitNoise(S::FromU64(500), 31, bits, ped, rng, "ctx");
  // Swap one coin for a commitment to 3 (proof cannot be forged).
  S r = S::Random(rng);
  proof.coin_commitments[5] = ped.Commit(S::FromU64(3), r);
  proof.coin_proofs[5] = OrProve(ped, proof.coin_commitments[5], 1, r, rng, "ctx/5");
  EXPECT_FALSE(RetrofitVerify(proof, ped, "ctx"));
}

TEST(RetrofitTest, FlippedPublicBitDetected) {
  Pedersen<G> ped;
  SecureRng rng("retrofit-flip");
  auto bits = FairBits(31, "public-bits");
  auto proof = RetrofitNoise(S::FromU64(500), 31, bits, ped, rng, "ctx");
  proof.public_bits[0] = !proof.public_bits[0];
  EXPECT_FALSE(RetrofitVerify(proof, ped, "ctx"));
}

TEST(RetrofitTest, ShapeMismatchRejected) {
  Pedersen<G> ped;
  SecureRng rng("retrofit-shape");
  auto bits = FairBits(31, "public-bits");
  auto proof = RetrofitNoise(S::FromU64(1), 31, bits, ped, rng, "ctx");
  proof.coin_proofs.pop_back();
  EXPECT_FALSE(RetrofitVerify(proof, ped, "ctx"));
}

TEST(RetrofitTest, DocumentedLimitationAggregateIsNotBound) {
  // The retrofit certifies the NOISE, not the aggregation: a server that
  // lies about its aggregate share (here claiming 400 instead of the true
  // 500) commits to the lie and passes verification. This is exactly the
  // gap full Pi_Bin closes with per-client commitments (see
  // SoundnessTest.DroppedClientDetected), and why the paper's full protocol
  // carries the Line 2-3 client machinery.
  Pedersen<G> ped;
  SecureRng rng("retrofit-limit");
  auto bits = FairBits(31, "public-bits");
  S falsified = S::FromU64(400);  // true PRIO aggregate was 500
  auto proof = RetrofitNoise(falsified, 31, bits, ped, rng, "ctx");
  EXPECT_TRUE(RetrofitVerify(proof, ped, "ctx"));  // passes -- by design
}

TEST(RetrofitTest, NoiseDistributionIsBinomial) {
  // Across many runs, y - X has Binomial(nb, 1/2) moments.
  Pedersen<G> ped;
  SecureRng rng("retrofit-moments");
  constexpr size_t kCoins = 64;
  constexpr int kRuns = 40;
  double sum = 0;
  for (int run = 0; run < kRuns; ++run) {
    auto bits = FairBits(kCoins, "bits-" + std::to_string(run));
    auto proof = RetrofitNoise(S::FromU64(1000), kCoins, bits, ped, rng,
                               "ctx-" + std::to_string(run));
    sum += static_cast<double>(*proof.y.ToU64()) - 1000.0;
  }
  double mean = sum / kRuns;
  // Binomial(64, 1/2): mean 32, sd 4; mean of 40 runs has s.e. ~0.63.
  EXPECT_NEAR(mean, 32.0, 4.0);
}

}  // namespace
}  // namespace vdp
