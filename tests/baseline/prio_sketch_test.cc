#include "src/baseline/prio_sketch.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

using S = ModP256::Scalar;

std::vector<S> RandomVector(size_t dims, SecureRng& rng) {
  std::vector<S> r;
  for (size_t m = 0; m < dims; ++m) {
    r.push_back(S::Random(rng));
  }
  return r;
}

TEST(PrioSketchTest, HonestOneHotAccepted) {
  SecureRng rng("sketch-honest");
  for (size_t dims : {1u, 2u, 8u, 64u}) {
    for (size_t servers : {2u, 3u}) {
      auto sub = MakeSketchSubmission<S>(dims / 2, servers, dims, rng);
      auto outcome = RunSketchValidation(sub, RandomVector(dims, rng));
      EXPECT_TRUE(outcome.accepted) << "dims=" << dims << " servers=" << servers;
    }
  }
}

TEST(PrioSketchTest, EveryChoicePositionAccepted) {
  SecureRng rng("sketch-pos");
  constexpr size_t kDims = 5;
  for (uint32_t choice = 0; choice < kDims; ++choice) {
    auto sub = MakeSketchSubmission<S>(choice, 2, kDims, rng);
    EXPECT_TRUE(RunSketchValidation(sub, RandomVector(kDims, rng)).accepted);
  }
}

TEST(PrioSketchTest, DoubleVoteRejected) {
  SecureRng rng("sketch-double");
  auto sub = MakeRawSketchSubmission<S>({1, 1, 0, 0}, 2, rng);
  auto outcome = RunSketchValidation(sub, RandomVector(4, rng));
  EXPECT_FALSE(outcome.accepted);
  EXPECT_FALSE(outcome.sum_zero);   // sums to 2
  EXPECT_FALSE(outcome.quad_zero);  // cross term 2 r_i r_j
}

TEST(PrioSketchTest, OverweightVoteRejected) {
  SecureRng rng("sketch-weight");
  auto sub = MakeRawSketchSubmission<S>({5, 0, 0}, 2, rng);
  auto outcome = RunSketchValidation(sub, RandomVector(3, rng));
  EXPECT_FALSE(outcome.accepted);
}

TEST(PrioSketchTest, SumPreservingCheatCaughtByQuadTest) {
  // x = (2, -1, 0): sums to one, but is not one-hot; only the quadratic
  // sketch catches it. (-1 encoded as q-1.)
  SecureRng rng("sketch-sumsafe");
  SketchSubmission<S> sub;
  const size_t servers = 2;
  sub.x_shares.resize(servers);
  std::vector<S> x = {S::FromU64(2), S::Zero() - S::One(), S::Zero()};
  for (const S& v : x) {
    auto shares = ShareAdditive(v, servers, rng);
    for (size_t k = 0; k < servers; ++k) {
      sub.x_shares[k].push_back(shares[k]);
    }
  }
  S a = S::Random(rng);
  sub.a_shares = ShareAdditive(a, servers, rng);
  sub.c_shares = ShareAdditive(a * a, servers, rng);

  auto outcome = RunSketchValidation(sub, RandomVector(3, rng));
  EXPECT_TRUE(outcome.sum_zero);
  EXPECT_FALSE(outcome.quad_zero);
  EXPECT_FALSE(outcome.accepted);
}

TEST(PrioSketchTest, ZeroVectorRejectedBySumCheck) {
  SecureRng rng("sketch-zero");
  auto sub = MakeRawSketchSubmission<S>({0, 0, 0}, 2, rng);
  auto outcome = RunSketchValidation(sub, RandomVector(3, rng));
  EXPECT_FALSE(outcome.sum_zero);
  // All-zero is "one-hot-like" for the quad test (z = 0, z* = 0).
  EXPECT_TRUE(outcome.quad_zero);
  EXPECT_FALSE(outcome.accepted);
}

TEST(PrioSketchTest, BadBeaverPairBreaksHonestRun) {
  // A client that miscomputes c != a^2 fails its own validation (with
  // overwhelming probability over r).
  SecureRng rng("sketch-beaver");
  auto sub = MakeSketchSubmission<S>(0, 2, 4, rng);
  sub.c_shares[0] += S::One();
  auto outcome = RunSketchValidation(sub, RandomVector(4, rng));
  EXPECT_FALSE(outcome.accepted);
}

TEST(PrioSketchTest, DeviationComputationMatchesOpenedValues) {
  SecureRng rng("sketch-dev");
  auto sub = MakeRawSketchSubmission<S>({1, 1}, 2, rng);
  auto r = RandomVector(2, rng);
  auto dev = ComputeSketchDeviation(sub, r);
  // Cancelling exactly the deviation must flip the outcome to accepted.
  std::vector<SketchTamper<S>> tamper(2, SketchTamper<S>{S::Zero(), S::Zero()});
  tamper[1].sum_delta = -dev.sum_deviation;
  tamper[1].quad_delta = -dev.quad_deviation;
  EXPECT_FALSE(RunSketchValidation(sub, r).accepted);
  EXPECT_TRUE(RunSketchValidation(sub, r, &tamper).accepted);
}

TEST(PrioSketchTest, SharesHideTheChoice) {
  SecureRng rng("sketch-hide");
  auto sub0 = MakeSketchSubmission<S>(0, 2, 4, rng);
  auto sub1 = MakeSketchSubmission<S>(1, 2, 4, rng);
  // Server 0's share vectors are uniform regardless of choice.
  EXPECT_NE(sub0.x_shares[0], sub1.x_shares[0]);
  // Reconstruction differs in the right position.
  S rec0 = sub0.x_shares[0][0] + sub0.x_shares[1][0];
  EXPECT_EQ(rec0, S::One());
}

}  // namespace
}  // namespace vdp
