#include "src/math/montgomery.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace vdp {
namespace {

using U64 = BigInt<1>;
using U256 = BigInt<4>;

template <size_t L>
BigInt<L> RandomMod(const BigInt<L>& m, SecureRng& rng) {
  BigInt<L> v;
  for (size_t i = 0; i < L; ++i) {
    v.limb[i] = rng.NextU64();
  }
  return Mod(v, m);
}

// 2^61 - 1, a Mersenne prime.
constexpr uint64_t kPrime61 = 2305843009213693951ull;

TEST(MontgomeryTest, SingleLimbMatchesInt128) {
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  SecureRng rng("mont-1");
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.UniformBelow(kPrime61);
    uint64_t b = rng.UniformBelow(kPrime61);
    uint64_t expected = static_cast<uint64_t>(
        (static_cast<uint128_t>(a) * b) % kPrime61);
    EXPECT_EQ(ctx.MulMod(U64::FromU64(a), U64::FromU64(b)).limb[0], expected);
  }
}

TEST(MontgomeryTest, ToFromMontRoundTrip) {
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  SecureRng rng("mont-rt");
  for (int i = 0; i < 100; ++i) {
    U64 a = U64::FromU64(rng.UniformBelow(kPrime61));
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(a)), a);
  }
}

TEST(MontgomeryTest, MultiLimbMatchesNaiveMulMod) {
  SecureRng rng("mont-4");
  for (int trial = 0; trial < 20; ++trial) {
    U256 m;
    for (auto& w : m.limb) {
      w = rng.NextU64();
    }
    m.limb[0] |= 1;                     // odd
    m.limb[3] |= uint64_t{1} << 63;     // full width
    MontgomeryCtx<4> ctx(m);
    for (int i = 0; i < 20; ++i) {
      U256 a = RandomMod(m, rng);
      U256 b = RandomMod(m, rng);
      EXPECT_EQ(ctx.MulMod(a, b), MulMod(a, b, m));
    }
  }
}

TEST(MontgomeryTest, SqrMontMatchesMulMont) {
  // The dedicated squaring path (SOS: off-diagonal products once, doubled)
  // must agree with the general CIOS multiply on every input, including
  // values at the modulus boundary.
  SecureRng rng("mont-sqr");
  for (int trial = 0; trial < 10; ++trial) {
    U256 m;
    for (auto& w : m.limb) {
      w = rng.NextU64();
    }
    m.limb[0] |= 1;
    m.limb[3] |= uint64_t{1} << 63;
    MontgomeryCtx<4> ctx(m);
    std::vector<U256> cases;
    for (int i = 0; i < 20; ++i) {
      cases.push_back(RandomMod(m, rng));
    }
    cases.push_back(U256::Zero());
    cases.push_back(U256::One());
    U256 top = m;
    U256::SubInto(top, top, U256::One());  // m - 1
    cases.push_back(top);
    for (const auto& a : cases) {
      U256 am = ctx.ToMont(a);
      EXPECT_EQ(ctx.SqrMont(am), ctx.MulMont(am, am)) << a.ToHex();
      EXPECT_EQ(ctx.FromMont(ctx.SqrMont(am)), MulMod(a, a, m)) << a.ToHex();
    }
  }
}

TEST(MontgomeryTest, SqrMontSingleLimb) {
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  SecureRng rng("mont-sqr-1");
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.UniformBelow(kPrime61);
    uint64_t expected = static_cast<uint64_t>(
        (static_cast<uint128_t>(a) * a) % kPrime61);
    U64 am = ctx.ToMont(U64::FromU64(a));
    EXPECT_EQ(ctx.FromMont(ctx.SqrMont(am)).limb[0], expected);
  }
}

TEST(MontgomeryTest, ExpModBasicIdentities) {
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  U64 base = U64::FromU64(123456789);
  EXPECT_EQ(ctx.ExpMod(base, U64::Zero()), U64::One());
  EXPECT_EQ(ctx.ExpMod(base, U64::One()), base);
  // base^2 == base * base
  EXPECT_EQ(ctx.ExpMod(base, U64::FromU64(2)), ctx.MulMod(base, base));
}

TEST(MontgomeryTest, ExpModMatchesNaiveSquareMultiply) {
  SecureRng rng("exp-naive");
  U256 m;
  for (auto& w : m.limb) {
    w = rng.NextU64();
  }
  m.limb[0] |= 1;
  m.limb[3] |= uint64_t{1} << 63;
  MontgomeryCtx<4> ctx(m);

  for (int trial = 0; trial < 10; ++trial) {
    U256 base = RandomMod(m, rng);
    uint64_t e = rng.UniformBelow(10000);
    // Naive: repeated MulMod.
    U256 expected = U256::One();
    expected = Mod(expected, m);
    for (uint64_t i = 0; i < e; ++i) {
      expected = MulMod(expected, base, m);
    }
    EXPECT_EQ(ctx.ExpMod(base, U256::FromU64(e)), expected) << "e=" << e;
  }
}

TEST(MontgomeryTest, FermatLittleTheorem) {
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  SecureRng rng("fermat");
  U64 exp = U64::FromU64(kPrime61 - 1);
  for (int i = 0; i < 20; ++i) {
    U64 a = U64::FromU64(1 + rng.UniformBelow(kPrime61 - 1));
    EXPECT_EQ(ctx.ExpMod(a, exp), U64::One());
  }
}

TEST(MontgomeryTest, InverseIsCorrect) {
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  SecureRng rng("inverse");
  for (int i = 0; i < 50; ++i) {
    U64 a = U64::FromU64(1 + rng.UniformBelow(kPrime61 - 1));
    U64 inv = ctx.Inverse(a);
    EXPECT_EQ(ctx.MulMod(a, inv), U64::One());
  }
}

TEST(MontgomeryTest, ExpAddsExponents) {
  // a^(x+y) == a^x * a^y
  SecureRng rng("exp-add");
  U256 m;
  for (auto& w : m.limb) {
    w = rng.NextU64();
  }
  m.limb[0] |= 1;
  MontgomeryCtx<4> ctx(m);
  U256 a = RandomMod(m, rng);
  for (int i = 0; i < 10; ++i) {
    uint64_t x = rng.UniformBelow(1u << 20);
    uint64_t y = rng.UniformBelow(1u << 20);
    U256 lhs = ctx.ExpMod(a, U256::FromU64(x + y));
    U256 rhs = ctx.MulMod(ctx.ExpMod(a, U256::FromU64(x)), ctx.ExpMod(a, U256::FromU64(y)));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(MontgomeryTest, WideExponent) {
  // Exponent wider than the modulus limb count.
  MontgomeryCtx<1> ctx(U64::FromU64(kPrime61));
  BigInt<4> exp;
  exp.limb[2] = 5;  // huge exponent
  U64 r = ctx.ExpMod(U64::FromU64(3), exp);
  // 3^(5 * 2^128) mod p == (3^(2^128))^5; verify via Fermat reduction:
  // exponent mod (p-1):
  BigInt<4> pm1 = BigInt<4>::FromU64(kPrime61 - 1);
  BigInt<1> reduced = Mod(exp, BigInt<1>::FromU64(kPrime61 - 1));
  (void)pm1;
  EXPECT_EQ(r, ctx.ExpMod(U64::FromU64(3), reduced));
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx<1>(U64::FromU64(100)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx<1>(U64::One()), std::invalid_argument);
}

}  // namespace
}  // namespace vdp
