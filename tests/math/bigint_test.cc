#include "src/math/bigint.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace vdp {
namespace {

using U128 = BigInt<2>;
using U256 = BigInt<4>;

template <size_t L>
BigInt<L> RandomValue(SecureRng& rng) {
  BigInt<L> v;
  for (size_t i = 0; i < L; ++i) {
    v.limb[i] = rng.NextU64();
  }
  return v;
}

TEST(BigIntTest, ZeroOneBasics) {
  EXPECT_TRUE(U256::Zero().IsZero());
  EXPECT_FALSE(U256::One().IsZero());
  EXPECT_TRUE(U256::One().IsOdd());
  EXPECT_FALSE(U256::FromU64(4).IsOdd());
  EXPECT_EQ(U256::FromU64(123).limb[0], 123u);
}

TEST(BigIntTest, CompareOrdersLexicographically) {
  U128 small = U128::FromU64(5);
  U128 large;
  large.limb[1] = 1;  // 2^64
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_EQ(small.Compare(small), 0);
  EXPECT_TRUE(small <= small);
  EXPECT_TRUE(small >= small);
}

TEST(BigIntTest, AddCarriesAcrossLimbs) {
  U128 a;
  a.limb[0] = ~uint64_t{0};
  U128 r;
  uint64_t carry = U128::AddInto(r, a, U128::One());
  EXPECT_EQ(carry, 0u);
  EXPECT_EQ(r.limb[0], 0u);
  EXPECT_EQ(r.limb[1], 1u);
}

TEST(BigIntTest, AddOverflowSetsCarry) {
  U128 max;
  max.limb[0] = max.limb[1] = ~uint64_t{0};
  U128 r;
  uint64_t carry = U128::AddInto(r, max, U128::One());
  EXPECT_EQ(carry, 1u);
  EXPECT_TRUE(r.IsZero());
}

TEST(BigIntTest, SubBorrows) {
  U128 r;
  uint64_t borrow = U128::SubInto(r, U128::Zero(), U128::One());
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r.limb[0], ~uint64_t{0});
  EXPECT_EQ(r.limb[1], ~uint64_t{0});
}

TEST(BigIntTest, AddSubRoundTrip) {
  SecureRng rng("add-sub");
  for (int i = 0; i < 200; ++i) {
    U256 a = RandomValue<4>(rng);
    U256 b = RandomValue<4>(rng);
    U256 sum, back;
    uint64_t carry = U256::AddInto(sum, a, b);
    uint64_t borrow = U256::SubInto(back, sum, b);
    // a + b - b == a modulo 2^256 regardless of carry.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(BigIntTest, MulSmallValues) {
  auto r = Mul(U128::FromU64(6), U128::FromU64(7));
  EXPECT_EQ(r.limb[0], 42u);
  EXPECT_TRUE(Mul(U128::Zero(), U128::FromU64(99)).IsZero());
  auto id = Mul(U128::FromU64(12345), U128::One());
  EXPECT_EQ(id.limb[0], 12345u);
}

TEST(BigIntTest, MulCrossLimb) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  U128 a;
  a.limb[0] = ~uint64_t{0};
  auto r = Mul(a, a);
  EXPECT_EQ(r.limb[0], 1u);
  EXPECT_EQ(r.limb[1], ~uint64_t{0} - 1);  // 0xffff...fffe
  EXPECT_EQ(r.limb[2], 0u);
}

TEST(BigIntTest, MulCommutative) {
  SecureRng rng("mul-comm");
  for (int i = 0; i < 100; ++i) {
    U256 a = RandomValue<4>(rng);
    U256 b = RandomValue<4>(rng);
    EXPECT_EQ(Mul(a, b), Mul(b, a));
  }
}

TEST(BigIntTest, DivModSmall) {
  auto r = DivMod(U128::FromU64(100), U128::FromU64(7));
  EXPECT_EQ(r.quotient.limb[0], 14u);
  EXPECT_EQ(r.remainder.limb[0], 2u);
}

TEST(BigIntTest, DivModByOne) {
  U256 a = U256::FromU64(987654321);
  auto r = DivMod(a, U256::One());
  EXPECT_EQ(r.quotient, a);
  EXPECT_TRUE(r.remainder.IsZero());
}

TEST(BigIntTest, DivModReconstructionProperty) {
  SecureRng rng("divmod");
  for (int i = 0; i < 200; ++i) {
    BigInt<8> a = RandomValue<8>(rng);
    U256 m = RandomValue<4>(rng);
    if (m.IsZero()) {
      m = U256::One();
    }
    auto r = DivMod(a, m);
    EXPECT_LT(r.remainder, m);
    // quotient * m + remainder == a  (computed in 12 limbs, no overflow).
    auto prod = Mul(r.quotient, m);  // 12 limbs
    BigInt<12> rem12 = r.remainder.Resize<12>();
    BigInt<12> sum;
    BigInt<12>::AddInto(sum, prod, rem12);
    EXPECT_EQ(sum, a.Resize<12>());
  }
}

TEST(BigIntTest, DivModWideDivisor) {
  // Divisor wider than the dividend's value.
  U256 big;
  big.limb[3] = 77;
  auto r = DivMod(U128::FromU64(42).Resize<4>(), big);
  EXPECT_TRUE(r.quotient.IsZero());
  EXPECT_EQ(r.remainder.limb[0], 42u);
}

TEST(BigIntTest, ShiftLeftRightRoundTrip) {
  SecureRng rng("shift");
  U256 v = RandomValue<4>(rng);
  v.limb[3] &= ~uint64_t{0} >> 1;  // clear the top bit so nothing falls off
  U256 u = v;
  uint64_t out = u.ShiftLeft1();
  EXPECT_EQ(out, 0u);
  u.ShiftRight1();
  EXPECT_EQ(u, v);
}

TEST(BigIntTest, ShiftLeftCarriesTopBit) {
  U128 v;
  v.limb[1] = uint64_t{1} << 63;
  EXPECT_EQ(v.ShiftLeft1(), 1u);
  EXPECT_TRUE(v.IsZero());
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(U256::Zero().BitLength(), 0u);
  EXPECT_EQ(U256::One().BitLength(), 1u);
  EXPECT_EQ(U256::FromU64(255).BitLength(), 8u);
  EXPECT_EQ(U256::FromU64(256).BitLength(), 9u);
  U256 big;
  big.limb[3] = 1;
  EXPECT_EQ(big.BitLength(), 193u);
}

TEST(BigIntTest, BitAccess) {
  U256 v = U256::FromU64(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  v.SetBit(100);
  EXPECT_TRUE(v.Bit(100));
}

TEST(BigIntTest, HexRoundTrip) {
  SecureRng rng("hex");
  for (int i = 0; i < 50; ++i) {
    U256 v = RandomValue<4>(rng);
    auto parsed = U256::FromHex(v.ToHex());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

TEST(BigIntTest, FromHexValues) {
  auto v = U128::FromHex("ff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->limb[0], 255u);
  auto odd = U128::FromHex("f");  // odd length accepted
  ASSERT_TRUE(odd.has_value());
  EXPECT_EQ(odd->limb[0], 15u);
  EXPECT_FALSE(U128::FromHex("xyz").has_value());
}

TEST(BigIntTest, BytesRoundTripAndWidth) {
  U128 v = U128::FromU64(0x0102030405060708ull);
  Bytes b = v.ToBytesBe();
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(b[15], 0x08);
  EXPECT_EQ(b[8], 0x01);
  auto back = U128::FromBytesBe(b);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

TEST(BigIntTest, FromBytesOversizedZeroPaddingAccepted) {
  Bytes padded(20, 0);
  padded[19] = 9;
  auto v = U128::FromBytesBe(padded);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->limb[0], 9u);
}

TEST(BigIntTest, FromBytesOversizedNonzeroRejected) {
  Bytes padded(20, 0);
  padded[0] = 1;
  EXPECT_FALSE(U128::FromBytesBe(padded).has_value());
}

TEST(BigIntTest, ModularOpsMatchDefinition) {
  SecureRng rng("modops");
  for (int i = 0; i < 100; ++i) {
    U256 m = RandomValue<4>(rng);
    m.limb[3] |= uint64_t{1} << 63;  // keep m large
    U256 a = Mod(RandomValue<4>(rng), m);
    U256 b = Mod(RandomValue<4>(rng), m);

    U256 sum = AddMod(a, b, m);
    EXPECT_LT(sum, m);
    // (a + b) - b == a
    EXPECT_EQ(SubMod(sum, b, m), a);

    U256 prod = MulMod(a, b, m);
    EXPECT_LT(prod, m);
    EXPECT_EQ(prod, MulMod(b, a, m));
  }
}

TEST(BigIntTest, ResizeWidensAndTruncates) {
  U128 v = U128::FromU64(42);
  auto wide = v.Resize<4>();
  EXPECT_EQ(wide.limb[0], 42u);
  EXPECT_EQ(wide.limb[3], 0u);
  auto narrow = wide.Resize<2>();
  EXPECT_EQ(narrow, v);
}

}  // namespace
}  // namespace vdp
