// Montgomery's-trick batch inversion must agree with element-wise inversion
// for every set shape the group layer produces: singletons, pairs, odd sizes,
// and sets with zeros interleaved (identity points normalize through here).
#include "src/math/batch_inverse.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/group/ed25519_field.h"
#include "src/math/primality.h"

namespace vdp {
namespace {

// 2^61 - 1, a Mersenne prime.
constexpr uint64_t kPrime61 = 2305843009213693951ull;

const MontgomeryCtx<1>& Ctx61() {
  static const MontgomeryCtx<1> ctx(BigInt<1>::FromU64(kPrime61));
  return ctx;
}

std::vector<BigInt<1>> RandomSet(size_t n, SecureRng& rng, bool with_zeros) {
  std::vector<BigInt<1>> xs(n);
  for (size_t i = 0; i < n; ++i) {
    if (with_zeros && rng.UniformBelow(4) == 0) {
      xs[i] = BigInt<1>::Zero();
    } else {
      xs[i] = BigInt<1>::FromU64(1 + rng.UniformBelow(kPrime61 - 1));
    }
  }
  return xs;
}

TEST(BatchInverseTest, MatchesElementWiseInversion) {
  SecureRng rng("batch-inverse-elementwise");
  ModField<1> f(Ctx61());
  // Sizes cover the degenerate single element, the smallest nontrivial
  // product tree, and non-power-of-two shapes.
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{64},
                   size_t{101}}) {
    std::vector<BigInt<1>> xs = RandomSet(n, rng, /*with_zeros=*/false);
    std::vector<BigInt<1>> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = Ctx61().Inverse(xs[i]);
    }
    EXPECT_EQ(BatchInverse(f, &xs), n) << "n=" << n;
    EXPECT_EQ(xs, expected) << "n=" << n;
  }
}

TEST(BatchInverseTest, ZerosStayZeroOthersInvert) {
  SecureRng rng("batch-inverse-zeros");
  ModField<1> f(Ctx61());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<BigInt<1>> xs = RandomSet(33, rng, /*with_zeros=*/true);
    std::vector<BigInt<1>> orig = xs;
    size_t nonzero = 0;
    for (const auto& x : orig) {
      nonzero += x.IsZero() ? 0 : 1;
    }
    EXPECT_EQ(BatchInverse(f, &xs), nonzero);
    for (size_t i = 0; i < xs.size(); ++i) {
      if (orig[i].IsZero()) {
        EXPECT_TRUE(xs[i].IsZero()) << "i=" << i;
      } else {
        EXPECT_EQ(Ctx61().MulMod(xs[i], orig[i]), BigInt<1>::One()) << "i=" << i;
      }
    }
  }
}

TEST(BatchInverseTest, AllZeros) {
  ModField<1> f(Ctx61());
  std::vector<BigInt<1>> xs(5, BigInt<1>::Zero());
  EXPECT_EQ(BatchInverse(f, &xs), 0u);
  for (const auto& x : xs) {
    EXPECT_TRUE(x.IsZero());
  }
}

TEST(BatchInverseTest, EmptySet) {
  ModField<1> f(Ctx61());
  std::vector<BigInt<1>> xs;
  EXPECT_EQ(BatchInverse(f, &xs), 0u);
}

TEST(BatchInverseTest, StrictRejectsZeroUntouched) {
  SecureRng rng("batch-inverse-strict");
  ModField<1> f(Ctx61());
  std::vector<BigInt<1>> xs = RandomSet(9, rng, /*with_zeros=*/false);
  xs[4] = BigInt<1>::Zero();
  std::vector<BigInt<1>> orig = xs;
  EXPECT_FALSE(BatchInverseStrict(f, &xs));
  EXPECT_EQ(xs, orig);  // untouched on rejection
  xs[4] = BigInt<1>::FromU64(42);
  EXPECT_TRUE(BatchInverseStrict(f, &xs));
  EXPECT_EQ(Ctx61().MulMod(xs[4], BigInt<1>::FromU64(42)), BigInt<1>::One());
}

TEST(BatchInverseTest, MultiLimbField) {
  // Same trick over a 256-bit prime field (the ed25519 base field prime,
  // driven through the generic BigInt adapter rather than Fe25519).
  static const MontgomeryCtx<4> ctx(Fe25519::P());
  SecureRng rng("batch-inverse-256");
  ModField<4> f(ctx);
  std::vector<BigInt<4>> xs(21);
  for (auto& x : xs) {
    x = RandomBelow(Fe25519::P(), rng);
  }
  std::vector<BigInt<4>> orig = xs;
  BatchInverse(f, &xs);
  for (size_t i = 0; i < xs.size(); ++i) {
    if (orig[i].IsZero()) {
      EXPECT_TRUE(xs[i].IsZero());
    } else {
      EXPECT_EQ(ctx.MulMod(xs[i], orig[i]), BigInt<4>::One()) << "i=" << i;
    }
  }
}

TEST(BatchInverseTest, Fe25519Adapter) {
  SecureRng rng("batch-inverse-fe");
  Fe25519Field f;
  std::vector<Fe25519> xs;
  for (int i = 0; i < 17; ++i) {
    xs.push_back(Fe25519::FromBigInt(RandomBelow(Fe25519::P(), rng)));
  }
  xs[3] = Fe25519::Zero();
  xs[11] = Fe25519::Zero();
  std::vector<Fe25519> orig = xs;
  EXPECT_EQ(BatchInverse(f, &xs), xs.size() - 2);
  for (size_t i = 0; i < xs.size(); ++i) {
    if (orig[i].IsZero()) {
      EXPECT_TRUE(xs[i].IsZero()) << "i=" << i;
    } else {
      EXPECT_TRUE(Fe25519::Mul(xs[i], orig[i]) == Fe25519::One()) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace vdp
