#include "src/math/primality.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

using U64 = BigInt<1>;
using U128 = BigInt<2>;

TEST(PrimalityTest, SmallPrimes) {
  SecureRng rng("small-primes");
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 97ull, 101ull, 7919ull}) {
    EXPECT_TRUE(IsProbablePrime(U64::FromU64(p), 20, rng)) << p;
  }
}

TEST(PrimalityTest, SmallComposites) {
  SecureRng rng("small-composites");
  for (uint64_t c : {0ull, 1ull, 4ull, 9ull, 15ull, 100ull, 7917ull}) {
    EXPECT_FALSE(IsProbablePrime(U64::FromU64(c), 20, rng)) << c;
  }
}

TEST(PrimalityTest, CarmichaelNumbersRejected) {
  SecureRng rng("carmichael");
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  for (uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(U64::FromU64(c), 20, rng)) << c;
  }
}

TEST(PrimalityTest, LargePrimes) {
  SecureRng rng("large-primes");
  // 2^61 - 1 is a Mersenne prime; 1000003 is prime.
  EXPECT_TRUE(IsProbablePrime(U64::FromU64(2305843009213693951ull), 20, rng));
  EXPECT_TRUE(IsProbablePrime(U64::FromU64(1000003), 20, rng));
  // 2^61 - 1 squared-ish composite.
  EXPECT_FALSE(IsProbablePrime(U64::FromU64(2305843009213693951ull - 1), 20, rng));
}

TEST(PrimalityTest, ProductOfPrimesIsComposite) {
  SecureRng rng("product");
  uint64_t p = 1000003, q = 1000033;
  EXPECT_FALSE(IsProbablePrime(U64::FromU64(p * q), 20, rng));
}

TEST(PrimalityTest, SafePrimes) {
  SecureRng rng("safe");
  // p = 2q+1 with q prime: 5 (q=2), 7 (q=3), 11 (q=5), 23 (q=11), 47, 59, 83.
  for (uint64_t p : {5ull, 7ull, 11ull, 23ull, 47ull, 59ull, 83ull}) {
    EXPECT_TRUE(IsSafePrime(U64::FromU64(p), 20, rng)) << p;
  }
  // Primes that are not safe: 13 (q=6), 17 (q=8), 29 (q=14), 97.
  for (uint64_t p : {13ull, 17ull, 29ull, 97ull}) {
    EXPECT_FALSE(IsSafePrime(U64::FromU64(p), 20, rng)) << p;
  }
}

TEST(PrimalityTest, GenerateSafePrime64) {
  SecureRng rng("gen-64");
  U128 p = GenerateSafePrime<2>(64, rng);
  EXPECT_EQ(p.BitLength(), 64u);
  EXPECT_TRUE(IsSafePrime(p, 30, rng));
}

TEST(PrimalityTest, GenerateSafePrime96) {
  SecureRng rng("gen-96");
  U128 p = GenerateSafePrime<2>(96, rng);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(IsSafePrime(p, 30, rng));
}

TEST(PrimalityTest, RandomBelowIsInRange) {
  SecureRng rng("below");
  U128 bound = U128::FromU64(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(RandomBelow(bound, rng), bound);
  }
}

TEST(PrimalityTest, RandomBelowNonTrivialBitBounds) {
  SecureRng rng("below-bits");
  U128 bound;
  bound.limb[1] = 0x5;  // not a power of two, crosses limb boundary
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(RandomBelow(bound, rng), bound);
  }
}

}  // namespace
}  // namespace vdp
