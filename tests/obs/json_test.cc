// src/obs/json.h coverage: total parsing (malformed input never crashes or
// throws), write/parse round-trips, escaping, and the insertion-order
// guarantee the run-log's stable output depends on.
#include <gtest/gtest.h>

#include "src/obs/json.h"

namespace vdp {
namespace obs {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->as_bool());
  EXPECT_FALSE(ParseJson("false")->as_bool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e3")->as_number(), -1500.0);
  EXPECT_EQ(ParseJson("\"hi\\n\"")->as_string(), "hi\n");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2].StringOr("b", ""), "c");
  EXPECT_TRUE(v->Find("d")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, MalformedInputsReturnNullopt) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "\"unterminated", "tru", "1.",
        "nan", "+1", "{\"a\" 1}", "[1 2]", "{'a': 1}", "\"bad\\escape\"",
        "\x01", "{\"a\":1}trailing"}) {
    EXPECT_FALSE(ParseJson(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(JsonTest, DeeplyNestedInputIsDepthCapped) {
  std::string deep(100'000, '[');
  EXPECT_FALSE(ParseJson(deep).has_value());  // and must not smash the stack
}

TEST(JsonTest, WriteParsesBackIdentically) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::String("fleet.retries"));
  obj.Set("value", JsonValue::Number(3));
  obj.Set("fraction", JsonValue::Number(1.25));
  obj.Set("flag", JsonValue::Bool(true));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(1));
  arr.Append(JsonValue::Null());
  obj.Set("list", std::move(arr));

  const std::string text = WriteJson(obj);
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->StringOr("name", ""), "fleet.retries");
  EXPECT_DOUBLE_EQ(parsed->NumberOr("value", 0), 3.0);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("fraction", 0), 1.25);
  EXPECT_TRUE(parsed->Find("flag")->as_bool());
  EXPECT_EQ(parsed->Find("list")->items().size(), 2u);
  // Round-tripping the written text is a fixed point.
  EXPECT_EQ(WriteJson(*parsed), text);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Number(1));
  obj.Set("apple", JsonValue::Number(2));
  const std::string text = WriteJson(obj);
  EXPECT_LT(text.find("zebra"), text.find("apple"));
  // Re-setting an existing key updates in place, not re-appends.
  obj.Set("zebra", JsonValue::Number(9));
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_DOUBLE_EQ(obj.NumberOr("zebra", 0), 9.0);
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  const std::string escaped = JsonEscape("a\"b\\c\nd\te\x01");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd\\te\\u0001");
  // And the writer applies the same escaping inside documents.
  JsonValue v = JsonValue::String("a\"b");
  auto round = ParseJson(WriteJson(v));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->as_string(), "a\"b");
}

TEST(JsonTest, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(JsonNumber(42), "42");
  EXPECT_EQ(JsonNumber(-7), "-7");
  EXPECT_EQ(WriteJson(JsonValue::Number(1000)), "1000");
  // Non-integral values keep a fraction that round-trips.
  auto parsed = ParseJson(JsonNumber(0.125));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->as_number(), 0.125);
}

}  // namespace
}  // namespace obs
}  // namespace vdp
