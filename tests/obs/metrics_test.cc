// MetricsRegistry unit coverage: counter/gauge/histogram semantics, stable
// pointers, snapshots, and concurrent updates (the whole point of the
// relaxed-atomic design is that hot paths may hammer these from many
// threads).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace vdp {
namespace obs {
namespace {

TEST(MetricsTest, CounterAddsAndResets) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsTest, GaugeTracksLevelAndHighWater) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(5);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 5);
  g->Add(10);
  EXPECT_EQ(g->value(), 13);
  EXPECT_EQ(g->max(), 13);
  g->Add(-13);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 13);  // high-water survives the drain
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {10.0, 100.0});
  h->Record(5);     // bucket 0 (<= 10)
  h->Record(50);    // bucket 1 (<= 100)
  h->Record(5000);  // bucket 2 (+inf)
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 5055.0);
  auto counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 3u);  // bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsTest, LogBucketsAreGeometric) {
  // One bound per decade: exactly the powers of ten, inclusive both ends.
  auto decade = Histogram::LogBuckets(1.0, 1000.0, 1);
  ASSERT_EQ(decade.size(), 4u);
  EXPECT_DOUBLE_EQ(decade[0], 1.0);
  EXPECT_DOUBLE_EQ(decade[1], 10.0);
  EXPECT_DOUBLE_EQ(decade[2], 100.0);
  EXPECT_DOUBLE_EQ(decade[3], 1000.0);

  // per_decade bounds per power of ten: adjacent ratio is 10^(1/per_decade),
  // uniformly across the range (the HDR property).
  auto ladder = Histogram::LogBuckets(1.0, 1e6, 6);
  ASSERT_EQ(ladder.size(), 37u);
  const double ratio = std::pow(10.0, 1.0 / 6.0);
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_NEAR(ladder[i] / ladder[i - 1], ratio, 1e-9) << "at " << i;
  }

  // Degenerate inputs return no bounds rather than UB.
  EXPECT_TRUE(Histogram::LogBuckets(0.0, 100.0, 6).empty());
  EXPECT_TRUE(Histogram::LogBuckets(10.0, 1.0, 6).empty());
  EXPECT_TRUE(Histogram::LogBuckets(1.0, 100.0, 0).empty());

  // The default latency ladder spans 1us..100s at 6 per decade.
  auto latency = Histogram::DefaultLatencyBuckets();
  ASSERT_EQ(latency.size(), 49u);
  EXPECT_DOUBLE_EQ(latency.front(), 1.0);
  EXPECT_NEAR(latency.back(), 1e8, 1.0);
}

TEST(MetricsTest, PercentilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.pct", {10.0, 20.0, 30.0});
  // 10 values in (10, 20]: every quantile lands inside bucket 1 and
  // interpolates linearly between its bounds.
  for (int i = 0; i < 10; ++i) {
    h->Record(15.0);
  }
  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& s = snap.histograms[0];
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 15.0);   // rank 5 of 10 -> midpoint
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 20.0);   // rank 10 -> upper bound
  EXPECT_DOUBLE_EQ(s.P90(), 19.0);
  EXPECT_GT(s.P99(), s.P90());

  // An empty histogram reports 0 for every percentile.
  Histogram* empty = registry.GetHistogram("test.pct_empty", {1.0});
  (void)empty;
  auto snap2 = registry.Snapshot();
  for (const HistogramSnapshot& hist : snap2.histograms) {
    if (hist.name == "test.pct_empty") {
      EXPECT_DOUBLE_EQ(hist.P50(), 0.0);
      EXPECT_DOUBLE_EQ(hist.P99(), 0.0);
    }
  }
}

TEST(MetricsTest, PercentileOverflowBucketClampsToLastBound) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.pct_overflow", {10.0, 100.0});
  h->Record(5.0);
  h->Record(1e9);  // overflow bucket
  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  // The overflow bucket has no upper bound to interpolate toward; the
  // estimate clamps to the last finite bound instead of inventing one.
  EXPECT_DOUBLE_EQ(snap.histograms[0].Percentile(0.99), 100.0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same.name");
  Counter* b = registry.GetCounter("same.name");
  EXPECT_EQ(a, b);
  // First registration fixes histogram bounds; later bounds are ignored.
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {9.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(2);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("c.gauge")->Set(7);
  registry.GetHistogram("d.hist", {1.0})->Record(0.5);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.counter");
  EXPECT_EQ(snap.counters[1].name, "b.counter");
  EXPECT_EQ(snap.CounterValue("b.counter"), 2u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].counts.size(), 2u);
}

TEST(MetricsTest, ResetAllZeroesEverythingKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("x");
  Gauge* g = registry.GetGauge("y");
  Histogram* h = registry.GetHistogram("z", {1.0});
  c->Add(5);
  g->Set(5);
  h->Record(5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 0);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();  // the same pointer still feeds the same registry slot
  EXPECT_EQ(registry.Snapshot().CounterValue("x"), 1u);
}

TEST(MetricsTest, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("concurrent");
  Histogram* h = registry.GetHistogram("concurrent.hist", {100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, GlobalRegistryHelpersResolve) {
  // The canonical names resolve against the global registry; values are not
  // asserted (other tests in this process may have bumped them).
  EXPECT_NE(GlobalCounter(kFleetRetries), nullptr);
  EXPECT_NE(GlobalGauge(kShardQueueDepth), nullptr);
  EXPECT_NE(GlobalHistogram(kVerifyShardMs), nullptr);
  EXPECT_EQ(GlobalCounter(kFleetRetries), GlobalCounter(kFleetRetries));
}

}  // namespace
}  // namespace obs
}  // namespace vdp
