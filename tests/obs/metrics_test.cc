// MetricsRegistry unit coverage: counter/gauge/histogram semantics, stable
// pointers, snapshots, and concurrent updates (the whole point of the
// relaxed-atomic design is that hot paths may hammer these from many
// threads).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace vdp {
namespace obs {
namespace {

TEST(MetricsTest, CounterAddsAndResets) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsTest, GaugeTracksLevelAndHighWater) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(5);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 5);
  g->Add(10);
  EXPECT_EQ(g->value(), 13);
  EXPECT_EQ(g->max(), 13);
  g->Add(-13);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 13);  // high-water survives the drain
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {10.0, 100.0});
  h->Record(5);     // bucket 0 (<= 10)
  h->Record(50);    // bucket 1 (<= 100)
  h->Record(5000);  // bucket 2 (+inf)
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 5055.0);
  auto counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 3u);  // bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same.name");
  Counter* b = registry.GetCounter("same.name");
  EXPECT_EQ(a, b);
  // First registration fixes histogram bounds; later bounds are ignored.
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {9.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(2);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("c.gauge")->Set(7);
  registry.GetHistogram("d.hist", {1.0})->Record(0.5);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.counter");
  EXPECT_EQ(snap.counters[1].name, "b.counter");
  EXPECT_EQ(snap.CounterValue("b.counter"), 2u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].counts.size(), 2u);
}

TEST(MetricsTest, ResetAllZeroesEverythingKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("x");
  Gauge* g = registry.GetGauge("y");
  Histogram* h = registry.GetHistogram("z", {1.0});
  c->Add(5);
  g->Set(5);
  h->Record(5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 0);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();  // the same pointer still feeds the same registry slot
  EXPECT_EQ(registry.Snapshot().CounterValue("x"), 1u);
}

TEST(MetricsTest, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("concurrent");
  Histogram* h = registry.GetHistogram("concurrent.hist", {100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, GlobalRegistryHelpersResolve) {
  // The canonical names resolve against the global registry; values are not
  // asserted (other tests in this process may have bumped them).
  EXPECT_NE(GlobalCounter(kFleetRetries), nullptr);
  EXPECT_NE(GlobalGauge(kShardQueueDepth), nullptr);
  EXPECT_NE(GlobalHistogram(kVerifyShardMs), nullptr);
  EXPECT_EQ(GlobalCounter(kFleetRetries), GlobalCounter(kFleetRetries));
}

}  // namespace
}  // namespace obs
}  // namespace vdp
