// MetricsRegistry and TraceCollector under snapshot-while-writing loads,
// written for the tsan CI job. The observability layer promises lock-free
// hot-path updates with mutex-guarded snapshots; these tests put both sides
// of that promise under a sanitizer that fails on any unsynchronized access.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vdp {
namespace obs {
namespace {

// Writers hammer counters/gauges/histograms resolved once, while a reader
// thread interleaves Snapshot() and ResetAll(). Snapshots may land before or
// after any individual update, but every observed value must be internally
// sane and the final quiesced snapshot exact.
TEST(ObsStressTest, SnapshotAndResetUnderConcurrentRecording) {
  MetricsRegistry registry;
  Counter* events = registry.GetCounter("stress.events");
  Gauge* depth = registry.GetGauge("stress.depth");
  Histogram* lat = registry.GetHistogram("stress.latency_us");

  constexpr size_t kWriters = 3;
  constexpr size_t kPerWriter = 20'000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      MetricsSnapshot snap = registry.Snapshot();
      for (const HistogramSnapshot& h : snap.histograms) {
        uint64_t bucket_total = 0;
        for (uint64_t c : h.counts) {
          bucket_total += c;
        }
        // count_ and the buckets are updated by separate relaxed atomics, so
        // a mid-flight snapshot may see them apart -- but never torn values.
        EXPECT_LE(h.count, kWriters * kPerWriter);
        EXPECT_LE(bucket_total, kWriters * kPerWriter);
      }
      registry.ResetAll();
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        events->Increment();
        depth->Add(i % 2 == 0 ? 1 : -1);
        lat->Record(static_cast<double>((w * kPerWriter + i) % 1000));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  // Quiesced: one more reset, a known burst, an exact snapshot.
  registry.ResetAll();
  events->Add(7);
  EXPECT_EQ(registry.Snapshot().CounterValue("stress.events"), 7u);
}

// Same-name registration from many threads must converge on one instance
// (the registry's mutex is the only thing making that true).
TEST(ObsStressTest, ConcurrentRegistrationConverges) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 4;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 500; ++i) {
        Counter* c = registry.GetCounter("stress.same_name");
        c->Increment();
        seen[t] = c;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_EQ(registry.Snapshot().CounterValue("stress.same_name"), kThreads * 500u);
}

// Span recording from worker threads, remote adoption from a fleet thread,
// and Spans()/TakeSpans() snapshots from a reader -- all concurrent, the way
// a streaming run with remote lanes actually drives the collector.
TEST(ObsStressTest, TraceCollectorConcurrentRecordAdoptSnapshot) {
  TraceCollector collector;
  constexpr size_t kRecorders = 3;
  constexpr size_t kSpansEach = 2'000;
  std::atomic<bool> stop_reader{false};
  std::atomic<size_t> taken{0};

  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      std::vector<SpanRecord> copy = collector.Spans();
      for (const SpanRecord& s : copy) {
        EXPECT_EQ(s.trace_id, collector.trace_id());
      }
      taken.fetch_add(collector.TakeSpans().size(), std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> recorders;
  for (size_t r = 0; r < kRecorders; ++r) {
    recorders.emplace_back([&, r] {
      for (size_t i = 0; i < kSpansEach; ++i) {
        if (i % 3 == 0) {
          // Remote adoption path: a batch of two foreign spans rebased in.
          std::vector<SpanRecord> remote(2);
          remote[0].name = "remote";
          remote[0].span_id = NextSpanId();
          remote[1].name = "remote";
          remote[1].span_id = NextSpanId();
          collector.AdoptRemote(std::move(remote), /*rebase_start_us=*/i);
        } else {
          TraceSpan span(&collector, "work", collector.RootContext(),
                         "rec:" + std::to_string(r));
          span.set_detail("i=" + std::to_string(i));
        }
      }
    });
  }
  for (std::thread& t : recorders) {
    t.join();
  }
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  taken.fetch_add(collector.TakeSpans().size(), std::memory_order_relaxed);

  // 1/3 of iterations adopted two spans, the rest recorded one.
  size_t expected = 0;
  for (size_t i = 0; i < kSpansEach; ++i) {
    expected += (i % 3 == 0) ? 2 : 1;
  }
  EXPECT_EQ(taken.load(), kRecorders * expected);
}

}  // namespace
}  // namespace obs
}  // namespace vdp
