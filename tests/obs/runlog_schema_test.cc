// The golden-schema test for vdp.runlog/v1: every line kind the writer can
// emit is pinned field-by-field, and ValidateRunLogLine (the authoritative
// schema) must accept exactly those shapes. A writer change that adds,
// renames, or retypes a field fails here first -- that is the point: the
// run-log is consumed by CI trend jobs that outlive any one PR.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/runlog.h"

namespace vdp {
namespace obs {
namespace {

class RunLogSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "runlog_schema_" + std::to_string(getpid()) + ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<JsonValue> ReadLines() {
    std::vector<JsonValue> lines;
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      auto parsed = ParseJson(line);
      EXPECT_TRUE(parsed.has_value()) << "unparseable run-log line: " << line;
      if (parsed.has_value()) {
        lines.push_back(std::move(*parsed));
      }
    }
    return lines;
  }

  static std::set<std::string> Keys(const JsonValue& object) {
    std::set<std::string> keys;
    for (const auto& [k, v] : object.members()) {
      keys.insert(k);
    }
    return keys;
  }

  // Every emitted line must satisfy the envelope + the validator.
  static void ExpectValid(const JsonValue& line) {
    std::string error;
    EXPECT_TRUE(ValidateRunLogLine(line, &error)) << error;
    EXPECT_EQ(line.StringOr("schema", ""), kRunLogSchema);
    EXPECT_GT(line.NumberOr("t_ms", 0), 0.0);
    EXPECT_GT(line.NumberOr("pid", 0), 0.0);
  }

  std::string path_;
};

TEST_F(RunLogSchemaTest, HeaderLineIsGolden) {
  {
    auto log = RunLogWriter::Open(path_);
    ASSERT_NE(log, nullptr);
    RunHeader header;
    header.tool = "golden_test";
    header.group = "modp-256";
    header.n_uploads = 4096;
    header.num_shards = 8;
    header.pool_threads = 4;
    header.verify_workers = 3;
    header.remote_endpoints = 2;
    header.notes = "schema pin";
    log->Header(header);
  }
  auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 1u);
  ExpectValid(lines[0]);
  EXPECT_EQ(lines[0].StringOr("kind", ""), "header");
  // The golden field set. A new field here is a schema change: update this
  // test, ValidateRunLogLine, and README "Observability" together.
  EXPECT_EQ(Keys(lines[0]),
            (std::set<std::string>{"schema", "kind", "t_ms", "pid", "tool", "git_sha",
                                   "hardware_concurrency", "pool_threads",
                                   "verify_workers", "remote_endpoints", "n_uploads",
                                   "num_shards", "group", "notes"}));
  EXPECT_EQ(lines[0].StringOr("tool", ""), "golden_test");
  EXPECT_DOUBLE_EQ(lines[0].NumberOr("n_uploads", 0), 4096);
  EXPECT_DOUBLE_EQ(lines[0].NumberOr("pool_threads", 0), 4);
  EXPECT_FALSE(lines[0].StringOr("git_sha", "").empty());
  EXPECT_GT(lines[0].NumberOr("hardware_concurrency", 0), 0.0);
}

TEST_F(RunLogSchemaTest, StagesLineIsGolden) {
  {
    auto log = RunLogWriter::Open(path_);
    ASSERT_NE(log, nullptr);
    log->Stages("clean", "sharded",
                {{"ingest", 1.5}, {"verify", 90.25}, {"combine", 0.5}},
                /*total_ms=*/92.5, {{"accepted", 4095}});
  }
  auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 1u);
  ExpectValid(lines[0]);
  EXPECT_EQ(lines[0].StringOr("kind", ""), "stages");
  EXPECT_EQ(Keys(lines[0]),
            (std::set<std::string>{"schema", "kind", "t_ms", "pid", "scenario",
                                   "backend", "stages", "total_ms", "accepted"}));
  const JsonValue* stages = lines[0].Find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(Keys(*stages), (std::set<std::string>{"ingest", "verify", "combine"}));
  EXPECT_DOUBLE_EQ(stages->NumberOr("verify", 0), 90.25);
  EXPECT_DOUBLE_EQ(lines[0].NumberOr("total_ms", 0), 92.5);
}

TEST_F(RunLogSchemaTest, MetricAndHistogramLinesAreGolden) {
  {
    auto log = RunLogWriter::Open(path_);
    ASSERT_NE(log, nullptr);
    MetricsRegistry registry;
    registry.GetCounter(kFleetRetries)->Add(3);
    registry.GetGauge(kShardQueueDepth)->Set(5);
    registry.GetHistogram(kVerifyShardMs, {10.0, 100.0})->Record(42.0);
    log->Metrics(registry.Snapshot());
  }
  auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 3u);  // counter, gauge, histogram
  for (const auto& line : lines) {
    ExpectValid(line);
  }
  EXPECT_EQ(lines[0].StringOr("kind", ""), "metric");
  EXPECT_EQ(Keys(lines[0]), (std::set<std::string>{"schema", "kind", "t_ms", "pid",
                                                   "name", "type", "value"}));
  EXPECT_EQ(lines[0].StringOr("name", ""), kFleetRetries);
  EXPECT_EQ(lines[0].StringOr("type", ""), "counter");
  EXPECT_DOUBLE_EQ(lines[0].NumberOr("value", 0), 3);

  EXPECT_EQ(Keys(lines[1]), (std::set<std::string>{"schema", "kind", "t_ms", "pid",
                                                   "name", "type", "value", "max"}));
  EXPECT_EQ(lines[1].StringOr("type", ""), "gauge");
  EXPECT_DOUBLE_EQ(lines[1].NumberOr("max", 0), 5);

  EXPECT_EQ(lines[2].StringOr("kind", ""), "histogram");
  EXPECT_EQ(Keys(lines[2]),
            (std::set<std::string>{"schema", "kind", "t_ms", "pid", "name", "count",
                                   "sum", "bounds", "counts", "p50", "p90", "p99"}));
  EXPECT_EQ(lines[2].Find("counts")->items().size(),
            lines[2].Find("bounds")->items().size() + 1);
  // The percentile fields are estimates derived from the buckets; the
  // validator accepts lines without them (pre-PR-10 writers) but requires
  // all three once any is present.
  EXPECT_GE(lines[2].NumberOr("p99", -1), lines[2].NumberOr("p50", -1));
}

TEST_F(RunLogSchemaTest, SpanLineIsGoldenWithHexIds) {
  {
    auto log = RunLogWriter::Open(path_);
    ASSERT_NE(log, nullptr);
    SpanRecord span;
    span.name = "verify";
    span.trace_id = 0xdeadbeef;
    span.span_id = 0x10;
    span.parent_span_id = 0;
    span.start_us = 1000;
    span.duration_us = 2500;
    span.proc = "server:1";
    span.detail = "shard=3";
    log->Spans({span});
  }
  auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 1u);
  ExpectValid(lines[0]);
  EXPECT_EQ(lines[0].StringOr("kind", ""), "span");
  EXPECT_EQ(Keys(lines[0]),
            (std::set<std::string>{"schema", "kind", "t_ms", "pid", "name", "trace_id",
                                   "span_id", "parent_span_id", "start_us",
                                   "duration_us", "proc", "detail"}));
  // 64-bit ids travel as lowercase hex strings (JSON numbers are doubles).
  EXPECT_EQ(lines[0].StringOr("trace_id", ""), "deadbeef");
  EXPECT_EQ(lines[0].StringOr("span_id", ""), "10");
  EXPECT_EQ(lines[0].StringOr("parent_span_id", ""), "0");
  EXPECT_EQ(lines[0].StringOr("proc", ""), "server:1");
}

TEST_F(RunLogSchemaTest, ValidatorRejectsViolations) {
  std::string error;
  // Not an object.
  EXPECT_FALSE(ValidateRunLogLine(JsonValue::Number(1), &error));

  auto make_envelope = [](const std::string& kind) {
    JsonValue line = JsonValue::Object();
    line.Set("schema", JsonValue::String(kRunLogSchema));
    line.Set("kind", JsonValue::String(kind));
    line.Set("t_ms", JsonValue::Number(1));
    line.Set("pid", JsonValue::Number(2));
    return line;
  };

  // Wrong schema string.
  JsonValue wrong_schema = make_envelope("metric");
  wrong_schema.Set("schema", JsonValue::String("vdp.runlog/v2"));
  EXPECT_FALSE(ValidateRunLogLine(wrong_schema, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  // Unknown kind.
  EXPECT_FALSE(ValidateRunLogLine(make_envelope("telemetry"), &error));
  EXPECT_NE(error.find("unknown kind"), std::string::npos);

  // metric without a value.
  JsonValue metric = make_envelope("metric");
  metric.Set("name", JsonValue::String("x"));
  metric.Set("type", JsonValue::String("counter"));
  EXPECT_FALSE(ValidateRunLogLine(metric, &error));
  metric.Set("value", JsonValue::Number(1));
  EXPECT_TRUE(ValidateRunLogLine(metric, &error)) << error;

  // gauge requires max.
  metric.Set("type", JsonValue::String("gauge"));
  EXPECT_FALSE(ValidateRunLogLine(metric, &error));

  // histogram counts/bounds mismatch.
  JsonValue hist = make_envelope("histogram");
  hist.Set("name", JsonValue::String("h"));
  hist.Set("count", JsonValue::Number(1));
  hist.Set("sum", JsonValue::Number(1));
  JsonValue bounds = JsonValue::Array();
  bounds.Append(JsonValue::Number(10));
  JsonValue counts = JsonValue::Array();
  counts.Append(JsonValue::Number(1));  // must be bounds+1 = 2
  hist.Set("bounds", std::move(bounds));
  hist.Set("counts", std::move(counts));
  EXPECT_FALSE(ValidateRunLogLine(hist, &error));
  EXPECT_NE(error.find("bounds+1"), std::string::npos);

  // span with an empty span_id.
  JsonValue span = make_envelope("span");
  span.Set("name", JsonValue::String("verify"));
  span.Set("trace_id", JsonValue::String("ab"));
  span.Set("span_id", JsonValue::String(""));
  span.Set("parent_span_id", JsonValue::String("0"));
  span.Set("proc", JsonValue::String("driver"));
  span.Set("start_us", JsonValue::Number(0));
  span.Set("duration_us", JsonValue::Number(1));
  EXPECT_FALSE(ValidateRunLogLine(span, &error));
}

TEST_F(RunLogSchemaTest, FromEnvAppendsToTheNamedFile) {
  setenv("VDP_METRICS_OUT", path_.c_str(), 1);
  {
    auto first = RunLogWriter::FromEnv();
    ASSERT_NE(first, nullptr);
    RunHeader header;
    header.tool = "first_session";
    first->Header(header);
  }
  {
    auto second = RunLogWriter::FromEnv();  // append, not truncate
    ASSERT_NE(second, nullptr);
    RunHeader header;
    header.tool = "second_session";
    second->Header(header);
  }
  unsetenv("VDP_METRICS_OUT");
  auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].StringOr("tool", ""), "first_session");
  EXPECT_EQ(lines[1].StringOr("tool", ""), "second_session");

  unsetenv("VDP_METRICS_OUT");
  EXPECT_EQ(RunLogWriter::FromEnv(), nullptr);
}

TEST_F(RunLogSchemaTest, IdToHexGoldenValues) {
  EXPECT_EQ(IdToHex(0), "0");
  EXPECT_EQ(IdToHex(1), "1");
  EXPECT_EQ(IdToHex(0xdeadbeef), "deadbeef");
  EXPECT_EQ(IdToHex(0xffffffffffffffffULL), "ffffffffffffffff");
  EXPECT_EQ(IdToHex(0x0102), "102");  // no leading zeros
}

}  // namespace
}  // namespace obs
}  // namespace vdp
