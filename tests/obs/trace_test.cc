// TraceCollector / TraceSpan unit coverage: RAII recording, parenting,
// null-collector no-ops, and the AdoptRemote rebase that stitches a remote
// process's spans onto the driver's timeline.
#include <gtest/gtest.h>

#include <set>

#include "src/obs/trace.h"

namespace vdp {
namespace obs {
namespace {

TEST(TraceTest, SpanRecordsOnEndWithParentage) {
  TraceCollector collector;
  TraceSpan root(&collector, "verify", collector.RootContext());
  const TraceContext root_ctx = root.context();
  EXPECT_TRUE(root_ctx.active());
  {
    TraceSpan child(&collector, "shard", root_ctx);
    child.set_detail("shard=3");
  }  // destructor records
  root.End();

  auto spans = collector.TakeSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Child recorded first (ended first).
  EXPECT_EQ(spans[0].name, "shard");
  EXPECT_EQ(spans[0].parent_span_id, root_ctx.span_id);
  EXPECT_EQ(spans[0].trace_id, collector.trace_id());
  EXPECT_EQ(spans[0].detail, "shard=3");
  EXPECT_EQ(spans[1].name, "verify");
  EXPECT_EQ(spans[1].parent_span_id, 0u);  // root
}

TEST(TraceTest, EndIsIdempotent) {
  TraceCollector collector;
  TraceSpan span(&collector, "verify", collector.RootContext());
  span.End();
  span.End();  // second End must not double-record
  EXPECT_EQ(collector.TakeSpans().size(), 1u);
}

TEST(TraceTest, NullCollectorIsANoOp) {
  TraceSpan span(nullptr, "verify", TraceContext{});
  EXPECT_FALSE(span.context().active());
  span.set_detail("ignored");
  span.End();  // must not crash
}

TEST(TraceTest, SpanIdsAreUniqueAndNonzero) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    uint64_t id = NextSpanId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate span id " << id;
  }
}

TEST(TraceTest, AdoptRemoteRebasesOntoDispatchTimeline) {
  TraceCollector driver;
  // A remote process recorded these against its own epoch (task receipt).
  std::vector<SpanRecord> remote;
  SpanRecord shard;
  shard.name = "shard";
  shard.trace_id = 999;  // whatever the remote stamped; adoption overrides
  shard.span_id = 42;
  shard.parent_span_id = 7;  // the driver-side dispatch span
  shard.start_us = 100;
  shard.duration_us = 500;
  shard.proc = "server:1";
  remote.push_back(shard);

  driver.AdoptRemote(remote, /*rebase_start_us=*/10'000);
  auto spans = driver.TakeSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, driver.trace_id());  // joined this trace
  EXPECT_EQ(spans[0].span_id, 42u);                 // identity preserved
  EXPECT_EQ(spans[0].parent_span_id, 7u);           // parent link preserved
  EXPECT_EQ(spans[0].start_us, 10'100u);            // rebased, offset kept
  EXPECT_EQ(spans[0].duration_us, 500u);            // durations never rescaled
}

TEST(TraceTest, StartOffsetsAreMonotoneAgainstTheEpoch) {
  TraceCollector collector;
  const uint64_t t0 = collector.NowUs();
  TraceSpan span(&collector, "verify", collector.RootContext());
  span.End();
  auto spans = collector.TakeSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].start_us, t0);
  EXPECT_LE(spans[0].start_us, collector.NowUs());
}

TEST(TraceTest, MoveTransfersOwnershipOfTheRecording) {
  TraceCollector collector;
  TraceSpan a(&collector, "verify", collector.RootContext());
  TraceSpan b = std::move(a);
  a.End();  // moved-from: no-op
  EXPECT_TRUE(collector.TakeSpans().empty());
  b.End();
  EXPECT_EQ(collector.TakeSpans().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace vdp
