// HMAC-SHA256 against the RFC 4231 test vectors (cases 1-4, 6, 7: short
// key, "Jefe", long data, streaming split points, oversized key hashed
// down, oversized key + long data), plus the constant-time verifier.
#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/common/hmac.h"

namespace vdp {
namespace {

std::string MacHex(const std::string& key_hex, const std::string& data_hex) {
  auto key = HexDecode(key_hex);
  auto data = HexDecode(data_hex);
  EXPECT_TRUE(key.has_value() && data.has_value());
  auto tag = HmacSha256::Mac(*key, *data);
  return HexEncode(BytesView(tag.data(), tag.size()));
}

// RFC 4231 section 4.2: 20-byte 0x0b key, "Hi There".
TEST(HmacSha256Test, Rfc4231Case1) {
  EXPECT_EQ(MacHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "4869205468657265"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// 4.3: key "Jefe", data "what do ya want for nothing?".
TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(MacHex("4a656665",
                   "7768617420646f2079612077616e7420666f72206e6f7468696e673f"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// 4.4: 20-byte 0xaa key, 50 bytes of 0xdd.
TEST(HmacSha256Test, Rfc4231Case3) {
  EXPECT_EQ(MacHex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                   std::string(100, 'd')),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// 4.5: 25-byte incrementing key, 50 bytes of 0xcd.
TEST(HmacSha256Test, Rfc4231Case4) {
  auto key = HexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819");
  ASSERT_TRUE(key.has_value());
  Bytes data(50, 0xcd);
  auto tag = HmacSha256::Mac(*key, data);
  EXPECT_EQ(HexEncode(BytesView(tag.data(), tag.size())),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// 4.7: 131-byte 0xaa key (hashed down per RFC 2104), long test header.
TEST(HmacSha256Test, Rfc4231Case6OversizedKey) {
  Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto tag = HmacSha256::Mac(key, ToBytes(msg));
  EXPECT_EQ(HexEncode(BytesView(tag.data(), tag.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// 4.8: oversized key AND multi-block data.
TEST(HmacSha256Test, Rfc4231Case7OversizedKeyLongData) {
  Bytes key(131, 0xaa);
  const std::string msg =
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.";
  auto tag = HmacSha256::Mac(key, ToBytes(msg));
  EXPECT_EQ(HexEncode(BytesView(tag.data(), tag.size())),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// Streaming Update across arbitrary split points equals the one-shot MAC.
TEST(HmacSha256Test, StreamingMatchesOneShot) {
  Bytes key(32, 0x42);
  Bytes data;
  for (size_t i = 0; i < 300; ++i) {
    data.push_back(static_cast<uint8_t>(i * 7));
  }
  auto oneshot = HmacSha256::Mac(key, data);
  for (size_t split : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                       size_t{150}, size_t{299}, size_t{300}}) {
    HmacSha256 mac(key);
    mac.Update(BytesView(data.data(), split));
    mac.Update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(mac.Finalize(), oneshot) << "split at " << split;
  }
}

TEST(HmacSha256Test, EmptyKeyAndData) {
  // HMAC with empty key and empty data (standard reference value).
  auto tag = HmacSha256::Mac(BytesView(), BytesView());
  EXPECT_EQ(HexEncode(BytesView(tag.data(), tag.size())),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

TEST(HmacSha256Test, VerifyIsExact) {
  Bytes key(16, 0x01);
  Bytes data = ToBytes("payload");
  auto tag = HmacSha256::Mac(key, data);
  EXPECT_TRUE(HmacSha256::Verify(tag, BytesView(tag.data(), tag.size())));
  auto wrong = tag;
  wrong[31] ^= 0x01;
  EXPECT_FALSE(HmacSha256::Verify(tag, BytesView(wrong.data(), wrong.size())));
  EXPECT_FALSE(HmacSha256::Verify(tag, BytesView(tag.data(), tag.size() - 1)));
}

}  // namespace
}  // namespace vdp
