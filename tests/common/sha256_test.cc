#include "src/common/sha256.h"

#include <gtest/gtest.h>

#include "src/common/hex.h"

namespace vdp {
namespace {

std::string HashHex(const std::string& msg) {
  auto digest = Sha256::Hash(ToBytes(msg));
  return HexEncode(BytesView(digest.data(), digest.size()));
}

// FIPS 180-4 known-answer tests.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto digest = h.Finalize();
  EXPECT_EQ(HexEncode(BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly and at length";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(ToBytes(msg.substr(0, split)));
    h.Update(ToBytes(msg.substr(split)));
    EXPECT_EQ(h.Finalize(), Sha256::Hash(ToBytes(msg))) << "split=" << split;
  }
}

TEST(Sha256Test, BoundaryLengths) {
  // Exercise padding across the 55/56/63/64/65-byte boundaries.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 h;
    h.Update(ToBytes(msg));
    auto streamed = h.Finalize();
    EXPECT_EQ(streamed, Sha256::Hash(ToBytes(msg))) << "len=" << len;
  }
}

TEST(Sha256Test, TaggedHashSeparatesDomains) {
  Bytes msg = ToBytes("same message");
  auto a = Sha256::TaggedHash(StrView("domain-a"), msg);
  auto b = Sha256::TaggedHash(StrView("domain-b"), msg);
  EXPECT_NE(a, b);
  // And tagged differs from plain.
  EXPECT_NE(a, Sha256::Hash(msg));
}

TEST(Sha256Test, TaggedHashDeterministic) {
  Bytes msg = ToBytes("payload");
  EXPECT_EQ(Sha256::TaggedHash(StrView("d"), msg), Sha256::TaggedHash(StrView("d"), msg));
}

}  // namespace
}  // namespace vdp
