#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace vdp {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10000;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kCount, [&](size_t i) { sum.fetch_add(i * i); });
  uint64_t expected = 0;
  for (size_t i = 0; i < kCount; ++i) {
    expected += i * i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  GlobalPool().ParallelFor(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace vdp
