#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vdp {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10000;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kCount, [&](size_t i) { sum.fetch_add(i * i); });
  uint64_t expected = 0;
  for (size_t i = 0; i < kCount; ++i) {
    expected += i * i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  GlobalPool().ParallelFor(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

// Regression for GlobalPool lifetime: this file-scope static is constructed
// before main() (and before the pool's function-local static), so its
// destructor runs *after* the pool's would -- exactly the static-teardown
// ordering that used to deadlock when the pool joined its workers in a
// destructor. With the intentionally-leaked pool the late ParallelFor still
// completes; with the old code this hung the test binary (ctest --timeout
// turns that into a failure).
struct StaticPoolUser {
  ~StaticPoolUser() {
    std::atomic<int> count{0};
    GlobalPool().ParallelFor(8, [&](size_t) { count.fetch_add(1); });
    if (count.load() != 8) {
      std::abort();  // gtest is gone by now; a hard abort fails the binary
    }
  }
};
StaticPoolUser static_pool_user;

TEST(ThreadPoolTest, GlobalPoolUsableAcrossStaticTeardown) {
  // Force the pool's static to be constructed after static_pool_user so the
  // destructor ordering in the comment above actually holds. The real
  // assertion runs in ~StaticPoolUser after main() returns.
  EXPECT_GE(GlobalPool().worker_count(), 1u);
}

// Regression: a throwing iteration used to let the calling thread unwind past
// the completion wait while queued shards still referenced its (destroyed)
// stack frame -- a use-after-free under ASan and a lost-wakeup hang
// otherwise. ParallelFor must now drain every shard, rethrow the first
// exception on the calling thread, and leave the pool fully reusable.
TEST(ThreadPoolTest, ThrowingIterationPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](size_t i) {
                         started.fetch_add(1);
                         if (i == 17) {
                           throw std::runtime_error("iteration 17 failed");
                         }
                       }),
      std::runtime_error);
  // Remaining iterations are skipped once a shard has thrown (the abort flag
  // stops the other shards), so not all 1000 need to have started -- but at
  // least the throwing one did.
  EXPECT_GE(started.load(), 1);
  EXPECT_LE(started.load(), 1000);

  // The pool must still work: the control block was heap-owned, no worker
  // dangled into the unwound stack, and no task remained queued.
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(100, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, EveryIterationThrowingStillRethrowsOnce) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(64, [](size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ThrowOnSingleShardPathPropagates) {
  // count == 1 runs inline on the calling thread; the exception must still
  // surface (and trivially cannot dangle).
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1, [](size_t) { throw std::runtime_error("inline"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ConcurrentCallersWithExceptionsDoNotDeadlock) {
  // Two pools hammered with throwing and non-throwing work interleaved; the
  // shared_ptr control block keeps every queued shard self-contained.
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    if (round % 3 == 0) {
      EXPECT_THROW(pool.ParallelFor(32, [](size_t i) {
        if (i % 4 == 0) {
          throw std::runtime_error("sporadic");
        }
      }),
                   std::runtime_error);
    } else {
      std::atomic<int> count{0};
      pool.ParallelFor(32, [&](size_t) { count.fetch_add(1); });
      EXPECT_EQ(count.load(), 32);
    }
  }
}

}  // namespace
}  // namespace vdp
