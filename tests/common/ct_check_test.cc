// Pins the timing-audit engine's math and decision rule. The statistical
// checks run on synthetic samples (deterministic, noise-free); the one live
// audit uses a deliberately enormous class separation so it cannot flake on
// a loaded CI machine. The real constant-time verdicts over the crypto
// primitives live in tools/ct_audit.cc, which gets CI time budgets a unit
// test should not.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/ct_check.h"

namespace vdp {
namespace {

TEST(WelchTTest, IdenticalPopulationsScoreZero) {
  std::vector<double> a = {10, 11, 12, 13, 14, 15};
  EXPECT_DOUBLE_EQ(WelchT(a, a), 0.0);
}

TEST(WelchTTest, SeparatedPopulationsScoreLarge) {
  std::vector<double> fast;
  std::vector<double> slow;
  for (int i = 0; i < 200; ++i) {
    fast.push_back(100.0 + (i % 7));
    slow.push_back(200.0 + (i % 5));
  }
  const double t = WelchT(fast, slow);
  EXPECT_LT(t, -10.0);  // sign follows (mean_a - mean_b)
  TimingAuditResult result;
  result.t_stat = t;
  EXPECT_TRUE(result.Leaks());
}

TEST(WelchTTest, DegenerateSamplesScoreZero) {
  EXPECT_DOUBLE_EQ(WelchT({}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(WelchT({1.0}, {1.0, 2.0}), 0.0);
  // Zero variance in both populations, equal means: no separation.
  EXPECT_DOUBLE_EQ(WelchT({5.0, 5.0}, {5.0, 5.0}), 0.0);
}

TEST(TimingAuditResultTest, ThresholdIsTwoSided) {
  TimingAuditResult result;
  result.t_stat = 10.5;
  EXPECT_TRUE(result.Leaks());
  result.t_stat = -10.5;
  EXPECT_TRUE(result.Leaks());
  result.t_stat = 9.5;
  EXPECT_FALSE(result.Leaks());
}

// Live engine run against an operation whose adversarial class does ~100x
// the work of the fixed class: the audit must flag it even on one noisy
// shared core. (No "must NOT leak" live assertion here -- that verdict needs
// ct_audit's larger sample budget and retry policy to be reliable.)
TEST(TimingAuditTest, FlagsMassiveClassSeparation) {
  TimingAuditOptions options;
  options.samples_per_class = 2'000;
  options.warmup = 200;
  volatile uint64_t sink = 0;
  const TimingAuditResult result = RunTimingAudit(
      [&sink](bool adversarial) {
        const int rounds = adversarial ? 400 : 4;
        uint64_t acc = CtOpaque(3);
        for (int i = 0; i < rounds; ++i) {
          acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        }
        sink = acc;
      },
      options);
  EXPECT_TRUE(result.Leaks());
  EXPECT_GT(result.kept_fixed, options.samples_per_class / 2);
  EXPECT_GT(result.kept_adversarial, options.samples_per_class / 2);
}

// The comparison primitive all verdict-relevant checks route through:
// functional pin, so a refactor cannot silently swap in an early-exit.
TEST(ConstantTimeEqualTest, VerdictsAreExact) {
  Bytes a = {1, 2, 3, 4};
  Bytes b = a;
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  b[0] ^= 1;
  EXPECT_FALSE(ConstantTimeEqual(a, b));
  b[0] ^= 1;
  b[3] ^= 0x80;
  EXPECT_FALSE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, BytesView(a.data(), 3)));  // length mismatch
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(CtAnnotationsTest, PoisonUnpoisonAreTransparent) {
  Bytes secret = {0xDE, 0xAD, 0xBE, 0xEF};
  CtPoison(secret.data(), secret.size());
  EXPECT_EQ(secret[0], 0xDE);  // annotations never mutate
  CtUnpoison(secret.data(), secret.size());
  EXPECT_EQ(secret[3], 0xEF);
  EXPECT_EQ(CtOpaque(0x5A), 0x5A);
}

}  // namespace
}  // namespace vdp
