// Stopwatch audit (ISSUE 6 satellite): the timer all stage timings and
// run-log durations flow through must be steady-clock based, expose full
// nanosecond resolution, and never run backwards.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <type_traits>

#include "src/common/timer.h"

namespace vdp {
namespace {

TEST(TimerTest, NeverRunsBackwards) {
  Stopwatch sw;
  std::int64_t last = sw.ElapsedNanos();
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t now = sw.ElapsedNanos();
    ASSERT_GE(now, last) << "steady clock went backwards at iteration " << i;
    last = now;
  }
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, UnitsAgreeAcrossAccessors) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double seconds = sw.ElapsedSeconds();
  const double millis = sw.ElapsedMillis();
  const double micros = sw.ElapsedMicros();
  const double nanos = static_cast<double>(sw.ElapsedNanos());
  // Each accessor re-reads the clock, so later reads may only be larger;
  // successive reads of a 10ms interval stay within a loose 100ms window.
  EXPECT_GE(seconds, 0.010);
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_GE(micros, millis * 1e3);
  EXPECT_GE(nanos, micros * 1e3);
  EXPECT_LT(nanos, 1e9);  // well under a second for a 10ms sleep
}

TEST(TimerTest, ElapsedNanosHasSubMicrosecondResolution) {
  // A busy loop of clock reads must observe distinct nanosecond values that
  // are not all microsecond-aligned -- i.e. the integer path really does
  // preserve resolution a microsecond double would round away.
  Stopwatch sw;
  bool saw_sub_us = false;
  std::int64_t prev = sw.ElapsedNanos();
  for (int i = 0; i < 1'000'000 && !saw_sub_us; ++i) {
    const std::int64_t now = sw.ElapsedNanos();
    if (now != prev && now % 1000 != 0) {
      saw_sub_us = true;
    }
    prev = now;
  }
  EXPECT_TRUE(saw_sub_us) << "clock appears quantised to whole microseconds";
}

TEST(TimerTest, ResetRestartsTheInterval) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.ElapsedNanos(), 5'000'000);
  sw.Reset();
  EXPECT_LT(sw.ElapsedNanos(), 5'000'000);
}

TEST(TimerTest, WallClockAdjustmentsCannotAffectIt) {
  // Compile-time pin: the Stopwatch interval matches steady_clock, the only
  // clock immune to NTP slew / manual date changes. (The alias is private,
  // so assert the observable contract instead: elapsed time across a steady
  // sleep tracks steady_clock's own measurement.)
  static_assert(std::chrono::steady_clock::is_steady,
                "steady_clock must be monotonic");
  const auto before = std::chrono::steady_clock::now();
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::int64_t sw_ns = sw.ElapsedNanos();
  const auto after = std::chrono::steady_clock::now();
  const std::int64_t outer_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(after - before).count();
  EXPECT_GT(sw_ns, 0);
  EXPECT_LE(sw_ns, outer_ns);  // nested interval cannot exceed the outer one
}

}  // namespace
}  // namespace vdp
