#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vdp {
namespace {

TEST(SecureRngTest, DeterministicFromSeed) {
  SecureRng::Seed seed{};
  seed[0] = 42;
  SecureRng a(seed);
  SecureRng b(seed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(SecureRngTest, DifferentSeedsDiffer) {
  SecureRng::Seed s0{};
  SecureRng::Seed s1{};
  s1[0] = 1;
  SecureRng a(s0);
  SecureRng b(s1);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(SecureRngTest, LabelConstructorDeterministic) {
  SecureRng a("test-label");
  SecureRng b("test-label");
  SecureRng c("other-label");
  uint64_t va = a.NextU64();
  EXPECT_EQ(va, b.NextU64());
  EXPECT_NE(va, c.NextU64());
}

TEST(SecureRngTest, UniformBelowStaysInRange) {
  SecureRng rng("range");
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 62) + 17}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformBelow(bound), bound);
    }
  }
}

TEST(SecureRngTest, UniformBelowCoversAllValues) {
  SecureRng rng("coverage");
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.UniformBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SecureRngTest, UniformBelowIsRoughlyUniform) {
  SecureRng rng("chi-square");
  constexpr int kBuckets = 16;
  constexpr int kDraws = 16000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformBelow(kBuckets)]++;
  }
  double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 degrees of freedom; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(SecureRngTest, BitsAreBalanced) {
  SecureRng rng("bits");
  int ones = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    ones += rng.NextBit() ? 1 : 0;
  }
  // 5 sigma band around the mean for a fair coin.
  double sigma = std::sqrt(kDraws * 0.25);
  EXPECT_NEAR(ones, kDraws / 2, 5 * sigma);
}

TEST(SecureRngTest, ForkedStreamsAreIndependent) {
  SecureRng parent("parent");
  SecureRng childa = parent.Fork("a");
  SecureRng childb = parent.Fork("b");
  EXPECT_NE(childa.NextU64(), childb.NextU64());
}

TEST(SecureRngTest, ForkSameLabelDifferentPositionDiffers) {
  SecureRng p1("parent");
  SecureRng c1 = p1.Fork("x");
  SecureRng p2("parent");
  p2.NextU64();  // advance before forking
  SecureRng c2 = p2.Fork("x");
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

TEST(SecureRngTest, RandomBytesLength) {
  SecureRng rng("len");
  EXPECT_EQ(rng.RandomBytes(0).size(), 0u);
  EXPECT_EQ(rng.RandomBytes(77).size(), 77u);
}

TEST(SecureRngTest, EntropySeededGeneratorsDiffer) {
  SecureRng a = SecureRng::FromEntropy();
  SecureRng b = SecureRng::FromEntropy();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace vdp
