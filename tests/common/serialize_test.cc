#include "src/common/serialize.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  Writer w;
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  Reader r(w.bytes());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripBlob) {
  Writer w;
  w.Blob(Bytes{1, 2, 3});
  w.Blob(Bytes{});
  w.Blob(Bytes{0xff});
  Reader r(w.bytes());
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Blob(), Bytes{});
  EXPECT_EQ(r.Blob(), Bytes{0xff});
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RawFixedWidth) {
  Writer w;
  w.Raw(Bytes{9, 8, 7, 6});
  Reader r(w.bytes());
  EXPECT_EQ(r.Raw(2), (Bytes{9, 8}));
  EXPECT_EQ(r.Raw(2), (Bytes{7, 6}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, ReadPastEndFails) {
  Writer w;
  w.U32(1);
  Reader r(w.bytes());
  EXPECT_TRUE(r.U32().has_value());
  EXPECT_FALSE(r.U32().has_value());
  EXPECT_FALSE(r.U8().has_value());
  EXPECT_FALSE(r.U64().has_value());
  EXPECT_FALSE(r.Raw(1).has_value());
}

TEST(SerializeTest, TruncatedBlobFails) {
  Writer w;
  w.U32(100);  // claims 100 bytes follow
  w.Raw(Bytes{1, 2, 3});
  Reader r(w.bytes());
  EXPECT_FALSE(r.Blob().has_value());
}

TEST(SerializeTest, EmptyReader) {
  Reader r(BytesView{});
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.U8().has_value());
}

// --- adversarial / truncated inputs ----------------------------------------
// A Reader fed attacker-controlled bytes must return nullopt on any
// inconsistency and never read past the end of its view (the ASan CI job
// would flag an over-read).

TEST(SerializeAdversarialTest, BlobLengthPrefixLargerThanRemaining) {
  // Claims 0xFFFFFFFF bytes follow; only 3 do.
  Bytes data = {0xff, 0xff, 0xff, 0xff, 0x01, 0x02, 0x03};
  Reader r(data);
  EXPECT_FALSE(r.Blob().has_value());
  // The failed length prefix was consumed, but no payload byte was: the
  // reader stays usable at a well-defined position.
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(SerializeAdversarialTest, BlobLengthPrefixOffByOne) {
  // Claims 4 bytes; exactly 3 remain after the prefix.
  Writer w;
  w.U32(4);
  w.Raw(Bytes{1, 2, 3});
  Reader r(w.bytes());
  EXPECT_FALSE(r.Blob().has_value());
}

TEST(SerializeAdversarialTest, TruncatedU32) {
  for (size_t len = 1; len < 4; ++len) {
    Bytes data(len, 0xab);
    Reader r(data);
    EXPECT_FALSE(r.U32().has_value()) << "len=" << len;
    // A failed fixed-width read consumes nothing.
    EXPECT_EQ(r.remaining(), len);
  }
}

TEST(SerializeAdversarialTest, TruncatedU64) {
  for (size_t len = 1; len < 8; ++len) {
    Bytes data(len, 0xcd);
    Reader r(data);
    EXPECT_FALSE(r.U64().has_value()) << "len=" << len;
    EXPECT_EQ(r.remaining(), len);
  }
}

TEST(SerializeAdversarialTest, ZeroLengthBlobs) {
  // A run of zero-length blobs is valid and consumes exactly its prefixes.
  Writer w;
  w.Blob(Bytes{});
  w.Blob(Bytes{});
  w.Blob(Bytes{});
  Reader r(w.bytes());
  for (int i = 0; i < 3; ++i) {
    auto blob = r.Blob();
    ASSERT_TRUE(blob.has_value());
    EXPECT_TRUE(blob->empty());
  }
  EXPECT_TRUE(r.AtEnd());
  // But a bare zero-length prefix with trailing garbage must not over-read.
  Bytes lone = {0x00, 0x00, 0x00, 0x00};
  Reader r2(lone);
  auto blob = r2.Blob();
  ASSERT_TRUE(blob.has_value());
  EXPECT_TRUE(blob->empty());
  EXPECT_TRUE(r2.AtEnd());
}

TEST(SerializeAdversarialTest, BlobPrefixAloneIsTruncated) {
  // 4 prefix bytes claiming 1 byte, nothing after.
  Writer w;
  w.U32(1);
  Reader r(w.bytes());
  EXPECT_FALSE(r.Blob().has_value());
}

TEST(SerializeAdversarialTest, HugeRawRequestFails) {
  Bytes data = {1, 2, 3};
  Reader r(data);
  EXPECT_FALSE(r.Raw(static_cast<size_t>(-1)).has_value());
  EXPECT_FALSE(r.Raw(4).has_value());
  EXPECT_TRUE(r.Raw(3).has_value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, MixedStructuredMessage) {
  Writer w;
  w.U8(2);  // version
  w.U32(3);  // count
  for (uint32_t i = 0; i < 3; ++i) {
    w.Blob(Bytes{static_cast<uint8_t>(i), static_cast<uint8_t>(i + 1)});
  }
  Reader r(w.bytes());
  EXPECT_EQ(r.U8(), 2);
  auto count = r.U32();
  ASSERT_TRUE(count.has_value());
  for (uint32_t i = 0; i < *count; ++i) {
    auto blob = r.Blob();
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ((*blob)[0], i);
  }
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace vdp
