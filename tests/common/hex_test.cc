#include "src/common/hex.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

TEST(HexTest, EncodeBasic) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abff");
}

TEST(HexTest, EncodeEmpty) {
  EXPECT_EQ(HexEncode(Bytes{}), "");
}

TEST(HexTest, DecodeBasic) {
  auto decoded = HexDecode("0001abff");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0x00, 0x01, 0xab, 0xff}));
}

TEST(HexTest, DecodeUppercase) {
  auto decoded = HexDecode("ABFF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xff}));
}

TEST(HexTest, DecodeOddLengthFails) {
  EXPECT_FALSE(HexDecode("abc").has_value());
}

TEST(HexTest, DecodeBadDigitFails) {
  EXPECT_FALSE(HexDecode("zz").has_value());
  EXPECT_FALSE(HexDecode("0g").has_value());
}

TEST(HexTest, RoundTripRandomBuffer) {
  Bytes data;
  for (int i = 0; i < 257; ++i) {
    data.push_back(static_cast<uint8_t>(i * 31 + 7));
  }
  auto decoded = HexDecode(HexEncode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, ConcatAndWipe) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes joined = Concat(a, b);
  EXPECT_EQ(joined, (Bytes{1, 2, 3}));
  SecureWipe(joined);
  EXPECT_EQ(joined, (Bytes{0, 0, 0}));
}

}  // namespace
}  // namespace vdp
