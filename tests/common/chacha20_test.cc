#include "src/common/chacha20.h"

#include <gtest/gtest.h>

#include "src/common/hex.h"

namespace vdp {
namespace {

std::array<uint8_t, ChaCha20::kKeySize> SequentialKey() {
  std::array<uint8_t, ChaCha20::kKeySize> key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  return key;
}

// RFC 8439 section 2.3.2 block function test vector.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  std::array<uint8_t, ChaCha20::kNonceSize> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                                     0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 cipher(SequentialKey(), nonce, 1);
  uint8_t block[ChaCha20::kBlockSize];
  cipher.NextBlock(block);
  EXPECT_EQ(HexEncode(BytesView(block, sizeof(block))),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, CounterAdvances) {
  std::array<uint8_t, ChaCha20::kNonceSize> nonce{};
  ChaCha20 cipher(SequentialKey(), nonce, 0);
  uint8_t b0[ChaCha20::kBlockSize];
  uint8_t b1[ChaCha20::kBlockSize];
  cipher.NextBlock(b0);
  EXPECT_EQ(cipher.counter(), 1u);
  cipher.NextBlock(b1);
  EXPECT_NE(HexEncode(BytesView(b0, 64)), HexEncode(BytesView(b1, 64)));
}

TEST(ChaCha20Test, FillMatchesBlocks) {
  std::array<uint8_t, ChaCha20::kNonceSize> nonce{};
  ChaCha20 a(SequentialKey(), nonce, 0);
  ChaCha20 b(SequentialKey(), nonce, 0);

  Bytes via_fill(150);
  a.Fill(via_fill.data(), via_fill.size());

  Bytes via_blocks;
  uint8_t block[ChaCha20::kBlockSize];
  for (int i = 0; i < 3; ++i) {
    b.NextBlock(block);
    via_blocks.insert(via_blocks.end(), block, block + ChaCha20::kBlockSize);
  }
  via_blocks.resize(150);
  EXPECT_EQ(via_fill, via_blocks);
}

TEST(ChaCha20Test, DistinctNoncesProduceDistinctStreams) {
  std::array<uint8_t, ChaCha20::kNonceSize> n0{};
  std::array<uint8_t, ChaCha20::kNonceSize> n1{};
  n1[0] = 1;
  ChaCha20 a(SequentialKey(), n0, 0);
  ChaCha20 b(SequentialKey(), n1, 0);
  uint8_t ba[64];
  uint8_t bb[64];
  a.NextBlock(ba);
  b.NextBlock(bb);
  EXPECT_NE(HexEncode(BytesView(ba, 64)), HexEncode(BytesView(bb, 64)));
}

}  // namespace
}  // namespace vdp
