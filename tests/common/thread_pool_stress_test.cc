// ThreadPool under adversarial concurrency, written for the tsan CI job:
// many caller threads share one pool, exceptions abort shards mid-flight,
// and pools are constructed/destroyed while work is still being submitted
// elsewhere. Functional assertions keep the tests meaningful in normal
// builds; ThreadSanitizer turns any unsynchronized access in the
// ParallelFor control block or the queue into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace vdp {
namespace {

// N caller threads issue overlapping ParallelFor batches on one shared pool;
// every iteration of every batch must run exactly once.
TEST(ThreadPoolStressTest, ConcurrentCallersShareOnePool) {
  ThreadPool pool(3);
  constexpr size_t kCallers = 4;
  constexpr size_t kBatches = 25;
  constexpr size_t kCount = 64;
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::atomic<size_t> batch{0};
        pool.ParallelFor(kCount, [&](size_t) {
          batch.fetch_add(1, std::memory_order_relaxed);
          total.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(batch.load(), kCount);
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(total.load(), kCallers * kBatches * kCount);
}

// Exceptions racing normal completions: some batches throw from a random
// iteration while sibling threads run clean batches on the same pool. The
// first exception must surface on the throwing caller, clean batches must
// be unaffected, and the pool must stay usable afterwards.
TEST(ThreadPoolStressTest, ExceptionStormLeavesPoolUsable) {
  ThreadPool pool(3);
  constexpr size_t kRounds = 30;
  std::atomic<size_t> clean_batches{0};
  std::thread clean([&pool, &clean_batches] {
    for (size_t b = 0; b < kRounds; ++b) {
      std::atomic<size_t> batch{0};
      pool.ParallelFor(48, [&](size_t) { batch.fetch_add(1, std::memory_order_relaxed); });
      EXPECT_EQ(batch.load(), 48u);
      clean_batches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  size_t caught = 0;
  for (size_t b = 0; b < kRounds; ++b) {
    try {
      pool.ParallelFor(48, [&](size_t i) {
        if (i == b % 48) {
          throw std::runtime_error("shard bomb");
        }
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  clean.join();
  EXPECT_EQ(caught, kRounds);
  EXPECT_EQ(clean_batches.load(), kRounds);
  // Still alive after the storm.
  std::atomic<size_t> after{0};
  pool.ParallelFor(16, [&](size_t) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 16u);
}

// Pool lifecycle churn: construct, drive, and join pools in a loop while an
// unrelated pool is busy -- the destructor's shutdown handshake must never
// race the worker loop's queue access.
TEST(ThreadPoolStressTest, LifecycleChurnUnderLoad) {
  ThreadPool busy(2);
  std::atomic<bool> stop{false};
  std::thread driver([&busy, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      busy.ParallelFor(32, [](size_t) {});
    }
  });
  for (size_t round = 0; round < 40; ++round) {
    ThreadPool ephemeral(1 + round % 3);
    std::atomic<size_t> ran{0};
    ephemeral.ParallelFor(24, [&](size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ran.load(), 24u);
  }
  stop.store(true, std::memory_order_release);
  driver.join();
}

// The leaked global pool is shared by every subsystem; hammer it from
// several threads at once the way overlapping backends do.
TEST(ThreadPoolStressTest, GlobalPoolConcurrentUse) {
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (size_t c = 0; c < 3; ++c) {
    callers.emplace_back([&total] {
      for (size_t b = 0; b < 10; ++b) {
        GlobalPool().ParallelFor(40, [&](size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(total.load(), 3u * 10u * 40u);
}

}  // namespace
}  // namespace vdp
