// Soundness and agreement tests for the RLC batch verifiers: a batch with a
// single corrupted transcript must reject, and the batch verdict must agree
// with the per-proof oracle on every accept/reject decision.
#include <gtest/gtest.h>

#include "src/batch/batch_or_proof.h"
#include "src/batch/batch_schnorr.h"
#include "src/core/audit.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

std::vector<OrInstance<G>> MakeValidOrBatch(const Pedersen<G>& ped, size_t n, SecureRng& rng) {
  std::vector<OrInstance<G>> instances;
  instances.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int bit = static_cast<int>(i % 2);
    S r = S::Random(rng);
    auto c = ped.Commit(S::FromU64(static_cast<uint64_t>(bit)), r);
    std::string context = "batch-test/" + std::to_string(i);
    instances.push_back({c, OrProve(ped, c, bit, r, rng, context), context});
  }
  return instances;
}

// The per-proof oracle the batch verifier must agree with.
bool PerProofVerdict(const Pedersen<G>& ped, const std::vector<OrInstance<G>>& instances) {
  for (const auto& inst : instances) {
    if (!OrVerify(ped, inst.c, inst.proof, inst.context)) {
      return false;
    }
  }
  return true;
}

TEST(BatchOrVerifyTest, EmptyBatchAccepts) {
  Pedersen<G> ped;
  EXPECT_TRUE(BatchOrVerify(ped, std::vector<OrInstance<G>>{}));
}

TEST(BatchOrVerifyTest, ValidBatchesAcceptAcrossSizes) {
  Pedersen<G> ped;
  SecureRng rng("batch-or-valid");
  // Spans the windowed-NAF path, the Pippenger path, and the dispatch edge.
  for (size_t n : {1u, 2u, 17u, 50u, 200u}) {
    auto instances = MakeValidOrBatch(ped, n, rng);
    EXPECT_TRUE(BatchOrVerify(ped, instances)) << "n=" << n;
    EXPECT_TRUE(PerProofVerdict(ped, instances));
  }
}

TEST(BatchOrVerifyTest, PoolMatchesSerial) {
  Pedersen<G> ped;
  SecureRng rng("batch-or-pool");
  auto instances = MakeValidOrBatch(ped, 64, rng);
  ThreadPool pool(3);
  EXPECT_TRUE(BatchOrVerify(ped, instances, &pool));
}

// The headline soundness test: 1,000 valid proofs with exactly one corrupted
// transcript must be rejected, for every corruption mode, and the verdict
// must agree with the per-proof oracle.
TEST(BatchOrVerifyTest, ThousandProofsOneCorruptedRejected) {
  Pedersen<G> ped;
  SecureRng rng("batch-or-1000");
  auto valid = MakeValidOrBatch(ped, 1000, rng);
  ASSERT_TRUE(BatchOrVerify(ped, valid));

  const size_t victim = 517;
  struct Corruption {
    const char* name;
    void (*apply)(OrProof<G>&);
  };
  const Corruption corruptions[] = {
      {"wrong challenge (split broken)", [](OrProof<G>& p) { p.e0 += S::One(); }},
      {"wrong challenge (split preserved)",
       [](OrProof<G>& p) {
         p.e0 += S::One();
         p.e1 -= S::One();
       }},
      {"wrong response z0", [](OrProof<G>& p) { p.z0 += S::One(); }},
      {"wrong response z1", [](OrProof<G>& p) { p.z1 += S::One(); }},
      {"swapped commitments", [](OrProof<G>& p) { std::swap(p.a0, p.a1); }},
  };
  for (const auto& corruption : corruptions) {
    auto tampered = valid;
    corruption.apply(tampered[victim].proof);
    EXPECT_FALSE(BatchOrVerify(ped, tampered)) << corruption.name;
    EXPECT_FALSE(PerProofVerdict(ped, tampered)) << corruption.name;
  }
}

TEST(BatchOrVerifyTest, WrongCommitmentRejected) {
  Pedersen<G> ped;
  SecureRng rng("batch-or-wrongc");
  auto instances = MakeValidOrBatch(ped, 20, rng);
  instances[7].c = G::Mul(instances[7].c, G::Generator());
  EXPECT_FALSE(BatchOrVerify(ped, instances));
  EXPECT_FALSE(PerProofVerdict(ped, instances));
}

TEST(BatchOrVerifyTest, WrongContextRejected) {
  Pedersen<G> ped;
  SecureRng rng("batch-or-ctx");
  auto instances = MakeValidOrBatch(ped, 20, rng);
  instances[3].context = "some-other-session";
  EXPECT_FALSE(BatchOrVerify(ped, instances));
  EXPECT_FALSE(PerProofVerdict(ped, instances));
}

TEST(BatchOrVerifyTest, NonBitCommitmentRejected) {
  // A commitment to 2 with honest-prover-shaped proofs cannot survive.
  Pedersen<G> ped;
  SecureRng rng("batch-or-nonbit");
  auto instances = MakeValidOrBatch(ped, 20, rng);
  S r = S::Random(rng);
  auto c = ped.Commit(S::FromU64(2), r);
  instances[11] = {c, OrProve(ped, c, 1, r, rng, instances[11].context), instances[11].context};
  EXPECT_FALSE(BatchOrVerify(ped, instances));
  EXPECT_FALSE(PerProofVerdict(ped, instances));
}

TEST(BatchSchnorrVerifyTest, ValidBatchAcceptsAndSingleCorruptionRejects) {
  SecureRng rng("batch-schnorr");
  auto h = G::HashToGroup(StrView("batch-schnorr-test"), StrView("base"));
  std::vector<SchnorrInstance<G>> instances;
  for (size_t i = 0; i < 200; ++i) {
    S w = S::Random(rng);
    SchnorrInstance<G> inst;
    inst.base = h;
    inst.y = G::Exp(h, w);
    inst.transcript = Transcript("batch-schnorr-test/" + std::to_string(i));
    Transcript prover_side = inst.transcript;
    inst.proof = SchnorrProve<G>(inst.base, inst.y, w, prover_side, rng);
    instances.push_back(inst);
  }
  EXPECT_TRUE(BatchSchnorrVerify(instances));
  EXPECT_TRUE(BatchSchnorrVerify(std::vector<SchnorrInstance<G>>{}));

  {
    auto tampered = instances;
    tampered[123].proof.response += S::One();
    EXPECT_FALSE(BatchSchnorrVerify(tampered));
  }
  {
    auto tampered = instances;
    tampered[42].proof.commit = G::Mul(tampered[42].proof.commit, G::Generator());
    EXPECT_FALSE(BatchSchnorrVerify(tampered));
  }
  {
    auto tampered = instances;
    tampered[7].y = G::Mul(tampered[7].y, G::Generator());
    EXPECT_FALSE(BatchSchnorrVerify(tampered));
  }
}

TEST(BatchSchnorrVerifyTest, AgreesWithPerProofVerifier) {
  SecureRng rng("batch-schnorr-agree");
  std::vector<SchnorrInstance<G>> instances;
  for (size_t i = 0; i < 20; ++i) {
    S w = S::Random(rng);
    SchnorrInstance<G> inst;
    inst.base = G::Generator();
    inst.y = G::ExpG(w);
    inst.transcript = Transcript("agree/" + std::to_string(i));
    Transcript prover_side = inst.transcript;
    inst.proof = SchnorrProve<G>(inst.base, inst.y, w, prover_side, rng);
    instances.push_back(inst);
  }
  auto per_proof = [&](const std::vector<SchnorrInstance<G>>& batch) {
    for (const auto& inst : batch) {
      Transcript t = inst.transcript;
      if (!SchnorrVerify(inst.base, inst.y, inst.proof, t)) {
        return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(BatchSchnorrVerify(instances));
  EXPECT_TRUE(per_proof(instances));
  auto tampered = instances;
  tampered[13].proof.response += S::One();
  EXPECT_FALSE(BatchSchnorrVerify(tampered));
  EXPECT_FALSE(per_proof(tampered));
}

// --- integration with the public verifier ----------------------------------

ProtocolConfig BatchConfig(size_t provers, size_t bins) {
  ProtocolConfig config;
  config.epsilon = 1.0;
  config.num_provers = provers;
  config.num_bins = bins;
  config.session_id = "batch-verify-test";
  config.batch_verify = true;
  return config;
}

TEST(BatchVerifierIntegrationTest, ValidateClientsMatchesPerProofOnMixedBatch) {
  SecureRng rng("batch-validate");
  auto batch_config = BatchConfig(2, 3);
  auto plain_config = batch_config;
  plain_config.batch_verify = false;
  Pedersen<G> ped;

  std::vector<ClientUploadMsg<G>> uploads;
  for (size_t i = 0; i < 12; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % 3), i, batch_config, ped, rng).upload);
  }
  // Client 4: corrupted OR proof. Client 9: malformed shape.
  uploads[4].bin_proofs[1].z0 += S::One();
  uploads[9].commitments.pop_back();

  PublicVerifier<G> batch_verifier(batch_config, ped);
  PublicVerifier<G> plain_verifier(plain_config, ped);
  std::vector<std::string> batch_reasons;
  std::vector<std::string> plain_reasons;
  auto batch_accepted = batch_verifier.ValidateClients(uploads, &batch_reasons);
  auto plain_accepted = plain_verifier.ValidateClients(uploads, &plain_reasons);
  EXPECT_EQ(batch_accepted, plain_accepted);
  EXPECT_EQ(batch_reasons, plain_reasons);
  EXPECT_EQ(batch_accepted, (std::vector<size_t>{0, 1, 2, 3, 5, 6, 7, 8, 10, 11}));
}

TEST(BatchVerifierIntegrationTest, ValidateClientsAllHonest) {
  SecureRng rng("batch-validate-honest");
  auto config = BatchConfig(2, 2);
  Pedersen<G> ped;
  std::vector<ClientUploadMsg<G>> uploads;
  for (size_t i = 0; i < 8; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % 2), i, config, ped, rng).upload);
  }
  PublicVerifier<G> verifier(config, ped);
  EXPECT_EQ(verifier.ValidateClients(uploads).size(), 8u);
}

TEST(BatchVerifierIntegrationTest, CheckCoinProofsMatchesPerProof) {
  SecureRng rng("batch-coins");
  auto batch_config = BatchConfig(1, 2);
  auto plain_config = batch_config;
  plain_config.batch_verify = false;
  Pedersen<G> ped;
  Prover<G> prover(0, batch_config, ped, rng.Fork("prover"));
  ProverCoinsMsg<G> coins = prover.CommitCoins();

  PublicVerifier<G> batch_verifier(batch_config, ped);
  PublicVerifier<G> plain_verifier(plain_config, ped);
  EXPECT_TRUE(batch_verifier.CheckCoinProofs(0, coins));
  EXPECT_TRUE(plain_verifier.CheckCoinProofs(0, coins));

  auto tampered = coins;
  tampered.coin_proofs[1][2].e1 += S::One();
  EXPECT_FALSE(batch_verifier.CheckCoinProofs(0, tampered));
  EXPECT_FALSE(plain_verifier.CheckCoinProofs(0, tampered));

  auto swapped = coins;
  std::swap(swapped.coin_proofs[0][0], swapped.coin_proofs[0][1]);
  EXPECT_FALSE(batch_verifier.CheckCoinProofs(0, swapped));
  EXPECT_FALSE(plain_verifier.CheckCoinProofs(0, swapped));
}

TEST(BatchVerifierIntegrationTest, EndToEndProtocolAndAuditWithBatchVerify) {
  auto config = BatchConfig(2, 3);
  std::vector<uint32_t> values = {0, 1, 2, 1, 1, 0};

  SecureRng rng_batch("batch-e2e-run");
  auto result = RunHonestProtocol<G>(config, values, rng_batch);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.accepted_clients.size(), values.size());

  // Same seed, batching off: identical histogram (batching changes no wire
  // message, only how the verifier checks them).
  auto plain_config = config;
  plain_config.batch_verify = false;
  SecureRng rng_plain("batch-e2e-run");
  auto plain_result = RunHonestProtocol<G>(plain_config, values, rng_plain);
  ASSERT_TRUE(plain_result.accepted());
  EXPECT_EQ(result.raw_histogram, plain_result.raw_histogram);

  // A bystander auditing the recorded transcript with batching on reaches
  // the same verdict and histogram.
  Pedersen<G> ped;
  SecureRng rng_rec("batch-e2e-audit");
  std::vector<ClientBundle<G>> clients;
  SecureRng crng = rng_rec.Fork("clients");
  for (size_t i = 0; i < values.size(); ++i) {
    clients.push_back(MakeClientBundle<G>(values[i], i, config, ped, crng));
  }
  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < config.num_provers; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped,
                                                rng_rec.Fork("p" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng vrng = rng_rec.Fork("verifier");
  PublicTranscript<G> record;
  auto recorded = RunProtocol(config, ped, clients, provers, vrng, nullptr, &record);
  ASSERT_TRUE(recorded.accepted());

  auto decoded = DeserializeTranscript<G>(SerializeTranscript(record));
  ASSERT_TRUE(decoded.has_value());
  auto report = AuditTranscript(*decoded, config, ped);
  EXPECT_TRUE(report.accepted());
  EXPECT_EQ(report.raw_histogram, recorded.raw_histogram);
}

}  // namespace
}  // namespace vdp
