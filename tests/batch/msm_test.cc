#include "src/batch/msm.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

template <typename G>
std::pair<std::vector<typename G::Element>, std::vector<typename G::Scalar>> RandomInput(
    size_t n, SecureRng& rng) {
  using S = typename G::Scalar;
  std::vector<typename G::Element> bases;
  std::vector<S> scalars;
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(G::ExpG(S::Random(rng)));
    scalars.push_back(S::Random(rng));
  }
  return {bases, scalars};
}

template <typename G>
class MsmTest : public ::testing::Test {};

using GroupTypes = ::testing::Types<ModP256, Ed25519Group>;
TYPED_TEST_SUITE(MsmTest, GroupTypes);

TYPED_TEST(MsmTest, MatchesNaiveAcrossSizes) {
  using G = TypeParam;
  SecureRng rng("msm-sizes-" + G::Name());
  // Covers the empty case, the whole windowed-NAF range boundary, the
  // dispatch threshold, and several Pippenger sizes up to 257.
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 16u, 31u, 64u, 127u, 128u, 129u, 200u, 257u}) {
    auto [bases, scalars] = RandomInput<G>(n, rng);
    EXPECT_EQ(Msm<G>(bases, scalars), MsmNaive<G>(bases, scalars)) << "n=" << n;
  }
}

TYPED_TEST(MsmTest, WnafPathMatchesNaive) {
  using G = TypeParam;
  SecureRng rng("msm-wnaf-" + G::Name());
  for (size_t n : {1u, 5u, 33u, 150u}) {
    auto [bases, scalars] = RandomInput<G>(n, rng);
    EXPECT_EQ(MsmWnaf<G>(bases, scalars), MsmNaive<G>(bases, scalars)) << "n=" << n;
  }
}

TYPED_TEST(MsmTest, PippengerPathMatchesNaive) {
  using G = TypeParam;
  SecureRng rng("msm-pip-" + G::Name());
  for (size_t n : {1u, 5u, 33u, 150u}) {
    auto [bases, scalars] = RandomInput<G>(n, rng);
    std::vector<std::vector<uint64_t>> limbs;
    for (const auto& s : scalars) {
      limbs.push_back(msm_internal::ToLimbs(s.Encode()));
    }
    EXPECT_EQ(MsmPippenger<G>(bases, limbs, 0, n), MsmNaive<G>(bases, scalars)) << "n=" << n;
  }
}

TYPED_TEST(MsmTest, EdgeScalars) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("msm-edge-" + G::Name());
  std::vector<typename G::Element> bases;
  std::vector<S> scalars;
  // zero, one, q-1, a power of two, and a random scalar.
  bases.push_back(G::ExpG(S::Random(rng)));
  scalars.push_back(S::Zero());
  bases.push_back(G::ExpG(S::Random(rng)));
  scalars.push_back(S::One());
  bases.push_back(G::ExpG(S::Random(rng)));
  scalars.push_back(S::Zero() - S::One());
  bases.push_back(G::ExpG(S::Random(rng)));
  scalars.push_back(S::FromU64(uint64_t{1} << 63));
  bases.push_back(G::Identity());
  scalars.push_back(S::Random(rng));
  EXPECT_EQ(Msm<G>(bases, scalars), MsmNaive<G>(bases, scalars));
  EXPECT_EQ(MsmWnaf<G>(bases, scalars), MsmNaive<G>(bases, scalars));
}

TYPED_TEST(MsmTest, AllZeroScalars) {
  using G = TypeParam;
  using S = typename G::Scalar;
  SecureRng rng("msm-zero-" + G::Name());
  std::vector<typename G::Element> bases(10, G::ExpG(S::Random(rng)));
  std::vector<S> scalars(10, S::Zero());
  EXPECT_EQ(Msm<G>(bases, scalars), G::Identity());
  EXPECT_EQ(MsmWnaf<G>(bases, scalars), G::Identity());
}

TYPED_TEST(MsmTest, PoolShardingMatchesSerial) {
  using G = TypeParam;
  SecureRng rng("msm-pool-" + G::Name());
  auto [bases, scalars] = RandomInput<G>(300, rng);
  ThreadPool pool(3);
  EXPECT_EQ(Msm<G>(bases, scalars, &pool), Msm<G>(bases, scalars));
}

TYPED_TEST(MsmTest, SizeMismatchThrows) {
  using G = TypeParam;
  std::vector<typename G::Element> bases(2, G::Identity());
  std::vector<typename G::Scalar> scalars(3);
  EXPECT_THROW(Msm<G>(bases, scalars), std::invalid_argument);
  EXPECT_THROW(MsmNaive<G>(bases, scalars), std::invalid_argument);
}

TEST(MsmInternalTest, WnafRecodingReconstructs) {
  // The signed digits must reconstruct the scalar: sum digits[j] * 2^j.
  SecureRng rng("wnaf-recode");
  using S = ModP256::Scalar;
  for (int iter = 0; iter < 20; ++iter) {
    S s = S::Random(rng);
    auto naf = msm_internal::ComputeWnaf(msm_internal::ToLimbs(s.Encode()), 4);
    S acc = S::Zero();
    S weight = S::One();
    S two = S::FromU64(2);
    for (size_t j = 0; j < naf.size(); ++j) {
      int d = naf[j];
      EXPECT_TRUE(d == 0 || (d % 2 != 0 && d > -8 && d < 8)) << "digit " << d;
      if (d > 0) {
        acc += weight * S::FromU64(static_cast<uint64_t>(d));
      } else if (d < 0) {
        acc -= weight * S::FromU64(static_cast<uint64_t>(-d));
      }
      weight *= two;
    }
    EXPECT_EQ(acc, s);
    // Non-adjacency: any two nonzero digits are >= w apart.
    size_t last_nonzero = naf.size();
    for (size_t j = 0; j < naf.size(); ++j) {
      if (naf[j] != 0) {
        if (last_nonzero != naf.size()) {
          EXPECT_GE(j - last_nonzero, 4u);
        }
        last_nonzero = j;
      }
    }
  }
}

}  // namespace
}  // namespace vdp
