#include "src/share/shamir.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vdp {
namespace {

using S = ModP256::Scalar;

TEST(ShamirTest, ThresholdReconstruction) {
  SecureRng rng("shamir-rt");
  S secret = S::Random(rng);
  auto shares = ShareShamir(secret, 3, 5, rng);
  EXPECT_EQ(shares.size(), 5u);
  // Any 3 shares reconstruct.
  std::vector<ShamirShare<S>> subset = {shares[0], shares[2], shares[4]};
  auto rec = ReconstructShamir<S>(subset, 3);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret);
}

TEST(ShamirTest, AllSubsetsOfThresholdSizeWork) {
  SecureRng rng("shamir-all");
  S secret = S::FromU64(123456);
  constexpr size_t kN = 5;
  constexpr size_t kT = 2;
  auto shares = ShareShamir(secret, kT, kN, rng);
  for (size_t i = 0; i < kN; ++i) {
    for (size_t j = i + 1; j < kN; ++j) {
      std::vector<ShamirShare<S>> subset = {shares[i], shares[j]};
      auto rec = ReconstructShamir<S>(subset, kT);
      ASSERT_TRUE(rec.has_value());
      EXPECT_EQ(*rec, secret) << i << "," << j;
    }
  }
}

TEST(ShamirTest, TooFewSharesFail) {
  SecureRng rng("shamir-few");
  auto shares = ShareShamir(S::FromU64(9), 3, 5, rng);
  std::vector<ShamirShare<S>> subset = {shares[0], shares[1]};
  EXPECT_FALSE(ReconstructShamir<S>(subset, 3).has_value());
}

TEST(ShamirTest, DuplicateIndicesRejected) {
  SecureRng rng("shamir-dup");
  auto shares = ShareShamir(S::FromU64(9), 2, 4, rng);
  std::vector<ShamirShare<S>> subset = {shares[0], shares[0]};
  EXPECT_FALSE(ReconstructShamir<S>(subset, 2).has_value());
}

TEST(ShamirTest, BelowThresholdSharesRevealNothing) {
  // With threshold t, any t-1 shares are consistent with *every* secret:
  // verify that two sharings of different secrets can produce the same single
  // share value only by chance -- i.e. distributions overlap. Smoke check:
  // a single share of secret 0 is not fixed.
  SecureRng rng("shamir-hide");
  auto s1 = ShareShamir(S::Zero(), 2, 3, rng);
  auto s2 = ShareShamir(S::Zero(), 2, 3, rng);
  EXPECT_NE(s1[0].value, s2[0].value);
}

TEST(ShamirTest, ThresholdOneIsConstantPolynomial) {
  SecureRng rng("shamir-t1");
  S secret = S::FromU64(77);
  auto shares = ShareShamir(secret, 1, 4, rng);
  for (const auto& sh : shares) {
    EXPECT_EQ(sh.value, secret);
  }
}

TEST(ShamirTest, LinearityOfShares) {
  // Shamir is linear: share-wise sums reconstruct the sum of secrets.
  SecureRng rng("shamir-lin");
  S a = S::Random(rng);
  S b = S::Random(rng);
  auto sa = ShareShamir(a, 3, 5, rng);
  auto sb = ShareShamir(b, 3, 5, rng);
  std::vector<ShamirShare<S>> sum;
  for (size_t i = 0; i < 5; ++i) {
    sum.push_back(ShamirShare<S>{sa[i].index, sa[i].value + sb[i].value});
  }
  std::vector<ShamirShare<S>> subset = {sum[1], sum[3], sum[4]};
  auto rec = ReconstructShamir<S>(subset, 3);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, a + b);
}

TEST(ShamirTest, ReconstructUsesOnlyFirstThresholdShares) {
  SecureRng rng("shamir-extra");
  S secret = S::Random(rng);
  auto shares = ShareShamir(secret, 2, 5, rng);
  // Give more shares than the threshold; reconstruction should still work.
  auto rec = ReconstructShamir<S>(shares, 2);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret);
}

}  // namespace
}  // namespace vdp
