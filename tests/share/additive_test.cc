#include "src/share/additive.h"

#include <gtest/gtest.h>

namespace vdp {
namespace {

using S = ModP256::Scalar;

TEST(AdditiveShareTest, ReconstructRecoversSecret) {
  SecureRng rng("add-rt");
  for (size_t k : {1u, 2u, 3u, 5u, 10u}) {
    S secret = S::Random(rng);
    auto shares = ShareAdditive(secret, k, rng);
    EXPECT_EQ(shares.size(), k);
    EXPECT_EQ(ReconstructAdditive<S>(shares), secret) << "k=" << k;
  }
}

TEST(AdditiveShareTest, SingleShareIsSecret) {
  SecureRng rng("add-one");
  S secret = S::FromU64(42);
  auto shares = ShareAdditive(secret, 1, rng);
  EXPECT_EQ(shares[0], secret);
}

TEST(AdditiveShareTest, SharesLookRandom) {
  // Individual shares of fixed secrets must differ across sharings.
  SecureRng rng("add-rand");
  S secret = S::FromU64(7);
  auto s1 = ShareAdditive(secret, 3, rng);
  auto s2 = ShareAdditive(secret, 3, rng);
  EXPECT_NE(s1[0], s2[0]);
  EXPECT_NE(s1[1], s2[1]);
}

TEST(AdditiveShareTest, ShareOfZeroAndOneDiffer) {
  // A single share carries no information: shares of 0 and 1 are identically
  // distributed. Smoke-check: first shares from independent sharings collide
  // with negligible probability, regardless of secret.
  SecureRng rng("add-hide");
  auto zero_shares = ShareAdditive(S::Zero(), 2, rng);
  auto one_shares = ShareAdditive(S::One(), 2, rng);
  EXPECT_NE(zero_shares[0], one_shares[0]);  // both uniform, independent
}

TEST(AdditiveShareTest, LinearityOfSharing) {
  // Share-wise sum of sharings reconstructs to the sum of secrets -- the
  // property MPC aggregation relies on.
  SecureRng rng("add-lin");
  S a = S::Random(rng);
  S b = S::Random(rng);
  auto sa = ShareAdditive(a, 4, rng);
  auto sb = ShareAdditive(b, 4, rng);
  std::vector<S> sum_shares;
  for (size_t i = 0; i < 4; ++i) {
    sum_shares.push_back(sa[i] + sb[i]);
  }
  EXPECT_EQ(ReconstructAdditive<S>(sum_shares), a + b);
}

TEST(AdditiveShareTest, TamperedShareChangesSecret) {
  SecureRng rng("add-tamper");
  S secret = S::Random(rng);
  auto shares = ShareAdditive(secret, 3, rng);
  shares[1] += S::One();
  EXPECT_NE(ReconstructAdditive<S>(shares), secret);
}

}  // namespace
}  // namespace vdp
