// The transport authenticator: session-key derivation, frame seal/open, and
// the AuthChannel over a real socketpair -- including every rejection the
// fleet driver's blame machinery depends on (tampered payload, tampered
// tag, wrong key, replay, reorder, reflection, truncation).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/net/auth.h"

namespace vdp {
namespace net {
namespace {

TEST(SessionKeyTest, DeterministicAndNonceSeparated) {
  Bytes secret(32, 0x11);
  Bytes sn(32, 0xA0);
  Bytes cn(32, 0xB0);
  SessionKey k1 = DeriveSessionKey(secret, sn, cn);
  SessionKey k2 = DeriveSessionKey(secret, sn, cn);
  EXPECT_EQ(k1, k2);

  // Any change to secret or either nonce yields a different key.
  Bytes other_secret(32, 0x12);
  EXPECT_NE(k1, DeriveSessionKey(other_secret, sn, cn));
  Bytes other_sn(32, 0xA1);
  EXPECT_NE(k1, DeriveSessionKey(secret, other_sn, cn));
  Bytes other_cn(32, 0xB1);
  EXPECT_NE(k1, DeriveSessionKey(secret, sn, other_cn));
  // Swapping the nonce roles changes the key too.
  EXPECT_NE(k1, DeriveSessionKey(secret, cn, sn));
}

TEST(SealOpenTest, RoundTrips) {
  SessionKey key = DeriveSessionKey(Bytes(16, 0x01), Bytes(32, 0x02), Bytes(32, 0x03));
  Bytes payload = {1, 2, 3, 4, 5};
  Bytes sealed = SealPayload(key, kClientToServer, 7, wire::FrameType::kTask, payload);
  EXPECT_EQ(sealed.size(), payload.size() + kMacTagSize);
  auto opened = OpenPayload(key, kClientToServer, 7, wire::FrameType::kTask, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(SealOpenTest, RejectsEveryMismatch) {
  SessionKey key = DeriveSessionKey(Bytes(16, 0x01), Bytes(32, 0x02), Bytes(32, 0x03));
  Bytes payload = {1, 2, 3, 4, 5};
  Bytes sealed = SealPayload(key, kClientToServer, 7, wire::FrameType::kTask, payload);

  // Tampered payload byte.
  Bytes tampered = sealed;
  tampered[0] ^= 0x01;
  EXPECT_FALSE(
      OpenPayload(key, kClientToServer, 7, wire::FrameType::kTask, tampered).has_value());
  // Tampered tag byte.
  tampered = sealed;
  tampered[sealed.size() - 1] ^= 0x01;
  EXPECT_FALSE(
      OpenPayload(key, kClientToServer, 7, wire::FrameType::kTask, tampered).has_value());
  // Wrong sequence number (replay / reorder).
  EXPECT_FALSE(
      OpenPayload(key, kClientToServer, 8, wire::FrameType::kTask, sealed).has_value());
  // Wrong direction (reflection).
  EXPECT_FALSE(
      OpenPayload(key, kServerToClient, 7, wire::FrameType::kTask, sealed).has_value());
  // Wrong frame type (type confusion).
  EXPECT_FALSE(
      OpenPayload(key, kClientToServer, 7, wire::FrameType::kResult, sealed).has_value());
  // Wrong key.
  SessionKey other = DeriveSessionKey(Bytes(16, 0x09), Bytes(32, 0x02), Bytes(32, 0x03));
  EXPECT_FALSE(
      OpenPayload(other, kClientToServer, 7, wire::FrameType::kTask, sealed).has_value());
  // Too short for a tag at all.
  EXPECT_FALSE(OpenPayload(key, kClientToServer, 7, wire::FrameType::kTask,
                           BytesView(sealed.data(), kMacTagSize - 1))
                   .has_value());
}

TEST(SealOpenTest, EmptyPayloadSealsToJustTheTag) {
  SessionKey key = DeriveSessionKey(Bytes(16, 0x01), Bytes(32, 0x02), Bytes(32, 0x03));
  Bytes sealed = SealPayload(key, kServerToClient, 0, wire::FrameType::kSetupAck, {});
  EXPECT_EQ(sealed.size(), kMacTagSize);
  auto opened = OpenPayload(key, kServerToClient, 0, wire::FrameType::kSetupAck, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

class AuthChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd_ = fds[0];
    server_fd_ = fds[1];
    key_ = DeriveSessionKey(Bytes(32, 0x44), Bytes(32, 0x55), Bytes(32, 0x66));
    client_ = AuthChannel(client_fd_, key_, /*is_client=*/true);
    server_ = AuthChannel(server_fd_, key_, /*is_client=*/false);
  }

  void TearDown() override {
    close(client_fd_);
    close(server_fd_);
  }

  int client_fd_ = -1;
  int server_fd_ = -1;
  SessionKey key_;
  AuthChannel client_;
  AuthChannel server_;
};

TEST_F(AuthChannelTest, BidirectionalRoundTrip) {
  Bytes task = {0xDE, 0xAD};
  ASSERT_EQ(client_.Write(wire::FrameType::kTask, task), wire::WriteStatus::kOk);
  wire::Frame frame;
  ASSERT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kTask);
  EXPECT_EQ(frame.payload, task);

  Bytes result = {0xBE, 0xEF, 0x01};
  ASSERT_EQ(server_.Write(wire::FrameType::kResult, result), wire::WriteStatus::kOk);
  ASSERT_EQ(client_.Read(&frame, 1000), wire::ReadStatus::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kResult);
  EXPECT_EQ(frame.payload, result);

  EXPECT_EQ(client_.frames_sent(), 1u);
  EXPECT_EQ(client_.frames_received(), 1u);
}

TEST_F(AuthChannelTest, SequenceNumbersAdvancePerFrame) {
  for (int i = 0; i < 5; ++i) {
    Bytes payload = {static_cast<uint8_t>(i)};
    ASSERT_EQ(client_.Write(wire::FrameType::kTask, payload), wire::WriteStatus::kOk);
  }
  wire::Frame frame;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk) << "frame " << i;
    EXPECT_EQ(frame.payload[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(server_.frames_received(), 5u);
}

TEST_F(AuthChannelTest, TamperedFrameFailsAuthentication) {
  // Seal a frame by hand, flip one payload byte on the wire, and deliver.
  Bytes payload = {1, 2, 3};
  Bytes sealed = SealPayload(key_, kClientToServer, 0, wire::FrameType::kTask, payload);
  sealed[1] ^= 0x80;
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kTask, sealed),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
}

TEST_F(AuthChannelTest, ReplayedFrameFailsAuthentication) {
  // The same authentic bytes delivered twice: the second copy arrives at
  // receive sequence 1 and must fail.
  Bytes payload = {1, 2, 3};
  Bytes sealed = SealPayload(key_, kClientToServer, 0, wire::FrameType::kTask, payload);
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kTask, sealed),
            wire::WriteStatus::kOk);
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kTask, sealed),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk);
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
}

TEST_F(AuthChannelTest, WrongKeyFailsAuthentication) {
  SessionKey wrong = DeriveSessionKey(Bytes(32, 0x45), Bytes(32, 0x55), Bytes(32, 0x66));
  AuthChannel impostor(client_fd_, wrong, /*is_client=*/true);
  Bytes payload = {9, 9};
  ASSERT_EQ(impostor.Write(wire::FrameType::kTask, payload), wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
}

TEST_F(AuthChannelTest, ServerFrameCannotBeReflectedToServer) {
  // A frame the server authentically sent, bounced back at it, must not
  // verify (directions are MAC-bound).
  Bytes payload = {7};
  Bytes sealed = SealPayload(key_, kServerToClient, 0, wire::FrameType::kResult, payload);
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kResult, sealed),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
}

TEST_F(AuthChannelTest, BareUnauthenticatedFrameFailsAuthentication) {
  // A peer speaking the plain pipe protocol (no MAC trailer) on an
  // authenticated connection is rejected, not misread.
  Bytes payload = {1, 2, 3};
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kTask, payload),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
}

TEST_F(AuthChannelTest, FailedReadDoesNotAdvanceReceiveCounter) {
  Bytes payload = {1};
  Bytes bad = SealPayload(key_, kClientToServer, 3, wire::FrameType::kTask, payload);
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kTask, bad),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
  EXPECT_EQ(server_.frames_received(), 0u);

  // The genuine seq-0 frame still verifies afterwards.
  ASSERT_EQ(client_.Write(wire::FrameType::kTask, payload), wire::WriteStatus::kOk);
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk);
}

TEST_F(AuthChannelTest, AdminPlaneInterleavesWithoutPerturbingDataPlane) {
  // S2 regression: health probes and stats requests ride the same channel
  // as shard traffic but live on their own direction bytes and sequence
  // counters. Interleave the two planes heavily and assert the data-plane
  // counters advance exactly once per data frame.
  wire::Frame frame;
  for (int i = 0; i < 8; ++i) {
    // One data frame...
    Bytes task = {static_cast<uint8_t>(i)};
    ASSERT_EQ(client_.Write(wire::FrameType::kTask, task), wire::WriteStatus::kOk);
    ASSERT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk);
    EXPECT_EQ(frame.type, wire::FrameType::kTask);
    EXPECT_EQ(frame.payload, task);

    // ...then a burst of admin frames in both directions.
    wire::WireHealthProbe probe;
    probe.nonce = 0x1000u + static_cast<uint64_t>(i);
    ASSERT_EQ(client_.Write(wire::FrameType::kHealthProbe, probe.Serialize()),
              wire::WriteStatus::kOk);
    ASSERT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk);
    EXPECT_EQ(frame.type, wire::FrameType::kHealthProbe);
    auto decoded = wire::WireHealthProbe::Deserialize(frame.payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->nonce, probe.nonce);

    wire::WireHealthReply reply;
    reply.nonce = probe.nonce;
    reply.server_id = 3;
    reply.uptime_ms = 1234;
    ASSERT_EQ(server_.Write(wire::FrameType::kHealthReply, reply.Serialize()),
              wire::WriteStatus::kOk);
    ASSERT_EQ(client_.Read(&frame, 1000), wire::ReadStatus::kOk);
    EXPECT_EQ(frame.type, wire::FrameType::kHealthReply);

    // The matching data-plane result still verifies after the admin burst.
    Bytes result = {static_cast<uint8_t>(i), 0xFF};
    ASSERT_EQ(server_.Write(wire::FrameType::kResult, result), wire::WriteStatus::kOk);
    ASSERT_EQ(client_.Read(&frame, 1000), wire::ReadStatus::kOk);
    EXPECT_EQ(frame.type, wire::FrameType::kResult);
    EXPECT_EQ(frame.payload, result);
  }

  // Data plane saw exactly 8 frames each way; admin plane 8 each way too.
  EXPECT_EQ(client_.frames_sent(), 8u);
  EXPECT_EQ(client_.frames_received(), 8u);
  EXPECT_EQ(client_.admin_frames_sent(), 8u);
  EXPECT_EQ(client_.admin_frames_received(), 8u);
  EXPECT_EQ(server_.frames_sent(), 8u);
  EXPECT_EQ(server_.frames_received(), 8u);
  EXPECT_EQ(server_.admin_frames_sent(), 8u);
  EXPECT_EQ(server_.admin_frames_received(), 8u);
}

TEST_F(AuthChannelTest, CrossPlaneSpliceFailsAuthentication) {
  // A probe payload sealed under the DATA direction byte at the matching
  // admin sequence number must not verify as an admin frame: the direction
  // byte separates the planes even when an attacker lines the sequence
  // numbers up.
  wire::WireHealthProbe probe;
  probe.nonce = 42;
  Bytes sealed =
      SealPayload(key_, kClientToServer, 0, wire::FrameType::kHealthProbe,
                  probe.Serialize());
  ASSERT_EQ(wire::WriteFrame(client_fd_, wire::FrameType::kHealthProbe, sealed),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
  // Neither plane's receive counter moved.
  EXPECT_EQ(server_.frames_received(), 0u);
  EXPECT_EQ(server_.admin_frames_received(), 0u);

  // And the genuine admin-plane seq-0 probe still verifies afterwards.
  ASSERT_EQ(client_.Write(wire::FrameType::kHealthProbe, probe.Serialize()),
            wire::WriteStatus::kOk);
  EXPECT_EQ(server_.Read(&frame, 1000), wire::ReadStatus::kOk);
  EXPECT_EQ(server_.admin_frames_received(), 1u);
}

TEST_F(AuthChannelTest, OversizedPayloadRefusedAtWrite) {
  // A payload that would exceed kMaxFramePayload once the tag is appended
  // must be refused on the send side. The size check runs before any byte
  // is touched, so an over-length view avoids allocating 256 MB here.
  Bytes small(1);
  BytesView oversized(small.data(), wire::kMaxFramePayload - kMacTagSize + 1);
  EXPECT_EQ(client_.Write(wire::FrameType::kTask, oversized), wire::WriteStatus::kError);
}

}  // namespace
}  // namespace net
}  // namespace vdp
