// Fleet drivers under adversarial interleavings, written for the tsan CI
// job: the process pool and the remote socket fleet execute a streamed run
// while other threads read Progress/PartialReport and rip the fleet-health
// report out mid-stream, and a close-faulted server turns every one of its
// shards into a reconnect -- a reconnect storm with concurrent observers.
// Verdicts must still match the deterministic expectation; under
// ThreadSanitizer any unsynchronized access in the executors' shared report
// state or the dispatcher is a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/net/remote_fleet.h"
#include "src/net/server_process.h"
#include "src/shard/process_pool.h"
#include "src/verify/factory.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

ProtocolConfig BaseConfig() {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31: keeps upload construction fast
  config.num_provers = 2;
  config.num_bins = 3;
  config.session_id = "fleet-stress-test";
  return config;
}

// Honest uploads plus one of each rejection class (same recipe as
// remote_fleet_test.cc) so the expected verdict is fixed.
std::vector<ClientUploadMsg<G>> Corpus(const ProtocolConfig& config,
                                       const Pedersen<G>& ped, size_t n) {
  SecureRng rng("fleet-stress-corpus");
  std::vector<ClientUploadMsg<G>> uploads;
  for (size_t i = 0; i < n; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, ped, rng)
            .upload);
  }
  uploads[2].bin_proofs[0].z0 += S::One();  // invalid OR proof
  uploads[5].sum_randomness += S::One();    // breaks the one-hot opening
  return uploads;
}

// Streams `uploads` through `executor` while monitor threads hammer the
// observer API and a report thief calls take_report() concurrently.
template <typename TakeReportFn>
VerifyReport<G> StreamWithObservers(const ProtocolConfig& config,
                                    ShardExecutor<G>* executor,
                                    std::vector<ClientUploadMsg<G>> uploads,
                                    const TakeReportFn& take_report) {
  StreamDispatchOptions options;
  options.shard_capacity = 3;
  options.max_inflight_shards = 2;
  options.compute_products = true;
  StreamDispatcher<G> dispatcher(config, executor, options);

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const VerifyProgress p = dispatcher.Progress();
      EXPECT_LE(p.shards_done, p.shards_cut);
      (void)dispatcher.PartialReport();
    }
  });
  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire)) {
      take_report();
    }
  });

  for (ClientUploadMsg<G>& upload : uploads) {
    dispatcher.Add(std::move(upload));
  }
  VerifyReport<G> report = dispatcher.Finish();
  stop.store(true, std::memory_order_release);
  monitor.join();
  thief.join();
  return report;
}

void ExpectVerdict(const VerifyReport<G>& report, size_t n) {
  EXPECT_EQ(report.total_uploads, n);
  EXPECT_EQ(report.accepted.size(), n - 2);
  EXPECT_EQ(report.rejections.size(), 2u);
}

TEST(FleetStressTest, ProcessPoolStreamWithConcurrentObservers) {
  ProtocolConfig config = BaseConfig();
  Pedersen<G> ped;
  auto uploads = Corpus(config, ped, 15);
  ProcessPoolOptions options;
  options.num_workers = 2;
  MultiprocessVerifier<G> pool(config, ped, options);
  VerifyReport<G> report = StreamWithObservers(config, &pool, std::move(uploads),
                                               [&pool] { (void)pool.TakeReport(); });
  ExpectVerdict(report, 15);
}

TEST(FleetStressTest, RemoteFleetReconnectStormWithConcurrentObservers) {
  net::LoopbackFleet fleet(2, /*fault=*/"close:0");  // server 0 drops every task
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  Pedersen<G> ped;
  auto uploads = Corpus(config, ped, 15);

  RemoteFleetOptions options;
  options.connect_timeout_ms = 5'000;
  options.handshake_timeout_ms = 5'000;
  options.shard_timeout_ms = 10'000;
  options.reconnect_backoff_ms = 1;
  options.max_attempts_per_shard = 3;
  RemoteVerifierFleet<G> verifier(config, ped, options);
  VerifyReport<G> report = StreamWithObservers(
      config, &verifier, std::move(uploads), [&verifier] { (void)verifier.TakeReport(); });
  ExpectVerdict(report, 15);
}

// The same storm through the public backend API: the remote backend streams
// Add/Progress from different threads the way a server frontend would.
TEST(FleetStressTest, RemoteBackendProgressWhileStreaming) {
  net::LoopbackFleet fleet(2);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  Pedersen<G> ped;
  auto uploads = Corpus(config, ped, 12);

  auto backend = MakeVerifyBackend<G>(VerifyBackendKind::kRemote, config, ped);
  VerifyOptions options;
  options.stream_shard_capacity = 3;
  backend->Start(options);
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const VerifyProgress p = backend->Progress();
      EXPECT_LE(p.shards_done, p.shards_cut);
    }
  });
  for (ClientUploadMsg<G>& upload : uploads) {
    backend->Add(std::move(upload));
  }
  VerifyReport<G> report = backend->Finish();
  stop.store(true, std::memory_order_release);
  monitor.join();
  ExpectVerdict(report, 12);
}

}  // namespace
}  // namespace vdp
