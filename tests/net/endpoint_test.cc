// Endpoint grammar: the textual forms ProtocolConfig::remote_verifiers
// accepts, their round-trip through FormatEndpoint, and everything
// Validate() must reject.
#include <gtest/gtest.h>

#include "src/net/endpoint.h"

namespace vdp {
namespace net {
namespace {

TEST(EndpointTest, ParsesTcp) {
  auto ep = ParseEndpoint("tcp:127.0.0.1:7000");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 7000);
  EXPECT_EQ(FormatEndpoint(*ep), "tcp:127.0.0.1:7000");
}

TEST(EndpointTest, ParsesHostname) {
  auto ep = ParseEndpoint("tcp:verifier-3.internal:443");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "verifier-3.internal");
  EXPECT_EQ(ep->port, 443);
}

TEST(EndpointTest, ParsesEphemeralPort) {
  auto ep = ParseEndpoint("tcp:0.0.0.0:0");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->port, 0);
}

TEST(EndpointTest, ParsesUnix) {
  auto ep = ParseEndpoint("unix:/run/vdp/verifier.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep->path, "/run/vdp/verifier.sock");
  EXPECT_EQ(FormatEndpoint(*ep), "unix:/run/vdp/verifier.sock");
}

TEST(EndpointTest, RoundTripsThroughFormat) {
  for (const char* spec : {"tcp:10.0.0.1:1", "tcp:localhost:65535", "unix:/tmp/x.sock"}) {
    auto ep = ParseEndpoint(spec);
    ASSERT_TRUE(ep.has_value()) << spec;
    auto again = ParseEndpoint(FormatEndpoint(*ep));
    ASSERT_TRUE(again.has_value()) << spec;
    EXPECT_EQ(*ep, *again) << spec;
  }
}

TEST(EndpointTest, RejectsMalformed) {
  for (const char* spec :
       {"", "tcp:", "unix:", "tcp:host", "tcp:host:", "tcp::7000", "tcp:host:port",
        "tcp:host:-1", "tcp:host:65536", "tcp:host:70000", "tcp:a:b:7000",
        "udp:host:7000", "host:7000", "/tmp/x.sock", "tcp:host:7000x"}) {
    EXPECT_FALSE(ParseEndpoint(spec).has_value()) << spec;
  }
}

}  // namespace
}  // namespace net
}  // namespace vdp
