// HealthRegistry state machine under an adversarial probe corpus: hung
// probes (timeouts), a lying/regressing uptime (restart behind our back), a
// stale epoch digest, and a flapping endpoint -- asserting the state
// transitions, the metric deltas, and the dispatch policy. No sockets: the
// state machine is driven directly through Report*; the prober's loop is
// exercised with an injected probe function.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/net/health.h"

namespace vdp {
namespace net {
namespace {

wire::WireHealthReply GoodReply(uint64_t uptime_ms, uint64_t server_id = 7) {
  wire::WireHealthReply reply;
  reply.nonce = 1;  // the transport layer already checked the echo
  reply.server_id = server_id;
  reply.uptime_ms = uptime_ms;
  reply.inflight_shards = 2;
  reply.queue_depth = 1;
  return reply;
}

TEST(HealthRegistryTest, FullLifecycleWithMetricDeltas) {
  obs::MetricsRegistry metrics;
  HealthRegistry registry(HealthPolicy{}, &metrics);
  const std::string ep = "tcp:127.0.0.1:7001";
  registry.AddEndpoint(ep);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kHealthy);
  EXPECT_TRUE(registry.Dispatchable(ep));
  EXPECT_EQ(metrics.Snapshot().CounterValue(obs::kHealthTransitions), 0u);

  // Hung probe #1: healthy -> degraded on the first consecutive failure
  // (degraded_after_failures = 1), i.e. within two probe intervals of the
  // hang starting.
  registry.ReportProbeFailure(ep, "no health reply (timeout)");
  EXPECT_EQ(registry.State(ep), EndpointHealth::kDegraded);
  EXPECT_TRUE(registry.Dispatchable(ep));  // degraded still takes shards

  // Hung probes #2 and #3: degraded -> dead at dead_after_failures = 3.
  registry.ReportProbeFailure(ep, "no health reply (timeout)");
  EXPECT_EQ(registry.State(ep), EndpointHealth::kDegraded);
  registry.ReportProbeFailure(ep, "no health reply (timeout)");
  EXPECT_EQ(registry.State(ep), EndpointHealth::kDead);
  EXPECT_FALSE(registry.Dispatchable(ep));  // ONLY dead is skipped

  // Back from the dead: one success moves to recovering (still not enough),
  // the second completes recovery.
  registry.ReportProbeSuccess(ep, GoodReply(1000), 150);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kRecovering);
  EXPECT_TRUE(registry.Dispatchable(ep));
  registry.ReportProbeSuccess(ep, GoodReply(2000), 150);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kHealthy);

  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue(obs::kHealthProbes), 5u);
  EXPECT_EQ(snap.CounterValue(obs::kHealthProbeFailures), 3u);
  // healthy->degraded->dead->recovering->healthy = 4 transitions.
  EXPECT_EQ(snap.CounterValue(obs::kHealthTransitions), 4u);
  EXPECT_EQ(snap.CounterValue(obs::kHealthRestartsSeen), 0u);

  auto statuses = registry.Snapshot();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].transitions, 4u);
  EXPECT_EQ(statuses[0].failures, 3u);
  EXPECT_EQ(statuses[0].last_uptime_ms, 2000u);
  EXPECT_EQ(statuses[0].inflight_shards, 2u);
  EXPECT_TRUE(statuses[0].last_error.empty());
}

TEST(HealthRegistryTest, LyingUptimeRegressionIsARestart) {
  obs::MetricsRegistry metrics;
  HealthRegistry registry(HealthPolicy{}, &metrics);
  const std::string ep = "tcp:127.0.0.1:7002";
  registry.AddEndpoint(ep);

  registry.ReportProbeSuccess(ep, GoodReply(60'000), 100);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kHealthy);

  // Uptime goes BACKWARDS: the server restarted (or lies). Either way it
  // lost session state -- it must re-enter through recovering.
  registry.ReportProbeSuccess(ep, GoodReply(500), 100);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kRecovering);
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue(obs::kHealthRestartsSeen), 1u);

  // It recovers by answering steadily with a sane (monotone) uptime.
  registry.ReportProbeSuccess(ep, GoodReply(1500), 100);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kHealthy);
  auto statuses = registry.Snapshot();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].restarts_seen, 1u);
}

TEST(HealthRegistryTest, StaleEpochDigestIsAProbeFailure) {
  obs::MetricsRegistry metrics;
  HealthRegistry registry(HealthPolicy{}, &metrics);
  const std::string ep = "tcp:127.0.0.1:7003";
  registry.AddEndpoint(ep);
  std::array<uint8_t, 32> expected{};
  expected.fill(0xAA);
  registry.SetExpectedDigest(expected);

  // A reply with a zero digest is fine: no session has installed a setup.
  registry.ReportProbeSuccess(ep, GoodReply(1000), 100);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kHealthy);

  // The right digest is fine too.
  wire::WireHealthReply good = GoodReply(2000);
  good.params_digest = expected;
  registry.ReportProbeSuccess(ep, good, 100);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kHealthy);

  // A nonzero digest that differs: alive but on a stale epoch -- judged a
  // probe failure even though the reply MAC-verified.
  wire::WireHealthReply stale = GoodReply(3000);
  stale.params_digest.fill(0xBB);
  registry.ReportProbeSuccess(ep, stale, 100);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kDegraded);
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue(obs::kHealthProbeFailures), 1u);
  auto statuses = registry.Snapshot();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].last_error, "stale params digest");
}

TEST(HealthRegistryTest, FlappingEndpointNeverSettlesHealthyCheaply) {
  obs::MetricsRegistry metrics;
  HealthRegistry registry(HealthPolicy{}, &metrics);
  const std::string ep = "tcp:127.0.0.1:7004";
  registry.AddEndpoint(ep);

  // Flap to dead: fail, succeed, fail, fail, fail...
  registry.ReportProbeFailure(ep, "timeout");  // -> degraded
  registry.ReportProbeSuccess(ep, GoodReply(100), 50);  // -> healthy
  registry.ReportProbeFailure(ep, "timeout");  // -> degraded
  registry.ReportProbeFailure(ep, "timeout");
  registry.ReportProbeFailure(ep, "timeout");  // -> dead
  EXPECT_EQ(registry.State(ep), EndpointHealth::kDead);

  // One success starts recovery; a single failure during recovery drops it
  // straight back to dead -- a flapper gets no shard traffic by oscillating.
  registry.ReportProbeSuccess(ep, GoodReply(200), 50);
  EXPECT_EQ(registry.State(ep), EndpointHealth::kRecovering);
  registry.ReportProbeFailure(ep, "timeout");
  EXPECT_EQ(registry.State(ep), EndpointHealth::kDead);
  EXPECT_FALSE(registry.Dispatchable(ep));

  // healthy->degraded->healthy->degraded->dead->recovering->dead = 6.
  EXPECT_EQ(metrics.Snapshot().CounterValue(obs::kHealthTransitions), 6u);
}

TEST(HealthRegistryTest, PerStateGaugesTrackThePopulation) {
  obs::MetricsRegistry metrics;
  HealthRegistry registry(HealthPolicy{}, &metrics);
  registry.AddEndpoint("a");
  registry.AddEndpoint("b");
  registry.AddEndpoint("c");

  registry.ReportProbeFailure("b", "timeout");  // degraded
  for (int i = 0; i < 3; ++i) {
    registry.ReportProbeFailure("c", "timeout");  // dead
  }
  auto snap = metrics.Snapshot();
  auto gauge = [&](const char* name) -> int64_t {
    for (const obs::GaugeSnapshot& g : snap.gauges) {
      if (g.name == name) {
        return g.value;
      }
    }
    return -1;
  };
  EXPECT_EQ(gauge(obs::kHealthEndpointsHealthy), 1);
  EXPECT_EQ(gauge(obs::kHealthEndpointsDegraded), 1);
  EXPECT_EQ(gauge(obs::kHealthEndpointsDead), 1);
  EXPECT_EQ(gauge(obs::kHealthEndpointsRecovering), 0);

  registry.ReportProbeSuccess("c", GoodReply(10), 5);
  snap = metrics.Snapshot();
  EXPECT_EQ(gauge(obs::kHealthEndpointsDead), 0);
  EXPECT_EQ(gauge(obs::kHealthEndpointsRecovering), 1);
}

TEST(HealthRegistryTest, UnknownEndpointsReadAsDispatchable) {
  HealthRegistry registry;
  EXPECT_EQ(registry.State("never-registered"), EndpointHealth::kHealthy);
  EXPECT_TRUE(registry.Dispatchable("never-registered"));
}

TEST(HealthRegistryTest, RttHistogramRecordsSuccessfulProbes) {
  obs::MetricsRegistry metrics;
  HealthRegistry registry(HealthPolicy{}, &metrics);
  registry.AddEndpoint("a");
  registry.ReportProbeSuccess("a", GoodReply(10), 120);
  registry.ReportProbeSuccess("a", GoodReply(20), 180);
  auto snap = metrics.Snapshot();
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == obs::kHealthProbeRttUs) {
      EXPECT_EQ(h.count, 2u);
      EXPECT_NEAR(h.sum, 300.0, 1e-6);
      return;
    }
  }
  FAIL() << "rtt histogram not registered";
}

TEST(HealthProberTest, SweepsEveryEndpointAndFeedsTheRegistry) {
  obs::MetricsRegistry metrics;
  HealthPolicy policy;
  policy.probe_interval_ms = 10;
  policy.probe_jitter_ms = 5;
  HealthRegistry registry(policy, &metrics);
  registry.AddEndpoint("good");
  registry.AddEndpoint("hung");

  std::atomic<int> probes{0};
  HealthProber prober(&registry, [&](const std::string& endpoint, int) {
    probes.fetch_add(1);
    ProbeOutcome outcome;
    if (endpoint == "good") {
      outcome.ok = true;
      outcome.reply = GoodReply(1000 + static_cast<uint64_t>(probes.load()));
      outcome.rtt_us = 100;
    } else {
      outcome.error = "no health reply (timeout)";
    }
    return outcome;
  });
  prober.Start();
  // Wait until both endpoints have been probed at least 3 times.
  for (int spins = 0; spins < 500 && probes.load() < 6; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  prober.Stop();
  ASSERT_GE(probes.load(), 6);
  EXPECT_EQ(registry.State("good"), EndpointHealth::kHealthy);
  EXPECT_EQ(registry.State("hung"), EndpointHealth::kDead);  // >= 3 failures
  EXPECT_GE(metrics.Snapshot().CounterValue(obs::kHealthProbes), 6u);
}

TEST(HealthProberTest, StopIsIdempotentAndStartRestarts) {
  HealthRegistry registry;
  HealthProber prober(&registry, [](const std::string&, int) { return ProbeOutcome{}; });
  prober.Stop();  // never started: no-op
  prober.Start();
  prober.Start();  // double start: no-op
  prober.Stop();
  prober.Stop();
  prober.Start();
  prober.Stop();
}

}  // namespace
}  // namespace net
}  // namespace vdp
