// The remote verifier fleet over real loopback sockets: spawned
// verify_server daemons, authenticated handshake, shard farm-out, and every
// fleet-failure mode the driver must absorb without the verdict ever
// drifting from the in-process oracle -- dead endpoints, wrong fleet
// secrets, stale setups, dropped connections, hung servers, wrong-shard
// results, and a server SIGKILLed mid-run.
#include <gtest/gtest.h>
#include <signal.h>

#include "src/core/verifier.h"
#include "src/net/remote_fleet.h"
#include "src/net/server_process.h"
#include "src/verify/factory.h"

namespace vdp {
namespace {

using G = ModP256;
using S = G::Scalar;

ProtocolConfig BaseConfig() {
  ProtocolConfig config;
  config.epsilon = 50.0;  // nb = 31: keeps upload construction fast
  config.num_provers = 2;
  config.num_bins = 3;
  config.num_verify_shards = 4;
  config.session_id = "remote-fleet-test";
  return config;
}

// Honest uploads plus every rejection class, spread across shards.
std::vector<ClientUploadMsg<G>> Corpus(const ProtocolConfig& config,
                                       const Pedersen<G>& ped) {
  SecureRng rng("remote-fleet-corpus");
  std::vector<ClientUploadMsg<G>> uploads;
  for (size_t i = 0; i < 14; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, ped, rng)
            .upload);
  }
  uploads[2].bin_proofs[0].z0 += S::One();  // invalid OR proof
  uploads[7].commitments.clear();           // malformed shape
  uploads[11].sum_randomness += S::One();   // breaks the one-hot opening
  return uploads;
}

// Small timeouts so failure-path tests stay fast; generous enough for a
// loaded CI box on the happy path.
RemoteFleetOptions FastOptions() {
  RemoteFleetOptions options;
  options.connect_timeout_ms = 5'000;
  options.handshake_timeout_ms = 5'000;
  options.shard_timeout_ms = 10'000;
  options.reconnect_backoff_ms = 10;
  return options;
}

class RemoteFleetTest : public ::testing::Test {
 protected:
  VerifyReport<G> Oracle(const ProtocolConfig& config,
                         const std::vector<ClientUploadMsg<G>>& uploads) {
    ProtocolConfig oracle_config = config;
    oracle_config.remote_verifiers.clear();
    oracle_config.remote_auth_key_hex.clear();
    oracle_config.num_verify_shards = 1;
    return MakeVerifyBackend<G>(VerifyBackendKind::kPerProof, oracle_config, ped_)
        ->VerifyAll(uploads);
  }

  void ExpectMatchesOracle(const ProtocolConfig& config, const VerifyReport<G>& report,
                           const std::vector<ClientUploadMsg<G>>& uploads) {
    VerifyReport<G> expected = Oracle(config, uploads);
    EXPECT_EQ(expected.accepted, report.accepted);
    EXPECT_EQ(expected.rejections, report.rejections);
    ASSERT_EQ(expected.commitment_products.size(), report.commitment_products.size());
    for (size_t k = 0; k < expected.commitment_products.size(); ++k) {
      ASSERT_EQ(expected.commitment_products[k].size(),
                report.commitment_products[k].size());
      for (size_t m = 0; m < expected.commitment_products[k].size(); ++m) {
        EXPECT_TRUE(expected.commitment_products[k][m] == report.commitment_products[k][m])
            << "product mismatch at prover " << k << " bin " << m;
      }
    }
  }

  Pedersen<G> ped_;
};

TEST_F(RemoteFleetTest, LoopbackFleetMatchesOracle) {
  net::LoopbackFleet fleet(2);
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_total, 4u);
  EXPECT_EQ(report.shards_from_remote, 4u);
  EXPECT_EQ(report.shards_recovered_in_process, 0u);
  EXPECT_TRUE(report.failures.empty())
      << "first failure: " << report.failures[0].reason;
  EXPECT_GE(report.connections_established, 1u);
}

TEST_F(RemoteFleetTest, UnixSocketEndpointWorks) {
  // The same daemon and driver over an AF_UNIX endpoint instead of tcp.
  net::LoopbackFleet fleet(0);  // key material only; server spawned below
  net::SpawnServerOptions spawn;
  spawn.listen = "unix:" + ::testing::TempDir() + "vdp-remote-fleet.sock";
  spawn.auth_key_file = fleet.key_file();
  auto server = net::SpawnVerifyServer(spawn);
  ASSERT_TRUE(server.has_value());
  EXPECT_EQ(server->endpoint, spawn.listen);

  ProtocolConfig config = BaseConfig();
  config.remote_verifiers = {server->endpoint};
  config.remote_auth_key_hex = fleet.key_hex();
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);
  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_from_remote, report.shards_total);
  EXPECT_TRUE(report.failures.empty())
      << "first failure: " << report.failures[0].reason;
  net::DestroyServer(&*server);
}

TEST_F(RemoteFleetTest, DeadEndpointRecoversInProcess) {
  ProtocolConfig config = BaseConfig();
  // Nobody listens here (ephemeral port that was never bound).
  config.remote_verifiers = {"tcp:127.0.0.1:1"};
  config.remote_auth_key_hex = std::string(32, 'a');
  auto uploads = Corpus(config, ped_);

  RemoteFleetOptions options = FastOptions();
  options.connect_timeout_ms = 1'000;
  RemoteVerifierFleet<G> verifier(config, ped_, options);
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  EXPECT_EQ(report.shards_from_remote, 0u);
  EXPECT_FALSE(report.failures.empty());
}

TEST_F(RemoteFleetTest, WrongFleetSecretIsBlamedAndRecovered) {
  net::LoopbackFleet fleet(1);
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  // The driver holds a different secret than the servers.
  config.remote_auth_key_hex = std::string(64, 'f');
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  // The server dropped us after our setup failed its MAC check -- blame
  // says the ack never arrived.
  EXPECT_NE(report.failures[0].reason.find("no setup ack"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(RemoteFleetTest, StaleSetupDigestIsRejected) {
  net::LoopbackFleet fleet(1, /*fault=*/"staledigest:all");
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("digest mismatch"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(RemoteFleetTest, ConnectionDroppedMidShardIsRetriedElsewhere) {
  // Server 0 drops every connection upon receiving a task; server 1 is
  // healthy. Every shard must still complete, remotely or in process.
  net::LoopbackFleet fleet(2, /*fault=*/"close:0");
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_from_remote + report.shards_recovered_in_process,
            report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  bool saw_drop = false;
  for (const RemoteFailure& f : report.failures) {
    if (f.reason.find("no result") != std::string::npos) {
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST_F(RemoteFleetTest, HungServerTimesOutAndRecovers) {
  net::LoopbackFleet fleet(1, /*fault=*/"hang:all");
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  config.num_verify_shards = 2;
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteFleetOptions options = FastOptions();
  options.shard_timeout_ms = 300;
  options.max_attempts_per_shard = 1;
  RemoteVerifierFleet<G> verifier(config, ped_, options);
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("timeout"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(RemoteFleetTest, WrongShardResultIsRejected) {
  // A server that answers with a well-formed, authentically MACed result
  // for the WRONG shard identity: the result-matches-task check must refuse
  // it -- remote verifiers are trusted with work, not verdict integrity.
  net::LoopbackFleet fleet(1, /*fault=*/"wrongshard:all");
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("does not match task"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(RemoteFleetTest, GarbageResultFailsAuthentication) {
  net::LoopbackFleet fleet(1, /*fault=*/"garbage:all");
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("authentication failed"), std::string::npos)
      << report.failures[0].reason;
}

TEST_F(RemoteFleetTest, KilledServerRecoversOnSurvivors) {
  // Two servers; SIGKILL one before the run. The fleet must finish every
  // shard (survivor or in-process) with the verdict unchanged, and the
  // driver must have re-tried rather than wedged.
  net::LoopbackFleet fleet(2);
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  kill((*fleet.mutable_servers())[0].pid, SIGKILL);

  RemoteFleetOptions options = FastOptions();
  options.connect_timeout_ms = 1'000;
  RemoteVerifierFleet<G> verifier(config, ped_, options);
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_EQ(report.shards_from_remote + report.shards_recovered_in_process,
            report.shards_total);
  // The surviving server must have carried real work.
  EXPECT_GE(report.shards_from_remote, 1u);
}

TEST_F(RemoteFleetTest, DeadEndpointsAreSkippedAtDispatchVerdictUnchanged) {
  // Two live servers, but the health registry has already judged one dead
  // (three straight probe failures). Dispatch must never even try that
  // endpoint -- its shards fall back in-process -- and the verdict must stay
  // bit-identical to the oracle.
  net::LoopbackFleet fleet(2);
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  net::HealthRegistry health;
  const std::string dead_ep = fleet.servers()[1].endpoint;
  health.AddEndpoint(fleet.servers()[0].endpoint);
  health.AddEndpoint(dead_ep);
  for (int i = 0; i < 3; ++i) {
    health.ReportProbeFailure(dead_ep, "no health reply (timeout)");
  }
  ASSERT_EQ(health.State(dead_ep), net::EndpointHealth::kDead);
  ASSERT_FALSE(health.Dispatchable(dead_ep));

  RemoteFleetOptions options = FastOptions();
  options.health = &health;
  const uint64_t skips_before =
      obs::GlobalCounter(obs::kFleetDispatchSkips)->value();
  RemoteVerifierFleet<G> verifier(config, ped_, options);
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/true, &report);

  ExpectMatchesOracle(config, verdict, uploads);
  EXPECT_GT(obs::GlobalCounter(obs::kFleetDispatchSkips)->value(), skips_before);
  // The dead lane's shards were recovered locally; the live lane still
  // carried real remote work; a skip is a policy decision, not a failure.
  EXPECT_GT(report.shards_recovered_in_process, 0u);
  EXPECT_GT(report.shards_from_remote, 0u);
  EXPECT_EQ(report.shards_from_remote + report.shards_recovered_in_process,
            report.shards_total);
}

TEST_F(RemoteFleetTest, RemoteBackendThroughFactory) {
  net::LoopbackFleet fleet(2);
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  EXPECT_EQ(SelectVerifyBackend(config), VerifyBackendKind::kRemote);
  auto backend = MakeVerifyBackend<G>(config, ped_);
  EXPECT_EQ(backend->name(), "remote");
  auto report = backend->VerifyAll(uploads);
  EXPECT_EQ(report.backend, "remote");
  ExpectMatchesOracle(config, report, uploads);
}

TEST_F(RemoteFleetTest, ValidateRejectsBadRemoteConfigs) {
  ProtocolConfig config = BaseConfig();
  config.remote_verifiers = {"tcp:127.0.0.1:7000"};
  config.remote_auth_key_hex = "";  // missing key
  auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "remote_auth_key_hex");

  config.remote_auth_key_hex = "abcd";  // too short
  error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "remote_auth_key_hex");

  config.remote_auth_key_hex = std::string(32, 'a');
  EXPECT_FALSE(config.Validate().has_value());

  config.remote_verifiers.push_back("carrier-pigeon:coop");
  error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "remote_verifiers");
}

}  // namespace
}  // namespace vdp
