// Fleet-event observability regression tests (ISSUE 6 satellite): every
// fault class the loopback fleet can inject must leave the expected marks on
// the canonical counters in src/obs/metrics.h. The conformance suite proves
// faults never change the verdict; this file proves they never go UNSEEN --
// a fleet silently retrying its way to the right answer is an outage the
// run-log must surface.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/core/verifier.h"
#include "src/net/auth.h"
#include "src/net/remote_fleet.h"
#include "src/net/server_process.h"
#include "src/obs/metrics.h"

namespace vdp {
namespace {

using G = ModP256;

ProtocolConfig BaseConfig() {
  ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 2;
  config.num_bins = 3;
  config.num_verify_shards = 4;
  config.session_id = "fleet-metrics-test";
  return config;
}

std::vector<ClientUploadMsg<G>> Corpus(const ProtocolConfig& config,
                                       const Pedersen<G>& ped) {
  SecureRng rng("fleet-metrics-corpus");
  std::vector<ClientUploadMsg<G>> uploads;
  for (size_t i = 0; i < 8; ++i) {
    uploads.push_back(
        MakeClientBundle<G>(static_cast<uint32_t>(i % config.num_bins), i, config, ped, rng)
            .upload);
  }
  return uploads;
}

RemoteFleetOptions FastOptions() {
  RemoteFleetOptions options;
  options.connect_timeout_ms = 5'000;
  options.handshake_timeout_ms = 5'000;
  options.shard_timeout_ms = 10'000;
  options.reconnect_backoff_ms = 10;
  return options;
}

class FleetMetricsTest : public ::testing::Test {
 protected:
  // Each test reads counter deltas from a clean slate; the global registry
  // hands out stable pointers, so resetting is safe mid-process.
  void SetUp() override { obs::MetricsRegistry::Global().ResetAll(); }

  uint64_t Count(const char* name) {
    return obs::MetricsRegistry::Global().Snapshot().CounterValue(name);
  }

  Pedersen<G> ped_;
};

TEST_F(FleetMetricsTest, HealthyRunCountsConnectionsAndRemoteShards) {
  net::LoopbackFleet fleet(2);
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/false, &report);
  EXPECT_EQ(verdict.accepted.size(), uploads.size());

  EXPECT_GE(Count(obs::kFleetConnections), 1u);
  EXPECT_EQ(Count(obs::kFleetShardsRemote), report.shards_total);
  EXPECT_EQ(Count(obs::kFleetShardsRecovered), 0u);
  EXPECT_EQ(Count(obs::kFleetBlamed), 0u);
  EXPECT_EQ(Count(obs::kFleetRetries), 0u);
  EXPECT_EQ(Count(obs::kAuthFailures), 0u);
  // The wire layer saw real traffic in this process.
  EXPECT_GT(Count(obs::kWireFramesOut), 0u);
  EXPECT_GT(Count(obs::kWireFramesIn), 0u);
  EXPECT_GT(Count(obs::kWireBytesOut), Count(obs::kWireFramesOut));
}

TEST_F(FleetMetricsTest, WrongShardResultsAreRetriedAndBlamed) {
  // Every remote answer is for the wrong shard: each shard burns its remote
  // attempts (attempt >= 1 increments fleet.retries), gets blamed, and lands
  // in the in-process recovery path.
  net::LoopbackFleet fleet(1, /*fault=*/"wrongshard:all");
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/false, &report);
  EXPECT_EQ(verdict.accepted.size(), uploads.size());
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);

  EXPECT_EQ(Count(obs::kFleetShardsRecovered), report.shards_total);
  EXPECT_EQ(Count(obs::kFleetShardsRemote), 0u);
  EXPECT_GE(Count(obs::kFleetRetries), 1u);
  EXPECT_GE(Count(obs::kFleetBlamed), report.shards_total);
}

TEST_F(FleetMetricsTest, DroppedConnectionsCountReconnects) {
  // Server 0 hangs up on every task; the driver thread pinned to it must
  // reconnect (a connect after a successful earlier connect) between
  // attempts while server 1 carries on.
  net::LoopbackFleet fleet(2, /*fault=*/"close:0");
  ASSERT_EQ(fleet.servers().size(), 2u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/false, &report);
  EXPECT_EQ(verdict.accepted.size(), uploads.size());

  EXPECT_GE(Count(obs::kFleetReconnects), 1u);
  EXPECT_EQ(Count(obs::kFleetReconnects),
            static_cast<uint64_t>(report.reconnects));
  EXPECT_GE(Count(obs::kFleetBlamed), 1u);
  EXPECT_EQ(Count(obs::kFleetShardsRemote) + Count(obs::kFleetShardsRecovered),
            report.shards_total);
}

TEST_F(FleetMetricsTest, GarbageResultsCountAuthFailures) {
  // Authentic-looking frames with corrupt MACs: the receive path must tally
  // auth.failures in THIS process (the driver rejects the frame), alongside
  // the blame entries.
  net::LoopbackFleet fleet(1, /*fault=*/"garbage:all");
  ASSERT_EQ(fleet.servers().size(), 1u);
  ProtocolConfig config = BaseConfig();
  fleet.ApplyTo(&config);
  auto uploads = Corpus(config, ped_);

  RemoteVerifierFleet<G> verifier(config, ped_, FastOptions());
  RemoteFleetReport report;
  auto verdict = verifier.VerifyAll(uploads, /*compute_products=*/false, &report);
  EXPECT_EQ(verdict.accepted.size(), uploads.size());
  EXPECT_EQ(report.shards_recovered_in_process, report.shards_total);

  EXPECT_GE(Count(obs::kAuthFailures), 1u);
  EXPECT_GE(Count(obs::kFleetBlamed), report.shards_total);
  EXPECT_EQ(Count(obs::kFleetShardsRecovered), report.shards_total);
}

TEST_F(FleetMetricsTest, AuthChannelTamperingIncrementsTheCounter) {
  // The counter fires at the AuthChannel layer itself, not only through the
  // fleet driver: a tampered frame on a raw socketpair is enough.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::SessionKey key =
      net::DeriveSessionKey(Bytes(32, 0x44), Bytes(32, 0x55), Bytes(32, 0x66));
  net::AuthChannel client(fds[0], key, /*is_client=*/true);
  net::AuthChannel server(fds[1], key, /*is_client=*/false);

  Bytes payload = {1, 2, 3};
  Bytes sealed =
      net::SealPayload(key, net::kClientToServer, 0, wire::FrameType::kTask, payload);
  sealed[0] ^= 0x01;
  ASSERT_EQ(wire::WriteFrame(fds[0], wire::FrameType::kTask, sealed),
            wire::WriteStatus::kOk);
  wire::Frame frame;
  EXPECT_EQ(server.Read(&frame, 1000), wire::ReadStatus::kAuthFailed);
  EXPECT_EQ(Count(obs::kAuthFailures), 1u);

  // A clean frame afterwards leaves the tally where it was.
  ASSERT_EQ(client.Write(wire::FrameType::kTask, payload), wire::WriteStatus::kOk);
  EXPECT_EQ(server.Read(&frame, 1000), wire::ReadStatus::kOk);
  EXPECT_EQ(Count(obs::kAuthFailures), 1u);

  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace vdp
