// The live introspection plane end to end over real loopback servers:
// authenticated health probes and stats dumps against verify_server, the
// hang fault degrading through the registry, the vdp.stats/v1 JSON
// round-trip, and the Prometheus renderer.
#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/net/health.h"
#include "src/net/introspect.h"
#include "src/net/server_process.h"

namespace vdp {
namespace net {
namespace {

Bytes FleetKey(const LoopbackFleet& fleet) {
  auto key = HexDecode(fleet.key_hex());
  return key.has_value() ? *key : Bytes{};
}

TEST(IntrospectTest, ProbeAnswersWithLivenessSnapshot) {
  LoopbackFleet fleet(1);
  ASSERT_EQ(fleet.servers().size(), 1u);
  Bytes key = FleetKey(fleet);
  auto endpoint = ParseEndpoint(fleet.servers()[0].endpoint);
  ASSERT_TRUE(endpoint.has_value());

  ProbeOutcome outcome =
      ProbeEndpoint(*endpoint, BytesView(key.data(), key.size()), 5000);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.reply.server_id, 0u);
  // A fresh server has served no session: all-zero digest, nothing inflight.
  EXPECT_EQ(outcome.reply.params_digest, (std::array<uint8_t, 32>{}));
  EXPECT_EQ(outcome.reply.inflight_shards, 0u);
  EXPECT_EQ(outcome.reply.queue_depth, 0u);

  // Probing again: uptime is monotone across probes.
  ProbeOutcome again =
      ProbeEndpoint(*endpoint, BytesView(key.data(), key.size()), 5000);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_GE(again.reply.uptime_ms, outcome.reply.uptime_ms);
}

TEST(IntrospectTest, WrongFleetSecretGetsNoAnswer) {
  LoopbackFleet fleet(1);
  ASSERT_EQ(fleet.servers().size(), 1u);
  Bytes wrong(32, 0x5C);
  auto endpoint = ParseEndpoint(fleet.servers()[0].endpoint);
  ASSERT_TRUE(endpoint.has_value());
  ProbeOutcome outcome =
      ProbeEndpoint(*endpoint, BytesView(wrong.data(), wrong.size()), 3000);
  EXPECT_FALSE(outcome.ok);  // server drops us at the first bad MAC
}

TEST(IntrospectTest, StatsReplyIsSchemaStampedAndRoundTrips) {
  LoopbackFleet fleet(1);
  ASSERT_EQ(fleet.servers().size(), 1u);
  Bytes key = FleetKey(fleet);
  auto endpoint = ParseEndpoint(fleet.servers()[0].endpoint);
  ASSERT_TRUE(endpoint.has_value());

  StatsResult result =
      FetchStats(*endpoint, BytesView(key.data(), key.size()), 5000, true);
  ASSERT_TRUE(result.ok) << result.error;
  auto parsed = obs::ParseJson(result.reply.stats_json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->StringOr("schema", ""), kStatsSchema);
  auto snapshot = SnapshotFromJson(*parsed);
  ASSERT_TRUE(snapshot.has_value());
  // The server's own admin counter is visible in its dump: the probe this
  // test ran a moment ago (via FetchStats -> 0 probes, but stats_served is
  // at least this request once the server wrote the reply... the counter
  // increments after the write, so assert on a second fetch).
  StatsResult second =
      FetchStats(*endpoint, BytesView(key.data(), key.size()), 5000, false);
  ASSERT_TRUE(second.ok) << second.error;
  auto second_parsed = obs::ParseJson(second.reply.stats_json);
  ASSERT_TRUE(second_parsed.has_value());
  auto second_snapshot = SnapshotFromJson(*second_parsed);
  ASSERT_TRUE(second_snapshot.has_value());
  EXPECT_GE(second_snapshot->CounterValue(obs::kAdminStatsServed), 1u);
}

TEST(IntrospectTest, HungServerDegradesThroughTheRegistry) {
  // One healthy server, one that hangs on every admin frame. The registry,
  // fed by real probes with a short timeout, must degrade the hung one on
  // the first probe (within two probe intervals) while the healthy one
  // stays healthy.
  LoopbackFleet healthy(1);
  ASSERT_EQ(healthy.servers().size(), 1u);
  net::SpawnServerOptions spawn;
  spawn.auth_key_file = healthy.key_file();
  spawn.server_id = 1;
  spawn.fault = "hang:1";
  auto hung = SpawnVerifyServer(spawn);
  ASSERT_TRUE(hung.has_value());

  Bytes key = FleetKey(healthy);
  HealthPolicy policy;
  policy.probe_timeout_ms = 500;  // a hung probe costs half a second, not 2s
  HealthRegistry registry(policy);
  registry.AddEndpoint(healthy.servers()[0].endpoint);
  registry.AddEndpoint(hung->endpoint);
  HealthProber::ProbeFn probe = SocketProbeFn(key);

  for (int round = 0; round < 3; ++round) {
    for (const EndpointStatus& status : registry.Snapshot()) {
      ProbeOutcome outcome = probe(status.endpoint, policy.probe_timeout_ms);
      if (outcome.ok) {
        registry.ReportProbeSuccess(status.endpoint, outcome.reply, outcome.rtt_us);
      } else {
        registry.ReportProbeFailure(status.endpoint, outcome.error);
      }
    }
    if (round == 0) {
      // Degraded after ONE hung probe: the "within 2 probe intervals" bound.
      EXPECT_EQ(registry.State(hung->endpoint), EndpointHealth::kDegraded);
    }
  }
  EXPECT_EQ(registry.State(healthy.servers()[0].endpoint), EndpointHealth::kHealthy);
  // Three hung probes: dead and undispatched.
  EXPECT_EQ(registry.State(hung->endpoint), EndpointHealth::kDead);
  EXPECT_FALSE(registry.Dispatchable(hung->endpoint));
  DestroyServer(&*hung);
}

TEST(IntrospectTest, SnapshotJsonRoundTripsAndRejectsMalformed) {
  obs::MetricsRegistry registry;
  registry.GetCounter("fleet.retries")->Add(3);
  registry.GetGauge("stream.inflight_shards")->Set(2);
  obs::Histogram* h = registry.GetHistogram("verify.shard_ms", {1.0, 10.0, 100.0});
  h->Record(5.0);
  h->Record(50.0);
  obs::MetricsSnapshot snapshot = registry.Snapshot();

  std::string json = StatsToJson(snapshot, {});
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->StringOr("schema", ""), kStatsSchema);
  auto back = SnapshotFromJson(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->CounterValue("fleet.retries"), 3u);
  ASSERT_EQ(back->gauges.size(), 1u);
  EXPECT_EQ(back->gauges[0].value, 2);
  ASSERT_EQ(back->histograms.size(), 1u);
  EXPECT_EQ(back->histograms[0].count, 2u);
  EXPECT_EQ(back->histograms[0].counts.size(), back->histograms[0].bounds.size() + 1);
  // Percentiles recompute identically from the round-tripped buckets.
  EXPECT_DOUBLE_EQ(back->histograms[0].P50(), snapshot.histograms[0].P50());

  // Malformed shapes are rejected, not misread.
  EXPECT_FALSE(SnapshotFromJson(obs::JsonValue::Array()).has_value());
  auto missing = obs::ParseJson(R"({"counters":{}})");
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(SnapshotFromJson(*missing).has_value());
  auto bad_counts = obs::ParseJson(
      R"({"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1],"counts":[1],"count":1,"sum":1}}})");
  ASSERT_TRUE(bad_counts.has_value());
  EXPECT_FALSE(SnapshotFromJson(*bad_counts).has_value());  // counts != bounds+1
}

TEST(IntrospectTest, PrometheusExpositionShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("health.probes")->Add(7);
  registry.GetGauge("health.endpoints_dead")->Set(1);
  obs::Histogram* h = registry.GetHistogram("health.probe_rtt_us", {10.0, 100.0});
  h->Record(5.0);
  h->Record(50.0);
  h->Record(5000.0);

  std::string text = RenderPrometheus(registry.Snapshot(), "endpoint=\"tcp:h:1\"");
  EXPECT_NE(text.find("# TYPE vdp_health_probes_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("vdp_health_probes_total{endpoint=\"tcp:h:1\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("vdp_health_endpoints_dead{endpoint=\"tcp:h:1\"} 1\n"),
            std::string::npos);
  // Cumulative buckets: 1 at le=10, 2 at le=100, 3 at +Inf == _count.
  EXPECT_NE(text.find("vdp_health_probe_rtt_us_bucket{endpoint=\"tcp:h:1\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("vdp_health_probe_rtt_us_bucket{endpoint=\"tcp:h:1\",le=\"100\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("vdp_health_probe_rtt_us_bucket{endpoint=\"tcp:h:1\",le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("vdp_health_probe_rtt_us_count{endpoint=\"tcp:h:1\"} 3\n"),
            std::string::npos);

  // No labels: bare sample names, no empty brace pair.
  std::string bare = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(bare.find("vdp_health_probes_total 7\n"), std::string::npos);
  EXPECT_EQ(bare.find("{}"), std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace vdp
