// metrics_report: render and trend vdp.runlog/v1 files (src/obs/runlog.h).
//
//   metrics_report <run.jsonl> [more.jsonl ...]
//       Validates every line against the schema and renders the run:
//       headers, per-run stage tables, counters/gauges/histograms, and the
//       stitched span tree (driver + worker/server spans share one trace id,
//       so a fleet run prints as a single tree).
//
//   metrics_report --compare <baseline> <run.jsonl> [--threshold <pct>]
//       The CI trend job. The baseline is either another run-log or one of
//       the committed BENCH_*.json files (the legacy bench format: a
//       "results" array of {scenario, backend|mode, elapsed_ms} rows).
//       Exit 2 on any schema violation or unreadable input -- a run-log
//       that stops validating is a build regression, not a perf question.
//       Rows slower than baseline by more than the threshold (default 25%)
//       print a WARN line; --strict turns those into exit 1.
//
// Zero dependencies beyond the tree's own JSON (src/obs/json.h), like
// everything else in tools/.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/runlog.h"

namespace vdp {
namespace obs {
namespace {

struct ParsedLine {
  JsonValue value;
  std::string file;
  size_t lineno = 0;
};

// Reads one JSONL file, validating every line. Returns false (with
// diagnostics on stderr) on unreadable input or any schema violation.
bool LoadRunLog(const std::string& path, std::vector<ParsedLine>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  size_t lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate blank lines (daemon appends across sessions can leave them).
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) {
      continue;
    }
    auto parsed = ParseJson(line);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "%s:%zu: schema violation: not valid JSON\n", path.c_str(),
                   lineno);
      ok = false;
      continue;
    }
    std::string error;
    if (!ValidateRunLogLine(*parsed, &error)) {
      std::fprintf(stderr, "%s:%zu: schema violation: %s\n", path.c_str(), lineno,
                   error.c_str());
      ok = false;
      continue;
    }
    out->push_back(ParsedLine{std::move(*parsed), path, lineno});
  }
  return ok;
}

std::string Kind(const ParsedLine& line) { return line.value.StringOr("kind", ""); }

// --- rendering ----------------------------------------------------------

void RenderHeaders(const std::vector<ParsedLine>& lines) {
  for (const ParsedLine& line : lines) {
    if (Kind(line) != "header") {
      continue;
    }
    const JsonValue& v = line.value;
    std::printf("run: %s  git=%s  pid=%d  hw=%d  pool=%d workers=%d endpoints=%d",
                v.StringOr("tool", "?").c_str(), v.StringOr("git_sha", "?").c_str(),
                static_cast<int>(v.NumberOr("pid", 0)),
                static_cast<int>(v.NumberOr("hardware_concurrency", 0)),
                static_cast<int>(v.NumberOr("pool_threads", 0)),
                static_cast<int>(v.NumberOr("verify_workers", 0)),
                static_cast<int>(v.NumberOr("remote_endpoints", 0)));
    if (v.NumberOr("n_uploads", 0) > 0) {
      std::printf("  n=%d", static_cast<int>(v.NumberOr("n_uploads", 0)));
    }
    const std::string notes = v.StringOr("notes", "");
    if (!notes.empty()) {
      std::printf("  (%s)", notes.c_str());
    }
    std::printf("\n");
  }
}

void RenderStages(const std::vector<ParsedLine>& lines) {
  bool any = false;
  for (const ParsedLine& line : lines) {
    if (Kind(line) != "stages") {
      continue;
    }
    if (!any) {
      std::printf("\n%-24s %-14s %10s   stages\n", "scenario", "backend", "total_ms");
      any = true;
    }
    const JsonValue& v = line.value;
    std::string stage_text;
    if (const JsonValue* stages = v.Find("stages"); stages != nullptr) {
      for (const auto& [name, ms] : stages->members()) {
        if (!stage_text.empty()) {
          stage_text += "  ";
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s=%.3f", name.c_str(), ms.as_number());
        stage_text += buf;
      }
    }
    std::printf("%-24s %-14s %10.3f   %s\n", v.StringOr("scenario", "?").c_str(),
                v.StringOr("backend", "?").c_str(), v.NumberOr("total_ms", 0),
                stage_text.c_str());
  }
}

void RenderMetrics(const std::vector<ParsedLine>& lines) {
  // Last write wins per (pid, name): daemons re-snapshot cumulative counters
  // on every session, so the final line is the total.
  std::map<std::pair<int, std::string>, const ParsedLine*> metrics;
  for (const ParsedLine& line : lines) {
    if (Kind(line) == "metric") {
      metrics[{static_cast<int>(line.value.NumberOr("pid", 0)),
               line.value.StringOr("name", "")}] = &line;
    }
  }
  if (!metrics.empty()) {
    std::printf("\nmetrics (final value per process):\n");
  }
  for (const auto& [key, line] : metrics) {
    const JsonValue& v = line->value;
    std::printf("  pid=%-8d %-24s %14.0f", key.first, key.second.c_str(),
                v.NumberOr("value", 0));
    if (v.StringOr("type", "") == "gauge") {
      std::printf("  (max %.0f)", v.NumberOr("max", 0));
    }
    std::printf("\n");
  }

  std::map<std::pair<int, std::string>, const ParsedLine*> histograms;
  for (const ParsedLine& line : lines) {
    if (Kind(line) == "histogram") {
      histograms[{static_cast<int>(line.value.NumberOr("pid", 0)),
                  line.value.StringOr("name", "")}] = &line;
    }
  }
  if (!histograms.empty()) {
    std::printf("\nhistograms:\n");
  }
  for (const auto& [key, line] : histograms) {
    const JsonValue& v = line->value;
    const double count = v.NumberOr("count", 0);
    const double sum = v.NumberOr("sum", 0);
    std::printf("  pid=%-8d %-24s count=%-8.0f mean=%.2f", key.first,
                key.second.c_str(), count, count > 0 ? sum / count : 0.0);
    if (v.Find("p50") != nullptr) {
      std::printf("  p50=%.2f p90=%.2f p99=%.2f", v.NumberOr("p50", 0),
                  v.NumberOr("p90", 0), v.NumberOr("p99", 0));
    }
    std::printf("\n");
  }
}

// The bounded-memory headline: every process's mem.rss_hwm_kb footer gauge
// (src/obs/runlog.h Footer), rendered in MiB so a stream-1m log answers
// "did memory stay bounded" at a glance.
void RenderPeakRss(const std::vector<ParsedLine>& lines) {
  std::map<int, double> peak_kb_by_pid;  // last write wins per process
  for (const ParsedLine& line : lines) {
    if (Kind(line) == "metric" && line.value.StringOr("name", "") == kMemRssHwmKb) {
      peak_kb_by_pid[static_cast<int>(line.value.NumberOr("pid", 0))] =
          line.value.NumberOr("max", line.value.NumberOr("value", 0));
    }
  }
  if (peak_kb_by_pid.empty()) {
    return;
  }
  std::printf("\npeak rss (VmHWM):\n");
  for (const auto& [pid, kb] : peak_kb_by_pid) {
    std::printf("  pid=%-8d %10.0f KiB  (%.1f MiB)\n", pid, kb, kb / 1024.0);
  }
}

struct SpanRow {
  std::string name;
  std::string span_id;
  std::string parent;
  std::string proc;
  std::string detail;
  double start_us = 0;
  double duration_us = 0;
};

void PrintSpanTree(const std::vector<SpanRow>& spans,
                   const std::multimap<std::string, size_t>& children,
                   size_t index, int depth) {
  const SpanRow& span = spans[index];
  std::printf("  %*s%-*s %10.0fus @%-10.0f %s%s%s\n", 2 * depth, "",
              std::max(2, 28 - 2 * depth), span.name.c_str(), span.duration_us,
              span.start_us, span.proc.c_str(), span.detail.empty() ? "" : "  ",
              span.detail.c_str());
  // Children sorted by start time for a chronological tree.
  std::vector<size_t> kids;
  auto [lo, hi] = children.equal_range(span.span_id);
  for (auto it = lo; it != hi; ++it) {
    kids.push_back(it->second);
  }
  std::sort(kids.begin(), kids.end(), [&](size_t a, size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });
  for (size_t kid : kids) {
    PrintSpanTree(spans, children, kid, depth + 1);
  }
}

void RenderSpans(const std::vector<ParsedLine>& lines) {
  std::vector<SpanRow> spans;
  for (const ParsedLine& line : lines) {
    if (Kind(line) != "span") {
      continue;
    }
    const JsonValue& v = line.value;
    spans.push_back(SpanRow{v.StringOr("name", "?"), v.StringOr("span_id", ""),
                            v.StringOr("parent_span_id", ""), v.StringOr("proc", ""),
                            v.StringOr("detail", ""), v.NumberOr("start_us", 0),
                            v.NumberOr("duration_us", 0)});
  }
  if (spans.empty()) {
    return;
  }
  std::printf("\nspan tree (%zu spans):\n", spans.size());
  std::multimap<std::string, size_t> children;
  std::map<std::string, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) {
    by_id[spans[i].span_id] = i;
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    // A root is a span whose parent is absent from the file (the backend's
    // trace_parent, or "0" for an unparented collector root).
    if (spans[i].parent.empty() || spans[i].parent == "0" ||
        by_id.find(spans[i].parent) == by_id.end()) {
      roots.push_back(i);
    } else {
      children.emplace(spans[i].parent, i);
    }
  }
  std::sort(roots.begin(), roots.end(), [&](size_t a, size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });
  for (size_t root : roots) {
    PrintSpanTree(spans, children, root, 0);
  }
}

int Render(const std::vector<std::string>& paths) {
  std::vector<ParsedLine> lines;
  bool ok = true;
  for (const std::string& path : paths) {
    ok = LoadRunLog(path, &lines) && ok;
  }
  RenderHeaders(lines);
  RenderStages(lines);
  RenderMetrics(lines);
  RenderPeakRss(lines);
  RenderSpans(lines);
  return ok ? 0 : 2;
}

// --- compare ------------------------------------------------------------

// A comparable row: scenario/backend key -> wall milliseconds.
using TimingTable = std::map<std::string, double>;

std::string RowKey(const JsonValue& row) {
  std::string key = row.StringOr("scenario", "?");
  key += "/";
  if (const JsonValue* backend = row.Find("backend");
      backend != nullptr && backend->is_string()) {
    key += backend->as_string();
  } else {
    // Legacy remote_verify rows: {mode, fleet}.
    key += row.StringOr("mode", "?");
    if (const JsonValue* fleet = row.Find("fleet"); fleet != nullptr && fleet->is_number()) {
      key += ":" + std::to_string(static_cast<int>(fleet->as_number()));
    }
  }
  return key;
}

double RowMs(const JsonValue& row) {
  if (const JsonValue* total = row.Find("total_ms"); total != nullptr && total->is_number()) {
    return total->as_number();
  }
  return row.NumberOr("elapsed_ms", 0);
}

// Loads either format into a timing table: a run-log (stages lines) or a
// legacy BENCH_*.json (one object with a "results" array).
bool LoadTimings(const std::string& path, bool must_validate, TimingTable* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Whole-file parse first: the legacy bench files are one pretty-printed
  // JSON document, which is never valid JSONL.
  if (auto whole = ParseJson(text); whole.has_value() && whole->is_object()) {
    if (const JsonValue* results = whole->Find("results");
        results != nullptr && results->is_array()) {
      for (const JsonValue& row : results->items()) {
        if (row.is_object()) {
          (*out)[RowKey(row)] = RowMs(row);
        }
      }
      return true;
    }
  }

  std::vector<ParsedLine> lines;
  if (!LoadRunLog(path, &lines) && must_validate) {
    return false;
  }
  for (const ParsedLine& line : lines) {
    if (Kind(line) == "stages") {
      (*out)[RowKey(line.value)] = RowMs(line.value);
    }
  }
  return true;
}

int Compare(const std::string& baseline_path, const std::string& current_path,
            double threshold_pct, bool strict) {
  TimingTable baseline;
  TimingTable current;
  // The current run-log must validate (schema violations are exit 2); the
  // baseline may be a legacy bench file, which has no schema to enforce.
  if (!LoadTimings(baseline_path, /*must_validate=*/false, &baseline) ||
      !LoadTimings(current_path, /*must_validate=*/true, &current)) {
    return 2;
  }
  if (current.empty()) {
    std::fprintf(stderr, "error: %s has no stages/results rows to compare\n",
                 current_path.c_str());
    return 2;
  }

  int warnings = 0;
  int compared = 0;
  std::printf("%-32s %12s %12s %9s\n", "scenario/backend", "baseline_ms", "current_ms",
              "delta");
  for (const auto& [key, current_ms] : current) {
    auto it = baseline.find(key);
    if (it == baseline.end()) {
      std::printf("%-32s %12s %12.3f %9s\n", key.c_str(), "-", current_ms, "new");
      continue;
    }
    ++compared;
    const double baseline_ms = it->second;
    const double delta_pct =
        baseline_ms > 0 ? 100.0 * (current_ms - baseline_ms) / baseline_ms : 0;
    const bool regressed = delta_pct > threshold_pct;
    std::printf("%-32s %12.3f %12.3f %+8.1f%%%s\n", key.c_str(), baseline_ms, current_ms,
                delta_pct, regressed ? "  WARN" : "");
    if (regressed) {
      ++warnings;
    }
  }
  for (const auto& [key, baseline_ms] : baseline) {
    if (current.find(key) == current.end()) {
      std::printf("%-32s %12.3f %12s %9s\n", key.c_str(), baseline_ms, "-", "gone");
    }
  }
  std::printf("compared %d rows, %d regression%s over %.0f%%\n", compared, warnings,
              warnings == 1 ? "" : "s", threshold_pct);
  if (warnings > 0 && strict) {
    return 1;
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: metrics_report <run.jsonl> [more.jsonl ...]\n"
               "       metrics_report --compare <baseline.json|.jsonl> <run.jsonl>\n"
               "                      [--threshold <pct>] [--strict]\n");
  return 2;
}

int ReportMain(int argc, char** argv) {
  bool compare = false;
  bool strict = false;
  double threshold = 25.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") {
      compare = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (compare) {
    if (paths.size() != 2) {
      return Usage();
    }
    return Compare(paths[0], paths[1], threshold, strict);
  }
  if (paths.empty()) {
    return Usage();
  }
  return Render(paths);
}

}  // namespace
}  // namespace obs
}  // namespace vdp

int main(int argc, char** argv) { return vdp::obs::ReportMain(argc, argv); }
