// Repo-invariant linter CLI (the lint CI job). Thin shell over the rule
// engine in src/lint/linter.h:
//
//   vdp_lint [--root DIR]                 lint src/ and tools/ (exit 1 on
//                                         any finding)
//   vdp_lint [--root DIR] --changed f...  also run set-level rules
//                                         (wire-golden) over the change list
//   vdp_lint [--root DIR] --self-test     prove the rules still bite: every
//                                         seeded violation in
//                                         tests/lint/fixtures/ must be
//                                         flagged with exactly its expected
//                                         rule, and the clean fixture must
//                                         pass
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/linter.h"

namespace fs = std::filesystem;

namespace {

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool IsCppSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

int PrintFindings(const std::vector<vdp::lint::LintFinding>& findings) {
  for (const vdp::lint::LintFinding& f : findings) {
    if (f.line > 0) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                   f.message.c_str());
    } else {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                   f.message.c_str());
    }
  }
  return findings.empty() ? 0 : 1;
}

// Fixture expectations: file stem -> the one rule it seeds (empty = clean).
struct FixtureCase {
  const char* stem;
  const char* rule;
};
constexpr FixtureCase kFixtureCases[] = {
    {"bad_rng", "rng"},           {"bad_clock", "clock"},
    {"bad_compare", "ct-compare"}, {"bad_metric", "metric-name"},
    {"clean", ""},
};

int RunSelfTest(const fs::path& root, const vdp::lint::LintConfig& config) {
  const fs::path fixtures = root / "tests" / "lint" / "fixtures";
  int failures = 0;
  for (const FixtureCase& c : kFixtureCases) {
    const fs::path file = fixtures / (std::string(c.stem) + ".cc");
    const std::string content = ReadFileOrEmpty(file);
    if (content.empty()) {
      std::fprintf(stderr, "self-test: missing fixture %s\n", file.string().c_str());
      ++failures;
      continue;
    }
    // Fixtures live under tests/ but must be linted as production code, so
    // they are fed through a pseudo-path outside the tests/ exemption.
    const std::string pseudo_path = std::string("fixture:") + c.stem + ".cc";
    const auto findings = vdp::lint::LintSource(pseudo_path, content, config);
    const std::string expected_rule = c.rule;
    if (expected_rule.empty()) {
      if (!findings.empty()) {
        std::fprintf(stderr, "self-test: clean fixture flagged:\n");
        PrintFindings(findings);
        ++failures;
      }
      continue;
    }
    bool hit = false;
    bool wrong_rule = false;
    for (const auto& f : findings) {
      if (f.rule == expected_rule) {
        hit = true;
      } else {
        wrong_rule = true;
      }
    }
    if (!hit || wrong_rule) {
      std::fprintf(stderr, "self-test: fixture %s expected rule '%s', got:\n",
                   c.stem, expected_rule.c_str());
      PrintFindings(findings);
      ++failures;
    }
  }
  // The set-level rule must bite too: a wire-struct edit with no golden
  // update is a violation, and pairing it with the golden test clears it.
  const std::vector<std::string> bare = {"src/wire/wire_format.h"};
  if (vdp::lint::LintChangedSet(bare).empty()) {
    std::fprintf(stderr, "self-test: wire-golden rule missed a bare wire edit\n");
    ++failures;
  }
  const std::vector<std::string> paired = {"src/wire/wire_format.h",
                                           "tests/wire/wire_golden_test.cc"};
  if (!vdp::lint::LintChangedSet(paired).empty()) {
    std::fprintf(stderr, "self-test: wire-golden rule flagged a paired change\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("vdp_lint self-test: PASS (%zu fixtures + wire-golden)\n",
                std::size(kFixtureCases));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool self_test = false;
  std::vector<std::string> changed;
  bool collecting_changed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
      collecting_changed = false;
    } else if (arg == "--self-test") {
      self_test = true;
      collecting_changed = false;
    } else if (arg == "--changed") {
      collecting_changed = true;
    } else if (collecting_changed) {
      changed.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: vdp_lint [--root DIR] [--self-test] [--changed FILE...]\n");
      return 2;
    }
  }

  vdp::lint::LintConfig config;
  config.canonical_metric_names = vdp::lint::ParseCanonicalMetricNames(
      ReadFileOrEmpty(root / "src" / "obs" / "metrics.h"));
  if (config.canonical_metric_names.empty()) {
    std::fprintf(stderr, "vdp_lint: cannot read src/obs/metrics.h under --root %s\n",
                 root.string().c_str());
    return 2;
  }

  if (self_test) {
    return RunSelfTest(root, config);
  }

  std::vector<vdp::lint::LintFinding> findings;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsCppSource(entry.path())) {
        continue;
      }
      const std::string rel = fs::relative(entry.path(), root).string();
      const auto file_findings =
          vdp::lint::LintSource(rel, ReadFileOrEmpty(entry.path()), config);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }
  const auto set_findings = vdp::lint::LintChangedSet(changed);
  findings.insert(findings.end(), set_findings.begin(), set_findings.end());

  const int status = PrintFindings(findings);
  if (status == 0) {
    std::printf("vdp_lint: clean\n");
  }
  return status;
}
