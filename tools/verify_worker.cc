// verify_worker: one shard-verification subprocess of the multi-process
// pipeline (src/shard/process_pool.h).
//
// Protocol (all frames per src/wire/wire_format.h, stdin/stdout):
//   1. worker -> driver: kHello (wire version + pid)
//   2. driver -> worker: kSetup (group name, protocol config, Pedersen bases)
//   3. repeat: driver sends kTask, worker answers kResult (or kError with a
//      diagnostic when it refuses the task); EOF on stdin ends the worker.
//
// The worker is stateless across tasks apart from the session setup, and
// every task/result carries the setup digest, so a result can always be tied
// to the exact parameters it was verified under. Verification itself is the
// same VerifyShard (src/shard/sharded_verifier.h) the in-process pipeline
// runs, so results are bit-identical by construction.
//
// VDP_WORKER_FAULT (test hook, "<mode>:<worker-id|all>" with mode one of
// crash | garbage | hang): makes this worker misbehave on every task it
// receives, so the driver's failure handling can be exercised end to end.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/bytes.h"
#include "src/obs/runlog.h"
#include "src/shard/sharded_verifier.h"
#include "src/shard/worker_process.h"
#include "src/wire/frame_io.h"
#include "src/wire/group_dispatch.h"
#include "src/wire/wire_convert.h"

namespace vdp {
namespace {

enum class FaultMode { kNone, kCrash, kGarbage, kHang };

FaultMode ParseFault(size_t worker_id) {
  const char* env = std::getenv("VDP_WORKER_FAULT");
  if (env == nullptr) {
    return FaultMode::kNone;
  }
  std::string spec(env);
  size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return FaultMode::kNone;
  }
  std::string target = spec.substr(colon + 1);
  if (target != "all" && target != std::to_string(worker_id)) {
    return FaultMode::kNone;
  }
  std::string mode = spec.substr(0, colon);
  if (mode == "crash") {
    return FaultMode::kCrash;
  }
  if (mode == "garbage") {
    return FaultMode::kGarbage;
  }
  if (mode == "hang") {
    return FaultMode::kHang;
  }
  return FaultMode::kNone;
}

[[noreturn]] void ApplyFault(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCrash:
      _exit(134);
    case FaultMode::kGarbage: {
      // Not a frame: the driver's header check must classify this as
      // malformed, not misparse it.
      uint8_t junk[64];
      for (size_t i = 0; i < sizeof(junk); ++i) {
        junk[i] = 0xAB;
      }
      [[maybe_unused]] ssize_t n = write(STDOUT_FILENO, junk, sizeof(junk));
      _exit(1);
    }
    case FaultMode::kHang:
      for (;;) {
        sleep(1);
      }
    case FaultMode::kNone:
      break;
  }
  _exit(1);
}

void SendError(const std::string& message) {
  wire::WireError error;
  error.message = message;
  wire::WriteFrame(STDOUT_FILENO, wire::FrameType::kError, error.Serialize());
}

template <PrimeOrderGroup G>
int Serve(const wire::WireSetup& setup, FaultMode fault) {
  auto session = wire::SessionFromWire<G>(setup);
  if (!session.has_value()) {
    SendError("setup rejected: generators do not decode for " + setup.group_name);
    return 1;
  }
  const ProtocolConfig config = session->first;
  const Pedersen<G> ped = std::move(session->second);
  const Sha256::Digest digest = setup.Digest();

  for (;;) {
    wire::Frame frame;
    wire::ReadStatus status = wire::ReadFrame(STDIN_FILENO, &frame, /*timeout_ms=*/-1);
    if (status == wire::ReadStatus::kEof) {
      return 0;  // driver is done with us
    }
    if (status != wire::ReadStatus::kOk) {
      SendError(std::string("task stream broken: ") + wire::ReadStatusName(status));
      return 1;
    }
    if (frame.type != wire::FrameType::kTask) {
      SendError("unexpected frame type");
      return 1;
    }
    auto task = wire::WireShardTask::Deserialize(frame.payload);
    if (!task.has_value()) {
      SendError("malformed task payload");
      return 1;
    }
    if (!ConstantTimeEqual(BytesView(task->params_digest.data(), task->params_digest.size()),
                           BytesView(digest.data(), digest.size()))) {
      SendError("task params digest does not match session setup");
      continue;  // refuse this task; the session itself is still good
    }
    if (fault != FaultMode::kNone) {
      ApplyFault(fault);
    }

    // When the driver is tracing, record this task's spans against a local
    // collector whose epoch is task receipt; the driver rebases them onto
    // its own timeline when it adopts them from the result.
    obs::TraceCollector tracer;
    const bool tracing = task->trace_id != 0;
    const obs::TraceContext parent{task->trace_id, task->parent_span_id};

    std::vector<ClientUploadMsg<G>> uploads = wire::UploadsFromWire<G>(*task);
    ShardResult<G> result =
        VerifyShard(config, ped, uploads.data(), uploads.size(), task->base,
                    task->shard_index, /*pool=*/nullptr, task->compute_products == 1,
                    tracing ? &tracer : nullptr, parent);
    wire::WireShardResult wire_result = wire::ResultToWire<G>(digest, result);
    if (tracing) {
      wire_result.spans = wire::SpansToWire(tracer.TakeSpans());
    }
    if (wire::WriteFrame(STDOUT_FILENO, wire::FrameType::kResult,
                         wire_result.Serialize()) != wire::WriteStatus::kOk) {
      return 1;  // driver hung up mid-result
    }
  }
}

int WorkerMain(int argc, char** argv) {
  IgnoreSigpipe();
  size_t worker_id = 0;
  if (argc > 1) {
    worker_id = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  }
  const FaultMode fault = ParseFault(worker_id);

  wire::WireHello hello;
  hello.pid = static_cast<uint64_t>(getpid());
  if (wire::WriteFrame(STDOUT_FILENO, wire::FrameType::kHello, hello.Serialize()) !=
      wire::WriteStatus::kOk) {
    return 1;
  }

  wire::Frame frame;
  wire::ReadStatus status = wire::ReadFrame(STDIN_FILENO, &frame, /*timeout_ms=*/-1);
  if (status != wire::ReadStatus::kOk || frame.type != wire::FrameType::kSetup) {
    SendError("expected setup frame");
    return 1;
  }
  auto setup = wire::WireSetup::Deserialize(frame.payload);
  if (!setup.has_value()) {
    SendError("malformed setup frame");
    return 1;
  }

  int exit_code = 1;
  bool known_group = wire::DispatchGroup(setup->group_name, [&](auto tag) {
    using G = typename decltype(tag)::Group;
    exit_code = Serve<G>(*setup, fault);
  });
  if (!known_group) {
    SendError("unknown group backend: " + setup->group_name);
    exit_code = 1;
  }
  // $VDP_METRICS_OUT: flush this worker's counters on the way out, so a
  // fleet run leaves one run-log with every process's contribution. The
  // footer stamps peak RSS -- per-worker memory is trendable from the log.
  if (auto log = obs::RunLogWriter::FromEnv(); log != nullptr) {
    obs::RunHeader header;
    header.tool = "verify_worker";
    header.notes = "worker_id=" + std::to_string(worker_id);
    log->Header(header);
    log->Metrics(obs::MetricsRegistry::Global().Snapshot());
    log->Footer();
  }
  return exit_code;
}

}  // namespace
}  // namespace vdp

int main(int argc, char** argv) {
  return vdp::WorkerMain(argc, argv);
}
