// verify_server: one remote shard-verification daemon of the multi-machine
// pipeline (src/net/remote_fleet.h) -- the socket twin of
// tools/verify_worker.
//
// Per connection (all frames per src/wire/wire_format.h over the socket):
//   1. server -> driver: kServerHello (wire version, pid, --id, nonce)
//   2. driver -> server: kClientHello (nonce)
//      -- both sides derive the session MAC key (src/net/auth.h); every
//         frame from here on is MAC-authenticated and sequence-bound --
//   3. driver -> server: kSetup (group name, protocol config, Pedersen bases)
//   4. server -> driver: kSetupAck (echo of the setup digest: key
//      confirmation + parameter binding)
//   5. repeat: driver sends kTask, server answers kResult (or kError with a
//      diagnostic when it refuses the task); EOF ends the connection.
//
// Admin plane: when the FIRST authenticated frame is kHealthProbe or
// kStatsRequest instead of kSetup, the connection is served as an
// introspection session (src/net/introspect.h): probes are answered with
// uptime / installed setup digest / in-flight shard count / live session
// count, stats requests with a vdp.stats/v1 metrics+spans dump. No setup is
// required, so a verifier that was never handed parameters still answers.
// Replies ride the admin direction bytes and counters (src/net/auth.h).
//
// Connections are served one thread each and are independent sessions; the
// server is stateless across connections. Verification itself is the same
// VerifyShard (src/shard/sharded_verifier.h) every other backend runs, so
// results are bit-identical by construction.
//
// Usage:
//   verify_server --listen tcp:0.0.0.0:7000 --auth-key-file /etc/vdp/fleet.key
//                 [--id N] [--once] [--watch-stdin] [--fault <mode>:<id|all>]
//                 [--metrics-out FILE]
//
// --listen       tcp:<host>:<port> (port 0 = ephemeral) or unix:<path>. The
//                bound endpoint is announced as "LISTENING <endpoint>" on
//                stdout, so supervisors and tests can discover an ephemeral
//                port.
// --auth-key-file  file holding the fleet's pre-shared secret as hex
//                (whitespace ignored; >= 16 bytes decoded). Falls back to
//                $VDP_REMOTE_AUTH_KEY when the flag is absent.
// --id           server id stamped into hellos/acks for blame reports.
// --once         serve a single connection, then exit (tests).
// --watch-stdin  exit when stdin reaches EOF: a test or supervisor that
//                holds a pipe to our stdin takes the fleet down with it,
//                even if it crashes without cleanup.
// --metrics-out  append the vdp.runlog/v1 JSONL run-log here (src/obs/):
//                a header at startup, a counters snapshot on every session
//                setup ack, and a footer (peak RSS) on SIGTERM/SIGINT.
//                $VDP_METRICS_OUT is the env twin.
// --health-interval  also flush a metrics snapshot to the run-log every N
//                milliseconds, so a daemon between sessions still trends.
// --fault        test hook, same spirit as verify_worker's VDP_WORKER_FAULT
//                (env VDP_SERVER_FAULT is honored too): mode one of
//                crash | garbage | hang (on task, like the worker), plus the
//                remote-only modes close (drop the connection mid-shard),
//                wrongshard (answer with a well-formed result for the wrong
//                shard identity), staledigest (ack the setup with a wrong
//                digest). Applies when <id|all> matches --id.
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/bytes.h"
#include "src/common/hex.h"
#include "src/common/rng.h"
#include "src/net/auth.h"
#include "src/net/introspect.h"
#include "src/net/socket.h"
#include "src/obs/runlog.h"
#include "src/shard/sharded_verifier.h"
#include "src/shard/worker_process.h"
#include "src/wire/group_dispatch.h"
#include "src/wire/wire_convert.h"

namespace vdp {
namespace {

// --metrics-out / $VDP_METRICS_OUT run-log; the writer is thread-safe, so
// detached per-connection threads share it. Never freed (daemon lifetime).
obs::RunLogWriter* g_metrics_log = nullptr;

// Flushes the process-wide counters into the run-log (no-op when no
// --metrics-out). Called on every kSetupAck and on clean exits, so a daemon
// that is killed still leaves the counters as of its last session start.
void FlushMetrics() {
  if (g_metrics_log != nullptr) {
    g_metrics_log->Metrics(obs::MetricsRegistry::Global().Snapshot());
  }
}

// Process-wide liveness state the admin plane reports. Written by the
// per-connection threads, read by any admin session.
struct ServerState {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  uint64_t server_id = 0;
  std::atomic<uint64_t> inflight_shards{0};  // tasks inside VerifyShard right now
  std::atomic<int64_t> active_sessions{0};   // authenticated connections alive
  std::mutex digest_mutex;
  Sha256::Digest last_digest{};  // most recently installed setup; all-zero before any
};
ServerState g_state;

uint64_t UptimeMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now() - g_state.start)
                                   .count());
}

// Recent finished spans for kStatsReply, a small mutex-guarded ring. Tasks
// append copies of the spans they ship back to the driver.
constexpr size_t kRecentSpanCap = 64;
std::mutex g_spans_mutex;
std::vector<obs::SpanRecord> g_recent_spans;

void RememberSpans(const std::vector<obs::SpanRecord>& spans) {
  std::lock_guard<std::mutex> lock(g_spans_mutex);
  for (const obs::SpanRecord& span : spans) {
    g_recent_spans.push_back(span);
  }
  if (g_recent_spans.size() > kRecentSpanCap) {
    g_recent_spans.erase(g_recent_spans.begin(),
                         g_recent_spans.end() - static_cast<long>(kRecentSpanCap));
  }
}

std::vector<obs::SpanRecord> RecentSpans() {
  std::lock_guard<std::mutex> lock(g_spans_mutex);
  return g_recent_spans;
}

enum class FaultMode { kNone, kCrash, kGarbage, kHang, kClose, kWrongShard, kStaleDigest };

FaultMode ParseFault(const std::string& spec, size_t server_id) {
  size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return FaultMode::kNone;
  }
  std::string target = spec.substr(colon + 1);
  if (target != "all" && target != std::to_string(server_id)) {
    return FaultMode::kNone;
  }
  std::string mode = spec.substr(0, colon);
  if (mode == "crash") {
    return FaultMode::kCrash;
  }
  if (mode == "garbage") {
    return FaultMode::kGarbage;
  }
  if (mode == "hang") {
    return FaultMode::kHang;
  }
  if (mode == "close") {
    return FaultMode::kClose;
  }
  if (mode == "wrongshard") {
    return FaultMode::kWrongShard;
  }
  if (mode == "staledigest") {
    return FaultMode::kStaleDigest;
  }
  return FaultMode::kNone;
}

void SendError(net::AuthChannel* channel, const std::string& message) {
  wire::WireError error;
  error.message = message;
  channel->Write(wire::FrameType::kError, error.Serialize());
}

// The introspection loop of one authenticated admin session. `first` is the
// already-read first frame; the loop keeps answering so a watch client can
// hold one connection. The hang/crash/close faults apply to probes exactly
// like tasks -- the fleet-health CI job degrades a hung server through this
// path.
void ServeAdmin(net::AuthChannel* channel, wire::Frame first, FaultMode fault) {
  constexpr int kAdminIdleTimeoutMs = 60'000;
  wire::Frame frame = std::move(first);
  for (;;) {
    switch (fault) {
      case FaultMode::kCrash:
        _exit(134);
      case FaultMode::kHang:
        for (;;) {
          sleep(1);
        }
      case FaultMode::kClose:
        return;
      default:
        break;
    }
    if (frame.type == wire::FrameType::kHealthProbe) {
      auto probe = wire::WireHealthProbe::Deserialize(frame.payload);
      if (!probe.has_value()) {
        SendError(channel, "malformed health probe");
        return;
      }
      wire::WireHealthReply reply;
      reply.nonce = probe->nonce;
      reply.server_id = g_state.server_id;
      reply.uptime_ms = UptimeMs();
      {
        std::lock_guard<std::mutex> lock(g_state.digest_mutex);
        reply.params_digest = g_state.last_digest;
      }
      // Fault hook comparing against the public all-zero sentinel; the
      // digest itself is wire-visible, so timing is not a concern here.
      if (fault == FaultMode::kStaleDigest &&
          reply.params_digest != Sha256::Digest{}) {  // vdp-lint: allow(ct-compare)
        reply.params_digest[0] ^= 0xFF;  // lie about the installed epoch
      }
      reply.inflight_shards = g_state.inflight_shards.load(std::memory_order_relaxed);
      reply.queue_depth = static_cast<uint64_t>(
          std::max<int64_t>(0, g_state.active_sessions.load(std::memory_order_relaxed)));
      if (channel->Write(wire::FrameType::kHealthReply, reply.Serialize()) !=
          wire::WriteStatus::kOk) {
        return;
      }
      obs::GlobalCounter(obs::kAdminProbesServed)->Increment();
    } else if (frame.type == wire::FrameType::kStatsRequest) {
      auto request = wire::WireStatsRequest::Deserialize(frame.payload);
      if (!request.has_value()) {
        SendError(channel, "malformed stats request");
        return;
      }
      wire::WireStatsReply reply;
      reply.server_id = g_state.server_id;
      reply.stats_json = net::StatsToJson(
          obs::MetricsRegistry::Global().Snapshot(),
          request->include_spans == 1 ? RecentSpans() : std::vector<obs::SpanRecord>{});
      if (channel->Write(wire::FrameType::kStatsReply, reply.Serialize()) !=
          wire::WriteStatus::kOk) {
        return;
      }
      obs::GlobalCounter(obs::kAdminStatsServed)->Increment();
    } else {
      SendError(channel, "unexpected frame type on admin session");
      return;
    }
    if (channel->Read(&frame, kAdminIdleTimeoutMs) != wire::ReadStatus::kOk) {
      return;  // client done (EOF), idle, or tampered stream
    }
  }
}

// The task loop of one authenticated session.
template <PrimeOrderGroup G>
void ServeTasks(net::AuthChannel* channel, const wire::WireSetup& setup,
                FaultMode fault) {
  auto session = wire::SessionFromWire<G>(setup);
  if (!session.has_value()) {
    SendError(channel, "setup rejected: generators do not decode for " + setup.group_name);
    return;
  }
  const ProtocolConfig config = session->first;
  const Pedersen<G> ped = std::move(session->second);
  const Sha256::Digest digest = setup.Digest();

  // A driver holds its connection only for the duration of one stream and
  // sends tasks continuously within it, so a long silence means the driver
  // is gone (vanished without a FIN: powered off, partitioned). The idle
  // timeout bounds how long a dead session can pin this thread and fd;
  // SO_KEEPALIVE (src/net/socket.cc) backstops it at the TCP layer.
  constexpr int kIdleTimeoutMs = 10 * 60 * 1000;

  for (;;) {
    wire::Frame frame;
    wire::ReadStatus status = channel->Read(&frame, kIdleTimeoutMs);
    if (status != wire::ReadStatus::kOk) {
      return;  // EOF (driver done), idle/dead driver, tampered stream, or broken socket
    }
    if (frame.type != wire::FrameType::kTask) {
      SendError(channel, "unexpected frame type");
      return;
    }
    auto task = wire::WireShardTask::Deserialize(frame.payload);
    if (!task.has_value()) {
      SendError(channel, "malformed task payload");
      return;
    }
    if (!ConstantTimeEqual(BytesView(task->params_digest.data(), task->params_digest.size()),
                           BytesView(digest.data(), digest.size()))) {
      SendError(channel, "task params digest does not match session setup");
      continue;  // refuse this task; the session itself is still good
    }
    switch (fault) {
      case FaultMode::kCrash:
        _exit(134);
      case FaultMode::kGarbage: {
        // Not a valid MAC: the driver must classify this as an auth
        // failure, never feed it to the combiner.
        uint8_t junk[64];
        memset(junk, 0xAB, sizeof(junk));
        wire::WriteFrame(channel->fd(), wire::FrameType::kResult,
                         BytesView(junk, sizeof(junk)));
        return;
      }
      case FaultMode::kHang:
        for (;;) {
          sleep(1);
        }
      case FaultMode::kClose:
        return;  // connection dropped mid-shard
      default:
        break;
    }

    // When the driver is tracing, record this task's spans against a local
    // collector whose epoch is task receipt; the driver rebases them onto
    // its own timeline when it adopts them from the result.
    obs::TraceCollector tracer;
    const bool tracing = task->trace_id != 0;
    const obs::TraceContext parent{task->trace_id, task->parent_span_id};

    std::vector<ClientUploadMsg<G>> uploads = wire::UploadsFromWire<G>(*task);
    g_state.inflight_shards.fetch_add(1, std::memory_order_relaxed);
    ShardResult<G> result =
        VerifyShard(config, ped, uploads.data(), uploads.size(), task->base,
                    task->shard_index, /*pool=*/nullptr, task->compute_products == 1,
                    tracing ? &tracer : nullptr, parent);
    g_state.inflight_shards.fetch_sub(1, std::memory_order_relaxed);
    if (fault == FaultMode::kWrongShard) {
      // Well-formed, authentically MACed -- but for the wrong shard
      // identity. The driver's result-matches-task check must catch it.
      result.shard_index += 1;
    }
    wire::WireShardResult wire_result = wire::ResultToWire<G>(digest, result);
    if (tracing) {
      std::vector<obs::SpanRecord> spans = tracer.TakeSpans();
      RememberSpans(spans);  // the admin plane serves these as "recent spans"
      wire_result.spans = wire::SpansToWire(spans);
    }
    if (channel->Write(wire::FrameType::kResult, wire_result.Serialize()) !=
        wire::WriteStatus::kOk) {
      return;  // driver hung up mid-result
    }
  }
}

void ServeConnection(int fd, Bytes auth_key, size_t server_id, FaultMode fault) {
  constexpr int kHandshakeTimeoutMs = 15'000;

  wire::WireServerHello server_hello;
  server_hello.pid = static_cast<uint64_t>(getpid());
  server_hello.server_id = server_id;
  SecureRng::FromEntropy().FillBytes(server_hello.nonce.data(), server_hello.nonce.size());
  if (wire::WriteFrame(fd, wire::FrameType::kServerHello, server_hello.Serialize(),
                       kHandshakeTimeoutMs) != wire::WriteStatus::kOk) {
    net::CloseFd(&fd);
    return;
  }

  wire::Frame frame;
  if (wire::ReadFrame(fd, &frame, kHandshakeTimeoutMs) != wire::ReadStatus::kOk ||
      frame.type != wire::FrameType::kClientHello) {
    net::CloseFd(&fd);
    return;
  }
  auto client_hello = wire::WireClientHello::Deserialize(frame.payload);
  if (!client_hello.has_value() || client_hello->version != wire::kWireVersion) {
    net::CloseFd(&fd);
    return;
  }

  net::SessionKey key = net::DeriveSessionKey(
      auth_key, BytesView(server_hello.nonce.data(), server_hello.nonce.size()),
      BytesView(client_hello->nonce.data(), client_hello->nonce.size()));
  net::AuthChannel channel(fd, key, /*is_client=*/false);

  // First authenticated frame decides the session kind: kSetup opens a
  // verification session, an admin frame opens an introspection session (no
  // setup needed -- an idle, never-configured verifier still answers). A
  // bad MAC either way is a peer with the wrong fleet secret -- drop the
  // connection without serving it.
  if (channel.Read(&frame, kHandshakeTimeoutMs) != wire::ReadStatus::kOk) {
    net::CloseFd(&fd);
    return;
  }
  if (net::IsAdminFrameType(frame.type)) {
    ServeAdmin(&channel, std::move(frame), fault);
    net::CloseFd(&fd);
    return;
  }
  if (frame.type != wire::FrameType::kSetup) {
    net::CloseFd(&fd);
    return;
  }
  auto setup = wire::WireSetup::Deserialize(frame.payload);
  if (!setup.has_value()) {
    SendError(&channel, "malformed setup frame");
    net::CloseFd(&fd);
    return;
  }

  wire::WireSetupAck ack;
  ack.params_digest = setup->Digest();
  ack.server_id = server_id;
  if (fault == FaultMode::kStaleDigest) {
    ack.params_digest[0] ^= 0xFF;  // a server stuck on another session's setup
  }
  if (channel.Write(wire::FrameType::kSetupAck, ack.Serialize(), kHandshakeTimeoutMs) !=
      wire::WriteStatus::kOk) {
    net::CloseFd(&fd);
    return;
  }
  {
    // The honest digest, even under the staledigest fault: the fault lies
    // on the wire, not in the server's own bookkeeping.
    std::lock_guard<std::mutex> lock(g_state.digest_mutex);
    g_state.last_digest = setup->Digest();
  }
  FlushMetrics();  // one counters snapshot per session start

  g_state.active_sessions.fetch_add(1, std::memory_order_relaxed);
  bool known_group = wire::DispatchGroup(setup->group_name, [&](auto tag) {
    using G = typename decltype(tag)::Group;
    ServeTasks<G>(&channel, *setup, fault);
  });
  if (!known_group) {
    SendError(&channel, "unknown group backend: " + setup->group_name);
  }
  g_state.active_sessions.fetch_sub(1, std::memory_order_relaxed);
  net::CloseFd(&fd);
}

// --watch-stdin: block on stdin until EOF, then take the whole process
// down. The spawning side holds the write end of a pipe; process death --
// clean or not -- closes it.
void WatchStdin() {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (poll(&pfd, 1, -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      _exit(0);
    }
    uint8_t buf[256];
    ssize_t n = read(STDIN_FILENO, buf, sizeof(buf));
    if (n == 0) {
      _exit(0);  // supervisor is gone
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN) {
      _exit(0);
    }
  }
}

// SIGTERM/SIGINT are blocked in every thread (the mask is installed before
// any thread spawns); this dedicated thread consumes one synchronously and
// stamps the run-log footer before exiting -- the async-signal-safe way to
// run non-signal-safe shutdown work (RunLogWriter takes a mutex).
void AwaitShutdownSignal(sigset_t set) {
  int sig = 0;
  while (sigwait(&set, &sig) != 0) {
  }
  FlushMetrics();
  if (g_metrics_log != nullptr) {
    g_metrics_log->Footer();  // peak RSS; makes daemon memory trendable
  }
  _exit(0);
}

int ServerMain(int argc, char** argv) {
  IgnoreSigpipe();
  std::string listen_spec = "tcp:127.0.0.1:0";
  std::string key_file;
  std::string fault_spec;
  std::string metrics_out;
  size_t server_id = 0;
  long health_interval_ms = 0;
  bool once = false;
  bool watch_stdin = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "verify_server: --listen needs an endpoint\n");
        return 2;
      }
      listen_spec = v;
    } else if (arg == "--auth-key-file") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "verify_server: --auth-key-file needs a path\n");
        return 2;
      }
      key_file = v;
    } else if (arg == "--id") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "verify_server: --id needs a number\n");
        return 2;
      }
      server_id = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--fault") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "verify_server: --fault needs <mode>:<id|all>\n");
        return 2;
      }
      fault_spec = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "verify_server: --metrics-out needs a path\n");
        return 2;
      }
      metrics_out = v;
    } else if (arg == "--health-interval") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "verify_server: --health-interval needs milliseconds\n");
        return 2;
      }
      health_interval_ms = std::strtol(v, nullptr, 10);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--watch-stdin") {
      watch_stdin = true;
    } else {
      std::fprintf(stderr, "verify_server: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::string key_hex;
  if (!key_file.empty()) {
    FILE* f = std::fopen(key_file.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "verify_server: cannot read auth key file %s\n",
                   key_file.c_str());
      return 2;
    }
    char c;
    while (std::fread(&c, 1, 1, f) == 1) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        key_hex.push_back(c);
      }
    }
    std::fclose(f);
  } else if (const char* env = std::getenv("VDP_REMOTE_AUTH_KEY")) {
    key_hex = env;
  }
  auto auth_key = HexDecode(key_hex);
  if (!auth_key.has_value() || auth_key->size() < net::kMinAuthKeyBytes) {
    std::fprintf(stderr,
                 "verify_server: no usable auth key (--auth-key-file or "
                 "$VDP_REMOTE_AUTH_KEY, hex, >= %zu bytes)\n",
                 net::kMinAuthKeyBytes);
    return 2;
  }

  auto endpoint = net::ParseEndpoint(listen_spec);
  if (!endpoint.has_value()) {
    std::fprintf(stderr, "verify_server: bad --listen endpoint '%s'\n",
                 listen_spec.c_str());
    return 2;
  }
  auto listener = net::Listener::Open(*endpoint);
  if (!listener.has_value()) {
    std::fprintf(stderr, "verify_server: cannot listen on %s\n", listen_spec.c_str());
    return 1;
  }

  // Announce the bound endpoint (ephemeral tcp port resolved) for
  // supervisors and the test spawn helper.
  std::printf("LISTENING %s\n", net::FormatEndpoint(listener->bound()).c_str());
  std::fflush(stdout);

  // --metrics-out wins over $VDP_METRICS_OUT; either opens in append mode so
  // a fleet of servers (or a restarted one) shares a file cleanly.
  auto metrics_log = metrics_out.empty() ? obs::RunLogWriter::FromEnv()
                                         : obs::RunLogWriter::Open(metrics_out, true);
  if (metrics_log != nullptr) {
    g_metrics_log = metrics_log.release();  // daemon lifetime, shared by threads
    obs::RunHeader header;
    header.tool = "verify_server";
    header.notes = "id=" + std::to_string(server_id) + " listen=" +
                   net::FormatEndpoint(listener->bound()) +
                   (fault_spec.empty() ? "" : " fault=" + fault_spec);
    g_metrics_log->Header(header);
  }

  FaultMode fault = ParseFault(fault_spec, server_id);
  if (fault == FaultMode::kNone) {
    if (const char* env = std::getenv("VDP_SERVER_FAULT")) {
      fault = ParseFault(env, server_id);
    }
  }
  g_state.server_id = server_id;

  // Block SIGTERM/SIGINT process-wide BEFORE any thread spawns (threads
  // inherit the mask), then hand both to the footer-stamping sigwait thread.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGTERM);
  sigaddset(&shutdown_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);
  std::thread(AwaitShutdownSignal, shutdown_signals).detach();

  if (watch_stdin) {
    std::thread(WatchStdin).detach();
  }
  if (health_interval_ms > 0) {
    std::thread([health_interval_ms] {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(health_interval_ms));
        FlushMetrics();
      }
    }).detach();
  }

  for (;;) {
    int fd = listener->Accept(/*timeout_ms=*/-1);
    if (fd < 0) {
      // Transient accept failures (fd exhaustion under a connection spike,
      // EMFILE while sessions drain) must not take the whole verifier down
      // -- in-flight authenticated sessions keep running; back off and
      // keep accepting.
      std::fprintf(stderr, "verify_server: accept failed (retrying)\n");
      usleep(100 * 1000);
      continue;
    }
    if (once) {
      ServeConnection(fd, *auth_key, server_id, fault);
      FlushMetrics();
      return 0;
    }
    std::thread(ServeConnection, fd, *auth_key, server_id, fault).detach();
  }
}

}  // namespace
}  // namespace vdp

int main(int argc, char** argv) {
  return vdp::ServerMain(argc, argv);
}
