// Generates the safe-prime Schnorr-group moduli hard-coded in
// src/group/modp_params.cc. Run once per parameter set:
//
//   gen_params <bits>
//
// Prints the safe prime p (hex). The subgroup of quadratic residues mod p has
// prime order q = (p-1)/2; g = 4 generates it.
//
//   gen_params list
//
// Prints every registered group (the set reachable by name from the wire,
// the benchmarks, and the VDP_GROUP conformance hook).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/timer.h"
#include "src/group/registry.h"
#include "src/math/primality.h"

namespace {

template <size_t L>
void GenerateSchnorr(size_t pbits) {
  vdp::SecureRng rng = vdp::SecureRng::FromEntropy();
  vdp::Stopwatch timer;
  auto desc = vdp::GenerateSchnorrGroup<L>(pbits, 256, rng);
  std::printf("// %zu-bit modulus with 256-bit subgroup (generated in %.1f s)\n", pbits,
              timer.ElapsedSeconds());
  std::printf("p = %s\n", desc.p.ToHex().c_str());
  std::printf("q = %s\n", desc.q.ToHex().c_str());
  std::printf("g = %s\n", desc.g.ToHex().c_str());
}

template <size_t L>
void Generate(size_t bits) {
  vdp::SecureRng rng = vdp::SecureRng::FromEntropy();
  vdp::Stopwatch timer;
  vdp::BigInt<L> p = vdp::GenerateSafePrime<L>(bits, rng);
  std::printf("// %zu-bit safe prime (generated in %.1f s)\n", bits, timer.ElapsedSeconds());
  std::printf("p = %s\n", p.ToHex().c_str());
  vdp::BigInt<L> q = p;
  vdp::BigInt<L>::SubInto(q, q, vdp::BigInt<L>::One());
  q.ShiftRight1();
  std::printf("q = %s\n", q.ToHex().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "list") == 0) {
    std::printf("%-20s %14s %12s\n", "group", "element_bytes", "order_bits");
    for (const auto& info : vdp::RegisteredGroupInfos()) {
      std::printf("%-20s %14zu %12zu\n", info.name.c_str(), info.element_bytes,
                  info.scalar_bits);
    }
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "schnorr") == 0) {
    size_t pbits = static_cast<size_t>(std::atoi(argv[2]));
    switch (pbits) {
      case 512:
        GenerateSchnorr<8>(pbits);
        return 0;
      case 2048:
        GenerateSchnorr<32>(pbits);
        return 0;
      default:
        std::fprintf(stderr, "unsupported schnorr modulus size\n");
        return 1;
    }
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <bits: 64|256|512|1024|2048> | %s schnorr <512|2048> | %s list\n",
                 argv[0], argv[0], argv[0]);
    return 1;
  }
  size_t bits = static_cast<size_t>(std::atoi(argv[1]));
  switch (bits) {
    case 64:
      Generate<1>(bits);
      break;
    case 256:
      Generate<4>(bits);
      break;
    case 512:
      Generate<8>(bits);
      break;
    case 1024:
      Generate<16>(bits);
      break;
    case 2048:
      Generate<32>(bits);
      break;
    default:
      std::fprintf(stderr, "unsupported bit size\n");
      return 1;
  }
  return 0;
}
