// stream_soak: the bounded-memory streaming soak behind the stream-1m CI
// job. Generates --uploads client bundles one chunk at a time, feeds them
// into a streaming VerifyBackend through the rvalue Submit fast path while
// an incremental per-proof oracle (ValidateClientUpload + a running product
// fold) scores the same uploads in this process, then fails loudly if
//
//   * the backend's verdict (accepted set, rendered rejection reasons, or
//     commitment products) differs from the oracle in any bit, or
//   * the process's peak RSS (VmHWM) exceeds --rss-limit-mb.
//
// The point is the conjunction: the stream dispatcher's in-flight window is
// only worth having if the verdict stays bit-identical to the buffered
// per-proof path while memory stays flat, no matter how long the stream
// runs or how the fleet misbehaves (--fault injects verify_server faults
// into a private loopback fleet for the remote backend).
//
// Emits a vdp.runlog/v1 run-log whose footer carries mem.rss_hwm_kb, so the
// memory ceiling is checkable from the committed log alone.
//
// Usage:
//   stream_soak [--uploads N] [--backend per-proof|sharded|multiprocess|remote]
//               [--shard-capacity N] [--window N] [--workers N]
//               [--endpoints N] [--fault <mode>:<id|all>] [--tamper-every K]
//               [--rss-limit-mb M] [--metrics-out PATH] [--scenario NAME]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/timer.h"
#include "src/core/client.h"
#include "src/net/server_process.h"
#include "src/obs/runlog.h"
#include "src/verify/factory.h"

namespace {

// The 64-bit toy group: small enough that a million sigma proofs are cheap
// to make and check, registered end-to-end (wire dispatch included) so the
// multiprocess and remote paths run the real serialization.
using G = vdp::ModP64;

struct SoakArgs {
  size_t uploads = 1'000'000;
  std::string backend = "sharded";
  size_t shard_capacity = 4096;
  size_t window = 0;  // 0 = dispatcher default (two shards per lane)
  size_t workers = 2;
  size_t endpoints = 2;
  std::string fault;
  size_t tamper_every = 0;  // 0 = clean stream
  size_t rss_limit_mb = 0;  // 0 = report but do not enforce
  std::string metrics_out;
  std::string scenario;

  static std::optional<SoakArgs> Parse(int argc, char** argv) {
    SoakArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      const char* value = nullptr;
      if (flag == "--uploads" && (value = next())) {
        args.uploads = std::strtoull(value, nullptr, 10);
      } else if (flag == "--backend" && (value = next())) {
        args.backend = value;
      } else if (flag == "--shard-capacity" && (value = next())) {
        args.shard_capacity = std::strtoull(value, nullptr, 10);
      } else if (flag == "--window" && (value = next())) {
        args.window = std::strtoull(value, nullptr, 10);
      } else if (flag == "--workers" && (value = next())) {
        args.workers = std::strtoull(value, nullptr, 10);
      } else if (flag == "--endpoints" && (value = next())) {
        args.endpoints = std::strtoull(value, nullptr, 10);
      } else if (flag == "--fault" && (value = next())) {
        args.fault = value;
      } else if (flag == "--tamper-every" && (value = next())) {
        args.tamper_every = std::strtoull(value, nullptr, 10);
      } else if (flag == "--rss-limit-mb" && (value = next())) {
        args.rss_limit_mb = std::strtoull(value, nullptr, 10);
      } else if (flag == "--metrics-out" && (value = next())) {
        args.metrics_out = value;
      } else if (flag == "--scenario" && (value = next())) {
        args.scenario = value;
      } else {
        std::fprintf(stderr, "stream_soak: unknown or incomplete flag '%s'\n",
                     flag.c_str());
        return std::nullopt;
      }
    }
    if (args.uploads == 0) {
      std::fprintf(stderr, "stream_soak: --uploads must be >= 1\n");
      return std::nullopt;
    }
    if (args.scenario.empty()) {
      args.scenario = "stream-soak/" + args.backend +
                      (args.fault.empty() ? "" : "+fault");
    }
    return args;
  }
};

// The incremental per-proof oracle: the buffered reference verdict, computed
// upload-by-upload so the comparison itself never holds the corpus.
struct Oracle {
  std::vector<size_t> accepted;
  std::vector<std::string> reasons;
  std::vector<std::vector<G::Element>> products;

  Oracle(const vdp::ProtocolConfig& config)
      : products(config.num_provers,
                 std::vector<G::Element>(config.num_bins, G::Identity())) {}

  void Score(const vdp::ClientUploadMsg<G>& upload, size_t index,
             const vdp::ProtocolConfig& config, const vdp::Pedersen<G>& ped) {
    std::string why;
    if (!vdp::ValidateClientUpload(upload, index, config, ped, &why)) {
      reasons.push_back("client " + std::to_string(index) + ": " + why);
      return;
    }
    accepted.push_back(index);
    for (size_t k = 0; k < products.size(); ++k) {
      for (size_t m = 0; m < products[k].size(); ++m) {
        products[k][m] = G::Mul(products[k][m], upload.commitments[k][m]);
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = SoakArgs::Parse(argc, argv);
  if (!parsed.has_value()) {
    return 2;
  }
  const SoakArgs args = *parsed;

  vdp::ProtocolConfig config;
  config.epsilon = 50.0;
  config.num_provers = 1;
  config.num_bins = 2;
  config.session_id = "stream-soak";
  config.stream_shard_capacity = args.shard_capacity;
  config.stream_max_inflight_shards = args.window;

  // A private loopback fleet (with the requested fault spec) for the remote
  // backend; must outlive the backend's last Finish.
  std::unique_ptr<vdp::net::LoopbackFleet> fleet;
  auto kind = vdp::VerifyBackendKindFromName(args.backend);
  if (!kind.has_value()) {
    std::fprintf(stderr, "stream_soak: unknown backend '%s'\n", args.backend.c_str());
    return 2;
  }
  switch (*kind) {
    case vdp::VerifyBackendKind::kPerProof:
      break;
    case vdp::VerifyBackendKind::kBatched:
      config.batch_verify = true;
      break;
    case vdp::VerifyBackendKind::kSharded:
      config.num_verify_shards = 8;
      break;
    case vdp::VerifyBackendKind::kMultiprocess:
      config.verify_workers = args.workers < 2 ? 2 : args.workers;
      break;
    case vdp::VerifyBackendKind::kRemote:
      fleet = std::make_unique<vdp::net::LoopbackFleet>(args.endpoints, args.fault);
      fleet->ApplyTo(&config);
      break;
  }

  // Run-log plumbing: every writer (this process and any worker/server
  // subprocess reached through $VDP_METRICS_OUT) must append.
  const char* out_env = std::getenv("VDP_METRICS_OUT");
  std::string log_path = !args.metrics_out.empty() ? args.metrics_out
                         : out_env != nullptr && out_env[0] != '\0'
                             ? out_env
                             : "STREAM_soak.jsonl";
  if (out_env == nullptr || out_env[0] == '\0' || !args.metrics_out.empty()) {
    setenv("VDP_METRICS_OUT", log_path.c_str(), 1);
  }
  auto log = vdp::obs::RunLogWriter::Open(log_path, /*append=*/true);

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  vdp::ThreadPool pool(hw);
  vdp::Pedersen<G> ped;
  vdp::SecureRng rng("stream-soak");

  if (log != nullptr) {
    vdp::obs::RunHeader header;
    header.tool = "stream_soak";
    header.group = G::Name();
    header.n_uploads = args.uploads;
    header.num_shards = config.num_verify_shards;
    header.pool_threads = hw;
    header.verify_workers = config.verify_workers;
    header.remote_endpoints = config.remote_verifiers.size();
    header.notes = "capacity=" + std::to_string(args.shard_capacity) +
                   " window=" + std::to_string(args.window) +
                   (args.fault.empty() ? "" : " fault=" + args.fault) +
                   (args.tamper_every == 0
                        ? ""
                        : " tamper-every=" + std::to_string(args.tamper_every));
    log->Header(header);
  }

  auto backend = vdp::MakeVerifyBackend<G>(*kind, config, ped);
  vdp::VerifyOptions options;
  options.pool = &pool;

  std::printf("stream_soak: %zu uploads -> %s (capacity=%zu window=%zu)\n",
              args.uploads, args.backend.c_str(), args.shard_capacity, args.window);

  Oracle oracle(config);
  vdp::Stopwatch total_timer;
  backend->Start(options);

  // Generate-score-submit in chunks: the only full-corpus state this process
  // keeps is the oracle's accepted-index list, never the uploads themselves.
  constexpr size_t kChunk = 8192;
  const size_t progress_stride = args.uploads >= 8 ? args.uploads / 8 : args.uploads;
  std::vector<vdp::ClientUploadMsg<G>> chunk;
  for (size_t base = 0; base < args.uploads; base += kChunk) {
    const size_t count = std::min(kChunk, args.uploads - base);
    chunk.clear();
    chunk.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const size_t index = base + i;
      auto upload = vdp::MakeClientBundle<G>(index % 2, index, config, ped, rng).upload;
      if (args.tamper_every != 0 && index % args.tamper_every == args.tamper_every - 1) {
        upload.bin_proofs[0].z0 += G::Scalar::One();
      }
      oracle.Score(upload, index, config, ped);
      chunk.push_back(std::move(upload));
    }
    backend->Submit(std::move(chunk));
    if ((base + count) % progress_stride < kChunk || base + count == args.uploads) {
      const vdp::VerifyProgress p = backend->Progress();
      std::printf("  %9zu ingested  shards cut=%zu done=%zu inflight=%zu "
                  "buffered=%zu  backpressure=%.1f ms  rss_hwm=%llu KiB\n",
                  p.uploads_ingested, p.shards_cut, p.shards_done,
                  p.inflight_shards, p.buffered_uploads, p.backpressure_wait_ms,
                  static_cast<unsigned long long>(vdp::obs::CurrentRssHwmKb()));
    }
  }
  auto report = backend->Finish();
  const double total_ms = total_timer.ElapsedMillis();

  const uint64_t rss_kb = vdp::obs::CurrentRssHwmKb();
  std::printf("%s: %zu accepted / %zu rejected over %zu shards in %.1f ms "
              "(peak rss %llu KiB)\n",
              report.backend.c_str(), report.accepted.size(),
              report.rejections.size(), report.num_shards, total_ms,
              static_cast<unsigned long long>(rss_kb));

  if (log != nullptr) {
    log->Stages(args.scenario, report.backend, report.timings.Stages(), total_ms,
                {{"accepted", static_cast<double>(report.accepted.size())},
                 {"rejected", static_cast<double>(report.rejections.size())},
                 {"num_shards", static_cast<double>(report.num_shards)},
                 {"pool_threads", static_cast<double>(hw)},
                 {"rss_hwm_kb", static_cast<double>(rss_kb)}});
    log->Metrics(vdp::obs::MetricsRegistry::Global().Snapshot());
    log->Footer();
    std::printf("wrote %s\n", log->path().c_str());
  }

  // The verdict gate: every divergence from the oracle is fatal, listed
  // before exiting so CI logs show what went wrong.
  int rc = 0;
  if (report.accepted != oracle.accepted) {
    std::fprintf(stderr,
                 "FATAL: accepted set diverged from the per-proof oracle "
                 "(%zu vs %zu entries)\n",
                 report.accepted.size(), oracle.accepted.size());
    rc = 1;
  }
  if (report.RenderedReasons() != oracle.reasons) {
    std::fprintf(stderr, "FATAL: rejection reasons diverged from the oracle\n");
    rc = 1;
  }
  if (!report.has_products()) {
    std::fprintf(stderr, "FATAL: report carries no commitment products\n");
    rc = 1;
  } else if (report.commitment_products != oracle.products) {
    std::fprintf(stderr, "FATAL: commitment products diverged from the oracle\n");
    rc = 1;
  }

  // The memory gate: VmHWM is the whole process's peak, so the bound covers
  // corpus generation and the oracle too -- conservatively strict.
  if (args.rss_limit_mb != 0 && rss_kb > args.rss_limit_mb * 1024) {
    std::fprintf(stderr, "FATAL: peak RSS %llu KiB exceeds --rss-limit-mb %zu\n",
                 static_cast<unsigned long long>(rss_kb), args.rss_limit_mb);
    rc = rc == 0 ? 3 : rc;
  }
  if (rc == 0) {
    std::printf("OK: verdict bit-identical to the per-proof oracle%s\n",
                args.rss_limit_mb != 0 ? ", RSS within bound" : "");
  }
  return rc;
}
