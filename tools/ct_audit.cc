// Dynamic constant-time audit (the ct-audit CI job): runs the dudect-style
// timing engine in src/common/ct_check.h over every verdict-relevant
// primitive, alongside positive controls that MUST be flagged for the run to
// count. Exit status is the gate:
//
//   required checks  -- ConstantTimeEqual, HmacSha256::Verify / Mac,
//                       DeriveSessionKey -- must show NO leak: their timing
//                       may not separate a correct secret from an
//                       adversarial one (first-byte difference, the
//                       early-exit worst case).
//   positive controls -- a raw memcmp over 4 KiB and a branchy
//                       square-and-multiply -- must LEAK; if the machine is
//                       too noisy to flag a deliberate early-exit, a clean
//                       result on the required checks means nothing.
//   info checks       -- group exponentiation. The verifier only ever
//                       exponentiates public data (commitments, proof
//                       elements), and the bigint stack underneath is
//                       variable-time by design; reported for visibility,
//                       never gating.
//
// Required checks get several attempts and keep the best |t|: a genuine leak
// reproduces on every attempt, while a scheduler burst that fakes one does
// not. Positive controls symmetrically keep the worst |t|.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/ct_check.h"
#include "src/common/hmac.h"
#include "src/common/rng.h"
#include "src/group/modp_group.h"
#include "src/net/auth.h"

namespace vdp {
namespace {

enum class CheckKind { kRequiredConstantTime, kPositiveControl, kInfoOnly };

struct CheckSpec {
  std::string name;
  CheckKind kind;
  std::function<void(bool adversarial)> op;
};

// Keeps the optimizer from deleting a result the timing depends on.
template <typename T>
void Consume(const T& value) {
  CtCompilerBarrier(&value);
}

std::vector<CheckSpec> BuildChecks() {
  std::vector<CheckSpec> checks;
  SecureRng rng("ct-audit-inputs");

  // -- required: the comparison every MAC/digest verdict routes through.
  {
    auto secret = std::make_shared<Bytes>(rng.RandomBytes(32));
    auto equal = std::make_shared<Bytes>(*secret);
    auto differs = std::make_shared<Bytes>(*secret);
    (*differs)[0] ^= 0x01;  // early-exit worst case for a naive compare
    CtPoison(secret->data(), secret->size());
    checks.push_back({"ConstantTimeEqual/32B", CheckKind::kRequiredConstantTime,
                      [=](bool adversarial) {
                        const Bytes& probe = adversarial ? *differs : *equal;
                        bool ok = ConstantTimeEqual(*secret, probe);
                        CtUnpoison(&ok, sizeof(ok));
                        Consume(ok);
                      }});
  }

  // -- required: full HMAC verification path (tag recompute + CT compare).
  {
    auto key = std::make_shared<Bytes>(rng.RandomBytes(32));
    auto msg = std::make_shared<Bytes>(rng.RandomBytes(256));
    auto good = std::make_shared<HmacSha256::Tag>(HmacSha256::Mac(*key, *msg));
    auto bad = std::make_shared<HmacSha256::Tag>(*good);
    (*bad)[0] ^= 0x01;
    CtPoison(key->data(), key->size());
    checks.push_back({"HmacSha256::Verify", CheckKind::kRequiredConstantTime,
                      [=](bool adversarial) {
                        const HmacSha256::Tag& expected = adversarial ? *bad : *good;
                        bool ok = HmacSha256::Verify(
                            expected, HmacSha256::Mac(*key, *msg));
                        CtUnpoison(&ok, sizeof(ok));
                        Consume(ok);
                      }});
  }

  // -- required: MAC computation must not branch on key bytes.
  {
    auto fixed_key = std::make_shared<Bytes>(rng.RandomBytes(32));
    auto sparse_key = std::make_shared<Bytes>(Bytes(32, 0x00));  // degenerate key
    auto msg = std::make_shared<Bytes>(rng.RandomBytes(256));
    CtPoison(fixed_key->data(), fixed_key->size());
    checks.push_back({"HmacSha256::Mac/key-classes", CheckKind::kRequiredConstantTime,
                      [=](bool adversarial) {
                        const Bytes& key = adversarial ? *sparse_key : *fixed_key;
                        Consume(HmacSha256::Mac(key, *msg));
                      }});
  }

  // -- required: session-key derivation over the fleet's pre-shared secret.
  {
    auto fixed_secret = std::make_shared<Bytes>(rng.RandomBytes(32));
    auto sparse_secret = std::make_shared<Bytes>(Bytes(32, 0xFF));
    auto server_nonce = std::make_shared<Bytes>(rng.RandomBytes(16));
    auto client_nonce = std::make_shared<Bytes>(rng.RandomBytes(16));
    CtPoison(fixed_secret->data(), fixed_secret->size());
    checks.push_back({"net::DeriveSessionKey", CheckKind::kRequiredConstantTime,
                      [=](bool adversarial) {
                        const Bytes& secret =
                            adversarial ? *sparse_secret : *fixed_secret;
                        Consume(net::DeriveSessionKey(secret, *server_nonce,
                                                      *client_nonce));
                      }});
  }

  // -- positive control: memcmp's early exit over 4 KiB must be flagged.
  {
    auto base = std::make_shared<Bytes>(rng.RandomBytes(4096));
    auto equal = std::make_shared<Bytes>(*base);
    auto differs = std::make_shared<Bytes>(*base);
    (*differs)[0] ^= 0x01;
    checks.push_back({"control:memcmp/4KiB-early-exit", CheckKind::kPositiveControl,
                      [=](bool adversarial) {
                        const Bytes& probe = adversarial ? *differs : *equal;
                        int cmp = std::memcmp(base->data(), probe.data(),
                                              base->size());  // vdp-lint: allow(ct-compare)
                        Consume(cmp);
                      }});
  }

  // -- positive control: branchy square-and-multiply over a secret exponent.
  {
    checks.push_back({"control:branchy-square-and-multiply",
                      CheckKind::kPositiveControl, [](bool adversarial) {
                        const uint64_t exponent =
                            adversarial ? 0xFFFFFFFFFFFFFFFFull : 0ull;
                        uint64_t acc = CtOpaque(3);
                        uint64_t base = CtOpaque(7);
                        for (int bit = 0; bit < 64; ++bit) {
                          acc *= acc;
                          if ((exponent >> bit) & 1ull) {  // the leak under test
                            for (int k = 0; k < 16; ++k) {
                              acc = acc * base + CtOpaque(1);
                            }
                          }
                        }
                        Consume(acc);
                      }});
  }

  // -- info: group exponentiation (public-data operands in the verifier).
  {
    using G = ModP256;
    auto fixed_scalar = std::make_shared<G::Scalar>(G::Scalar::Random(rng));
    auto one = std::make_shared<G::Scalar>(G::Scalar::One());
    checks.push_back({"info:ModP256::ExpG/scalar-classes", CheckKind::kInfoOnly,
                      [=](bool adversarial) {
                        const G::Scalar& s = adversarial ? *one : *fixed_scalar;
                        Consume(G::ExpG(s));
                      }});
  }

  return checks;
}

const char* KindLabel(CheckKind kind) {
  switch (kind) {
    case CheckKind::kRequiredConstantTime:
      return "required";
    case CheckKind::kPositiveControl:
      return "control ";
    case CheckKind::kInfoOnly:
      return "info    ";
  }
  return "?";
}

}  // namespace
}  // namespace vdp

int main(int argc, char** argv) {
  using namespace vdp;
  TimingAuditOptions options;
  int attempts = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--samples" && i + 1 < argc) {
      options.samples_per_class = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--attempts" && i + 1 < argc) {
      attempts = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: ct_audit [--samples N] [--attempts N]\n");
      return 2;
    }
  }

  bool failed = false;
  std::printf("ct_audit: %zu samples/class, %d attempt(s), |t| threshold 10\n",
              options.samples_per_class, attempts);
  for (const CheckSpec& check : BuildChecks()) {
    const bool want_leak = check.kind == CheckKind::kPositiveControl;
    // Required checks keep the best attempt (a real leak reproduces every
    // time); controls keep the worst (a real early-exit leaks every time).
    double best_abs_t = want_leak ? 1e300 : 0.0;
    double reported_t = 0.0;
    for (int a = 0; a < attempts; ++a) {
      const TimingAuditResult result = RunTimingAudit(check.op, options);
      const double abs_t = result.t_stat < 0 ? -result.t_stat : result.t_stat;
      const bool better = want_leak ? abs_t < best_abs_t : abs_t > best_abs_t;
      if (a == 0 || better) {
        best_abs_t = abs_t;
        reported_t = result.t_stat;
      }
      // Early accept: a required check that measured clean, or a control
      // that already leaked unambiguously, needs no further attempts.
      if (!want_leak && abs_t <= 10.0) {
        break;
      }
      if (want_leak && abs_t > 10.0) {
        break;
      }
    }
    const bool leaks = best_abs_t > 10.0;
    bool ok = true;
    if (check.kind == CheckKind::kRequiredConstantTime) {
      ok = !leaks;
    } else if (check.kind == CheckKind::kPositiveControl) {
      ok = leaks;
    }
    failed = failed || !ok;
    std::printf("  [%s] %-40s t=%+9.2f  %s\n", KindLabel(check.kind),
                check.name.c_str(), reported_t,
                check.kind == CheckKind::kInfoOnly ? (leaks ? "variable-time (expected)"
                                                            : "no separation")
                : ok                               ? "ok"
                                                   : "FAIL");
  }
  if (failed) {
    std::printf("ct_audit: FAIL\n");
    return 1;
  }
  std::printf("ct_audit: PASS\n");
  return 0;
}
