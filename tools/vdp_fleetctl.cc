// vdp_fleetctl: live fleet introspection from the command line.
//
// Talks the authenticated admin plane (src/net/introspect.h) to a fleet of
// verify_server daemons: health probes, metrics/span dumps, Prometheus
// text exposition. Every reply is MAC-verified under the fleet secret, so
// what this tool prints required key possession to forge.
//
// Usage:
//   vdp_fleetctl status --endpoints tcp:h:p[,tcp:h:p...] --auth-key-file F
//                [--probes N] [--timeout MS] [--json]
//   vdp_fleetctl stats  --endpoints ... --auth-key-file F
//                [--timeout MS] [--json | --prom] [--spans]
//   vdp_fleetctl watch  --endpoints ... --auth-key-file F
//                [--interval MS] [--timeout MS] [--count N]
//
// status  probes each endpoint --probes times (default 2) through the same
//         HealthRegistry state machine the fleet driver uses, then reports
//         the judged state per endpoint. A hung server therefore shows as
//         "degraded" (or "dead" with enough probes), not as a tool timeout.
//         --json emits a vdp.fleetctl/v1 document for scripts and CI.
// stats   fetches each server's vdp.stats/v1 dump: counters, gauges, and
//         histograms with p50/p90/p99. --json prints the raw per-endpoint
//         payloads; --prom renders Prometheus text exposition with an
//         endpoint label per sample (scrapers work unchanged).
// watch   repeats a status sweep every --interval ms (default 1000),
//         --count times (default forever), one line per endpoint per sweep.
//
// The fleet secret comes from --auth-key-file or $VDP_REMOTE_AUTH_KEY, same
// as verify_server. Exit code: 0 when every endpoint answered healthy,
// 1 when any endpoint is degraded/dead/unreachable, 2 on usage errors.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hex.h"
#include "src/net/auth.h"
#include "src/net/health.h"
#include "src/net/introspect.h"
#include "src/obs/json.h"

namespace vdp {
namespace {

inline constexpr const char* kFleetctlSchema = "vdp.fleetctl/v1";

std::vector<std::string> SplitEndpoints(const std::string& spec) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    if (comma > start) {
      out.push_back(spec.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

struct Options {
  std::string mode;
  std::vector<std::string> endpoints;
  std::string key_file;
  int timeout_ms = 2000;
  int probes = 2;
  int interval_ms = 1000;
  long count = -1;  // watch sweeps; -1 = forever
  bool json = false;
  bool prom = false;
  bool spans = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: vdp_fleetctl <status|stats|watch> --endpoints tcp:h:p[,...]\n"
               "       [--auth-key-file F] [--timeout MS] [--probes N]\n"
               "       [--interval MS] [--count N] [--json] [--prom] [--spans]\n");
  return 2;
}

// Same key sourcing as verify_server: hex file (whitespace ignored) or
// $VDP_REMOTE_AUTH_KEY.
bool LoadAuthKey(const std::string& key_file, Bytes* out) {
  std::string key_hex;
  if (!key_file.empty()) {
    FILE* f = std::fopen(key_file.c_str(), "r");
    if (f == nullptr) {
      return false;
    }
    char c;
    while (std::fread(&c, 1, 1, f) == 1) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        key_hex.push_back(c);
      }
    }
    std::fclose(f);
  } else if (const char* env = std::getenv("VDP_REMOTE_AUTH_KEY")) {
    key_hex = env;
  }
  auto key = HexDecode(key_hex);
  if (!key.has_value() || key->size() < net::kMinAuthKeyBytes) {
    return false;
  }
  *out = std::move(*key);
  return true;
}

// One status sweep: `probes` rounds against every endpoint, judged by a
// fresh HealthRegistry with the default (driver) policy.
std::vector<net::EndpointStatus> RunStatusSweep(const Options& options,
                                                const Bytes& auth_key) {
  net::HealthRegistry registry;
  net::HealthProber::ProbeFn probe = net::SocketProbeFn(auth_key);
  for (const std::string& endpoint : options.endpoints) {
    registry.AddEndpoint(endpoint);
  }
  for (int round = 0; round < options.probes; ++round) {
    for (const std::string& endpoint : options.endpoints) {
      net::ProbeOutcome outcome = probe(endpoint, options.timeout_ms);
      if (outcome.ok) {
        registry.ReportProbeSuccess(endpoint, outcome.reply, outcome.rtt_us);
      } else {
        registry.ReportProbeFailure(endpoint, outcome.error);
      }
    }
  }
  return registry.Snapshot();
}

obs::JsonValue StatusToJson(const std::vector<net::EndpointStatus>& statuses) {
  obs::JsonValue endpoints = obs::JsonValue::Array();
  for (const net::EndpointStatus& s : statuses) {
    obs::JsonValue e = obs::JsonValue::Object();
    e.Set("endpoint", obs::JsonValue::String(s.endpoint));
    e.Set("state", obs::JsonValue::String(net::EndpointHealthName(s.state)));
    e.Set("probes", obs::JsonValue::Number(static_cast<double>(s.probes)));
    e.Set("failures", obs::JsonValue::Number(static_cast<double>(s.failures)));
    e.Set("server_id", obs::JsonValue::Number(static_cast<double>(s.server_id)));
    e.Set("uptime_ms", obs::JsonValue::Number(static_cast<double>(s.last_uptime_ms)));
    e.Set("rtt_us", obs::JsonValue::Number(static_cast<double>(s.last_rtt_us)));
    e.Set("inflight_shards",
          obs::JsonValue::Number(static_cast<double>(s.inflight_shards)));
    e.Set("queue_depth", obs::JsonValue::Number(static_cast<double>(s.queue_depth)));
    e.Set("restarts_seen", obs::JsonValue::Number(static_cast<double>(s.restarts_seen)));
    if (!s.last_error.empty()) {
      e.Set("last_error", obs::JsonValue::String(s.last_error));
    }
    endpoints.Append(std::move(e));
  }
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("schema", obs::JsonValue::String(kFleetctlSchema));
  out.Set("endpoints", std::move(endpoints));
  return out;
}

void PrintStatusLine(const net::EndpointStatus& s) {
  std::printf("%-28s %-10s uptime=%llums rtt=%lluus inflight=%llu sessions=%llu",
              s.endpoint.c_str(), net::EndpointHealthName(s.state),
              static_cast<unsigned long long>(s.last_uptime_ms),
              static_cast<unsigned long long>(s.last_rtt_us),
              static_cast<unsigned long long>(s.inflight_shards),
              static_cast<unsigned long long>(s.queue_depth));
  if (s.restarts_seen > 0) {
    std::printf(" restarts=%llu", static_cast<unsigned long long>(s.restarts_seen));
  }
  if (!s.last_error.empty()) {
    std::printf("  (%s)", s.last_error.c_str());
  }
  std::printf("\n");
}

bool AllHealthy(const std::vector<net::EndpointStatus>& statuses) {
  for (const net::EndpointStatus& s : statuses) {
    if (s.state != net::EndpointHealth::kHealthy) {
      return false;
    }
  }
  return true;
}

int RunStatus(const Options& options, const Bytes& auth_key) {
  std::vector<net::EndpointStatus> statuses = RunStatusSweep(options, auth_key);
  if (options.json) {
    std::printf("%s\n", obs::WriteJson(StatusToJson(statuses)).c_str());
  } else {
    for (const net::EndpointStatus& s : statuses) {
      PrintStatusLine(s);
    }
  }
  return AllHealthy(statuses) ? 0 : 1;
}

int RunStats(const Options& options, const Bytes& auth_key) {
  int exit_code = 0;
  for (const std::string& endpoint_name : options.endpoints) {
    auto endpoint = net::ParseEndpoint(endpoint_name);
    if (!endpoint.has_value()) {
      std::fprintf(stderr, "vdp_fleetctl: bad endpoint '%s'\n", endpoint_name.c_str());
      exit_code = 1;
      continue;
    }
    net::StatsResult result =
        net::FetchStats(*endpoint, BytesView(auth_key.data(), auth_key.size()),
                        options.timeout_ms, options.spans);
    if (!result.ok) {
      std::fprintf(stderr, "vdp_fleetctl: %s: %s\n", endpoint_name.c_str(),
                   result.error.c_str());
      exit_code = 1;
      continue;
    }
    if (options.json) {
      // One line per endpoint: {"endpoint":...,"stats":<the server's dump>}.
      auto parsed = obs::ParseJson(result.reply.stats_json);
      obs::JsonValue line = obs::JsonValue::Object();
      line.Set("endpoint", obs::JsonValue::String(endpoint_name));
      line.Set("stats", std::move(*parsed));  // FetchStats validated the parse
      std::printf("%s\n", obs::WriteJson(line).c_str());
      continue;
    }
    auto parsed = obs::ParseJson(result.reply.stats_json);
    auto snapshot = net::SnapshotFromJson(*parsed);
    if (!snapshot.has_value()) {
      std::fprintf(stderr, "vdp_fleetctl: %s: malformed snapshot\n",
                   endpoint_name.c_str());
      exit_code = 1;
      continue;
    }
    if (options.prom) {
      std::printf("%s", net::RenderPrometheus(
                            *snapshot, "endpoint=\"" + endpoint_name + "\"")
                            .c_str());
      continue;
    }
    std::printf("== %s (server_id=%llu)\n", endpoint_name.c_str(),
                static_cast<unsigned long long>(result.reply.server_id));
    for (const obs::CounterSnapshot& c : snapshot->counters) {
      std::printf("  %-28s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    }
    for (const obs::GaugeSnapshot& g : snapshot->gauges) {
      std::printf("  %-28s %lld (max %lld)\n", g.name.c_str(),
                  static_cast<long long>(g.value), static_cast<long long>(g.max));
    }
    for (const obs::HistogramSnapshot& h : snapshot->histograms) {
      std::printf("  %-28s n=%llu sum=%.2f p50=%.2f p90=%.2f p99=%.2f\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum,
                  h.P50(), h.P90(), h.P99());
    }
    const obs::JsonValue* spans = parsed->Find("spans");
    if (spans != nullptr && spans->is_array()) {
      for (const obs::JsonValue& span : spans->items()) {
        std::printf("  span %-22s start=%.0fus dur=%.0fus %s\n",
                    span.StringOr("name", "?").c_str(), span.NumberOr("start_us", 0),
                    span.NumberOr("duration_us", 0),
                    span.StringOr("detail", "").c_str());
      }
    }
  }
  return exit_code;
}

int RunWatch(const Options& options, const Bytes& auth_key) {
  // One probe per endpoint per sweep; state accumulates across sweeps in
  // one long-lived registry, so watch shows real transitions over time.
  net::HealthRegistry registry;
  net::HealthProber::ProbeFn probe = net::SocketProbeFn(auth_key);
  for (const std::string& endpoint : options.endpoints) {
    registry.AddEndpoint(endpoint);
  }
  for (long sweep_index = 0; options.count < 0 || sweep_index < options.count;
       ++sweep_index) {
    if (sweep_index > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.interval_ms));
    }
    for (const std::string& endpoint : options.endpoints) {
      net::ProbeOutcome outcome = probe(endpoint, options.timeout_ms);
      if (outcome.ok) {
        registry.ReportProbeSuccess(endpoint, outcome.reply, outcome.rtt_us);
      } else {
        registry.ReportProbeFailure(endpoint, outcome.error);
      }
    }
    for (const net::EndpointStatus& s : registry.Snapshot()) {
      PrintStatusLine(s);
    }
    std::fflush(stdout);
  }
  return AllHealthy(registry.Snapshot()) ? 0 : 1;
}

int FleetctlMain(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  Options options;
  options.mode = argv[1];
  if (options.mode != "status" && options.mode != "stats" && options.mode != "watch") {
    return Usage();
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--endpoints") {
      const char* v = next();
      if (v == nullptr) {
        return Usage();
      }
      options.endpoints = SplitEndpoints(v);
    } else if (arg == "--auth-key-file") {
      const char* v = next();
      if (v == nullptr) {
        return Usage();
      }
      options.key_file = v;
    } else if (arg == "--timeout") {
      const char* v = next();
      if (v == nullptr) {
        return Usage();
      }
      options.timeout_ms = std::atoi(v);
    } else if (arg == "--probes") {
      const char* v = next();
      if (v == nullptr) {
        return Usage();
      }
      options.probes = std::atoi(v);
    } else if (arg == "--interval") {
      const char* v = next();
      if (v == nullptr) {
        return Usage();
      }
      options.interval_ms = std::atoi(v);
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) {
        return Usage();
      }
      options.count = std::atol(v);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--prom") {
      options.prom = true;
    } else if (arg == "--spans") {
      options.spans = true;
    } else {
      std::fprintf(stderr, "vdp_fleetctl: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (options.endpoints.empty()) {
    std::fprintf(stderr, "vdp_fleetctl: --endpoints is required\n");
    return Usage();
  }
  Bytes auth_key;
  if (!LoadAuthKey(options.key_file, &auth_key)) {
    std::fprintf(stderr,
                 "vdp_fleetctl: no usable auth key (--auth-key-file or "
                 "$VDP_REMOTE_AUTH_KEY, hex, >= %zu bytes)\n",
                 net::kMinAuthKeyBytes);
    return 2;
  }
  if (options.mode == "status") {
    return RunStatus(options, auth_key);
  }
  if (options.mode == "stats") {
    return RunStats(options, auth_key);
  }
  return RunWatch(options, auth_key);
}

}  // namespace
}  // namespace vdp

int main(int argc, char** argv) {
  return vdp::FleetctlMain(argc, argv);
}
