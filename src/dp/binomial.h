// The Binomial mechanism (paper Lemma 2.1).
//
// Adding Z ~ Binomial(nb, 1/2) to a 1-sensitive counting query is (eps,
// delta)-DP with eps = 10 * sqrt(ln(2/delta) / nb), i.e. the number of coins
// needed for a target (eps, delta) is nb = ceil(100 * ln(2/delta) / eps^2).
// The mechanism is deliberately built from fair Bernoulli coins because fair
// coins are exactly what the verifiable pipeline (Morra + XOR + Sigma-OR) can
// certify.
#ifndef SRC_DP_BINOMIAL_H_
#define SRC_DP_BINOMIAL_H_

#include <cstdint>

#include "src/common/rng.h"

namespace vdp {

// Lemma 2.1 requires nb > 30; we round up to that floor when the formula
// yields fewer coins.
inline constexpr uint64_t kMinBinomialCoins = 31;

// nb(eps, delta) = ceil(100 * ln(2/delta) / eps^2), clamped to > 30.
// Requires eps > 0 and 0 < delta < 1; throws std::overflow_error when the
// formula exceeds uint64_t range (epsilon too small to be realizable).
uint64_t NumCoinsForPrivacy(double epsilon, double delta);

// The epsilon achieved by nb coins at a given delta (inverse of the above).
double EpsilonForCoins(uint64_t num_coins, double delta);

// Exact Binomial(n, 1/2) sample via popcount over the DRBG stream.
uint64_t SampleBinomialHalf(uint64_t n, SecureRng& rng);

class BinomialMechanism {
 public:
  // Configures the mechanism for a target privacy level.
  BinomialMechanism(double epsilon, double delta);

  uint64_t num_coins() const { return num_coins_; }
  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }

  // Raw mechanism output: true_count + Binomial(nb, 1/2). The +nb/2 offset is
  // public; consumers subtract ExpectedOffset() for an unbiased estimate.
  // Throws std::overflow_error if the sum would wrap uint64_t.
  uint64_t Apply(uint64_t true_count, SecureRng& rng) const;

  // The publicly known mean of the added noise (nb / 2 per noise draw).
  double ExpectedOffset(size_t noise_draws = 1) const;

  // Debiased point estimate given the raw output.
  double Debias(uint64_t raw_output, size_t noise_draws = 1) const;

 private:
  double epsilon_;
  double delta_;
  uint64_t num_coins_;
};

}  // namespace vdp

#endif  // SRC_DP_BINOMIAL_H_
