#include "src/dp/binomial.h"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vdp {

uint64_t NumCoinsForPrivacy(double epsilon, double delta) {
  if (epsilon <= 0 || delta <= 0 || delta >= 1) {
    throw std::invalid_argument("NumCoinsForPrivacy: need epsilon > 0 and delta in (0,1)");
  }
  double raw = 100.0 * std::log(2.0 / delta) / (epsilon * epsilon);
  // For tiny epsilon the formula exceeds uint64_t range (or overflows to
  // +inf) and the cast below would be undefined behavior. 2^63 coins is far
  // beyond anything sampleable anyway, so reject rather than clamp. The
  // negated comparison also catches NaN.
  constexpr double kMaxCoins = 9223372036854775808.0;  // 2^63
  if (!(std::ceil(raw) < kMaxCoins)) {
    throw std::overflow_error(
        "NumCoinsForPrivacy: epsilon too small, coin count overflows uint64_t");
  }
  auto coins = static_cast<uint64_t>(std::ceil(raw));
  return coins < kMinBinomialCoins ? kMinBinomialCoins : coins;
}

double EpsilonForCoins(uint64_t num_coins, double delta) {
  if (num_coins == 0 || delta <= 0 || delta >= 1) {
    throw std::invalid_argument("EpsilonForCoins: need coins > 0 and delta in (0,1)");
  }
  return 10.0 * std::sqrt(std::log(2.0 / delta) / static_cast<double>(num_coins));
}

uint64_t SampleBinomialHalf(uint64_t n, SecureRng& rng) {
  uint64_t ones = 0;
  uint64_t full_words = n / 64;
  for (uint64_t i = 0; i < full_words; ++i) {
    ones += static_cast<uint64_t>(std::popcount(rng.NextU64()));
  }
  uint64_t tail = n % 64;
  if (tail > 0) {
    uint64_t mask = (tail == 64) ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    ones += static_cast<uint64_t>(std::popcount(rng.NextU64() & mask));
  }
  return ones;
}

BinomialMechanism::BinomialMechanism(double epsilon, double delta)
    : epsilon_(epsilon), delta_(delta), num_coins_(NumCoinsForPrivacy(epsilon, delta)) {}

uint64_t BinomialMechanism::Apply(uint64_t true_count, SecureRng& rng) const {
  uint64_t noise = SampleBinomialHalf(num_coins_, rng);
  if (true_count > std::numeric_limits<uint64_t>::max() - noise) {
    throw std::overflow_error("BinomialMechanism::Apply: true_count + noise overflows uint64_t");
  }
  return true_count + noise;
}

double BinomialMechanism::ExpectedOffset(size_t noise_draws) const {
  return static_cast<double>(noise_draws) * static_cast<double>(num_coins_) / 2.0;
}

double BinomialMechanism::Debias(uint64_t raw_output, size_t noise_draws) const {
  return static_cast<double>(raw_output) - ExpectedOffset(noise_draws);
}

}  // namespace vdp
