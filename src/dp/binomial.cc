#include "src/dp/binomial.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace vdp {

uint64_t NumCoinsForPrivacy(double epsilon, double delta) {
  if (epsilon <= 0 || delta <= 0 || delta >= 1) {
    throw std::invalid_argument("NumCoinsForPrivacy: need epsilon > 0 and delta in (0,1)");
  }
  double raw = 100.0 * std::log(2.0 / delta) / (epsilon * epsilon);
  auto coins = static_cast<uint64_t>(std::ceil(raw));
  return coins < kMinBinomialCoins ? kMinBinomialCoins : coins;
}

double EpsilonForCoins(uint64_t num_coins, double delta) {
  if (num_coins == 0 || delta <= 0 || delta >= 1) {
    throw std::invalid_argument("EpsilonForCoins: need coins > 0 and delta in (0,1)");
  }
  return 10.0 * std::sqrt(std::log(2.0 / delta) / static_cast<double>(num_coins));
}

uint64_t SampleBinomialHalf(uint64_t n, SecureRng& rng) {
  uint64_t ones = 0;
  uint64_t full_words = n / 64;
  for (uint64_t i = 0; i < full_words; ++i) {
    ones += static_cast<uint64_t>(std::popcount(rng.NextU64()));
  }
  uint64_t tail = n % 64;
  if (tail > 0) {
    uint64_t mask = (tail == 64) ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    ones += static_cast<uint64_t>(std::popcount(rng.NextU64() & mask));
  }
  return ones;
}

BinomialMechanism::BinomialMechanism(double epsilon, double delta)
    : epsilon_(epsilon), delta_(delta), num_coins_(NumCoinsForPrivacy(epsilon, delta)) {}

uint64_t BinomialMechanism::Apply(uint64_t true_count, SecureRng& rng) const {
  return true_count + SampleBinomialHalf(num_coins_, rng);
}

double BinomialMechanism::ExpectedOffset(size_t noise_draws) const {
  return static_cast<double>(noise_draws) * static_cast<double>(num_coins_) / 2.0;
}

double BinomialMechanism::Debias(uint64_t raw_output, size_t noise_draws) const {
  return static_cast<double>(raw_output) - ExpectedOffset(noise_draws);
}

}  // namespace vdp
