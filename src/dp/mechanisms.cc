#include "src/dp/mechanisms.h"

#include <cmath>
#include <stdexcept>

namespace vdp {
namespace {

// Uniform double in (0, 1): 53 random mantissa bits, never exactly 0.
double UniformUnit(SecureRng& rng) {
  uint64_t mantissa = rng.NextU64() >> 11;
  return (static_cast<double>(mantissa) + 0.5) * 0x1.0p-53;
}

}  // namespace

DiscreteLaplace::DiscreteLaplace(double epsilon, double sensitivity) : epsilon_(epsilon) {
  if (epsilon <= 0 || sensitivity <= 0) {
    throw std::invalid_argument("DiscreteLaplace: epsilon and sensitivity must be positive");
  }
  alpha_ = std::exp(-epsilon / sensitivity);
}

int64_t DiscreteLaplace::Sample(SecureRng& rng) const {
  // Difference of two geometric variables is two-sided geometric.
  auto geometric = [this, &rng] {
    double u = UniformUnit(rng);
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha_)));
  };
  return geometric() - geometric();
}

RandomizedResponse::RandomizedResponse(double epsilon) {
  if (epsilon <= 0) {
    throw std::invalid_argument("RandomizedResponse: epsilon must be positive");
  }
  double e = std::exp(epsilon);
  p_ = e / (1.0 + e);
}

int RandomizedResponse::Perturb(int bit, SecureRng& rng) const {
  bool truthful = UniformUnit(rng) < p_;
  return truthful ? bit : 1 - bit;
}

double RandomizedResponse::DebiasedCount(uint64_t observed_ones, uint64_t n) const {
  double no = static_cast<double>(observed_ones);
  double nn = static_cast<double>(n);
  return (no - nn * (1.0 - p_)) / (2.0 * p_ - 1.0);
}

}  // namespace vdp
