// Classical DP baselines used for comparison benchmarks.
//
// DiscreteLaplace is the textbook central-model mechanism (error O(1/eps));
// RandomizedResponse is the local-model baseline (error O(sqrt(n)/eps)).
// Together with the Binomial mechanism they back the empirical error
// comparison that accompanies Table 2.
#ifndef SRC_DP_MECHANISMS_H_
#define SRC_DP_MECHANISMS_H_

#include <cstdint>

#include "src/common/rng.h"

namespace vdp {

// Two-sided geometric ("discrete Laplace") noise: P(k) proportional to
// alpha^|k| with alpha = exp(-eps/sensitivity).
class DiscreteLaplace {
 public:
  explicit DiscreteLaplace(double epsilon, double sensitivity = 1.0);

  int64_t Sample(SecureRng& rng) const;
  int64_t Apply(int64_t true_count, SecureRng& rng) const { return true_count + Sample(rng); }

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  double alpha_;  // exp(-eps/sensitivity)
};

// Warner's randomized response for a single bit: report the true bit with
// probability p = e^eps / (1 + e^eps), the flipped bit otherwise.
class RandomizedResponse {
 public:
  explicit RandomizedResponse(double epsilon);

  int Perturb(int bit, SecureRng& rng) const;

  // Unbiased estimate of the true count of ones from perturbed reports:
  // (observed - n(1-p)) / (2p - 1).
  double DebiasedCount(uint64_t observed_ones, uint64_t n) const;

  double truth_probability() const { return p_; }

 private:
  double p_;
};

}  // namespace vdp

#endif  // SRC_DP_MECHANISMS_H_
