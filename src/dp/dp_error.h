// Empirical DP-Error (paper Definition 6): Err = E[|Q(X) - M(X,Q)|], the
// expected L1 distance between the true query answer and the mechanism
// output, estimated by Monte Carlo.
#ifndef SRC_DP_DP_ERROR_H_
#define SRC_DP_DP_ERROR_H_

#include <cmath>
#include <cstdint>
#include <functional>

#include "src/common/rng.h"

namespace vdp {

struct DpErrorEstimate {
  double mean_abs_error = 0;   // estimate of Err
  double mean_signed_error = 0;  // bias check; ~0 for debiased mechanisms
  int trials = 0;
};

// `mechanism` maps (true_count, rng) to a debiased estimate of the count.
inline DpErrorEstimate EstimateDpError(
    int64_t true_count, const std::function<double(int64_t, SecureRng&)>& mechanism, int trials,
    SecureRng& rng) {
  DpErrorEstimate est;
  est.trials = trials;
  for (int i = 0; i < trials; ++i) {
    double out = mechanism(true_count, rng);
    double err = out - static_cast<double>(true_count);
    est.mean_abs_error += std::abs(err);
    est.mean_signed_error += err;
  }
  est.mean_abs_error /= trials;
  est.mean_signed_error /= trials;
  return est;
}

}  // namespace vdp

#endif  // SRC_DP_DP_ERROR_H_
