// (eps, delta) accounting for composed releases.
//
// The histogram protocol adds independent Binomial noise per bin; because the
// bins partition the clients (each contributes to exactly one bin with the
// rest fixed at zero... more precisely the one-hot vector has L_inf
// sensitivity 1 and L_1 sensitivity 2), per-coordinate guarantees compose.
// These helpers implement the standard bookkeeping: basic (sequential)
// composition, parallel composition over disjoint data, and Lemma B.1's
// sensitivity scaling (eps*Delta, delta*Delta).
#ifndef SRC_DP_COMPOSITION_H_
#define SRC_DP_COMPOSITION_H_

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vdp {

struct PrivacyBudget {
  double epsilon = 0;
  double delta = 0;
};

// Basic sequential composition: budgets add.
inline PrivacyBudget ComposeSequential(const std::vector<PrivacyBudget>& releases) {
  PrivacyBudget total;
  for (const auto& r : releases) {
    total.epsilon += r.epsilon;
    total.delta += r.delta;
  }
  return total;
}

// Parallel composition over disjoint sub-populations: the max dominates.
inline PrivacyBudget ComposeParallel(const std::vector<PrivacyBudget>& releases) {
  PrivacyBudget total;
  for (const auto& r : releases) {
    total.epsilon = std::max(total.epsilon, r.epsilon);
    total.delta = std::max(total.delta, r.delta);
  }
  return total;
}

// Advanced composition (Dwork-Rothblum-Vadhan): k-fold adaptive composition
// of (eps, delta)-DP mechanisms is (eps', k*delta + delta')-DP with
// eps' = sqrt(2k ln(1/delta')) * eps + k * eps * (e^eps - 1).
inline PrivacyBudget ComposeAdvanced(PrivacyBudget per_release, size_t k, double delta_prime) {
  if (delta_prime <= 0 || delta_prime >= 1) {
    throw std::invalid_argument("ComposeAdvanced: delta_prime must be in (0,1)");
  }
  PrivacyBudget total;
  double kd = static_cast<double>(k);
  total.epsilon = std::sqrt(2.0 * kd * std::log(1.0 / delta_prime)) * per_release.epsilon +
                  kd * per_release.epsilon * (std::exp(per_release.epsilon) - 1.0);
  total.delta = kd * per_release.delta + delta_prime;
  return total;
}

// Lemma B.1 sensitivity scaling: adding (eps, delta, k)-smooth noise to a
// query of L1 sensitivity Delta yields (eps*Delta, delta*Delta)-DP.
inline PrivacyBudget ScaleBySensitivity(PrivacyBudget per_unit, double l1_sensitivity) {
  if (l1_sensitivity < 0) {
    throw std::invalid_argument("ScaleBySensitivity: sensitivity must be non-negative");
  }
  return PrivacyBudget{per_unit.epsilon * l1_sensitivity, per_unit.delta * l1_sensitivity};
}

// The histogram released by Pi_Bin: per-bin Binomial noise at (eps, delta),
// one-hot client vectors (L1 sensitivity 2 between neighboring datasets that
// change one client's bin; L1 sensitivity 1 for add/remove neighbors).
inline PrivacyBudget HistogramBudget(double per_bin_epsilon, double per_bin_delta,
                                     bool swap_neighbors) {
  double sensitivity = swap_neighbors ? 2.0 : 1.0;
  return ScaleBySensitivity(PrivacyBudget{per_bin_epsilon, per_bin_delta}, sensitivity);
}

}  // namespace vdp

#endif  // SRC_DP_COMPOSITION_H_
