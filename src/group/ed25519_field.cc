#include "src/group/ed25519_field.h"

#include <algorithm>

namespace vdp {
namespace {

inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// k consecutive squarings.
inline Fe25519 SquareN(Fe25519 a, int k) {
  for (int i = 0; i < k; ++i) {
    a = Fe25519::Square(a);
  }
  return a;
}

}  // namespace

const BigInt<4>& Fe25519::P() {
  static const BigInt<4> p = [] {
    BigInt<4> v;
    v.limb[0] = ~uint64_t{0} - 18;  // 2^64 - 19
    v.limb[1] = ~uint64_t{0};
    v.limb[2] = ~uint64_t{0};
    v.limb[3] = ~uint64_t{0} >> 1;  // 2^63 - 1
    return v;
  }();
  return p;
}

Fe25519 Fe25519::Pow(const Fe25519& a, const BigInt<4>& e) {
  Fe25519 acc = One();
  for (size_t i = e.BitLength(); i-- > 0;) {
    acc = Square(acc);
    if (e.Bit(i)) {
      acc = Mul(acc, a);
    }
  }
  return acc;
}

Fe25519 Fe25519::Invert() const {
  // a^(p-2) via the standard curve25519 addition chain: 254 squarings and 11
  // multiplications, versus ~250 squarings + ~250 multiplications for the
  // generic square-and-multiply Pow. Zero maps to zero (0^(p-2) = 0), which
  // coordinate normalization relies on.
  const Fe25519& a = *this;
  Fe25519 z2 = Square(a);                       // 2
  Fe25519 z9 = Mul(SquareN(z2, 2), a);          // 9
  Fe25519 z11 = Mul(z9, z2);                    // 11
  Fe25519 z2_5_0 = Mul(Square(z11), z9);        // 2^5 - 1
  Fe25519 z2_10_0 = Mul(SquareN(z2_5_0, 5), z2_5_0);      // 2^10 - 1
  Fe25519 z2_20_0 = Mul(SquareN(z2_10_0, 10), z2_10_0);   // 2^20 - 1
  Fe25519 z2_40_0 = Mul(SquareN(z2_20_0, 20), z2_20_0);   // 2^40 - 1
  Fe25519 z2_50_0 = Mul(SquareN(z2_40_0, 10), z2_10_0);   // 2^50 - 1
  Fe25519 z2_100_0 = Mul(SquareN(z2_50_0, 50), z2_50_0);  // 2^100 - 1
  Fe25519 z2_200_0 = Mul(SquareN(z2_100_0, 100), z2_100_0);  // 2^200 - 1
  Fe25519 z2_250_0 = Mul(SquareN(z2_200_0, 50), z2_50_0);    // 2^250 - 1
  return Mul(SquareN(z2_250_0, 5), z11);        // 2^255 - 21 = p - 2
}

std::optional<Fe25519> Fe25519::Sqrt() const {
  // p = 5 mod 8: candidate = a^((p+3)/8); fix up with sqrt(-1) when needed.
  static const BigInt<4> kExp = [] {
    BigInt<4> e = P();
    BigInt<4>::AddInto(e, e, BigInt<4>::FromU64(3));
    e.ShiftRight1();
    e.ShiftRight1();
    e.ShiftRight1();
    return e;
  }();
  static const Fe25519 kSqrtM1 = [] {
    // 2^((p-1)/4) is a square root of -1 for p = 5 mod 8.
    BigInt<4> e = P();
    BigInt<4>::SubInto(e, e, BigInt<4>::One());
    e.ShiftRight1();
    e.ShiftRight1();
    return Pow(FromU64(2), e);
  }();

  Fe25519 x = Pow(*this, kExp);
  Fe25519 xx = Square(x);
  if (xx == *this) {
    return x;
  }
  if (xx == Neg(*this)) {
    return Mul(x, kSqrtM1);
  }
  return std::nullopt;
}

bool Fe25519::IsZero() const {
  auto bytes = ToBytes();
  uint8_t acc = 0;
  for (uint8_t b : bytes) {
    acc |= b;
  }
  return acc == 0;
}

bool Fe25519::IsNegative() const { return (ToBytes()[0] & 1) != 0; }

bool operator==(const Fe25519& a, const Fe25519& b) { return a.ToBytes() == b.ToBytes(); }

std::array<uint8_t, Fe25519::kEncodedSize> Fe25519::ToBytes() const {
  Fe25519 t = *this;
  t.CarryReduce();
  // q = 1 iff value >= p (valid because limbs are < 2^51 after CarryReduce).
  uint64_t q = (t.v_[0] + 19) >> 51;
  q = (t.v_[1] + q) >> 51;
  q = (t.v_[2] + q) >> 51;
  q = (t.v_[3] + q) >> 51;
  q = (t.v_[4] + q) >> 51;
  // value mod p = value + 19q, truncated to 255 bits.
  t.v_[0] += 19 * q;
  uint64_t c;
  c = t.v_[0] >> 51;
  t.v_[0] &= kMask51;
  t.v_[1] += c;
  c = t.v_[1] >> 51;
  t.v_[1] &= kMask51;
  t.v_[2] += c;
  c = t.v_[2] >> 51;
  t.v_[2] &= kMask51;
  t.v_[3] += c;
  c = t.v_[3] >> 51;
  t.v_[3] &= kMask51;
  t.v_[4] += c;
  t.v_[4] &= kMask51;  // drop bit 255

  std::array<uint8_t, kEncodedSize> out{};
  uint64_t words[4];
  words[0] = t.v_[0] | (t.v_[1] << 51);
  words[1] = (t.v_[1] >> 13) | (t.v_[2] << 38);
  words[2] = (t.v_[2] >> 26) | (t.v_[3] << 25);
  words[3] = (t.v_[3] >> 39) | (t.v_[4] << 12);
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      out[8 * w + i] = static_cast<uint8_t>(words[w] >> (8 * i));
    }
  }
  return out;
}

std::optional<Fe25519> Fe25519::FromBytes(BytesView bytes) {
  if (bytes.size() != kEncodedSize || (bytes[31] & 0x80) != 0) {
    return std::nullopt;
  }
  Fe25519 r;
  r.v_[0] = LoadLe64(bytes.data()) & kMask51;
  r.v_[1] = (LoadLe64(bytes.data() + 6) >> 3) & kMask51;
  r.v_[2] = (LoadLe64(bytes.data() + 12) >> 6) & kMask51;
  r.v_[3] = (LoadLe64(bytes.data() + 19) >> 1) & kMask51;
  r.v_[4] = (LoadLe64(bytes.data() + 24) >> 12) & kMask51;
  // Reject non-canonical encodings (value >= p).
  auto canonical = r.ToBytes();
  if (!std::equal(canonical.begin(), canonical.end(), bytes.begin())) {
    return std::nullopt;
  }
  return r;
}

BigInt<4> Fe25519::ToBigInt() const {
  auto bytes = ToBytes();
  BigInt<4> v;
  for (size_t i = 0; i < 32; ++i) {
    v.limb[i / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  return v;
}

Fe25519 Fe25519::FromBigInt(const BigInt<4>& value) {
  Bytes le(32);
  for (size_t i = 0; i < 32; ++i) {
    le[i] = static_cast<uint8_t>(value.limb[i / 8] >> (8 * (i % 8)));
  }
  auto fe = FromBytes(le);
  return fe.value_or(Fe25519());
}

}  // namespace vdp
