#include "src/group/ed25519_field.h"

namespace vdp {
namespace {

constexpr uint64_t kMask51 = (uint64_t{1} << 51) - 1;

// 2p limb constants so subtraction never underflows for loosely reduced inputs.
constexpr uint64_t kTwoP0 = 0xfffffffffffda;  // 2 * (2^51 - 19)
constexpr uint64_t kTwoP1234 = 0xffffffffffffe;  // 2 * (2^51 - 1)

inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

const BigInt<4>& Fe25519::P() {
  static const BigInt<4> p = [] {
    BigInt<4> v;
    v.limb[0] = ~uint64_t{0} - 18;  // 2^64 - 19
    v.limb[1] = ~uint64_t{0};
    v.limb[2] = ~uint64_t{0};
    v.limb[3] = ~uint64_t{0} >> 1;  // 2^63 - 1
    return v;
  }();
  return p;
}

Fe25519 Fe25519::FromU64(uint64_t x) {
  Fe25519 r;
  r.v_[0] = x & kMask51;
  r.v_[1] = x >> 51;
  return r;
}

void Fe25519::CarryReduce() {
  // Two passes bring every limb below 2^51 + epsilon and keep value mod p.
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t c;
    c = v_[0] >> 51;
    v_[0] &= kMask51;
    v_[1] += c;
    c = v_[1] >> 51;
    v_[1] &= kMask51;
    v_[2] += c;
    c = v_[2] >> 51;
    v_[2] &= kMask51;
    v_[3] += c;
    c = v_[3] >> 51;
    v_[3] &= kMask51;
    v_[4] += c;
    c = v_[4] >> 51;
    v_[4] &= kMask51;
    v_[0] += 19 * c;
  }
}

Fe25519 Fe25519::Add(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) {
    r.v_[i] = a.v_[i] + b.v_[i];
  }
  r.CarryReduce();
  return r;
}

Fe25519 Fe25519::Sub(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  r.v_[0] = a.v_[0] + kTwoP0 - b.v_[0];
  r.v_[1] = a.v_[1] + kTwoP1234 - b.v_[1];
  r.v_[2] = a.v_[2] + kTwoP1234 - b.v_[2];
  r.v_[3] = a.v_[3] + kTwoP1234 - b.v_[3];
  r.v_[4] = a.v_[4] + kTwoP1234 - b.v_[4];
  r.CarryReduce();
  return r;
}

Fe25519 Fe25519::Mul(const Fe25519& a, const Fe25519& b) {
  using u128 = uint128_t;
  const uint64_t a0 = a.v_[0], a1 = a.v_[1], a2 = a.v_[2], a3 = a.v_[3], a4 = a.v_[4];
  const uint64_t b0 = b.v_[0], b1 = b.v_[1], b2 = b.v_[2], b3 = b.v_[3], b4 = b.v_[4];
  const uint64_t b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3, b4_19 = 19 * b4;

  u128 t0 = static_cast<u128>(a0) * b0 + static_cast<u128>(a1) * b4_19 +
            static_cast<u128>(a2) * b3_19 + static_cast<u128>(a3) * b2_19 +
            static_cast<u128>(a4) * b1_19;
  u128 t1 = static_cast<u128>(a0) * b1 + static_cast<u128>(a1) * b0 +
            static_cast<u128>(a2) * b4_19 + static_cast<u128>(a3) * b3_19 +
            static_cast<u128>(a4) * b2_19;
  u128 t2 = static_cast<u128>(a0) * b2 + static_cast<u128>(a1) * b1 +
            static_cast<u128>(a2) * b0 + static_cast<u128>(a3) * b4_19 +
            static_cast<u128>(a4) * b3_19;
  u128 t3 = static_cast<u128>(a0) * b3 + static_cast<u128>(a1) * b2 +
            static_cast<u128>(a2) * b1 + static_cast<u128>(a3) * b0 +
            static_cast<u128>(a4) * b4_19;
  u128 t4 = static_cast<u128>(a0) * b4 + static_cast<u128>(a1) * b3 +
            static_cast<u128>(a2) * b2 + static_cast<u128>(a3) * b1 +
            static_cast<u128>(a4) * b0;

  Fe25519 r;
  uint64_t c;
  r.v_[0] = static_cast<uint64_t>(t0) & kMask51;
  c = static_cast<uint64_t>(t0 >> 51);
  t1 += c;
  r.v_[1] = static_cast<uint64_t>(t1) & kMask51;
  c = static_cast<uint64_t>(t1 >> 51);
  t2 += c;
  r.v_[2] = static_cast<uint64_t>(t2) & kMask51;
  c = static_cast<uint64_t>(t2 >> 51);
  t3 += c;
  r.v_[3] = static_cast<uint64_t>(t3) & kMask51;
  c = static_cast<uint64_t>(t3 >> 51);
  t4 += c;
  r.v_[4] = static_cast<uint64_t>(t4) & kMask51;
  c = static_cast<uint64_t>(t4 >> 51);
  r.v_[0] += 19 * c;
  c = r.v_[0] >> 51;
  r.v_[0] &= kMask51;
  r.v_[1] += c;
  return r;
}

Fe25519 Fe25519::Pow(const Fe25519& a, const BigInt<4>& e) {
  Fe25519 acc = One();
  for (size_t i = e.BitLength(); i-- > 0;) {
    acc = Square(acc);
    if (e.Bit(i)) {
      acc = Mul(acc, a);
    }
  }
  return acc;
}

Fe25519 Fe25519::Invert() const {
  // a^(p-2), p - 2 = 2^255 - 21.
  BigInt<4> e = P();
  BigInt<4>::SubInto(e, e, BigInt<4>::FromU64(2));
  return Pow(*this, e);
}

std::optional<Fe25519> Fe25519::Sqrt() const {
  // p = 5 mod 8: candidate = a^((p+3)/8); fix up with sqrt(-1) when needed.
  static const BigInt<4> kExp = [] {
    BigInt<4> e = P();
    BigInt<4>::AddInto(e, e, BigInt<4>::FromU64(3));
    e.ShiftRight1();
    e.ShiftRight1();
    e.ShiftRight1();
    return e;
  }();
  static const Fe25519 kSqrtM1 = [] {
    // 2^((p-1)/4) is a square root of -1 for p = 5 mod 8.
    BigInt<4> e = P();
    BigInt<4>::SubInto(e, e, BigInt<4>::One());
    e.ShiftRight1();
    e.ShiftRight1();
    return Pow(FromU64(2), e);
  }();

  Fe25519 x = Pow(*this, kExp);
  Fe25519 xx = Square(x);
  if (xx == *this) {
    return x;
  }
  if (xx == Neg(*this)) {
    return Mul(x, kSqrtM1);
  }
  return std::nullopt;
}

bool Fe25519::IsZero() const {
  auto bytes = ToBytes();
  uint8_t acc = 0;
  for (uint8_t b : bytes) {
    acc |= b;
  }
  return acc == 0;
}

bool Fe25519::IsNegative() const { return (ToBytes()[0] & 1) != 0; }

bool operator==(const Fe25519& a, const Fe25519& b) { return a.ToBytes() == b.ToBytes(); }

std::array<uint8_t, Fe25519::kEncodedSize> Fe25519::ToBytes() const {
  Fe25519 t = *this;
  t.CarryReduce();
  // q = 1 iff value >= p (valid because limbs are < 2^51 after CarryReduce).
  uint64_t q = (t.v_[0] + 19) >> 51;
  q = (t.v_[1] + q) >> 51;
  q = (t.v_[2] + q) >> 51;
  q = (t.v_[3] + q) >> 51;
  q = (t.v_[4] + q) >> 51;
  // value mod p = value + 19q, truncated to 255 bits.
  t.v_[0] += 19 * q;
  uint64_t c;
  c = t.v_[0] >> 51;
  t.v_[0] &= kMask51;
  t.v_[1] += c;
  c = t.v_[1] >> 51;
  t.v_[1] &= kMask51;
  t.v_[2] += c;
  c = t.v_[2] >> 51;
  t.v_[2] &= kMask51;
  t.v_[3] += c;
  c = t.v_[3] >> 51;
  t.v_[3] &= kMask51;
  t.v_[4] += c;
  t.v_[4] &= kMask51;  // drop bit 255

  std::array<uint8_t, kEncodedSize> out{};
  uint64_t words[4];
  words[0] = t.v_[0] | (t.v_[1] << 51);
  words[1] = (t.v_[1] >> 13) | (t.v_[2] << 38);
  words[2] = (t.v_[2] >> 26) | (t.v_[3] << 25);
  words[3] = (t.v_[3] >> 39) | (t.v_[4] << 12);
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      out[8 * w + i] = static_cast<uint8_t>(words[w] >> (8 * i));
    }
  }
  return out;
}

std::optional<Fe25519> Fe25519::FromBytes(BytesView bytes) {
  if (bytes.size() != kEncodedSize || (bytes[31] & 0x80) != 0) {
    return std::nullopt;
  }
  Fe25519 r;
  r.v_[0] = LoadLe64(bytes.data()) & kMask51;
  r.v_[1] = (LoadLe64(bytes.data() + 6) >> 3) & kMask51;
  r.v_[2] = (LoadLe64(bytes.data() + 12) >> 6) & kMask51;
  r.v_[3] = (LoadLe64(bytes.data() + 19) >> 1) & kMask51;
  r.v_[4] = (LoadLe64(bytes.data() + 24) >> 12) & kMask51;
  // Reject non-canonical encodings (value >= p).
  auto canonical = r.ToBytes();
  if (!std::equal(canonical.begin(), canonical.end(), bytes.begin())) {
    return std::nullopt;
  }
  return r;
}

BigInt<4> Fe25519::ToBigInt() const {
  auto bytes = ToBytes();
  BigInt<4> v;
  for (size_t i = 0; i < 32; ++i) {
    v.limb[i / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  return v;
}

Fe25519 Fe25519::FromBigInt(const BigInt<4>& value) {
  Bytes le(32);
  for (size_t i = 0; i < 32; ++i) {
    le[i] = static_cast<uint8_t>(value.limb[i / 8] >> (8 * (i % 8)));
  }
  auto fe = FromBytes(le);
  return fe.value_or(Fe25519());
}

}  // namespace vdp
