// Edwards25519: the prime-order subgroup of the twisted Edwards curve
// -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255 - 19).
//
// The group exposed here is the order-l subgroup (l = 2^252 + 27742...).
// Decode() performs a full subgroup check, and HashToGroup clears the
// cofactor, so every Element handled by the protocols has prime order. This
// substitutes for the paper's Ristretto instantiation (see DESIGN.md).
#ifndef SRC_GROUP_ED25519_H_
#define SRC_GROUP_ED25519_H_

#include <string>
#include <vector>

#include "src/common/sha256.h"
#include "src/group/ed25519_field.h"
#include "src/group/scalar_field.h"

namespace vdp {

// Point in extended homogeneous coordinates (x = X/Z, y = Y/Z, T = XY/Z).
struct GePoint {
  Fe25519 x;
  Fe25519 y;
  Fe25519 z;
  Fe25519 t;
};

// Precomputed affine point in Niels form: (y+x, y-x, 2*d*x*y) with z = 1.
// Mixed addition against this form costs 7 field muls (vs 9 for the unified
// projective add), and negation is a swap plus one field negation -- which is
// what makes signed-digit combs and wNAF tables pay off.
struct GeNiels {
  Fe25519 ypx;
  Fe25519 ymx;
  Fe25519 t2d;
};

class Ed25519Group {
 public:
  static constexpr size_t kElementSize = 32;

  struct ScalarTag {
    static const BigInt<4>& Order();  // l = 2^252 + 27742317777372353535851937790883648493
  };
  using Scalar = ScalarField<4, ScalarTag>;

  class Element {
   public:
    Element();  // identity

    const GePoint& point() const { return p_; }

    friend bool operator==(const Element& a, const Element& b);
    friend bool operator!=(const Element& a, const Element& b) { return !(a == b); }

   private:
    friend class Ed25519Group;
    explicit Element(const GePoint& p) : p_(p) {}
    GePoint p_;
  };

  // Acceleration kernel (see src/group/accel.h): accumulators stay in
  // extended coordinates with a dedicated 4M+4S doubling, and table entries
  // are batch-normalized to Niels form for 7M mixed additions.
  struct Accel {
    using P = GePoint;
    using A = GeNiels;
    static constexpr bool kCheapNegate = true;

    static P Identity();
    static P Lift(const Element& e) { return e.p_; }
    static Element Lower(const P& p) { return Element(p); }
    static A ToA(const P& p);  // one field inversion
    // Batch conversion: one inversion for the whole set (Montgomery's trick).
    static void Normalize(const std::vector<P>& pts, std::vector<A>* out);
    static P Add(const P& a, const P& b);   // unified add, complete
    static P AddA(const P& a, const A& b);  // Niels mixed add
    static P Dbl(const P& a);               // dbl-2008-hwcd
    static A NegA(const A& a) {
      return GeNiels{a.ymx, a.ypx, Fe25519::Neg(a.t2d)};
    }
  };

  static std::string Name() { return "ed25519"; }

  static Element Identity();
  static Element Generator();

  static Element Mul(const Element& a, const Element& b);  // point addition
  static Element Exp(const Element& base, const Scalar& e);  // scalar multiplication
  static Element Inverse(const Element& a);  // point negation
  static Element ExpG(const Scalar& e) { return Exp(Generator(), e); }

  // Compressed encoding: canonical y with the sign bit of x in bit 255.
  static Bytes Encode(const Element& e);
  // Encode many elements with a single shared field inversion.
  static std::vector<Bytes> EncodeBatch(const std::vector<Element>& es);
  // Strict decode: canonical encoding, on curve, and in the order-l subgroup.
  static std::optional<Element> Decode(BytesView bytes);

  static bool InSubgroup(const Element& e);

  // Try-and-increment onto the curve followed by cofactor clearing.
  static Element HashToGroup(BytesView domain, BytesView msg);

  // Curve constant d = -121665/121666 and 2d (derived, not hard-coded).
  static const Fe25519& D();
  static const Fe25519& TwoD();

 private:
  static GePoint ScalarMult(const GePoint& p, const BigInt<4>& e);
  static std::optional<GePoint> Decompress(BytesView bytes);
};

// Unified addition (add-2008-hwcd with a = -1); complete on this curve, so it
// is safe for a == b and either operand the identity.
inline GePoint Ed25519Group::Accel::Add(const GePoint& p, const GePoint& q) {
  Fe25519 a = Fe25519::Mul(p.x, q.x);
  Fe25519 b = Fe25519::Mul(p.y, q.y);
  Fe25519 c = Fe25519::Mul(Fe25519::Mul(p.t, D()), q.t);
  Fe25519 d2 = Fe25519::Mul(p.z, q.z);
  Fe25519 e = Fe25519::Sub(
      Fe25519::Sub(Fe25519::Mul(Fe25519::Add(p.x, p.y), Fe25519::Add(q.x, q.y)), a), b);
  Fe25519 f = Fe25519::Sub(d2, c);
  Fe25519 g = Fe25519::Add(d2, c);
  Fe25519 h = Fe25519::Add(b, a);  // B - aA with a = -1
  GePoint r;
  r.x = Fe25519::Mul(e, f);
  r.y = Fe25519::Mul(g, h);
  r.t = Fe25519::Mul(e, h);
  r.z = Fe25519::Mul(f, g);
  return r;
}

// Mixed addition against a Niels-form point (add-2008-hwcd-3, a = -1): 7M.
inline GePoint Ed25519Group::Accel::AddA(const GePoint& p, const GeNiels& q) {
  Fe25519 a = Fe25519::Mul(Fe25519::Add(p.y, p.x), q.ypx);
  Fe25519 b = Fe25519::Mul(Fe25519::Sub(p.y, p.x), q.ymx);
  Fe25519 c = Fe25519::Mul(p.t, q.t2d);
  Fe25519 d2 = Fe25519::Add(p.z, p.z);
  Fe25519 e = Fe25519::Sub(a, b);
  Fe25519 f = Fe25519::Sub(d2, c);
  Fe25519 g = Fe25519::Add(d2, c);
  Fe25519 h = Fe25519::Add(a, b);
  GePoint r;
  r.x = Fe25519::Mul(e, f);
  r.y = Fe25519::Mul(g, h);
  r.z = Fe25519::Mul(f, g);
  r.t = Fe25519::Mul(e, h);
  return r;
}

// Doubling (dbl-2008-hwcd with a = -1, both factors of each product negated
// so no field negations are needed): 4M + 4S. Does not read p.t.
inline GePoint Ed25519Group::Accel::Dbl(const GePoint& p) {
  Fe25519 a = Fe25519::Square(p.x);
  Fe25519 b = Fe25519::Square(p.y);
  Fe25519 zz = Fe25519::Square(p.z);
  Fe25519 c = Fe25519::Add(zz, zz);
  Fe25519 h = Fe25519::Add(a, b);
  Fe25519 e = Fe25519::Sub(h, Fe25519::Square(Fe25519::Add(p.x, p.y)));  // -2xy
  Fe25519 g = Fe25519::Sub(a, b);
  Fe25519 f = Fe25519::Add(g, c);
  GePoint r;
  r.x = Fe25519::Mul(e, f);
  r.y = Fe25519::Mul(g, h);
  r.z = Fe25519::Mul(f, g);
  r.t = Fe25519::Mul(e, h);
  return r;
}

}  // namespace vdp

#endif  // SRC_GROUP_ED25519_H_
