// Edwards25519: the prime-order subgroup of the twisted Edwards curve
// -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255 - 19).
//
// The group exposed here is the order-l subgroup (l = 2^252 + 27742...).
// Decode() performs a full subgroup check, and HashToGroup clears the
// cofactor, so every Element handled by the protocols has prime order. This
// substitutes for the paper's Ristretto instantiation (see DESIGN.md).
#ifndef SRC_GROUP_ED25519_H_
#define SRC_GROUP_ED25519_H_

#include <string>

#include "src/common/sha256.h"
#include "src/group/ed25519_field.h"
#include "src/group/scalar_field.h"

namespace vdp {

// Point in extended homogeneous coordinates (x = X/Z, y = Y/Z, T = XY/Z).
struct GePoint {
  Fe25519 x;
  Fe25519 y;
  Fe25519 z;
  Fe25519 t;
};

class Ed25519Group {
 public:
  static constexpr size_t kElementSize = 32;

  struct ScalarTag {
    static const BigInt<4>& Order();  // l = 2^252 + 27742317777372353535851937790883648493
  };
  using Scalar = ScalarField<4, ScalarTag>;

  class Element {
   public:
    Element();  // identity

    const GePoint& point() const { return p_; }

    friend bool operator==(const Element& a, const Element& b);
    friend bool operator!=(const Element& a, const Element& b) { return !(a == b); }

   private:
    friend class Ed25519Group;
    explicit Element(const GePoint& p) : p_(p) {}
    GePoint p_;
  };

  static std::string Name() { return "ed25519"; }

  static Element Identity();
  static Element Generator();

  static Element Mul(const Element& a, const Element& b);  // point addition
  static Element Exp(const Element& base, const Scalar& e);  // scalar multiplication
  static Element Inverse(const Element& a);  // point negation
  static Element ExpG(const Scalar& e) { return Exp(Generator(), e); }

  // Compressed encoding: canonical y with the sign bit of x in bit 255.
  static Bytes Encode(const Element& e);
  // Strict decode: canonical encoding, on curve, and in the order-l subgroup.
  static std::optional<Element> Decode(BytesView bytes);

  static bool InSubgroup(const Element& e);

  // Try-and-increment onto the curve followed by cofactor clearing.
  static Element HashToGroup(BytesView domain, BytesView msg);

  // Curve constant d = -121665/121666 (derived, not hard-coded).
  static const Fe25519& D();

 private:
  static GePoint Add(const GePoint& a, const GePoint& b);
  static GePoint ScalarMult(const GePoint& p, const BigInt<4>& e);
  static std::optional<GePoint> Decompress(BytesView bytes);
};

}  // namespace vdp

#endif  // SRC_GROUP_ED25519_H_
