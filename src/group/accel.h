// Group acceleration kernels.
//
// The generic multi-exponentiation code (FixedBaseTable, Pippenger MSM) does
// thousands of group operations per call, and the public PrimeOrderGroup API
// is the wrong currency for that: ModPGroup's Mul converts to Montgomery form
// and back on every call, and Ed25519Group's Exp pays a field inversion per
// affine conversion. An accel kernel is a group's internal fast-path
// representation, exposed just enough for the templated exp code:
//
//   struct Accel {
//     using P = ...;   // accumulator form (Montgomery residue / extended point)
//     using A = ...;   // table form for mixed additions (residue / Niels point)
//     static constexpr bool kCheapNegate;  // NegA is ~free (curve groups)
//     static P Identity();
//     static P Lift(const G::Element&);    // public -> accumulator form
//     static G::Element Lower(const P&);   // accumulator -> public form
//     static A ToA(const P&);              // single conversion (may invert)
//     static void Normalize(const std::vector<P>&, std::vector<A>*);  // batch
//     static P Add(const P&, const P&);
//     static P AddA(const P&, const A&);   // mixed add (the table hot path)
//     static P Dbl(const P&);
//     static A NegA(const A&);             // only called when kCheapNegate
//   };
//
// Groups opt in by declaring a nested `Accel`; everything else falls back to
// GenericAccel below, which phrases the same interface in terms of the public
// API so the templated code never needs two code paths.
#ifndef SRC_GROUP_ACCEL_H_
#define SRC_GROUP_ACCEL_H_

#include <type_traits>
#include <vector>

namespace vdp {

template <typename G>
struct GenericAccel {
  using P = typename G::Element;
  using A = typename G::Element;
  static constexpr bool kCheapNegate = false;

  static P Identity() { return G::Identity(); }
  static P Lift(const typename G::Element& e) { return e; }
  static typename G::Element Lower(const P& p) { return p; }
  static A ToA(const P& p) { return p; }
  static void Normalize(const std::vector<P>& pts, std::vector<A>* out) {
    *out = pts;
  }
  static P Add(const P& a, const P& b) { return G::Mul(a, b); }
  static P AddA(const P& a, const A& b) { return G::Mul(a, b); }
  static P Dbl(const P& a) { return G::Mul(a, a); }
  static A NegA(const A& a) { return G::Inverse(a); }
};

namespace accel_internal {

template <typename G, typename = void>
struct AccelFor {
  using type = GenericAccel<G>;
};

template <typename G>
struct AccelFor<G, std::void_t<typename G::Accel>> {
  using type = typename G::Accel;
};

}  // namespace accel_internal

// The kernel for G: G::Accel if declared, GenericAccel<G> otherwise.
template <typename G>
using AccelOf = typename accel_internal::AccelFor<G>::type;

}  // namespace vdp

#endif  // SRC_GROUP_ACCEL_H_
