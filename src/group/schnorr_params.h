// DSA/Schnorr-style groups: a 256-bit prime-order subgroup of Z_p* for a
// large prime p = q * cofactor + 1.
//
// Unlike the safe-prime groups of modp_params.h (whose exponents are
// (p-1)/2-sized), these have *short* 256-bit exponents -- the configuration
// production finite-field deployments use, and the one that makes Z_p*
// exponentiation cheaper than portable elliptic-curve scalar multiplication
// (the relation behind the paper's 35us-vs-328us comparison).
#ifndef SRC_GROUP_SCHNORR_PARAMS_H_
#define SRC_GROUP_SCHNORR_PARAMS_H_

#include "src/math/bigint.h"

namespace vdp {

template <size_t L>
struct SchnorrParams {
  BigInt<L> p;         // prime modulus
  BigInt<4> q;         // 256-bit prime subgroup order
  BigInt<L> cofactor;  // (p - 1) / q
  BigInt<L> g;         // generator of the order-q subgroup
};

const SchnorrParams<8>& Schnorr512Params();
const SchnorrParams<32>& Schnorr2048Params();

}  // namespace vdp

#endif  // SRC_GROUP_SCHNORR_PARAMS_H_
