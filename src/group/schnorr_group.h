// Prime-order subgroup of Z_p* with a short (256-bit) order q.
//
// Same algebra as ModPGroup, but scalars are 4 limbs regardless of the
// modulus size, so exponentiation costs ~256 squarings instead of ~|p|.
// Decode() checks subgroup membership with one q-exponentiation; HashToGroup
// clears the (p-1)/q cofactor.
#ifndef SRC_GROUP_SCHNORR_GROUP_H_
#define SRC_GROUP_SCHNORR_GROUP_H_

#include <string>
#include <vector>

#include "src/common/sha256.h"
#include "src/group/scalar_field.h"
#include "src/group/schnorr_params.h"

namespace vdp {

template <size_t L, const SchnorrParams<L>& (*Params)()>
class SchnorrGroup {
 public:
  static constexpr size_t kLimbs = L;
  static constexpr size_t kElementSize = BigInt<L>::kBytes;

  struct ScalarTag {
    static const BigInt<4>& Order() { return Params().q; }
  };
  using Scalar = ScalarField<4, ScalarTag>;

  class Element {
   public:
    Element() : v_(BigInt<L>::One()) {}

    const BigInt<L>& value() const { return v_; }

    friend bool operator==(const Element& a, const Element& b) { return a.v_ == b.v_; }
    friend bool operator!=(const Element& a, const Element& b) { return a.v_ != b.v_; }

   private:
    friend class SchnorrGroup;
    explicit Element(const BigInt<L>& v) : v_(v) {}
    BigInt<L> v_;
  };

  // Acceleration kernel: Montgomery-form residues (see modp_group.h).
  struct Accel {
    using P = BigInt<L>;
    using A = BigInt<L>;
    static constexpr bool kCheapNegate = false;

    static P Identity() { return PCtx().r(); }
    static P Lift(const Element& e) { return PCtx().ToMont(e.v_); }
    static Element Lower(const P& p) { return Element(PCtx().FromMont(p)); }
    static A ToA(const P& p) { return p; }
    static void Normalize(const std::vector<P>& pts, std::vector<A>* out) {
      *out = pts;
    }
    static P Add(const P& a, const P& b) { return PCtx().MulMont(a, b); }
    static P AddA(const P& a, const A& b) { return PCtx().MulMont(a, b); }
    static P Dbl(const P& a) { return PCtx().SqrMont(a); }
    static A NegA(const A& a) {
      return PCtx().ToMont(PCtx().Inverse(PCtx().FromMont(a)));
    }
  };

  static std::string Name() { return "schnorr-" + std::to_string(L * 64) + "-q256"; }

  static Element Identity() { return Element(); }
  static Element Generator() { return Element(Params().g); }

  static Element Mul(const Element& a, const Element& b) {
    return Element(PCtx().MulMod(a.v_, b.v_));
  }

  static Element Exp(const Element& base, const Scalar& e) {
    return Element(PCtx().ExpMod(base.v_, e.value()));
  }

  static Element Inverse(const Element& a) { return Element(PCtx().Inverse(a.v_)); }

  static Element ExpG(const Scalar& e) { return Exp(Generator(), e); }

  static Bytes Encode(const Element& e) { return e.v_.ToBytesBe(); }

  static std::optional<Element> Decode(BytesView bytes) {
    if (bytes.size() != kElementSize) {
      return std::nullopt;
    }
    auto v = BigInt<L>::FromBytesBe(bytes);
    if (!v.has_value() || v->IsZero() || *v >= Params().p) {
      return std::nullopt;
    }
    Element e(*v);
    if (!InSubgroup(e)) {
      return std::nullopt;
    }
    return e;
  }

  static bool InSubgroup(const Element& e) {
    return PCtx().template ExpMod<4>(e.v_, Params().q) == BigInt<L>::One();
  }

  // Hash to a field element, then clear the cofactor so the result lands in
  // the order-q subgroup.
  static Element HashToGroup(BytesView domain, BytesView msg) {
    for (uint64_t counter = 0;; ++counter) {
      Sha256 h;
      h.Update(StrView("vdp/schnorr-hash-to-group"));
      uint8_t dlen = static_cast<uint8_t>(domain.size());
      h.Update(BytesView(&dlen, 1));
      h.Update(domain);
      h.Update(msg);
      uint8_t ctr[8];
      for (int i = 0; i < 8; ++i) {
        ctr[i] = static_cast<uint8_t>(counter >> (8 * i));
      }
      h.Update(BytesView(ctr, 8));
      Bytes wide;
      Sha256::Digest block = h.Finalize();
      while (wide.size() < kElementSize) {
        wide.insert(wide.end(), block.begin(), block.end());
        block = Sha256::Hash(BytesView(block.data(), block.size()));
      }
      wide.resize(kElementSize);
      auto u = BigInt<L>::FromBytesBe(wide);
      BigInt<L> reduced = Mod(*u, Params().p);
      if (reduced.IsZero()) {
        continue;
      }
      BigInt<L> cleared = PCtx().ExpMod(reduced, Params().cofactor);
      if (cleared != BigInt<L>::One()) {
        return Element(cleared);
      }
    }
  }

 private:
  static const MontgomeryCtx<L>& PCtx() {
    static const MontgomeryCtx<L> ctx(Params().p);
    return ctx;
  }
};

using Schnorr512 = SchnorrGroup<8, Schnorr512Params>;
using Schnorr2048 = SchnorrGroup<32, Schnorr2048Params>;

}  // namespace vdp

#endif  // SRC_GROUP_SCHNORR_GROUP_H_
