// The prime-order group abstraction every protocol layer builds on.
//
// A PrimeOrderGroup is a cyclic group of prime order q where the discrete
// logarithm problem is assumed hard, together with its scalar field Z_q.
// Two backends are provided: Schnorr groups over Z_p* (modp_group.h) and the
// Edwards25519 subgroup (ed25519.h). Protocol code is generic over the
// backend; explicit instantiations live at the bottom of the protocol .cc
// files.
#ifndef SRC_GROUP_GROUP_H_
#define SRC_GROUP_GROUP_H_

#include <concepts>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/group/ed25519.h"
#include "src/group/modp_group.h"
#include "src/group/schnorr_group.h"

namespace vdp {

template <typename S>
concept GroupScalar = requires(const S& s, SecureRng& rng, BytesView bytes) {
  { S::Zero() } -> std::same_as<S>;
  { S::One() } -> std::same_as<S>;
  { S::Random(rng) } -> std::same_as<S>;
  { S::FromU64(uint64_t{}) } -> std::same_as<S>;
  { S::FromBytesWide(bytes) } -> std::same_as<S>;
  { S::Decode(bytes) } -> std::same_as<std::optional<S>>;
  { s + s } -> std::same_as<S>;
  { s - s } -> std::same_as<S>;
  { s* s } -> std::same_as<S>;
  { -s } -> std::same_as<S>;
  { s.Inverse() } -> std::same_as<S>;
  { s.Encode() } -> std::same_as<Bytes>;
  { s == s } -> std::convertible_to<bool>;
};

template <typename G>
concept PrimeOrderGroup =
    GroupScalar<typename G::Scalar> &&
    requires(const typename G::Element& e, const typename G::Scalar& s, BytesView bytes) {
      { G::Name() } -> std::convertible_to<std::string>;
      { G::Identity() } -> std::same_as<typename G::Element>;
      { G::Generator() } -> std::same_as<typename G::Element>;
      { G::Mul(e, e) } -> std::same_as<typename G::Element>;
      { G::Exp(e, s) } -> std::same_as<typename G::Element>;
      { G::ExpG(s) } -> std::same_as<typename G::Element>;
      { G::Inverse(e) } -> std::same_as<typename G::Element>;
      { G::Encode(e) } -> std::same_as<Bytes>;
      { G::Decode(bytes) } -> std::same_as<std::optional<typename G::Element>>;
      { G::HashToGroup(bytes, bytes) } -> std::same_as<typename G::Element>;
      { e == e } -> std::convertible_to<bool>;
    };

static_assert(PrimeOrderGroup<ModP256>);
static_assert(PrimeOrderGroup<ModP512>);
static_assert(PrimeOrderGroup<ModP1024>);
static_assert(PrimeOrderGroup<ModP2048>);
static_assert(PrimeOrderGroup<Ed25519Group>);
static_assert(PrimeOrderGroup<Schnorr512>);
static_assert(PrimeOrderGroup<Schnorr2048>);

// Division (exponentiation by the inverse is never needed; this is the group
// operation with the second operand inverted): a / b = a * b^{-1}.
template <PrimeOrderGroup G>
typename G::Element Div(const typename G::Element& a, const typename G::Element& b) {
  return G::Mul(a, G::Inverse(b));
}

namespace group_internal {

template <typename G, typename = void>
struct HasEncodeBatch : std::false_type {};

template <typename G>
struct HasEncodeBatch<G, std::void_t<decltype(G::EncodeBatch(
                             std::declval<const std::vector<typename G::Element>&>()))>>
    : std::true_type {};

}  // namespace group_internal

// Encode a set of elements, using the group's batch encoder when it has one.
// Curve groups pay a field inversion per Encode; EncodeBatch shares one
// inversion across the whole set, which matters in transcript construction
// (every proof absorbs several element encodings).
template <PrimeOrderGroup G>
std::vector<Bytes> EncodeAll(const std::vector<typename G::Element>& es) {
  if constexpr (group_internal::HasEncodeBatch<G>::value) {
    return G::EncodeBatch(es);
  } else {
    std::vector<Bytes> out;
    out.reserve(es.size());
    for (const auto& e : es) {
      out.push_back(G::Encode(e));
    }
    return out;
  }
}

}  // namespace vdp

#endif  // SRC_GROUP_GROUP_H_
