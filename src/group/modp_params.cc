#include "src/group/modp_params.h"

#include <stdexcept>

namespace vdp {
namespace {

template <size_t L>
ModPParams<L> MakeParams(const char* p_hex) {
  auto p = BigInt<L>::FromHex(p_hex);
  if (!p.has_value()) {
    throw std::logic_error("bad hard-coded prime");
  }
  ModPParams<L> params;
  params.p = *p;
  params.q = *p;
  BigInt<L>::SubInto(params.q, params.q, BigInt<L>::One());
  params.q.ShiftRight1();
  params.g = 4;  // 2^2 is a quadratic residue; any non-identity QR generates the order-q group
  return params;
}

}  // namespace

const ModPParams<1>& ModP64Params() {
  static const ModPParams<1> params = MakeParams<1>("b5523ad7a8985107");
  return params;
}

const ModPParams<4>& ModP256Params() {
  static const ModPParams<4> params = MakeParams<4>(
      "dbe9f9f63d95fe684c6f3cf76db3caf6ef4b7cd5130565e79f68a3ea74fdf9b7");
  return params;
}

const ModPParams<8>& ModP512Params() {
  static const ModPParams<8> params = MakeParams<8>(
      "b0bcaef9afed33c017b99edeab6c784d51b6b9705b23e46d5b0111cc063bbe07"
      "f793df0dee28fa6bcf7230c355c7eff0a68c23c4c3c9d8cad71e2ca52d9b47a7");
  return params;
}

const ModPParams<16>& ModP1024Params() {
  static const ModPParams<16> params = MakeParams<16>(
      "e22969ca762a76d7d4cbeb6a96716e6be27aaa74068cf887e09290ce8757ae3b"
      "04fb5d9dc6b07efb90ede13351fbd0daf4bc0e45506433ab8ac1defabc960859"
      "d3f38e1e1f11f51e0eb64ba1751a75a20bad018db01a3743a351c2c599cb5a6d"
      "efbd9805b9f581c4dfe34c9c768516407f660067ff88aa920b375bfc178e863f");
  return params;
}

const ModPParams<32>& ModP2048Params() {
  static const ModPParams<32> params = MakeParams<32>(
      "9f81159495a9a1c4f6ed4014a2ecf1ab8cc52bfc744f767a57234743a0d0ed10"
      "2267540c163e15071fde8596c955be930718fe007e1497029cc944b2d0ef6db6"
      "d43ecadae39e8b87e67d3b3503169bb8a2700010f4a698fc18843323b5f95105"
      "69fd87ec1e261787c45081584bee72fd4f58075361233d69a5f31de3900d51ab"
      "ebb62aa167cb69ef2b72b9c71e2cdeb3997dd7c869520a8072c2efae79e4a262"
      "8cba7a6c5cb83fd16980b9c01b89850235d75340a78bfba6b1541836de3043e3"
      "2ffa3d84f21719651eec990ace65460a4976b012aa19c244e58c53c26e8b87b2"
      "cf4bb087653107935e46b7f32688c6fb54bf778d8b5856284f99bf5388f4e0cf");
  return params;
}

}  // namespace vdp
