#include "src/group/ed25519.h"

namespace vdp {
namespace {

GePoint IdentityPoint() {
  GePoint p;
  p.x = Fe25519::Zero();
  p.y = Fe25519::One();
  p.z = Fe25519::One();
  p.t = Fe25519::Zero();
  return p;
}

GePoint NegatePoint(const GePoint& p) {
  GePoint r = p;
  r.x = Fe25519::Neg(p.x);
  r.t = Fe25519::Neg(p.t);
  return r;
}

bool PointsEqual(const GePoint& a, const GePoint& b) {
  // x1/z1 == x2/z2  <=>  x1 z2 == x2 z1 (same for y).
  return Fe25519::Mul(a.x, b.z) == Fe25519::Mul(b.x, a.z) &&
         Fe25519::Mul(a.y, b.z) == Fe25519::Mul(b.y, a.z);
}

bool OnCurve(const Fe25519& x, const Fe25519& y) {
  // -x^2 + y^2 == 1 + d x^2 y^2
  Fe25519 xx = Fe25519::Square(x);
  Fe25519 yy = Fe25519::Square(y);
  Fe25519 lhs = Fe25519::Sub(yy, xx);
  Fe25519 rhs = Fe25519::Add(Fe25519::One(),
                             Fe25519::Mul(Ed25519Group::D(), Fe25519::Mul(xx, yy)));
  return lhs == rhs;
}

}  // namespace

const BigInt<4>& Ed25519Group::ScalarTag::Order() {
  static const BigInt<4> l = *BigInt<4>::FromHex(
      "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed");
  return l;
}

const Fe25519& Ed25519Group::D() {
  static const Fe25519 d = [] {
    // d = -121665 / 121666 mod p (the defining constant of edwards25519).
    Fe25519 num = Fe25519::Neg(Fe25519::FromU64(121665));
    Fe25519 den = Fe25519::FromU64(121666);
    return Fe25519::Mul(num, den.Invert());
  }();
  return d;
}

Ed25519Group::Element::Element() : p_(IdentityPoint()) {}

bool operator==(const Ed25519Group::Element& a, const Ed25519Group::Element& b) {
  return PointsEqual(a.p_, b.p_);
}

Ed25519Group::Element Ed25519Group::Identity() { return Element(); }

Ed25519Group::Element Ed25519Group::Generator() {
  static const GePoint base = [] {
    // The standard base point has y = 4/5 and "even" (non-negative) x.
    Fe25519 y = Fe25519::Mul(Fe25519::FromU64(4), Fe25519::FromU64(5).Invert());
    Fe25519 yy = Fe25519::Square(y);
    Fe25519 u = Fe25519::Sub(yy, Fe25519::One());
    Fe25519 v = Fe25519::Add(Fe25519::Mul(D(), yy), Fe25519::One());
    Fe25519 x = *Fe25519::Mul(u, v.Invert()).Sqrt();
    if (x.IsNegative()) {
      x = Fe25519::Neg(x);
    }
    GePoint p;
    p.x = x;
    p.y = y;
    p.z = Fe25519::One();
    p.t = Fe25519::Mul(x, y);
    return p;
  }();
  return Element(base);
}

// Unified addition (add-2008-hwcd with a = -1); complete on this curve, so it
// also serves as doubling.
GePoint Ed25519Group::Add(const GePoint& p, const GePoint& q) {
  Fe25519 a = Fe25519::Mul(p.x, q.x);
  Fe25519 b = Fe25519::Mul(p.y, q.y);
  Fe25519 c = Fe25519::Mul(Fe25519::Mul(p.t, D()), q.t);
  Fe25519 d2 = Fe25519::Mul(p.z, q.z);
  Fe25519 e = Fe25519::Sub(
      Fe25519::Sub(Fe25519::Mul(Fe25519::Add(p.x, p.y), Fe25519::Add(q.x, q.y)), a), b);
  Fe25519 f = Fe25519::Sub(d2, c);
  Fe25519 g = Fe25519::Add(d2, c);
  Fe25519 h = Fe25519::Add(b, a);  // B - aA with a = -1
  GePoint r;
  r.x = Fe25519::Mul(e, f);
  r.y = Fe25519::Mul(g, h);
  r.t = Fe25519::Mul(e, h);
  r.z = Fe25519::Mul(f, g);
  return r;
}

GePoint Ed25519Group::ScalarMult(const GePoint& p, const BigInt<4>& e) {
  // 4-bit window, variable time (acceptable: exponents in this library are
  // either public or blinded at the protocol level).
  GePoint table[16];
  table[0] = IdentityPoint();
  table[1] = p;
  for (int i = 2; i < 16; ++i) {
    table[i] = Add(table[i - 1], p);
  }
  GePoint acc = IdentityPoint();
  size_t bits = e.BitLength();
  size_t windows = (bits + 3) / 4;
  for (size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) {
      acc = Add(acc, acc);
    }
    uint32_t nib = 0;
    for (int b = 3; b >= 0; --b) {
      size_t bit = w * 4 + static_cast<size_t>(b);
      nib = (nib << 1) | ((bit < bits && e.Bit(bit)) ? 1u : 0u);
    }
    if (nib != 0) {
      acc = Add(acc, table[nib]);
    }
  }
  return acc;
}

Ed25519Group::Element Ed25519Group::Mul(const Element& a, const Element& b) {
  return Element(Add(a.p_, b.p_));
}

Ed25519Group::Element Ed25519Group::Exp(const Element& base, const Scalar& e) {
  return Element(ScalarMult(base.p_, e.value()));
}

Ed25519Group::Element Ed25519Group::Inverse(const Element& a) {
  return Element(NegatePoint(a.p_));
}

Bytes Ed25519Group::Encode(const Element& e) {
  Fe25519 zinv = e.p_.z.Invert();
  Fe25519 x = Fe25519::Mul(e.p_.x, zinv);
  Fe25519 y = Fe25519::Mul(e.p_.y, zinv);
  auto bytes = y.ToBytes();
  if (x.IsNegative()) {
    bytes[31] |= 0x80;
  }
  return Bytes(bytes.begin(), bytes.end());
}

std::optional<GePoint> Ed25519Group::Decompress(BytesView bytes) {
  if (bytes.size() != kElementSize) {
    return std::nullopt;
  }
  Bytes y_bytes(bytes.begin(), bytes.end());
  bool sign = (y_bytes[31] & 0x80) != 0;
  y_bytes[31] &= 0x7f;
  auto y = Fe25519::FromBytes(y_bytes);
  if (!y.has_value()) {
    return std::nullopt;
  }
  // x^2 = (y^2 - 1) / (d y^2 + 1)
  Fe25519 yy = Fe25519::Square(*y);
  Fe25519 u = Fe25519::Sub(yy, Fe25519::One());
  Fe25519 v = Fe25519::Add(Fe25519::Mul(D(), yy), Fe25519::One());
  auto x = Fe25519::Mul(u, v.Invert()).Sqrt();
  if (!x.has_value()) {
    return std::nullopt;
  }
  if (x->IsZero() && sign) {
    return std::nullopt;  // -0 is not a valid encoding
  }
  if (x->IsNegative() != sign) {
    *x = Fe25519::Neg(*x);
  }
  if (!OnCurve(*x, *y)) {
    return std::nullopt;
  }
  GePoint p;
  p.x = *x;
  p.y = *y;
  p.z = Fe25519::One();
  p.t = Fe25519::Mul(*x, *y);
  return p;
}

bool Ed25519Group::InSubgroup(const Element& e) {
  GePoint le = ScalarMult(e.p_, ScalarTag::Order());
  return PointsEqual(le, IdentityPoint());
}

std::optional<Ed25519Group::Element> Ed25519Group::Decode(BytesView bytes) {
  auto p = Decompress(bytes);
  if (!p.has_value()) {
    return std::nullopt;
  }
  Element e(*p);
  if (!InSubgroup(e)) {
    return std::nullopt;
  }
  return e;
}

Ed25519Group::Element Ed25519Group::HashToGroup(BytesView domain, BytesView msg) {
  for (uint64_t counter = 0;; ++counter) {
    Sha256 h;
    h.Update(StrView("vdp/ed25519-hash-to-group"));
    uint8_t dlen = static_cast<uint8_t>(domain.size());
    h.Update(BytesView(&dlen, 1));
    h.Update(domain);
    h.Update(msg);
    uint8_t ctr[8];
    for (int i = 0; i < 8; ++i) {
      ctr[i] = static_cast<uint8_t>(counter >> (8 * i));
    }
    h.Update(BytesView(ctr, 8));
    Sha256::Digest digest = h.Finalize();
    Bytes candidate(digest.begin(), digest.end());
    candidate[31] &= 0x7f;  // interpret as a y coordinate with positive x
    auto p = Decompress(candidate);
    if (!p.has_value()) {
      continue;
    }
    // Clear the cofactor: 8P lies in the prime-order subgroup.
    GePoint p2 = Add(*p, *p);
    GePoint p4 = Add(p2, p2);
    GePoint p8 = Add(p4, p4);
    if (PointsEqual(p8, IdentityPoint())) {
      continue;  // hashed into the torsion subgroup; try the next counter
    }
    return Element(p8);
  }
}

}  // namespace vdp
