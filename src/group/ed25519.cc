#include "src/group/ed25519.h"

#include "src/math/batch_inverse.h"

namespace vdp {
namespace {

GePoint IdentityPoint() {
  GePoint p;
  p.x = Fe25519::Zero();
  p.y = Fe25519::One();
  p.z = Fe25519::One();
  p.t = Fe25519::Zero();
  return p;
}

GePoint NegatePoint(const GePoint& p) {
  GePoint r = p;
  r.x = Fe25519::Neg(p.x);
  r.t = Fe25519::Neg(p.t);
  return r;
}

bool PointsEqual(const GePoint& a, const GePoint& b) {
  // x1/z1 == x2/z2  <=>  x1 z2 == x2 z1 (same for y).
  return Fe25519::Mul(a.x, b.z) == Fe25519::Mul(b.x, a.z) &&
         Fe25519::Mul(a.y, b.z) == Fe25519::Mul(b.y, a.z);
}

bool OnCurve(const Fe25519& x, const Fe25519& y) {
  // -x^2 + y^2 == 1 + d x^2 y^2
  Fe25519 xx = Fe25519::Square(x);
  Fe25519 yy = Fe25519::Square(y);
  Fe25519 lhs = Fe25519::Sub(yy, xx);
  Fe25519 rhs = Fe25519::Add(Fe25519::One(),
                             Fe25519::Mul(Ed25519Group::D(), Fe25519::Mul(xx, yy)));
  return lhs == rhs;
}

// Readdable projective point: (y+x, y-x, z, 2dT). Mixed addition against this
// form costs 8M and needs no normalization, so it serves as the per-call
// precomputation of variable-base ScalarMult.
struct GeCached {
  Fe25519 ypx;
  Fe25519 ymx;
  Fe25519 z;
  Fe25519 t2d;
};

GeCached ToCached(const GePoint& p) {
  return GeCached{Fe25519::Add(p.y, p.x), Fe25519::Sub(p.y, p.x), p.z,
                  Fe25519::Mul(p.t, Ed25519Group::TwoD())};
}

// add-2008-hwcd-3 (a = -1) against a cached point: 8M.
GePoint AddCached(const GePoint& p, const GeCached& q) {
  Fe25519 a = Fe25519::Mul(Fe25519::Add(p.y, p.x), q.ypx);
  Fe25519 b = Fe25519::Mul(Fe25519::Sub(p.y, p.x), q.ymx);
  Fe25519 c = Fe25519::Mul(p.t, q.t2d);
  Fe25519 zz = Fe25519::Mul(p.z, q.z);
  Fe25519 d2 = Fe25519::Add(zz, zz);
  Fe25519 e = Fe25519::Sub(a, b);
  Fe25519 f = Fe25519::Sub(d2, c);
  Fe25519 g = Fe25519::Add(d2, c);
  Fe25519 h = Fe25519::Add(a, b);
  GePoint r;
  r.x = Fe25519::Mul(e, f);
  r.y = Fe25519::Mul(g, h);
  r.z = Fe25519::Mul(f, g);
  r.t = Fe25519::Mul(e, h);
  return r;
}

}  // namespace

const BigInt<4>& Ed25519Group::ScalarTag::Order() {
  static const BigInt<4> l = *BigInt<4>::FromHex(
      "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed");
  return l;
}

const Fe25519& Ed25519Group::D() {
  static const Fe25519 d = [] {
    // d = -121665 / 121666 mod p (the defining constant of edwards25519).
    Fe25519 num = Fe25519::Neg(Fe25519::FromU64(121665));
    Fe25519 den = Fe25519::FromU64(121666);
    return Fe25519::Mul(num, den.Invert());
  }();
  return d;
}

const Fe25519& Ed25519Group::TwoD() {
  static const Fe25519 two_d = Fe25519::Add(D(), D());
  return two_d;
}

Ed25519Group::Element::Element() : p_(IdentityPoint()) {}

bool operator==(const Ed25519Group::Element& a, const Ed25519Group::Element& b) {
  return PointsEqual(a.p_, b.p_);
}

Ed25519Group::Element Ed25519Group::Identity() { return Element(); }

GePoint Ed25519Group::Accel::Identity() { return IdentityPoint(); }

GeNiels Ed25519Group::Accel::ToA(const GePoint& p) {
  Fe25519 zinv = p.z.Invert();
  Fe25519 x = Fe25519::Mul(p.x, zinv);
  Fe25519 y = Fe25519::Mul(p.y, zinv);
  return GeNiels{Fe25519::Add(y, x), Fe25519::Sub(y, x),
                 Fe25519::Mul(TwoD(), Fe25519::Mul(x, y))};
}

void Ed25519Group::Accel::Normalize(const std::vector<GePoint>& pts,
                                    std::vector<GeNiels>* out) {
  std::vector<Fe25519> zs(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    zs[i] = pts[i].z;
  }
  BatchInverse(Fe25519Field{}, &zs);  // z is never 0 for a valid point
  out->resize(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    Fe25519 x = Fe25519::Mul(pts[i].x, zs[i]);
    Fe25519 y = Fe25519::Mul(pts[i].y, zs[i]);
    (*out)[i] = GeNiels{Fe25519::Add(y, x), Fe25519::Sub(y, x),
                        Fe25519::Mul(TwoD(), Fe25519::Mul(x, y))};
  }
}

Ed25519Group::Element Ed25519Group::Generator() {
  static const GePoint base = [] {
    // The standard base point has y = 4/5 and "even" (non-negative) x.
    Fe25519 y = Fe25519::Mul(Fe25519::FromU64(4), Fe25519::FromU64(5).Invert());
    Fe25519 yy = Fe25519::Square(y);
    Fe25519 u = Fe25519::Sub(yy, Fe25519::One());
    Fe25519 v = Fe25519::Add(Fe25519::Mul(D(), yy), Fe25519::One());
    Fe25519 x = *Fe25519::Mul(u, v.Invert()).Sqrt();
    if (x.IsNegative()) {
      x = Fe25519::Neg(x);
    }
    GePoint p;
    p.x = x;
    p.y = y;
    p.z = Fe25519::One();
    p.t = Fe25519::Mul(x, y);
    return p;
  }();
  return Element(base);
}

GePoint Ed25519Group::ScalarMult(const GePoint& p, const BigInt<4>& e) {
  // 4-bit window over a cached-form table, variable time (acceptable:
  // exponents in this library are either public or blinded at the protocol
  // level). Doublings use the dedicated 4M+4S formula; window additions the
  // 8M cached add.
  GeCached table[16];  // table[i] = i * p; index 0 unused
  GePoint multiple = p;
  table[1] = ToCached(p);
  for (int i = 2; i < 16; ++i) {
    multiple = Accel::Add(multiple, p);
    table[i] = ToCached(multiple);
  }
  GePoint acc = IdentityPoint();
  size_t bits = e.BitLength();
  size_t windows = (bits + 3) / 4;
  for (size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) {
      acc = Accel::Dbl(acc);
    }
    uint32_t nib = 0;
    for (int b = 3; b >= 0; --b) {
      size_t bit = w * 4 + static_cast<size_t>(b);
      nib = (nib << 1) | ((bit < bits && e.Bit(bit)) ? 1u : 0u);
    }
    if (nib != 0) {
      acc = AddCached(acc, table[nib]);
    }
  }
  return acc;
}

Ed25519Group::Element Ed25519Group::Mul(const Element& a, const Element& b) {
  return Element(Accel::Add(a.p_, b.p_));
}

Ed25519Group::Element Ed25519Group::Exp(const Element& base, const Scalar& e) {
  return Element(ScalarMult(base.p_, e.value()));
}

Ed25519Group::Element Ed25519Group::Inverse(const Element& a) {
  return Element(NegatePoint(a.p_));
}

Bytes Ed25519Group::Encode(const Element& e) {
  Fe25519 x = e.p_.x;
  Fe25519 y = e.p_.y;
  if (!(e.p_.z == Fe25519::One())) {  // decoded points carry z = 1
    Fe25519 zinv = e.p_.z.Invert();
    x = Fe25519::Mul(x, zinv);
    y = Fe25519::Mul(y, zinv);
  }
  auto bytes = y.ToBytes();
  if (x.IsNegative()) {
    bytes[31] |= 0x80;
  }
  return Bytes(bytes.begin(), bytes.end());
}

std::vector<Bytes> Ed25519Group::EncodeBatch(const std::vector<Element>& es) {
  std::vector<Fe25519> zs(es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    zs[i] = es[i].p_.z;
  }
  BatchInverse(Fe25519Field{}, &zs);
  std::vector<Bytes> out(es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    Fe25519 x = Fe25519::Mul(es[i].p_.x, zs[i]);
    Fe25519 y = Fe25519::Mul(es[i].p_.y, zs[i]);
    auto bytes = y.ToBytes();
    if (x.IsNegative()) {
      bytes[31] |= 0x80;
    }
    out[i] = Bytes(bytes.begin(), bytes.end());
  }
  return out;
}

std::optional<GePoint> Ed25519Group::Decompress(BytesView bytes) {
  if (bytes.size() != kElementSize) {
    return std::nullopt;
  }
  Bytes y_bytes(bytes.begin(), bytes.end());
  bool sign = (y_bytes[31] & 0x80) != 0;
  y_bytes[31] &= 0x7f;
  auto y = Fe25519::FromBytes(y_bytes);
  if (!y.has_value()) {
    return std::nullopt;
  }
  // x^2 = (y^2 - 1) / (d y^2 + 1)
  Fe25519 yy = Fe25519::Square(*y);
  Fe25519 u = Fe25519::Sub(yy, Fe25519::One());
  Fe25519 v = Fe25519::Add(Fe25519::Mul(D(), yy), Fe25519::One());
  auto x = Fe25519::Mul(u, v.Invert()).Sqrt();
  if (!x.has_value()) {
    return std::nullopt;
  }
  if (x->IsZero() && sign) {
    return std::nullopt;  // -0 is not a valid encoding
  }
  if (x->IsNegative() != sign) {
    *x = Fe25519::Neg(*x);
  }
  if (!OnCurve(*x, *y)) {
    return std::nullopt;
  }
  GePoint p;
  p.x = *x;
  p.y = *y;
  p.z = Fe25519::One();
  p.t = Fe25519::Mul(*x, *y);
  return p;
}

bool Ed25519Group::InSubgroup(const Element& e) {
  GePoint le = ScalarMult(e.p_, ScalarTag::Order());
  return PointsEqual(le, IdentityPoint());
}

std::optional<Ed25519Group::Element> Ed25519Group::Decode(BytesView bytes) {
  auto p = Decompress(bytes);
  if (!p.has_value()) {
    return std::nullopt;
  }
  Element e(*p);
  if (!InSubgroup(e)) {
    return std::nullopt;
  }
  return e;
}

Ed25519Group::Element Ed25519Group::HashToGroup(BytesView domain, BytesView msg) {
  for (uint64_t counter = 0;; ++counter) {
    Sha256 h;
    h.Update(StrView("vdp/ed25519-hash-to-group"));
    uint8_t dlen = static_cast<uint8_t>(domain.size());
    h.Update(BytesView(&dlen, 1));
    h.Update(domain);
    h.Update(msg);
    uint8_t ctr[8];
    for (int i = 0; i < 8; ++i) {
      ctr[i] = static_cast<uint8_t>(counter >> (8 * i));
    }
    h.Update(BytesView(ctr, 8));
    Sha256::Digest digest = h.Finalize();
    Bytes candidate(digest.begin(), digest.end());
    candidate[31] &= 0x7f;  // interpret as a y coordinate with positive x
    auto p = Decompress(candidate);
    if (!p.has_value()) {
      continue;
    }
    // Clear the cofactor: 8P lies in the prime-order subgroup.
    GePoint p2 = Accel::Dbl(*p);
    GePoint p4 = Accel::Dbl(p2);
    GePoint p8 = Accel::Dbl(p4);
    if (PointsEqual(p8, IdentityPoint())) {
      continue;  // hashed into the torsion subgroup; try the next counter
    }
    return Element(p8);
  }
}

}  // namespace vdp
