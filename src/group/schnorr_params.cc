#include "src/group/schnorr_params.h"

#include <stdexcept>

namespace vdp {
namespace {

template <size_t L>
SchnorrParams<L> MakeParams(const char* p_hex, const char* q_hex, const char* g_hex) {
  auto p = BigInt<L>::FromHex(p_hex);
  auto q = BigInt<4>::FromHex(q_hex);
  auto g = BigInt<L>::FromHex(g_hex);
  if (!p || !q || !g) {
    throw std::logic_error("bad hard-coded Schnorr parameters");
  }
  SchnorrParams<L> params;
  params.p = *p;
  params.q = *q;
  params.g = *g;
  // cofactor = (p - 1) / q, exact by construction (revalidated in tests).
  BigInt<L> p_minus_1 = *p;
  BigInt<L>::SubInto(p_minus_1, p_minus_1, BigInt<L>::One());
  params.cofactor = DivMod(p_minus_1, q->template Resize<L>()).quotient;
  return params;
}

}  // namespace

const SchnorrParams<8>& Schnorr512Params() {
  static const SchnorrParams<8> params = MakeParams<8>(
      "9c513b3ba085f7deac85d537eb0da8d65aba848973ae4cd5f49d0089dcd25f3b"
      "29bc08c8027c853b871a2112e0ccd8ac8c38904264a6046945cda027468b9593",
      "a1af2c6cfd7936d831a085893018886133ffcc32cfa83b7b4889c9eedd1af88f",
      "07effabe563852159d316ad8628a29b7c3f626661d1c5bc789a71531c08464f4"
      "75447e8094bb18facf96c7a5fa120a73d751e08fb48232bd5a5e432b782b1511");
  return params;
}

const SchnorrParams<32>& Schnorr2048Params() {
  static const SchnorrParams<32> params = MakeParams<32>(
      "9dbf4dffab940e40473c16df505a9c5b233cb01ec0c03b1798c35b0c7cf82e49"
      "f6e9bf3addf12b838b4e621c4636cacdd2ceb0db8ca960018c48d6b725e8525d"
      "5c0a3a16e792f4f1fb4ee82ffe409815581fde5bbeaed201a2b4cab3820ca308"
      "de696b612b4f2a29e27fed9396c30a071cbf8584013d5c8a63e8a4b494ac3fb7"
      "9536423d865cc076da78a8821cc916765e7f3eca3cbc5e9ea62b73d944cc0c69"
      "8407a4645404a8fcc5b4c024310b1df94a3a3e384377f84e717d60c7539d69a1"
      "46d686c44de8a7c4e3583a22eebced86aefbff2419c171fda1fc1754bd130d4e"
      "ff76a59815b8ccc3aa11ddb75f9d23f1025fb150db279cab76d166e5fb3a3a67",
      "a2522efefb23fd5830af637e04122cc42395a366cf2ac3606c263c36c459cb55",
      "290df5589ef072fdb028903c1c85013b2999a802840e4f80cc9f4d56beddeb8a"
      "2bdac9ae2fc7ef1edfad59535b2961539f2422bf204504668b01e980b9d7ebec"
      "65ed2cff9a659e212924aad58a177e25aced23a5634c9849101a0798e27a5f64"
      "8f367d90e2ae0819282fd4f1f018cfd254ac5d4602b6e06ba6929634c4837e58"
      "7e285439646c096569e983fc7d273ed989199f67398c68c44f0d81c37dbe25c7"
      "07d676a2a849943b7afc81676d5fc7344c137e798663a96fd350ed67898919ed"
      "af1f9cf5a9af079b00de7db9647fa466fb5d1ab5b50841a0cdcc7ddb78460f53"
      "b3c75927989e712d4f3d6c982e8867c1836cfa4bf8b2ff8706bc6d8322a672ef");
  return params;
}

}  // namespace vdp
