// The registry of compiled-in groups: one list, consumed everywhere a
// process needs "every group" -- tools/gen_params' `list` subcommand, the
// wire-level dispatcher (src/wire/group_dispatch.h), the differential
// group-law test harness, and the conformance suite's VDP_GROUP hook. Adding
// a group here is the single step that makes it reachable from all of them.
#ifndef SRC_GROUP_REGISTRY_H_
#define SRC_GROUP_REGISTRY_H_

#include <string>
#include <utility>
#include <vector>

#include "src/group/group.h"

namespace vdp {

template <PrimeOrderGroup G>
struct GroupTag {
  using Group = G;
};

// Invokes fn(GroupTag<G>{}) once per registered group, in a fixed order
// (cheapest test groups first). fn is typically a generic lambda.
template <typename Fn>
void ForEachRegisteredGroup(Fn&& fn) {
  fn(GroupTag<ModP64>{});
  fn(GroupTag<ModP256>{});
  fn(GroupTag<ModP512>{});
  fn(GroupTag<ModP1024>{});
  fn(GroupTag<ModP2048>{});
  fn(GroupTag<Schnorr512>{});
  fn(GroupTag<Schnorr2048>{});
  fn(GroupTag<Ed25519Group>{});
}

// Invokes fn(GroupTag<G>{}) for the group named `name`; returns false when
// the name matches no compiled-in group (fn not called).
template <typename Fn>
bool DispatchRegisteredGroup(const std::string& name, Fn&& fn) {
  bool found = false;
  ForEachRegisteredGroup([&](auto tag) {
    using G = typename decltype(tag)::Group;
    if (!found && name == G::Name()) {
      found = true;
      fn(tag);
    }
  });
  return found;
}

struct GroupInfo {
  std::string name;
  size_t element_bytes;
  size_t scalar_bits;  // bit length of the group order
};

inline std::vector<GroupInfo> RegisteredGroupInfos() {
  std::vector<GroupInfo> infos;
  ForEachRegisteredGroup([&](auto tag) {
    using G = typename decltype(tag)::Group;
    infos.push_back(GroupInfo{G::Name(), G::kElementSize,
                              G::Scalar::Order().BitLength()});
  });
  return infos;
}

inline std::vector<std::string> RegisteredGroupNames() {
  std::vector<std::string> names;
  ForEachRegisteredGroup([&](auto tag) {
    using G = typename decltype(tag)::Group;
    names.push_back(G::Name());
  });
  return names;
}

}  // namespace vdp

#endif  // SRC_GROUP_REGISTRY_H_
