// Fixed-base exponentiation with precomputed comb tables.
//
// Pedersen commitments and the per-proof verifier exponentiate the same two
// generators millions of times per protocol run. A comb table stores
// base^(d * 2^(w*width)) for every window position w and digit d, turning
// each exponentiation into one table addition per nonzero window -- no
// squarings at all. Tables are built through the group's acceleration kernel
// (src/group/accel.h): entries live in the kernel's table form (Montgomery
// residues / Niels points, batch-normalized with one inversion), and groups
// with cheap negation use signed digits, which halves the table while keeping
// the same window width.
//
// Shared(base) memoizes tables per generator behind a mutex so the committer,
// the verifier and the MSM fixed-base fast path all reuse one table per
// (group, generator) pair across threads.
#ifndef SRC_GROUP_FIXED_BASE_H_
#define SRC_GROUP_FIXED_BASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/group/accel.h"
#include "src/group/group.h"

namespace vdp {

template <PrimeOrderGroup G>
class FixedBaseTable {
 public:
  using Element = typename G::Element;
  using Scalar = typename G::Scalar;
  using Ac = AccelOf<G>;

  // Signed digits halve the table, so cheap-negate groups afford a wider
  // window; large moduli get a narrower one to keep tables in the low MBs.
  static size_t DefaultWindow() {
    if (Ac::kCheapNegate) {
      return 6;
    }
    return Scalar::Order().BitLength() > 512 ? 4 : 5;
  }

  explicit FixedBaseTable(const Element& base, size_t window = DefaultWindow())
      : width_(window < 2 ? 2 : (window > 8 ? 8 : window)) {
    const size_t bits = Scalar::Order().BitLength();
    const size_t base_windows = (bits + width_ - 1) / width_;
    // Signed recoding can carry one digit past the top window.
    windows_ = Ac::kCheapNegate ? base_windows + 1 : base_windows;
    per_row_ = Ac::kCheapNegate ? (size_t{1} << (width_ - 1))
                                : (size_t{1} << width_) - 1;

    // Build every row in accumulator form, then normalize the whole table to
    // the kernel's mixed-addition form with a single batch conversion.
    std::vector<typename Ac::P> pts;
    pts.reserve(windows_ * per_row_);
    typename Ac::P row_base = Ac::Lift(base);  // base^(2^(w*width))
    for (size_t w = 0; w < windows_; ++w) {
      typename Ac::P cur = row_base;
      pts.push_back(cur);
      for (size_t d = 2; d <= per_row_; ++d) {
        cur = Ac::Add(cur, row_base);
        pts.push_back(cur);
      }
      for (size_t s = 0; s < width_; ++s) {
        row_base = Ac::Dbl(row_base);
      }
    }
    Ac::Normalize(pts, &entries_);
  }

  size_t window() const { return width_; }

  // base^e in the kernel's accumulator form (for callers that keep working --
  // the MSM fixed-base fast path folds this straight into its running sum).
  typename Ac::P ExpAccum(const Scalar& e) const {
    const auto& v = e.value();
    const size_t bits = v.BitLength();
    typename Ac::P acc = Ac::Identity();
    if constexpr (Ac::kCheapNegate) {
      // Signed digits in [-2^(width-1), 2^(width-1)]: digits above half are
      // replaced by (digit - 2^width) with a carry into the next window, and
      // negative digits use the kernel's free negation.
      const int64_t full = int64_t{1} << width_;
      const int64_t half = full >> 1;
      int64_t carry = 0;
      for (size_t w = 0; w < windows_; ++w) {
        int64_t u = 0;
        for (size_t b = width_; b-- > 0;) {
          size_t bit = w * width_ + b;
          u = (u << 1) | ((bit < bits && v.Bit(bit)) ? 1 : 0);
        }
        int64_t d = u + carry;
        if (d > half) {
          d -= full;
          carry = 1;
        } else {
          carry = 0;
        }
        if (d > 0) {
          acc = Ac::AddA(acc, entry(w, static_cast<size_t>(d)));
        } else if (d < 0) {
          acc = Ac::AddA(acc, Ac::NegA(entry(w, static_cast<size_t>(-d))));
        }
      }
    } else {
      // Unsigned digits. Every window of the table is consulted up to the
      // scalar's own top bit; the table always covers the order's full bit
      // length, so scalars at exactly that length use the top row too.
      for (size_t w = 0; w < windows_; ++w) {
        if (w * width_ >= bits) {
          break;
        }
        size_t d = 0;
        for (size_t b = width_; b-- > 0;) {
          size_t bit = w * width_ + b;
          d = (d << 1) | ((bit < bits && v.Bit(bit)) ? 1u : 0u);
        }
        if (d != 0) {
          acc = Ac::AddA(acc, entry(w, d));
        }
      }
    }
    return acc;
  }

  // base^e using one table addition per nonzero window.
  Element Exp(const Scalar& e) const { return Ac::Lower(ExpAccum(e)); }

  // Per-generator shared table cache. Keyed by the generator's canonical
  // encoding; thread-safe; capped so adversarially many generators cannot
  // balloon the process (extra generators get uncached fresh tables).
  static std::shared_ptr<const FixedBaseTable> Shared(const Element& base) {
    static std::mutex mu;
    static std::map<Bytes, std::shared_ptr<const FixedBaseTable>>* cache =
        new std::map<Bytes, std::shared_ptr<const FixedBaseTable>>();
    Bytes key = G::Encode(base);
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = cache->find(key);
      if (it != cache->end()) {
        return it->second;
      }
    }
    auto table = std::make_shared<const FixedBaseTable>(base);
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);  // racing builder may have won; reuse theirs
    if (it != cache->end()) {
      return it->second;
    }
    if (cache->size() < 64) {
      cache->emplace(std::move(key), table);
    }
    return table;
  }

 private:
  // Digit d in [1, per_row_] of window w.
  const typename Ac::A& entry(size_t w, size_t d) const {
    return entries_[w * per_row_ + (d - 1)];
  }

  size_t width_;
  size_t windows_ = 0;
  size_t per_row_ = 0;
  std::vector<typename Ac::A> entries_;
};

}  // namespace vdp

#endif  // SRC_GROUP_FIXED_BASE_H_
