// Fixed-base exponentiation with a precomputed window table.
//
// Pedersen commitments exponentiate the same two generators millions of times
// per protocol run; a comb table turns each exponentiation into one group
// multiplication per 4-bit window of the exponent (no squarings). The table
// costs ~16 * ceil(bits/4) group elements and is built once per generator.
#ifndef SRC_GROUP_FIXED_BASE_H_
#define SRC_GROUP_FIXED_BASE_H_

#include <vector>

#include "src/group/group.h"

namespace vdp {

template <PrimeOrderGroup G>
class FixedBaseTable {
 public:
  using Element = typename G::Element;
  using Scalar = typename G::Scalar;

  explicit FixedBaseTable(const Element& base) {
    size_t bits = Scalar::Order().BitLength();
    size_t windows = (bits + 3) / 4;
    rows_.resize(windows);
    Element window_base = base;  // base^(16^w)
    for (size_t w = 0; w < windows; ++w) {
      auto& row = rows_[w];
      row.reserve(16);
      row.push_back(G::Identity());
      for (int i = 1; i < 16; ++i) {
        row.push_back(G::Mul(row.back(), window_base));
      }
      // Next row's base: base^(16^(w+1)) = (base^(16^w))^16.
      Element sq = G::Mul(window_base, window_base);   // ^2
      sq = G::Mul(sq, sq);                             // ^4
      sq = G::Mul(sq, sq);                             // ^8
      window_base = G::Mul(sq, sq);                    // ^16
    }
  }

  // base^e using one multiplication per nonzero window.
  Element Exp(const Scalar& e) const {
    const auto& v = e.value();
    Element acc = G::Identity();
    size_t bits = v.BitLength();
    size_t windows = std::min(rows_.size(), (bits + 3) / 4);
    for (size_t w = 0; w < windows; ++w) {
      uint32_t nib = 0;
      for (int b = 3; b >= 0; --b) {
        size_t bit = w * 4 + static_cast<size_t>(b);
        nib = (nib << 1) | ((bit < bits && v.Bit(bit)) ? 1u : 0u);
      }
      if (nib != 0) {
        acc = G::Mul(acc, rows_[w][nib]);
      }
    }
    return acc;
  }

 private:
  std::vector<std::vector<Element>> rows_;
};

}  // namespace vdp

#endif  // SRC_GROUP_FIXED_BASE_H_
