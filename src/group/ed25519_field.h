// Field arithmetic modulo 2^255 - 19 with 5 radix-51 limbs (portable).
//
// Backs the Edwards25519 group, the library's elliptic-curve instantiation of
// the commitment scheme (the paper benchmarks "Pedersen commitments over
// elliptic curves using the prime order Ristretto group"; see DESIGN.md for
// the cofactor-clearing substitution).
#ifndef SRC_GROUP_ED25519_FIELD_H_
#define SRC_GROUP_ED25519_FIELD_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/bytes.h"
#include "src/math/bigint.h"

namespace vdp {

class Fe25519 {
 public:
  static constexpr size_t kEncodedSize = 32;

  constexpr Fe25519() : v_{0, 0, 0, 0, 0} {}

  static Fe25519 Zero() { return Fe25519(); }
  static Fe25519 One() { return FromU64(1); }
  static Fe25519 FromU64(uint64_t x);

  static Fe25519 Add(const Fe25519& a, const Fe25519& b);
  static Fe25519 Sub(const Fe25519& a, const Fe25519& b);
  static Fe25519 Mul(const Fe25519& a, const Fe25519& b);
  static Fe25519 Square(const Fe25519& a) { return Mul(a, a); }
  static Fe25519 Neg(const Fe25519& a) { return Sub(Zero(), a); }

  // a^e for an arbitrary 256-bit exponent (square-and-multiply).
  static Fe25519 Pow(const Fe25519& a, const BigInt<4>& e);

  // Multiplicative inverse (a^(p-2)); Zero maps to Zero.
  Fe25519 Invert() const;

  // Square root if one exists (p = 5 mod 8 method). Returns nullopt for
  // non-residues. The returned root is the principal one; callers pick sign.
  std::optional<Fe25519> Sqrt() const;

  bool IsZero() const;
  // Sign convention of RFC 8032: "negative" iff the canonical encoding is odd.
  bool IsNegative() const;

  friend bool operator==(const Fe25519& a, const Fe25519& b);
  friend bool operator!=(const Fe25519& a, const Fe25519& b) { return !(a == b); }

  // Canonical little-endian 32-byte encoding (fully reduced).
  std::array<uint8_t, kEncodedSize> ToBytes() const;

  // Strict decode: rejects values >= p and wrong lengths. Bit 255 must be 0
  // (point codecs strip the sign bit before calling this).
  static std::optional<Fe25519> FromBytes(BytesView bytes);

  // Conversion to/from the generic big-integer type (for cross-validation).
  BigInt<4> ToBigInt() const;
  static Fe25519 FromBigInt(const BigInt<4>& v);  // value must be < p

  static const BigInt<4>& P();  // 2^255 - 19

 private:
  void CarryReduce();

  // Limbs in radix 2^51; loosely reduced (each < 2^52) between operations.
  uint64_t v_[5];
};

}  // namespace vdp

#endif  // SRC_GROUP_ED25519_FIELD_H_
