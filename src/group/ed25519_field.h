// Field arithmetic modulo 2^255 - 19 with 5 radix-51 limbs (portable).
//
// Backs the Edwards25519 group, the library's elliptic-curve instantiation of
// the commitment scheme (the paper benchmarks "Pedersen commitments over
// elliptic curves using the prime order Ristretto group"; see DESIGN.md for
// the cofactor-clearing substitution).
//
// The hot operations (Mul, Square, Add, Sub) are defined inline here so the
// point formulas in ed25519.cc compile into straight-line uint128 arithmetic
// instead of per-operation function calls; everything cold (codec, Pow, Sqrt)
// stays in ed25519_field.cc.
#ifndef SRC_GROUP_ED25519_FIELD_H_
#define SRC_GROUP_ED25519_FIELD_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/bytes.h"
#include "src/math/bigint.h"

namespace vdp {

class Fe25519 {
 public:
  static constexpr size_t kEncodedSize = 32;

  constexpr Fe25519() : v_{0, 0, 0, 0, 0} {}

  static Fe25519 Zero() { return Fe25519(); }
  static Fe25519 One() { return FromU64(1); }
  static Fe25519 FromU64(uint64_t x) {
    Fe25519 r;
    r.v_[0] = x & kMask51;
    r.v_[1] = x >> 51;
    return r;
  }

  static Fe25519 Add(const Fe25519& a, const Fe25519& b) {
    Fe25519 r;
    for (int i = 0; i < 5; ++i) {
      r.v_[i] = a.v_[i] + b.v_[i];
    }
    r.CarryReduce();
    return r;
  }

  static Fe25519 Sub(const Fe25519& a, const Fe25519& b) {
    Fe25519 r;
    r.v_[0] = a.v_[0] + kTwoP0 - b.v_[0];
    r.v_[1] = a.v_[1] + kTwoP1234 - b.v_[1];
    r.v_[2] = a.v_[2] + kTwoP1234 - b.v_[2];
    r.v_[3] = a.v_[3] + kTwoP1234 - b.v_[3];
    r.v_[4] = a.v_[4] + kTwoP1234 - b.v_[4];
    r.CarryReduce();
    return r;
  }

  static Fe25519 Mul(const Fe25519& a, const Fe25519& b) {
    using u128 = uint128_t;
    const uint64_t a0 = a.v_[0], a1 = a.v_[1], a2 = a.v_[2], a3 = a.v_[3], a4 = a.v_[4];
    const uint64_t b0 = b.v_[0], b1 = b.v_[1], b2 = b.v_[2], b3 = b.v_[3], b4 = b.v_[4];
    const uint64_t b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3, b4_19 = 19 * b4;

    u128 t0 = static_cast<u128>(a0) * b0 + static_cast<u128>(a1) * b4_19 +
              static_cast<u128>(a2) * b3_19 + static_cast<u128>(a3) * b2_19 +
              static_cast<u128>(a4) * b1_19;
    u128 t1 = static_cast<u128>(a0) * b1 + static_cast<u128>(a1) * b0 +
              static_cast<u128>(a2) * b4_19 + static_cast<u128>(a3) * b3_19 +
              static_cast<u128>(a4) * b2_19;
    u128 t2 = static_cast<u128>(a0) * b2 + static_cast<u128>(a1) * b1 +
              static_cast<u128>(a2) * b0 + static_cast<u128>(a3) * b4_19 +
              static_cast<u128>(a4) * b3_19;
    u128 t3 = static_cast<u128>(a0) * b3 + static_cast<u128>(a1) * b2 +
              static_cast<u128>(a2) * b1 + static_cast<u128>(a3) * b0 +
              static_cast<u128>(a4) * b4_19;
    u128 t4 = static_cast<u128>(a0) * b4 + static_cast<u128>(a1) * b3 +
              static_cast<u128>(a2) * b2 + static_cast<u128>(a3) * b1 +
              static_cast<u128>(a4) * b0;
    return FromWide(t0, t1, t2, t3, t4);
  }

  // Dedicated squaring: 15 uint128 products instead of Mul's 25 (the
  // off-diagonal terms are computed once and doubled). Exponentiation chains
  // -- scalar-mult doublings, Invert, Sqrt -- are mostly squarings.
  static Fe25519 Square(const Fe25519& a) {
    using u128 = uint128_t;
    const uint64_t a0 = a.v_[0], a1 = a.v_[1], a2 = a.v_[2], a3 = a.v_[3], a4 = a.v_[4];
    const uint64_t a0_2 = 2 * a0, a1_2 = 2 * a1, a2_2 = 2 * a2, a3_2 = 2 * a3;
    const uint64_t a3_19 = 19 * a3, a4_19 = 19 * a4;

    u128 t0 = static_cast<u128>(a0) * a0 + static_cast<u128>(a1_2) * a4_19 +
              static_cast<u128>(a2_2) * a3_19;
    u128 t1 = static_cast<u128>(a0_2) * a1 + static_cast<u128>(a2_2) * a4_19 +
              static_cast<u128>(a3) * a3_19;
    u128 t2 = static_cast<u128>(a0_2) * a2 + static_cast<u128>(a1) * a1 +
              static_cast<u128>(a3_2) * a4_19;
    u128 t3 = static_cast<u128>(a0_2) * a3 + static_cast<u128>(a1_2) * a2 +
              static_cast<u128>(a4) * a4_19;
    u128 t4 = static_cast<u128>(a0_2) * a4 + static_cast<u128>(a1_2) * a3 +
              static_cast<u128>(a2) * a2;
    return FromWide(t0, t1, t2, t3, t4);
  }

  static Fe25519 Neg(const Fe25519& a) { return Sub(Zero(), a); }

  // a^e for an arbitrary 256-bit exponent (square-and-multiply).
  static Fe25519 Pow(const Fe25519& a, const BigInt<4>& e);

  // Multiplicative inverse a^(p-2) via the standard curve25519 addition chain
  // (254 squarings + 11 multiplications); Zero maps to Zero.
  Fe25519 Invert() const;

  // Square root if one exists (p = 5 mod 8 method). Returns nullopt for
  // non-residues. The returned root is the principal one; callers pick sign.
  std::optional<Fe25519> Sqrt() const;

  bool IsZero() const;
  // Sign convention of RFC 8032: "negative" iff the canonical encoding is odd.
  bool IsNegative() const;

  friend bool operator==(const Fe25519& a, const Fe25519& b);
  friend bool operator!=(const Fe25519& a, const Fe25519& b) { return !(a == b); }

  // Canonical little-endian 32-byte encoding (fully reduced).
  std::array<uint8_t, kEncodedSize> ToBytes() const;

  // Strict decode: rejects values >= p and wrong lengths. Bit 255 must be 0
  // (point codecs strip the sign bit before calling this).
  static std::optional<Fe25519> FromBytes(BytesView bytes);

  // Conversion to/from the generic big-integer type (for cross-validation).
  BigInt<4> ToBigInt() const;
  static Fe25519 FromBigInt(const BigInt<4>& v);  // value must be < p

  static const BigInt<4>& P();  // 2^255 - 19

 private:
  static constexpr uint64_t kMask51 = (uint64_t{1} << 51) - 1;
  // 2p limb constants so Sub never underflows for loosely reduced inputs.
  static constexpr uint64_t kTwoP0 = 0xfffffffffffda;    // 2 * (2^51 - 19)
  static constexpr uint64_t kTwoP1234 = 0xffffffffffffe; // 2 * (2^51 - 1)

  // Carry-and-fold a product in 128-bit column accumulators back to 5 loosely
  // reduced radix-51 limbs.
  static Fe25519 FromWide(uint128_t t0, uint128_t t1, uint128_t t2, uint128_t t3,
                          uint128_t t4) {
    Fe25519 r;
    uint64_t c;
    r.v_[0] = static_cast<uint64_t>(t0) & kMask51;
    c = static_cast<uint64_t>(t0 >> 51);
    t1 += c;
    r.v_[1] = static_cast<uint64_t>(t1) & kMask51;
    c = static_cast<uint64_t>(t1 >> 51);
    t2 += c;
    r.v_[2] = static_cast<uint64_t>(t2) & kMask51;
    c = static_cast<uint64_t>(t2 >> 51);
    t3 += c;
    r.v_[3] = static_cast<uint64_t>(t3) & kMask51;
    c = static_cast<uint64_t>(t3 >> 51);
    t4 += c;
    r.v_[4] = static_cast<uint64_t>(t4) & kMask51;
    c = static_cast<uint64_t>(t4 >> 51);
    r.v_[0] += 19 * c;
    c = r.v_[0] >> 51;
    r.v_[0] &= kMask51;
    r.v_[1] += c;
    return r;
  }

  void CarryReduce() {
    // Two passes bring every limb below 2^51 + epsilon and keep value mod p.
    for (int pass = 0; pass < 2; ++pass) {
      uint64_t c;
      c = v_[0] >> 51;
      v_[0] &= kMask51;
      v_[1] += c;
      c = v_[1] >> 51;
      v_[1] &= kMask51;
      v_[2] += c;
      c = v_[2] >> 51;
      v_[2] &= kMask51;
      v_[3] += c;
      c = v_[3] >> 51;
      v_[3] &= kMask51;
      v_[4] += c;
      c = v_[4] >> 51;
      v_[4] &= kMask51;
      v_[0] += 19 * c;
    }
  }

  // Limbs in radix 2^51; loosely reduced (each < 2^52) between operations.
  uint64_t v_[5];
};

}  // namespace vdp

#endif  // SRC_GROUP_ED25519_FIELD_H_
