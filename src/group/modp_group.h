// Schnorr groups: the order-q subgroup of quadratic residues in Z_p* for a
// safe prime p = 2q + 1. This is the "Gq subset of Z_p* based on the finite
// field discrete log problem" instantiation the paper benchmarks.
//
// Elements are stored in plain (non-Montgomery) representation and always
// satisfy 1 <= e < p with e^q = 1. Decode() enforces subgroup membership, so
// adversarial wire input cannot smuggle in elements of order 2 or 2q.
#ifndef SRC_GROUP_MODP_GROUP_H_
#define SRC_GROUP_MODP_GROUP_H_

#include <string>
#include <vector>

#include "src/common/sha256.h"
#include "src/group/modp_params.h"
#include "src/group/scalar_field.h"

namespace vdp {

template <size_t L, const ModPParams<L>& (*Params)()>
class ModPGroup {
 public:
  static constexpr size_t kLimbs = L;
  static constexpr size_t kElementSize = BigInt<L>::kBytes;

  struct ScalarTag {
    static const BigInt<L>& Order() { return Params().q; }
  };
  using Scalar = ScalarField<L, ScalarTag>;

  class Element {
   public:
    Element() : v_(BigInt<L>::One()) {}  // identity

    const BigInt<L>& value() const { return v_; }

    friend bool operator==(const Element& a, const Element& b) { return a.v_ == b.v_; }
    friend bool operator!=(const Element& a, const Element& b) { return a.v_ != b.v_; }

   private:
    friend class ModPGroup;
    explicit Element(const BigInt<L>& v) : v_(v) {}
    BigInt<L> v_;
  };

  // Acceleration kernel (see src/group/accel.h): values held in Montgomery
  // form so the MulMont/SqrMont round-trips of the public Mul disappear from
  // table and MSM inner loops. "Affine" and accumulator forms coincide.
  struct Accel {
    using P = BigInt<L>;
    using A = BigInt<L>;
    static constexpr bool kCheapNegate = false;

    static P Identity() { return PCtx().r(); }  // 1 in Montgomery form
    static P Lift(const Element& e) { return PCtx().ToMont(e.v_); }
    static Element Lower(const P& p) { return Element(PCtx().FromMont(p)); }
    static A ToA(const P& p) { return p; }
    static void Normalize(const std::vector<P>& pts, std::vector<A>* out) {
      *out = pts;
    }
    static P Add(const P& a, const P& b) { return PCtx().MulMont(a, b); }
    static P AddA(const P& a, const A& b) { return PCtx().MulMont(a, b); }
    static P Dbl(const P& a) { return PCtx().SqrMont(a); }
    static A NegA(const A& a) {
      return PCtx().ToMont(PCtx().Inverse(PCtx().FromMont(a)));
    }
  };

  static std::string Name() { return "modp-" + std::to_string(L * 64); }

  static Element Identity() { return Element(); }

  static Element Generator() { return Element(Mod(BigInt<L>::FromU64(Params().g), Params().p)); }

  // Group operation (modular multiplication).
  static Element Mul(const Element& a, const Element& b) {
    return Element(PCtx().MulMod(a.v_, b.v_));
  }

  // Exponentiation by a scalar in Z_q.
  static Element Exp(const Element& base, const Scalar& e) {
    return Element(PCtx().ExpMod(base.v_, e.value()));
  }

  static Element Inverse(const Element& a) { return Element(PCtx().Inverse(a.v_)); }

  // g^e for the fixed generator.
  static Element ExpG(const Scalar& e) { return Exp(Generator(), e); }

  static Bytes Encode(const Element& e) { return e.v_.ToBytesBe(); }

  // Strict decode: correct width, in range (0, p), and in the order-q subgroup.
  static std::optional<Element> Decode(BytesView bytes) {
    if (bytes.size() != kElementSize) {
      return std::nullopt;
    }
    auto v = BigInt<L>::FromBytesBe(bytes);
    if (!v.has_value() || v->IsZero() || *v >= Params().p) {
      return std::nullopt;
    }
    Element e(*v);
    if (!InSubgroup(e)) {
      return std::nullopt;
    }
    return e;
  }

  // Membership test: e^q == 1 (q is the subgroup order).
  static bool InSubgroup(const Element& e) {
    return PCtx().template ExpMod<L>(e.v_, Params().q) == BigInt<L>::One();
  }

  // Derives an element of the subgroup from a domain-separated hash by
  // squaring a pseudorandom field element (every square is a QR; the QR group
  // has prime order q so every non-identity element generates it).
  static Element HashToGroup(BytesView domain, BytesView msg) {
    for (uint64_t counter = 0;; ++counter) {
      Sha256 h;
      h.Update(StrView("vdp/modp-hash-to-group"));
      uint8_t dlen = static_cast<uint8_t>(domain.size());
      h.Update(BytesView(&dlen, 1));
      h.Update(domain);
      h.Update(msg);
      uint8_t ctr[8];
      for (int i = 0; i < 8; ++i) {
        ctr[i] = static_cast<uint8_t>(counter >> (8 * i));
      }
      h.Update(BytesView(ctr, 8));
      // Expand the 32-byte digest to L limbs of pseudorandom data.
      Bytes wide;
      Sha256::Digest block = h.Finalize();
      while (wide.size() < kElementSize) {
        wide.insert(wide.end(), block.begin(), block.end());
        block = Sha256::Hash(BytesView(block.data(), block.size()));
      }
      wide.resize(kElementSize);
      auto u = BigInt<L>::FromBytesBe(wide);
      BigInt<L> reduced = Mod(*u, Params().p);
      BigInt<L> squared = PCtx().MulMod(reduced, reduced);
      if (!squared.IsZero() && squared != BigInt<L>::One()) {
        return Element(squared);
      }
    }
  }

 private:
  static const MontgomeryCtx<L>& PCtx() {
    static const MontgomeryCtx<L> ctx(Params().p);
    return ctx;
  }
};

// Parameter sets. ModP64 exists solely for memory/throughput soak runs that
// need millions of cheap-but-real proofs (tools/stream_soak) and ModP256 is
// for fast tests only -- neither has any security margin; ModP2048 matches
// contemporary guidance for finite-field DLOG.
using ModP64 = ModPGroup<1, ModP64Params>;
using ModP256 = ModPGroup<4, ModP256Params>;
using ModP512 = ModPGroup<8, ModP512Params>;
using ModP1024 = ModPGroup<16, ModP1024Params>;
using ModP2048 = ModPGroup<32, ModP2048Params>;

}  // namespace vdp

#endif  // SRC_GROUP_MODP_GROUP_H_
