// Prime-field scalars Z_q shared by every group backend.
//
// ScalarField<L, Tag> wraps a BigInt<L> that is always fully reduced modulo
// Tag::Order(). All arithmetic routes through a per-field Montgomery context.
// Scalars are the exponents of the Schnorr groups and the scalars of the
// Edwards curve; they are also the message/randomness space of the Pedersen
// commitment scheme (Mpp = Rpp = Z_q in the paper's notation).
#ifndef SRC_GROUP_SCALAR_FIELD_H_
#define SRC_GROUP_SCALAR_FIELD_H_

#include <optional>

#include "src/common/rng.h"
#include "src/math/montgomery.h"
#include "src/math/primality.h"

namespace vdp {

template <size_t L, typename Tag>
class ScalarField {
 public:
  using Int = BigInt<L>;
  static constexpr size_t kEncodedSize = Int::kBytes;

  constexpr ScalarField() = default;

  static ScalarField Zero() { return ScalarField(); }
  static ScalarField One() { return FromU64(1); }

  static ScalarField FromU64(uint64_t v) {
    ScalarField s;
    s.v_ = Mod(Int::FromU64(v), Order());
    return s;
  }

  // Reduces an arbitrary L-limb integer into the field.
  static ScalarField FromInt(const Int& v) {
    ScalarField s;
    s.v_ = Mod(v, Order());
    return s;
  }

  // Uniform scalar via rejection sampling.
  static ScalarField Random(SecureRng& rng) {
    ScalarField s;
    s.v_ = RandomBelow(Order(), rng);
    return s;
  }

  // Interprets up to 2L limbs of big-endian bytes as an integer and reduces
  // mod q. Used to map hash outputs (Fiat-Shamir challenges) into the field.
  static ScalarField FromBytesWide(BytesView bytes) {
    auto wide = BigInt<2 * L>::FromBytesBe(bytes);
    ScalarField s;
    if (wide.has_value()) {
      s.v_ = Mod(*wide, Order());
    }
    return s;
  }

  static const Int& Order() { return Tag::Order(); }

  const Int& value() const { return v_; }
  bool IsZero() const { return v_.IsZero(); }

  // The counting-query results are small; expose them as machine integers.
  // Returns nullopt if the value does not fit in 64 bits.
  std::optional<uint64_t> ToU64() const {
    for (size_t i = 1; i < L; ++i) {
      if (v_.limb[i] != 0) {
        return std::nullopt;
      }
    }
    return v_.limb[0];
  }

  friend ScalarField operator+(const ScalarField& a, const ScalarField& b) {
    ScalarField r;
    r.v_ = AddMod(a.v_, b.v_, Order());
    return r;
  }

  friend ScalarField operator-(const ScalarField& a, const ScalarField& b) {
    ScalarField r;
    r.v_ = SubMod(a.v_, b.v_, Order());
    return r;
  }

  ScalarField operator-() const {
    ScalarField r;
    r.v_ = SubMod(Int::Zero(), v_, Order());
    return r;
  }

  friend ScalarField operator*(const ScalarField& a, const ScalarField& b) {
    ScalarField r;
    r.v_ = Ctx().MulMod(a.v_, b.v_);
    return r;
  }

  ScalarField& operator+=(const ScalarField& o) { return *this = *this + o; }
  ScalarField& operator-=(const ScalarField& o) { return *this = *this - o; }
  ScalarField& operator*=(const ScalarField& o) { return *this = *this * o; }

  // Multiplicative inverse; requires a nonzero scalar (q is prime).
  ScalarField Inverse() const {
    ScalarField r;
    r.v_ = Ctx().Inverse(v_);
    return r;
  }

  friend bool operator==(const ScalarField& a, const ScalarField& b) { return a.v_ == b.v_; }
  friend bool operator!=(const ScalarField& a, const ScalarField& b) { return a.v_ != b.v_; }

  Bytes Encode() const { return v_.ToBytesBe(); }

  // Strict decoding: fixed width and fully reduced.
  static std::optional<ScalarField> Decode(BytesView bytes) {
    if (bytes.size() != kEncodedSize) {
      return std::nullopt;
    }
    auto v = Int::FromBytesBe(bytes);
    if (!v.has_value() || *v >= Order()) {
      return std::nullopt;
    }
    ScalarField s;
    s.v_ = *v;
    return s;
  }

 private:
  static const MontgomeryCtx<L>& Ctx() {
    static const MontgomeryCtx<L> ctx(Order());
    return ctx;
  }

  Int v_{};
};

}  // namespace vdp

#endif  // SRC_GROUP_SCALAR_FIELD_H_
