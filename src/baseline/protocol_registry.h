// The protocol-property matrix of Table 2: which MPC-DP systems provide
// active security, central-model DP error, public auditability, and zero
// leakage. bench_table2_matrix prints it next to the empirical error
// comparison that backs the Central DP column.
#ifndef SRC_BASELINE_PROTOCOL_REGISTRY_H_
#define SRC_BASELINE_PROTOCOL_REGISTRY_H_

#include <string>
#include <vector>

namespace vdp {

struct ProtocolProperties {
  std::string name;
  std::string citation;
  bool active_security;  // tolerates arbitrarily deviating participants
  bool central_dp;       // O(1/eps) error independent of client count
  bool auditable;        // output correctness publicly verifiable
  bool zero_leakage;     // nothing beyond the DP output is revealed
};

// Rows of Table 2, in the paper's order.
const std::vector<ProtocolProperties>& Table2Registry();

// Renders the registry as an aligned text table (the bench prints this).
std::string RenderTable2();

}  // namespace vdp

#endif  // SRC_BASELINE_PROTOCOL_REGISTRY_H_
