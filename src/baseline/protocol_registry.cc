#include "src/baseline/protocol_registry.h"

#include <sstream>

namespace vdp {

const std::vector<ProtocolProperties>& Table2Registry() {
  static const std::vector<ProtocolProperties> registry = {
      {"Cryptographic RR", "AJL04", true, false, true, false},
      {"Verifiable Randomization Mechanism", "KCY21", true, false, true, true},
      {"Securely Sampling Biased Coins", "CSU19", true, true, false, false},
      {"MPC-DP heavy hitters", "BK21", false, true, false, true},
      {"PRIO", "CGB17", false, true, false, true},
      {"Brave STAR", "DSQ+21", false, false, false, false},
      {"Sparse Histograms", "BBG+20", false, true, false, false},
      {"Crypt-eps", "RCWH+20", false, true, false, false},
      {"Poplar", "BBCG+22", true, true, false, false},
      {"This work (Pi_Bin)", "paper", true, true, true, true},
  };
  return registry;
}

std::string RenderTable2() {
  std::ostringstream out;
  auto mark = [](bool b) { return b ? "  yes   " : "   -    "; };
  out << "Protocol                                 | Active | Central |  Audit | ZeroLk |\n";
  out << "-----------------------------------------+--------+---------+--------+--------+\n";
  for (const auto& p : Table2Registry()) {
    std::string name = p.name + " [" + p.citation + "]";
    name.resize(41, ' ');
    out << name << "|" << mark(p.active_security) << "|" << mark(p.central_dp) << " |"
        << mark(p.auditable) << "|" << mark(p.zero_leakage) << "|\n";
  }
  return out.str();
}

}  // namespace vdp
