// The non-verifiable trusted curator the paper's Section 6 compares against:
// "simply summing over n inputs, sampling one draw of Binomial noise and
// aggregating the results". No commitments, no proofs -- and no way for an
// analyst to tell faithful noise from adversarial bias.
#ifndef SRC_BASELINE_NONVERIFIABLE_CURATOR_H_
#define SRC_BASELINE_NONVERIFIABLE_CURATOR_H_

#include <cstdint>
#include <vector>

#include "src/dp/binomial.h"

namespace vdp {

struct NonVerifiableResult {
  uint64_t raw = 0;       // count + Binomial(nb, 1/2)
  double debiased = 0;    // raw - nb/2
};

class NonVerifiableCurator {
 public:
  NonVerifiableCurator(double epsilon, double delta) : mech_(epsilon, delta) {}

  NonVerifiableResult Release(const std::vector<uint32_t>& bits, SecureRng& rng) const {
    uint64_t count = 0;
    for (uint32_t b : bits) {
      count += b;
    }
    NonVerifiableResult result;
    result.raw = mech_.Apply(count, rng);
    result.debiased = mech_.Debias(result.raw);
    return result;
  }

  // The attack the paper opens with: release an arbitrary value and call it
  // noise. Indistinguishable from an honest release to any analyst.
  NonVerifiableResult ReleaseBiased(const std::vector<uint32_t>& bits, int64_t bias,
                                    SecureRng& rng) const {
    NonVerifiableResult result = Release(bits, rng);
    result.raw = static_cast<uint64_t>(static_cast<int64_t>(result.raw) + bias);
    result.debiased = mech_.Debias(result.raw);
    return result;
  }

  const BinomialMechanism& mechanism() const { return mech_; }

 private:
  BinomialMechanism mech_;
};

}  // namespace vdp

#endif  // SRC_BASELINE_NONVERIFIABLE_CURATOR_H_
