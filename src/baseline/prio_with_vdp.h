// Retrofitting verifiable DP noise onto a PRIO/Poplar-style pipeline
// (paper contribution 3: "Pi_Bin ... can be combined with existing
// (non-verifiable) DP-MPC protocols, such as PRIO and Poplar, to enforce
// verifiability").
//
// A PRIO deployment keeps its cheap sketch-based client validation and its
// plain additive aggregation; each server then runs the *coin pipeline* of
// Pi_Bin on top: it commits to its claimed aggregate share X_k, commits to
// nb private bits with Sigma-OR proofs, derives public bits with Morra, and
// publishes (y_k, z_k) = (X_k + sum v_hat, R_k +/- sum s). The verifier
// checks Com(X_k, R_k) * prod c-hat' == Com(y_k, z_k).
//
// What this buys: the DP randomness is certified faithful *relative to the
// committed aggregate* -- a server can no longer bias the statistic and
// blame the noise. What it deliberately does NOT buy (and the tests pin
// down): binding X_k to the real client inputs. Without per-client
// commitments, a server can commit to a falsified aggregate. Full Pi_Bin
// closes that with the Line 2-3 client machinery; this retrofit is the
// intermediate point in the design space.
#ifndef SRC_BASELINE_PRIO_WITH_VDP_H_
#define SRC_BASELINE_PRIO_WITH_VDP_H_

#include <vector>

#include "src/commit/pedersen.h"
#include "src/morra/morra.h"
#include "src/sigma/or_proof.h"

namespace vdp {

template <PrimeOrderGroup G>
struct RetrofitProof {
  typename G::Element aggregate_commitment;           // Com(X_k, R_k)
  std::vector<typename G::Element> coin_commitments;  // [nb]
  std::vector<OrProof<G>> coin_proofs;                // [nb]
  std::vector<bool> public_bits;                      // [nb] (from Morra)
  typename G::Scalar y;                               // X_k + noise
  typename G::Scalar z;                               // opening of the product
};

// Server side: given the (plaintext) aggregate share X_k from the PRIO
// pipeline, produce the noisy output plus the verifiability evidence.
// `public_bits` must come from a joint Morra run with the verifier.
template <PrimeOrderGroup G>
RetrofitProof<G> RetrofitNoise(const typename G::Scalar& aggregate_share, size_t num_coins,
                               const std::vector<bool>& public_bits, const Pedersen<G>& ped,
                               SecureRng& rng, const std::string& context,
                               ThreadPool* pool = nullptr) {
  using S = typename G::Scalar;
  RetrofitProof<G> proof;
  proof.public_bits = public_bits;

  S big_r = S::Random(rng);
  proof.aggregate_commitment = ped.Commit(aggregate_share, big_r);

  std::vector<int> bits(num_coins);
  std::vector<S> coin_rand(num_coins);
  proof.coin_commitments.resize(num_coins);
  for (size_t j = 0; j < num_coins; ++j) {
    bits[j] = rng.NextBit() ? 1 : 0;
    coin_rand[j] = S::Random(rng);
    proof.coin_commitments[j] = ped.Commit(S::FromU64(bits[j]), coin_rand[j]);
  }
  proof.coin_proofs =
      OrProveBatch(ped, proof.coin_commitments, bits, coin_rand, rng, context, pool);

  S y = aggregate_share;
  S z = big_r;
  for (size_t j = 0; j < num_coins; ++j) {
    int v_hat = public_bits[j] ? 1 - bits[j] : bits[j];
    y += S::FromU64(static_cast<uint64_t>(v_hat));
    if (public_bits[j]) {
      z -= coin_rand[j];
    } else {
      z += coin_rand[j];
    }
  }
  proof.y = y;
  proof.z = z;
  return proof;
}

// Verifier side: checks that the published y is the committed aggregate plus
// faithfully generated Binomial noise.
template <PrimeOrderGroup G>
bool RetrofitVerify(const RetrofitProof<G>& proof, const Pedersen<G>& ped,
                    const std::string& context, ThreadPool* pool = nullptr) {
  using S = typename G::Scalar;
  const size_t nb = proof.coin_commitments.size();
  if (proof.coin_proofs.size() != nb || proof.public_bits.size() != nb) {
    return false;
  }
  if (!OrVerifyBatch(ped, proof.coin_commitments, proof.coin_proofs, context, pool)) {
    return false;
  }
  auto lhs = proof.aggregate_commitment;
  for (size_t j = 0; j < nb; ++j) {
    auto updated = proof.public_bits[j]
                       ? G::Mul(ped.Commit(S::One(), S::Zero()),
                                G::Inverse(proof.coin_commitments[j]))
                       : proof.coin_commitments[j];
    lhs = G::Mul(lhs, updated);
  }
  return lhs == ped.Commit(proof.y, proof.z);
}

}  // namespace vdp

#endif  // SRC_BASELINE_PRIO_WITH_VDP_H_
