// PRIO/Poplar-style lightweight client validation (the baseline of Figure 4
// and the victim of the Figure 1 attacks).
//
// Clients secret-share a claimed one-hot vector x in Z_q^M plus a Beaver pair
// (a, a^2). After inputs are fixed, servers sample a public random vector r
// and check, over shares only,
//   (1) <1, x> = 1                         (sum-to-one, linear)
//   (2) <r, x>^2 - <r*r, x> = 0            (one-hot quadratic sketch)
// using the client-supplied pair to square the shared value. The checks are
// information-theoretic, need no public-key operations, and cost O(M) field
// multiplications -- which is exactly why PRIO/Poplar are fast. The price:
// the opened values are sums of per-server broadcasts, so a single malicious
// server can shift them (excluding an honest client) or cancel a colluding
// client's deviation (admitting an illegal input), and the honest servers
// cannot attribute the cheat. ΠBin closes both holes at the cost measured in
// bench_fig4_client_verification.
#ifndef SRC_BASELINE_PRIO_SKETCH_H_
#define SRC_BASELINE_PRIO_SKETCH_H_

#include <vector>

#include "src/group/group.h"
#include "src/share/additive.h"

namespace vdp {

template <GroupScalar S>
struct SketchSubmission {
  std::vector<std::vector<S>> x_shares;  // [K][M]
  std::vector<S> a_shares;               // [K], shares of blind a
  std::vector<S> c_shares;               // [K], shares of c = a^2
};

// Honest client: one-hot vector with 1 in `choice`.
template <GroupScalar S>
SketchSubmission<S> MakeSketchSubmission(uint32_t choice, size_t num_servers, size_t dims,
                                         SecureRng& rng) {
  std::vector<S> x(dims, S::Zero());
  x[choice] = S::One();
  SketchSubmission<S> sub;
  sub.x_shares.resize(num_servers);
  for (size_t m = 0; m < dims; ++m) {
    auto shares = ShareAdditive(x[m], num_servers, rng);
    for (size_t k = 0; k < num_servers; ++k) {
      sub.x_shares[k].push_back(shares[k]);
    }
  }
  S a = S::Random(rng);
  sub.a_shares = ShareAdditive(a, num_servers, rng);
  sub.c_shares = ShareAdditive(a * a, num_servers, rng);
  return sub;
}

// Malicious client: arbitrary vector (e.g. two votes, or weight 5).
template <GroupScalar S>
SketchSubmission<S> MakeRawSketchSubmission(const std::vector<uint64_t>& x_raw,
                                            size_t num_servers, SecureRng& rng) {
  SketchSubmission<S> sub;
  sub.x_shares.resize(num_servers);
  for (uint64_t v : x_raw) {
    auto shares = ShareAdditive(S::FromU64(v), num_servers, rng);
    for (size_t k = 0; k < num_servers; ++k) {
      sub.x_shares[k].push_back(shares[k]);
    }
  }
  S a = S::Random(rng);
  sub.a_shares = ShareAdditive(a, num_servers, rng);
  sub.c_shares = ShareAdditive(a * a, num_servers, rng);
  return sub;
}

// Per-server broadcast in the validation round. The opened values are the
// coordinate-wise sums over servers; nobody can tell *which* party made an
// opened value nonzero.
template <GroupScalar S>
struct SketchBroadcast {
  S sum_share;   // share of <1, x> - 1
  S d_share;     // share of z - a  (z = <r, x>)
  S quad_share;  // share of z^2 - z* (completed after d is public)
};

struct SketchOutcome {
  bool accepted = false;
  // The two opened test values (zero for honest runs). These are the entire
  // public "evidence" -- note they carry no attribution.
  bool sum_zero = false;
  bool quad_zero = false;
};

// Additive deltas a (corrupted) server applies to its own broadcasts -- the
// hook the Figure 1 attacks use.
template <GroupScalar S>
struct SketchTamper {
  S sum_delta;
  S quad_delta;
};

// Runs the validation among the servers; `tamper` (optional, per-server) is
// added to each server's broadcasts. r must have the submission's dimension.
template <GroupScalar S>
SketchOutcome RunSketchValidation(const SketchSubmission<S>& sub, const std::vector<S>& r,
                                  const std::vector<SketchTamper<S>>* tamper = nullptr) {
  const size_t num_servers = sub.x_shares.size();
  const size_t dims = r.size();

  // Stage 1: local linear functionals + opening of d = z - a.
  std::vector<S> z_shares(num_servers, S::Zero());
  std::vector<S> zstar_shares(num_servers, S::Zero());
  std::vector<SketchBroadcast<S>> broadcasts(num_servers);
  for (size_t k = 0; k < num_servers; ++k) {
    S sum = S::Zero();
    for (size_t m = 0; m < dims; ++m) {
      const S& xm = sub.x_shares[k][m];
      sum += xm;
      z_shares[k] += r[m] * xm;
      zstar_shares[k] += r[m] * r[m] * xm;
    }
    broadcasts[k].sum_share = (k == 0) ? sum - S::One() : sum;
    if (tamper != nullptr) {
      broadcasts[k].sum_share += (*tamper)[k].sum_delta;
    }
    broadcasts[k].d_share = z_shares[k] - sub.a_shares[k];
  }
  S d = S::Zero();
  for (size_t k = 0; k < num_servers; ++k) {
    d += broadcasts[k].d_share;
  }

  // Stage 2: Beaver completion of z^2 = d^2 + 2*d*a + c, minus z*.
  for (size_t k = 0; k < num_servers; ++k) {
    S z2_share = d * sub.a_shares[k] + d * sub.a_shares[k] + sub.c_shares[k];
    if (k == 0) {
      z2_share += d * d;
    }
    broadcasts[k].quad_share = z2_share - zstar_shares[k];
    if (tamper != nullptr) {
      broadcasts[k].quad_share += (*tamper)[k].quad_delta;
    }
  }

  S sum_total = S::Zero();
  S quad_total = S::Zero();
  for (size_t k = 0; k < num_servers; ++k) {
    sum_total += broadcasts[k].sum_share;
    quad_total += broadcasts[k].quad_share;
  }

  SketchOutcome outcome;
  outcome.sum_zero = sum_total.IsZero();
  outcome.quad_zero = quad_total.IsZero();
  outcome.accepted = outcome.sum_zero && outcome.quad_zero;
  return outcome;
}

// What a colluding client can hand a corrupted server in the Figure 1b
// attack: the exact values the two opened tests *would* take, so the server
// can cancel them. The client can compute both because it knows x, a, c and
// r is public by then.
template <GroupScalar S>
struct SketchDeviation {
  S sum_deviation;   // <1, x> - 1
  S quad_deviation;  // z^2 - z*
};

template <GroupScalar S>
SketchDeviation<S> ComputeSketchDeviation(const SketchSubmission<S>& sub,
                                          const std::vector<S>& r) {
  const size_t num_servers = sub.x_shares.size();
  const size_t dims = r.size();
  // Reconstruct the plaintext vector (the client knows it).
  S sum = S::Zero();
  S z = S::Zero();
  S zstar = S::Zero();
  for (size_t m = 0; m < dims; ++m) {
    S xm = S::Zero();
    for (size_t k = 0; k < num_servers; ++k) {
      xm += sub.x_shares[k][m];
    }
    sum += xm;
    z += r[m] * xm;
    zstar += r[m] * r[m] * xm;
  }
  SketchDeviation<S> dev;
  dev.sum_deviation = sum - S::One();
  dev.quad_deviation = z * z - zstar;
  return dev;
}

}  // namespace vdp

#endif  // SRC_BASELINE_PRIO_SKETCH_H_
