// The two Figure 1 attacks, executable: both succeed undetected against the
// sketch baseline and are prevented/detected by Pi_Bin (see
// tests/baseline/attacks_test.cc for the side-by-side).
#ifndef SRC_BASELINE_ATTACKS_H_
#define SRC_BASELINE_ATTACKS_H_

#include <string>

#include "src/baseline/prio_sketch.h"

namespace vdp {

struct AttackReport {
  bool client_accepted = false;   // did validation pass?
  bool attributable = false;      // can honest parties name the cheater?
  std::string narrative;
};

// Figure 1a: a corrupted server excludes an honest client by shifting its
// own quad broadcast. Validation fails, the honest client is dropped, and
// the transcript is indistinguishable from a genuinely cheating client.
template <GroupScalar S>
AttackReport RunSketchExclusionAttack(size_t num_servers, size_t dims, size_t corrupt_server,
                                      SecureRng& rng) {
  auto submission = MakeSketchSubmission<S>(/*choice=*/0, num_servers, dims, rng);
  std::vector<S> r;
  for (size_t m = 0; m < dims; ++m) {
    r.push_back(S::Random(rng));
  }
  std::vector<SketchTamper<S>> tamper(num_servers, SketchTamper<S>{S::Zero(), S::Zero()});
  tamper[corrupt_server].quad_delta = S::FromU64(1);  // any nonzero shift
  auto outcome = RunSketchValidation(submission, r, &tamper);

  AttackReport report;
  report.client_accepted = outcome.accepted;
  // The opened test values are sums of anonymous broadcasts; nothing in the
  // transcript singles out the corrupted server.
  report.attributable = false;
  report.narrative = outcome.accepted
                         ? "exclusion attack failed (client still accepted)"
                         : "honest client rejected; cheater unidentifiable in transcript";
  return report;
}

// Figure 1b: a client submits an out-of-language input and leaks its blinds
// to one corrupted server, which cancels the deviation from its own
// broadcasts. Validation passes and the illegal input enters the aggregate.
template <GroupScalar S>
AttackReport RunSketchInclusionAttack(const std::vector<uint64_t>& illegal_input,
                                      size_t num_servers, size_t corrupt_server,
                                      SecureRng& rng) {
  auto submission = MakeRawSketchSubmission<S>(illegal_input, num_servers, rng);
  std::vector<S> r;
  for (size_t m = 0; m < illegal_input.size(); ++m) {
    r.push_back(S::Random(rng));
  }
  // The colluding client computes exactly what the opened checks would show
  // (it knows x and r is public) and hands the corrections to the server.
  auto deviation = ComputeSketchDeviation(submission, r);
  std::vector<SketchTamper<S>> tamper(num_servers, SketchTamper<S>{S::Zero(), S::Zero()});
  tamper[corrupt_server].sum_delta = -deviation.sum_deviation;
  tamper[corrupt_server].quad_delta = -deviation.quad_deviation;
  auto outcome = RunSketchValidation(submission, r, &tamper);

  AttackReport report;
  report.client_accepted = outcome.accepted;
  report.attributable = false;
  report.narrative = outcome.accepted
                         ? "illegal input accepted; honest servers saw all checks pass"
                         : "inclusion attack failed";
  return report;
}

}  // namespace vdp

#endif  // SRC_BASELINE_ATTACKS_H_
