// Batch inversion (Montgomery's trick): n field inversions for the price of
// one inversion plus 3(n-1) multiplications.
//
// This is what lets the group layer normalize whole tables and MSM inputs to
// affine coordinates: a Pippenger bucket pass or a fixed-base comb row wants
// every point with Z = 1 (cheap mixed additions), and converting n points
// naively costs n full inversions -- each a ~254-squaring exponentiation.
// With the product tree the whole set costs one.
//
// The functions are generic over a minimal "field" adapter so the same code
// serves BigInt-modulo-p (MontgomeryCtx) and the radix-51 curve field
// (Fe25519). Adapter requirements:
//   using T = ...;            // element type
//   T One() const;
//   T Mul(const T&, const T&) const;
//   T Inv(const T&) const;    // multiplicative inverse of a nonzero element
//   bool IsZero(const T&) const;
#ifndef SRC_MATH_BATCH_INVERSE_H_
#define SRC_MATH_BATCH_INVERSE_H_

#include <cstddef>
#include <vector>

#include "src/group/ed25519_field.h"
#include "src/math/montgomery.h"

namespace vdp {

// Inverts every element of xs in place. Zero elements are left as zero (the
// convention of Fe25519::Invert, and what coordinate normalization wants: the
// identity point's T coordinate is zero and must stay zero). Returns the
// number of elements actually inverted.
template <typename Field>
size_t BatchInverse(const Field& f, std::vector<typename Field::T>* xs) {
  using T = typename Field::T;
  const size_t n = xs->size();
  // prefix[k] = product of the first k+1 nonzero elements.
  std::vector<T> prefix;
  prefix.reserve(n);
  T running = f.One();
  size_t nonzero = 0;
  for (size_t i = 0; i < n; ++i) {
    if (f.IsZero((*xs)[i])) {
      continue;
    }
    running = f.Mul(running, (*xs)[i]);
    prefix.push_back(running);
    ++nonzero;
  }
  if (nonzero == 0) {
    return 0;
  }
  T inv = f.Inv(prefix.back());
  // Walk backwards: inv holds the inverse of the product of all remaining
  // nonzero elements; peel one off per step.
  size_t k = nonzero;
  for (size_t i = n; i-- > 0;) {
    if (f.IsZero((*xs)[i])) {
      continue;
    }
    --k;
    T x = (*xs)[i];
    (*xs)[i] = (k == 0) ? inv : f.Mul(inv, prefix[k - 1]);
    inv = f.Mul(inv, x);
  }
  return nonzero;
}

// Strict variant: refuses sets containing zero (returns false, xs untouched).
template <typename Field>
bool BatchInverseStrict(const Field& f, std::vector<typename Field::T>* xs) {
  for (const auto& x : *xs) {
    if (f.IsZero(x)) {
      return false;
    }
  }
  BatchInverse(f, xs);
  return true;
}

// Adapter for BigInt arithmetic modulo a prime via a MontgomeryCtx. Values
// are in plain (non-Montgomery) representation.
template <size_t L>
struct ModField {
  using T = BigInt<L>;
  const MontgomeryCtx<L>* ctx;

  explicit ModField(const MontgomeryCtx<L>& c) : ctx(&c) {}
  T One() const { return BigInt<L>::One(); }
  T Mul(const T& a, const T& b) const { return ctx->MulMod(a, b); }
  T Inv(const T& a) const { return ctx->Inverse(a); }
  bool IsZero(const T& a) const { return a.IsZero(); }
};

// Adapter for the curve25519 base field.
struct Fe25519Field {
  using T = Fe25519;
  T One() const { return Fe25519::One(); }
  T Mul(const T& a, const T& b) const { return Fe25519::Mul(a, b); }
  T Inv(const T& a) const { return a.Invert(); }
  bool IsZero(const T& a) const { return a.IsZero(); }
};

}  // namespace vdp

#endif  // SRC_MATH_BATCH_INVERSE_H_
