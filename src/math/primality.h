// Miller-Rabin primality testing and safe-prime generation.
//
// Used by tools/gen_params to produce the Schnorr-group moduli and by tests to
// revalidate the hard-coded parameters.
#ifndef SRC_MATH_PRIMALITY_H_
#define SRC_MATH_PRIMALITY_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/math/montgomery.h"

namespace vdp {

namespace internal {

// Primes below 8000 for candidate sieving.
inline const std::vector<uint32_t>& SmallPrimes() {
  static const std::vector<uint32_t> primes = [] {
    std::vector<uint32_t> out;
    std::vector<bool> sieve(8000, true);
    for (uint32_t i = 2; i < sieve.size(); ++i) {
      if (sieve[i]) {
        out.push_back(i);
        for (uint32_t j = 2 * i; j < sieve.size(); j += i) {
          sieve[j] = false;
        }
      }
    }
    return out;
  }();
  return primes;
}

template <size_t L>
uint64_t ModSmall(const BigInt<L>& n, uint64_t d) {
  uint128_t rem = 0;
  for (size_t i = L; i-- > 0;) {
    rem = ((rem << 64) | n.limb[i]) % d;
  }
  return static_cast<uint64_t>(rem);
}

}  // namespace internal

// Uniform BigInt in [0, bound) by rejection sampling.
template <size_t L>
BigInt<L> RandomBelow(const BigInt<L>& bound, SecureRng& rng) {
  size_t bits = bound.BitLength();
  size_t bytes = (bits + 7) / 8;
  uint8_t mask = static_cast<uint8_t>(0xff >> (8 * bytes - bits));
  for (;;) {
    Bytes raw = rng.RandomBytes(bytes);
    raw[0] &= mask;
    auto candidate = BigInt<L>::FromBytesBe(raw);
    if (candidate.has_value() && *candidate < bound) {
      return *candidate;
    }
  }
}

// Miller-Rabin with `rounds` random bases. Error probability <= 4^-rounds for
// composite n. n must be odd and > 3 (small cases are handled directly).
template <size_t L>
bool IsProbablePrime(const BigInt<L>& n, int rounds, SecureRng& rng) {
  if (n.BitLength() <= 1) {
    return false;  // 0, 1
  }
  for (uint32_t p : internal::SmallPrimes()) {
    BigInt<L> small = BigInt<L>::FromU64(p);
    if (n == small) {
      return true;
    }
    if (internal::ModSmall(n, p) == 0) {
      return false;
    }
  }
  if (!n.IsOdd()) {
    return false;
  }

  // n - 1 = d * 2^s with d odd.
  BigInt<L> n_minus_1;
  BigInt<L>::SubInto(n_minus_1, n, BigInt<L>::One());
  BigInt<L> d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d.ShiftRight1();
    ++s;
  }

  MontgomeryCtx<L> ctx(n);
  BigInt<L> two = BigInt<L>::FromU64(2);
  BigInt<L> n_minus_2;
  BigInt<L>::SubInto(n_minus_2, n, two);

  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    BigInt<L> a = AddMod(RandomBelow(n_minus_2, rng), BigInt<L>::One(), n);
    if (a < two) {
      a = two;
    }
    BigInt<L> x = ctx.ExpMod(a, d);
    if (x == BigInt<L>::One() || x == n_minus_1) {
      continue;
    }
    bool witness = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = ctx.MulMod(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

// True if p and (p-1)/2 are both (probable) primes.
template <size_t L>
bool IsSafePrime(const BigInt<L>& p, int rounds, SecureRng& rng) {
  if (!p.IsOdd()) {
    return false;
  }
  BigInt<L> q = p;
  BigInt<L>::SubInto(q, q, BigInt<L>::One());
  q.ShiftRight1();
  return IsProbablePrime(q, rounds, rng) && IsProbablePrime(p, rounds, rng);
}

// Generates a safe prime p = 2q + 1 with exactly `bits` bits (bits <= 64L).
// Sieves q and p simultaneously before running Miller-Rabin.
template <size_t L>
BigInt<L> GenerateSafePrime(size_t bits, SecureRng& rng) {
  for (;;) {
    // Random odd q with exactly bits-1 bits.
    size_t qbits = bits - 1;
    Bytes raw = rng.RandomBytes((qbits + 7) / 8);
    auto q_opt = BigInt<L>::FromBytesBe(raw);
    BigInt<L> q = *q_opt;
    // Clamp to exactly qbits bits and make odd, q = 3 mod 4 so p = 7 mod 8.
    for (size_t i = qbits; i < 64 * L; ++i) {
      q.limb[i / 64] &= ~(uint64_t{1} << (i % 64));
    }
    q.SetBit(qbits - 1);
    q.limb[0] |= 3;

    // Scan a window of candidates q += 4 to amortize setup.
    for (int step = 0; step < 2048; ++step) {
      bool divisible = false;
      for (uint32_t sp : internal::SmallPrimes()) {
        uint64_t rq = internal::ModSmall(q, sp);
        // q % sp == 0 or p = 2q+1 % sp == 0
        if (rq == 0 || (2 * rq + 1) % sp == 0) {
          divisible = true;
          break;
        }
      }
      if (!divisible) {
        if (IsProbablePrime(q, 2, rng)) {
          BigInt<L> p = q;
          p.ShiftLeft1();
          BigInt<L>::AddInto(p, p, BigInt<L>::One());
          if (IsProbablePrime(p, 2, rng) && IsProbablePrime(q, 24, rng) &&
              IsProbablePrime(p, 24, rng)) {
            return p;
          }
        }
      }
      BigInt<L> four = BigInt<L>::FromU64(4);
      BigInt<L>::AddInto(q, q, four);
      if (q.BitLength() != qbits) {
        break;  // wrapped past the target size; draw a fresh start
      }
    }
  }
}

// DSA/Schnorr-style group generation: prime p with a prime subgroup of order
// q where q has exactly `qbits` bits and p has exactly `pbits`. Exponents in
// such a group are q-sized (short), which is how production finite-field
// deployments keep exponentiation fast at large p.
template <size_t L>
struct SchnorrGroupDescriptor {
  BigInt<L> p;
  BigInt<4> q;         // subgroup order (up to 256 bits)
  BigInt<L> cofactor;  // (p - 1) / q
  BigInt<L> g;         // generator of the order-q subgroup
};

template <size_t L>
SchnorrGroupDescriptor<L> GenerateSchnorrGroup(size_t pbits, size_t qbits, SecureRng& rng) {
  SchnorrGroupDescriptor<L> desc;
  // One prime q for the whole search.
  for (;;) {
    Bytes raw = rng.RandomBytes((qbits + 7) / 8);
    BigInt<4> q = *BigInt<4>::FromBytesBe(raw);
    for (size_t i = qbits; i < 256; ++i) {
      q.limb[i / 64] &= ~(uint64_t{1} << (i % 64));
    }
    q.SetBit(qbits - 1);
    q.limb[0] |= 1;
    if (IsProbablePrime(q, 24, rng)) {
      desc.q = q;
      break;
    }
  }

  // Search p = q * k + 1 with k even and p exactly pbits long.
  const size_t kbits = pbits - qbits;
  for (;;) {
    Bytes raw = rng.RandomBytes((kbits + 7) / 8);
    BigInt<L> k = *BigInt<L>::FromBytesBe(raw);
    for (size_t i = kbits; i < 64 * L; ++i) {
      k.limb[i / 64] &= ~(uint64_t{1} << (i % 64));
    }
    k.SetBit(kbits - 1);
    k.limb[0] &= ~uint64_t{1};  // even
    if (k.IsZero()) {
      continue;
    }
    BigInt<L> q_wide = desc.q.template Resize<L>();
    BigInt<2 * L> product = Mul(q_wide, k);
    BigInt<L> p = product.template Resize<L>();
    // Reject if the product overflowed L limbs (it cannot for our sizes).
    BigInt<L>::AddInto(p, p, BigInt<L>::One());
    if (p.BitLength() != pbits) {
      continue;
    }
    bool divisible = false;
    for (uint32_t sp : internal::SmallPrimes()) {
      if (internal::ModSmall(p, sp) == 0) {
        divisible = true;
        break;
      }
    }
    if (divisible || !IsProbablePrime(p, 2, rng) || !IsProbablePrime(p, 24, rng)) {
      continue;
    }
    desc.p = p;
    desc.cofactor = k;
    break;
  }

  // Generator: smallest h with h^cofactor != 1.
  MontgomeryCtx<L> ctx(desc.p);
  for (uint64_t h = 2;; ++h) {
    BigInt<L> candidate = ctx.ExpMod(BigInt<L>::FromU64(h), desc.cofactor);
    if (candidate != BigInt<L>::One()) {
      desc.g = candidate;
      break;
    }
  }
  return desc;
}

}  // namespace vdp

#endif  // SRC_MATH_PRIMALITY_H_
