// Fixed-width multi-precision unsigned integers.
//
// BigInt<L> holds L little-endian 64-bit limbs on the stack. All sizes the
// library needs (256..4096 bits) are known at compile time, so there is no
// heap traffic in any arithmetic path. Multiplication returns a double-width
// result; reduction is done either by binary long division (cold paths) or
// Montgomery arithmetic (hot paths, see montgomery.h).
#ifndef SRC_MATH_BIGINT_H_
#define SRC_MATH_BIGINT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/hex.h"

namespace vdp {

// 128-bit limb-arithmetic helper. The __extension__ marker keeps the
// GCC/Clang builtin type usable under -Wpedantic.
__extension__ typedef unsigned __int128 uint128_t;

template <size_t L>
struct BigInt {
  static_assert(L >= 1);
  static constexpr size_t kLimbs = L;
  static constexpr size_t kBytes = L * 8;
  static constexpr size_t kBits = L * 64;

  std::array<uint64_t, L> limb{};

  static constexpr BigInt Zero() { return BigInt{}; }

  static constexpr BigInt One() {
    BigInt r;
    r.limb[0] = 1;
    return r;
  }

  static constexpr BigInt FromU64(uint64_t v) {
    BigInt r;
    r.limb[0] = v;
    return r;
  }

  bool IsZero() const {
    for (uint64_t w : limb) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  bool IsOdd() const { return (limb[0] & 1) != 0; }

  // -1, 0, +1 for <, ==, >.
  int Compare(const BigInt& other) const {
    for (size_t i = L; i-- > 0;) {
      if (limb[i] != other.limb[i]) {
        return limb[i] < other.limb[i] ? -1 : 1;
      }
    }
    return 0;
  }

  friend bool operator==(const BigInt& a, const BigInt& b) { return a.Compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return a.Compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return a.Compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return a.Compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return a.Compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return a.Compare(b) >= 0; }

  // out = a + b; returns the carry bit.
  static uint64_t AddInto(BigInt& out, const BigInt& a, const BigInt& b) {
    uint64_t carry = 0;
    for (size_t i = 0; i < L; ++i) {
      uint128_t s =
          static_cast<uint128_t>(a.limb[i]) + b.limb[i] + carry;
      out.limb[i] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    return carry;
  }

  // out = a - b; returns the borrow bit.
  static uint64_t SubInto(BigInt& out, const BigInt& a, const BigInt& b) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < L; ++i) {
      uint128_t d = static_cast<uint128_t>(a.limb[i]) -
                            b.limb[i] - borrow;
      out.limb[i] = static_cast<uint64_t>(d);
      borrow = static_cast<uint64_t>((d >> 64) & 1);
    }
    return borrow;
  }

  bool Bit(size_t i) const { return ((limb[i / 64] >> (i % 64)) & 1) != 0; }

  void SetBit(size_t i) { limb[i / 64] |= (uint64_t{1} << (i % 64)); }

  // Index of the highest set bit plus one; 0 for zero.
  size_t BitLength() const {
    for (size_t i = L; i-- > 0;) {
      if (limb[i] != 0) {
        return i * 64 + (64 - static_cast<size_t>(__builtin_clzll(limb[i])));
      }
    }
    return 0;
  }

  // Shifts left by one bit; returns the bit shifted out of the top.
  uint64_t ShiftLeft1() {
    uint64_t carry = 0;
    for (size_t i = 0; i < L; ++i) {
      uint64_t next = limb[i] >> 63;
      limb[i] = (limb[i] << 1) | carry;
      carry = next;
    }
    return carry;
  }

  void ShiftRight1() {
    for (size_t i = 0; i < L; ++i) {
      uint64_t high = (i + 1 < L) ? (limb[i + 1] << 63) : 0;
      limb[i] = (limb[i] >> 1) | high;
    }
  }

  // Widens (or truncates; caller must know high limbs are zero when N < L).
  template <size_t N>
  BigInt<N> Resize() const {
    BigInt<N> r;
    for (size_t i = 0; i < std::min(N, L); ++i) {
      r.limb[i] = limb[i];
    }
    return r;
  }

  // Big-endian fixed-width byte encoding (kBytes bytes).
  Bytes ToBytesBe() const {
    Bytes out(kBytes);
    for (size_t i = 0; i < L; ++i) {
      uint64_t w = limb[L - 1 - i];
      for (int b = 0; b < 8; ++b) {
        out[i * 8 + b] = static_cast<uint8_t>(w >> (56 - 8 * b));
      }
    }
    return out;
  }

  // Parses big-endian bytes; fails if the value needs more than kBytes bytes.
  static std::optional<BigInt> FromBytesBe(BytesView bytes) {
    if (bytes.size() > kBytes) {
      // Permit oversized input only when the extra leading bytes are zero.
      size_t extra = bytes.size() - kBytes;
      for (size_t i = 0; i < extra; ++i) {
        if (bytes[i] != 0) {
          return std::nullopt;
        }
      }
      bytes = bytes.subspan(extra);
    }
    BigInt r;
    size_t n = bytes.size();
    for (size_t i = 0; i < n; ++i) {
      size_t bit_pos = (n - 1 - i) * 8;
      r.limb[bit_pos / 64] |= static_cast<uint64_t>(bytes[i]) << (bit_pos % 64);
    }
    return r;
  }

  std::string ToHex() const { return HexEncode(ToBytesBe()); }

  static std::optional<BigInt> FromHex(const std::string& hex) {
    // Accept odd-length hex by implicit leading zero.
    std::string padded = (hex.size() % 2 == 0) ? hex : "0" + hex;
    auto bytes = HexDecode(padded);
    if (!bytes.has_value()) {
      return std::nullopt;
    }
    return FromBytesBe(*bytes);
  }
};

// Full schoolbook product: (A limbs) x (B limbs) -> (A+B limbs), exact.
template <size_t A, size_t B>
BigInt<A + B> Mul(const BigInt<A>& a, const BigInt<B>& b) {
  BigInt<A + B> r;
  for (size_t i = 0; i < A; ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < B; ++j) {
      uint128_t s = static_cast<uint128_t>(a.limb[i]) * b.limb[j] +
                            r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    r.limb[i + B] += carry;
  }
  return r;
}

template <size_t N, size_t L>
struct DivModResult {
  BigInt<N> quotient;
  BigInt<L> remainder;
};

// Binary long division. O(64N * L): fine for setup/cold paths; hot paths use
// Montgomery reduction instead. Divisor must be nonzero.
template <size_t N, size_t L>
DivModResult<N, L> DivMod(const BigInt<N>& dividend, const BigInt<L>& divisor) {
  DivModResult<N, L> result;
  BigInt<L>& rem = result.remainder;
  for (size_t i = 64 * N; i-- > 0;) {
    uint64_t carry_out = rem.ShiftLeft1();
    if (dividend.Bit(i)) {
      rem.limb[0] |= 1;
    }
    if (carry_out != 0) {
      // True remainder is rem + 2^(64L) >= divisor; wrapping subtraction is exact.
      BigInt<L>::SubInto(rem, rem, divisor);
      result.quotient.SetBit(i);
    } else if (rem >= divisor) {
      BigInt<L>::SubInto(rem, rem, divisor);
      result.quotient.SetBit(i);
    }
  }
  return result;
}

// a mod m for a double-width value (convenience wrapper).
template <size_t N, size_t L>
BigInt<L> Mod(const BigInt<N>& a, const BigInt<L>& m) {
  return DivMod(a, m).remainder;
}

// (a + b) mod m. Requires a, b < m.
template <size_t L>
BigInt<L> AddMod(const BigInt<L>& a, const BigInt<L>& b, const BigInt<L>& m) {
  BigInt<L> r;
  uint64_t carry = BigInt<L>::AddInto(r, a, b);
  if (carry != 0 || r >= m) {
    BigInt<L>::SubInto(r, r, m);
  }
  return r;
}

// (a - b) mod m. Requires a, b < m.
template <size_t L>
BigInt<L> SubMod(const BigInt<L>& a, const BigInt<L>& b, const BigInt<L>& m) {
  BigInt<L> r;
  uint64_t borrow = BigInt<L>::SubInto(r, a, b);
  if (borrow != 0) {
    BigInt<L>::AddInto(r, r, m);
  }
  return r;
}

// Slow general modular multiplication (cold paths only).
template <size_t L>
BigInt<L> MulMod(const BigInt<L>& a, const BigInt<L>& b, const BigInt<L>& m) {
  return Mod(Mul(a, b), m);
}

}  // namespace vdp

#endif  // SRC_MATH_BIGINT_H_
