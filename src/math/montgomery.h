// Montgomery arithmetic over an odd modulus (CIOS multiplication).
//
// MontgomeryCtx<L> precomputes everything needed for fast modular
// multiplication, exponentiation and (for prime moduli) inversion. Values are
// passed in plain representation; the context converts internally. This is
// the single hot loop of the whole library: every commitment, proof and
// verification reduces to ExpMod calls.
#ifndef SRC_MATH_MONTGOMERY_H_
#define SRC_MATH_MONTGOMERY_H_

#include <stdexcept>

#include "src/math/bigint.h"

namespace vdp {

template <size_t L>
class MontgomeryCtx {
 public:
  // modulus must be odd and > 1.
  explicit MontgomeryCtx(const BigInt<L>& modulus) : m_(modulus) {
    if (!modulus.IsOdd() || modulus <= BigInt<L>::One()) {
      throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
    }
    // m0inv_ = -m^{-1} mod 2^64 via Newton iteration.
    uint64_t inv = 1;
    for (int i = 0; i < 6; ++i) {
      inv *= 2 - m_.limb[0] * inv;
    }
    m0inv_ = ~inv + 1;  // negate mod 2^64

    // r_ = 2^(64L) mod m; r2_ = r_^2 mod m (computed by 64L modular doublings).
    BigInt<L> r = ComputeR();
    r_ = r;
    BigInt<L> r2 = r;
    for (size_t i = 0; i < 64 * L; ++i) {
      r2 = AddMod(r2, r2, m_);
    }
    r2_ = r2;
  }

  const BigInt<L>& modulus() const { return m_; }
  const BigInt<L>& r() const { return r_; }

  BigInt<L> ToMont(const BigInt<L>& a) const { return MulMont(a, r2_); }
  BigInt<L> FromMont(const BigInt<L>& a) const { return MulMont(a, BigInt<L>::One()); }

  // Montgomery product: a * b * R^{-1} mod m (CIOS).
  BigInt<L> MulMont(const BigInt<L>& a, const BigInt<L>& b) const {
    uint64_t t[L + 2] = {0};
    for (size_t i = 0; i < L; ++i) {
      // t += a[i] * b
      uint64_t carry = 0;
      for (size_t j = 0; j < L; ++j) {
        uint128_t s =
            static_cast<uint128_t>(a.limb[i]) * b.limb[j] + t[j] + carry;
        t[j] = static_cast<uint64_t>(s);
        carry = static_cast<uint64_t>(s >> 64);
      }
      uint128_t s = static_cast<uint128_t>(t[L]) + carry;
      t[L] = static_cast<uint64_t>(s);
      t[L + 1] = static_cast<uint64_t>(s >> 64);

      // Reduce: add u * m where u makes the low limb vanish, then shift.
      uint64_t u = t[0] * m0inv_;
      uint128_t s2 = static_cast<uint128_t>(u) * m_.limb[0] + t[0];
      carry = static_cast<uint64_t>(s2 >> 64);
      for (size_t j = 1; j < L; ++j) {
        uint128_t s3 =
            static_cast<uint128_t>(u) * m_.limb[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(s3);
        carry = static_cast<uint64_t>(s3 >> 64);
      }
      uint128_t s4 = static_cast<uint128_t>(t[L]) + carry;
      t[L - 1] = static_cast<uint64_t>(s4);
      t[L] = t[L + 1] + static_cast<uint64_t>(s4 >> 64);
      t[L + 1] = 0;
    }

    BigInt<L> result;
    for (size_t i = 0; i < L; ++i) {
      result.limb[i] = t[i];
    }
    if (t[L] != 0 || result >= m_) {
      BigInt<L>::SubInto(result, result, m_);
    }
    return result;
  }

  // Montgomery square: a * a * R^{-1} mod m. Squaring computes the L(L-1)/2
  // off-diagonal products once and doubles them, so it beats MulMont by
  // ~L/(L+... in practice ~20% -- and exponentiation is mostly squarings.
  BigInt<L> SqrMont(const BigInt<L>& a) const {
    uint64_t t[2 * L + 1] = {0};
    // Off-diagonal products a[i] * a[j], j > i.
    for (size_t i = 0; i < L; ++i) {
      uint64_t carry = 0;
      for (size_t j = i + 1; j < L; ++j) {
        uint128_t s = static_cast<uint128_t>(a.limb[i]) * a.limb[j] + t[i + j] + carry;
        t[i + j] = static_cast<uint64_t>(s);
        carry = static_cast<uint64_t>(s >> 64);
      }
      t[i + L] = carry;  // slot i+L is first written here (j < L forces i' > i)
    }
    // Double them, then add the diagonal squares a[i]^2 at position 2i.
    uint64_t carry = 0;
    for (size_t k = 0; k < 2 * L; ++k) {
      uint64_t hi = t[k] >> 63;
      t[k] = (t[k] << 1) | carry;
      carry = hi;
    }
    t[2 * L] = carry;
    carry = 0;
    for (size_t i = 0; i < L; ++i) {
      uint128_t sq = static_cast<uint128_t>(a.limb[i]) * a.limb[i];
      uint128_t lo = static_cast<uint128_t>(t[2 * i]) + static_cast<uint64_t>(sq) + carry;
      t[2 * i] = static_cast<uint64_t>(lo);
      uint128_t hi = static_cast<uint128_t>(t[2 * i + 1]) + static_cast<uint64_t>(sq >> 64) +
                     static_cast<uint64_t>(lo >> 64);
      t[2 * i + 1] = static_cast<uint64_t>(hi);
      carry = static_cast<uint64_t>(hi >> 64);
    }
    t[2 * L] += carry;
    // REDC: cancel the low L limbs; the result is t / R, one subtraction away
    // from canonical (t < 2mR throughout, the standard REDC bound).
    for (size_t i = 0; i < L; ++i) {
      uint64_t u = t[i] * m0inv_;
      uint64_t c = 0;
      for (size_t j = 0; j < L; ++j) {
        uint128_t s = static_cast<uint128_t>(u) * m_.limb[j] + t[i + j] + c;
        t[i + j] = static_cast<uint64_t>(s);
        c = static_cast<uint64_t>(s >> 64);
      }
      for (size_t k = i + L; c != 0 && k <= 2 * L; ++k) {
        uint128_t s = static_cast<uint128_t>(t[k]) + c;
        t[k] = static_cast<uint64_t>(s);
        c = static_cast<uint64_t>(s >> 64);
      }
    }
    BigInt<L> result;
    for (size_t i = 0; i < L; ++i) {
      result.limb[i] = t[L + i];
    }
    if (t[2 * L] != 0 || result >= m_) {
      BigInt<L>::SubInto(result, result, m_);
    }
    return result;
  }

  // a * b mod m for plain-representation inputs (one extra Montgomery step).
  BigInt<L> MulMod(const BigInt<L>& a, const BigInt<L>& b) const {
    return MulMont(ToMont(a), b);
  }

  // base^exp mod m (plain in, plain out). 4-bit fixed window.
  template <size_t E>
  BigInt<L> ExpMod(const BigInt<L>& base, const BigInt<E>& exp) const {
    size_t exp_bits = exp.BitLength();
    if (exp_bits == 0) {
      return BigInt<L>::One();
    }
    BigInt<L> base_m = ToMont(base);

    // table[i] = base^i in Montgomery form, i in [0, 16).
    BigInt<L> table[16];
    table[0] = r_;  // 1 in Montgomery form
    table[1] = base_m;
    for (int i = 2; i < 16; ++i) {
      table[i] = MulMont(table[i - 1], base_m);
    }

    size_t windows = (exp_bits + 3) / 4;
    BigInt<L> acc = r_;
    for (size_t w = windows; w-- > 0;) {
      for (int s = 0; s < 4; ++s) {
        acc = SqrMont(acc);
      }
      uint32_t nib = 0;
      for (int b = 3; b >= 0; --b) {
        size_t bit = w * 4 + static_cast<size_t>(b);
        nib = (nib << 1) | ((bit < exp_bits && exp.Bit(bit)) ? 1u : 0u);
      }
      if (nib != 0) {
        acc = MulMont(acc, table[nib]);
      }
    }
    return FromMont(acc);
  }

  // Modular inverse via Fermat (requires m prime, a != 0 mod m).
  BigInt<L> Inverse(const BigInt<L>& a) const {
    BigInt<L> exp = m_;
    BigInt<L> two = BigInt<L>::FromU64(2);
    BigInt<L>::SubInto(exp, exp, two);
    return ExpMod(a, exp);
  }

 private:
  BigInt<L> ComputeR() const {
    // 2^(64L) mod m via division of the (L+1)-limb value 2^(64L).
    BigInt<L + 1> pow2;
    pow2.limb[L] = 1;
    return DivMod(pow2, m_).remainder;
  }

  BigInt<L> m_;
  BigInt<L> r_;
  BigInt<L> r2_;
  uint64_t m0inv_ = 0;
};

}  // namespace vdp

#endif  // SRC_MATH_MONTGOMERY_H_
