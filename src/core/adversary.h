// Malicious provers and clients: one class per cheat the soundness proof of
// Theorem 4.1 enumerates, plus the Figure-1 client-side attacks. Tests pair
// each adversary with the honest verifier and assert detection/attribution.
#ifndef SRC_CORE_ADVERSARY_H_
#define SRC_CORE_ADVERSARY_H_

#include "src/core/prover.h"
#include "src/morra/adversary.h"

namespace vdp {

// Cheat at Line 4: one "private coin" is a commitment to 2, not a bit. The
// prover still produces an OR proof (which cannot verify) hoping the verifier
// is lazy.
template <PrimeOrderGroup G>
class NonBitCoinProver : public Prover<G> {
 public:
  using Base = Prover<G>;
  using Base::Base;
  using Scalar = typename Base::Scalar;

  ProverCoinsMsg<G> CommitCoins(ThreadPool* pool = nullptr) override {
    ProverCoinsMsg<G> msg = Base::CommitCoins(pool);
    // Replace coin 0 of bin 0 with a commitment to 2; fabricate a proof by
    // running the honest prover code with a false claimed bit.
    Scalar r = Scalar::Random(this->rng_);
    auto c = this->ped_.Commit(Scalar::FromU64(2), r);
    msg.coin_commitments[0][0] = c;
    msg.coin_proofs[0][0] =
        OrProve(this->ped_, c, 0, r, this->rng_, this->CoinProofContext(0) + "/0");
    // Keep internal state consistent with the lie so the final message also
    // uses v = 2 (both checks must catch it regardless).
    this->private_bits_[0][0] = 2;
    this->coin_randomness_[0][0] = r;
    return msg;
  }
};

// Cheat at Line 10: publish y' = y + bias, leaving z untouched. Biasing the
// published statistic is the paper's headline attack ("blame the noise").
template <PrimeOrderGroup G>
class BiasedOutputProver : public Prover<G> {
 public:
  using Base = Prover<G>;
  using Scalar = typename Base::Scalar;

  BiasedOutputProver(size_t index, const ProtocolConfig& config, Pedersen<G> ped, SecureRng rng,
                     uint64_t bias)
      : Base(index, config, std::move(ped), std::move(rng)), bias_(bias) {}

  ProverOutputMsg<G> ComputeOutput() override {
    ProverOutputMsg<G> out = Base::ComputeOutput();
    out.y[0] += Scalar::FromU64(bias_);
    return out;
  }

 private:
  uint64_t bias_;
};

// Input tampering (Figure 1a flavor): silently drops the first accepted
// client's share from its aggregate, attempting to exclude an honest voter.
template <PrimeOrderGroup G>
class ClientDroppingProver : public Prover<G> {
 public:
  using Base = Prover<G>;
  using Base::Base;

  void LoadClientShares(const std::vector<ClientShareMsg<G>>& shares) override {
    if (shares.empty()) {
      return;
    }
    std::vector<ClientShareMsg<G>> tampered(shares.begin() + 1, shares.end());
    Base::LoadClientShares(tampered);
  }
};

// Skips the DP noise entirely: outputs only the sum of client shares and the
// client randomness, ignoring its committed coins.
template <PrimeOrderGroup G>
class NoNoiseProver : public Prover<G> {
 public:
  using Base = Prover<G>;
  using Base::Base;
  using Scalar = typename Base::Scalar;

  ProverOutputMsg<G> ComputeOutput() override {
    ProverOutputMsg<G> out;
    out.y = this->share_sum_;
    out.z = this->randomness_sum_;
    return out;
  }
};

// Cheats inside Morra (Line 7): supplies an equivocating participant that
// tries to re-pick its contribution after seeing the verifier's reveal.
template <PrimeOrderGroup G>
class MorraCheatingProver : public Prover<G> {
 public:
  using Base = Prover<G>;
  using Base::Base;

  std::unique_ptr<MorraParty<G>> MakeMorraParty() override {
    return std::make_unique<EquivocatingMorraParty<G>>(this->rng_.Fork("morra-cheat"));
  }
};

// ---------------------------------------------------------------------------
// Malicious clients (Figure 1b flavors).

// Submits an out-of-language input (a bin value of `value` instead of a bit)
// with the honest proving code. The Line-3 check must reject it.
template <PrimeOrderGroup G>
ClientBundle<G> MakeNonBitClientBundle(uint64_t value, size_t client_index,
                                       const ProtocolConfig& config, const Pedersen<G>& ped,
                                       SecureRng& rng) {
  using S = typename G::Scalar;
  const size_t k = config.num_provers;
  const size_t m = config.num_bins;
  ClientBundle<G> bundle;
  bundle.shares.resize(k);
  bundle.upload.commitments.resize(k);
  for (size_t p = 0; p < k; ++p) {
    bundle.shares[p].values.resize(m);
    bundle.shares[p].randomness.resize(m);
    bundle.upload.commitments[p].resize(m);
  }
  S total_randomness = S::Zero();
  for (size_t bin = 0; bin < m; ++bin) {
    uint64_t x = (bin == 0) ? value : 0;  // illegal weight in bin 0
    auto value_shares = ShareAdditive(S::FromU64(x), k, rng);
    S bin_randomness = S::Zero();
    auto aggregated = G::Identity();
    for (size_t p = 0; p < k; ++p) {
      S r = S::Random(rng);
      bundle.shares[p].values[bin] = value_shares[p];
      bundle.shares[p].randomness[bin] = r;
      bundle.upload.commitments[p][bin] = ped.Commit(value_shares[p], r);
      aggregated = G::Mul(aggregated, bundle.upload.commitments[p][bin]);
      bin_randomness += r;
    }
    total_randomness += bin_randomness;
    bundle.upload.bin_proofs.push_back(
        OrProve(ped, aggregated, static_cast<int>(x != 0), bin_randomness, rng,
                ClientProofContext(config.session_id, client_index, bin)));
  }
  bundle.upload.sum_randomness = total_randomness;
  return bundle;
}

// Votes in two bins at once (each bin individually a valid bit, so the OR
// proofs verify); only the sum-to-one check can catch it.
template <PrimeOrderGroup G>
ClientBundle<G> MakeDoubleVoteClientBundle(size_t client_index, const ProtocolConfig& config,
                                           const Pedersen<G>& ped, SecureRng& rng) {
  // Build an honest bundle for choice 0, then rebuild bin 1 as another vote.
  ClientBundle<G> bundle = MakeClientBundle<G>(0, client_index, config, ped, rng);
  using S = typename G::Scalar;
  const size_t k = config.num_provers;
  auto value_shares = ShareAdditive(S::One(), k, rng);
  S bin_randomness = S::Zero();
  auto aggregated = G::Identity();
  for (size_t p = 0; p < k; ++p) {
    S r = S::Random(rng);
    bundle.shares[p].values[1] = value_shares[p];
    bundle.shares[p].randomness[1] = r;
    bundle.upload.commitments[p][1] = ped.Commit(value_shares[p], r);
    aggregated = G::Mul(aggregated, bundle.upload.commitments[p][1]);
    bin_randomness += r;
  }
  bundle.upload.bin_proofs[1] = OrProve(ped, aggregated, 1, bin_randomness, rng,
                                        ClientProofContext(config.session_id, client_index, 1));
  // Recompute claimed sum randomness honestly; the sum of committed values is
  // now 2, so Com(1, sum_randomness) cannot match no matter what they claim.
  S total = S::Zero();
  for (size_t p = 0; p < k; ++p) {
    for (size_t bin = 0; bin < config.num_bins; ++bin) {
      total += bundle.shares[p].randomness[bin];
    }
  }
  bundle.upload.sum_randomness = total;
  return bundle;
}

// Publicly honest upload, but the share sent to prover 0 is garbage
// (inconsistent with the broadcast commitment).
template <PrimeOrderGroup G>
ClientBundle<G> MakeInconsistentShareClientBundle(uint32_t choice, size_t client_index,
                                                  const ProtocolConfig& config,
                                                  const Pedersen<G>& ped, SecureRng& rng) {
  ClientBundle<G> bundle = MakeClientBundle<G>(choice, client_index, config, ped, rng);
  using S = typename G::Scalar;
  bundle.shares[0].values[0] += S::One();  // no longer opens the commitment
  return bundle;
}

// Valid input, corrupted proof bytes: must be rejected (and is
// distinguishable from the honest-client-excluded-by-server attack because
// validation is public).
template <PrimeOrderGroup G>
ClientBundle<G> MakeBadProofClientBundle(uint32_t choice, size_t client_index,
                                         const ProtocolConfig& config, const Pedersen<G>& ped,
                                         SecureRng& rng) {
  ClientBundle<G> bundle = MakeClientBundle<G>(choice, client_index, config, ped, rng);
  using S = typename G::Scalar;
  bundle.upload.bin_proofs[0].z0 = bundle.upload.bin_proofs[0].z0 + S::One();
  return bundle;
}

}  // namespace vdp

#endif  // SRC_CORE_ADVERSARY_H_
