// The zero-knowledge simulator of Theorem 4.1 / Appendix D (trusted-curator
// form, K = 1).
//
// Given only the public client commitments and the ideal functionality's
// output y = M_Bin(X, Q), the simulator fabricates a full protocol
// transcript -- coin commitments, public bits, and the final (y, z) opening
// -- that passes every verifier check, without ever knowing the clients'
// inputs or the real prover's noise. In the hybrid model the simulator plays
// the O_morra and O_OR oracles, which is why it may sample the public bits
// itself and answer bit-membership queries affirmatively (tests exercise the
// latter through OrSimulate's chosen-challenge transcripts).
//
// The existence of this constructive simulator is the protocol's
// zero-knowledge property: anything a (corrupt) verifier sees, it could have
// generated alone from the public output.
#ifndef SRC_CORE_SIMULATOR_H_
#define SRC_CORE_SIMULATOR_H_

#include <vector>

#include "src/commit/pedersen.h"
#include "src/sigma/or_proof.h"

namespace vdp {

template <PrimeOrderGroup G>
struct SimulatedCuratorTranscript {
  std::vector<typename G::Element> coin_commitments;  // c'_j (Line 4 message)
  std::vector<bool> public_bits;                      // b_j (simulated O_morra)
  typename G::Scalar y;                               // Line 10 message
  typename G::Scalar z;                               // Line 11 message
};

// Line 12 update (shared with the verifier): ĉ' = b ? Com(1,0) * c'^{-1} : c'.
// The map is an involution, which the simulator exploits to pick post-update
// commitments first and derive what it must "send" at Line 4.
template <PrimeOrderGroup G>
typename G::Element UpdateCommitment(const Pedersen<G>& ped, const typename G::Element& c,
                                     bool bit) {
  using S = typename G::Scalar;
  if (!bit) {
    return c;
  }
  return G::Mul(ped.Commit(S::One(), S::Zero()), G::Inverse(c));
}

template <PrimeOrderGroup G>
SimulatedCuratorTranscript<G> SimulateCurator(
    const Pedersen<G>& ped, const std::vector<typename G::Element>& client_commitments,
    const typename G::Scalar& ideal_output, size_t num_coins, SecureRng& rng) {
  using S = typename G::Scalar;
  SimulatedCuratorTranscript<G> sim;
  sim.y = ideal_output;
  sim.z = S::Random(rng);
  auto target = ped.Commit(sim.y, sim.z);

  // Simulator plays O_morra: it may fix the "public" bits itself.
  sim.public_bits.resize(num_coins);
  for (size_t j = 0; j < num_coins; ++j) {
    sim.public_bits[j] = rng.NextBit();
  }

  // Choose the post-update commitments: free Com(1, s_j) for j >= 1, then
  // solve for slot 0 so the Line 13 product telescopes to `target`
  // (Appendix D step 4).
  std::vector<typename G::Element> updated(num_coins);
  auto residue = target;
  for (const auto& c : client_commitments) {
    residue = G::Mul(residue, G::Inverse(c));
  }
  for (size_t j = 1; j < num_coins; ++j) {
    updated[j] = ped.Commit(S::One(), S::Random(rng));
    residue = G::Mul(residue, G::Inverse(updated[j]));
  }
  updated[0] = residue;

  // Derive the Line 4 messages by inverting the update.
  sim.coin_commitments.resize(num_coins);
  for (size_t j = 0; j < num_coins; ++j) {
    sim.coin_commitments[j] = UpdateCommitment(ped, updated[j], sim.public_bits[j]);
  }
  return sim;
}

// Replays the verifier's algebraic checks (Lines 12-13) on a transcript.
template <PrimeOrderGroup G>
bool VerifyCuratorTranscript(const Pedersen<G>& ped,
                             const std::vector<typename G::Element>& client_commitments,
                             const SimulatedCuratorTranscript<G>& transcript) {
  auto lhs = G::Identity();
  for (const auto& c : client_commitments) {
    lhs = G::Mul(lhs, c);
  }
  for (size_t j = 0; j < transcript.coin_commitments.size(); ++j) {
    lhs = G::Mul(lhs, UpdateCommitment(ped, transcript.coin_commitments[j],
                                       transcript.public_bits[j]));
  }
  return lhs == ped.Commit(transcript.y, transcript.z);
}

}  // namespace vdp

#endif  // SRC_CORE_SIMULATOR_H_
