// Protocol configuration shared by clients, provers and the verifier.
#ifndef SRC_CORE_PARAMS_H_
#define SRC_CORE_PARAMS_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/hex.h"
#include "src/dp/binomial.h"
#include "src/net/endpoint.h"

namespace vdp {

// A rejected ProtocolConfig: which field is nonsensical and why. Returned by
// ProtocolConfig::Validate() and surfaced as VerdictCode::kInvalidConfig by
// RunProtocol / AuditTranscript, or as std::invalid_argument by the backend
// factory (src/verify/factory.h).
struct ConfigError {
  std::string field;
  std::string message;

  std::string Render() const { return "ProtocolConfig." + field + ": " + message; }
};

// Which protocol realizes the O_morra oracle.
enum class MorraMode {
  kPedersen,  // Algorithm 1 verbatim: one committed Z_q contribution per coin
  kSeed,      // hash-committed seeds, coins from XORed ChaCha20 streams
};

struct ProtocolConfig {
  // Privacy target; determines the number of private coins per noise draw.
  double epsilon = 1.0;
  double delta = 1.0 / 1024;

  // K >= 1 provers (K = 1 is the trusted curator model).
  size_t num_provers = 1;

  // M >= 1 histogram bins; clients contribute a one-hot vector (M > 1) or a
  // single bit (M = 1).
  size_t num_bins = 1;

  MorraMode morra_mode = MorraMode::kPedersen;

  // Verify sigma proofs in batches: random-linear-combination checks over one
  // multi-scalar multiplication (src/batch/) instead of per-proof
  // exponentiation chains. Accept/reject decisions match the per-proof path:
  // an all-valid batch always accepts, and on batch failure the verifier
  // falls back to per-proof checks to attribute blame.
  bool batch_verify = false;

  // Partition client uploads into this many contiguous shards for validation
  // (src/shard/sharded_verifier.h). Each shard batch-verifies independently
  // (fanned across the ThreadPool) and a deterministic combiner merges the
  // per-shard results; the accepted set is bit-identical to the monolithic
  // path. On a batch failure only the offending shard pays the per-proof
  // blame-attribution fallback. 1 (the default) keeps the monolithic path.
  // Note: sharded validation always uses the RLC batch check within each
  // shard, regardless of batch_verify -- decisions are still identical (the
  // fallback is the per-proof oracle), but to run the pure per-proof mode
  // leave num_verify_shards at 1 with batch_verify false.
  size_t num_verify_shards = 1;

  // Farm shard verification out to this many verify_worker subprocesses
  // (src/shard/process_pool.h): shards are serialized over the versioned
  // wire format (src/wire/), verified out of process, and the decoded
  // results feed the same deterministic combiner, bit-identically to the
  // in-process path. Worker failures are blamed, retried, and -- as a last
  // resort -- recovered in process, so the verdict never depends on fleet
  // health. 0 or 1 (the default) keeps verification in process. The shard
  // partition honors num_verify_shards when > 1, else defaults to two
  // shards per worker.
  size_t verify_workers = 0;

  // Farm shard verification out to remote verify_server daemons over
  // authenticated sockets (src/net/): endpoints in the textual form
  // "tcp:host:port" or "unix:/path". Non-empty selects the remote backend
  // (it wins over every other execution flag -- a provisioned fleet is the
  // most explicit statement of intent). Shards are serialized over the same
  // versioned wire format as the subprocess pool, MAC-authenticated per
  // frame, and the decoded results feed the same deterministic combiner,
  // bit-identically to the in-process path. Lost or misbehaving verifiers
  // are blamed, reconnected, and -- as a last resort -- their shards are
  // recovered in process, so the verdict never depends on fleet health.
  std::vector<std::string> remote_verifiers;

  // Streaming ingest knobs (src/shard/stream_dispatch.h), honored by every
  // backend that streams (per-proof, sharded, multiprocess, remote).
  // stream_shard_capacity is the number of uploads per sealed shard; 0 picks
  // the dispatcher default (1024, sized for MSM efficiency).
  // stream_max_inflight_shards bounds shards cut but not yet retired
  // (queued + executing): Add() blocks while the window is full, capping
  // resident memory at roughly (window + 1) * capacity uploads no matter how
  // long the stream runs. 0 picks two shards per executor lane.
  size_t stream_shard_capacity = 0;
  size_t stream_max_inflight_shards = 0;

  // Hex-encoded pre-shared fleet secret (>= 16 bytes decoded) used to derive
  // the per-connection transport MAC keys (src/net/auth.h). Required when
  // remote_verifiers is non-empty. Deployment-local: it is never serialized
  // into WireSetup and never crosses the wire.
  std::string remote_auth_key_hex;

  // Domain separation for all Fiat-Shamir transcripts of this run.
  std::string session_id = "vdp-session";

  // Structural sanity check, run before any cryptographic work: RunProtocol,
  // AuditTranscript, and MakeVerifyBackend all call this at entry so a
  // nonsensical configuration is rejected with attribution instead of
  // producing undefined protocol behavior deep inside a backend.
  std::optional<ConfigError> Validate() const {
    if (!std::isfinite(epsilon) || !(epsilon > 0.0)) {
      return ConfigError{"epsilon", "must be finite and > 0"};
    }
    if (!std::isfinite(delta) || !(delta > 0.0) || !(delta < 1.0)) {
      return ConfigError{"delta", "must lie in (0, 1)"};
    }
    if (num_provers == 0) {
      return ConfigError{"num_provers", "at least one prover is required"};
    }
    if (num_bins == 0) {
      return ConfigError{"num_bins", "at least one histogram bin is required"};
    }
    if (num_verify_shards == 0) {
      return ConfigError{"num_verify_shards",
                         "0 shards is meaningless; use 1 for the unsharded path"};
    }
    if (verify_workers == 1) {
      return ConfigError{"verify_workers",
                         "1 is ambiguous (a single worker has in-process semantics); "
                         "use 0 for in-process verification or >= 2 workers"};
    }
    for (const std::string& spec : remote_verifiers) {
      if (!net::ParseEndpoint(spec).has_value()) {
        return ConfigError{"remote_verifiers",
                           "endpoint '" + spec + "' is not tcp:<host>:<port> or unix:<path>"};
      }
    }
    if (!remote_verifiers.empty()) {
      auto key = HexDecode(remote_auth_key_hex);
      if (!key.has_value()) {
        return ConfigError{"remote_auth_key_hex",
                           "remote verifiers require a hex-encoded pre-shared auth key"};
      }
      if (key->size() < 16) {
        return ConfigError{"remote_auth_key_hex",
                           "auth key must decode to at least 16 bytes"};
      }
    }
    return std::nullopt;
  }

  // Coins per prover per bin (Lemma 2.1).
  uint64_t NumCoins() const { return NumCoinsForPrivacy(epsilon, delta); }

  // Publicly known additive offset of the raw output: each of the K provers
  // adds Binomial(nb, 1/2) noise per bin, so the mean offset is K * nb / 2.
  double ExpectedOffset() const {
    return static_cast<double>(num_provers) * static_cast<double>(NumCoins()) / 2.0;
  }
};

}  // namespace vdp

#endif  // SRC_CORE_PARAMS_H_
