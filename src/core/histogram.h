// M-bin verifiable DP histograms and plurality queries on top of Pi_Bin.
//
// A histogram is M parallel counting queries; clients contribute one-hot
// vectors validated by the Line-3 machinery. The helpers here answer the
// paper's motivating question ("which topping won the election, and can we
// trust the answer?").
#ifndef SRC_CORE_HISTOGRAM_H_
#define SRC_CORE_HISTOGRAM_H_

#include <algorithm>

#include "src/core/protocol.h"

namespace vdp {

struct HistogramSummary {
  std::vector<double> estimates;  // debiased per-bin counts
  size_t winner = 0;              // argmax bin
  double winner_estimate = 0;
  double total = 0;
};

inline HistogramSummary SummarizeHistogram(const ProtocolResult& result) {
  HistogramSummary summary;
  summary.estimates = result.histogram;
  if (!summary.estimates.empty()) {
    auto it = std::max_element(summary.estimates.begin(), summary.estimates.end());
    summary.winner = static_cast<size_t>(it - summary.estimates.begin());
    summary.winner_estimate = *it;
  }
  for (double v : summary.estimates) {
    summary.total += v;
  }
  return summary;
}

// Runs a verifiable DP plurality election: every client votes for one of
// `num_bins` candidates. Returns the protocol result plus the winning bin.
template <PrimeOrderGroup G>
std::pair<ProtocolResult, HistogramSummary> RunVerifiableElection(
    ProtocolConfig config, const std::vector<uint32_t>& votes, SecureRng& rng,
    ThreadPool* pool = nullptr) {
  ProtocolResult result = RunHonestProtocol<G>(config, votes, rng, pool);
  return {result, SummarizeHistogram(result)};
}

}  // namespace vdp

#endif  // SRC_CORE_HISTOGRAM_H_
