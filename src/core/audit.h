// Public auditability: the full protocol transcript as bytes, and an
// independent auditor that re-verifies a run from the serialized transcript
// alone.
//
// "As the verifier is public, anyone (even non-participants to Pi_Bin) can
// see the messages it receives" -- this module is that bystander. It shares
// no state with the live run: everything is decoded from the wire bytes
// (with strict subgroup/range checks) and re-checked, which is what makes
// the Table 2 "Auditable" property real rather than aspirational.
#ifndef SRC_CORE_AUDIT_H_
#define SRC_CORE_AUDIT_H_

#include <vector>

#include "src/core/protocol.h"

namespace vdp {

template <PrimeOrderGroup G>
Bytes SerializeTranscript(const PublicTranscript<G>& t) {
  Writer w;
  w.U32(static_cast<uint32_t>(t.client_uploads.size()));
  for (const auto& upload : t.client_uploads) {
    w.Blob(upload.Serialize());
  }
  w.U32(static_cast<uint32_t>(t.prover_coins.size()));
  for (size_t k = 0; k < t.prover_coins.size(); ++k) {
    const auto& coins = t.prover_coins[k];
    w.U32(static_cast<uint32_t>(coins.coin_commitments.size()));
    for (size_t bin = 0; bin < coins.coin_commitments.size(); ++bin) {
      w.U32(static_cast<uint32_t>(coins.coin_commitments[bin].size()));
      for (size_t j = 0; j < coins.coin_commitments[bin].size(); ++j) {
        w.Blob(G::Encode(coins.coin_commitments[bin][j]));
        w.Blob(coins.coin_proofs[bin][j].Serialize());
        w.U8(t.public_bits[k][bin][j] ? 1 : 0);
      }
    }
    w.Blob(t.prover_outputs[k].Serialize());
  }
  return w.Take();
}

template <PrimeOrderGroup G>
std::optional<PublicTranscript<G>> DeserializeTranscript(BytesView data) {
  Reader r(data);
  PublicTranscript<G> t;
  auto n = r.U32();
  if (!n) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < *n; ++i) {
    auto blob = r.Blob();
    if (!blob) {
      return std::nullopt;
    }
    auto upload = ClientUploadMsg<G>::Deserialize(*blob);
    if (!upload) {
      return std::nullopt;
    }
    t.client_uploads.push_back(std::move(*upload));
  }
  auto k = r.U32();
  if (!k) {
    return std::nullopt;
  }
  for (uint32_t p = 0; p < *k; ++p) {
    auto bins = r.U32();
    if (!bins) {
      return std::nullopt;
    }
    ProverCoinsMsg<G> coins;
    std::vector<std::vector<bool>> bits;
    coins.coin_commitments.resize(*bins);
    coins.coin_proofs.resize(*bins);
    bits.resize(*bins);
    for (uint32_t bin = 0; bin < *bins; ++bin) {
      auto nb = r.U32();
      if (!nb) {
        return std::nullopt;
      }
      for (uint32_t j = 0; j < *nb; ++j) {
        auto cblob = r.Blob();
        auto pblob = r.Blob();
        auto bit = r.U8();
        if (!cblob || !pblob || !bit || *bit > 1) {
          return std::nullopt;
        }
        auto c = G::Decode(*cblob);
        auto proof = OrProof<G>::Deserialize(*pblob);
        if (!c || !proof) {
          return std::nullopt;
        }
        coins.coin_commitments[bin].push_back(*c);
        coins.coin_proofs[bin].push_back(*proof);
        bits[bin].push_back(*bit == 1);
      }
    }
    auto oblob = r.Blob();
    if (!oblob) {
      return std::nullopt;
    }
    auto output = ProverOutputMsg<G>::Deserialize(*oblob);
    if (!output) {
      return std::nullopt;
    }
    t.prover_coins.push_back(std::move(coins));
    t.public_bits.push_back(std::move(bits));
    t.prover_outputs.push_back(std::move(*output));
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return t;
}

struct AuditReport {
  Verdict verdict;
  std::vector<size_t> accepted_clients;
  std::vector<uint64_t> raw_histogram;

  bool accepted() const { return verdict.accepted(); }
};

// Re-verifies an entire run from public data. Mirrors every check the live
// verifier performs (Lines 3, 5-6, 12-13 of Figure 2) and recomputes the
// published histogram.
template <PrimeOrderGroup G>
AuditReport AuditTranscript(const PublicTranscript<G>& t, const ProtocolConfig& config,
                            const Pedersen<G>& ped, ThreadPool* pool = nullptr) {
  AuditReport report;

  if (auto error = config.Validate(); error.has_value()) {
    report.verdict = Verdict::Reject(VerdictCode::kInvalidConfig, kNoParty, error->Render());
    return report;
  }

  PublicVerifier<G> verifier(config, ped);

  // The auditor re-checks client uploads through whichever VerifyBackend the
  // config selects (src/verify/factory.h) -- the same pipeline the live run
  // used. The report's commitment products double as the client half of the
  // Eq. 10 check below: the audit path has no private share-consistency
  // filter, so they always cover exactly the accepted set.
  VerifyReport<G> validation = verifier.ValidateClientsReport(t.client_uploads, pool);
  report.accepted_clients = validation.accepted;

  const size_t bins = config.num_bins;
  using S = typename G::Scalar;
  std::vector<S> totals(bins, S::Zero());

  if (t.prover_coins.size() != config.num_provers ||
      t.prover_outputs.size() != config.num_provers ||
      t.public_bits.size() != config.num_provers) {
    report.verdict =
        Verdict::Reject(VerdictCode::kMalformedMessage, kNoParty, "transcript shape mismatch");
    return report;
  }

  for (size_t k = 0; k < config.num_provers; ++k) {
    if (!verifier.CheckCoinProofs(k, t.prover_coins[k], pool)) {
      report.verdict = Verdict::Reject(VerdictCode::kCoinProofInvalid, k,
                                       "audit: coin proof invalid");
      return report;
    }
    bool final_ok = validation.has_products()
                        ? verifier.CheckFinalWithProducts(validation.commitment_products[k],
                                                          t.prover_coins[k], t.public_bits[k],
                                                          t.prover_outputs[k])
                        : verifier.CheckFinal(k, t.client_uploads, report.accepted_clients,
                                              t.prover_coins[k], t.public_bits[k],
                                              t.prover_outputs[k]);
    if (!final_ok) {
      report.verdict =
          Verdict::Reject(VerdictCode::kFinalCheckFailed, k, "audit: Eq. 10 failed");
      return report;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      totals[bin] += t.prover_outputs[k].y[bin];
    }
  }

  report.raw_histogram.resize(bins);
  for (size_t bin = 0; bin < bins; ++bin) {
    auto v = totals[bin].ToU64();
    if (!v.has_value()) {
      report.verdict = Verdict::Reject(VerdictCode::kMalformedMessage, kNoParty,
                                       "audit: aggregate out of range");
      return report;
    }
    report.raw_histogram[bin] = *v;
  }
  report.verdict = Verdict::Accept();
  return report;
}

}  // namespace vdp

#endif  // SRC_CORE_AUDIT_H_
