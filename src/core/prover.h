// The prover Pv_k of Pi_Bin (Figure 2, right column).
//
// One instance per server. In the trusted-curator model (K = 1) the single
// prover holds plaintext inputs; with K >= 2 it holds additive shares. The
// virtual hooks exist so the adversarial provers in core/adversary.h can
// deviate at precisely the protocol steps the soundness proof enumerates.
#ifndef SRC_CORE_PROVER_H_
#define SRC_CORE_PROVER_H_

#include <memory>
#include <vector>

#include "src/core/client.h"
#include "src/core/messages.h"
#include "src/morra/morra.h"

namespace vdp {

template <PrimeOrderGroup G>
class Prover {
 public:
  using Element = typename G::Element;
  using Scalar = typename G::Scalar;

  Prover(size_t index, const ProtocolConfig& config, Pedersen<G> ped, SecureRng rng)
      : index_(index),
        config_(config),
        ped_(std::move(ped)),
        rng_(std::move(rng)),
        share_sum_(config.num_bins, Scalar::Zero()),
        randomness_sum_(config.num_bins, Scalar::Zero()) {}

  virtual ~Prover() = default;

  size_t index() const { return index_; }

  // Accumulates the shares of publicly validated clients (Line 2/10). The
  // driver feeds only clients on the public accepted record.
  virtual void LoadClientShares(const std::vector<ClientShareMsg<G>>& shares) {
    for (const auto& share : shares) {
      for (size_t bin = 0; bin < config_.num_bins; ++bin) {
        share_sum_[bin] += share.values[bin];
        randomness_sum_[bin] += share.randomness[bin];
      }
    }
  }

  // Line 4: sample private bits v_{j,bin} and commit; Lines 5-6 proofs ride
  // along (Fiat-Shamir).
  virtual ProverCoinsMsg<G> CommitCoins(ThreadPool* pool = nullptr) {
    const size_t bins = config_.num_bins;
    const size_t nb = config_.NumCoins();
    private_bits_.assign(bins, {});
    coin_randomness_.assign(bins, {});

    ProverCoinsMsg<G> msg;
    msg.coin_commitments.resize(bins);
    msg.coin_proofs.resize(bins);
    for (size_t bin = 0; bin < bins; ++bin) {
      std::vector<int> bits(nb);
      std::vector<Scalar> rs(nb);
      std::vector<Element> cs(nb);
      for (size_t j = 0; j < nb; ++j) {
        bits[j] = rng_.NextBit() ? 1 : 0;
        rs[j] = Scalar::Random(rng_);
        cs[j] = ped_.Commit(Scalar::FromU64(static_cast<uint64_t>(bits[j])), rs[j]);
      }
      msg.coin_proofs[bin] =
          OrProveBatch(ped_, cs, bits, rs, rng_, CoinProofContext(bin), pool);
      msg.coin_commitments[bin] = std::move(cs);
      private_bits_[bin] = std::move(bits);
      coin_randomness_[bin] = std::move(rs);
    }
    return msg;
  }

  // Line 7-8: the prover's Morra participant (adversaries may supply a
  // cheating one).
  virtual std::unique_ptr<MorraParty<G>> MakeMorraParty() {
    return std::make_unique<MorraParty<G>>(rng_.Fork("morra"));
  }
  virtual SeedMorraParty MakeSeedMorraParty() {
    return SeedMorraParty{rng_.Fork("seed-morra"), false, false};
  }

  // Line 9: receive the jointly generated public bits b_{j,bin}.
  virtual void ReceivePublicCoins(const std::vector<std::vector<bool>>& bits) {
    public_bits_ = bits;
  }

  // Lines 10-11. The opening randomness for flipped coins enters with a
  // negative sign because the verifier's Line-12 update replaces c' with
  // Com(1,0) * c'^{-1} (see DESIGN.md erratum #1).
  virtual ProverOutputMsg<G> ComputeOutput() {
    const size_t bins = config_.num_bins;
    const size_t nb = config_.NumCoins();
    ProverOutputMsg<G> out;
    out.y.resize(bins, Scalar::Zero());
    out.z.resize(bins, Scalar::Zero());
    for (size_t bin = 0; bin < bins; ++bin) {
      Scalar y = share_sum_[bin];
      Scalar z = randomness_sum_[bin];
      for (size_t j = 0; j < nb; ++j) {
        bool b = public_bits_[bin][j];
        int v = private_bits_[bin][j];
        int v_hat = b ? 1 - v : v;  // v XOR b, valid because v is a bit
        y += Scalar::FromU64(static_cast<uint64_t>(v_hat));
        if (b) {
          z -= coin_randomness_[bin][j];
        } else {
          z += coin_randomness_[bin][j];
        }
      }
      out.y[bin] = y;
      out.z[bin] = z;
    }
    return out;
  }

  std::string CoinProofContext(size_t bin) const {
    return config_.session_id + "/prover/" + std::to_string(index_) + "/coins/bin/" +
           std::to_string(bin);
  }

 protected:
  size_t index_;
  ProtocolConfig config_;
  Pedersen<G> ped_;
  SecureRng rng_;

  std::vector<Scalar> share_sum_;       // [M] sum of accepted client share values
  std::vector<Scalar> randomness_sum_;  // [M] sum of their commitment randomness
  std::vector<std::vector<int>> private_bits_;      // [M][nb]
  std::vector<std::vector<Scalar>> coin_randomness_;  // [M][nb]
  std::vector<std::vector<bool>> public_bits_;      // [M][nb]
};

}  // namespace vdp

#endif  // SRC_CORE_PROVER_H_
