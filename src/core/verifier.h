// The public verifier of Pi_Bin (Figure 2, left column).
//
// Everything the verifier consumes is broadcast, so any bystander can rerun
// these checks -- this is what makes the protocol publicly auditable
// (Table 2's "Auditable" column).
#ifndef SRC_CORE_VERIFIER_H_
#define SRC_CORE_VERIFIER_H_

#include <vector>

#include "src/batch/batch_or_proof.h"
#include "src/core/client.h"
#include "src/core/messages.h"
#include "src/core/verdict.h"
#include "src/shard/process_pool.h"
#include "src/shard/sharded_verifier.h"

namespace vdp {

template <PrimeOrderGroup G>
class PublicVerifier {
 public:
  using Element = typename G::Element;
  using Scalar = typename G::Scalar;

  PublicVerifier(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  const Pedersen<G>& pedersen() const { return ped_; }

  // Line 3: public client validation; returns indices of accepted clients.
  // Per-proof mode fans the independent validations across the pool; batch
  // mode (config.batch_verify) folds every OR proof of every client into one
  // random-linear-combination check (src/batch/batch_or_proof.h), falling
  // back to per-proof verification only when the combined check fails, so the
  // accepted set is identical either way. With config.num_verify_shards > 1
  // the uploads are partitioned into contiguous shards that batch-verify
  // independently (src/shard/sharded_verifier.h); the merged decisions are
  // again identical, and a failed batch re-checks only its own shard. With
  // config.verify_workers > 1 the shards additionally leave the process:
  // they are farmed out to verify_worker subprocesses over the wire format
  // (src/shard/process_pool.h), still decision-identical.
  std::vector<size_t> ValidateClients(const std::vector<ClientUploadMsg<G>>& uploads,
                                      std::vector<std::string>* reasons = nullptr,
                                      ThreadPool* pool = nullptr) const {
    if (UsesShardedPipeline()) {
      // Products are skipped here: this entry point only reports decisions.
      // Callers that feed CheckFinalWithProducts use ValidateClientsSharded.
      auto verdict = RunShardedPipeline(uploads, pool, /*compute_products=*/false);
      if (reasons != nullptr) {
        reasons->insert(reasons->end(), verdict.reasons.begin(), verdict.reasons.end());
      }
      return std::move(verdict.accepted);
    }
    std::vector<uint8_t> ok(uploads.size(), 0);
    std::vector<std::string> why(uploads.size());
    if (config_.batch_verify) {
      ValidateClientsBatched(uploads, pool, &ok, &why);
    } else {
      auto work = [&](size_t i) {
        ok[i] = ValidateClientUpload(uploads[i], i, config_, ped_, &why[i]) ? 1 : 0;
      };
      if (pool != nullptr) {
        pool->ParallelFor(uploads.size(), work);
      } else {
        for (size_t i = 0; i < uploads.size(); ++i) {
          work(i);
        }
      }
    }
    std::vector<size_t> accepted;
    for (size_t i = 0; i < uploads.size(); ++i) {
      if (ok[i] != 0) {
        accepted.push_back(i);
      } else if (reasons != nullptr) {
        reasons->push_back("client " + std::to_string(i) + ": " + why[i]);
      }
    }
    return accepted;
  }

  // Line 3, sharded: the full verdict including per-prover/per-bin products
  // of the accepted clients' commitments, which CheckFinalWithProducts can
  // consume so the Eq. 10 product is never recomputed from scratch.
  ShardedVerdict<G> ValidateClientsSharded(const std::vector<ClientUploadMsg<G>>& uploads,
                                           ThreadPool* pool = nullptr) const {
    return RunShardedPipeline(uploads, pool, /*compute_products=*/true);
  }

  // True when client validation runs through the shard combiner (in-process
  // shards, worker subprocesses, or both); RunProtocol and AuditTranscript
  // use this to decide whether a ShardedVerdict's products are available.
  bool UsesShardedPipeline() const {
    return config_.num_verify_shards > 1 || config_.verify_workers > 1;
  }

  // Lines 5-6: every private coin commitment must prove membership in LBit.
  bool CheckCoinProofs(size_t prover_index, const ProverCoinsMsg<G>& msg,
                       ThreadPool* pool = nullptr) const {
    const size_t bins = config_.num_bins;
    const size_t nb = config_.NumCoins();
    if (msg.coin_commitments.size() != bins || msg.coin_proofs.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (msg.coin_commitments[bin].size() != nb || msg.coin_proofs[bin].size() != nb) {
        return false;
      }
    }
    if (config_.batch_verify) {
      // All bins' coin proofs in one RLC check. An all-valid message always
      // accepts (completeness is exact), and a failed batch implies some
      // proof is invalid, so the boolean verdict matches the per-proof path.
      std::vector<OrInstance<G>> instances;
      instances.reserve(bins * nb);
      for (size_t bin = 0; bin < bins; ++bin) {
        std::string context = CoinProofContext(prover_index, bin);
        for (size_t j = 0; j < nb; ++j) {
          instances.push_back({msg.coin_commitments[bin][j], msg.coin_proofs[bin][j],
                               context + "/" + std::to_string(j)});
        }
      }
      return BatchOrVerify(ped_, instances, pool);
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (!OrVerifyBatch(ped_, msg.coin_commitments[bin], msg.coin_proofs[bin],
                         CoinProofContext(prover_index, bin), pool)) {
        return false;
      }
    }
    return true;
  }

  // Line 12: fold the public bit into the coin commitment. When b = 1 the
  // committed value flips to 1 - v without the verifier ever seeing v:
  // Com(1,0) * Com(v,s)^{-1} = Com(1-v, -s).
  Element UpdateCoinCommitment(const Element& commitment, bool bit) const {
    if (!bit) {
      return commitment;
    }
    return G::Mul(ped_.Commit(Scalar::One(), Scalar::Zero()), G::Inverse(commitment));
  }

  // Line 13 (Eq. 10) for prover k: the product of accepted client-share
  // commitments and updated coin commitments must open to (y_k, z_k).
  bool CheckFinal(size_t prover_index, const std::vector<ClientUploadMsg<G>>& uploads,
                  const std::vector<size_t>& accepted_clients, const ProverCoinsMsg<G>& coins,
                  const std::vector<std::vector<bool>>& public_bits,
                  const ProverOutputMsg<G>& output) const {
    const size_t bins = config_.num_bins;
    if (output.y.size() != bins || output.z.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      Element product = G::Identity();
      for (size_t client : accepted_clients) {
        product = G::Mul(product, uploads[client].commitments[prover_index][bin]);
      }
      if (!CheckFinalBin(bin, product, coins, public_bits, output)) {
        return false;  // reject on the first bad bin, before touching the rest
      }
    }
    return true;
  }

  // Eq. 10 given the precomputed per-bin product of this prover's accepted
  // client commitments -- e.g. a ShardedVerdict's commitment_products[k]
  // (src/shard/sharded_verifier.h), so sharded validation's partial products
  // are reused instead of re-multiplying every accepted upload.
  bool CheckFinalWithProducts(const std::vector<Element>& client_products,
                              const ProverCoinsMsg<G>& coins,
                              const std::vector<std::vector<bool>>& public_bits,
                              const ProverOutputMsg<G>& output) const {
    const size_t bins = config_.num_bins;
    if (output.y.size() != bins || output.z.size() != bins ||
        client_products.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (!CheckFinalBin(bin, client_products[bin], coins, public_bits, output)) {
        return false;
      }
    }
    return true;
  }

 private:
  // Shared body of the sharded entry points: multi-process when
  // config.verify_workers > 1 (wire format + verify_worker subprocesses,
  // with blamed retries and in-process recovery), in-process sharding
  // otherwise. Both produce the same ShardedVerdict bit for bit.
  ShardedVerdict<G> RunShardedPipeline(const std::vector<ClientUploadMsg<G>>& uploads,
                                       ThreadPool* pool, bool compute_products) const {
    if (config_.verify_workers > 1) {
      ProcessPoolOptions options;
      options.num_workers = config_.verify_workers;
      MultiprocessVerifier<G> verifier(config_, ped_, std::move(options));
      return verifier.VerifyAll(uploads, compute_products);
    }
    return ShardedVerifier<G>::VerifyAll(config_, ped_, uploads, pool, compute_products);
  }

  // One bin of Eq. 10: client_product times the updated coin commitments
  // must open to (y_bin, z_bin).
  bool CheckFinalBin(size_t bin, const Element& client_product, const ProverCoinsMsg<G>& coins,
                     const std::vector<std::vector<bool>>& public_bits,
                     const ProverOutputMsg<G>& output) const {
    const size_t nb = config_.NumCoins();
    Element lhs = client_product;
    for (size_t j = 0; j < nb; ++j) {
      lhs = G::Mul(lhs, UpdateCoinCommitment(coins.coin_commitments[bin][j],
                                             public_bits[bin][j]));
    }
    return lhs == ped_.Commit(output.y[bin], output.z[bin]);
  }

  std::string CoinProofContext(size_t prover_index, size_t bin) const {
    return config_.session_id + "/prover/" + std::to_string(prover_index) + "/coins/bin/" +
           std::to_string(bin);
  }

  // Batch client validation: structural checks per client (parallel), then
  // one RLC check over every bin proof of every structurally valid client,
  // with per-proof blame attribution only when the batch fails. Delegates to
  // VerifyShard (src/shard/sharded_verifier.h) as a single whole-stream
  // shard -- one implementation serves both the monolithic and the sharded
  // pipeline, so their decisions cannot drift apart.
  void ValidateClientsBatched(const std::vector<ClientUploadMsg<G>>& uploads, ThreadPool* pool,
                              std::vector<uint8_t>* ok, std::vector<std::string>* why) const {
    ShardResult<G> result =
        VerifyShard(config_, ped_, uploads.data(), uploads.size(), /*base=*/0,
                    /*shard_index=*/0, pool, /*compute_products=*/false);
    for (size_t idx : result.accepted) {
      (*ok)[idx] = 1;
    }
    for (const auto& [idx, reason] : result.rejections) {
      (*why)[idx] = reason;
    }
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_CORE_VERIFIER_H_
