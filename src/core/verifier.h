// The public verifier of Pi_Bin (Figure 2, left column).
//
// Everything the verifier consumes is broadcast, so any bystander can rerun
// these checks -- this is what makes the protocol publicly auditable
// (Table 2's "Auditable" column).
#ifndef SRC_CORE_VERIFIER_H_
#define SRC_CORE_VERIFIER_H_

#include <vector>

#include "src/batch/batch_or_proof.h"
#include "src/core/client.h"
#include "src/core/messages.h"
#include "src/core/verdict.h"

namespace vdp {

template <PrimeOrderGroup G>
class PublicVerifier {
 public:
  using Element = typename G::Element;
  using Scalar = typename G::Scalar;

  PublicVerifier(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  const Pedersen<G>& pedersen() const { return ped_; }

  // Line 3: public client validation; returns indices of accepted clients.
  // Per-proof mode fans the independent validations across the pool; batch
  // mode (config.batch_verify) folds every OR proof of every client into one
  // random-linear-combination check (src/batch/batch_or_proof.h), falling
  // back to per-proof verification only when the combined check fails, so the
  // accepted set is identical either way.
  std::vector<size_t> ValidateClients(const std::vector<ClientUploadMsg<G>>& uploads,
                                      std::vector<std::string>* reasons = nullptr,
                                      ThreadPool* pool = nullptr) const {
    std::vector<uint8_t> ok(uploads.size(), 0);
    std::vector<std::string> why(uploads.size());
    if (config_.batch_verify) {
      ValidateClientsBatched(uploads, pool, &ok, &why);
    } else {
      auto work = [&](size_t i) {
        ok[i] = ValidateClientUpload(uploads[i], i, config_, ped_, &why[i]) ? 1 : 0;
      };
      if (pool != nullptr) {
        pool->ParallelFor(uploads.size(), work);
      } else {
        for (size_t i = 0; i < uploads.size(); ++i) {
          work(i);
        }
      }
    }
    std::vector<size_t> accepted;
    for (size_t i = 0; i < uploads.size(); ++i) {
      if (ok[i] != 0) {
        accepted.push_back(i);
      } else if (reasons != nullptr) {
        reasons->push_back("client " + std::to_string(i) + ": " + why[i]);
      }
    }
    return accepted;
  }

  // Lines 5-6: every private coin commitment must prove membership in LBit.
  bool CheckCoinProofs(size_t prover_index, const ProverCoinsMsg<G>& msg,
                       ThreadPool* pool = nullptr) const {
    const size_t bins = config_.num_bins;
    const size_t nb = config_.NumCoins();
    if (msg.coin_commitments.size() != bins || msg.coin_proofs.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (msg.coin_commitments[bin].size() != nb || msg.coin_proofs[bin].size() != nb) {
        return false;
      }
    }
    if (config_.batch_verify) {
      // All bins' coin proofs in one RLC check. An all-valid message always
      // accepts (completeness is exact), and a failed batch implies some
      // proof is invalid, so the boolean verdict matches the per-proof path.
      std::vector<OrInstance<G>> instances;
      instances.reserve(bins * nb);
      for (size_t bin = 0; bin < bins; ++bin) {
        std::string context = CoinProofContext(prover_index, bin);
        for (size_t j = 0; j < nb; ++j) {
          instances.push_back({msg.coin_commitments[bin][j], msg.coin_proofs[bin][j],
                               context + "/" + std::to_string(j)});
        }
      }
      return BatchOrVerify(ped_, instances, pool);
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (!OrVerifyBatch(ped_, msg.coin_commitments[bin], msg.coin_proofs[bin],
                         CoinProofContext(prover_index, bin), pool)) {
        return false;
      }
    }
    return true;
  }

  // Line 12: fold the public bit into the coin commitment. When b = 1 the
  // committed value flips to 1 - v without the verifier ever seeing v:
  // Com(1,0) * Com(v,s)^{-1} = Com(1-v, -s).
  Element UpdateCoinCommitment(const Element& commitment, bool bit) const {
    if (!bit) {
      return commitment;
    }
    return G::Mul(ped_.Commit(Scalar::One(), Scalar::Zero()), G::Inverse(commitment));
  }

  // Line 13 (Eq. 10) for prover k: the product of accepted client-share
  // commitments and updated coin commitments must open to (y_k, z_k).
  bool CheckFinal(size_t prover_index, const std::vector<ClientUploadMsg<G>>& uploads,
                  const std::vector<size_t>& accepted_clients, const ProverCoinsMsg<G>& coins,
                  const std::vector<std::vector<bool>>& public_bits,
                  const ProverOutputMsg<G>& output) const {
    const size_t bins = config_.num_bins;
    const size_t nb = config_.NumCoins();
    if (output.y.size() != bins || output.z.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      Element lhs = G::Identity();
      for (size_t client : accepted_clients) {
        lhs = G::Mul(lhs, uploads[client].commitments[prover_index][bin]);
      }
      for (size_t j = 0; j < nb; ++j) {
        lhs = G::Mul(lhs, UpdateCoinCommitment(coins.coin_commitments[bin][j],
                                               public_bits[bin][j]));
      }
      if (lhs != ped_.Commit(output.y[bin], output.z[bin])) {
        return false;
      }
    }
    return true;
  }

 private:
  std::string CoinProofContext(size_t prover_index, size_t bin) const {
    return config_.session_id + "/prover/" + std::to_string(prover_index) + "/coins/bin/" +
           std::to_string(bin);
  }

  // Batch client validation: structural checks per client (parallel), then
  // one RLC check over every bin proof of every structurally valid client.
  // Only a failed batch -- i.e. at least one cheating client -- pays for
  // per-proof re-verification to attribute blame.
  void ValidateClientsBatched(const std::vector<ClientUploadMsg<G>>& uploads, ThreadPool* pool,
                              std::vector<uint8_t>* ok, std::vector<std::string>* why) const {
    const size_t n = uploads.size();
    std::vector<std::vector<Element>> aggregated(n);
    auto structure = [&](size_t i) {
      auto agg = ClientUploadStructure(uploads[i], config_, ped_, &(*why)[i]);
      if (agg.has_value()) {
        aggregated[i] = std::move(*agg);
        (*ok)[i] = 1;
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, structure);
    } else {
      for (size_t i = 0; i < n; ++i) {
        structure(i);
      }
    }

    std::vector<OrInstance<G>> instances;
    for (size_t i = 0; i < n; ++i) {
      if ((*ok)[i] == 0) {
        continue;
      }
      for (size_t bin = 0; bin < aggregated[i].size(); ++bin) {
        instances.push_back({aggregated[i][bin], uploads[i].bin_proofs[bin],
                             ClientProofContext(config_.session_id, i, bin)});
      }
    }
    if (BatchOrVerify(ped_, instances, pool)) {
      return;
    }
    // Some proof in the batch is invalid; rerun the per-proof oracle to find
    // the offending clients (decisions stay bit-identical to per-proof mode).
    // The structural pass already succeeded for these clients, so only the OR
    // proofs are re-checked, against the cached aggregated commitments.
    auto recheck = [&](size_t i) {
      if ((*ok)[i] == 0) {
        return;
      }
      for (size_t bin = 0; bin < aggregated[i].size(); ++bin) {
        if (!OrVerify(ped_, aggregated[i][bin], uploads[i].bin_proofs[bin],
                      ClientProofContext(config_.session_id, i, bin))) {
          (*why)[i] = "bin OR proof invalid";
          (*ok)[i] = 0;
          return;
        }
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, recheck);
    } else {
      for (size_t i = 0; i < n; ++i) {
        recheck(i);
      }
    }
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_CORE_VERIFIER_H_
