// The public verifier of Pi_Bin (Figure 2, left column).
//
// Everything the verifier consumes is broadcast, so any bystander can rerun
// these checks -- this is what makes the protocol publicly auditable
// (Table 2's "Auditable" column).
#ifndef SRC_CORE_VERIFIER_H_
#define SRC_CORE_VERIFIER_H_

#include <vector>

#include "src/batch/batch_or_proof.h"
#include "src/core/client.h"
#include "src/core/messages.h"
#include "src/core/verdict.h"
#include "src/verify/factory.h"

namespace vdp {

template <PrimeOrderGroup G>
class PublicVerifier {
 public:
  using Element = typename G::Element;
  using Scalar = typename G::Scalar;

  PublicVerifier(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  const Pedersen<G>& pedersen() const { return ped_; }

  // Line 3: public client validation, executed by whichever VerifyBackend
  // the config's flags select (src/verify/factory.h owns that policy; all
  // backends are decision-identical). Returns the full structured report:
  // accepted indices, typed rejection reasons, and -- unless
  // compute_products is false -- the per-prover/per-bin products of accepted
  // commitments that CheckFinalWithProducts consumes, so the Eq. 10 product
  // is never recomputed from scratch.
  VerifyReport<G> ValidateClientsReport(const std::vector<ClientUploadMsg<G>>& uploads,
                                        ThreadPool* pool = nullptr,
                                        bool compute_products = true) const {
    VerifyOptions options;
    options.compute_products = compute_products;
    options.pool = pool;
    return MakeVerifyBackend<G>(config_, ped_)->VerifyAll(uploads, options);
  }

  // Line 3, accepted indices only. Rendered rejection reasons (the canonical
  // "client <i>: <why>" strings) are appended to *reasons when provided.
  std::vector<size_t> ValidateClients(const std::vector<ClientUploadMsg<G>>& uploads,
                                      std::vector<std::string>* reasons = nullptr,
                                      ThreadPool* pool = nullptr) const {
    VerifyReport<G> report =
        ValidateClientsReport(uploads, pool, /*compute_products=*/false);
    if (reasons != nullptr) {
      for (const RejectionReason& r : report.rejections) {
        reasons->push_back(r.Render());
      }
    }
    return std::move(report.accepted);
  }

  // Lines 5-6: every private coin commitment must prove membership in LBit.
  bool CheckCoinProofs(size_t prover_index, const ProverCoinsMsg<G>& msg,
                       ThreadPool* pool = nullptr) const {
    const size_t bins = config_.num_bins;
    const size_t nb = config_.NumCoins();
    if (msg.coin_commitments.size() != bins || msg.coin_proofs.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (msg.coin_commitments[bin].size() != nb || msg.coin_proofs[bin].size() != nb) {
        return false;
      }
    }
    if (config_.batch_verify) {
      // All bins' coin proofs in one RLC check. An all-valid message always
      // accepts (completeness is exact), and a failed batch implies some
      // proof is invalid, so the boolean verdict matches the per-proof path.
      std::vector<OrInstance<G>> instances;
      instances.reserve(bins * nb);
      for (size_t bin = 0; bin < bins; ++bin) {
        std::string context = CoinProofContext(prover_index, bin);
        for (size_t j = 0; j < nb; ++j) {
          instances.push_back({msg.coin_commitments[bin][j], msg.coin_proofs[bin][j],
                               context + "/" + std::to_string(j)});
        }
      }
      return BatchOrVerify(ped_, instances, pool);
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (!OrVerifyBatch(ped_, msg.coin_commitments[bin], msg.coin_proofs[bin],
                         CoinProofContext(prover_index, bin), pool)) {
        return false;
      }
    }
    return true;
  }

  // Line 12: fold the public bit into the coin commitment. When b = 1 the
  // committed value flips to 1 - v without the verifier ever seeing v:
  // Com(1,0) * Com(v,s)^{-1} = Com(1-v, -s).
  Element UpdateCoinCommitment(const Element& commitment, bool bit) const {
    if (!bit) {
      return commitment;
    }
    return G::Mul(ped_.Commit(Scalar::One(), Scalar::Zero()), G::Inverse(commitment));
  }

  // Line 13 (Eq. 10) for prover k: the product of accepted client-share
  // commitments and updated coin commitments must open to (y_k, z_k).
  bool CheckFinal(size_t prover_index, const std::vector<ClientUploadMsg<G>>& uploads,
                  const std::vector<size_t>& accepted_clients, const ProverCoinsMsg<G>& coins,
                  const std::vector<std::vector<bool>>& public_bits,
                  const ProverOutputMsg<G>& output) const {
    const size_t bins = config_.num_bins;
    if (output.y.size() != bins || output.z.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      Element product = G::Identity();
      for (size_t client : accepted_clients) {
        product = G::Mul(product, uploads[client].commitments[prover_index][bin]);
      }
      if (!CheckFinalBin(bin, product, coins, public_bits, output)) {
        return false;  // reject on the first bad bin, before touching the rest
      }
    }
    return true;
  }

  // Eq. 10 given the precomputed per-bin product of this prover's accepted
  // client commitments -- a VerifyReport's commitment_products[k]
  // (src/verify/report.h), so validation's products are reused instead of
  // re-multiplying every accepted upload.
  bool CheckFinalWithProducts(const std::vector<Element>& client_products,
                              const ProverCoinsMsg<G>& coins,
                              const std::vector<std::vector<bool>>& public_bits,
                              const ProverOutputMsg<G>& output) const {
    const size_t bins = config_.num_bins;
    if (output.y.size() != bins || output.z.size() != bins ||
        client_products.size() != bins) {
      return false;
    }
    for (size_t bin = 0; bin < bins; ++bin) {
      if (!CheckFinalBin(bin, client_products[bin], coins, public_bits, output)) {
        return false;
      }
    }
    return true;
  }

 private:
  // One bin of Eq. 10: client_product times the updated coin commitments
  // must open to (y_bin, z_bin).
  bool CheckFinalBin(size_t bin, const Element& client_product, const ProverCoinsMsg<G>& coins,
                     const std::vector<std::vector<bool>>& public_bits,
                     const ProverOutputMsg<G>& output) const {
    const size_t nb = config_.NumCoins();
    Element lhs = client_product;
    for (size_t j = 0; j < nb; ++j) {
      lhs = G::Mul(lhs, UpdateCoinCommitment(coins.coin_commitments[bin][j],
                                             public_bits[bin][j]));
    }
    return lhs == ped_.Commit(output.y[bin], output.z[bin]);
  }

  std::string CoinProofContext(size_t prover_index, size_t bin) const {
    return config_.session_id + "/prover/" + std::to_string(prover_index) + "/coins/bin/" +
           std::to_string(bin);
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_CORE_VERIFIER_H_
