// Protocol verdicts: every way a run can fail, with attribution.
//
// Failures are values, not exceptions -- a rejected run is a *result* the
// public verifier reports (and, per the paper, a public record of who
// cheated), not an error condition inside the library.
#ifndef SRC_CORE_VERDICT_H_
#define SRC_CORE_VERDICT_H_

#include <cstdint>
#include <string>

namespace vdp {

enum class VerdictCode {
  kAccept,
  kClientRejected,      // client input failed validation (expected; excluded)
  kCoinProofInvalid,    // prover's private coin is not a commitment to a bit (Line 5-6)
  kMorraAborted,        // public-coin generation failed / participant cheated (Line 7-8)
  kFinalCheckFailed,    // commitment product mismatch (Line 13, Eq. 10)
  kMalformedMessage,    // undecodable protocol message
  kInvalidConfig,       // ProtocolConfig::Validate() rejected the parameters
};

inline const char* VerdictCodeName(VerdictCode code) {
  switch (code) {
    case VerdictCode::kAccept:
      return "accept";
    case VerdictCode::kClientRejected:
      return "client-rejected";
    case VerdictCode::kCoinProofInvalid:
      return "coin-proof-invalid";
    case VerdictCode::kMorraAborted:
      return "morra-aborted";
    case VerdictCode::kFinalCheckFailed:
      return "final-check-failed";
    case VerdictCode::kMalformedMessage:
      return "malformed-message";
    case VerdictCode::kInvalidConfig:
      return "invalid-config";
  }
  return "unknown";
}

inline constexpr size_t kNoParty = static_cast<size_t>(-1);

struct Verdict {
  VerdictCode code = VerdictCode::kAccept;
  size_t cheating_prover = kNoParty;  // index of the prover caught cheating
  std::string detail;

  bool accepted() const { return code == VerdictCode::kAccept; }

  static Verdict Accept() { return Verdict{}; }
  static Verdict Reject(VerdictCode code, size_t prover, std::string detail) {
    return Verdict{code, prover, std::move(detail)};
  }
};

}  // namespace vdp

#endif  // SRC_CORE_VERDICT_H_
