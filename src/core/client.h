// Client-side input preparation and the public validation rule (Line 2-3 of
// Figure 2).
//
// A client holding choice x builds: additive shares of the (bit or one-hot)
// encoding for each of the K provers, Pedersen commitments to every share
// (broadcast publicly), a Sigma-OR proof per bin that the *aggregated*
// commitment opens to a bit, and -- for M > 1 -- the total randomness that
// opens the product of all bin commitments to exactly one (one-hot check).
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <string>
#include <vector>

#include "src/commit/pedersen.h"
#include "src/core/messages.h"
#include "src/core/params.h"
#include "src/share/additive.h"
#include "src/verify/report.h"

namespace vdp {

template <PrimeOrderGroup G>
struct ClientBundle {
  ClientUploadMsg<G> upload;              // public broadcast
  std::vector<ClientShareMsg<G>> shares;  // [K], sent privately to each prover
};

// Fiat-Shamir context for client i's bin-m validity proof.
inline std::string ClientProofContext(const std::string& session_id, size_t client_index,
                                      size_t bin) {
  return session_id + "/client/" + std::to_string(client_index) + "/bin/" + std::to_string(bin);
}

// Builds an honest client's messages. For M == 1, `choice` is the bit value
// (0 or 1); for M > 1, `choice` selects the one-hot bin and must be < M.
template <PrimeOrderGroup G>
ClientBundle<G> MakeClientBundle(uint32_t choice, size_t client_index,
                                 const ProtocolConfig& config, const Pedersen<G>& ped,
                                 SecureRng& rng) {
  using S = typename G::Scalar;
  const size_t k = config.num_provers;
  const size_t m = config.num_bins;

  ClientBundle<G> bundle;
  bundle.shares.resize(k);
  bundle.upload.commitments.resize(k);
  for (size_t p = 0; p < k; ++p) {
    bundle.shares[p].values.resize(m);
    bundle.shares[p].randomness.resize(m);
    bundle.upload.commitments[p].resize(m);
  }

  S total_randomness = S::Zero();
  for (size_t bin = 0; bin < m; ++bin) {
    int bit = (m == 1) ? static_cast<int>(choice) : (choice == bin ? 1 : 0);
    S value = S::FromU64(static_cast<uint64_t>(bit));
    auto value_shares = ShareAdditive(value, k, rng);

    S bin_randomness = S::Zero();
    for (size_t p = 0; p < k; ++p) {
      S r = S::Random(rng);
      bundle.shares[p].values[bin] = value_shares[p];
      bundle.shares[p].randomness[bin] = r;
      bundle.upload.commitments[p][bin] = ped.Commit(value_shares[p], r);
      bin_randomness += r;
    }
    total_randomness += bin_randomness;

    // Aggregated commitment c_{i,bin} = prod_k c_{i,k,bin} = Com(bit, sum r).
    auto aggregated = G::Identity();
    for (size_t p = 0; p < k; ++p) {
      aggregated = G::Mul(aggregated, bundle.upload.commitments[p][bin]);
    }
    bundle.upload.bin_proofs.push_back(OrProve(
        ped, aggregated, bit, bin_randomness, rng,
        ClientProofContext(config.session_id, client_index, bin)));
  }
  bundle.upload.sum_randomness = total_randomness;
  return bundle;
}

// The structural half of the Line-3 check: upload shape, per-bin aggregated
// commitments, and the one-hot opening (for M > 1). On success returns the
// [M] aggregated commitments whose OR proofs remain to be verified -- the
// per-proof path checks them inline (ValidateClientUpload) while the batch
// verifier (src/batch/batch_or_proof.h) checks them all at once.
template <PrimeOrderGroup G>
std::optional<std::vector<typename G::Element>> ClientUploadStructure(
    const ClientUploadMsg<G>& upload, const ProtocolConfig& config, const Pedersen<G>& ped,
    std::string* reason = nullptr) {
  auto fail = [&](const char* why) {
    if (reason != nullptr) {
      *reason = why;
    }
    return std::nullopt;
  };
  const size_t k = config.num_provers;
  const size_t m = config.num_bins;
  if (upload.commitments.size() != k || upload.bin_proofs.size() != m) {
    return fail(kDetailMalformedUpload);
  }
  for (const auto& row : upload.commitments) {
    if (row.size() != m) {
      return fail(kDetailMalformedUpload);
    }
  }

  std::vector<typename G::Element> aggregated(m);
  auto product_all = G::Identity();
  for (size_t bin = 0; bin < m; ++bin) {
    auto agg = G::Identity();
    for (size_t p = 0; p < k; ++p) {
      agg = G::Mul(agg, upload.commitments[p][bin]);
    }
    product_all = G::Mul(product_all, agg);
    aggregated[bin] = agg;
  }

  if (m > 1) {
    // One-hot: the product over bins must open to exactly 1 with the
    // disclosed total randomness (Appendix C, final paragraph).
    using S = typename G::Scalar;
    if (!ped.Verify(product_all, S::One(), upload.sum_randomness)) {
      return fail(kDetailNotOneHot);
    }
  }
  return aggregated;
}

// The public Line-3 check. Anyone (verifier, provers, bystanders) can run it
// from broadcast data alone; this is what makes the client record public and
// resolves the Figure 1 disputes.
template <PrimeOrderGroup G>
bool ValidateClientUpload(const ClientUploadMsg<G>& upload, size_t client_index,
                          const ProtocolConfig& config, const Pedersen<G>& ped,
                          std::string* reason = nullptr) {
  auto aggregated = ClientUploadStructure(upload, config, ped, reason);
  if (!aggregated.has_value()) {
    return false;
  }
  for (size_t bin = 0; bin < aggregated->size(); ++bin) {
    if (!OrVerify(ped, (*aggregated)[bin], upload.bin_proofs[bin],
                  ClientProofContext(config.session_id, client_index, bin))) {
      if (reason != nullptr) {
        *reason = kDetailProofInvalid;
      }
      return false;
    }
  }
  return true;
}

// Prover-side consistency check of a privately received share against the
// public commitments (a malicious client could send garbage to one prover).
template <PrimeOrderGroup G>
bool ClientShareConsistent(const ClientShareMsg<G>& share,
                           const std::vector<typename G::Element>& expected_commitments,
                           const Pedersen<G>& ped) {
  if (share.values.size() != expected_commitments.size() ||
      share.randomness.size() != expected_commitments.size()) {
    return false;
  }
  for (size_t bin = 0; bin < share.values.size(); ++bin) {
    if (!ped.Verify(expected_commitments[bin], share.values[bin], share.randomness[bin])) {
      return false;
    }
  }
  return true;
}

}  // namespace vdp

#endif  // SRC_CORE_CLIENT_H_
