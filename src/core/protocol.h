// End-to-end orchestration of Pi_Bin: clients -> provers -> public verifier,
// over in-memory channels, with per-stage timing (the rows of Table 1).
//
// The trusted-curator model is K = 1; the client-server MPC model is K >= 2.
// The driver is deliberately the *only* place where messages flow between
// parties, so tests can substitute adversarial provers/clients and observe
// exactly what a real deployment's network would carry.
#ifndef SRC_CORE_PROTOCOL_H_
#define SRC_CORE_PROTOCOL_H_

#include <memory>
#include <vector>

#include "src/common/timer.h"
#include "src/core/prover.h"
#include "src/core/verifier.h"

namespace vdp {

// Wall-clock cost of each protocol stage, accumulated across provers.
// Columns of Table 1: Sigma-proof, Sigma-verification, Morra, Aggregation,
// Check (client validation is reported separately; it is Figure 4's subject).
struct StageTimings {
  double client_validate_ms = 0;
  double sigma_prove_ms = 0;
  double sigma_verify_ms = 0;
  double morra_ms = 0;
  double aggregate_ms = 0;
  double check_ms = 0;

  double TotalMs() const {
    return client_validate_ms + sigma_prove_ms + sigma_verify_ms + morra_ms + aggregate_ms +
           check_ms;
  }
};

struct ProtocolResult {
  Verdict verdict;
  // Raw per-bin outputs y_m = sum_k y_{k,m} (carry the public +K*nb/2 offset).
  std::vector<uint64_t> raw_histogram;
  // Debiased point estimates y_m - K*nb/2.
  std::vector<double> histogram;
  std::vector<size_t> accepted_clients;
  StageTimings timings;

  bool accepted() const { return verdict.accepted(); }
};

// Everything that crossed the public channel during one run; persist it and
// any bystander can re-verify with AuditTranscript (core/audit.h).
template <PrimeOrderGroup G>
struct PublicTranscript {
  std::vector<ClientUploadMsg<G>> client_uploads;
  std::vector<ProverCoinsMsg<G>> prover_coins;              // [K]
  std::vector<std::vector<std::vector<bool>>> public_bits;  // [K][M][nb]
  std::vector<ProverOutputMsg<G>> prover_outputs;           // [K]
};

// Runs Morra between one prover and the public verifier to produce
// bins * nb public bits. Returns empty bits on abort.
template <PrimeOrderGroup G>
std::vector<std::vector<bool>> RunProverMorra(Prover<G>& prover, const Pedersen<G>& ped,
                                              const ProtocolConfig& config, SecureRng& vrf_rng) {
  const size_t bins = config.num_bins;
  const size_t nb = config.NumCoins();
  const size_t total = bins * nb;

  std::vector<bool> flat;
  if (config.morra_mode == MorraMode::kPedersen) {
    auto prover_party = prover.MakeMorraParty();
    MorraParty<G> verifier_party(vrf_rng.Fork("morra-verifier"));
    std::vector<MorraParty<G>*> parties = {prover_party.get(), &verifier_party};
    auto outcome = RunMorra(parties, total, ped);
    if (outcome.aborted) {
      return {};
    }
    flat = std::move(outcome.coins);
  } else {
    std::vector<SeedMorraParty> parties;
    parties.push_back(prover.MakeSeedMorraParty());
    parties.push_back(SeedMorraParty{vrf_rng.Fork("seed-morra-verifier"), false, false});
    auto outcome = RunSeedMorra(parties, total);
    if (outcome.aborted) {
      return {};
    }
    flat = std::move(outcome.coins);
  }

  std::vector<std::vector<bool>> bits(bins);
  for (size_t bin = 0; bin < bins; ++bin) {
    bits[bin].assign(flat.begin() + static_cast<long>(bin * nb),
                     flat.begin() + static_cast<long>((bin + 1) * nb));
  }
  return bits;
}

template <PrimeOrderGroup G>
ProtocolResult RunProtocol(const ProtocolConfig& config, const Pedersen<G>& ped,
                           const std::vector<ClientBundle<G>>& clients,
                           const std::vector<Prover<G>*>& provers, SecureRng& verifier_rng,
                           ThreadPool* pool = nullptr,
                           PublicTranscript<G>* record = nullptr) {
  ProtocolResult result;

  // A nonsensical configuration is rejected with attribution before any
  // cryptographic work (and before the backend factory would throw).
  if (auto error = config.Validate(); error.has_value()) {
    result.verdict = Verdict::Reject(VerdictCode::kInvalidConfig, kNoParty, error->Render());
    return result;
  }

  PublicVerifier<G> verifier(config, ped);
  Stopwatch timer;

  // --- Line 3: public client validation ---------------------------------
  std::vector<ClientUploadMsg<G>> uploads;
  uploads.reserve(clients.size());
  for (const auto& c : clients) {
    uploads.push_back(c.upload);
  }
  if (record != nullptr) {
    record->client_uploads = uploads;
  }
  timer.Reset();
  // Validation runs through whichever VerifyBackend the config selects
  // (src/verify/factory.h); every backend returns the same structured
  // report. Its per-prover/per-bin commitment products are exactly the
  // client half of the Eq. 10 product, so the final check below can reuse
  // them instead of re-multiplying every accepted upload.
  VerifyReport<G> report = verifier.ValidateClientsReport(uploads, pool);
  const std::vector<size_t>& accepted = report.accepted;

  // Prover-side share consistency: a client whose private share does not
  // match its public commitment is excluded (publicly attributable, since
  // the prover can exhibit the mismatching share).
  std::vector<size_t> consistent;
  for (size_t idx : accepted) {
    bool ok = true;
    for (const auto* prover : provers) {
      const auto& share = clients[idx].shares[prover->index()];
      if (!ClientShareConsistent(share, uploads[idx].commitments[prover->index()], ped)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      consistent.push_back(idx);
    }
  }
  result.accepted_clients = consistent;
  result.timings.client_validate_ms = timer.ElapsedMillis();

  // --- Line 2/10 prep: provers ingest accepted shares -------------------
  timer.Reset();
  for (Prover<G>* prover : provers) {
    std::vector<ClientShareMsg<G>> shares;
    shares.reserve(consistent.size());
    for (size_t idx : consistent) {
      shares.push_back(clients[idx].shares[prover->index()]);
    }
    prover->LoadClientShares(shares);
  }
  double load_ms = timer.ElapsedMillis();

  // --- Lines 4-13 per prover --------------------------------------------
  const size_t bins = config.num_bins;
  std::vector<uint64_t> raw(bins, 0);
  using S = typename G::Scalar;
  std::vector<S> totals(bins, S::Zero());

  for (Prover<G>* prover : provers) {
    // Line 4 + Fiat-Shamir proofs.
    timer.Reset();
    ProverCoinsMsg<G> coins = prover->CommitCoins(pool);
    result.timings.sigma_prove_ms += timer.ElapsedMillis();

    // Lines 5-6.
    timer.Reset();
    bool proofs_ok = verifier.CheckCoinProofs(prover->index(), coins, pool);
    result.timings.sigma_verify_ms += timer.ElapsedMillis();
    if (!proofs_ok) {
      result.verdict = Verdict::Reject(VerdictCode::kCoinProofInvalid, prover->index(),
                                       "private coin commitment failed O_OR");
      return result;
    }

    // Lines 7-8.
    timer.Reset();
    auto bits = RunProverMorra(*prover, ped, config, verifier_rng);
    result.timings.morra_ms += timer.ElapsedMillis();
    if (bits.empty()) {
      result.verdict = Verdict::Reject(VerdictCode::kMorraAborted, prover->index(),
                                       "public coin generation aborted");
      return result;
    }

    // Lines 9-11.
    timer.Reset();
    prover->ReceivePublicCoins(bits);
    ProverOutputMsg<G> output = prover->ComputeOutput();
    result.timings.aggregate_ms += timer.ElapsedMillis();
    if (output.y.size() != bins || output.z.size() != bins) {
      result.verdict = Verdict::Reject(VerdictCode::kMalformedMessage, prover->index(),
                                       "output shape mismatch");
      return result;
    }

    if (record != nullptr) {
      record->prover_coins.push_back(coins);
      record->public_bits.push_back(bits);
      record->prover_outputs.push_back(output);
    }

    // Lines 12-13. The report's products cover the *accepted* set; they are
    // only reusable when no accepted client was dropped by the private
    // share-consistency filter above (the common case -- that filter only
    // fires on clients who sent garbage to a prover but valid broadcasts).
    timer.Reset();
    bool final_ok =
        (report.has_products() && consistent.size() == report.accepted.size())
            ? verifier.CheckFinalWithProducts(report.commitment_products[prover->index()],
                                              coins, bits, output)
            : verifier.CheckFinal(prover->index(), uploads, consistent, coins, bits, output);
    result.timings.check_ms += timer.ElapsedMillis();
    if (!final_ok) {
      result.verdict = Verdict::Reject(VerdictCode::kFinalCheckFailed, prover->index(),
                                       "commitment product does not open to (y_k, z_k)");
      return result;
    }

    for (size_t bin = 0; bin < bins; ++bin) {
      totals[bin] += output.y[bin];
    }
  }
  result.timings.aggregate_ms += load_ms;

  // --- Publish ------------------------------------------------------------
  result.raw_histogram.resize(bins);
  result.histogram.resize(bins);
  for (size_t bin = 0; bin < bins; ++bin) {
    auto as_u64 = totals[bin].ToU64();
    if (!as_u64.has_value()) {
      result.verdict = Verdict::Reject(VerdictCode::kMalformedMessage, kNoParty,
                                       "aggregate output out of range");
      return result;
    }
    result.raw_histogram[bin] = *as_u64;
    result.histogram[bin] = static_cast<double>(*as_u64) - config.ExpectedOffset();
  }
  result.verdict = Verdict::Accept();
  return result;
}

// Convenience wrapper: honest clients + honest provers from plaintext values.
// For M == 1, each value is a bit; for M > 1, each value is a bin choice.
template <PrimeOrderGroup G>
ProtocolResult RunHonestProtocol(const ProtocolConfig& config,
                                 const std::vector<uint32_t>& client_values, SecureRng& rng,
                                 ThreadPool* pool = nullptr) {
  Pedersen<G> ped;
  std::vector<ClientBundle<G>> clients;
  clients.reserve(client_values.size());
  SecureRng client_rng = rng.Fork("clients");
  for (size_t i = 0; i < client_values.size(); ++i) {
    clients.push_back(MakeClientBundle(client_values[i], i, config, ped, client_rng));
  }
  std::vector<std::unique_ptr<Prover<G>>> owned;
  std::vector<Prover<G>*> provers;
  for (size_t k = 0; k < config.num_provers; ++k) {
    owned.push_back(std::make_unique<Prover<G>>(k, config, ped,
                                                rng.Fork("prover-" + std::to_string(k))));
    provers.push_back(owned.back().get());
  }
  SecureRng verifier_rng = rng.Fork("verifier");
  return RunProtocol(config, ped, clients, provers, verifier_rng, pool);
}

}  // namespace vdp

#endif  // SRC_CORE_PROTOCOL_H_
