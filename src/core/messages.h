// Wire messages of Pi_Bin (Figure 2), with serialization.
//
// Naming follows the paper: c/r for client input commitments and randomness,
// c'/s for the prover's private-coin commitments and randomness; y_k/z_k for
// the prover outputs.
#ifndef SRC_CORE_MESSAGES_H_
#define SRC_CORE_MESSAGES_H_

#include <vector>

#include "src/common/serialize.h"
#include "src/group/group.h"
#include "src/sigma/or_proof.h"

namespace vdp {

// Client i's private message to prover k: one share (+ its commitment
// randomness) per histogram bin. (Line 2 of Figure 2.)
template <PrimeOrderGroup G>
struct ClientShareMsg {
  std::vector<typename G::Scalar> values;      // [M]: k'th additive share of x_{i,m}
  std::vector<typename G::Scalar> randomness;  // [M]: r_{i,k,m}

  Bytes Serialize() const {
    Writer w;
    w.U32(static_cast<uint32_t>(values.size()));
    for (size_t m = 0; m < values.size(); ++m) {
      w.Blob(values[m].Encode());
      w.Blob(randomness[m].Encode());
    }
    return w.Take();
  }

  static std::optional<ClientShareMsg> Deserialize(BytesView data) {
    Reader r(data);
    auto count = r.U32();
    if (!count) {
      return std::nullopt;
    }
    ClientShareMsg msg;
    for (uint32_t m = 0; m < *count; ++m) {
      auto vb = r.Blob();
      auto rb = r.Blob();
      if (!vb || !rb) {
        return std::nullopt;
      }
      auto v = G::Scalar::Decode(*vb);
      auto rr = G::Scalar::Decode(*rb);
      if (!v || !rr) {
        return std::nullopt;
      }
      msg.values.push_back(*v);
      msg.randomness.push_back(*rr);
    }
    if (!r.AtEnd()) {
      return std::nullopt;
    }
    return msg;
  }
};

// Client i's public broadcast: commitments to every share of every bin plus
// the validity proofs the (public) verifier checks at Line 3.
template <PrimeOrderGroup G>
struct ClientUploadMsg {
  // commitments[k][m] = Com([x_{i,m}]_k, r_{i,k,m}).
  std::vector<std::vector<typename G::Element>> commitments;  // [K][M]
  // Per-bin OR proof that prod_k commitments[k][m] commits to a bit.
  std::vector<OrProof<G>> bin_proofs;  // [M]
  // For M > 1: opening randomness of prod_m prod_k c_{i,k,m}, proving the
  // bins sum to exactly one (one-hot input).
  typename G::Scalar sum_randomness;

  Bytes Serialize() const {
    Writer w;
    w.U32(static_cast<uint32_t>(commitments.size()));
    w.U32(commitments.empty() ? 0 : static_cast<uint32_t>(commitments[0].size()));
    for (const auto& row : commitments) {
      for (const auto& c : row) {
        w.Blob(G::Encode(c));
      }
    }
    w.U32(static_cast<uint32_t>(bin_proofs.size()));
    for (const auto& p : bin_proofs) {
      w.Blob(p.Serialize());
    }
    w.Blob(sum_randomness.Encode());
    return w.Take();
  }

  static std::optional<ClientUploadMsg> Deserialize(BytesView data) {
    Reader r(data);
    auto k = r.U32();
    auto m = r.U32();
    if (!k || !m) {
      return std::nullopt;
    }
    ClientUploadMsg msg;
    msg.commitments.resize(*k);
    for (uint32_t i = 0; i < *k; ++i) {
      for (uint32_t j = 0; j < *m; ++j) {
        auto blob = r.Blob();
        if (!blob) {
          return std::nullopt;
        }
        auto e = G::Decode(*blob);
        if (!e) {
          return std::nullopt;
        }
        msg.commitments[i].push_back(*e);
      }
    }
    auto proof_count = r.U32();
    if (!proof_count) {
      return std::nullopt;
    }
    for (uint32_t i = 0; i < *proof_count; ++i) {
      auto blob = r.Blob();
      if (!blob) {
        return std::nullopt;
      }
      auto p = OrProof<G>::Deserialize(*blob);
      if (!p) {
        return std::nullopt;
      }
      msg.bin_proofs.push_back(*p);
    }
    auto sum_blob = r.Blob();
    if (!sum_blob) {
      return std::nullopt;
    }
    auto sum = G::Scalar::Decode(*sum_blob);
    if (!sum || !r.AtEnd()) {
      return std::nullopt;
    }
    msg.sum_randomness = *sum;
    return msg;
  }
};

// Prover k's first message (Line 4): commitments to nb private bits per bin
// plus their OR proofs (Lines 5-6 validate these).
template <PrimeOrderGroup G>
struct ProverCoinsMsg {
  // coin_commitments[m][j] = Com(v_{j,k,m}, s_{j,k,m}).
  std::vector<std::vector<typename G::Element>> coin_commitments;  // [M][nb]
  std::vector<std::vector<OrProof<G>>> coin_proofs;                // [M][nb]
};

// Prover k's final message (Lines 10-11): per-bin output share and aggregate
// opening randomness.
template <PrimeOrderGroup G>
struct ProverOutputMsg {
  std::vector<typename G::Scalar> y;  // [M]
  std::vector<typename G::Scalar> z;  // [M]

  Bytes Serialize() const {
    Writer w;
    w.U32(static_cast<uint32_t>(y.size()));
    for (size_t m = 0; m < y.size(); ++m) {
      w.Blob(y[m].Encode());
      w.Blob(z[m].Encode());
    }
    return w.Take();
  }

  static std::optional<ProverOutputMsg> Deserialize(BytesView data) {
    Reader r(data);
    auto count = r.U32();
    if (!count) {
      return std::nullopt;
    }
    ProverOutputMsg msg;
    for (uint32_t m = 0; m < *count; ++m) {
      auto yb = r.Blob();
      auto zb = r.Blob();
      if (!yb || !zb) {
        return std::nullopt;
      }
      auto y = G::Scalar::Decode(*yb);
      auto z = G::Scalar::Decode(*zb);
      if (!y || !z) {
        return std::nullopt;
      }
      msg.y.push_back(*y);
      msg.z.push_back(*z);
    }
    if (!r.AtEnd()) {
      return std::nullopt;
    }
    return msg;
  }
};

}  // namespace vdp

#endif  // SRC_CORE_MESSAGES_H_
