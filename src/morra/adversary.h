// Adversarial Morra participants for soundness and robustness tests, plus the
// commitment-free strawman that motivates Theorem 5.2.
#ifndef SRC_MORRA_ADVERSARY_H_
#define SRC_MORRA_ADVERSARY_H_

#include "src/morra/morra.h"

namespace vdp {

// Attempts to change its contribution after seeing other parties' reveals.
// Binding commitments make this detectable: RunMorra attributes the abort.
template <PrimeOrderGroup G>
class EquivocatingMorraParty : public MorraParty<G> {
 public:
  using Base = MorraParty<G>;
  using typename Base::Element;
  using typename Base::Opening;
  using Scalar = typename Base::Scalar;

  explicit EquivocatingMorraParty(SecureRng rng) : Base(std::move(rng)) {}

  std::vector<Opening> RevealPhase() override {
    // Re-sample contributions, hoping to steer the coins. The commitments
    // broadcast earlier no longer match.
    for (auto& o : this->openings_) {
      o.m = Scalar::Random(this->rng_);
    }
    return this->openings_;
  }
};

// Refuses to reveal (early abort). Detected, never biases output.
template <PrimeOrderGroup G>
class AbortingMorraParty : public MorraParty<G> {
 public:
  using Base = MorraParty<G>;
  using typename Base::Opening;

  explicit AbortingMorraParty(SecureRng rng) : Base(std::move(rng)) {}

  std::vector<Opening> RevealPhase() override { return {}; }
};

// Samples adversarially (all-zero contributions) but follows the protocol.
// As long as one other party is honest, the coins remain unbiased -- the test
// suite verifies this empirically.
template <PrimeOrderGroup G>
class ZeroContributionMorraParty : public MorraParty<G> {
 public:
  using Base = MorraParty<G>;
  using typename Base::Element;
  using typename Base::Opening;
  using Scalar = typename Base::Scalar;

  explicit ZeroContributionMorraParty(SecureRng rng) : Base(std::move(rng)) {}

  std::vector<Element> CommitPhase(size_t num_coins, const Pedersen<G>& ped) override {
    this->openings_.clear();
    std::vector<Element> commitments;
    for (size_t j = 0; j < num_coins; ++j) {
      Opening o{Scalar::Zero(), Scalar::Random(this->rng_)};
      commitments.push_back(ped.Commit(o.m, o.r));
      this->openings_.push_back(o);
    }
    return commitments;
  }
};

// The commitment-free strawman: parties announce contributions in order, in
// plaintext. The last announcer sees everything before speaking and can force
// any coin value -- the executable version of why commitments (and hence
// one-way functions, Theorem 5.2) are necessary for verifiable DP.
struct PlaintextCoinResult {
  std::vector<bool> coins;
};

template <PrimeOrderGroup G>
PlaintextCoinResult RunCommitmentFreeMorra(size_t num_honest, size_t num_coins,
                                           bool adversary_last, bool target_value,
                                           SecureRng& rng) {
  using Scalar = typename G::Scalar;
  auto half_q = Scalar::Order();
  half_q.ShiftRight1();

  PlaintextCoinResult result;
  result.coins.reserve(num_coins);
  for (size_t j = 0; j < num_coins; ++j) {
    Scalar sum = Scalar::Zero();
    for (size_t i = 0; i < num_honest; ++i) {
      sum += Scalar::Random(rng);
    }
    if (adversary_last) {
      // The adversary picks its contribution after seeing `sum`: choose a to
      // land sum + a on the desired side of the threshold.
      Scalar desired = target_value
                           ? Scalar::FromInt(Scalar::Order()) - Scalar::One()  // q-1: top
                           : Scalar::Zero();                                   // bottom
      Scalar a = desired - sum;
      sum += a;
    }
    result.coins.push_back(sum.value() > half_q);
  }
  return result;
}

}  // namespace vdp

#endif  // SRC_MORRA_ADVERSARY_H_
