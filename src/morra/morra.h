// Morra (paper Algorithm 1): K-party commit-reveal sampling of public
// unbiased coins, secure against a dishonest majority of active parties.
//
// Every party commits to a batch of uniform Z_q contributions, commitments
// are broadcast in index order, then openings are revealed in *reverse*
// order (so nobody's contribution can depend on another's). Coin j is
// 1 iff sum_k m_{k,j} mod q lands in the upper half of the field. One honest
// party suffices for unbiased output; binding commitments make equivocation
// detectable and attributable.
//
// Two commitment instantiations are provided: Pedersen (the paper's choice,
// measured in Table 1) and hash commitments (an ablation; see bench_morra).
#ifndef SRC_MORRA_MORRA_H_
#define SRC_MORRA_MORRA_H_

#include <memory>
#include <vector>

#include "src/commit/hash_commitment.h"
#include "src/commit/pedersen.h"
#include "src/group/group.h"

namespace vdp {

inline constexpr size_t kNoCheater = static_cast<size_t>(-1);

struct MorraOutcome {
  std::vector<bool> coins;
  bool aborted = false;
  size_t cheater = kNoCheater;  // party index when a bad opening is detected
};

// A Morra participant. The honest implementation samples uniformly and
// reveals faithfully; adversarial subclasses (morra/adversary.h) override the
// hooks to cheat in specific ways.
template <PrimeOrderGroup G>
class MorraParty {
 public:
  using Scalar = typename G::Scalar;
  using Element = typename G::Element;

  struct Opening {
    Scalar m;
    Scalar r;
  };

  explicit MorraParty(SecureRng rng) : rng_(std::move(rng)) {}
  virtual ~MorraParty() = default;

  // Phase 1: sample contributions, return commitments (broadcast).
  virtual std::vector<Element> CommitPhase(size_t num_coins, const Pedersen<G>& ped) {
    openings_.clear();
    openings_.reserve(num_coins);
    std::vector<Element> commitments;
    commitments.reserve(num_coins);
    for (size_t j = 0; j < num_coins; ++j) {
      Opening o{Scalar::Random(rng_), Scalar::Random(rng_)};
      commitments.push_back(ped.Commit(o.m, o.r));
      openings_.push_back(o);
    }
    return commitments;
  }

  // Broadcast observation hooks (adversaries may react to these; the
  // commitments are already binding by the time reveals flow).
  virtual void ObserveCommitments(size_t party, const std::vector<Element>& commitments) {
    (void)party;
    (void)commitments;
  }
  virtual void ObserveReveal(size_t party, const std::vector<Opening>& openings) {
    (void)party;
    (void)openings;
  }

  // Phase 2: reveal openings. Returning an empty vector models early abort.
  virtual std::vector<Opening> RevealPhase() { return openings_; }

 protected:
  SecureRng rng_;
  std::vector<Opening> openings_;
};

// Runs the protocol among `parties`. Commitments broadcast in index order;
// reveals collected in reverse index order and checked immediately.
template <PrimeOrderGroup G>
MorraOutcome RunMorra(std::vector<MorraParty<G>*>& parties, size_t num_coins,
                      const Pedersen<G>& ped) {
  using Scalar = typename G::Scalar;
  using Element = typename G::Element;
  MorraOutcome outcome;

  const size_t k = parties.size();
  std::vector<std::vector<Element>> commitments(k);
  for (size_t i = 0; i < k; ++i) {
    commitments[i] = parties[i]->CommitPhase(num_coins, ped);
    if (commitments[i].size() != num_coins) {
      outcome.aborted = true;
      outcome.cheater = i;
      return outcome;
    }
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t other = 0; other < k; ++other) {
      if (other != i) {
        parties[other]->ObserveCommitments(i, commitments[i]);
      }
    }
  }

  // Reveal in reverse order of commitment broadcast (paper step 3).
  std::vector<std::vector<typename MorraParty<G>::Opening>> openings(k);
  for (size_t idx = k; idx-- > 0;) {
    openings[idx] = parties[idx]->RevealPhase();
    if (openings[idx].size() != num_coins) {
      outcome.aborted = true;
      outcome.cheater = idx;
      return outcome;
    }
    for (size_t j = 0; j < num_coins; ++j) {
      if (!ped.Verify(commitments[idx][j], openings[idx][j].m, openings[idx][j].r)) {
        outcome.aborted = true;
        outcome.cheater = idx;
        return outcome;
      }
    }
    for (size_t other = 0; other < k; ++other) {
      if (other != idx) {
        parties[other]->ObserveReveal(idx, openings[idx]);
      }
    }
  }

  // Coin extraction: X_j = sum_k m_{k,j}; coin = [X_j > floor(q/2)].
  auto half_q = Scalar::Order();
  half_q.ShiftRight1();
  outcome.coins.reserve(num_coins);
  for (size_t j = 0; j < num_coins; ++j) {
    Scalar x = Scalar::Zero();
    for (size_t i = 0; i < k; ++i) {
      x += openings[i][j].m;
    }
    outcome.coins.push_back(x.value() > half_q);
  }
  return outcome;
}

// Seed-based Morra over hash commitments: each party commits to a 32-byte
// seed; coins are the XOR of the parties' ChaCha20-expanded seed streams.
// Identical trust model (one honest party suffices), one commitment per
// party instead of per coin -- the fast path quantified in bench_morra.
struct SeedMorraParty {
  SecureRng rng;
  bool abort_on_reveal = false;
  bool equivocate = false;  // present a different seed at reveal time
};

MorraOutcome RunSeedMorra(std::vector<SeedMorraParty>& parties, size_t num_coins);

}  // namespace vdp

#endif  // SRC_MORRA_MORRA_H_
