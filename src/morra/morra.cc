#include "src/morra/morra.h"

namespace vdp {

MorraOutcome RunSeedMorra(std::vector<SeedMorraParty>& parties, size_t num_coins) {
  MorraOutcome outcome;
  const size_t k = parties.size();

  struct Committed {
    Sha256::Digest commitment;
    HashCommitment::Opening opening;
  };
  std::vector<Committed> state(k);
  for (size_t i = 0; i < k; ++i) {
    Bytes seed = parties[i].rng.RandomBytes(32);
    auto [commitment, opening] = HashCommitment::Commit(seed, parties[i].rng);
    state[i] = Committed{commitment, std::move(opening)};
  }

  // Reveal in reverse order with immediate validation.
  for (size_t idx = k; idx-- > 0;) {
    if (parties[idx].abort_on_reveal) {
      outcome.aborted = true;
      outcome.cheater = idx;
      return outcome;
    }
    HashCommitment::Opening claimed = state[idx].opening;
    if (parties[idx].equivocate) {
      claimed.message = parties[idx].rng.RandomBytes(32);  // try to swap the seed
    }
    if (!HashCommitment::Verify(state[idx].commitment, claimed)) {
      outcome.aborted = true;
      outcome.cheater = idx;
      return outcome;
    }
    state[idx].opening = std::move(claimed);
  }

  // Coins: XOR of the expanded streams.
  size_t num_bytes = (num_coins + 7) / 8;
  Bytes combined(num_bytes, 0);
  for (size_t i = 0; i < k; ++i) {
    std::array<uint8_t, ChaCha20::kKeySize> key{};
    std::copy(state[i].opening.message.begin(), state[i].opening.message.end(), key.begin());
    std::array<uint8_t, ChaCha20::kNonceSize> nonce = {'m', 'o', 'r', 'r', 'a', '-',
                                                       's', 'e', 'e', 'd', 0,   0};
    ChaCha20 stream(key, nonce);
    Bytes expanded(num_bytes);
    stream.Fill(expanded.data(), expanded.size());
    for (size_t b = 0; b < num_bytes; ++b) {
      combined[b] = static_cast<uint8_t>(combined[b] ^ expanded[b]);
    }
  }
  outcome.coins.reserve(num_coins);
  for (size_t j = 0; j < num_coins; ++j) {
    outcome.coins.push_back(((combined[j / 8] >> (j % 8)) & 1) != 0);
  }
  return outcome;
}

}  // namespace vdp
