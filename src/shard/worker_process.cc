// For pipe2 (O_CLOEXEC pipes must be created atomically: driver threads
// fork concurrently, so a close-on-exec flag set after pipe() would leave a
// window for sibling workers to inherit each other's pipe ends).
#define _GNU_SOURCE 1

#include "src/shard/worker_process.h"

#include <errno.h>
#include <fcntl.h>
#include <limits.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

namespace vdp {

namespace {

void CloseIfOpen(int* fd) {
  if (*fd >= 0) {
    close(*fd);
    *fd = -1;
  }
}

}  // namespace

std::string DefaultWorkerPath() {
  if (const char* env = std::getenv("VDP_VERIFY_WORKER_PATH")) {
    return env;
  }
  char exe[PATH_MAX];
  ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    return "";
  }
  exe[n] = '\0';
  std::string path(exe);
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(0, slash + 1) + "verify_worker";
}

std::optional<WorkerProcess> SpawnWorker(const std::string& path, size_t worker_id) {
  IgnoreSigpipe();
  // O_CLOEXEC on every end: a worker must inherit ONLY its own stdin/stdout
  // (dup2 below clears the flag on those two). Without it, a sibling worker
  // forked by another driver thread would keep e.g. the write end of this
  // worker's result pipe open, so the driver would never see EOF when this
  // worker dies (stalling for the full shard timeout instead), and closing
  // task_fd would not deliver EOF-shutdown to a healthy worker.
  int task_pipe[2];    // driver -> worker
  int result_pipe[2];  // worker -> driver
  if (pipe2(task_pipe, O_CLOEXEC) != 0) {
    return std::nullopt;
  }
  if (pipe2(result_pipe, O_CLOEXEC) != 0) {
    close(task_pipe[0]);
    close(task_pipe[1]);
    return std::nullopt;
  }

  // Everything the child needs is materialized BEFORE fork(): driver
  // threads fork concurrently, so the child may inherit a locked malloc
  // arena -- between fork and exec only async-signal-safe calls are legal.
  const std::string id = std::to_string(worker_id);

  pid_t pid = fork();
  if (pid < 0) {
    close(task_pipe[0]);
    close(task_pipe[1]);
    close(result_pipe[0]);
    close(result_pipe[1]);
    return std::nullopt;
  }

  if (pid == 0) {
    // Child: stdin <- task pipe, stdout -> result pipe, stderr inherited.
    // dup2 clears O_CLOEXEC on the two fds the worker keeps; every other
    // inherited pipe end closes on exec. Async-signal-safe calls only.
    dup2(task_pipe[0], STDIN_FILENO);
    dup2(result_pipe[1], STDOUT_FILENO);
    execl(path.c_str(), path.c_str(), id.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed; the driver sees EOF on result_fd
  }

  close(task_pipe[0]);
  close(result_pipe[1]);
  // Non-blocking write end so the driver's WriteFrame deadline is honored
  // even when a wedged worker stops draining the pipe. The worker's read end
  // is a separate open file description and stays blocking.
  int flags = fcntl(task_pipe[1], F_GETFL, 0);
  if (flags >= 0) {
    fcntl(task_pipe[1], F_SETFL, flags | O_NONBLOCK);
  }
  WorkerProcess worker;
  worker.pid = pid;
  worker.task_fd = task_pipe[1];
  worker.result_fd = result_pipe[0];
  worker.worker_id = worker_id;
  return worker;
}

std::string ReapChild(pid_t pid) {
  // Grace period: a healthy child exits as soon as it sees EOF on its
  // liveness pipe; only a hung or wedged one needs SIGKILL.
  int status = 0;
  pid_t reaped = 0;
  for (int waited_ms = 0; waited_ms < 500; waited_ms += 10) {
    reaped = waitpid(pid, &status, WNOHANG);
    if (reaped != 0) {
      break;
    }
    usleep(10 * 1000);
  }
  if (reaped == 0) {
    kill(pid, SIGKILL);
    // Retry EINTR: an interrupting timer must not turn a clean SIGKILL reap
    // into a "wait failed" blame (and a leaked zombie).
    do {
      reaped = waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
  }
  if (reaped < 0) {
    return "wait failed";
  }
  if (WIFEXITED(status)) {
    return "exited " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended";
}

std::string DestroyWorker(WorkerProcess* worker) {
  CloseIfOpen(&worker->task_fd);  // EOF: a healthy worker exits on its own
  CloseIfOpen(&worker->result_fd);
  if (worker->pid < 0) {
    return "never started";
  }
  std::string ended = ReapChild(worker->pid);
  worker->pid = -1;
  return ended;
}

void IgnoreSigpipe() {
  // Safe to run from multiple threads: every call installs the same
  // disposition, and it is never reverted.
  signal(SIGPIPE, SIG_IGN);
}

}  // namespace vdp
