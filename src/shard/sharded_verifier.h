// Sharded client-upload verification: the horizontal-scaling layer above the
// batch subsystem (src/batch/).
//
// The paper's public verifier re-checks every broadcast client upload; PR 1
// collapsed that to one MSM per batch. A single monolithic batch still has
// two scaling problems: (a) one bad proof forces a per-proof re-scan of the
// *entire* population to attribute blame, and (b) one thread of control caps
// ingestion. The compute core (per-shard batch verification + deterministic
// combiner) lives in shard_result.h; the streaming machinery (shard cutting,
// the bounded in-flight window, backpressure) lives in stream_dispatch.h and
// is shared by every backend. This header keeps the classic ShardedVerifier
// shape on top of those layers: a streaming Add/Finish verifier running the
// in-process executor, plus the historical one-shot entry point.
#ifndef SRC_SHARD_SHARDED_VERIFIER_H_
#define SRC_SHARD_SHARDED_VERIFIER_H_

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/shard/shard_result.h"
#include "src/shard/stream_dispatch.h"

namespace vdp {

// Streaming sharded verifier. Feed uploads in broadcast order with Add();
// full shards are dispatched across the pool while ingestion continues, and
// Add blocks once max_pending_shards are in flight, so memory stays bounded
// no matter how long the stream runs. Finish() drains the remainder and
// returns the combined verdict; the instance is then reset and reusable.
template <PrimeOrderGroup G>
class ShardedVerifier {
 public:
  // shard_capacity == 0 picks a default sized for MSM efficiency.
  // max_pending_shards == 0 allows two in-flight shards per pool worker (or
  // two without a pool), enough to keep every worker busy while the next
  // shard fills. compute_products == false skips the per-(prover, bin)
  // partial products, for callers that only need decisions and reasons.
  ShardedVerifier(const ProtocolConfig& config, Pedersen<G> ped, ThreadPool* pool = nullptr,
                  size_t shard_capacity = 0, size_t max_pending_shards = 0,
                  bool compute_products = true)
      : config_(config),
        ped_(std::move(ped)),
        executor_(config_, ped_, pool),
        options_{shard_capacity, max_pending_shards, compute_products, nullptr, {}} {}

  size_t shard_capacity() const {
    return options_.shard_capacity > 0 ? options_.shard_capacity
                                       : StreamDispatcher<G>::kDefaultShardCapacity;
  }

  // Span tree destination for the stream; null disables tracing. Takes
  // effect at the next stream start (before the first Add).
  void SetTracer(obs::TraceCollector* tracer, obs::TraceContext parent) {
    options_.tracer = tracer;
    options_.trace_parent = parent;
    dispatcher_.reset();  // rebuild lazily with the new trace destination
  }

  // Ingest the next upload of the broadcast stream (global index assigned in
  // arrival order). Blocks when the in-flight window is full.
  void Add(ClientUploadMsg<G> upload) { Stream().Add(std::move(upload)); }

  // Bulk ingestion without per-upload copies.
  void AddBulk(std::vector<ClientUploadMsg<G>>&& uploads) {
    Stream().AddBulk(std::move(uploads));
  }

  // Verifies whatever is still in flight, merges all shard results, and
  // resets the verifier for a fresh stream.
  VerifyReport<G> Finish() {
    StreamDispatcher<G>& stream = Stream();
    const double wait_before_ms = stream.backpressure_wait_ms();
    Stopwatch timer;
    VerifyReport<G> report = stream.Finish();
    const double drain_wait_ms =
        std::max(0.0, stream.last_backpressure_wait_ms() - wait_before_ms);
    // The drain is verify-stage work; time the producer already spent blocked
    // on the window during Add was verify time too, but it belongs to the
    // caller's ingest wall so only callers tracking Add time can fold it in.
    report.timings.verify_ms =
        std::max(0.0, timer.ElapsedMillis() - report.timings.combine_ms - drain_wait_ms) +
        stream.last_backpressure_wait_ms();
    return report;
  }

  // Mid-stream pipeline state (see VerifyProgress).
  VerifyProgress Progress() const {
    return dispatcher_.has_value() ? dispatcher_->Progress() : VerifyProgress{};
  }

  // One-shot sharded verification of an in-memory vector: partitions into
  // config.num_verify_shards contiguous shards (no copies, whole shards
  // fanned across the pool) and combines. This is the path ShardedBackend
  // (src/verify/sharded_backend.h) delegates to for bulk input. Pass
  // compute_products = false when the caller only needs the accepted set and
  // reasons, skipping the per-(prover, bin) Muls.
  static VerifyReport<G> VerifyAll(const ProtocolConfig& config, const Pedersen<G>& ped,
                                   const std::vector<ClientUploadMsg<G>>& uploads,
                                   ThreadPool* pool = nullptr, bool compute_products = true,
                                   obs::TraceCollector* tracer = nullptr,
                                   obs::TraceContext trace_parent = {}) {
    InProcessShardExecutor<G> executor(config, ped, pool);
    return DispatchAllShards(config, &executor, uploads, config.num_verify_shards,
                             compute_products, tracer, trace_parent);
  }

 private:
  struct StreamKnobs {
    size_t shard_capacity;
    size_t max_pending_shards;
    bool compute_products;
    obs::TraceCollector* tracer;
    obs::TraceContext trace_parent;
  };

  StreamDispatcher<G>& Stream() {
    if (!dispatcher_.has_value()) {
      StreamDispatchOptions options;
      options.shard_capacity = options_.shard_capacity;
      options.max_inflight_shards = options_.max_pending_shards;
      options.compute_products = options_.compute_products;
      options.tracer = options_.tracer;
      options.trace_parent = options_.trace_parent;
      dispatcher_.emplace(config_, &executor_, options);
    }
    return *dispatcher_;
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
  InProcessShardExecutor<G> executor_;
  StreamKnobs options_;
  std::optional<StreamDispatcher<G>> dispatcher_;
};

}  // namespace vdp

#endif  // SRC_SHARD_SHARDED_VERIFIER_H_
