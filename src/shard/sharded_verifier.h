// Sharded client-upload verification: the horizontal-scaling layer above the
// batch subsystem (src/batch/).
//
// The paper's public verifier re-checks every broadcast client upload; PR 1
// collapsed that to one MSM per batch. A single monolithic batch still has
// two scaling problems: (a) one bad proof forces a per-proof re-scan of the
// *entire* population to attribute blame, and (b) one thread of control caps
// ingestion. This module partitions the upload stream into contiguous shards,
// batch-verifies each shard independently (RLC + MSM, fanned across the
// ThreadPool), and merges the per-shard results with a deterministic
// combiner. Guarantees:
//
//   - Equivalence: the merged accepted set, rejection reasons, and the
//     per-prover/per-bin products of accepted commitments are bit-identical
//     to what the monolithic PublicVerifier::ValidateClients path computes
//     (per-client decisions are independent and deterministic; sharding only
//     changes which random-linear combination covers which proofs, and batch
//     failure always falls back to the per-proof oracle).
//   - Confined blame attribution: a corrupted upload makes only its own
//     shard's RLC check fail, so only that shard re-verifies per proof. The
//     fallback cost is bounded by the shard size, not the population.
//   - Bounded memory: the streaming API (Add / Finish) keeps at most
//     max_pending_shards * shard_capacity uploads resident; verified shards
//     are reduced to their compact ShardResult immediately. Millions of
//     uploads never need to coexist in memory.
#ifndef SRC_SHARD_SHARDED_VERIFIER_H_
#define SRC_SHARD_SHARDED_VERIFIER_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/batch/batch_or_proof.h"
#include "src/common/timer.h"
#include "src/core/client.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/verify/report.h"

namespace vdp {

namespace shard_internal {

// Dispatch policy shared by the one-shot and streaming paths: fan whole
// shards across the pool only when there are enough of them to occupy every
// worker; otherwise run them serially and give each shard the full pool
// internally (same total work, full parallelism either way). verify is
// called as verify(shard_index, inner_pool).
template <typename Fn>
void DispatchShards(size_t n, ThreadPool* pool, const Fn& verify) {
  if (pool != nullptr && n > 1 && n >= pool->worker_count()) {
    pool->ParallelFor(n, [&](size_t s) { verify(s, nullptr); });
  } else {
    for (size_t s = 0; s < n; ++s) {
      verify(s, pool);
    }
  }
}

}  // namespace shard_internal

// Outcome of verifying one contiguous shard of the upload stream. Everything
// downstream (combiner, Eq. 10 check) needs survives here; the uploads
// themselves can be released once this is produced.
template <PrimeOrderGroup G>
struct ShardResult {
  size_t shard_index = 0;
  size_t base = 0;   // global index of the shard's first upload
  size_t count = 0;  // uploads in the shard
  // Global indices of accepted uploads, ascending.
  std::vector<size_t> accepted;
  // (global index, reason) for every rejected upload, ascending by index.
  std::vector<std::pair<size_t, std::string>> rejections;
  // partial_products[k][m] = prod over accepted uploads of commitments[k][m]
  // -- this shard's contribution to the Eq. 10 left-hand side.
  std::vector<std::vector<typename G::Element>> partial_products;
  // True iff this shard's RLC batch check failed and the shard re-verified
  // per proof to attribute blame.
  bool fallback_used = false;
};

// Reduces per-upload verdicts (ok / why, with global index base + i) to a
// compact ShardResult: accepted indices, rejections, and optionally the
// per-(prover, bin) partial products of accepted commitments. The single
// implementation of result assembly -- VerifyShard and PerProofBackend
// (src/verify/per_proof_backend.h) both build their results here, so the
// bit-identity contract between backends cannot be broken by one copy
// drifting. Consumes `why` (details are moved out).
template <PrimeOrderGroup G>
ShardResult<G> BuildShardResult(const ProtocolConfig& config,
                                const ClientUploadMsg<G>* uploads, size_t count, size_t base,
                                size_t shard_index, const std::vector<uint8_t>& ok,
                                std::vector<std::string>& why, bool compute_products,
                                bool fallback_used = false) {
  using Element = typename G::Element;
  ShardResult<G> result;
  result.shard_index = shard_index;
  result.base = base;
  result.count = count;
  result.fallback_used = fallback_used;
  if (compute_products) {
    result.partial_products.assign(config.num_provers,
                                   std::vector<Element>(config.num_bins, G::Identity()));
  }
  for (size_t i = 0; i < count; ++i) {
    if (ok[i] == 0) {
      result.rejections.emplace_back(base + i, std::move(why[i]));
      continue;
    }
    result.accepted.push_back(base + i);
    if (!compute_products) {
      continue;
    }
    for (size_t k = 0; k < config.num_provers; ++k) {
      for (size_t m = 0; m < config.num_bins; ++m) {
        result.partial_products[k][m] =
            G::Mul(result.partial_products[k][m], uploads[i].commitments[k][m]);
      }
    }
  }
  return result;
}

// Verifies uploads[0..count) as one shard whose first element has global
// index `base`. Structural checks and (on fallback) per-proof re-checks fan
// across `pool`; the RLC batch check shards its MSM onto `pool` too. Pass
// pool == nullptr when calling from inside a pool task (ParallelFor does not
// nest). This is the single implementation of the batched validation
// algorithm: BatchedBackend (src/verify/batched_backend.h) runs it as one
// whole-stream shard, so the batched and sharded paths cannot drift apart.
template <PrimeOrderGroup G>
ShardResult<G> VerifyShard(const ProtocolConfig& config, const Pedersen<G>& ped,
                           const ClientUploadMsg<G>* uploads, size_t count, size_t base,
                           size_t shard_index, ThreadPool* pool = nullptr,
                           bool compute_products = true,
                           obs::TraceCollector* tracer = nullptr,
                           obs::TraceContext trace_parent = {}) {
  using Element = typename G::Element;
  Stopwatch shard_timer;
  obs::TraceSpan shard_span(tracer, "shard", trace_parent);
  shard_span.set_detail("shard=" + std::to_string(shard_index) +
                        " n=" + std::to_string(count));
  std::vector<uint8_t> ok(count, 0);
  std::vector<std::string> why(count);
  std::vector<std::vector<Element>> aggregated(count);

  // Structural pass: shape, per-bin aggregated commitments, one-hot opening.
  obs::TraceSpan structure_span(tracer, "structure", shard_span.context());
  auto structure = [&](size_t i) {
    auto agg = ClientUploadStructure(uploads[i], config, ped, &why[i]);
    if (agg.has_value()) {
      aggregated[i] = std::move(*agg);
      ok[i] = 1;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(count, structure);
  } else {
    for (size_t i = 0; i < count; ++i) {
      structure(i);
    }
  }
  structure_span.End();

  // One RLC check over every bin proof of every structurally valid upload in
  // this shard. Contexts carry the *global* client index, so the challenge
  // schedule is identical to the monolithic verifier's.
  std::vector<OrInstance<G>> instances;
  for (size_t i = 0; i < count; ++i) {
    if (ok[i] == 0) {
      continue;
    }
    for (size_t bin = 0; bin < aggregated[i].size(); ++bin) {
      instances.push_back({aggregated[i][bin], uploads[i].bin_proofs[bin],
                           ClientProofContext(config.session_id, base + i, bin)});
    }
  }
  bool fallback_used = false;
  obs::TraceSpan rlc_span(tracer, "rlc", shard_span.context());
  const bool rlc_ok = BatchOrVerify(ped, instances, pool);
  rlc_span.End();
  if (!rlc_ok) {
    // Someone in *this shard* cheated; re-run the per-proof oracle on this
    // shard only. Decisions stay bit-identical to the monolithic path because
    // the per-upload verdict is independent of every other upload.
    fallback_used = true;
    obs::TraceSpan fallback_span(tracer, "fallback", shard_span.context());
    auto recheck = [&](size_t i) {
      if (ok[i] == 0) {
        return;
      }
      for (size_t bin = 0; bin < aggregated[i].size(); ++bin) {
        if (!OrVerify(ped, aggregated[i][bin], uploads[i].bin_proofs[bin],
                      ClientProofContext(config.session_id, base + i, bin))) {
          why[i] = kDetailProofInvalid;
          ok[i] = 0;
          return;
        }
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(count, recheck);
    } else {
      for (size_t i = 0; i < count; ++i) {
        recheck(i);
      }
    }
  }

  const double shard_us = shard_timer.ElapsedMicros();
  obs::GlobalHistogram(obs::kVerifyShardMs)->Record(shard_us / 1000.0);
  if (count > 0) {
    obs::GlobalHistogram(obs::kVerifyUsPerProof)->Record(shard_us / static_cast<double>(count));
  }
  return BuildShardResult(config, uploads, count, base, shard_index, ok, why,
                          compute_products, fallback_used);
}

// Deterministic combiner: merges shard results (which must cover contiguous,
// ascending ranges) into the global VerifyReport. Pure data-plane: no group
// or hash operations beyond one Mul per shard per (prover, bin). When
// compute_products is false the report carries no products (has_products()
// is false) so downstream consumers recompute Eq. 10 from the uploads.
template <PrimeOrderGroup G>
VerifyReport<G> CombineShardResults(const ProtocolConfig& config,
                                    std::vector<ShardResult<G>> results,
                                    bool compute_products = true) {
  using Element = typename G::Element;
  Stopwatch timer;
  std::sort(results.begin(), results.end(),
            [](const ShardResult<G>& a, const ShardResult<G>& b) {
              return a.shard_index < b.shard_index;
            });
  VerifyReport<G> report;
  report.num_shards = results.size();
  if (compute_products) {
    report.commitment_products.assign(config.num_provers,
                                      std::vector<Element>(config.num_bins, G::Identity()));
  }
  for (const ShardResult<G>& r : results) {
    report.total_uploads += r.count;
    if (r.fallback_used) {
      ++report.shards_with_fallback;
    }
    report.accepted.insert(report.accepted.end(), r.accepted.begin(), r.accepted.end());
    for (const auto& [index, why] : r.rejections) {
      report.rejections.push_back(RejectionReason{index, ClassifyRejectDetail(why), why});
    }
    if (!compute_products || r.partial_products.empty()) {
      continue;  // nothing to fold in
    }
    for (size_t k = 0; k < config.num_provers; ++k) {
      for (size_t m = 0; m < config.num_bins; ++m) {
        report.commitment_products[k][m] =
            G::Mul(report.commitment_products[k][m], r.partial_products[k][m]);
      }
    }
  }
  report.timings.combine_ms = timer.ElapsedMillis();
  return report;
}

// Streaming sharded verifier. Feed uploads in broadcast order with Add();
// full shards are dispatched (batch-verified and reduced to ShardResults) as
// soon as max_pending_shards buffers have accumulated, so memory stays
// bounded no matter how long the stream runs. Finish() drains the remainder
// and returns the combined verdict; the instance is then reset and reusable.
template <PrimeOrderGroup G>
class ShardedVerifier {
 public:
  // shard_capacity == 0 picks a default sized for MSM efficiency.
  // max_pending_shards == 0 keeps one buffer per pool worker (or 1 without a
  // pool), which is what lets a flush fan whole shards across the workers.
  // compute_products == false skips the per-(prover, bin) partial products,
  // for callers that only need decisions and reasons.
  ShardedVerifier(const ProtocolConfig& config, Pedersen<G> ped, ThreadPool* pool = nullptr,
                  size_t shard_capacity = 0, size_t max_pending_shards = 0,
                  bool compute_products = true)
      : config_(config),
        ped_(std::move(ped)),
        pool_(pool),
        shard_capacity_(shard_capacity > 0 ? shard_capacity : kDefaultShardCapacity),
        max_pending_(max_pending_shards > 0
                         ? max_pending_shards
                         : (pool != nullptr ? std::max<size_t>(1, pool->worker_count()) : 1)),
        compute_products_(compute_products) {}

  size_t shard_capacity() const { return shard_capacity_; }

  // Verify time accumulated by flushes so far this stream (Finish resets
  // it). ShardedBackend reads this before/after calls to split its wall time
  // into the ingest and verify stages.
  double flushed_verify_ms() const { return flushed_verify_ms_; }

  // Span tree destination for subsequent flushes; null disables tracing.
  void SetTracer(obs::TraceCollector* tracer, obs::TraceContext parent) {
    tracer_ = tracer;
    trace_parent_ = parent;
  }

  // Ingest the next upload of the broadcast stream (global index assigned in
  // arrival order). May synchronously verify and release buffered shards.
  void Add(ClientUploadMsg<G> upload) {
    current_.push_back(std::move(upload));
    if (current_.size() == shard_capacity_) {
      CloseCurrentShard();
      if (pending_.size() >= max_pending_) {
        FlushPending();
      }
    }
  }

  // Verifies whatever is still buffered, merges all shard results, and resets
  // the verifier for a fresh stream.
  VerifyReport<G> Finish() {
    CloseCurrentShard();
    FlushPending();
    obs::TraceSpan combine_span(tracer_, kStageCombine, trace_parent_);
    VerifyReport<G> report =
        CombineShardResults(config_, std::move(results_), compute_products_);
    combine_span.End();
    report.timings.verify_ms = flushed_verify_ms_;
    results_.clear();
    next_base_ = 0;
    next_shard_index_ = 0;
    flushed_verify_ms_ = 0;
    return report;
  }

  // One-shot sharded verification of an in-memory vector: partitions into
  // config.num_verify_shards contiguous shards (no copies, whole shards
  // fanned across the pool) and combines. This is the path ShardedBackend
  // (src/verify/sharded_backend.h) delegates to for bulk input. Pass
  // compute_products = false when the caller only needs the accepted set and
  // reasons, skipping the per-(prover, bin) Muls.
  static VerifyReport<G> VerifyAll(const ProtocolConfig& config, const Pedersen<G>& ped,
                                   const std::vector<ClientUploadMsg<G>>& uploads,
                                   ThreadPool* pool = nullptr, bool compute_products = true,
                                   obs::TraceCollector* tracer = nullptr,
                                   obs::TraceContext trace_parent = {}) {
    Stopwatch timer;
    const size_t n = uploads.size();
    size_t shards = std::max<size_t>(1, config.num_verify_shards);
    shards = std::min(shards, std::max<size_t>(1, n));
    std::vector<ShardResult<G>> results(shards);
    obs::TraceSpan verify_span(tracer, kStageVerify, trace_parent);
    shard_internal::DispatchShards(shards, pool, [&](size_t s, ThreadPool* inner) {
      size_t from = n * s / shards;
      size_t to = n * (s + 1) / shards;
      results[s] = VerifyShard(config, ped, uploads.data() + from, to - from, from, s, inner,
                               compute_products, tracer, verify_span.context());
    });
    verify_span.End();
    const double verify_ms = timer.ElapsedMillis();
    obs::TraceSpan combine_span(tracer, kStageCombine, trace_parent);
    VerifyReport<G> report = CombineShardResults(config, std::move(results), compute_products);
    combine_span.End();
    report.timings.verify_ms = verify_ms;
    return report;
  }

 private:
  static constexpr size_t kDefaultShardCapacity = 1024;

  void CloseCurrentShard() {
    if (current_.empty()) {
      return;
    }
    pending_.push_back(PendingShard{next_base_, next_shard_index_, std::move(current_)});
    next_base_ += pending_.back().uploads.size();
    ++next_shard_index_;
    current_.clear();
    // Backlog high-water mark: how many full shards were resident at once.
    obs::GlobalGauge(obs::kShardQueueDepth)->Set(static_cast<int64_t>(pending_.size()));
  }

  void FlushPending() {
    if (pending_.empty()) {
      return;
    }
    Stopwatch timer;
    size_t first = results_.size();
    results_.resize(first + pending_.size());
    shard_internal::DispatchShards(pending_.size(), pool_, [&](size_t p, ThreadPool* inner) {
      const PendingShard& shard = pending_[p];
      results_[first + p] = VerifyShard(config_, ped_, shard.uploads.data(),
                                        shard.uploads.size(), shard.base, shard.shard_index,
                                        inner, compute_products_, tracer_, trace_parent_);
    });
    pending_.clear();  // releases the upload buffers
    obs::GlobalGauge(obs::kShardQueueDepth)->Set(0);
    flushed_verify_ms_ += timer.ElapsedMillis();
  }

  struct PendingShard {
    size_t base;
    size_t shard_index;
    std::vector<ClientUploadMsg<G>> uploads;
  };

  ProtocolConfig config_;
  Pedersen<G> ped_;
  ThreadPool* pool_;
  size_t shard_capacity_;
  size_t max_pending_;
  bool compute_products_;
  obs::TraceCollector* tracer_ = nullptr;
  obs::TraceContext trace_parent_{};

  std::vector<ClientUploadMsg<G>> current_;  // the shard being filled
  std::vector<PendingShard> pending_;        // full shards awaiting dispatch
  std::vector<ShardResult<G>> results_;      // compact results of verified shards
  size_t next_base_ = 0;
  size_t next_shard_index_ = 0;
  double flushed_verify_ms_ = 0;             // verify time accumulated across flushes
};

}  // namespace vdp

#endif  // SRC_SHARD_SHARDED_VERIFIER_H_
