// The streaming shard dispatcher: the one ingest->dispatch->combine spine
// every verification backend runs on.
//
// The paper's curator verifies uploads from millions of clients; holding the
// whole broadcast resident until Finish() is GBs of RSS at that scale. This
// layer makes bounded-memory streaming the shared machinery instead of a
// ShardedVerifier-only feature:
//
//   - Shard cutting: Add() accumulates uploads into the current shard and
//     seals it at shard_capacity, assigning contiguous (base, shard_index)
//     coordinates so Fiat-Shamir contexts -- and therefore every decision --
//     are identical to the one-shot partition of the same stream.
//   - Backpressure: sealed shards enter a bounded in-flight window
//     (max_inflight_shards, counting queued + executing). When the window is
//     full, Add() BLOCKS until an executor lane retires a shard; producer
//     wait time is recorded in the backpressure.wait_us histogram. Resident
//     memory is therefore capped at roughly
//     (max_inflight_shards + 1) * shard_capacity uploads no matter how long
//     the stream runs.
//   - Execution: a ShardExecutor turns one sealed shard into one compact
//     ShardResult. Lanes map 1:1 to executor resources -- pool worker
//     threads in process, one verify_worker subprocess per lane
//     (process_pool.h), one socket per lane (remote_fleet.h) -- and every
//     ExecuteShard(lane, ...) call for a lane happens on the same dispatcher
//     thread, so executors keep per-lane state without locking.
//   - Deterministic combine: results are merged with CombineShardResults,
//     which orders by shard_index; completion order never shows.
//
// Progress is observable mid-stream (Progress(), PartialReport()) and in the
// run-log via the stream.inflight_shards / stream.buffered_uploads gauges,
// whose max() is the stream's high-water mark.
#ifndef SRC_SHARD_STREAM_DISPATCH_H_
#define SRC_SHARD_STREAM_DISPATCH_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/shard/shard_result.h"

namespace vdp {

// One contiguous shard of the upload stream, handed to a ShardExecutor lane.
// Streaming shards own their uploads (moved out of the ingest buffer and
// released when the lane retires them); the one-shot path views slices of
// the caller's vector instead, so bulk verification stays zero-copy.
template <PrimeOrderGroup G>
struct ShardPayload {
  size_t shard_index = 0;
  size_t base = 0;  // global index of the first upload
  bool compute_products = true;
  std::vector<ClientUploadMsg<G>> owned;
  const ClientUploadMsg<G>* view = nullptr;
  size_t view_count = 0;

  const ClientUploadMsg<G>* data() const { return view != nullptr ? view : owned.data(); }
  size_t count() const { return view != nullptr ? view_count : owned.size(); }
};

// An execution engine for sealed shards: in-process batch verification, the
// verify_worker subprocess pool, or the remote socket fleet. The dispatcher
// runs lanes() threads; lane i receives every one of its ExecuteShard(i, ..)
// calls from the same thread and CloseLane(i) from that thread when the
// stream drains, so per-lane resources (a worker process, a connection) need
// no synchronization. BeginStream runs on the producer thread before any
// lane starts.
template <PrimeOrderGroup G>
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  // How many shards this executor can usefully run concurrently.
  virtual size_t lanes() const = 0;

  // Called once per stream before lanes spawn. Overrides must call the base,
  // which captures the trace destination shard work parents under.
  virtual void BeginStream(obs::TraceCollector* tracer, obs::TraceContext verify_ctx) {
    tracer_ = tracer;
    verify_ctx_ = verify_ctx;
  }

  // Turns one shard into its compact result. Must always produce a result
  // (fleet executors fall back to in-process verification rather than fail).
  virtual ShardResult<G> ExecuteShard(size_t lane, const ShardPayload<G>& shard) = 0;

  // Tears down lane-local resources when the stream drains.
  virtual void CloseLane(size_t lane) { (void)lane; }

 protected:
  obs::TraceCollector* tracer_ = nullptr;
  obs::TraceContext verify_ctx_{};
};

// The in-process executor: each shard is batch-verified (RLC + MSM, with the
// per-proof fallback) by VerifyShard. With lanes > 1 each lane runs its
// shard serially -- cross-shard parallelism comes from the lanes themselves;
// with a single lane the shard gets the whole pool internally, which is the
// right shape for whole-stream shards (the per-proof and batched backends'
// one-shot path).
template <PrimeOrderGroup G>
class InProcessShardExecutor final : public ShardExecutor<G> {
 public:
  // forced_lanes == 0 sizes the lane count to the pool (one lane per pool
  // worker, or one lane without a pool).
  InProcessShardExecutor(const ProtocolConfig& config, const Pedersen<G>& ped,
                         ThreadPool* pool, size_t forced_lanes = 0)
      : config_(config),
        ped_(ped),
        pool_(pool),
        lanes_(forced_lanes > 0 ? forced_lanes
               : pool != nullptr ? std::max<size_t>(1, pool->worker_count())
                                 : 1) {}

  size_t lanes() const override { return lanes_; }

  ShardResult<G> ExecuteShard(size_t /*lane*/, const ShardPayload<G>& shard) override {
    ThreadPool* inner = lanes_ == 1 ? pool_ : nullptr;
    return VerifyShard(config_, ped_, shard.data(), shard.count(), shard.base,
                       shard.shard_index, inner, shard.compute_products, this->tracer_,
                       this->verify_ctx_);
  }

 private:
  const ProtocolConfig& config_;
  const Pedersen<G>& ped_;
  ThreadPool* pool_;
  size_t lanes_;
};

struct StreamDispatchOptions {
  // Uploads per sealed shard; 0 picks kDefaultShardCapacity (sized for MSM
  // efficiency, same default the sharded path always used).
  size_t shard_capacity = 0;
  // High-water mark on shards cut but not yet retired (queued + executing).
  // Add() blocks while the window is full. 0 picks 2 * lanes, enough to keep
  // every lane busy while the next shard fills.
  size_t max_inflight_shards = 0;
  bool compute_products = true;
  obs::TraceCollector* tracer = nullptr;
  obs::TraceContext trace_parent{};
};

template <PrimeOrderGroup G>
class StreamDispatcher {
 public:
  static constexpr size_t kDefaultShardCapacity = 1024;

  // The executor must outlive the dispatcher. Lanes spawn lazily at the
  // first Add/Finish, so constructing a dispatcher is cheap.
  StreamDispatcher(const ProtocolConfig& config, ShardExecutor<G>* executor,
                   StreamDispatchOptions options = {})
      : config_(config), executor_(executor), options_(options) {
    if (options_.shard_capacity == 0) {
      options_.shard_capacity = kDefaultShardCapacity;
    }
    if (options_.max_inflight_shards == 0) {
      options_.max_inflight_shards = 2 * std::max<size_t>(1, executor_->lanes());
    }
  }

  ~StreamDispatcher() { Abort(); }

  StreamDispatcher(const StreamDispatcher&) = delete;
  StreamDispatcher& operator=(const StreamDispatcher&) = delete;

  size_t shard_capacity() const { return options_.shard_capacity; }
  size_t max_inflight_shards() const { return options_.max_inflight_shards; }

  // Ingests the next upload of the broadcast stream (global index assigned
  // in arrival order). Seals and dispatches a shard every shard_capacity
  // uploads; blocks when the in-flight window is full.
  void Add(ClientUploadMsg<G> upload) {
    EnsureStarted();
    ingested_.fetch_add(1, std::memory_order_relaxed);
    current_.push_back(std::move(upload));
    if (current_.size() >= options_.shard_capacity) {
      SealCurrentShard();
    }
  }

  // Bulk ingestion without per-upload copies: takes the buffer, moves each
  // element into the stream. Equivalent to Add() in arrival order.
  void AddBulk(std::vector<ClientUploadMsg<G>>&& uploads) {
    if (!uploads.empty() && current_.empty() && uploads.size() <= options_.shard_capacity) {
      // Whole-buffer fast path: adopt the caller's allocation as the current
      // shard fill (sealing it immediately if exactly full).
      EnsureStarted();
      ingested_.fetch_add(uploads.size(), std::memory_order_relaxed);
      current_ = std::move(uploads);
      if (current_.size() >= options_.shard_capacity) {
        SealCurrentShard();
      }
    } else {
      for (ClientUploadMsg<G>& upload : uploads) {
        Add(std::move(upload));
      }
    }
    uploads.clear();
  }

  // One-shot ingestion of a pre-partitioned slice of caller-owned memory
  // (which must stay valid until Finish returns): the whole slice becomes
  // one shard, bypassing capacity-based cutting. Mixing AddView with Add on
  // one stream is not supported.
  void AddView(const ClientUploadMsg<G>* data, size_t count) {
    EnsureStarted();
    ingested_.fetch_add(count, std::memory_order_relaxed);
    ShardPayload<G> shard;
    shard.view = data;
    shard.view_count = count;
    shard.base = next_base_;
    shard.shard_index = next_shard_index_++;
    shard.compute_products = options_.compute_products;
    next_base_ += count;
    Enqueue(std::move(shard));
  }

  // Drains the stream: seals the partial shard, joins the lanes, merges all
  // shard results in shard order, and resets for a fresh stream.
  VerifyReport<G> Finish() {
    EnsureStarted();
    SealCurrentShard();
    CloseAndJoin();
    if (verify_span_.has_value()) {
      verify_span_->End();
      verify_span_.reset();
    }
    // The lanes are joined, but Progress()/PartialReport() observers may
    // still be running on other threads: every read or write of the shared
    // state below must stay under mu_ (pinned by
    // tests/shard/stream_dispatch_stress_test.cc under TSan).
    std::vector<ShardResult<G>> results;
    {
      std::lock_guard<std::mutex> lock(mu_);
      results = std::move(results_);
      results_.clear();
      last_backpressure_wait_ms_ = backpressure_wait_ms_;
    }
    obs::TraceSpan combine_span(options_.tracer, kStageCombine, options_.trace_parent);
    VerifyReport<G> report =
        CombineShardResults(config_, std::move(results), options_.compute_products);
    combine_span.End();
    ResetState();
    return report;
  }

  // Discards the stream: drops queued shards, joins the lanes (shards
  // already executing finish and are thrown away), resets. The next Add
  // starts a fresh stream.
  void Abort() {
    if (!started_) {
      ResetState();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.clear();
      closed_ = true;
    }
    lane_cv_.notify_all();
    producer_cv_.notify_all();
    CloseAndJoin();
    if (verify_span_.has_value()) {
      verify_span_->End();
      verify_span_.reset();
    }
    ResetState();
  }

  // Point-in-time pipeline state; safe to call from any thread mid-stream.
  VerifyProgress Progress() const {
    VerifyProgress p;
    const size_t done = done_uploads_.load(std::memory_order_relaxed);
    p.uploads_ingested = ingested_.load(std::memory_order_relaxed);
    p.buffered_uploads = p.uploads_ingested - std::min(done, p.uploads_ingested);
    std::lock_guard<std::mutex> lock(mu_);
    p.shards_cut = shards_cut_;
    p.shards_done = shards_done_;
    p.inflight_shards = inflight_;
    p.accepted_so_far = accepted_so_far_;
    p.rejected_so_far = rejected_so_far_;
    p.backpressure_wait_ms = backpressure_wait_ms_;
    return p;
  }

  // Incremental snapshot: the combined report of every shard retired so far.
  // Indices are global, so a partial report's accepted set is a prefix-
  // closed subset of the final one (modulo shards still in flight).
  VerifyReport<G> PartialReport() const {
    std::vector<ShardResult<G>> copy;
    {
      std::lock_guard<std::mutex> lock(mu_);
      copy = results_;
    }
    return CombineShardResults(config_, std::move(copy), options_.compute_products);
  }

  // Producer time spent blocked on the in-flight window, this stream.
  double backpressure_wait_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return backpressure_wait_ms_;
  }

  // Same, for the stream most recently completed by Finish().
  double last_backpressure_wait_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_backpressure_wait_ms_;
  }

 private:
  void EnsureStarted() {
    if (started_) {
      return;
    }
    started_ = true;
    closed_ = false;
    // One verify-stage span covers the whole dispatch pipeline of the
    // stream; per-shard spans (and adopted worker/server spans) nest under
    // it, exactly like the buffered paths' verify stage.
    verify_span_.emplace(options_.tracer, kStageVerify, options_.trace_parent);
    executor_->BeginStream(options_.tracer, verify_span_->context());
    const size_t n = std::max<size_t>(1, executor_->lanes());
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { LaneLoop(i); });
    }
  }

  void SealCurrentShard() {
    if (current_.empty()) {
      return;
    }
    ShardPayload<G> shard;
    shard.owned = std::move(current_);
    shard.base = next_base_;
    shard.shard_index = next_shard_index_++;
    shard.compute_products = options_.compute_products;
    next_base_ += shard.owned.size();
    current_ = std::vector<ClientUploadMsg<G>>();
    current_.reserve(options_.shard_capacity);
    Enqueue(std::move(shard));
  }

  // Hands one sealed shard to the lanes, blocking while the in-flight window
  // is full. The wait is the backpressure signal: it is both histogrammed
  // and folded out of the caller-visible ingest stage time.
  void Enqueue(ShardPayload<G> shard) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (inflight_ >= options_.max_inflight_shards && !closed_) {
        Stopwatch wait;
        producer_cv_.wait(lock, [&] {
          return inflight_ < options_.max_inflight_shards || closed_;
        });
        const double waited_ms = wait.ElapsedMillis();
        backpressure_wait_ms_ += waited_ms;
        obs::GlobalHistogram(obs::kBackpressureWaitUs)->Record(waited_ms * 1000.0);
      }
      if (closed_) {
        return;  // aborted concurrently; drop the shard
      }
      queue_.push_back(std::move(shard));
      ++inflight_;
      ++shards_cut_;
      obs::GlobalGauge(obs::kStreamInflightShards)->Set(static_cast<int64_t>(inflight_));
      obs::GlobalGauge(obs::kShardQueueDepth)->Set(static_cast<int64_t>(queue_.size()));
      UpdateBufferedGauge();
    }
    lane_cv_.notify_one();
  }

  void LaneLoop(size_t lane) {
    while (true) {
      ShardPayload<G> shard;
      {
        std::unique_lock<std::mutex> lock(mu_);
        lane_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) {
          break;  // closed and drained
        }
        shard = std::move(queue_.front());
        queue_.pop_front();
        obs::GlobalGauge(obs::kShardQueueDepth)->Set(static_cast<int64_t>(queue_.size()));
      }
      ShardResult<G> result = executor_->ExecuteShard(lane, shard);
      const size_t retired = shard.count();
      shard = ShardPayload<G>();  // release the uploads before taking the lock
      done_uploads_.fetch_add(retired, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        accepted_so_far_ += result.accepted.size();
        rejected_so_far_ += result.rejections.size();
        results_.push_back(std::move(result));
        ++shards_done_;
        --inflight_;
        obs::GlobalGauge(obs::kStreamInflightShards)->Set(static_cast<int64_t>(inflight_));
        UpdateBufferedGauge();
      }
      producer_cv_.notify_all();
    }
    executor_->CloseLane(lane);
  }

  void CloseAndJoin() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    lane_cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
    threads_.clear();
  }

  // Resident uploads = ingested minus retired (counts the fill buffer,
  // queued shards, and shards being executed). The gauge's max() is the
  // stream's memory high-water mark in uploads.
  void UpdateBufferedGauge() {
    const size_t ingested = ingested_.load(std::memory_order_relaxed);
    const size_t done = done_uploads_.load(std::memory_order_relaxed);
    obs::GlobalGauge(obs::kStreamBufferedUploads)
        ->Set(static_cast<int64_t>(ingested - std::min(done, ingested)));
  }

  // Runs between streams (lanes joined), but concurrent observers may still
  // be reading the cross-thread state: hold mu_ for everything it shares
  // with Progress()/PartialReport()/the backpressure getters.
  void ResetState() {
    current_.clear();
    started_ = false;
    next_base_ = 0;
    next_shard_index_ = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.clear();
      results_.clear();
      closed_ = false;
      shards_cut_ = 0;
      shards_done_ = 0;
      inflight_ = 0;
      accepted_so_far_ = 0;
      rejected_so_far_ = 0;
      backpressure_wait_ms_ = 0;
    }
    ingested_.store(0, std::memory_order_relaxed);
    done_uploads_.store(0, std::memory_order_relaxed);
    obs::GlobalGauge(obs::kStreamInflightShards)->Set(0);
    obs::GlobalGauge(obs::kStreamBufferedUploads)->Set(0);
    obs::GlobalGauge(obs::kShardQueueDepth)->Set(0);
  }

  ProtocolConfig config_;
  ShardExecutor<G>* executor_;
  StreamDispatchOptions options_;

  // Producer-side state (touched only by the ingesting thread).
  std::vector<ClientUploadMsg<G>> current_;
  size_t next_base_ = 0;
  size_t next_shard_index_ = 0;
  bool started_ = false;
  std::optional<obs::TraceSpan> verify_span_;
  std::vector<std::thread> threads_;

  // Cross-thread state.
  mutable std::mutex mu_;
  std::condition_variable lane_cv_;      // shards available / stream closed
  std::condition_variable producer_cv_;  // window opened
  std::deque<ShardPayload<G>> queue_;
  std::vector<ShardResult<G>> results_;
  bool closed_ = false;
  size_t inflight_ = 0;  // queued + executing
  size_t shards_cut_ = 0;
  size_t shards_done_ = 0;
  size_t accepted_so_far_ = 0;
  size_t rejected_so_far_ = 0;
  double backpressure_wait_ms_ = 0;
  double last_backpressure_wait_ms_ = 0;
  std::atomic<size_t> ingested_{0};
  std::atomic<size_t> done_uploads_{0};
};

// One-shot partitioned verification of an in-memory vector through the same
// dispatcher/lane machinery as streaming, viewing the caller's memory (no
// copies). The partition is the historical one -- num_shards contiguous
// slices of n*s/shards boundaries, clamped to [1, max(1, n)] -- so shard
// coordinates, and therefore reports, are unchanged from the buffered era.
// Sets timings.verify_ms (the drive wall) and timings.combine_ms.
template <PrimeOrderGroup G>
VerifyReport<G> DispatchAllShards(const ProtocolConfig& config, ShardExecutor<G>* executor,
                                  const std::vector<ClientUploadMsg<G>>& uploads,
                                  size_t num_shards, bool compute_products,
                                  obs::TraceCollector* tracer = nullptr,
                                  obs::TraceContext trace_parent = {}) {
  Stopwatch timer;
  const size_t n = uploads.size();
  size_t shards = std::max<size_t>(1, num_shards);
  shards = std::min(shards, std::max<size_t>(1, n));
  StreamDispatchOptions options;
  options.compute_products = compute_products;
  // Bulk input is already resident; a window would only idle lanes.
  options.max_inflight_shards = shards;
  options.tracer = tracer;
  options.trace_parent = trace_parent;
  StreamDispatcher<G> dispatcher(config, executor, options);
  for (size_t s = 0; s < shards; ++s) {
    const size_t from = n * s / shards;
    const size_t to = n * (s + 1) / shards;
    dispatcher.AddView(uploads.data() + from, to - from);
  }
  VerifyReport<G> report = dispatcher.Finish();
  report.timings.verify_ms = std::max(0.0, timer.ElapsedMillis() - report.timings.combine_ms);
  return report;
}

}  // namespace vdp

#endif  // SRC_SHARD_STREAM_DISPATCH_H_
