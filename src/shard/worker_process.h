// Child-process plumbing for the multi-process verifier: spawn a
// verify_worker with its stdin/stdout bridged to driver-side pipe fds, and
// tear it down without leaking fds or zombies. Group-agnostic; the wire
// protocol spoken over the pipes lives in src/wire/.
#ifndef SRC_SHARD_WORKER_PROCESS_H_
#define SRC_SHARD_WORKER_PROCESS_H_

#include <sys/types.h>

#include <optional>
#include <string>

namespace vdp {

struct WorkerProcess {
  pid_t pid = -1;
  int task_fd = -1;    // driver writes frames here (worker's stdin)
  int result_fd = -1;  // driver reads frames here (worker's stdout)
  size_t worker_id = 0;
};

// Absolute path of the verify_worker binary: $VDP_VERIFY_WORKER_PATH if set,
// else a sibling of the running executable (both land in the same build
// directory). Empty when neither resolves.
std::string DefaultWorkerPath();

// Forks and execs `path <worker_id>` with pipes on stdin/stdout (stderr is
// inherited so worker diagnostics reach the driver's log). nullopt when the
// pipes or fork fail; an exec failure surfaces later as EOF on result_fd.
std::optional<WorkerProcess> SpawnWorker(const std::string& path, size_t worker_id);

// Closes the pipes, SIGKILLs if still running, and reaps. Returns a short
// human-readable description of how the worker ended ("exited 0",
// "killed by signal 9", ...) for blame reports.
std::string DestroyWorker(WorkerProcess* worker);

// The reap ladder shared by every child spawner (verify_worker pipes,
// verify_server daemons): up to ~500ms of WNOHANG polling for a graceful
// exit, then SIGKILL, then an EINTR-retried blocking reap. Returns the
// blame-report description of how the child ended.
std::string ReapChild(pid_t pid);

// Process-wide, idempotent: a write into a dead worker must fail with EPIPE
// instead of killing the driver.
void IgnoreSigpipe();

}  // namespace vdp

#endif  // SRC_SHARD_WORKER_PROCESS_H_
