// The shard compute core: verify one contiguous shard of the upload stream
// and deterministically combine per-shard outcomes into a VerifyReport.
//
// Extracted from sharded_verifier.h so every execution layer -- the
// in-process streaming dispatcher (stream_dispatch.h), the subprocess pool
// (process_pool.h), the remote socket fleet (src/net/remote_fleet.h), and
// the wire workers themselves -- shares one implementation of the batched
// validation algorithm and one combiner. Guarantees:
//
//   - Equivalence: the merged accepted set, rejection reasons, and the
//     per-prover/per-bin products of accepted commitments are bit-identical
//     to what the monolithic PublicVerifier::ValidateClients path computes
//     (per-client decisions are independent and deterministic; sharding only
//     changes which random-linear combination covers which proofs, and batch
//     failure always falls back to the per-proof oracle).
//   - Confined blame attribution: a corrupted upload makes only its own
//     shard's RLC check fail, so only that shard re-verifies per proof. The
//     fallback cost is bounded by the shard size, not the population.
#ifndef SRC_SHARD_SHARD_RESULT_H_
#define SRC_SHARD_SHARD_RESULT_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/batch/batch_or_proof.h"
#include "src/common/timer.h"
#include "src/core/client.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/verify/report.h"

namespace vdp {

namespace shard_internal {

// Dispatch policy shared by the one-shot and streaming paths: fan whole
// shards across the pool only when there are enough of them to occupy every
// worker; otherwise run them serially and give each shard the full pool
// internally (same total work, full parallelism either way). verify is
// called as verify(shard_index, inner_pool).
template <typename Fn>
void DispatchShards(size_t n, ThreadPool* pool, const Fn& verify) {
  if (pool != nullptr && n > 1 && n >= pool->worker_count()) {
    pool->ParallelFor(n, [&](size_t s) { verify(s, nullptr); });
  } else {
    for (size_t s = 0; s < n; ++s) {
      verify(s, pool);
    }
  }
}

}  // namespace shard_internal

// Outcome of verifying one contiguous shard of the upload stream. Everything
// downstream (combiner, Eq. 10 check) needs survives here; the uploads
// themselves can be released once this is produced.
template <PrimeOrderGroup G>
struct ShardResult {
  size_t shard_index = 0;
  size_t base = 0;   // global index of the shard's first upload
  size_t count = 0;  // uploads in the shard
  // Global indices of accepted uploads, ascending.
  std::vector<size_t> accepted;
  // (global index, reason) for every rejected upload, ascending by index.
  std::vector<std::pair<size_t, std::string>> rejections;
  // partial_products[k][m] = prod over accepted uploads of commitments[k][m]
  // -- this shard's contribution to the Eq. 10 left-hand side.
  std::vector<std::vector<typename G::Element>> partial_products;
  // True iff this shard's RLC batch check failed and the shard re-verified
  // per proof to attribute blame.
  bool fallback_used = false;
};

// Reduces per-upload verdicts (ok / why, with global index base + i) to a
// compact ShardResult: accepted indices, rejections, and optionally the
// per-(prover, bin) partial products of accepted commitments. The single
// implementation of result assembly -- VerifyShard and PerProofBackend
// (src/verify/per_proof_backend.h) both build their results here, so the
// bit-identity contract between backends cannot be broken by one copy
// drifting. Consumes `why` (details are moved out).
template <PrimeOrderGroup G>
ShardResult<G> BuildShardResult(const ProtocolConfig& config,
                                const ClientUploadMsg<G>* uploads, size_t count, size_t base,
                                size_t shard_index, const std::vector<uint8_t>& ok,
                                std::vector<std::string>& why, bool compute_products,
                                bool fallback_used = false) {
  using Element = typename G::Element;
  ShardResult<G> result;
  result.shard_index = shard_index;
  result.base = base;
  result.count = count;
  result.fallback_used = fallback_used;
  if (compute_products) {
    result.partial_products.assign(config.num_provers,
                                   std::vector<Element>(config.num_bins, G::Identity()));
  }
  for (size_t i = 0; i < count; ++i) {
    if (ok[i] == 0) {
      result.rejections.emplace_back(base + i, std::move(why[i]));
      continue;
    }
    result.accepted.push_back(base + i);
    if (!compute_products) {
      continue;
    }
    for (size_t k = 0; k < config.num_provers; ++k) {
      for (size_t m = 0; m < config.num_bins; ++m) {
        result.partial_products[k][m] =
            G::Mul(result.partial_products[k][m], uploads[i].commitments[k][m]);
      }
    }
  }
  return result;
}

// Verifies uploads[0..count) as one shard whose first element has global
// index `base`. Structural checks and (on fallback) per-proof re-checks fan
// across `pool`; the RLC batch check shards its MSM onto `pool` too. Pass
// pool == nullptr when calling from inside a pool task (ParallelFor does not
// nest). This is the single implementation of the batched validation
// algorithm: BatchedBackend (src/verify/batched_backend.h) runs it as one
// whole-stream shard, so the batched and sharded paths cannot drift apart.
template <PrimeOrderGroup G>
ShardResult<G> VerifyShard(const ProtocolConfig& config, const Pedersen<G>& ped,
                           const ClientUploadMsg<G>* uploads, size_t count, size_t base,
                           size_t shard_index, ThreadPool* pool = nullptr,
                           bool compute_products = true,
                           obs::TraceCollector* tracer = nullptr,
                           obs::TraceContext trace_parent = {}) {
  using Element = typename G::Element;
  Stopwatch shard_timer;
  obs::TraceSpan shard_span(tracer, "shard", trace_parent);
  shard_span.set_detail("shard=" + std::to_string(shard_index) +
                        " n=" + std::to_string(count));
  std::vector<uint8_t> ok(count, 0);
  std::vector<std::string> why(count);
  std::vector<std::vector<Element>> aggregated(count);

  // Structural pass: shape, per-bin aggregated commitments, one-hot opening.
  obs::TraceSpan structure_span(tracer, "structure", shard_span.context());
  auto structure = [&](size_t i) {
    auto agg = ClientUploadStructure(uploads[i], config, ped, &why[i]);
    if (agg.has_value()) {
      aggregated[i] = std::move(*agg);
      ok[i] = 1;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(count, structure);
  } else {
    for (size_t i = 0; i < count; ++i) {
      structure(i);
    }
  }
  structure_span.End();

  // One RLC check over every bin proof of every structurally valid upload in
  // this shard. Contexts carry the *global* client index, so the challenge
  // schedule is identical to the monolithic verifier's.
  std::vector<OrInstance<G>> instances;
  for (size_t i = 0; i < count; ++i) {
    if (ok[i] == 0) {
      continue;
    }
    for (size_t bin = 0; bin < aggregated[i].size(); ++bin) {
      instances.push_back({aggregated[i][bin], uploads[i].bin_proofs[bin],
                           ClientProofContext(config.session_id, base + i, bin)});
    }
  }
  bool fallback_used = false;
  obs::TraceSpan rlc_span(tracer, "rlc", shard_span.context());
  const bool rlc_ok = BatchOrVerify(ped, instances, pool);
  rlc_span.End();
  if (!rlc_ok) {
    // Someone in *this shard* cheated; re-run the per-proof oracle on this
    // shard only. Decisions stay bit-identical to the monolithic path because
    // the per-upload verdict is independent of every other upload.
    fallback_used = true;
    obs::TraceSpan fallback_span(tracer, "fallback", shard_span.context());
    auto recheck = [&](size_t i) {
      if (ok[i] == 0) {
        return;
      }
      for (size_t bin = 0; bin < aggregated[i].size(); ++bin) {
        if (!OrVerify(ped, aggregated[i][bin], uploads[i].bin_proofs[bin],
                      ClientProofContext(config.session_id, base + i, bin))) {
          why[i] = kDetailProofInvalid;
          ok[i] = 0;
          return;
        }
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(count, recheck);
    } else {
      for (size_t i = 0; i < count; ++i) {
        recheck(i);
      }
    }
  }

  const double shard_us = shard_timer.ElapsedMicros();
  obs::GlobalHistogram(obs::kVerifyShardMs)->Record(shard_us / 1000.0);
  if (count > 0) {
    obs::GlobalHistogram(obs::kVerifyUsPerProof)->Record(shard_us / static_cast<double>(count));
  }
  return BuildShardResult(config, uploads, count, base, shard_index, ok, why,
                          compute_products, fallback_used);
}

// Deterministic combiner: merges shard results (which must cover contiguous,
// ascending ranges) into the global VerifyReport. Pure data-plane: no group
// or hash operations beyond one Mul per shard per (prover, bin). When
// compute_products is false the report carries no products (has_products()
// is false) so downstream consumers recompute Eq. 10 from the uploads.
template <PrimeOrderGroup G>
VerifyReport<G> CombineShardResults(const ProtocolConfig& config,
                                    std::vector<ShardResult<G>> results,
                                    bool compute_products = true) {
  using Element = typename G::Element;
  Stopwatch timer;
  std::sort(results.begin(), results.end(),
            [](const ShardResult<G>& a, const ShardResult<G>& b) {
              return a.shard_index < b.shard_index;
            });
  VerifyReport<G> report;
  report.num_shards = results.size();
  if (compute_products) {
    report.commitment_products.assign(config.num_provers,
                                      std::vector<Element>(config.num_bins, G::Identity()));
  }
  for (const ShardResult<G>& r : results) {
    report.total_uploads += r.count;
    if (r.fallback_used) {
      ++report.shards_with_fallback;
    }
    report.accepted.insert(report.accepted.end(), r.accepted.begin(), r.accepted.end());
    for (const auto& [index, why] : r.rejections) {
      report.rejections.push_back(RejectionReason{index, ClassifyRejectDetail(why), why});
    }
    if (!compute_products || r.partial_products.empty()) {
      continue;  // nothing to fold in
    }
    for (size_t k = 0; k < config.num_provers; ++k) {
      for (size_t m = 0; m < config.num_bins; ++m) {
        report.commitment_products[k][m] =
            G::Mul(report.commitment_products[k][m], r.partial_products[k][m]);
      }
    }
  }
  report.timings.combine_ms = timer.ElapsedMillis();
  return report;
}

}  // namespace vdp

#endif  // SRC_SHARD_SHARD_RESULT_H_
