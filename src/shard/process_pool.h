// Multi-process shard verification: an executor that farms shards of the
// upload stream out to verify_worker subprocesses over pipes, speaking the
// versioned wire format of src/wire/, and feeds the decoded ShardResults
// into the same deterministic combiner as the in-process pipeline.
//
// Topology: the streaming dispatcher (src/shard/stream_dispatch.h) runs one
// lane per configured worker; each lane owns one worker process (spawned
// from tools/verify_worker.cc) and receives shards as the dispatcher seals
// them, so workers verify while ingestion continues. Failure handling is
// strictly per-shard:
//
//   - A worker that dies, emits garbage, or exceeds the shard deadline is
//     destroyed (blame recorded: which worker, which shard, how it ended)
//     and a replacement is spawned for the retry.
//   - A shard whose retries are exhausted is re-verified *in process*, so a
//     broken worker fleet degrades to the PR-2 sharded path instead of
//     losing shards.
//
// Either way every shard yields exactly one ShardResult and the combined
// verdict is bit-identical to the in-process path; worker failures only show
// up in the ProcessPoolReport.
#ifndef SRC_SHARD_PROCESS_POOL_H_
#define SRC_SHARD_PROCESS_POOL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/timer.h"
#include "src/shard/shard_result.h"
#include "src/shard/stream_dispatch.h"
#include "src/shard/worker_process.h"
#include "src/wire/frame_io.h"
#include "src/wire/wire_convert.h"

namespace vdp {

// One failed attempt at farming a shard out: who was blamed and why. The
// shard itself still completes (on a replacement worker or in process).
struct WorkerFailure {
  size_t shard_index = 0;
  size_t worker_id = 0;
  pid_t pid = -1;
  std::string reason;
};

struct ProcessPoolReport {
  std::vector<WorkerFailure> failures;
  size_t shards_total = 0;
  size_t shards_from_workers = 0;
  size_t shards_recovered_in_process = 0;  // retries exhausted, verified locally
  size_t workers_spawned = 0;
};

struct ProcessPoolOptions {
  size_t num_workers = 2;
  // Empty picks DefaultWorkerPath() (env override or build-dir sibling).
  std::string worker_path;
  // Deadline for one shard round-trip (send task, receive result).
  int shard_timeout_ms = 120'000;
  // Deadline for the hello frame after spawn.
  int handshake_timeout_ms = 15'000;
  // Worker attempts per shard before the in-process fallback.
  size_t max_worker_attempts = 2;
  // When set, dispatches record "dispatch" spans here (parented under
  // trace_parent), span context crosses the wire, and worker-recorded spans
  // are adopted back into this collector. Used by the one-shot VerifyAll
  // entry point; dispatcher streams override it via BeginStream.
  obs::TraceCollector* tracer = nullptr;
  obs::TraceContext trace_parent{};
};

template <PrimeOrderGroup G>
class MultiprocessVerifier final : public ShardExecutor<G> {
 public:
  MultiprocessVerifier(const ProtocolConfig& config, Pedersen<G> ped,
                       ProcessPoolOptions options = {})
      : config_(config), ped_(std::move(ped)), options_(std::move(options)) {
    if (options_.num_workers == 0) {
      options_.num_workers = 1;
    }
    if (options_.worker_path.empty()) {
      options_.worker_path = DefaultWorkerPath();
    }
    wire::WireSetup setup = wire::MakeWireSetup(config_, ped_);
    setup_payload_ = setup.Serialize();
    params_digest_ = setup.Digest();
    workers_.resize(options_.num_workers);
  }

  ~MultiprocessVerifier() override {
    for (size_t lane = 0; lane < workers_.size(); ++lane) {
      CloseLane(lane);
    }
  }

  // --- ShardExecutor ------------------------------------------------------
  // Lanes map 1:1 to worker processes; workers spawn lazily when their lane
  // first claims a shard and live until the stream drains (CloseLane).

  size_t lanes() const override { return options_.num_workers; }

  void BeginStream(obs::TraceCollector* tracer, obs::TraceContext verify_ctx) override {
    ShardExecutor<G>::BeginStream(tracer, verify_ctx);
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_ = ProcessPoolReport{};
  }

  ShardResult<G> ExecuteShard(size_t lane, const ShardPayload<G>& shard) override {
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      ++report_.shards_total;
    }
    // One dispatch span covers every attempt at this shard; the worker's own
    // spans parent under it via the task's trace extension.
    obs::TraceSpan dispatch_span(this->tracer_, "dispatch", this->verify_ctx_);
    dispatch_span.set_detail("shard=" + std::to_string(shard.shard_index));
    wire::WireShardTask task =
        wire::MakeShardTask<G>(params_digest_, shard.shard_index, shard.base,
                               shard.compute_products, shard.data(), shard.count());
    task.trace_id = dispatch_span.context().trace_id;
    task.parent_span_id = dispatch_span.context().span_id;
    const Bytes task_payload = task.Serialize();
    // Retries resend task_payload; only the task's scalar metadata is needed
    // from here on. Dropping the per-upload copies halves the per-shard
    // memory held across the worker round-trip.
    task.uploads.clear();
    task.uploads.shrink_to_fit();

    ShardResult<G> result;
    bool done = false;
    // A task the frame layer would refuse (payload over kMaxFramePayload)
    // can never succeed on any worker: skip the futile attempts and go
    // straight to the in-process fallback, with the reason on record.
    // (Seen only with shards of ~1M+ uploads; raise num_verify_shards or
    // lower the stream shard capacity.)
    const bool oversized = task_payload.size() > wire::kMaxFramePayload;
    if (oversized) {
      RecordFailure(shard.shard_index, /*worker_id=*/SIZE_MAX, -1,
                    "task frame exceeds wire payload limit (" +
                        std::to_string(task_payload.size()) +
                        " bytes); shard too large -- raise num_verify_shards");
    }
    std::optional<WorkerProcess>& worker = workers_[lane];
    for (size_t attempt = 0; attempt < options_.max_worker_attempts && !done && !oversized;
         ++attempt) {
      if (attempt > 0) {
        obs::GlobalCounter(obs::kPoolRetries)->Increment();
      }
      if (!worker.has_value()) {
        worker = StartWorker(shard.shard_index);
        if (!worker.has_value()) {
          continue;  // spawn/handshake failure already blamed
        }
      }
      std::string blame;
      if (AttemptShard(*worker, task_payload, task, shard.count(), &result, &dispatch_span,
                       &blame)) {
        std::lock_guard<std::mutex> lock(report_mutex_);
        ++report_.shards_from_workers;
        done = true;
      } else {
        RecordFailure(shard.shard_index, worker->worker_id, worker->pid,
                      blame + " (" + DestroyWorker(&*worker) + ")");
        worker.reset();
      }
    }
    if (!done) {
      // Retries exhausted: verify locally so the shard -- and the combined
      // verdict -- is never lost to a broken fleet.
      result = VerifyShard(config_, ped_, shard.data(), shard.count(), shard.base,
                           shard.shard_index, nullptr, shard.compute_products, this->tracer_,
                           dispatch_span.context());
      std::lock_guard<std::mutex> lock(report_mutex_);
      ++report_.shards_recovered_in_process;
    }
    return result;
  }

  void CloseLane(size_t lane) override {
    if (lane < workers_.size() && workers_[lane].has_value()) {
      DestroyWorker(&*workers_[lane]);
      workers_[lane].reset();
    }
  }

  // Fleet health accumulated since BeginStream (or construction).
  ProcessPoolReport TakeReport() {
    std::lock_guard<std::mutex> lock(report_mutex_);
    ProcessPoolReport out = std::move(report_);
    report_ = ProcessPoolReport{};
    return out;
  }

  // One-shot verification of an in-memory vector across the worker fleet.
  // The shard partition honors config.num_verify_shards when set (> 1);
  // otherwise it defaults to two shards per worker so a straggler can be
  // overlapped. Runs through the same dispatcher/lane machinery as
  // streaming, viewing the caller's vector (no copies).
  VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                            bool compute_products = true,
                            ProcessPoolReport* report = nullptr) {
    const size_t shards = config_.num_verify_shards > 1 ? config_.num_verify_shards
                                                        : 2 * options_.num_workers;
    VerifyReport<G> combined = DispatchAllShards<G>(config_, this, uploads, shards,
                                                    compute_products, options_.tracer,
                                                    options_.trace_parent);
    if (report != nullptr) {
      *report = TakeReport();
    }
    return combined;
  }

 private:
  // Spawns and handshakes one worker: hello (version check) then setup.
  std::optional<WorkerProcess> StartWorker(size_t shard_for_blame) {
    const size_t id = next_worker_id_.fetch_add(1);
    auto worker = SpawnWorker(options_.worker_path, id);
    if (!worker.has_value()) {
      RecordFailure(shard_for_blame, id, -1, "spawn failed: " + options_.worker_path);
      return std::nullopt;
    }
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      ++report_.workers_spawned;
    }
    obs::GlobalCounter(obs::kPoolWorkersSpawned)->Increment();
    wire::Frame frame;
    wire::ReadStatus status =
        wire::ReadFrame(worker->result_fd, &frame, options_.handshake_timeout_ms);
    std::string blame;
    if (status != wire::ReadStatus::kOk) {
      blame = std::string("no hello (") + wire::ReadStatusName(status) + ")";
    } else if (frame.type != wire::FrameType::kHello) {
      blame = "handshake sent wrong frame type";
    } else {
      auto hello = wire::WireHello::Deserialize(frame.payload);
      if (!hello.has_value()) {
        blame = "malformed hello";
      } else if (hello->version != wire::kWireVersion) {
        blame = "wire version mismatch: worker speaks v" + std::to_string(hello->version);
      } else if (wire::WriteFrame(worker->task_fd, wire::FrameType::kSetup,
                                  setup_payload_) != wire::WriteStatus::kOk) {
        blame = "setup write failed";
      }
    }
    if (!blame.empty()) {
      RecordFailure(shard_for_blame, id, worker->pid,
                    blame + " (" + DestroyWorker(&*worker) + ")");
      return std::nullopt;
    }
    return worker;
  }

  // One task round-trip on a live worker, under ONE shard_timeout_ms
  // deadline covering both the task write and the result read. On failure
  // fills `blame` and returns false; the caller destroys the worker.
  bool AttemptShard(const WorkerProcess& worker, BytesView task_payload,
                    const wire::WireShardTask& task, size_t expected_count,
                    ShardResult<G>* out, obs::TraceSpan* dispatch_span,
                    std::string* blame) {
    const auto start = std::chrono::steady_clock::now();
    wire::WriteStatus wstatus = wire::WriteFrame(worker.task_fd, wire::FrameType::kTask,
                                                 task_payload, options_.shard_timeout_ms);
    if (wstatus != wire::WriteStatus::kOk) {
      *blame = wstatus == wire::WriteStatus::kTimeout ? "task write timed out"
                                                      : "task write failed";
      return false;
    }
    const auto write_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    const int remaining_ms = static_cast<int>(
        std::max<long long>(0, options_.shard_timeout_ms - write_ms));
    wire::Frame frame;
    wire::ReadStatus status = wire::ReadFrame(worker.result_fd, &frame, remaining_ms);
    if (status != wire::ReadStatus::kOk) {
      *blame = std::string("no result (") + wire::ReadStatusName(status) + ")";
      return false;
    }
    if (frame.type == wire::FrameType::kError) {
      auto error = wire::WireError::Deserialize(frame.payload);
      *blame = "worker error: " + (error.has_value() ? error->message : "<malformed>");
      return false;
    }
    if (frame.type != wire::FrameType::kResult) {
      *blame = "unexpected frame type in response";
      return false;
    }
    auto wire_result = wire::WireShardResult::Deserialize(frame.payload);
    if (!wire_result.has_value()) {
      *blame = "malformed result frame";
      return false;
    }
    if (!ConstantTimeEqual(BytesView(wire_result->params_digest.data(),
                                     wire_result->params_digest.size()),
                           BytesView(params_digest_.data(), params_digest_.size())) ||
        wire_result->shard_index != task.shard_index || wire_result->base != task.base ||
        wire_result->count != expected_count ||
        wire_result->partial_products.empty() == (task.compute_products == 1)) {
      *blame = "result does not match task";
      return false;
    }
    auto result = wire::ResultFromWire<G>(config_, *wire_result);
    if (!result.has_value()) {
      *blame = "result elements fail group decoding";
      return false;
    }
    if (this->tracer_ != nullptr && !wire_result->spans.empty()) {
      // Worker spans are relative to its task receipt; land them inside the
      // dispatch span on the driver's timeline.
      this->tracer_->AdoptRemote(
          wire::SpansFromWire(wire_result->spans,
                              "worker:" + std::to_string(worker.worker_id)),
          dispatch_span->start_us());
    }
    *out = std::move(*result);
    return true;
  }

  void RecordFailure(size_t shard, size_t worker_id, pid_t pid, std::string reason) {
    obs::GlobalCounter(obs::kPoolBlamed)->Increment();
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.failures.push_back(WorkerFailure{shard, worker_id, pid, std::move(reason)});
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
  ProcessPoolOptions options_;
  Bytes setup_payload_;
  Sha256::Digest params_digest_;
  std::vector<std::optional<WorkerProcess>> workers_;  // one slot per lane
  std::atomic<size_t> next_worker_id_{0};
  std::mutex report_mutex_;
  ProcessPoolReport report_;
};

}  // namespace vdp

#endif  // SRC_SHARD_PROCESS_POOL_H_
