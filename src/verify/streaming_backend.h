// Shared lifecycle for backends that stream: uploads flow through the shard
// dispatcher (src/shard/stream_dispatch.h) as they are Added, so shards ship
// to the backend's executor -- pool threads, verify_worker subprocesses,
// remote verify_server daemons -- while ingestion continues, and resident
// memory is bounded by the dispatcher's in-flight window instead of the
// stream length.
//
// Derived classes provide the executor (MakeExecutor) and the historical
// one-shot shard partition (OneShotShardCount); this base provides the
// Start/Add/Finish lifecycle, the zero-copy bulk VerifyAll (which discards
// any buffered stream, like BufferedVerifyBackend's), live Progress, and the
// canonical stage accounting:
//
//   total  = wall time inside Add + wall time inside Finish
//   ingest = Add wall minus the time Add spent blocked on the window
//            (backpressure is verify-side congestion, not buffering cost)
//   verify = backpressure wait + the Finish drain, minus combine
//   combine = the deterministic merge (set by CombineShardResults)
//
// so ingest + verify + combine == total and a saturated pipeline shows up as
// verify time, exactly where the bottleneck is.
#ifndef SRC_VERIFY_STREAMING_BACKEND_H_
#define SRC_VERIFY_STREAMING_BACKEND_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/shard/stream_dispatch.h"
#include "src/verify/backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class StreamingVerifyBackend : public VerifyBackend<G> {
 public:
  void Start(const VerifyOptions& options) override {
    options_ = options;
    AbortStream();
  }

  void Add(ClientUploadMsg<G> upload) override {
    EnsureStream();  // tolerate Add-before-Start like the buffered backends
    TrackFirstAdd();
    Stopwatch timer;
    dispatcher_->Add(std::move(upload));
    add_wall_ms_ += timer.ElapsedMillis();
  }

  void AddBulk(std::vector<ClientUploadMsg<G>>&& uploads) override {
    if (uploads.empty()) {
      return;
    }
    EnsureStream();
    TrackFirstAdd();
    Stopwatch timer;
    dispatcher_->AddBulk(std::move(uploads));
    add_wall_ms_ += timer.ElapsedMillis();
  }

  VerifyReport<G> Finish() override {
    EnsureStream();  // Finish-without-Start yields an empty report
    // Producer time blocked on the window so far is verify-side congestion;
    // the remainder of the Add wall is the true ingest cost.
    const double wait_before_ms = dispatcher_->backpressure_wait_ms();
    const double ingest_ms = std::max(0.0, add_wall_ms_ - wait_before_ms);
    RecordIngestSpan(ingest_ms);
    Stopwatch timer;
    VerifyReport<G> report = dispatcher_->Finish();
    const double finish_wall_ms = timer.ElapsedMillis();
    // Sealing the last partial shard inside Finish can block on the window
    // too; that wait is already inside finish_wall_ms, so only the
    // pre-Finish wait is added on top of the drain.
    const double total_wait_ms = dispatcher_->last_backpressure_wait_ms();
    const double drain_wait_ms = std::max(0.0, total_wait_ms - wait_before_ms);
    report.backend = this->name();
    report.timings.ingest_ms = ingest_ms;
    report.timings.verify_ms = std::max(
        0.0, total_wait_ms + finish_wall_ms - drain_wait_ms - report.timings.combine_ms);
    report.timings.total_ms = add_wall_ms_ + finish_wall_ms;
    add_wall_ms_ = 0;
    first_add_us_ = 0;
    ingested_any_ = false;
    OnStreamFinished();
    return report;
  }

  VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                            const VerifyOptions& options = {}) override {
    // Like Start: a one-shot call discards any buffered stream and fixes the
    // options a later lazily-opened stream will reuse.
    options_ = options;
    AbortStream();
    Stopwatch timer;
    executor_ = MakeExecutor(options_, /*streaming=*/false);
    // Zero-copy bulk path: contiguous shards over the caller's vector, same
    // dispatcher machinery, historical partition.
    VerifyReport<G> report = DispatchAllShards<G>(
        config(), executor_.get(), uploads, OneShotShardCount(uploads.size()),
        options_.compute_products, options_.tracer, options_.trace_parent);
    report.backend = this->name();
    report.timings.total_ms = timer.ElapsedMillis();
    OnStreamFinished();
    return report;
  }

  VerifyProgress Progress() const override {
    // The dispatcher is engaged lazily on the producer thread (EnsureStream),
    // but Progress is documented any-thread-safe, so observers must not peek
    // at the optional directly: has_value() and the dispatcher's constructor
    // writes are unsynchronized with a concurrent emplace. Reading through
    // the release-published pointer gives the needed happens-before (pinned
    // by fleet_stress_test's RemoteBackendProgressWhileStreaming, which
    // fails under TSan on the optional-based read).
    const StreamDispatcher<G>* live = live_dispatcher_.load(std::memory_order_acquire);
    return live != nullptr ? live->Progress() : VerifyProgress{};
  }

 protected:
  // The execution engine shards are handed to. Called once per stream (and
  // once per one-shot VerifyAll); the base owns the result and keeps it
  // alive until the next stream starts.
  virtual std::unique_ptr<ShardExecutor<G>> MakeExecutor(const VerifyOptions& options,
                                                         bool streaming) = 0;

  // The bulk-path partition for n uploads, before clamping to [1, max(1,n)].
  // Fixed per backend so one-shot shard coordinates -- and reports -- are
  // unchanged from the buffered era.
  virtual size_t OneShotShardCount(size_t n) const = 0;

  virtual const ProtocolConfig& config() const = 0;

  // Runs after every Finish/VerifyAll; fleet backends harvest their
  // executor's health report here.
  virtual void OnStreamFinished() {}

  const VerifyOptions& options() const { return options_; }

  // Discards any open stream (queued shards dropped, lanes joined) and the
  // executor. Derived destructors MUST call this: the dispatcher's teardown
  // reaches into the executor, so both have to go down here, not in member
  // destruction order.
  void AbortStream() {
    if (dispatcher_.has_value()) {
      // Unpublish before teardown so a stale observer sees "no stream"
      // rather than a dispatcher mid-destruction. (Teardown itself still
      // requires observers to have quiesced, same as destruction.)
      live_dispatcher_.store(nullptr, std::memory_order_release);
      dispatcher_->Abort();
      dispatcher_.reset();
    }
    executor_.reset();
    add_wall_ms_ = 0;
    first_add_us_ = 0;
    ingested_any_ = false;
  }

 private:
  void EnsureStream() {
    if (dispatcher_.has_value()) {
      return;
    }
    executor_ = MakeExecutor(options_, /*streaming=*/true);
    StreamDispatchOptions dispatch_options;
    dispatch_options.shard_capacity = options_.stream_shard_capacity > 0
                                          ? options_.stream_shard_capacity
                                          : config().stream_shard_capacity;
    dispatch_options.max_inflight_shards = options_.stream_max_inflight_shards > 0
                                               ? options_.stream_max_inflight_shards
                                               : config().stream_max_inflight_shards;
    dispatch_options.compute_products = options_.compute_products;
    dispatch_options.tracer = options_.tracer;
    dispatch_options.trace_parent = options_.trace_parent;
    dispatcher_.emplace(config(), executor_.get(), dispatch_options);
    // Publish only after the dispatcher is fully constructed; Progress()
    // acquires through this pointer instead of touching the optional.
    live_dispatcher_.store(&*dispatcher_, std::memory_order_release);
  }

  void TrackFirstAdd() {
    if (!ingested_any_ && options_.tracer != nullptr) {
      first_add_us_ = options_.tracer->NowUs();
    }
    ingested_any_ = true;
  }

  // The ingest stage as one span: anchored at the first Add, lasting the
  // backpressure-corrected buffering time (mirrors BufferedVerifyBackend).
  void RecordIngestSpan(double ingest_ms) {
    if (options_.tracer == nullptr || !ingested_any_) {
      return;
    }
    obs::SpanRecord span;
    span.name = kStageIngest;
    span.trace_id = options_.trace_parent.trace_id != 0 ? options_.trace_parent.trace_id
                                                        : options_.tracer->trace_id();
    span.span_id = obs::NextSpanId();
    span.parent_span_id = options_.trace_parent.span_id;
    span.start_us = first_add_us_;
    span.duration_us = static_cast<uint64_t>(ingest_ms * 1000.0);
    options_.tracer->Record(std::move(span));
  }

  VerifyOptions options_;
  // Declaration order is load-bearing: the dispatcher must be destroyed (and
  // its lanes joined) before the executor it points into. AbortStream()
  // enforces the same order for every non-destructor teardown.
  std::unique_ptr<ShardExecutor<G>> executor_;
  std::optional<StreamDispatcher<G>> dispatcher_;
  // Cross-thread view of dispatcher_: set (release) after emplace, cleared
  // before reset, loaded (acquire) by Progress(). Observers only ever reach
  // the dispatcher through this pointer.
  std::atomic<StreamDispatcher<G>*> live_dispatcher_{nullptr};
  double add_wall_ms_ = 0;
  uint64_t first_add_us_ = 0;
  bool ingested_any_ = false;
};

}  // namespace vdp

#endif  // SRC_VERIFY_STREAMING_BACKEND_H_
