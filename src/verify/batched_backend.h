// BatchedBackend: the whole stream verified as ONE random-linear-combination
// check over a single multi-scalar multiplication (PR 1's src/batch/), with
// per-proof blame attribution only when the combined check fails.
//
// Implemented as VerifyShard (src/shard/sharded_verifier.h) on a single
// whole-stream shard -- the same code the sharded pipeline runs per shard,
// so the batched and sharded decisions cannot drift apart.
#ifndef SRC_VERIFY_BATCHED_BACKEND_H_
#define SRC_VERIFY_BATCHED_BACKEND_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/shard/sharded_verifier.h"
#include "src/verify/backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class BatchedBackend final : public BufferedVerifyBackend<G> {
 public:
  BatchedBackend(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  std::string_view name() const override { return "batched"; }

 protected:
  VerifyReport<G> Run(const std::vector<ClientUploadMsg<G>>& uploads) override {
    const VerifyOptions& options = this->options();
    Stopwatch timer;
    obs::TraceSpan verify_span(options.tracer, kStageVerify, options.trace_parent);
    ShardResult<G> result = VerifyShard(config_, ped_, uploads.data(), uploads.size(),
                                        /*base=*/0, /*shard_index=*/0, options.pool,
                                        options.compute_products, options.tracer,
                                        verify_span.context());
    const double verify_ms = timer.ElapsedMillis();
    verify_span.End();
    std::vector<ShardResult<G>> results;
    results.push_back(std::move(result));
    obs::TraceSpan combine_span(options.tracer, kStageCombine, options.trace_parent);
    VerifyReport<G> report =
        CombineShardResults(config_, std::move(results), options.compute_products);
    combine_span.End();
    report.backend = name();
    report.timings.verify_ms = verify_ms;
    return report;
  }

 private:
  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_BATCHED_BACKEND_H_
