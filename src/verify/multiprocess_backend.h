// MultiprocessBackend: shards farmed out to verify_worker subprocesses over
// the versioned wire format (PR 3's src/shard/process_pool.h), with blamed
// retries and in-process recovery, so the verdict never depends on fleet
// health.
//
// Worker topology comes from ProtocolConfig::verify_workers (>= 2; a config
// that selected this backend through the factory always has it). Streaming
// Add buffers until Finish: shards only leave the process as whole wire
// frames. A future RemoteBackend (socket transport) slots in exactly here --
// same interface, different transport under the pool driver.
#ifndef SRC_VERIFY_MULTIPROCESS_BACKEND_H_
#define SRC_VERIFY_MULTIPROCESS_BACKEND_H_

#include <string>
#include <utility>
#include <vector>

#include "src/shard/process_pool.h"
#include "src/verify/backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class MultiprocessBackend final : public BufferedVerifyBackend<G> {
 public:
  MultiprocessBackend(const ProtocolConfig& config, Pedersen<G> ped,
                      ProcessPoolOptions options = {})
      : config_(config), ped_(std::move(ped)), pool_options_(std::move(options)) {
    // Fleet size: the config's verify_workers wins when it selects this
    // backend; otherwise an explicit caller-supplied option is honored, and
    // only then the default kicks in.
    if (config_.verify_workers > 1) {
      pool_options_.num_workers = config_.verify_workers;
    } else if (pool_options_.num_workers == 0) {
      pool_options_.num_workers = kDefaultWorkers;
    }
  }

  std::string_view name() const override { return "multiprocess"; }

  // Fleet health of the most recent stream: blamed failures, shards served
  // by workers vs recovered in process, workers spawned.
  const ProcessPoolReport& last_pool_report() const { return last_pool_report_; }

 protected:
  VerifyReport<G> Run(const std::vector<ClientUploadMsg<G>>& uploads) override {
    ProcessPoolOptions options = pool_options_;
    options.tracer = this->options().tracer;
    options.trace_parent = this->options().trace_parent;
    MultiprocessVerifier<G> verifier(config_, ped_, options);
    VerifyReport<G> report = verifier.VerifyAll(uploads, this->options().compute_products,
                                                &last_pool_report_);
    report.backend = name();
    return report;
  }

 private:
  static constexpr size_t kDefaultWorkers = 2;

  ProtocolConfig config_;
  Pedersen<G> ped_;
  ProcessPoolOptions pool_options_;
  ProcessPoolReport last_pool_report_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_MULTIPROCESS_BACKEND_H_
