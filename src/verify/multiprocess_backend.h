// MultiprocessBackend: shards farmed out to verify_worker subprocesses over
// the versioned wire format (src/shard/process_pool.h), with blamed retries
// and in-process recovery, so the verdict never depends on fleet health.
//
// Worker topology comes from ProtocolConfig::verify_workers (>= 2; a config
// that selected this backend through the factory always has it). Streaming
// Add cuts shards through the dispatcher and ships them to workers while
// ingestion continues -- shards only leave the process as whole wire frames,
// and at most the in-flight window of them is resident at once.
#ifndef SRC_VERIFY_MULTIPROCESS_BACKEND_H_
#define SRC_VERIFY_MULTIPROCESS_BACKEND_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/shard/process_pool.h"
#include "src/verify/streaming_backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class MultiprocessBackend final : public StreamingVerifyBackend<G> {
 public:
  MultiprocessBackend(const ProtocolConfig& config, Pedersen<G> ped,
                      ProcessPoolOptions options = {})
      : config_(config), ped_(std::move(ped)), pool_options_(std::move(options)) {
    // Fleet size: the config's verify_workers wins when it selects this
    // backend; otherwise an explicit caller-supplied option is honored, and
    // only then the default kicks in.
    if (config_.verify_workers > 1) {
      pool_options_.num_workers = config_.verify_workers;
    } else if (pool_options_.num_workers == 0) {
      pool_options_.num_workers = kDefaultWorkers;
    }
  }

  ~MultiprocessBackend() override { this->AbortStream(); }

  std::string_view name() const override { return "multiprocess"; }

  // Fleet health of the most recent stream: blamed failures, shards served
  // by workers vs recovered in process, workers spawned.
  const ProcessPoolReport& last_pool_report() const { return last_pool_report_; }

 protected:
  std::unique_ptr<ShardExecutor<G>> MakeExecutor(const VerifyOptions& /*options*/,
                                                 bool /*streaming*/) override {
    auto verifier = std::make_unique<MultiprocessVerifier<G>>(config_, ped_, pool_options_);
    verifier_ = verifier.get();
    return verifier;
  }

  size_t OneShotShardCount(size_t /*n*/) const override {
    return config_.num_verify_shards > 1 ? config_.num_verify_shards
                                         : 2 * pool_options_.num_workers;
  }

  const ProtocolConfig& config() const override { return config_; }

  void OnStreamFinished() override {
    if (verifier_ != nullptr) {
      last_pool_report_ = verifier_->TakeReport();
    }
  }

 private:
  static constexpr size_t kDefaultWorkers = 2;

  ProtocolConfig config_;
  Pedersen<G> ped_;
  ProcessPoolOptions pool_options_;
  MultiprocessVerifier<G>* verifier_ = nullptr;  // owned by the base as the executor
  ProcessPoolReport last_pool_report_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_MULTIPROCESS_BACKEND_H_
