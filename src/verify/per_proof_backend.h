// PerProofBackend: the oracle execution of Line 3 -- every Sigma-OR proof of
// every upload verified individually (src/core/client.h's
// ValidateClientUpload), independent uploads fanned across the thread pool.
//
// This is the slowest backend and the ground truth: the RLC-batched, sharded,
// multi-process, and remote backends all fall back to this per-proof check to
// attribute blame, which is why their decisions cannot diverge from it.
//
// Streaming runs the same per-proof oracle over dispatcher-cut shards (the
// verdict is per-upload and carries the global index, so the cut is
// invisible in the report); the one-shot path keeps the historical single
// whole-stream shard with the pool fanned across uploads.
#ifndef SRC_VERIFY_PER_PROOF_BACKEND_H_
#define SRC_VERIFY_PER_PROOF_BACKEND_H_

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/client.h"
#include "src/shard/stream_dispatch.h"
#include "src/verify/streaming_backend.h"

namespace vdp {

// Verifies a shard proof-by-proof -- no RLC, no batching, no sub-spans; the
// plain oracle. Result assembly still goes through BuildShardResult so the
// bit-identity contract with every other backend has one implementation.
template <PrimeOrderGroup G>
class PerProofShardExecutor final : public ShardExecutor<G> {
 public:
  // forced_lanes == 1 gives the single shard the whole pool internally (the
  // one-shot shape); forced_lanes == 0 sizes lanes to the pool and runs each
  // shard serially within its lane (the streaming shape).
  PerProofShardExecutor(const ProtocolConfig& config, const Pedersen<G>& ped,
                        ThreadPool* pool, size_t forced_lanes = 0)
      : config_(config),
        ped_(ped),
        pool_(pool),
        lanes_(forced_lanes > 0 ? forced_lanes
               : pool != nullptr ? std::max<size_t>(1, pool->worker_count())
                                 : 1) {}

  size_t lanes() const override { return lanes_; }

  ShardResult<G> ExecuteShard(size_t /*lane*/, const ShardPayload<G>& shard) override {
    ThreadPool* inner = lanes_ == 1 ? pool_ : nullptr;
    const ClientUploadMsg<G>* uploads = shard.data();
    const size_t n = shard.count();
    std::vector<uint8_t> ok(n, 0);
    std::vector<std::string> why(n);
    auto work = [&](size_t i) {
      ok[i] = ValidateClientUpload(uploads[i], shard.base + i, config_, ped_, &why[i]) ? 1 : 0;
    };
    if (inner != nullptr) {
      inner->ParallelFor(n, work);
    } else {
      for (size_t i = 0; i < n; ++i) {
        work(i);
      }
    }
    return BuildShardResult(config_, uploads, n, shard.base, shard.shard_index, ok, why,
                            shard.compute_products);
  }

 private:
  const ProtocolConfig& config_;
  const Pedersen<G>& ped_;
  ThreadPool* pool_;
  size_t lanes_;
};

template <PrimeOrderGroup G>
class PerProofBackend final : public StreamingVerifyBackend<G> {
 public:
  PerProofBackend(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  ~PerProofBackend() override { this->AbortStream(); }

  std::string_view name() const override { return "per-proof"; }

 protected:
  std::unique_ptr<ShardExecutor<G>> MakeExecutor(const VerifyOptions& options,
                                                 bool streaming) override {
    return std::make_unique<PerProofShardExecutor<G>>(config_, ped_, options.pool,
                                                      streaming ? 0 : 1);
  }

  // The oracle's one-shot unit of work is the whole stream.
  size_t OneShotShardCount(size_t /*n*/) const override { return 1; }

  const ProtocolConfig& config() const override { return config_; }

 private:
  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_PER_PROOF_BACKEND_H_
