// PerProofBackend: the oracle execution of Line 3 -- every Sigma-OR proof of
// every upload verified individually (src/core/client.h's
// ValidateClientUpload), independent uploads fanned across the thread pool.
//
// This is the slowest backend and the ground truth: the RLC-batched, sharded,
// and multi-process backends all fall back to this per-proof check to
// attribute blame, which is why their decisions cannot diverge from it.
#ifndef SRC_VERIFY_PER_PROOF_BACKEND_H_
#define SRC_VERIFY_PER_PROOF_BACKEND_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/core/client.h"
#include "src/shard/sharded_verifier.h"
#include "src/verify/backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class PerProofBackend final : public BufferedVerifyBackend<G> {
 public:
  using Element = typename G::Element;

  PerProofBackend(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  std::string_view name() const override { return "per-proof"; }

 protected:
  // Per-proof verdicts reduce to one whole-stream ShardResult and go through
  // the same CombineShardResults as every other backend, so report assembly
  // (typed rejections, product fold) has a single implementation.
  VerifyReport<G> Run(const std::vector<ClientUploadMsg<G>>& uploads) override {
    const VerifyOptions& options = this->options();
    const size_t n = uploads.size();
    Stopwatch timer;
    obs::TraceSpan verify_span(options.tracer, kStageVerify, options.trace_parent);
    std::vector<uint8_t> ok(n, 0);
    std::vector<std::string> why(n);
    auto work = [&](size_t i) {
      ok[i] = ValidateClientUpload(uploads[i], i, config_, ped_, &why[i]) ? 1 : 0;
    };
    if (options.pool != nullptr) {
      options.pool->ParallelFor(n, work);
    } else {
      for (size_t i = 0; i < n; ++i) {
        work(i);
      }
    }

    ShardResult<G> result =
        BuildShardResult(config_, uploads.data(), n, /*base=*/0, /*shard_index=*/0, ok, why,
                         options.compute_products);
    const double verify_ms = timer.ElapsedMillis();
    verify_span.End();

    std::vector<ShardResult<G>> results;
    results.push_back(std::move(result));
    obs::TraceSpan combine_span(options.tracer, kStageCombine, options.trace_parent);
    VerifyReport<G> report =
        CombineShardResults(config_, std::move(results), options.compute_products);
    combine_span.End();
    report.backend = name();
    report.timings.verify_ms = verify_ms;
    return report;
  }

 private:
  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_PER_PROOF_BACKEND_H_
