// ShardedBackend: the upload stream partitioned into contiguous shards, each
// batch-verified independently (RLC + MSM) by the in-process executor, cut
// and dispatched by the streaming spine (src/shard/stream_dispatch.h), and
// merged by the deterministic combiner.
//
// Streaming Add keeps memory bounded: full shards leave for pool lanes as
// soon as they are cut, and Add blocks at the in-flight window. The bulk
// path partitions the caller's vector in place with no copies.
#ifndef SRC_VERIFY_SHARDED_BACKEND_H_
#define SRC_VERIFY_SHARDED_BACKEND_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/shard/stream_dispatch.h"
#include "src/verify/streaming_backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class ShardedBackend final : public StreamingVerifyBackend<G> {
 public:
  ShardedBackend(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  ~ShardedBackend() override { this->AbortStream(); }

  std::string_view name() const override { return "sharded"; }

 protected:
  std::unique_ptr<ShardExecutor<G>> MakeExecutor(const VerifyOptions& options,
                                                 bool /*streaming*/) override {
    return std::make_unique<InProcessShardExecutor<G>>(config_, ped_, options.pool);
  }

  size_t OneShotShardCount(size_t /*n*/) const override {
    return config_.num_verify_shards;
  }

  const ProtocolConfig& config() const override { return config_; }

 private:
  ProtocolConfig config_;
  Pedersen<G> ped_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_SHARDED_BACKEND_H_
