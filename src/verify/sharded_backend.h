// ShardedBackend: the upload stream partitioned into contiguous shards, each
// batch-verified independently (RLC + MSM, fanned across the ThreadPool) and
// merged by the deterministic combiner (PR 2's src/shard/sharded_verifier.h).
//
// Streaming Add keeps memory bounded (full shards are reduced to compact
// ShardResults as soon as enough have buffered); the bulk path partitions the
// caller's vector in place with no copies.
#ifndef SRC_VERIFY_SHARDED_BACKEND_H_
#define SRC_VERIFY_SHARDED_BACKEND_H_

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/shard/sharded_verifier.h"
#include "src/verify/backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class ShardedBackend final : public VerifyBackend<G> {
 public:
  ShardedBackend(const ProtocolConfig& config, Pedersen<G> ped)
      : config_(config), ped_(std::move(ped)) {}

  std::string_view name() const override { return "sharded"; }

  void Start(const VerifyOptions& options) override {
    options_ = options;
    stream_.emplace(config_, ped_, options_.pool, /*shard_capacity=*/0,
                    /*max_pending_shards=*/0, options_.compute_products);
    stream_->SetTracer(options_.tracer, options_.trace_parent);
    add_wall_ms_ = 0;
  }

  void Add(ClientUploadMsg<G> upload) override {
    EnsureStream();  // tolerate Add-before-Start like the buffered backends
    Stopwatch timer;
    stream_->Add(std::move(upload));
    add_wall_ms_ += timer.ElapsedMillis();
  }

  VerifyReport<G> Finish() override {
    EnsureStream();  // Finish-without-Start yields an empty report
    // Time spent inside Add splits into ingest (buffering) and verify (the
    // flushes Add triggered); the stream tracks the latter.
    const double verify_during_add_ms = stream_->flushed_verify_ms();
    Stopwatch timer;
    VerifyReport<G> report = stream_->Finish();
    const double finish_wall_ms = timer.ElapsedMillis();
    report.backend = name();
    report.timings.ingest_ms = std::max(0.0, add_wall_ms_ - verify_during_add_ms);
    report.timings.total_ms = add_wall_ms_ + finish_wall_ms;
    add_wall_ms_ = 0;
    stream_.reset();
    return report;
  }

  VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                            const VerifyOptions& options = {}) override {
    // Like Start: a one-shot call discards any buffered stream and fixes the
    // options a later lazily-opened stream will reuse.
    options_ = options;
    stream_.reset();
    Stopwatch timer;
    // Zero-copy bulk path: contiguous shards over the caller's vector.
    VerifyReport<G> report = ShardedVerifier<G>::VerifyAll(config_, ped_, uploads,
                                                           options.pool,
                                                           options.compute_products,
                                                           options.tracer,
                                                           options.trace_parent);
    report.backend = name();
    report.timings.total_ms = timer.ElapsedMillis();
    return report;
  }

 private:
  // Lazily (re)opens the stream with the most recent options, mirroring how
  // BufferedVerifyBackend retains options_ across Finish.
  void EnsureStream() {
    if (!stream_.has_value()) {
      Start(options_);
    }
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
  VerifyOptions options_;
  std::optional<ShardedVerifier<G>> stream_;
  double add_wall_ms_ = 0;
};

}  // namespace vdp

#endif  // SRC_VERIFY_SHARDED_BACKEND_H_
