// VerifyBackend: the one seam through which client-upload verification
// (Line 3 of Figure 2) executes.
//
// The paper's public verifier is a single logical object; this interface
// keeps it that way in code. Every execution strategy -- per-proof,
// RLC-batched, in-process sharded, multi-process, and eventually a remote
// fleet over sockets -- implements the same three-step lifecycle:
//
//   backend->Start(options);          // begin a stream
//   backend->Add(upload);             // ingest uploads (or Submit(vector))
//   VerifyReport<G> r = backend->Finish();
//
// and produces the same structured VerifyReport (src/verify/report.h), with
// bit-identical accepted sets, rejection reasons, and commitment products.
// Callers (PublicVerifier, RunProtocol, AuditTranscript) never dispatch on
// ProtocolConfig flags themselves; MakeVerifyBackend (src/verify/factory.h)
// owns that policy.
#ifndef SRC_VERIFY_BACKEND_H_
#define SRC_VERIFY_BACKEND_H_

#include <string_view>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/messages.h"
#include "src/verify/report.h"

namespace vdp {

// Per-stream knobs, fixed at Start().
struct VerifyOptions {
  // Compute the per-prover/per-bin products of accepted commitments (the
  // client half of Eq. 10). Skip when only decisions are needed.
  bool compute_products = true;
  // Thread pool for in-process parallelism; nullptr runs serially. Backends
  // with their own execution resources (worker processes) may ignore it.
  ThreadPool* pool = nullptr;
};

template <PrimeOrderGroup G>
class VerifyBackend {
 public:
  virtual ~VerifyBackend() = default;

  // Stable identifier ("per-proof", "batched", "sharded", "multiprocess");
  // stamped into every report this backend produces.
  virtual std::string_view name() const = 0;

  // Begins a fresh verification stream, discarding any prior state. Must be
  // called before Add/Submit; a backend is reusable via a new Start after
  // Finish.
  virtual void Start(const VerifyOptions& options) = 0;

  // Ingests the next upload of the broadcast stream; global indices are
  // assigned in arrival order. Backends may verify eagerly (bounded-memory
  // streaming) or buffer until Finish.
  virtual void Add(ClientUploadMsg<G> upload) = 0;

  // Verifies everything ingested since Start and returns the combined
  // report. Resets the stream state.
  virtual VerifyReport<G> Finish() = 0;

  // Bulk ingestion; equivalent to Add for each element.
  void Submit(const std::vector<ClientUploadMsg<G>>& uploads) {
    for (const ClientUploadMsg<G>& upload : uploads) {
      Add(upload);
    }
  }

  // One-shot convenience: Start + Submit + Finish. Backends with a zero-copy
  // bulk path override this; it must behave exactly like the streaming
  // lifecycle, including discarding any previously buffered stream (the
  // conformance suite asserts result identity).
  virtual VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                                    const VerifyOptions& options = {}) {
    Start(options);
    Submit(uploads);
    return Finish();
  }
};

// Shared lifecycle for backends that buffer the whole stream and verify at
// Finish (per-proof, batched, multiprocess -- and any future backend whose
// unit of work is the full stream, like a remote fleet). Derived classes
// implement one hook, Run(uploads), and get a consistent Start/Add/Finish
// plus a zero-copy VerifyAll for free: the one-shot path verifies the
// caller's vector directly, with Start clearing any stale buffered stream so
// one-shot and streaming can never interleave into a phantom report.
template <PrimeOrderGroup G>
class BufferedVerifyBackend : public VerifyBackend<G> {
 public:
  void Start(const VerifyOptions& options) override {
    options_ = options;
    buffer_.clear();
  }

  void Add(ClientUploadMsg<G> upload) override { buffer_.push_back(std::move(upload)); }

  VerifyReport<G> Finish() override {
    VerifyReport<G> report = Run(buffer_);
    buffer_.clear();
    return report;
  }

  VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                            const VerifyOptions& options = {}) override {
    Start(options);
    return Run(uploads);  // zero-copy: the caller's vector is the stream
  }

 protected:
  // Verifies one whole stream under options(). Must not touch the buffer.
  virtual VerifyReport<G> Run(const std::vector<ClientUploadMsg<G>>& uploads) = 0;

  const VerifyOptions& options() const { return options_; }

 private:
  VerifyOptions options_;
  std::vector<ClientUploadMsg<G>> buffer_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_BACKEND_H_
