// VerifyBackend: the one seam through which client-upload verification
// (Line 3 of Figure 2) executes.
//
// The paper's public verifier is a single logical object; this interface
// keeps it that way in code. Every execution strategy -- per-proof,
// RLC-batched, in-process sharded, multi-process, and eventually a remote
// fleet over sockets -- implements the same three-step lifecycle:
//
//   backend->Start(options);          // begin a stream
//   backend->Add(upload);             // ingest uploads (or Submit(vector))
//   VerifyReport<G> r = backend->Finish();
//
// and produces the same structured VerifyReport (src/verify/report.h), with
// bit-identical accepted sets, rejection reasons, and commitment products.
// Callers (PublicVerifier, RunProtocol, AuditTranscript) never dispatch on
// ProtocolConfig flags themselves; MakeVerifyBackend (src/verify/factory.h)
// owns that policy.
#ifndef SRC_VERIFY_BACKEND_H_
#define SRC_VERIFY_BACKEND_H_

#include <string_view>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/core/messages.h"
#include "src/obs/trace.h"
#include "src/verify/report.h"

namespace vdp {

// Per-stream knobs, fixed at Start().
struct VerifyOptions {
  // Compute the per-prover/per-bin products of accepted commitments (the
  // client half of Eq. 10). Skip when only decisions are needed.
  bool compute_products = true;
  // Thread pool for in-process parallelism; nullptr runs serially. Backends
  // with their own execution resources (worker processes) may ignore it.
  ThreadPool* pool = nullptr;
  // Streaming knobs for backends on the shard dispatcher
  // (src/shard/stream_dispatch.h): uploads per sealed shard, and the bound
  // on shards cut but not yet retired (Add blocks when it is reached). 0
  // defers to the ProtocolConfig's stream_* fields, which at 0 defer to the
  // dispatcher's defaults. Ignored by backends that buffer the whole stream.
  size_t stream_shard_capacity = 0;
  size_t stream_max_inflight_shards = 0;
  // When set, the stream records trace spans (ingest, verify, per-shard
  // dispatch, combine) into this collector, parented under trace_parent --
  // for the remote/multiprocess backends the span context also crosses the
  // wire so worker/server spans stitch into the same tree. Null collector =
  // tracing off, zero overhead.
  obs::TraceCollector* tracer = nullptr;
  obs::TraceContext trace_parent{};
};

template <PrimeOrderGroup G>
class VerifyBackend {
 public:
  virtual ~VerifyBackend() = default;

  // Stable identifier ("per-proof", "batched", "sharded", "multiprocess");
  // stamped into every report this backend produces.
  virtual std::string_view name() const = 0;

  // Begins a fresh verification stream, discarding any prior state. Must be
  // called before Add/Submit; a backend is reusable via a new Start after
  // Finish.
  virtual void Start(const VerifyOptions& options) = 0;

  // Ingests the next upload of the broadcast stream; global indices are
  // assigned in arrival order. Backends may verify eagerly (bounded-memory
  // streaming) or buffer until Finish.
  virtual void Add(ClientUploadMsg<G> upload) = 0;

  // Verifies everything ingested since Start and returns the combined
  // report. Resets the stream state.
  virtual VerifyReport<G> Finish() = 0;

  // Bulk ingestion that surrenders the buffer: equivalent to Add of each
  // element in arrival order, but backends may adopt the allocation outright
  // (no per-upload copies). The vector is left empty.
  virtual void AddBulk(std::vector<ClientUploadMsg<G>>&& uploads) {
    for (ClientUploadMsg<G>& upload : uploads) {
      Add(std::move(upload));
    }
    uploads.clear();
  }

  // Bulk ingestion; equivalent to Add for each element.
  void Submit(const std::vector<ClientUploadMsg<G>>& uploads) {
    for (const ClientUploadMsg<G>& upload : uploads) {
      Add(upload);
    }
  }

  // Rvalue fast path: moves the uploads into the stream instead of copying.
  void Submit(std::vector<ClientUploadMsg<G>>&& uploads) {
    AddBulk(std::move(uploads));
  }

  // Point-in-time pipeline state of the current stream. Streaming backends
  // report live shard/window occupancy; buffered backends report only what
  // has accumulated. Zeroes outside a stream.
  virtual VerifyProgress Progress() const { return VerifyProgress{}; }

  // One-shot convenience: Start + Submit + Finish. Backends with a zero-copy
  // bulk path override this; it must behave exactly like the streaming
  // lifecycle, including discarding any previously buffered stream (the
  // conformance suite asserts result identity).
  virtual VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                                    const VerifyOptions& options = {}) {
    Start(options);
    Submit(uploads);
    return Finish();
  }
};

// Shared lifecycle for backends that buffer the whole stream and verify at
// Finish (per-proof, batched, multiprocess -- and any future backend whose
// unit of work is the full stream, like a remote fleet). Derived classes
// implement one hook, Run(uploads), and get a consistent Start/Add/Finish
// plus a zero-copy VerifyAll for free: the one-shot path verifies the
// caller's vector directly, with Start clearing any stale buffered stream so
// one-shot and streaming can never interleave into a phantom report.
template <PrimeOrderGroup G>
class BufferedVerifyBackend : public VerifyBackend<G> {
 public:
  void Start(const VerifyOptions& options) override {
    options_ = options;
    buffer_.clear();
    ingest_ms_ = 0;
    first_add_us_ = 0;
    ingested_any_ = false;
  }

  void Add(ClientUploadMsg<G> upload) override {
    if (!ingested_any_ && options_.tracer != nullptr) {
      first_add_us_ = options_.tracer->NowUs();
    }
    ingested_any_ = true;
    Stopwatch timer;
    buffer_.push_back(std::move(upload));
    ingest_ms_ += timer.ElapsedMillis();
  }

  void AddBulk(std::vector<ClientUploadMsg<G>>&& uploads) override {
    if (uploads.empty()) {
      return;
    }
    if (!ingested_any_ && options_.tracer != nullptr) {
      first_add_us_ = options_.tracer->NowUs();
    }
    ingested_any_ = true;
    Stopwatch timer;
    if (buffer_.empty()) {
      buffer_ = std::move(uploads);  // adopt the caller's allocation outright
    } else {
      buffer_.insert(buffer_.end(), std::make_move_iterator(uploads.begin()),
                     std::make_move_iterator(uploads.end()));
    }
    uploads.clear();
    ingest_ms_ += timer.ElapsedMillis();
  }

  VerifyProgress Progress() const override {
    VerifyProgress progress;
    progress.uploads_ingested = buffer_.size();
    progress.buffered_uploads = buffer_.size();
    return progress;
  }

  VerifyReport<G> Finish() override {
    RecordIngestSpan();
    Stopwatch timer;
    VerifyReport<G> report = Run(buffer_);
    buffer_.clear();
    report.timings.ingest_ms = ingest_ms_;
    report.timings.total_ms = ingest_ms_ + timer.ElapsedMillis();
    ingest_ms_ = 0;
    ingested_any_ = false;
    return report;
  }

  VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                            const VerifyOptions& options = {}) override {
    Start(options);
    Stopwatch timer;
    // Zero-copy: the caller's vector is the stream (no ingest stage paid).
    VerifyReport<G> report = Run(uploads);
    report.timings.total_ms = timer.ElapsedMillis();
    return report;
  }

 protected:
  // Verifies one whole stream under options(). Must not touch the buffer.
  virtual VerifyReport<G> Run(const std::vector<ClientUploadMsg<G>>& uploads) = 0;

  const VerifyOptions& options() const { return options_; }

 private:
  // The ingest stage as one span: anchored at the first Add, lasting the
  // accumulated in-backend buffering time (caller time between Adds is the
  // caller's, not this backend's).
  void RecordIngestSpan() {
    if (options_.tracer == nullptr || !ingested_any_) {
      return;
    }
    obs::SpanRecord span;
    span.name = kStageIngest;
    span.trace_id = options_.trace_parent.trace_id != 0 ? options_.trace_parent.trace_id
                                                        : options_.tracer->trace_id();
    span.span_id = obs::NextSpanId();
    span.parent_span_id = options_.trace_parent.span_id;
    span.start_us = first_add_us_;
    span.duration_us = static_cast<uint64_t>(ingest_ms_ * 1000.0);
    options_.tracer->Record(std::move(span));
  }

  VerifyOptions options_;
  std::vector<ClientUploadMsg<G>> buffer_;
  double ingest_ms_ = 0;
  uint64_t first_add_us_ = 0;
  bool ingested_any_ = false;
};

}  // namespace vdp

#endif  // SRC_VERIFY_BACKEND_H_
