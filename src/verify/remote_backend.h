// RemoteBackend: shards farmed out to verify_server daemons over
// authenticated sockets (src/net/remote_fleet.h), with blamed retries,
// reconnects, and in-process recovery, so the verdict never depends on
// fleet health -- the fifth registered execution strategy, and the first
// whose verifiers live on other machines.
//
// The fleet comes from ProtocolConfig::remote_verifiers (validated
// endpoints; a config that selected this backend through the factory always
// has them) and authenticates with ProtocolConfig::remote_auth_key_hex.
// Streaming Add buffers until Finish: shards only leave the process as
// whole authenticated wire frames, exactly like the subprocess pool.
#ifndef SRC_VERIFY_REMOTE_BACKEND_H_
#define SRC_VERIFY_REMOTE_BACKEND_H_

#include <string>
#include <utility>
#include <vector>

#include "src/net/remote_fleet.h"
#include "src/verify/backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class RemoteBackend final : public BufferedVerifyBackend<G> {
 public:
  RemoteBackend(const ProtocolConfig& config, Pedersen<G> ped,
                RemoteFleetOptions options = {})
      : config_(config), ped_(std::move(ped)), fleet_options_(std::move(options)) {}

  std::string_view name() const override { return "remote"; }

  // Fleet health of the most recent stream: blamed failures, shards served
  // remotely vs recovered in process, connections and reconnects.
  const RemoteFleetReport& last_fleet_report() const { return last_fleet_report_; }

 protected:
  VerifyReport<G> Run(const std::vector<ClientUploadMsg<G>>& uploads) override {
    RemoteFleetOptions options = fleet_options_;
    options.tracer = this->options().tracer;
    options.trace_parent = this->options().trace_parent;
    RemoteVerifierFleet<G> fleet(config_, ped_, options);
    VerifyReport<G> report = fleet.VerifyAll(uploads, this->options().compute_products,
                                             &last_fleet_report_);
    report.backend = name();
    return report;
  }

 private:
  ProtocolConfig config_;
  Pedersen<G> ped_;
  RemoteFleetOptions fleet_options_;
  RemoteFleetReport last_fleet_report_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_REMOTE_BACKEND_H_
