// RemoteBackend: shards farmed out to verify_server daemons over
// authenticated sockets (src/net/remote_fleet.h), with blamed retries,
// reconnects, and in-process recovery, so the verdict never depends on
// fleet health -- the fifth registered execution strategy, and the first
// whose verifiers live on other machines.
//
// The fleet comes from ProtocolConfig::remote_verifiers (validated
// endpoints; a config that selected this backend through the factory always
// has them) and authenticates with ProtocolConfig::remote_auth_key_hex.
// Streaming Add cuts shards through the dispatcher and ships them to the
// fleet while ingestion continues -- shards only leave the process as whole
// authenticated wire frames, and at most the in-flight window of them is
// resident at once.
#ifndef SRC_VERIFY_REMOTE_BACKEND_H_
#define SRC_VERIFY_REMOTE_BACKEND_H_

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/remote_fleet.h"
#include "src/verify/streaming_backend.h"

namespace vdp {

template <PrimeOrderGroup G>
class RemoteBackend final : public StreamingVerifyBackend<G> {
 public:
  RemoteBackend(const ProtocolConfig& config, Pedersen<G> ped,
                RemoteFleetOptions options = {})
      : config_(config), ped_(std::move(ped)), fleet_options_(std::move(options)) {}

  ~RemoteBackend() override { this->AbortStream(); }

  std::string_view name() const override { return "remote"; }

  // Fleet health of the most recent stream: blamed failures, shards served
  // remotely vs recovered in process, connections and reconnects.
  const RemoteFleetReport& last_fleet_report() const { return last_fleet_report_; }

 protected:
  std::unique_ptr<ShardExecutor<G>> MakeExecutor(const VerifyOptions& /*options*/,
                                                 bool /*streaming*/) override {
    auto fleet = std::make_unique<RemoteVerifierFleet<G>>(config_, ped_, fleet_options_);
    fleet_ = fleet.get();
    return fleet;
  }

  size_t OneShotShardCount(size_t /*n*/) const override {
    return config_.num_verify_shards > 1
               ? config_.num_verify_shards
               : 2 * std::max<size_t>(1, config_.remote_verifiers.size());
  }

  const ProtocolConfig& config() const override { return config_; }

  void OnStreamFinished() override {
    if (fleet_ != nullptr) {
      last_fleet_report_ = fleet_->TakeReport();
    }
  }

 private:
  ProtocolConfig config_;
  Pedersen<G> ped_;
  RemoteFleetOptions fleet_options_;
  RemoteVerifierFleet<G>* fleet_ = nullptr;  // owned by the base as the executor
  RemoteFleetReport last_fleet_report_;
};

}  // namespace vdp

#endif  // SRC_VERIFY_REMOTE_BACKEND_H_
