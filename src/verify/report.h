// The structured result of client-upload verification: one report type,
// produced identically by every VerifyBackend (src/verify/backend.h).
//
// The paper's public verifier is a single logical object -- anyone can rerun
// Line 3 of Figure 2 from the broadcast transcript -- so no matter which
// execution strategy performed the checks (per-proof, RLC-batched, sharded,
// multi-process, or a future remote fleet), the *outcome* must be expressible
// in one shape: which uploads were accepted, why each rejected upload was
// rejected (typed, not a formatted string), and the per-prover/per-bin
// products of accepted commitments that feed the Eq. 10 final check.
#ifndef SRC_VERIFY_REPORT_H_
#define SRC_VERIFY_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/group/group.h"

namespace vdp {

// Why one client upload was rejected during Line-3 validation. These mirror
// the failure points of ClientUploadStructure / OrVerify (src/core/client.h);
// every backend classifies identically because they all reject through the
// same two functions.
enum class RejectCode : uint8_t {
  kMalformedUpload,  // wrong shape: commitment matrix or proof vector sizes
  kNotOneHot,        // bin commitments do not open to exactly one (M > 1)
  kProofInvalid,     // a bin's Sigma-OR proof failed verification
  kUnspecified,      // reject reason did not match a known detail string
};

inline const char* RejectCodeName(RejectCode code) {
  switch (code) {
    case RejectCode::kMalformedUpload:
      return "malformed-upload";
    case RejectCode::kNotOneHot:
      return "not-one-hot";
    case RejectCode::kProofInvalid:
      return "proof-invalid";
    case RejectCode::kUnspecified:
      return "unspecified";
  }
  return "unknown";
}

// The canonical detail strings of the validation layer. Producers
// (src/core/client.h, the per-proof fallback in src/shard/) and the
// classifier below share these constants, so a reworded rejection cannot
// silently decouple the typed code from the string.
inline constexpr const char* kDetailMalformedUpload = "malformed upload shape";
inline constexpr const char* kDetailNotOneHot = "bins do not sum to one";
inline constexpr const char* kDetailProofInvalid = "bin OR proof invalid";

// Maps the canonical detail strings of the validation layer to typed codes.
// Centralized so a detail string produced by any backend -- including one
// decoded from a worker's wire ShardResult -- classifies the same way.
inline RejectCode ClassifyRejectDetail(std::string_view detail) {
  if (detail == kDetailMalformedUpload) {
    return RejectCode::kMalformedUpload;
  }
  if (detail == kDetailNotOneHot) {
    return RejectCode::kNotOneHot;
  }
  if (detail == kDetailProofInvalid) {
    return RejectCode::kProofInvalid;
  }
  return RejectCode::kUnspecified;
}

// One rejected upload: global index, typed code, human-readable detail.
struct RejectionReason {
  size_t index = 0;
  RejectCode code = RejectCode::kUnspecified;
  std::string detail;

  // The canonical rendering, identical from every backend (and identical to
  // the strings the pre-VerifyBackend monolithic path produced).
  std::string Render() const {
    return "client " + std::to_string(index) + ": " + detail;
  }

  friend bool operator==(const RejectionReason& a, const RejectionReason& b) {
    return a.index == b.index && a.code == b.code && a.detail == b.detail;
  }
};

// The canonical stage names every backend reports, in pipeline order. The
// conformance suite asserts all five backends emit exactly these three, and
// the run-log (src/obs/runlog.h) trends them per backend across PRs, so a
// renamed stage is a schema change.
inline constexpr const char* kStageIngest = "ingest";
inline constexpr const char* kStageVerify = "verify";
inline constexpr const char* kStageCombine = "combine";

// Wall-clock cost of the pipeline stages every backend has: ingesting the
// stream (Add/Submit buffering), verifying uploads (structural checks +
// proof checks, however parallelized -- for the multiprocess/remote
// backends this is the whole fleet drive, wire cost included), and
// combining per-shard results into the global report. total_ms is the
// backend-resident wall time (time spent inside Start/Add/Finish or
// VerifyAll), so the named stages must sum to it within the small assembly
// overhead -- the conformance suite pins that. Timing *values* are
// informational and never compared across backends.
struct VerifyTimings {
  double ingest_ms = 0;
  double verify_ms = 0;
  double combine_ms = 0;
  double total_ms = 0;

  // The named stages, in pipeline order -- the one list the run-log emitter
  // and the conformance suite both consume.
  std::vector<std::pair<std::string, double>> Stages() const {
    return {{kStageIngest, ingest_ms}, {kStageVerify, verify_ms},
            {kStageCombine, combine_ms}};
  }
};

// A point-in-time snapshot of a verification stream in flight, for callers
// that want to watch a long ingest (progress bars, soak harnesses, the
// run-log). All counters are monotone within one stream except
// inflight_shards/buffered_uploads, which rise and fall with the
// backpressure window. Buffered backends report only what they have
// ingested; streaming backends report real pipeline state.
struct VerifyProgress {
  size_t uploads_ingested = 0;   // Add/Submit calls so far
  size_t shards_cut = 0;         // contiguous shards sealed from the stream
  size_t shards_done = 0;        // shards reduced to a compact ShardResult
  size_t inflight_shards = 0;    // cut but not yet reduced (queued + executing)
  size_t buffered_uploads = 0;   // uploads resident in backend memory
  size_t accepted_so_far = 0;    // accepted uploads across finished shards
  size_t rejected_so_far = 0;    // rejected uploads across finished shards
  double backpressure_wait_ms = 0;  // producer time blocked on the window
};

// The structured verdict of one verification stream.
template <PrimeOrderGroup G>
struct VerifyReport {
  // Which backend produced this report (VerifyBackendKindName value).
  std::string backend;

  // Ascending global indices of accepted uploads.
  std::vector<size_t> accepted;

  // Typed rejections, ascending by index.
  std::vector<RejectionReason> rejections;

  // commitment_products[k][m] = product over accepted uploads of
  // commitments[k][m] -- the client half of the Eq. 10 left-hand side,
  // consumable by PublicVerifier::CheckFinalWithProducts. Empty when the
  // stream ran with VerifyOptions::compute_products == false.
  std::vector<std::vector<typename G::Element>> commitment_products;

  size_t total_uploads = 0;
  size_t num_shards = 0;
  size_t shards_with_fallback = 0;  // shards that paid the per-proof fallback

  VerifyTimings timings;

  bool has_products() const { return !commitment_products.empty(); }

  // The legacy "client <i>: <why>" strings, in rejection order.
  std::vector<std::string> RenderedReasons() const {
    std::vector<std::string> out;
    out.reserve(rejections.size());
    for (const RejectionReason& r : rejections) {
      out.push_back(r.Render());
    }
    return out;
  }
};

}  // namespace vdp

#endif  // SRC_VERIFY_REPORT_H_
