// The backend factory/registry: the ONLY place that maps ProtocolConfig
// flags to a verification execution strategy.
//
// Before this seam existed, `batch_verify`, `num_verify_shards`, and
// `verify_workers` were re-interpreted by scattered checks inside
// PublicVerifier, RunProtocol, and AuditTranscript. Now the flags are
// config-surface only: SelectVerifyBackend is the whole selection policy,
// and a fifth strategy (the ROADMAP's socket-transport RemoteBackend) is a
// new case here rather than a fourth copy of the dispatch logic.
//
// Selection policy (first match wins):
//
//   remote_verifiers set  ->  RemoteBackend       (verify_server socket fleet)
//   verify_workers   > 1  ->  MultiprocessBackend (worker subprocess fleet)
//   num_verify_shards > 1 ->  ShardedBackend      (in-process shard pipeline)
//   batch_verify          ->  BatchedBackend      (one whole-stream RLC batch)
//   otherwise             ->  PerProofBackend     (the per-proof oracle)
#ifndef SRC_VERIFY_FACTORY_H_
#define SRC_VERIFY_FACTORY_H_

#include <memory>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "src/verify/batched_backend.h"
#include "src/verify/multiprocess_backend.h"
#include "src/verify/per_proof_backend.h"
#include "src/verify/remote_backend.h"
#include "src/verify/sharded_backend.h"

namespace vdp {

enum class VerifyBackendKind {
  kPerProof,
  kBatched,
  kSharded,
  kMultiprocess,
  kRemote,
};

inline const char* VerifyBackendKindName(VerifyBackendKind kind) {
  switch (kind) {
    case VerifyBackendKind::kPerProof:
      return "per-proof";
    case VerifyBackendKind::kBatched:
      return "batched";
    case VerifyBackendKind::kSharded:
      return "sharded";
    case VerifyBackendKind::kMultiprocess:
      return "multiprocess";
    case VerifyBackendKind::kRemote:
      return "remote";
  }
  return "unknown";
}

// Every registered backend, in oracle-first order. The conformance suite
// iterates this list; a new backend joins the registry by being added here
// and in MakeVerifyBackend's switch.
inline std::vector<VerifyBackendKind> AllVerifyBackendKinds() {
  return {VerifyBackendKind::kPerProof, VerifyBackendKind::kBatched,
          VerifyBackendKind::kSharded, VerifyBackendKind::kMultiprocess,
          VerifyBackendKind::kRemote};
}

inline std::optional<VerifyBackendKind> VerifyBackendKindFromName(std::string_view name) {
  for (VerifyBackendKind kind : AllVerifyBackendKinds()) {
    if (name == VerifyBackendKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

// The whole mode-selection policy, in one function.
inline VerifyBackendKind SelectVerifyBackend(const ProtocolConfig& config) {
  if (!config.remote_verifiers.empty()) {
    return VerifyBackendKind::kRemote;
  }
  if (config.verify_workers > 1) {
    return VerifyBackendKind::kMultiprocess;
  }
  if (config.num_verify_shards > 1) {
    return VerifyBackendKind::kSharded;
  }
  if (config.batch_verify) {
    return VerifyBackendKind::kBatched;
  }
  return VerifyBackendKind::kPerProof;
}

// Constructs a specific backend. Validates the config first: a nonsensical
// ProtocolConfig never reaches a backend.
template <PrimeOrderGroup G>
std::unique_ptr<VerifyBackend<G>> MakeVerifyBackend(VerifyBackendKind kind,
                                                    const ProtocolConfig& config,
                                                    Pedersen<G> ped) {
  if (auto error = config.Validate(); error.has_value()) {
    throw std::invalid_argument(error->Render());
  }
  switch (kind) {
    case VerifyBackendKind::kPerProof:
      return std::make_unique<PerProofBackend<G>>(config, std::move(ped));
    case VerifyBackendKind::kBatched:
      return std::make_unique<BatchedBackend<G>>(config, std::move(ped));
    case VerifyBackendKind::kSharded:
      return std::make_unique<ShardedBackend<G>>(config, std::move(ped));
    case VerifyBackendKind::kMultiprocess:
      return std::make_unique<MultiprocessBackend<G>>(config, std::move(ped));
    case VerifyBackendKind::kRemote:
      return std::make_unique<RemoteBackend<G>>(config, std::move(ped));
  }
  throw std::invalid_argument("unknown VerifyBackendKind");
}

// Constructs the backend the config's flags select. This is the factory
// PublicVerifier, RunProtocol, and AuditTranscript go through; old
// flag-driven ProtocolConfig construction keeps working because the flags
// feed SelectVerifyBackend instead of scattered call-site checks.
template <PrimeOrderGroup G>
std::unique_ptr<VerifyBackend<G>> MakeVerifyBackend(const ProtocolConfig& config,
                                                    Pedersen<G> ped) {
  return MakeVerifyBackend<G>(SelectVerifyBackend(config), config, std::move(ped));
}

}  // namespace vdp

#endif  // SRC_VERIFY_FACTORY_H_
