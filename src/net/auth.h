// Transport authentication for remote verifiers.
//
// The wire setup digest binds a task/result to its *parameters*, but says
// nothing about *who* produced it -- any process that saw the broadcast
// setup could forge a result frame. The socket transport therefore runs
// every post-hello frame through an HMAC channel:
//
//   session_key = HMAC(pre-shared secret,
//                      "vdp/net/session-key" || server_nonce || client_nonce)
//   tag         = HMAC(session_key,
//                      "vdp/net/frame" || direction || seq || type || payload)
//
// and the frame travels as payload || tag inside a standard wire frame (the
// header's length covers both). Per-direction sequence numbers start at 0
// and increment per frame, so a replayed, reordered, or cross-connection
// spliced frame fails verification even though the bytes are authentic. The
// nonces come from the connection hello pair (src/wire/ WireServerHello /
// WireClientHello), so every connection gets a fresh key from the same
// fleet secret.
//
// This is transport-level authentication with a shared secret: it
// authenticates fleet membership, not individual verifier identity, and it
// is not encryption (upload contents are broadcast-public in this protocol
// anyway). Key provisioning is deployment-side: see README "Deploying
// remote verifiers".
#ifndef SRC_NET_AUTH_H_
#define SRC_NET_AUTH_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/hmac.h"
#include "src/wire/frame_io.h"
#include "src/wire/wire_format.h"

namespace vdp {
namespace net {

inline constexpr size_t kMacTagSize = HmacSha256::kTagSize;
// The pre-shared fleet secret must carry at least this much entropy.
inline constexpr size_t kMinAuthKeyBytes = 16;

using SessionKey = std::array<uint8_t, HmacSha256::kTagSize>;

// Frame directions (the MAC binds them so a server cannot echo a driver
// frame back as its own). The admin plane -- health probes and stats
// requests (wire::FrameType::kHealthProbe..kStatsReply) -- runs on its own
// direction bytes AND its own sequence counters: interleaving probes with
// shard traffic must never perturb the task/result sequence space, and the
// distinct direction byte makes a cross-plane splice fail the MAC even at
// an equal sequence number.
inline constexpr uint8_t kClientToServer = 0;
inline constexpr uint8_t kServerToClient = 1;
inline constexpr uint8_t kClientToServerAdmin = 2;
inline constexpr uint8_t kServerToClientAdmin = 3;

// True for the admin-plane frame types. The frame type is MAC-bound, so the
// two planes can never be confused by relabeling.
inline constexpr bool IsAdminFrameType(wire::FrameType type) {
  return type == wire::FrameType::kHealthProbe ||
         type == wire::FrameType::kHealthReply ||
         type == wire::FrameType::kStatsRequest ||
         type == wire::FrameType::kStatsReply;
}

// Derives the per-connection MAC key from the fleet secret and the two
// hello nonces. Both sides compute it; it never crosses the wire.
SessionKey DeriveSessionKey(BytesView shared_secret, BytesView server_nonce,
                            BytesView client_nonce);

// The HMAC tag over one frame exchange.
HmacSha256::Tag FrameTag(const SessionKey& key, uint8_t direction, uint64_t seq,
                         wire::FrameType type, BytesView payload);

// payload || tag, ready to travel as a wire frame payload.
Bytes SealPayload(const SessionKey& key, uint8_t direction, uint64_t seq,
                  wire::FrameType type, BytesView payload);

// Splits and verifies a sealed payload; nullopt when the trailer is missing
// or the MAC does not verify (wrong key, wrong seq/direction, tampered
// bytes). Verification is constant-time in the tag comparison.
std::optional<Bytes> OpenPayload(const SessionKey& key, uint8_t direction, uint64_t seq,
                                 wire::FrameType type, BytesView sealed);

// One authenticated frame stream over a connected fd: WriteFrame/ReadFrame
// with the seal/open transform and the per-direction sequence counters
// applied. A failed read never advances the receive counter, so one
// tampered frame poisons the connection (the driver's blame/reconnect
// machinery handles the rest) instead of desynchronizing silently.
//
// Admin-plane frames (IsAdminFrameType) are sealed/opened under the admin
// direction bytes and tracked on separate sequence counters, so a channel
// can carry probe/stats traffic between shards without shifting the data
// plane's sequence numbers -- frames_sent()/frames_received() count the
// data plane only.
class AuthChannel {
 public:
  AuthChannel() = default;
  // is_client: drivers send kClientToServer and expect kServerToClient;
  // servers the reverse.
  AuthChannel(int fd, const SessionKey& key, bool is_client)
      : fd_(fd), key_(key),
        send_dir_(is_client ? kClientToServer : kServerToClient),
        recv_dir_(is_client ? kServerToClient : kClientToServer) {}

  // Seals and writes one frame. kError when the sealed payload would exceed
  // kMaxFramePayload (callers budget kMacTagSize on top of their payload).
  wire::WriteStatus Write(wire::FrameType type, BytesView payload, int timeout_ms = -1);

  // Reads and opens one frame; kAuthFailed when the MAC check fails.
  wire::ReadStatus Read(wire::Frame* out, int timeout_ms);

  int fd() const { return fd_; }
  uint64_t frames_sent() const { return send_seq_; }
  uint64_t frames_received() const { return recv_seq_; }
  uint64_t admin_frames_sent() const { return admin_send_seq_; }
  uint64_t admin_frames_received() const { return admin_recv_seq_; }

 private:
  int fd_ = -1;
  SessionKey key_{};
  uint8_t send_dir_ = kClientToServer;
  uint8_t recv_dir_ = kServerToClient;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  // The admin plane's independent sequence space (probe/stats frames).
  uint64_t admin_send_seq_ = 0;
  uint64_t admin_recv_seq_ = 0;
};

}  // namespace net
}  // namespace vdp

#endif  // SRC_NET_AUTH_H_
