// Multi-machine shard verification: an executor that farms shards of the
// upload stream out to verify_server daemons over authenticated sockets
// (src/net/auth.h over src/wire/frame_io.h), and feeds the decoded
// ShardResults into the same deterministic combiner as every other path.
//
// Topology: the streaming dispatcher (src/shard/stream_dispatch.h) runs one
// lane per configured endpoint, each owning one persistent connection to its
// verifier; shards flow to lanes as the dispatcher seals them, so remote
// machines verify while the driver is still ingesting. Failure handling is
// strictly per-shard, like the process pool's, plus a reconnect policy the
// pipe transport never needed:
//
//   - A connection that fails mid-shard (dropped, timed out, bad MAC, result
//     mismatch) is closed with blame recorded (which endpoint, which shard,
//     how it ended) and the shard retried over a fresh connection.
//   - Connecting itself retries (connect_attempts, backoff) so a verifier
//     that is restarting -- killed and brought back by its supervisor -- is
//     re-adopted instead of written off on the first ECONNREFUSED.
//   - A shard whose remote attempts are exhausted is verified *in process*,
//     so a dead fleet degrades to the PR-2 sharded path instead of losing
//     shards.
//
// Either way every shard yields exactly one ShardResult and the combined
// verdict is bit-identical to the in-process path; fleet trouble only shows
// up in the RemoteFleetReport.
#ifndef SRC_NET_REMOTE_FLEET_H_
#define SRC_NET_REMOTE_FLEET_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hex.h"
#include "src/common/timer.h"
#include "src/net/health.h"
#include "src/net/remote_conn.h"
#include "src/shard/shard_result.h"
#include "src/shard/stream_dispatch.h"
#include "src/shard/worker_process.h"
#include "src/wire/wire_convert.h"

namespace vdp {

// One failed attempt at farming a shard out to a remote verifier. The shard
// itself still completes (on a reconnect or in process).
struct RemoteFailure {
  size_t shard_index = 0;
  std::string endpoint;
  std::string reason;
};

struct RemoteFleetReport {
  std::vector<RemoteFailure> failures;
  size_t shards_total = 0;
  size_t shards_from_remote = 0;
  size_t shards_recovered_in_process = 0;  // retries exhausted, verified locally
  size_t connections_established = 0;
  size_t reconnects = 0;  // successful connections beyond each endpoint's first
};

struct RemoteFleetOptions {
  int connect_timeout_ms = 10'000;
  int handshake_timeout_ms = 15'000;
  // Deadline for one shard round-trip (send task, receive result).
  int shard_timeout_ms = 120'000;
  // Remote attempts per shard before the in-process fallback.
  size_t max_attempts_per_shard = 2;
  // Connect+handshake tries per (re)connection, with backoff between.
  size_t connect_attempts = 2;
  int reconnect_backoff_ms = 50;
  // When set, dispatches record "dispatch" spans here (parented under
  // trace_parent), span context crosses the wire, and server-recorded spans
  // are adopted back into this collector. Used by the one-shot VerifyAll
  // entry point; dispatcher streams override it via BeginStream.
  obs::TraceCollector* tracer = nullptr;
  obs::TraceContext trace_parent{};
  // When set, dispatch consults the health registry (fed by a background
  // prober): shards skip endpoints it calls dead (straight to the
  // in-process fallback, kFleetDispatchSkips) instead of paying the connect
  // ladder, and a lane whose own circuit breaker tripped is re-armed once
  // the registry sees the endpoint answer probes again. Not owned.
  net::HealthRegistry* health = nullptr;
};

// Farms shards to the fleet named by config.remote_verifiers, authenticated
// with config.remote_auth_key_hex. The config must have passed Validate().
template <PrimeOrderGroup G>
class RemoteVerifierFleet final : public ShardExecutor<G> {
 public:
  RemoteVerifierFleet(const ProtocolConfig& config, Pedersen<G> ped,
                      RemoteFleetOptions options = {})
      : config_(config), ped_(std::move(ped)), options_(std::move(options)) {
    for (const std::string& spec : config_.remote_verifiers) {
      auto endpoint = net::ParseEndpoint(spec);
      if (endpoint.has_value()) {  // Validate() guarantees this; belt and braces
        endpoints_.push_back(*endpoint);
      }
    }
    if (auto key = HexDecode(config_.remote_auth_key_hex); key.has_value()) {
      auth_key_ = std::move(*key);
    }
    wire::WireSetup setup = wire::MakeWireSetup(config_, ped_);
    setup_payload_ = setup.Serialize();
    params_digest_ = setup.Digest();
    lanes_.resize(std::max<size_t>(1, endpoints_.size()));
  }

  ~RemoteVerifierFleet() override {
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
      CloseLane(lane);
    }
  }

  // --- ShardExecutor ------------------------------------------------------
  // Lanes map 1:1 to endpoints; each lane's connection is established lazily
  // on its first shard and persists until the stream drains (CloseLane).

  size_t lanes() const override { return lanes_.size(); }

  void BeginStream(obs::TraceCollector* tracer, obs::TraceContext verify_ctx) override {
    ShardExecutor<G>::BeginStream(tracer, verify_ctx);
    IgnoreSigpipe();  // a write into a dead verifier must fail with EPIPE
    for (LaneState& lane : lanes_) {
      net::CloseRemoteConn(&lane.conn);
      lane.connected_before = false;
      lane.endpoint_dead = false;
    }
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_ = RemoteFleetReport{};
  }

  ShardResult<G> ExecuteShard(size_t lane_index, const ShardPayload<G>& shard) override {
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      ++report_.shards_total;
    }
    // No endpoints parsed (unreachable after Validate, but never lose the
    // stream): every shard goes through the in-process fallback.
    if (endpoints_.empty()) {
      ShardResult<G> result =
          VerifyShard(config_, ped_, shard.data(), shard.count(), shard.base,
                      shard.shard_index, nullptr, shard.compute_products);
      std::lock_guard<std::mutex> lock(report_mutex_);
      ++report_.shards_recovered_in_process;
      return result;
    }
    LaneState& lane = lanes_[lane_index];
    const net::Endpoint& endpoint = endpoints_[lane_index];
    const std::string endpoint_name = net::FormatEndpoint(endpoint);
    bool skip_remote = false;
    if (options_.health != nullptr) {
      if (!options_.health->Dispatchable(endpoint_name)) {
        // The prober says this endpoint is dead: go straight to the
        // in-process fallback instead of burning the connect ladder.
        skip_remote = true;
        obs::GlobalCounter(obs::kFleetDispatchSkips)->Increment();
      } else if (lane.endpoint_dead) {
        // The lane's own breaker tripped earlier in the stream, but the
        // prober has since seen the endpoint answer: re-adopt it.
        lane.endpoint_dead = false;
      }
    }
    // One dispatch span covers every attempt at this shard; the server's own
    // spans parent under it via the task's trace extension.
    obs::TraceSpan dispatch_span(this->tracer_, "dispatch", this->verify_ctx_);
    dispatch_span.set_detail("shard=" + std::to_string(shard.shard_index) +
                             " endpoint=" + endpoint_name);
    wire::WireShardTask task =
        wire::MakeShardTask<G>(params_digest_, shard.shard_index, shard.base,
                               shard.compute_products, shard.data(), shard.count());
    task.trace_id = dispatch_span.context().trace_id;
    task.parent_span_id = dispatch_span.context().span_id;
    const Bytes task_payload = task.Serialize();
    // Retries resend task_payload; only the task's scalar metadata is needed
    // from here on (mirrors the process pool's memory trim).
    task.uploads.clear();
    task.uploads.shrink_to_fit();

    ShardResult<G> result;
    bool done = false;
    // A task the authenticated frame layer would refuse (payload + MAC over
    // kMaxFramePayload) can never succeed on any verifier.
    const bool oversized = task_payload.size() + net::kMacTagSize > wire::kMaxFramePayload;
    if (oversized) {
      RecordFailure(shard.shard_index, endpoint_name,
                    "task frame exceeds wire payload limit (" +
                        std::to_string(task_payload.size()) +
                        " bytes); shard too large -- raise num_verify_shards");
    }
    for (size_t attempt = 0; attempt < options_.max_attempts_per_shard && !done &&
                             !oversized && !skip_remote && !lane.endpoint_dead;
         ++attempt) {
      if (attempt > 0) {
        obs::GlobalCounter(obs::kFleetRetries)->Increment();
      }
      if (!lane.conn.ok() && !Reconnect(endpoint, endpoint_name, &lane.conn,
                                        &lane.connected_before, shard.shard_index)) {
        // A whole connect ladder failed: trip the breaker. The lane keeps
        // taking shards -- it still contributes CPU through the in-process
        // fallback -- but never pays the futile connect timeouts again (a
        // blackholed endpoint would otherwise serialize
        // connect_attempts * connect_timeout_ms into EVERY shard it takes).
        // Failures were already blamed shard-by-shard inside Reconnect.
        lane.endpoint_dead = true;
        break;
      }
      std::string blame;
      if (AttemptShard(&lane.conn, task_payload, task, shard.count(), &result,
                       endpoint_name, &dispatch_span, &blame)) {
        obs::GlobalCounter(obs::kFleetShardsRemote)->Increment();
        std::lock_guard<std::mutex> lock(report_mutex_);
        ++report_.shards_from_remote;
        done = true;
      } else {
        RecordFailure(shard.shard_index, endpoint_name, blame);
        net::CloseRemoteConn(&lane.conn);
      }
    }
    if (!done) {
      // Retries exhausted: verify locally so the shard -- and the combined
      // verdict -- is never lost to a dead fleet.
      result = VerifyShard(config_, ped_, shard.data(), shard.count(), shard.base,
                           shard.shard_index, nullptr, shard.compute_products, this->tracer_,
                           dispatch_span.context());
      obs::GlobalCounter(obs::kFleetShardsRecovered)->Increment();
      std::lock_guard<std::mutex> lock(report_mutex_);
      ++report_.shards_recovered_in_process;
    }
    return result;
  }

  void CloseLane(size_t lane) override {
    if (lane < lanes_.size()) {
      net::CloseRemoteConn(&lanes_[lane].conn);
    }
  }

  // Fleet health accumulated since BeginStream (or construction).
  RemoteFleetReport TakeReport() {
    std::lock_guard<std::mutex> lock(report_mutex_);
    RemoteFleetReport out = std::move(report_);
    report_ = RemoteFleetReport{};
    return out;
  }

  // One-shot verification of an in-memory vector across the remote fleet.
  // The shard partition honors config.num_verify_shards when set (> 1);
  // otherwise it defaults to two shards per endpoint so a straggler can be
  // overlapped. Runs through the same dispatcher/lane machinery as
  // streaming, viewing the caller's vector (no copies).
  VerifyReport<G> VerifyAll(const std::vector<ClientUploadMsg<G>>& uploads,
                            bool compute_products = true,
                            RemoteFleetReport* report = nullptr) {
    const size_t shards = config_.num_verify_shards > 1
                              ? config_.num_verify_shards
                              : 2 * std::max<size_t>(1, endpoints_.size());
    VerifyReport<G> combined = DispatchAllShards<G>(config_, this, uploads, shards,
                                                    compute_products, options_.tracer,
                                                    options_.trace_parent);
    if (report != nullptr) {
      *report = TakeReport();
    }
    return combined;
  }

 private:
  // Per-lane transport state. Touched only by the lane's dispatcher thread
  // (between BeginStream and CloseLane), so no locking.
  struct LaneState {
    net::RemoteConn conn;
    bool connected_before = false;
    // Circuit breaker: once a full connect-retry ladder fails, the endpoint
    // is written off for the rest of the stream.
    bool endpoint_dead = false;
  };

  // Establishes (or re-establishes) a lane's connection, with bounded
  // retries and backoff. Every failed try is blamed against `shard`.
  bool Reconnect(const net::Endpoint& endpoint, const std::string& endpoint_name,
                 net::RemoteConn* conn, bool* connected_before, size_t shard) {
    net::HandshakeOptions handshake;
    handshake.connect_timeout_ms = options_.connect_timeout_ms;
    handshake.handshake_timeout_ms = options_.handshake_timeout_ms;
    for (size_t attempt = 0; attempt < options_.connect_attempts; ++attempt) {
      if (attempt > 0 && options_.reconnect_backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.reconnect_backoff_ms));
      }
      std::string blame;
      *conn = net::ConnectAndHandshake(endpoint, auth_key_, setup_payload_,
                                       params_digest_, handshake, &blame);
      if (conn->ok()) {
        obs::GlobalCounter(obs::kFleetConnections)->Increment();
        if (*connected_before) {
          obs::GlobalCounter(obs::kFleetReconnects)->Increment();
        }
        std::lock_guard<std::mutex> lock(report_mutex_);
        ++report_.connections_established;
        if (*connected_before) {
          ++report_.reconnects;
        }
        *connected_before = true;
        return true;
      }
      RecordFailure(shard, endpoint_name, blame);
    }
    return false;
  }

  // One task round-trip on a live connection, under ONE shard_timeout_ms
  // deadline covering both the task write and the result read. The checks
  // mirror the process pool's: digest, shard identity, range, and product
  // presence must all match the task, and every element must decode onto
  // the group -- a remote verifier is trusted with work, not with verdict
  // integrity.
  bool AttemptShard(net::RemoteConn* conn, BytesView task_payload,
                    const wire::WireShardTask& task, size_t expected_count,
                    ShardResult<G>* out, const std::string& endpoint_name,
                    obs::TraceSpan* dispatch_span, std::string* blame) {
    const auto start = std::chrono::steady_clock::now();
    wire::WriteStatus wstatus = conn->channel.Write(wire::FrameType::kTask, task_payload,
                                                    options_.shard_timeout_ms);
    if (wstatus != wire::WriteStatus::kOk) {
      *blame = wstatus == wire::WriteStatus::kTimeout ? "task write timed out"
                                                      : "task write failed";
      return false;
    }
    const auto write_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    const int remaining_ms = static_cast<int>(
        std::max<long long>(0, options_.shard_timeout_ms - write_ms));
    wire::Frame frame;
    wire::ReadStatus status = conn->channel.Read(&frame, remaining_ms);
    if (status != wire::ReadStatus::kOk) {
      *blame = std::string("no result (") + wire::ReadStatusName(status) + ")";
      return false;
    }
    if (frame.type == wire::FrameType::kError) {
      auto error = wire::WireError::Deserialize(frame.payload);
      *blame = "server error: " + (error.has_value() ? error->message : "<malformed>");
      return false;
    }
    if (frame.type != wire::FrameType::kResult) {
      *blame = "unexpected frame type in response";
      return false;
    }
    auto wire_result = wire::WireShardResult::Deserialize(frame.payload);
    if (!wire_result.has_value()) {
      *blame = "malformed result frame";
      return false;
    }
    if (!ConstantTimeEqual(BytesView(wire_result->params_digest.data(),
                                     wire_result->params_digest.size()),
                           BytesView(params_digest_.data(), params_digest_.size())) ||
        wire_result->shard_index != task.shard_index || wire_result->base != task.base ||
        wire_result->count != expected_count ||
        wire_result->partial_products.empty() == (task.compute_products == 1)) {
      *blame = "result does not match task";
      return false;
    }
    auto result = wire::ResultFromWire<G>(config_, *wire_result);
    if (!result.has_value()) {
      *blame = "result elements fail group decoding";
      return false;
    }
    if (this->tracer_ != nullptr && !wire_result->spans.empty()) {
      // Server spans are relative to its task receipt; land them inside the
      // dispatch span on the driver's timeline.
      this->tracer_->AdoptRemote(
          wire::SpansFromWire(wire_result->spans, "server:" + endpoint_name),
          dispatch_span->start_us());
    }
    *out = std::move(*result);
    return true;
  }

  void RecordFailure(size_t shard, const std::string& endpoint, std::string reason) {
    obs::GlobalCounter(obs::kFleetBlamed)->Increment();
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.failures.push_back(RemoteFailure{shard, endpoint, std::move(reason)});
  }

  ProtocolConfig config_;
  Pedersen<G> ped_;
  RemoteFleetOptions options_;
  std::vector<net::Endpoint> endpoints_;
  Bytes auth_key_;
  Bytes setup_payload_;
  Sha256::Digest params_digest_;
  std::vector<LaneState> lanes_;  // one slot per lane
  std::mutex report_mutex_;
  RemoteFleetReport report_;
};

}  // namespace vdp

#endif  // SRC_NET_REMOTE_FLEET_H_
