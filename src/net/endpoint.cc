#include "src/net/endpoint.h"

namespace vdp {
namespace net {

std::optional<Endpoint> ParseEndpoint(const std::string& spec) {
  constexpr char kTcpScheme[] = "tcp:";
  constexpr char kUnixScheme[] = "unix:";
  if (spec.rfind(kUnixScheme, 0) == 0) {
    std::string path = spec.substr(sizeof(kUnixScheme) - 1);
    if (path.empty()) {
      return std::nullopt;
    }
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = std::move(path);
    return ep;
  }
  if (spec.rfind(kTcpScheme, 0) == 0) {
    const std::string rest = spec.substr(sizeof(kTcpScheme) - 1);
    // host:port, split at the LAST colon (hosts never contain one here --
    // IPv6 literals are not supported in this transport).
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      return std::nullopt;
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    if (host.find(':') != std::string::npos) {
      return std::nullopt;
    }
    uint32_t port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') {
        return std::nullopt;
      }
      port = port * 10 + static_cast<uint32_t>(c - '0');
      if (port > 65535) {
        return std::nullopt;
      }
    }
    Endpoint ep;
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = host;
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  return std::nullopt;
}

std::string FormatEndpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    return "unix:" + endpoint.path;
  }
  return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
}

}  // namespace net
}  // namespace vdp
